package hyperdb_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hyperdb"
	"hyperdb/internal/ycsb"
)

// TestPropertyModelCheck drives long random operation sequences against a
// map reference model through the public API, with migration/compaction
// interleaved, and verifies every Get, Scan and final state.
func TestPropertyModelCheck(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db, err := hyperdb.Open(hyperdb.Options{
				Unthrottled:       true,
				NVMeCapacity:      1 << 20, // tiny: constant migration pressure
				SATACapacity:      1 << 30,
				Partitions:        4,
				CacheBytes:        1 << 20,
				MigrationBatch:    128 << 10,
				DisableBackground: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			ref := map[string][]byte{}
			rng := rand.New(rand.NewSource(seed))
			const ops = 30000
			for i := 0; i < ops; i++ {
				k := ycsb.Key(int64(rng.Intn(8000)))
				switch rng.Intn(10) {
				case 0: // delete
					if err := db.Delete(k); err != nil {
						t.Fatalf("op %d delete: %v", i, err)
					}
					delete(ref, string(k))
				case 1, 2: // get
					want, exists := ref[string(k)]
					v, err := db.Get(k)
					if exists {
						if err != nil || !bytes.Equal(v, want) {
							t.Fatalf("op %d get: %q/%v, want %q", i, v, err, want)
						}
					} else if !errors.Is(err, hyperdb.ErrNotFound) {
						t.Fatalf("op %d get absent: %v", i, err)
					}
				case 3: // scan and verify against the model
					got, err := db.Scan(k, 10)
					if err != nil {
						t.Fatalf("op %d scan: %v", i, err)
					}
					want := modelScan(ref, k, 10)
					if len(got) != len(want) {
						t.Fatalf("op %d scan: %d results, want %d", i, len(got), len(want))
					}
					for j := range got {
						if !bytes.Equal(got[j].Key, want[j].Key) || !bytes.Equal(got[j].Value, want[j].Value) {
							t.Fatalf("op %d scan[%d]: %x=%q, want %x=%q",
								i, j, got[j].Key, got[j].Value, want[j].Key, want[j].Value)
						}
					}
				default: // put
					v := make([]byte, 16+rng.Intn(200))
					rng.Read(v)
					if err := db.Put(k, v); err != nil {
						t.Fatalf("op %d put: %v", i, err)
					}
					ref[string(k)] = v
				}
				if i%2500 == 2499 {
					// Interleave background work at a random partition.
					if err := db.MigrationStep(rng.Intn(4)); err != nil {
						t.Fatalf("op %d migration: %v", i, err)
					}
					if _, err := db.CompactionStep(rng.Intn(4)); err != nil {
						t.Fatalf("op %d compaction: %v", i, err)
					}
				}
			}
			if err := db.DrainBackground(); err != nil {
				t.Fatal(err)
			}
			// Final sweep.
			for k, want := range ref {
				v, err := db.Get([]byte(k))
				if err != nil || !bytes.Equal(v, want) {
					t.Fatalf("final get %x: %q/%v, want %q", k, v, err, want)
				}
			}
			st := db.Stats()
			if st.Zone.Migrations == 0 {
				t.Fatal("model check exercised no migrations")
			}
		})
	}
}

// modelScan computes the expected scan result from the reference map.
func modelScan(ref map[string][]byte, start []byte, limit int) []hyperdb.KV {
	var ks []string
	for k := range ref {
		if bytes.Compare([]byte(k), start) >= 0 {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	if len(ks) > limit {
		ks = ks[:limit]
	}
	out := make([]hyperdb.KV, 0, len(ks))
	for _, k := range ks {
		out = append(out, hyperdb.KV{Key: []byte(k), Value: ref[k]})
	}
	return out
}

// TestQuickPutGetRoundtrip is a testing/quick property: any (key, value)
// written is immediately readable, through arbitrary migration pressure.
func TestQuickPutGetRoundtrip(t *testing.T) {
	db, err := hyperdb.Open(hyperdb.Options{
		Unthrottled:       true,
		NVMeCapacity:      2 << 20,
		SATACapacity:      512 << 20,
		Partitions:        2,
		MigrationBatch:    64 << 10,
		DisableBackground: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	n := 0
	prop := func(key []byte, value []byte) bool {
		if len(key) == 0 || len(key) > 1024 || len(value) > 2048 {
			return true // out of supported shape; skip
		}
		if err := db.Put(key, value); err != nil {
			t.Logf("put: %v", err)
			return false
		}
		n++
		if n%64 == 0 {
			for p := 0; p < 2; p++ {
				if err := db.MigrationStep(p); err != nil {
					t.Logf("migrate: %v", err)
					return false
				}
			}
		}
		v, err := db.Get(key)
		if err != nil {
			t.Logf("get: %v", err)
			return false
		}
		return bytes.Equal(v, value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
