package hyperdb

import (
	"time"

	"hyperdb/internal/compress"
	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

// Options configures Open. Either provide pre-built devices (sharing them
// with a harness that reads their counters) or set capacities and let Open
// build paper-profile simulated devices.
type Options struct {
	// NVMeDevice and SATADevice, when non-nil, are used directly.
	NVMeDevice *device.Device
	SATADevice *device.Device

	// NVMeCapacity and SATACapacity size devices built by Open when the
	// device fields are nil. Defaults: 256 MiB NVMe, 8 GiB SATA.
	NVMeCapacity int64
	SATACapacity int64

	// Unthrottled builds zero-latency devices (unit tests).
	Unthrottled bool

	// Partitions is the shared-nothing partition count (paper: 8).
	Partitions int
	// CacheBytes is the shared DRAM page cache budget (paper: 64 MiB).
	CacheBytes int64
	// MigrationBatch is B, the zone capacity and semi-SSTable file size.
	MigrationBatch int64
	// HighWatermark / LowWatermark bound the NVMe demotion hysteresis.
	HighWatermark float64
	LowWatermark  float64
	// HotZoneFraction is each partition's hot-zone share of NVMe.
	HotZoneFraction float64
	// Tracker overrides the hotness tracker configuration.
	Tracker hotness.Config
	// Ratio is the LSM size ratio T (paper: 10).
	Ratio int
	// L1Segments is the per-partition file count at L1.
	L1Segments int
	// MaxLevels bounds LSM depth.
	MaxLevels int
	// CompactionDepth is k, the preemptive block-compaction chase depth.
	CompactionDepth int
	// TClean is the dirty ratio forcing a full table compaction.
	TClean float64
	// SpaceAmpLimit switches victim selection to dirtiest-first.
	SpaceAmpLimit float64
	// PowerK is the power-of-k victim sampling width (paper: 8).
	PowerK int
	// DisableIndexMirror turns off §3.1's NVMe backup of LSM indexes.
	DisableIndexMirror bool
	// DisableBackground turns off background workers (drive migration and
	// compaction manually via MigrationStep/CompactionStep).
	DisableBackground bool
	// BackgroundInterval is the workers' idle poll period.
	BackgroundInterval time.Duration
	// AvgObjectSize seeds sizing estimates before data arrives.
	AvgObjectSize int
	// ScanPrefetch enables the range-scan page prefetcher (§4.2's future
	// work). Off by default, matching the paper's evaluated system.
	ScanPrefetch bool
	// Compress names the capacity-tier block codec ("", "off" or "none"
	// disables; "on" or "lz" enables the built-in LZ codec). Only
	// semi-SSTable blocks at CompressMinLevel and deeper are compressed; the
	// NVMe zone tier always stays raw.
	Compress string
	// CompressMinLevel is the shallowest LSM level the codec applies to
	// (default 1: every capacity-tier level).
	CompressMinLevel int
	// AntiEntropy maintains an incremental Merkle tree over the keyspace so
	// a diverged replica can rejoin by fetching only divergent ranges
	// instead of a full snapshot.
	AntiEntropy bool
	// Follower opens the DB as a replication follower: foreground writes
	// return ErrFollower and the only write path is the replicated apply.
	Follower bool
	// Tee, when non-nil, receives every committed write for replication log
	// shipping (see internal/repl).
	Tee core.Tee
}

// DefaultOptions returns a laptop-scale configuration with paper-profile
// simulated devices: 256 MiB NVMe performance tier, 8 GiB SATA capacity
// tier.
func DefaultOptions() Options {
	return Options{}
}

// resolve builds devices as needed and maps to the engine's option set.
func (o Options) resolve() (core.Options, *device.Device, *device.Device, error) {
	codec, err := compress.Parse(o.Compress)
	if err != nil {
		return core.Options{}, nil, nil, err
	}
	minLevel := o.CompressMinLevel
	if minLevel <= 0 {
		minLevel = 1
	}
	nvme, sata := o.NVMeDevice, o.SATADevice
	if nvme == nil {
		capNVMe := o.NVMeCapacity
		if capNVMe <= 0 {
			capNVMe = 256 << 20
		}
		if o.Unthrottled {
			nvme = device.New(device.UnthrottledProfile("nvme", capNVMe))
		} else {
			nvme = device.New(device.NVMeProfile(capNVMe))
		}
	}
	if sata == nil {
		capSATA := o.SATACapacity
		if capSATA <= 0 {
			capSATA = 8 << 30
		}
		if o.Unthrottled {
			sata = device.New(device.UnthrottledProfile("sata", capSATA))
		} else {
			sata = device.New(device.SATAProfile(capSATA))
		}
	}
	return core.Options{
		NVMe:               nvme,
		SATA:               sata,
		Partitions:         o.Partitions,
		CacheBytes:         o.CacheBytes,
		MigrationBatch:     o.MigrationBatch,
		HighWatermark:      o.HighWatermark,
		LowWatermark:       o.LowWatermark,
		HotZoneFraction:    o.HotZoneFraction,
		Tracker:            o.Tracker,
		Ratio:              o.Ratio,
		L1Segments:         o.L1Segments,
		MaxLevels:          o.MaxLevels,
		CompactionDepth:    o.CompactionDepth,
		TClean:             o.TClean,
		SpaceAmpLimit:      o.SpaceAmpLimit,
		PowerK:             o.PowerK,
		MirrorIndexToNVMe:  !o.DisableIndexMirror,
		DisableBackground:  o.DisableBackground,
		BackgroundInterval: o.BackgroundInterval,
		AvgObjectSize:      o.AvgObjectSize,
		ScanPrefetch:       o.ScanPrefetch,
		CompressPolicy:     compress.Policy{Codec: codec, MinLevel: minLevel},
		AntiEntropy:        o.AntiEntropy,
		Follower:           o.Follower,
		Tee:                o.Tee,
	}, nvme, sata, nil
}
