package hyperdb_test

import (
	"strings"
	"testing"

	"hyperdb"
	"hyperdb/internal/device"
)

func TestDefaultOptionsOpen(t *testing.T) {
	db, err := hyperdb.Open(hyperdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.NVMe() == nil || db.SATA() == nil {
		t.Fatal("devices not built")
	}
	if db.NVMe().Capacity() != 256<<20 {
		t.Fatalf("default NVMe capacity = %d", db.NVMe().Capacity())
	}
	if db.SATA().Capacity() != 8<<30 {
		t.Fatalf("default SATA capacity = %d", db.SATA().Capacity())
	}
	// Paper-profile devices are throttled by default.
	if db.NVMe().Profile().ReadLatency == 0 {
		t.Fatal("default NVMe profile should be throttled")
	}
}

func TestExplicitDevicesUsed(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 8<<20))
	sata := device.New(device.UnthrottledProfile("sata", 64<<20))
	db, err := hyperdb.Open(hyperdb.Options{NVMeDevice: nvme, SATADevice: sata})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.NVMe() != nvme || db.SATA() != sata {
		t.Fatal("provided devices not used")
	}
}

func TestUnthrottledOption(t *testing.T) {
	db, err := hyperdb.Open(hyperdb.Options{Unthrottled: true, NVMeCapacity: 4 << 20, SATACapacity: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p := db.NVMe().Profile()
	if p.ReadLatency != 0 || p.ReadBandwidth != 0 {
		t.Fatalf("unthrottled profile has costs: %+v", p)
	}
}

func TestStatsStringReadable(t *testing.T) {
	db, err := hyperdb.Open(hyperdb.Options{Unthrottled: true, NVMeCapacity: 4 << 20, SATACapacity: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	s := db.Stats().String()
	for _, want := range []string{"NVMe:", "SATA:", "Zone tier:", "cache:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats string missing %q:\n%s", want, s)
		}
	}
}
