package lsm

import (
	"fmt"
	"strings"

	"hyperdb/internal/device"
	"hyperdb/internal/semisst"
)

// Recover rebuilds a capacity-tier tree from the semi-SSTables persisted on
// the device. Semi-SSTables are self-describing (footer → index block with
// block metadata, filters and key lists), and file names carry the
// (partition, level, segment, generation) coordinates, so no separate
// manifest is required. When a crash left two generations for the same
// (level, segment) — create raced remove — the newer generation wins and the
// older file is deleted. Returns the tree and the largest sequence seen.
func Recover(opts Options) (*Tree, uint64, error) {
	opts.fill()
	t := New(opts)
	prefix := fmt.Sprintf("p%d-L", opts.Partition)

	type coord struct {
		level, seg int
	}
	best := make(map[coord]uint64) // highest generation per slot
	for _, name := range opts.Dev.List() {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".sst") {
			continue
		}
		var part, level, seg int
		var gen uint64
		if _, err := fmt.Sscanf(name, "p%d-L%d-S%d-G%d.sst", &part, &level, &seg, &gen); err != nil {
			continue
		}
		if level < 1 || level > opts.MaxLevels {
			return nil, 0, fmt.Errorf("lsm: recovered file %q at impossible level %d", name, level)
		}
		c := coord{level, seg}
		if gen > best[c] {
			best[c] = gen
		}
	}

	var maxSeq uint64
	for _, name := range opts.Dev.List() {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".sst") {
			continue
		}
		var part, level, seg int
		var gen uint64
		if _, err := fmt.Sscanf(name, "p%d-L%d-S%d-G%d.sst", &part, &level, &seg, &gen); err != nil {
			continue
		}
		if best[coord{level, seg}] != gen {
			// Superseded generation left behind by a crash mid-swap.
			opts.Dev.Remove(name)
			continue
		}
		f, err := opts.Dev.Open(name)
		if err != nil {
			return nil, 0, err
		}
		var metaDev *device.Device
		if level <= mirrorDepth {
			metaDev = opts.MetaBackup
		}
		tbl, err := semisst.Open(f, semisst.Options{
			PageCache:  opts.PageCache,
			MetaBackup: metaDev,
		}, device.BgSeq)
		if err != nil {
			return nil, 0, fmt.Errorf("lsm: recover %q: %w", name, err)
		}
		if s := tbl.MaxSeq(); s > maxSeq {
			maxSeq = s
		}
		fe := &fileEntry{table: tbl, seg: seg, dev: opts.Dev}
		fe.refs.Store(1)
		t.mu.Lock()
		t.levels[level][seg] = fe
		if gen > t.nextGen {
			t.nextGen = gen
		}
		t.mu.Unlock()
	}
	return t, maxSeq, nil
}
