package lsm

import (
	"fmt"
	"sort"
	"strings"

	"hyperdb/internal/device"
	"hyperdb/internal/semisst"
)

// Recover rebuilds a capacity-tier tree from the semi-SSTables persisted on
// the device. Semi-SSTables are self-describing (footer → index block with
// block metadata, filters and key lists), and file names carry the
// (partition, level, segment, generation) coordinates, so no separate
// manifest is required.
//
// Crash artifacts are healed here: when a full compaction left two
// generations for the same (level, segment), the newest generation that
// actually opens wins — a new-generation file cut by power loss before its
// first sync is deleted and the previous generation restored. Superseded
// generations and orphaned index mirrors on the performance tier are removed.
// Returns the tree and the largest sequence seen.
func Recover(opts Options) (*Tree, uint64, error) {
	opts.fill()
	t := New(opts)
	prefix := fmt.Sprintf("p%d-L", opts.Partition)

	type coord struct {
		level, seg int
	}
	type candidate struct {
		name string
		gen  uint64
	}
	cands := make(map[coord][]candidate)
	for _, name := range opts.Dev.List() {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".sst") {
			continue
		}
		var part, level, seg int
		var gen uint64
		if _, err := fmt.Sscanf(name, "p%d-L%d-S%d-G%d.sst", &part, &level, &seg, &gen); err != nil {
			continue
		}
		if level < 1 || level > opts.MaxLevels {
			return nil, 0, fmt.Errorf("lsm: recovered file %q at impossible level %d", name, level)
		}
		if gen > t.nextGen {
			t.nextGen = gen // never reuse a generation, even a discarded one
		}
		c := coord{level, seg}
		cands[c] = append(cands[c], candidate{name, gen})
	}

	coords := make([]coord, 0, len(cands))
	for c := range cands {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(a, b int) bool {
		if coords[a].level != coords[b].level {
			return coords[a].level < coords[b].level
		}
		return coords[a].seg < coords[b].seg
	})

	var maxSeq uint64
	for _, c := range coords {
		list := cands[c]
		sort.Slice(list, func(a, b int) bool { return list[a].gen > list[b].gen })
		var metaDev *device.Device
		if c.level <= mirrorDepth {
			metaDev = opts.MetaBackup
		}
		opened := false
		for _, cand := range list {
			if opened {
				// Superseded generation left behind by a crash mid-swap.
				removeTableFile(opts, cand.name)
				continue
			}
			f, err := opts.Dev.Open(cand.name)
			if err != nil {
				return nil, 0, err
			}
			tbl, err := semisst.Open(f, t.tableOptions(c.level, metaDev), device.BgSeq)
			if err != nil {
				if device.IsIOError(err) {
					// The medium errored; the file may be perfectly good.
					// Deleting it here would turn a transient read fault
					// into data loss.
					return nil, 0, fmt.Errorf("lsm: recover %q: %w", cand.name, err)
				}
				// Crash artifact: a generation file cut before its first
				// sync has no valid footer. Drop it and fall back to the
				// previous generation.
				removeTableFile(opts, cand.name)
				continue
			}
			if s := tbl.MaxSeq(); s > maxSeq {
				maxSeq = s
			}
			fe := &fileEntry{table: tbl, seg: c.seg, dev: opts.Dev}
			fe.refs.Store(1)
			t.mu.Lock()
			t.levels[c.level][c.seg] = fe
			t.mu.Unlock()
			opened = true
		}
	}

	// Orphaned index mirrors: a crash can leave a mirror on the performance
	// tier whose table no longer exists (or was just discarded above).
	if opts.MetaBackup != nil {
		for _, name := range opts.MetaBackup.List() {
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".sst.idx") {
				continue
			}
			if _, err := opts.Dev.Open(strings.TrimSuffix(name, ".idx")); err != nil {
				opts.MetaBackup.Remove(name)
			}
		}
	}
	return t, maxSeq, nil
}

// removeTableFile deletes a table file and its index mirror, if any.
func removeTableFile(opts Options, name string) {
	opts.Dev.Remove(name)
	if opts.MetaBackup != nil {
		opts.MetaBackup.Remove(name + ".idx")
	}
}
