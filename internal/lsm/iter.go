package lsm

import (
	"bytes"
	"container/heap"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/semisst"
)

// TreeIter merges all tables overlapping a scan range into one user-key
// ordered stream, resolving multi-level versions by sequence number and
// eliding tombstones.
type TreeIter struct {
	h       iterHeap
	entries []*fileEntry
	key     []byte
	value   []byte
	valid   bool
	err     error
}

// Close releases the iterator's table references. Idempotent.
func (s *TreeIter) Close() {
	for _, fe := range s.entries {
		fe.release()
	}
	s.entries = nil
	s.valid = false
}

type heapItem struct {
	it *semisst.Iter
}

type iterHeap []*heapItem

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return keys.Compare(h[i].it.Key(), h[j].it.Key()) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(*heapItem)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewScanIter returns an iterator over user keys in [lo, hi) across all
// levels. hi == nil means unbounded. Charges reads as foreground scans.
func (t *Tree) NewScanIter(lo []byte, op device.Op) *TreeIter {
	scan := &TreeIter{}
	t.mu.RLock()
	var tables []*semisst.Table
	for level := 1; level <= t.opts.MaxLevels; level++ {
		for _, fe := range t.levels[level] {
			r := fe.table.Range()
			if r.Hi != nil && lo != nil && bytes.Compare(r.Hi, lo) <= 0 {
				continue
			}
			fe.acquire()
			scan.entries = append(scan.entries, fe)
			tables = append(tables, fe.table)
		}
	}
	t.mu.RUnlock()
	for _, tbl := range tables {
		it := tbl.NewIter(op)
		if lo == nil {
			it.First()
		} else {
			it.SeekGE(lo)
		}
		if it.Valid() {
			scan.h = append(scan.h, &heapItem{it: it})
		} else if err := it.Err(); err != nil {
			scan.err = err
		}
	}
	heap.Init(&scan.h)
	scan.advance()
	return scan
}

// advance pops the next distinct user key, resolving versions.
func (s *TreeIter) advance() {
	s.valid = false
	for len(s.h) > 0 {
		// The heap orders by internal key: the newest version of the
		// smallest user key surfaces first.
		top := s.h[0]
		k := top.it.Key()
		user := append([]byte(nil), k.User...)
		kind := k.Kind
		value := append([]byte(nil), top.it.Value()...)
		seq := k.Seq
		// Drain every older version of this user key from all iterators.
		for len(s.h) > 0 {
			cur := s.h[0]
			ck := cur.it.Key()
			if !bytes.Equal(ck.User, user) {
				break
			}
			if ck.Seq > seq {
				seq, kind = ck.Seq, ck.Kind
				value = append(value[:0], cur.it.Value()...)
			}
			cur.it.Next()
			if cur.it.Valid() {
				heap.Fix(&s.h, 0)
			} else {
				if err := cur.it.Err(); err != nil {
					s.err = err
					return
				}
				heap.Pop(&s.h)
			}
		}
		if kind == keys.KindDelete {
			continue // tombstone: skip this user key entirely
		}
		s.key, s.value, s.valid = user, value, true
		return
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (s *TreeIter) Valid() bool { return s.valid }

// Next advances to the next distinct live user key.
func (s *TreeIter) Next() { s.advance() }

// Key returns the current user key.
func (s *TreeIter) Key() []byte { return s.key }

// Value returns the current value.
func (s *TreeIter) Value() []byte { return s.value }

// Err returns the first error encountered.
func (s *TreeIter) Err() error { return s.err }
