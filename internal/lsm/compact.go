package lsm

import (
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/semisst"
)

// MaybeCompact runs at most one background compaction step: a pending full
// compaction of an over-dirty table, or a preemptive block compaction of the
// shallowest over-capacity level. Returns whether any work was done.
// Mutations are single-goroutine per tree (the partition's compaction
// thread); reads may proceed concurrently.
func (t *Tree) MaybeCompact(op device.Op) (bool, error) {
	t.mutMu.Lock()
	defer t.mutMu.Unlock()
	op.Background = true
	// Full compactions first: they bound space amplification. The rewrite
	// swaps in a freshly built generation file rather than truncating the
	// table in place: the old generation stays durable until the new one
	// syncs, so a crash at any point leaves recovery a readable table
	// (newest openable generation wins, see Recover).
	if fe, level := t.popPendingFull(); fe != nil {
		live := fe.table.LiveBytes()
		entries, err := fe.table.AllEntries(op)
		if err != nil {
			return false, err
		}
		t.mu.Lock()
		if t.levels[level][fe.seg] != fe {
			t.mu.Unlock() // superseded while queued
			return true, nil
		}
		if len(entries) == 0 {
			t.dropTable(level, fe)
			t.mu.Unlock()
			t.traffic[level].FullRewrites.Inc()
			return true, nil
		}
		nfe, err := t.newTable(level, fe.seg, entries, op)
		if err != nil {
			t.mu.Unlock() // old table remains installed; retry later
			return false, err
		}
		t.mu.Unlock()
		fe.release()
		t.traffic[level].ReadBytes.Add(uint64(live))
		t.traffic[level].WriteBytes.Add(uint64(nfe.table.FileBytes()))
		t.traffic[level].FullRewrites.Inc()
		return true, nil
	}
	for level := 1; level < t.opts.MaxLevels; level++ {
		live, _ := t.LevelBytes(level)
		if live <= t.capacity(level) {
			continue
		}
		if err := t.compactLevel(level, op); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// popPendingFull dequeues one table still needing a full compaction and
// reports its level.
func (t *Tree) popPendingFull() (*fileEntry, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.pendingFull) > 0 {
		fe := t.pendingFull[0]
		t.pendingFull = t.pendingFull[1:]
		for level := 1; level <= t.opts.MaxLevels; level++ {
			if t.levels[level][fe.seg] == fe {
				if fe.table.DirtyRatio() > t.opts.TClean {
					return fe, level
				}
				break
			}
		}
	}
	return nil, 0
}

// compactLevel drains one victim table from level into the levels below via
// preemptive block compaction (Fig. 7).
func (t *Tree) compactLevel(level int, op device.Op) error {
	victim := t.pickVictim(level, op)
	if victim == nil {
		return nil
	}
	entries, err := victim.table.AllEntries(op)
	if err != nil {
		return err
	}
	t.traffic[level].ReadBytes.Add(uint64(victim.table.LiveBytes()))
	t.traffic[level].Compactions.Inc()
	t.mu.Lock()
	t.dropTable(level, victim)
	t.mu.Unlock()
	return t.pushEntries(level+1, entries, t.opts.Depth-1, op)
}

// pushEntries merges sorted entries into the given level. With remaining
// depth budget, blocks of the target file whose contents collide with the
// level below are carved out and pushed deeper together with the incoming
// entries that fall in them — the preemptive merge of §3.4 that avoids
// rewriting those objects once per level.
func (t *Tree) pushEntries(level int, entries []semisst.Entry, budget int, op device.Op) error {
	if len(entries) == 0 {
		return nil
	}
	if level > t.opts.MaxLevels {
		level = t.opts.MaxLevels
	}
	i := 0
	for i < len(entries) {
		seg := t.segFor(level, entries[i].Key.User)
		j := i + 1
		for j < len(entries) && t.segFor(level, entries[j].Key.User) == seg {
			j++
		}
		slice := entries[i:j]
		i = j

		t.mu.Lock()
		fe := t.levels[level][seg]
		t.mu.Unlock()
		if fe == nil {
			// Non-overlapping insert: the slice becomes fresh blocks.
			if level == t.opts.MaxLevels {
				slice = filterTombstones(slice)
			}
			if len(slice) == 0 {
				continue
			}
			t.mu.Lock()
			nfe, err := t.newTable(level, seg, slice, op)
			if err != nil {
				t.mu.Unlock()
				return err
			}
			t.traffic[level].WriteBytes.Add(uint64(nfe.table.FileBytes()))
			t.mu.Unlock()
			continue
		}

		if budget > 0 && level < t.opts.MaxLevels {
			spans := t.deepOverlapSpans(level, fe, slice, op)
			if len(spans) > 0 {
				extracted, st, err := fe.table.ExtractOverlapping(spans, op)
				if err != nil {
					return err
				}
				t.traffic[level].ReadBytes.Add(uint64(st.BytesRead))
				deepIncoming, shallowIncoming := splitBySpans(slice, spans)
				deep := semisst.MergeSorted(extracted, deepIncoming, false)
				if err := t.pushEntries(level+1, deep, budget-1, op); err != nil {
					return err
				}
				slice = shallowIncoming
				t.noteDirty(level, fe)
			}
		}
		if len(slice) == 0 {
			continue
		}
		before := fe.table.FileBytes()
		st, err := fe.table.Merge(slice, level == t.opts.MaxLevels, op)
		if err != nil {
			return err
		}
		t.traffic[level].ReadBytes.Add(uint64(st.BytesRead))
		if after := fe.table.FileBytes(); after > before {
			t.traffic[level].WriteBytes.Add(uint64(after - before))
		}
		t.noteDirty(level, fe)
	}
	return nil
}

// deepOverlapSpans returns the key ranges of fe's live blocks that (a)
// overlap the incoming slice and (b) collide with live blocks one level
// deeper — the candidates for preemptive merging. Only index metadata is
// consulted (block key ranges), never data blocks; index reads are charged
// to the meta mirror.
func (t *Tree) deepOverlapSpans(level int, fe *fileEntry, slice []semisst.Entry, op device.Op) []keys.Range {
	span := keys.Range{
		Lo: slice[0].Key.User,
		Hi: keys.Successor(slice[len(slice)-1].Key.User),
	}
	fe.table.ChargeIndexRead(op)
	var candidate []keys.Range
	for _, bm := range fe.table.LiveBlockMetas() {
		if r := bm.Range(); r.Overlaps(span) {
			candidate = append(candidate, r)
		}
	}
	if len(candidate) == 0 {
		return nil
	}
	// Collect the next level's live block ranges across files overlapping
	// the candidates.
	t.mu.RLock()
	var nextTables []*semisst.Table
	for _, nfe := range t.levels[level+1] {
		nr := nfe.table.Range()
		for _, c := range candidate {
			if nr.Overlaps(c) {
				nextTables = append(nextTables, nfe.table)
				break
			}
		}
	}
	t.mu.RUnlock()
	if len(nextTables) == 0 {
		return nil
	}
	var deeper []keys.Range
	for _, tbl := range nextTables {
		tbl.ChargeIndexRead(op)
		for _, bm := range tbl.LiveBlockMetas() {
			deeper = append(deeper, bm.Range())
		}
	}
	var out []keys.Range
	for _, c := range candidate {
		for _, d := range deeper {
			if c.Overlaps(d) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// splitBySpans partitions sorted entries into those inside any span (deep)
// and the rest (shallow), both preserving order.
func splitBySpans(entries []semisst.Entry, spans []keys.Range) (deep, shallow []semisst.Entry) {
	for _, e := range entries {
		in := false
		for _, s := range spans {
			if s.Contains(e.Key.User) {
				in = true
				break
			}
		}
		if in {
			deep = append(deep, e)
		} else {
			shallow = append(shallow, e)
		}
	}
	return deep, shallow
}

// pickVictim implements §3.4 victim selection: dirtiest table when space
// amplification is past the limit, otherwise the highest overlap score
// (Algorithm 1) among a power-of-k random sample.
func (t *Tree) pickVictim(level int, op device.Op) *fileEntry {
	t.mu.Lock()
	tables := make([]*fileEntry, 0, len(t.levels[level]))
	for _, fe := range t.levels[level] {
		tables = append(tables, fe)
	}
	if len(tables) == 0 {
		t.mu.Unlock()
		return nil
	}
	overLimit := false
	{
		var live, stale int64
		for l := 1; l <= t.opts.MaxLevels; l++ {
			for _, cfe := range t.levels[l] {
				live += cfe.table.LiveBytes()
				stale += cfe.table.StaleBytes()
			}
		}
		overLimit = live > 0 && float64(live+stale)/float64(live) > t.opts.SpaceAmpLimit
	}
	// Power-of-k sample.
	sample := tables
	if len(tables) > t.opts.PowerK {
		sample = make([]*fileEntry, 0, t.opts.PowerK)
		seen := make(map[int]bool)
		for len(sample) < t.opts.PowerK {
			i := int(t.rand64() % uint64(len(tables)))
			if !seen[i] {
				seen[i] = true
				sample = append(sample, tables[i])
			}
		}
	}
	t.mu.Unlock()

	if overLimit {
		var best *fileEntry
		var bestStale int64 = -1
		for _, fe := range sample {
			if s := fe.table.StaleBytes(); s > bestStale {
				best, bestStale = fe, s
			}
		}
		return best
	}
	var best *fileEntry
	bestScore := -1
	for _, fe := range sample {
		if s := t.overlapScore(level, fe, op); s > bestScore {
			best, bestScore = fe, s
		}
	}
	return best
}

// overlapScore implements Algorithm 1: starting from the candidate's live
// block ranges, walk k levels down counting blocks whose key ranges overlap
// the ranges matched at the previous level.
func (t *Tree) overlapScore(level int, fe *fileEntry, op device.Op) int {
	fe.table.ChargeIndexRead(op)
	cur := make([]keys.Range, 0, 8)
	for _, bm := range fe.table.LiveBlockMetas() {
		cur = append(cur, bm.Range())
	}
	score := 0
	for n := 1; n <= t.opts.Depth && len(cur) > 0; n++ {
		lvl := level + n
		if lvl > t.opts.MaxLevels {
			break
		}
		t.mu.RLock()
		var tbls []*semisst.Table
		for _, nfe := range t.levels[lvl] {
			nr := nfe.table.Range()
			for _, c := range cur {
				if nr.Overlaps(c) {
					tbls = append(tbls, nfe.table)
					break
				}
			}
		}
		t.mu.RUnlock()
		var next []keys.Range
		for _, tbl := range tbls {
			tbl.ChargeIndexRead(op)
			for _, bm := range tbl.LiveBlockMetas() {
				r := bm.Range()
				for _, c := range cur {
					if r.Overlaps(c) {
						next = append(next, r)
						score++
						break
					}
				}
			}
		}
		cur = next
	}
	return score
}
