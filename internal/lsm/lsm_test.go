package lsm

import (
	"encoding/binary"
	"fmt"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/semisst"
)

func newTree(t testing.TB, fileSize int64, maxLevels int) (*Tree, *device.Device) {
	t.Helper()
	dev := device.New(device.UnthrottledProfile("sata", 0))
	tr := New(Options{
		Dev:        dev,
		Partition:  0,
		Ratio:      4,
		L1Segments: 2,
		FileSize:   fileSize,
		MaxLevels:  maxLevels,
		Depth:      2,
	})
	return tr, dev
}

func k8(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

func run(lo, n int, seq uint64, tag string) []semisst.Entry {
	out := make([]semisst.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, semisst.Entry{
			Key: keys.InternalKey{
				User: k8(uint64(lo+i) << 44),
				Seq:  seq + uint64(i),
				Kind: keys.KindSet,
			},
			Value: []byte(fmt.Sprintf("%s-%d", tag, lo+i)),
		})
	}
	return out
}

func TestMergeBatchSplitsBySegment(t *testing.T) {
	tr, _ := newTree(t, 1<<20, 3)
	// Keys spread across the whole space land in both L1 segments.
	var entries []semisst.Entry
	for i := 0; i < 64; i++ {
		entries = append(entries, semisst.Entry{
			Key:   keys.InternalKey{User: k8(uint64(i) << 58), Seq: uint64(i + 1), Kind: keys.KindSet},
			Value: []byte("v"),
		})
	}
	if err := tr.MergeBatch(entries, device.Bg); err != nil {
		t.Fatal(err)
	}
	if got := tr.TableCount(1); got != 2 {
		t.Fatalf("L1 tables = %d, want 2 (L1Segments)", got)
	}
}

func TestSegmentAlignment(t *testing.T) {
	tr, _ := newTree(t, 1<<20, 3)
	// Each L2 segment must cover exactly 1/Ratio of its parent L1 segment.
	w1 := tr.segWidth(1)
	w2 := tr.segWidth(2)
	if diff := int64(w1) - int64(w2)*int64(tr.opts.Ratio); diff < -int64(tr.opts.Ratio) || diff > int64(tr.opts.Ratio) {
		t.Fatalf("segment widths not aligned: L1=%d L2=%d ratio=%d", w1, w2, tr.opts.Ratio)
	}
	// A key maps into the L2 segment nested inside its L1 segment.
	user := k8(3 << 60)
	s1, s2 := tr.segFor(1, user), tr.segFor(2, user)
	if s2/tr.opts.Ratio != s1 {
		t.Fatalf("L2 seg %d not nested in L1 seg %d", s2, s1)
	}
}

func TestCompactionPushesOverflowDown(t *testing.T) {
	tr, _ := newTree(t, 32<<10, 3)
	seq := uint64(0)
	for round := 0; round < 30; round++ {
		entries := run(round*200, 400, seq, fmt.Sprintf("r%d", round))
		seq += 400
		if err := tr.MergeBatch(entries, device.Bg); err != nil {
			t.Fatal(err)
		}
		for {
			did, err := tr.MaybeCompact(device.Bg)
			if err != nil {
				t.Fatal(err)
			}
			if !did {
				break
			}
		}
	}
	// L1 within budget, deeper levels populated.
	live1, _ := tr.LevelBytes(1)
	if live1 > tr.capacity(1)*2 {
		t.Fatalf("L1 live %d far over capacity %d", live1, tr.capacity(1))
	}
	live2, _ := tr.LevelBytes(2)
	live3, _ := tr.LevelBytes(3)
	if live2+live3 == 0 {
		t.Fatal("nothing pushed below L1")
	}
	// Deep-level traffic recorded (the Fig. 3b series).
	if tr.Traffic(2).WriteBytes.Load() == 0 {
		t.Fatal("no compaction traffic recorded at L2")
	}
}

func TestFullCompactionReclaimsSpace(t *testing.T) {
	tr, _ := newTree(t, 64<<10, 2)
	// Repeatedly overwrite the same keys so one table accumulates dirt.
	seq := uint64(0)
	for round := 0; round < 12; round++ {
		entries := run(0, 100, seq, fmt.Sprintf("r%d", round))
		seq += 100
		if err := tr.MergeBatch(entries, device.Bg); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.SpaceAmp()
	if before < 1.5 {
		t.Skipf("space amp %f too low to exercise full compaction", before)
	}
	for {
		did, err := tr.MaybeCompact(device.Bg)
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}
	after := tr.SpaceAmp()
	if after >= before {
		t.Fatalf("space amp %f -> %f; full compactions reclaimed nothing", before, after)
	}
	var rewrites uint64
	for l := 1; l <= tr.opts.MaxLevels; l++ {
		rewrites += tr.Traffic(l).FullRewrites.Load()
	}
	if rewrites == 0 {
		t.Fatal("no full rewrites recorded")
	}
}

func TestVictimSelectionUsesOverlapScore(t *testing.T) {
	tr, _ := newTree(t, 16<<10, 3)
	// Build L2 content overlapping segment 0's low range only.
	if err := tr.mergeIntoLevel(2, run(0, 300, 1, "deep"), device.Bg); err != nil {
		t.Fatal(err)
	}
	// Two L1 tables: one overlapping L2 heavily, one not at all.
	if err := tr.mergeIntoLevel(1, run(0, 100, 1000, "hot-overlap"), device.Bg); err != nil {
		t.Fatal(err)
	}
	hi := []semisst.Entry{}
	for i := 0; i < 100; i++ {
		hi = append(hi, semisst.Entry{
			Key:   keys.InternalKey{User: k8(uint64(1<<63) | uint64(i)<<40), Seq: uint64(2000 + i), Kind: keys.KindSet},
			Value: []byte("no-overlap"),
		})
	}
	if err := tr.mergeIntoLevel(1, hi, device.Bg); err != nil {
		t.Fatal(err)
	}
	victim := tr.pickVictim(1, device.Bg)
	if victim == nil {
		t.Fatal("no victim")
	}
	r := victim.table.Range()
	if !r.Contains(k8(1 << 44)) {
		t.Fatalf("picked the non-overlapping table %v; overlap score should prefer the overlapping one", r)
	}
}

func TestGetAcrossLevelsNewestWins(t *testing.T) {
	tr, _ := newTree(t, 1<<20, 3)
	if err := tr.mergeIntoLevel(2, run(0, 50, 1, "old"), device.Bg); err != nil {
		t.Fatal(err)
	}
	if err := tr.mergeIntoLevel(1, run(0, 50, 1000, "new"), device.Bg); err != nil {
		t.Fatal(err)
	}
	v, _, found, err := tr.Get(k8(0), keys.MaxSeq, device.Fg)
	if err != nil || !found || string(v) != "new-0" {
		t.Fatalf("get: %q %v %v", v, found, err)
	}
}

func TestIndexMirrorChargesNVMe(t *testing.T) {
	sata := device.New(device.UnthrottledProfile("sata", 0))
	nvme := device.New(device.UnthrottledProfile("nvme", 0))
	tr := New(Options{
		Dev:        sata,
		Partition:  0,
		Ratio:      4,
		L1Segments: 2,
		FileSize:   16 << 10,
		MaxLevels:  3,
		Depth:      2,
		MetaBackup: nvme,
	})
	seq := uint64(0)
	for round := 0; round < 20; round++ {
		if err := tr.MergeBatch(run(round*200, 400, seq, "v"), device.Bg); err != nil {
			t.Fatal(err)
		}
		seq += 400
		for {
			did, err := tr.MaybeCompact(device.Bg)
			if err != nil {
				t.Fatal(err)
			}
			if !did {
				break
			}
		}
	}
	if nvme.Counters().WriteBytes.Load() == 0 {
		t.Fatal("index mirrors wrote nothing to NVMe")
	}
	if nvme.Counters().ReadBytes.Load() == 0 {
		t.Fatal("compaction planning read no index mirrors from NVMe")
	}
}
