package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/semisst"
)

// TestStressMergeCompactModel hammers one tree with random migration
// batches and compactions, checking semisst invariants and a reference
// model after every step.
func TestStressMergeCompactModel(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("sata", 0))
	tree := New(Options{
		Dev:        dev,
		Partition:  0,
		Ratio:      4,
		L1Segments: 2,
		FileSize:   8 << 10, // tiny: lots of compaction
		MaxLevels:  3,
		Depth:      2,
	})
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(31))
	seq := uint64(0)

	key := func(i int) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(i)<<44)
		return b
	}

	for round := 0; round < 120; round++ {
		// Random sorted batch, like one zone demotion.
		n := 20 + rng.Intn(200)
		batch := map[int]string{}
		for i := 0; i < n; i++ {
			batch[rng.Intn(3000)] = fmt.Sprintf("r%d-%d", round, i)
		}
		ids := make([]int, 0, len(batch))
		for id := range batch {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		entries := make([]semisst.Entry, 0, len(ids))
		for _, id := range ids {
			seq++
			v := batch[id]
			entries = append(entries, semisst.Entry{
				Key:   keys.InternalKey{User: key(id), Seq: seq, Kind: keys.KindSet},
				Value: []byte(v),
			})
			ref[string(key(id))] = v
		}
		if err := tree.MergeBatch(entries, device.Bg); err != nil {
			t.Fatalf("round %d merge: %v", round, err)
		}
		for {
			did, err := tree.MaybeCompact(device.Bg)
			if err != nil {
				t.Fatalf("round %d compact: %v", round, err)
			}
			if !did {
				break
			}
		}
		if err := tree.checkAllInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Spot-check the model.
		for k, want := range ref {
			if rng.Intn(20) != 0 {
				continue
			}
			v, kind, found, err := tree.Get([]byte(k), keys.MaxSeq, device.Fg)
			if err != nil || !found || kind != keys.KindSet || string(v) != want {
				t.Fatalf("round %d get %x: %q %v %v %v (want %q)", round, k, v, kind, found, err, want)
			}
		}
	}
	// Full final verification including scan order.
	it := tree.NewScanIter(nil, device.Fg)
	defer it.Close()
	var prev []byte
	seen := 0
	for ; it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("scan out of order")
		}
		if want := ref[string(it.Key())]; want != string(it.Value()) {
			t.Fatalf("scan %x: %q want %q", it.Key(), it.Value(), want)
		}
		prev = append(prev[:0], it.Key()...)
		seen++
	}
	if seen != len(ref) {
		t.Fatalf("scan saw %d keys, ref has %d", seen, len(ref))
	}
}

// checkAllInvariants validates every table in the tree.
func (t *Tree) checkAllInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for level := 1; level <= t.opts.MaxLevels; level++ {
		for seg, fe := range t.levels[level] {
			if err := fe.table.CheckInvariants(); err != nil {
				return fmt.Errorf("L%d seg %d: %w", level, seg, err)
			}
		}
	}
	return nil
}

// TestStressWithDeletes mixes tombstones into the batches.
func TestStressWithDeletes(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("sata", 0))
	tree := New(Options{
		Dev: dev, Partition: 0, Ratio: 4, L1Segments: 2,
		FileSize: 8 << 10, MaxLevels: 3, Depth: 2,
	})
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(77))
	seq := uint64(0)
	key := func(i int) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(i)<<44)
		return b
	}
	for round := 0; round < 80; round++ {
		type op struct {
			del bool
			val string
		}
		batch := map[int]op{}
		for i := 0; i < 100; i++ {
			id := rng.Intn(1500)
			if rng.Intn(4) == 0 {
				batch[id] = op{del: true}
			} else {
				batch[id] = op{val: fmt.Sprintf("r%d-%d", round, i)}
			}
		}
		ids := make([]int, 0, len(batch))
		for id := range batch {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var entries []semisst.Entry
		for _, id := range ids {
			seq++
			o := batch[id]
			if o.del {
				entries = append(entries, semisst.Entry{
					Key: keys.InternalKey{User: key(id), Seq: seq, Kind: keys.KindDelete},
				})
				delete(ref, string(key(id)))
			} else {
				entries = append(entries, semisst.Entry{
					Key:   keys.InternalKey{User: key(id), Seq: seq, Kind: keys.KindSet},
					Value: []byte(o.val),
				})
				ref[string(key(id))] = o.val
			}
		}
		if err := tree.MergeBatch(entries, device.Bg); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for {
			did, err := tree.MaybeCompact(device.Bg)
			if err != nil {
				t.Fatalf("round %d compact: %v", round, err)
			}
			if !did {
				break
			}
		}
		if err := tree.checkAllInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for k, want := range ref {
		v, kind, found, err := tree.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil || !found || kind == keys.KindDelete || string(v) != want {
			t.Fatalf("get %x: %q %v %v %v want %q", k, v, kind, found, err, want)
		}
	}
	// Deleted keys: either absent or shadowed by a newer tombstone.
	deleted := 0
	for i := 0; i < 1500; i++ {
		k := key(i)
		if _, ok := ref[string(k)]; ok {
			continue
		}
		_, kind, found, _ := tree.Get(k, keys.MaxSeq, device.Fg)
		if found && kind != keys.KindDelete {
			t.Fatalf("deleted key %d resurrected", i)
		}
		deleted++
	}
	if deleted == 0 {
		t.Fatal("test exercised no deletions")
	}
}
