// Package lsm implements HyperDB's capacity-tier LSM tree over
// semi-SSTables (§3.2, §3.4). The performance tier acts as L0, so the tree
// starts at L1. Every level is partitioned into key-space segments: the
// largest level divides the key space uniformly, and each shallower level's
// files cover exactly T (the size ratio) contiguous child files — the
// alignment that bounds key-range overlap during deep compaction. Levels
// fill in place: migration batches merge into the L1 file owning their
// segment, and preemptive block compaction pushes overflow downward at block
// granularity.
package lsm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hyperdb/internal/cache"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/semisst"
	"hyperdb/internal/stats"
	"hyperdb/internal/zone"
)

// Options configures a capacity-tier tree (one per partition).
type Options struct {
	// Dev is the capacity-tier device.
	Dev *device.Device
	// Partition names this tree's files and bounds its key space.
	Partition int
	// KeyLo and KeyHi bound the partition's 64-bit key-prefix space
	// (KeyHi = 0 means the top of the space).
	KeyLo, KeyHi uint64
	// Ratio is T, the level size ratio (paper default 10).
	Ratio int
	// L1Segments is the number of files at L1 (each deeper level has ×T).
	L1Segments int
	// FileSize is the target live size of one semi-SSTable; a level's
	// capacity is its segment count × FileSize.
	FileSize int64
	// MaxLevels bounds the tree depth.
	MaxLevels int
	// Depth is k, how many levels preemptive compaction chases blocks.
	Depth int
	// TClean is the dirty-block ratio past which a table is fully
	// compacted (paper: 0.5).
	TClean float64
	// SpaceAmpLimit switches victim selection to dirtiest-first when
	// FileBytes/LiveBytes exceeds it (paper: 1.5).
	SpaceAmpLimit float64
	// PowerK is the power-of-k sampling width for victim candidates
	// (paper: 8).
	PowerK int
	// PageCache serves data-block reads.
	PageCache cache.BlockCache
	// MetaBackup mirrors semi-SSTable indexes to the performance tier.
	MetaBackup *device.Device
	// Compress is the per-tier block compression policy: every level this
	// tree writes lives on the capacity (SATA) tier, so the policy's
	// per-level codec applies here and the zone tier stays raw by
	// construction. Reads are mixed-format regardless of the policy.
	Compress compress.Policy
	// Seed makes victim sampling deterministic.
	Seed uint64
}

func (o *Options) fill() {
	if o.Ratio <= 1 {
		o.Ratio = 10
	}
	if o.L1Segments <= 0 {
		o.L1Segments = 2
	}
	if o.FileSize <= 0 {
		o.FileSize = 2 << 20
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 4
	}
	if o.Depth <= 0 {
		o.Depth = 2
	}
	if o.TClean <= 0 {
		o.TClean = 0.5
	}
	if o.SpaceAmpLimit <= 0 {
		o.SpaceAmpLimit = 1.5
	}
	if o.PowerK <= 0 {
		o.PowerK = 8
	}
	if o.KeyHi == 0 {
		o.KeyHi = math.MaxUint64
	}
	if o.Seed == 0 {
		o.Seed = 0x9E3779B97F4A7C15
	}
}

// mirrorDepth is the deepest level whose semi-SSTable index is mirrored to
// the performance tier (§3.1). Preemptive compaction planning concentrates
// its index reads on the levels it drains and their immediate children.
const mirrorDepth = 2

// fileEntry is one segment-aligned semi-SSTable within a level. Entries are
// reference-counted so a compaction can drain and delete a table without
// yanking its file out from under a concurrent read.
type fileEntry struct {
	table *semisst.Table
	seg   int // segment index within the level
	refs  atomic.Int32
	dev   *device.Device
}

// acquire takes a reader reference; callers hold t.mu (any mode).
func (fe *fileEntry) acquire() { fe.refs.Add(1) }

// release drops a reference, deleting the file at zero.
func (fe *fileEntry) release() {
	if fe.refs.Add(-1) == 0 {
		fe.table.Close()
		fe.dev.Remove(fe.table.File().Name())
	}
}

// LevelTraffic tallies compaction I/O per level — the Figure 3b breakdown.
// RawBytes/StoredBytes track uncompressed vs on-device sizes of every data
// block written at the level; their ratio is the level's compression
// ratio, and StoredBytes vs RawBytes is the compaction traffic the codec
// saved.
type LevelTraffic struct {
	ReadBytes    stats.Counter
	WriteBytes   stats.Counter
	Compactions  stats.Counter
	FullRewrites stats.Counter
	RawBytes     stats.Counter
	StoredBytes  stats.Counter
}

// Tree is the capacity-tier LSM for one partition.
type Tree struct {
	opts Options

	// mutMu serialises structural mutations (merges, compactions): the
	// migration worker, the compaction worker and foreground write stalls
	// all mutate the tree, and a compaction must not drop a table out from
	// under an in-flight merge. Reads only take mu.
	mutMu sync.Mutex

	mu          sync.RWMutex
	levels      []map[int]*fileEntry // levels[0] unused; levels[k][seg]
	nextGen     uint64
	rnd         uint64
	traffic     []*LevelTraffic // parallel to levels
	pendingFull []*fileEntry    // tables past TClean awaiting full compaction
}

// New creates an empty tree.
func New(opts Options) *Tree {
	opts.fill()
	t := &Tree{opts: opts, rnd: opts.Seed}
	t.levels = make([]map[int]*fileEntry, opts.MaxLevels+1)
	t.traffic = make([]*LevelTraffic, opts.MaxLevels+1)
	for i := 1; i <= opts.MaxLevels; i++ {
		t.levels[i] = make(map[int]*fileEntry)
		t.traffic[i] = &LevelTraffic{}
	}
	return t
}

// segments returns the number of key-space segments at level k.
func (t *Tree) segments(level int) int {
	n := t.opts.L1Segments
	for i := 1; i < level; i++ {
		n *= t.opts.Ratio
	}
	return n
}

// segWidth returns the key-prefix width of one segment at level k.
func (t *Tree) segWidth(level int) uint64 {
	span := t.opts.KeyHi - t.opts.KeyLo
	n := uint64(t.segments(level))
	w := span / n
	if w == 0 {
		w = 1
	}
	return w
}

// segFor maps a user key to its segment index at level k.
func (t *Tree) segFor(level int, user []byte) int {
	k64 := zone.Key64(user)
	if k64 < t.opts.KeyLo {
		return 0
	}
	seg := int((k64 - t.opts.KeyLo) / t.segWidth(level))
	if max := t.segments(level) - 1; seg > max {
		seg = max
	}
	return seg
}

// capacity returns the live-byte budget of level k. The bottom level is
// unbounded: data settles there.
func (t *Tree) capacity(level int) int64 {
	if level >= t.opts.MaxLevels {
		return math.MaxInt64
	}
	return int64(t.segments(level)) * t.opts.FileSize
}

// LevelBytes returns (live, file) byte totals for level k.
func (t *Tree) LevelBytes(level int) (live, file int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.levelBytesLocked(level)
}

func (t *Tree) levelBytesLocked(level int) (live, file int64) {
	for _, fe := range t.levels[level] {
		live += fe.table.LiveBytes()
		file += fe.table.FileBytes()
	}
	return live, file
}

// SpaceAmp returns the §3.4 space-amplification metric: data-block bytes
// including dirty blocks over live data-block bytes (≥ 1). Index blocks are
// metadata, not amplification.
func (t *Tree) SpaceAmp() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var live, stale int64
	for l := 1; l <= t.opts.MaxLevels; l++ {
		for _, fe := range t.levels[l] {
			live += fe.table.LiveBytes()
			stale += fe.table.StaleBytes()
		}
	}
	if live == 0 {
		return 1
	}
	return float64(live+stale) / float64(live)
}

// TotalFileBytes returns the tree's on-device footprint.
func (t *Tree) TotalFileBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var file int64
	for l := 1; l <= t.opts.MaxLevels; l++ {
		_, fl := t.levelBytesLocked(l)
		file += fl
	}
	return file
}

// Levels returns the configured maximum depth.
func (t *Tree) Levels() int { return t.opts.MaxLevels }

// Traffic returns level k's compaction counters.
func (t *Tree) Traffic(level int) *LevelTraffic { return t.traffic[level] }

// TableCount returns the number of live tables at level k.
func (t *Tree) TableCount(level int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.levels[level])
}

// tableOptions assembles the semisst options for a table at the given
// level: the policy's per-level codec plus the level's raw/stored byte
// counters, so every append (build or merge) feeds the compression stats.
func (t *Tree) tableOptions(level int, metaDev *device.Device) semisst.Options {
	tr := t.traffic[level]
	return semisst.Options{
		PageCache:   t.opts.PageCache,
		MetaBackup:  metaDev,
		Codec:       t.opts.Compress.CodecFor(level),
		RawBytes:    &tr.RawBytes,
		StoredBytes: &tr.StoredBytes,
	}
}

// newTable creates a semi-SSTable for (level, seg) from sorted entries.
// Caller holds mu.
func (t *Tree) newTable(level, seg int, entries []semisst.Entry, op device.Op) (*fileEntry, error) {
	t.nextGen++
	name := fmt.Sprintf("p%d-L%d-S%d-G%d.sst", t.opts.Partition, level, seg, t.nextGen)
	f, err := t.opts.Dev.Create(name)
	if err != nil {
		return nil, err
	}
	// Mirror upper-level indexes only: compaction planning reads them
	// constantly, while the deep levels hold ~90% of the data and their
	// indexes would crowd the performance tier out of payload space at
	// small key:value ratios.
	var metaDev *device.Device
	if level <= mirrorDepth {
		metaDev = t.opts.MetaBackup
	}
	tbl, err := semisst.Build(f, t.tableOptions(level, metaDev), entries, op)
	if err != nil {
		// Don't leak the half-built file (or its mirror): a later build
		// would collide on the name and recovery would have to discard it.
		t.opts.Dev.Remove(name)
		if metaDev != nil {
			metaDev.Remove(name + ".idx")
		}
		return nil, err
	}
	fe := &fileEntry{table: tbl, seg: seg, dev: t.opts.Dev}
	fe.refs.Store(1)
	t.levels[level][seg] = fe
	return fe, nil
}

// dropTable removes a drained table from the level and drops the tree's
// reference; the file disappears once in-flight readers finish. Caller
// holds mu.
func (t *Tree) dropTable(level int, fe *fileEntry) {
	delete(t.levels[level], fe.seg)
	fe.release()
}

// Get searches levels shallow to deep for user at snapshot seq.
func (t *Tree) Get(user []byte, seq uint64, op device.Op) (value []byte, kind keys.Kind, found bool, err error) {
	for level := 1; level <= t.opts.MaxLevels; level++ {
		t.mu.RLock()
		fe := t.levels[level][t.segFor(level, user)]
		if fe != nil {
			fe.acquire()
		}
		t.mu.RUnlock()
		if fe == nil {
			continue
		}
		v, k, ok, err := fe.table.Get(user, seq, op)
		fe.release()
		if err != nil {
			return nil, 0, false, err
		}
		if ok {
			return v, k, true, nil
		}
	}
	return nil, 0, false, nil
}

// MergeBatch integrates a sorted migration batch into L1, splitting it
// across the segment files that own the keys. Entries must be sorted by
// user key with one version per key.
func (t *Tree) MergeBatch(entries []semisst.Entry, op device.Op) error {
	if len(entries) == 0 {
		return nil
	}
	t.mutMu.Lock()
	defer t.mutMu.Unlock()
	return t.mergeIntoLevel(1, entries, op)
}

// mergeIntoLevel splits entries by segment at the level and merges each
// slice into its file (creating files as needed).
func (t *Tree) mergeIntoLevel(level int, entries []semisst.Entry, op device.Op) error {
	drop := level == t.opts.MaxLevels // tombstones die at the bottom
	i := 0
	for i < len(entries) {
		seg := t.segFor(level, entries[i].Key.User)
		j := i + 1
		for j < len(entries) && t.segFor(level, entries[j].Key.User) == seg {
			j++
		}
		slice := entries[i:j]
		i = j

		t.mu.Lock()
		fe := t.levels[level][seg]
		if fe == nil {
			if drop {
				slice = filterTombstones(slice)
			}
			if len(slice) > 0 {
				nfe, err := t.newTable(level, seg, slice, op)
				if err != nil {
					t.mu.Unlock()
					return err
				}
				t.traffic[level].WriteBytes.Add(uint64(nfe.table.FileBytes()))
			}
			t.mu.Unlock()
			continue
		}
		t.mu.Unlock()

		before := fe.table.FileBytes()
		st, err := fe.table.Merge(slice, drop, op)
		if err != nil {
			return err
		}
		t.traffic[level].ReadBytes.Add(uint64(st.BytesRead))
		if after := fe.table.FileBytes(); after > before {
			t.traffic[level].WriteBytes.Add(uint64(after - before))
		}
		t.noteDirty(level, fe)
	}
	return nil
}

func filterTombstones(entries []semisst.Entry) []semisst.Entry {
	out := entries[:0:0]
	for _, e := range entries {
		if e.Key.Kind != keys.KindDelete {
			out = append(out, e)
		}
	}
	return out
}

// noteDirty queues a table for full compaction when its dirty ratio passes
// T_clean (§3.4).
func (t *Tree) noteDirty(level int, fe *fileEntry) {
	if fe.table.DirtyRatio() <= t.opts.TClean {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.pendingFull {
		if p == fe {
			return
		}
	}
	t.pendingFull = append(t.pendingFull, fe)
}

// rand64 steps the tree's xorshift generator. Caller holds mu.
func (t *Tree) rand64() uint64 {
	t.rnd ^= t.rnd << 13
	t.rnd ^= t.rnd >> 7
	t.rnd ^= t.rnd << 17
	return t.rnd
}
