// Package harness runs the paper's experiments: it builds any of the four
// engines (HyperDB, RocksDB-style, RocksDB-SC, PrismDB-style) over a fresh
// pair of simulated devices, loads a dataset, replays YCSB operation
// streams with concurrent clients, and reports throughput, latency
// percentiles, traffic volumes and utilisation — the raw series behind
// every figure.
package harness

import (
	"errors"
	"fmt"

	"hyperdb"
	"hyperdb/internal/baseline/prismish"
	"hyperdb/internal/baseline/rocksish"
	"hyperdb/internal/compress"
	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// BatchOp is one write in a WriteBatch: a put, or a delete when Delete is
// set.
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// Engine is the uniform interface the runner drives. Every engine also
// implements the batch calls so figures comparing batched throughput stay
// apples-to-apples.
type Engine interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	// WriteBatch applies ops in slice order (last-write-wins duplicates).
	WriteBatch(ops []BatchOp) error
	// MultiGet returns values aligned with keys; nil marks a miss.
	MultiGet(keys [][]byte) ([][]byte, error)
	Scan(start []byte, limit int) ([]KV, error)
	Drain() error
	Close() error
	Label() string
}

// ErrNotFound is the harness-normalised miss error.
var ErrNotFound = errors.New("harness: not found")

// EngineKind names the four §4.1 systems.
type EngineKind string

// The four engines under test.
const (
	KindHyperDB   EngineKind = "hyperdb"
	KindRocksDB   EngineKind = "rocksdb"
	KindRocksDBSC EngineKind = "rocksdb-sc"
	KindPrismDB   EngineKind = "prismdb"
)

// AllKinds lists the engines in the paper's presentation order.
var AllKinds = []EngineKind{KindRocksDB, KindRocksDBSC, KindPrismDB, KindHyperDB}

// Config sizes one experiment's devices and engine parameters. The defaults
// are the paper's setup scaled down ~400×: the paper loads 100 GiB and runs
// 100 M ops on 960 GB devices; we default to a 256 MiB dataset so every
// figure regenerates in seconds.
type Config struct {
	// NVMeCapacity and SATACapacity size the devices.
	NVMeCapacity int64
	SATACapacity int64
	// Unthrottled removes device timing (unit tests; traffic still counts).
	Unthrottled bool
	// BackgroundThreads for the baselines' compaction pools (paper: 8).
	BackgroundThreads int
	// Partitions for HyperDB (paper: 8).
	Partitions int
	// CacheBytes is the shared DRAM budget (paper: 64 MiB; scale it with
	// the dataset or DRAM serves everything and tiers stop mattering).
	CacheBytes int64
	// FileSize is the SSTable / migration batch size.
	FileSize int64
	// Ratio overrides the baselines' level size ratio (default 6).
	Ratio int
	// DisableBackground turns engines' workers off (deterministic tests).
	DisableBackground bool
	// Tracker overrides HyperDB's hotness-tracker configuration (zero =
	// paper defaults, bloom mode). Baseline engines ignore it.
	Tracker hotness.Config
	// Compress names the capacity-tier block codec for every engine (same
	// syntax as hyperdb.Options.Compress: "" / "off" disables, "on" / "lz"
	// enables). The zone tier and memtables stay raw either way.
	Compress string
}

// Fill applies scaled defaults.
func (c *Config) Fill() {
	if c.NVMeCapacity <= 0 {
		c.NVMeCapacity = 48 << 20
	}
	if c.SATACapacity <= 0 {
		c.SATACapacity = 4 << 30
	}
	if c.BackgroundThreads <= 0 {
		c.BackgroundThreads = 8
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 8 << 20
	}
	if c.FileSize <= 0 {
		c.FileSize = 1 << 20
	}
	if c.Ratio <= 1 {
		c.Ratio = 6
	}
}

// Instance is a built engine plus its devices.
type Instance struct {
	Engine Engine
	NVMe   *device.Device
	SATA   *device.Device
	Kind   EngineKind
}

// Build constructs a fresh engine of the given kind over new devices.
func Build(kind EngineKind, cfg Config) (*Instance, error) {
	cfg.Fill()
	codec, err := compress.Parse(cfg.Compress)
	if err != nil {
		return nil, err
	}
	policy := compress.Policy{Codec: codec, MinLevel: 1}
	var nvme, sata *device.Device
	if cfg.Unthrottled {
		nvme = device.New(device.UnthrottledProfile("nvme", cfg.NVMeCapacity))
		sata = device.New(device.UnthrottledProfile("sata", cfg.SATACapacity))
	} else {
		nvme = device.New(device.NVMeProfile(cfg.NVMeCapacity))
		sata = device.New(device.SATAProfile(cfg.SATACapacity))
	}
	inst := &Instance{NVMe: nvme, SATA: sata, Kind: kind}
	switch kind {
	case KindHyperDB:
		db, err := hyperdb.Open(hyperdb.Options{
			NVMeDevice:        nvme,
			SATADevice:        sata,
			Partitions:        cfg.Partitions,
			CacheBytes:        cfg.CacheBytes,
			MigrationBatch:    cfg.FileSize,
			DisableBackground: cfg.DisableBackground,
			Tracker:           cfg.Tracker,
			Compress:          cfg.Compress,
		})
		if err != nil {
			return nil, err
		}
		inst.Engine = &hyperAdapter{db: db}
	case KindRocksDB, KindRocksDBSC:
		// Scale the memtable with the NVMe budget so the embedding
		// deployment can actually host its top levels there, like the
		// paper's RocksDB-with-db_paths setup.
		mem := cfg.NVMeCapacity / 24
		if mem < 128<<10 {
			mem = 128 << 10
		}
		if mem > 64<<20 {
			mem = 64 << 20
		}
		db, err := rocksish.Open(rocksish.Options{
			NVMe:              nvme,
			SATA:              sata,
			SecondaryCache:    kind == KindRocksDBSC,
			MemtableBytes:     mem,
			CacheBytes:        cfg.CacheBytes,
			FileSize:          cfg.FileSize,
			L1Target:          4 * cfg.FileSize,
			Ratio:             cfg.Ratio,
			MaxLevels:         5,
			BackgroundThreads: cfg.BackgroundThreads,
			DisableBackground: cfg.DisableBackground,
			Compress:          policy,
		})
		if err != nil {
			return nil, err
		}
		inst.Engine = &rocksAdapter{db: db, label: string(kind)}
	case KindPrismDB:
		db, err := prismish.Open(prismish.Options{
			NVMe:              nvme,
			SATA:              sata,
			CacheBytes:        cfg.CacheBytes,
			FileSize:          cfg.FileSize,
			L1Target:          4 * cfg.FileSize,
			Ratio:             cfg.Ratio,
			MaxLevels:         4,
			BackgroundThreads: cfg.BackgroundThreads,
			DisableBackground: cfg.DisableBackground,
			Compress:          policy,
		})
		if err != nil {
			return nil, err
		}
		inst.Engine = &prismAdapter{db: db}
	default:
		return nil, fmt.Errorf("harness: unknown engine %q", kind)
	}
	return inst, nil
}

type hyperAdapter struct{ db *hyperdb.DB }

func (a *hyperAdapter) Put(k, v []byte) error { return a.db.Put(k, v) }
func (a *hyperAdapter) Delete(k []byte) error { return a.db.Delete(k) }
func (a *hyperAdapter) Drain() error          { return a.db.DrainBackground() }
func (a *hyperAdapter) Close() error          { return a.db.Close() }
func (a *hyperAdapter) Label() string         { return "HyperDB" }
func (a *hyperAdapter) DB() *hyperdb.DB       { return a.db }
func (a *hyperAdapter) Stats() core.Stats     { return a.db.Stats() }
func (a *hyperAdapter) Get(k []byte) ([]byte, error) {
	v, err := a.db.Get(k)
	if errors.Is(err, hyperdb.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (a *hyperAdapter) WriteBatch(ops []BatchOp) error {
	hops := make([]hyperdb.BatchOp, len(ops))
	for i, op := range ops {
		hops[i] = hyperdb.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete}
	}
	return a.db.WriteBatch(hops)
}
func (a *hyperAdapter) MultiGet(keys [][]byte) ([][]byte, error) {
	return a.db.MultiGet(keys)
}
func (a *hyperAdapter) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := a.db.Scan(start, limit)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

type rocksAdapter struct {
	db    *rocksish.DB
	label string
}

func (a *rocksAdapter) Put(k, v []byte) error { return a.db.Put(k, v) }
func (a *rocksAdapter) Delete(k []byte) error { return a.db.Delete(k) }
func (a *rocksAdapter) Drain() error          { return a.db.Drain() }
func (a *rocksAdapter) Close() error          { return a.db.Close() }
func (a *rocksAdapter) Label() string {
	if a.label == string(KindRocksDBSC) {
		return "RocksDB-SC"
	}
	return "RocksDB"
}
func (a *rocksAdapter) DB() *rocksish.DB { return a.db }
func (a *rocksAdapter) Get(k []byte) ([]byte, error) {
	v, err := a.db.Get(k)
	if errors.Is(err, rocksish.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (a *rocksAdapter) WriteBatch(ops []BatchOp) error {
	rops := make([]rocksish.BatchOp, len(ops))
	for i, op := range ops {
		rops[i] = rocksish.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete}
	}
	return a.db.WriteBatch(rops)
}
func (a *rocksAdapter) MultiGet(keys [][]byte) ([][]byte, error) {
	return a.db.MultiGet(keys)
}
func (a *rocksAdapter) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := a.db.Scan(start, limit)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

type prismAdapter struct{ db *prismish.DB }

func (a *prismAdapter) Put(k, v []byte) error { return a.db.Put(k, v) }
func (a *prismAdapter) Delete(k []byte) error { return a.db.Delete(k) }
func (a *prismAdapter) Drain() error          { return a.db.Drain() }
func (a *prismAdapter) Close() error          { return a.db.Close() }
func (a *prismAdapter) Label() string         { return "PrismDB" }
func (a *prismAdapter) DB() *prismish.DB      { return a.db }
func (a *prismAdapter) Get(k []byte) ([]byte, error) {
	v, err := a.db.Get(k)
	if errors.Is(err, prismish.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (a *prismAdapter) WriteBatch(ops []BatchOp) error {
	pops := make([]prismish.BatchOp, len(ops))
	for i, op := range ops {
		pops[i] = prismish.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete}
	}
	return a.db.WriteBatch(pops)
}
func (a *prismAdapter) MultiGet(keys [][]byte) ([][]byte, error) {
	return a.db.MultiGet(keys)
}
func (a *prismAdapter) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := a.db.Scan(start, limit)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}
