package harness

import (
	"fmt"
	"io"

	"hyperdb"
	"hyperdb/internal/device"
	"hyperdb/internal/ycsb"
)

// Ablation quantifies HyperDB's individual design choices by rebuilding the
// engine with one knob changed at a time and re-running a YCSB-A measurement:
//
//   - preemptive compaction depth k (1 disables the §3.4 preemptive chase);
//   - T_clean, the dirty ratio that forces full table compactions;
//   - the hot-zone budget (≈0 effectively disables §3.5 promotions);
//   - the §3.1 NVMe index mirror.
//
// Reported per variant: throughput, background write bytes per tier, space
// amplification, and migration page reads — the quantities each knob is
// supposed to move.
func Ablation(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Ablation", Caption: "HyperDB design-choice ablations (YCSB-A)"}

	type variant struct {
		name string
		mut  func(*hyperdb.Options)
	}
	variants := []variant{
		{"baseline", func(o *hyperdb.Options) {}},
		{"depth=1(no-preempt)", func(o *hyperdb.Options) { o.CompactionDepth = 1 }},
		{"depth=3", func(o *hyperdb.Options) { o.CompactionDepth = 3 }},
		{"tclean=0.25", func(o *hyperdb.Options) { o.TClean = 0.25 }},
		{"tclean=0.90", func(o *hyperdb.Options) { o.TClean = 0.90 }},
		{"no-hot-zone", func(o *hyperdb.Options) { o.HotZoneFraction = 0.01 }},
		{"no-index-mirror", func(o *hyperdb.Options) { o.DisableIndexMirror = true }},
	}

	for _, v := range variants {
		cfg := s.config()
		var nvme, sata *device.Device
		if cfg.Unthrottled {
			nvme = device.New(device.UnthrottledProfile("nvme", cfg.NVMeCapacity))
			sata = device.New(device.UnthrottledProfile("sata", cfg.SATACapacity))
		} else {
			nvme = device.New(device.NVMeProfile(cfg.NVMeCapacity))
			sata = device.New(device.SATAProfile(cfg.SATACapacity))
		}
		opts := hyperdb.Options{
			NVMeDevice:     nvme,
			SATADevice:     sata,
			Partitions:     cfg.Partitions,
			CacheBytes:     cfg.CacheBytes,
			MigrationBatch: cfg.FileSize,
		}
		v.mut(&opts)
		db, err := hyperdb.Open(opts)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		eng := &hyperAdapter{db: db}
		if err := Load(eng, s.Records, s.ValueSize, s.Clients, 7); err != nil {
			db.Close()
			return nil, fmt.Errorf("ablation %s load: %w", v.name, err)
		}
		res, err := Run(eng, RunConfig{
			Clients: s.Clients, Ops: s.Ops, Workload: ycsb.WorkloadA,
			Records: s.Records, ValueSize: s.ValueSize,
		})
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("ablation %s run: %w", v.name, err)
		}
		st := db.Stats()
		cells := []Cell{
			{"tput", res.Throughput / 1000, "kops"},
			{"bgWriteNVMe", float64(st.NVMe.BgWriteBytes) / (1 << 20), "MiB"},
			{"bgWriteSATA", float64(st.SATA.BgWriteBytes) / (1 << 20), "MiB"},
			{"spaceAmp", st.SpaceAmp, "x"},
			{"readP99", float64(res.ReadLat.P99()) / 1e3, "us"},
		}
		if st.Zone.MigratedObjects > 0 {
			cells = append(cells, Cell{"pagesPerObj",
				float64(st.Zone.MigrationPageReads) / float64(st.Zone.MigratedObjects), ""})
		}
		db.Close()
		t.Rows = append(t.Rows, Row{Label: v.name, Cells: cells})
		if progress != nil {
			fmt.Fprintf(progress, "ablation: %s %.0f kops\n", v.name, res.Throughput/1000)
		}
	}

	// Scan prefetcher (the §4.2 future-work optimisation): measured on the
	// scan-heavy workload E, where it amortises zone page reads.
	for _, prefetch := range []bool{false, true} {
		cfg := s.config()
		var nvme, sata *device.Device
		if cfg.Unthrottled {
			nvme = device.New(device.UnthrottledProfile("nvme", cfg.NVMeCapacity))
			sata = device.New(device.UnthrottledProfile("sata", cfg.SATACapacity))
		} else {
			nvme = device.New(device.NVMeProfile(cfg.NVMeCapacity))
			sata = device.New(device.SATAProfile(cfg.SATACapacity))
		}
		db, err := hyperdb.Open(hyperdb.Options{
			NVMeDevice:     nvme,
			SATADevice:     sata,
			Partitions:     cfg.Partitions,
			CacheBytes:     cfg.CacheBytes,
			MigrationBatch: cfg.FileSize,
			ScanPrefetch:   prefetch,
		})
		if err != nil {
			return nil, err
		}
		eng := &hyperAdapter{db: db}
		if err := Load(eng, s.Records, s.ValueSize, s.Clients, 7); err != nil {
			db.Close()
			return nil, err
		}
		scanOps := s.Ops / 10
		if scanOps == 0 {
			scanOps = 1
		}
		res, err := Run(eng, RunConfig{
			Clients: s.Clients, Ops: scanOps, Workload: ycsb.WorkloadE,
			Records: s.Records, ValueSize: s.ValueSize,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		st := db.Stats()
		label := "scan-prefetch=off"
		if prefetch {
			label = "scan-prefetch=on"
		}
		t.Rows = append(t.Rows, Row{Label: label, Cells: []Cell{
			{"tputE", res.Throughput / 1000, "kops"},
			{"nvmeRead", float64(st.NVMe.ReadBytes) / (1 << 20), "MiB"},
			{"scanP99", float64(res.ScanLat.P99()) / 1e3, "us"},
		}})
		db.Close()
		if progress != nil {
			fmt.Fprintf(progress, "ablation: %s %.0f kops\n", label, res.Throughput/1000)
		}
	}
	return t, nil
}
