package harness

import (
	"fmt"
	"io"
	"sort"

	"hyperdb/internal/hotness"
	"hyperdb/internal/ycsb"
)

// HotQuality measures promotion quality of the hotness discriminator in
// both tracker modes on a skewed-Zipf YCSB-A run: the deterministic client
// streams are replayed offline to tally every key's true access count, the
// top 1% of accessed keys form the ground-truth hot set, and the tracker's
// classification over the whole keyspace is scored against it (recall =
// share of truly-hot keys classified hot; precision = share of classified
// keys that are truly hot). Device background traffic rides along so the
// sketch mode's promotion decisions can be checked for equivalent migration
// behaviour, and the tracker stats line carries the memory cost of each
// representation.
func HotQuality(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "HotQ", Caption: "Hotness discriminator promotion quality: bloom vs sketch on zipfian YCSB-A (top-1% ground truth)"}
	const seed = 42
	wl := ycsb.WorkloadA
	// One client: with background workers also off (below), both modes see a
	// byte-identical operation sequence and the traffic comparison measures
	// promotion decisions alone. Multi-client interleaving would reshuffle
	// stall-driven migrations by ±50% run to run.
	s.Clients = 1

	// Replay the exact generator streams Run will use and tally true access
	// counts. Workload A never inserts, so the key population is stable.
	truth := make(map[string]int64, s.Records)
	perClient := s.Ops / int64(s.Clients)
	if perClient == 0 {
		perClient = 1
	}
	for id := int64(0); id < int64(s.Clients); id++ {
		gen := ycsb.NewGenerator(wl, s.Records, s.ValueSize, seed*1000+id)
		gen.SetInsertStride(id, int64(s.Clients))
		for i := int64(0); i < perClient; i++ {
			truth[string(gen.Next().Key)]++
		}
	}
	type kc struct {
		key string
		n   int64
	}
	ranked := make([]kc, 0, len(truth))
	for k, n := range truth {
		ranked = append(ranked, kc{k, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].key < ranked[j].key
	})
	topN := int(s.Records / 100)
	if topN < 1 {
		topN = 1
	}
	if topN > len(ranked) {
		topN = len(ranked)
	}
	top := make(map[string]bool, topN)
	for _, e := range ranked[:topN] {
		top[e.key] = true
	}

	for _, mode := range []hotness.Mode{hotness.ModeBloom, hotness.ModeSketch} {
		cfg := s.config()
		cfg.Tracker.Mode = mode
		// Async background workers make migration traffic depend on goroutine
		// scheduling (±2× run to run), which would drown the mode comparison.
		// With workers off, demotion happens synchronously on write stalls and
		// in the final drain — so the traffic delta is attributable to the
		// discriminator's promotion decisions, not timing luck.
		cfg.DisableBackground = true
		inst, err := Build(KindHyperDB, cfg)
		if err != nil {
			return nil, err
		}
		if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
			inst.Engine.Close()
			return nil, err
		}
		nv0 := inst.NVMe.Counters().Snapshot()
		sa0 := inst.SATA.Counters().Snapshot()
		if _, err := Run(inst.Engine, RunConfig{
			Clients: s.Clients, Ops: s.Ops, Workload: wl,
			Records: s.Records, ValueSize: s.ValueSize, Seed: seed,
		}); err != nil {
			inst.Engine.Close()
			return nil, err
		}
		if err := inst.Engine.Drain(); err != nil {
			inst.Engine.Close()
			return nil, err
		}
		nv := inst.NVMe.Counters().Snapshot().Sub(nv0)
		sa := inst.SATA.Counters().Snapshot().Sub(sa0)

		db := inst.Engine.(*hyperAdapter).DB()
		var hotCount, hit int
		for i := int64(0); i < s.Records; i++ {
			k := ycsb.Key(i)
			if db.IsHot(k) {
				hotCount++
				if top[string(k)] {
					hit++
				}
			}
		}
		recall := float64(hit) / float64(topN)
		precision := 0.0
		if hotCount > 0 {
			precision = float64(hit) / float64(hotCount)
		}
		var trk hotness.Stats
		var mem int64
		for _, ts := range db.Stats().Trackers {
			trk.Seals += ts.Seals
			mem += ts.MemoryBytes
		}
		t.Rows = append(t.Rows, Row{Label: string(mode), Cells: []Cell{
			{"recall", recall * 100, "%"},
			{"precision", precision * 100, "%"},
			{"hotKeys", float64(hotCount), ""},
			{"truthKeys", float64(topN), ""},
			{"bgTraffic", float64(nv.BgReadBytes+nv.BgWriteBytes+sa.BgReadBytes+sa.BgWriteBytes) / (1 << 20), "MiB"},
			{"sataWrite", float64(sa.WriteBytes) / (1 << 20), "MiB"},
			{"trackerMem", float64(mem) / (1 << 10), "KiB"},
			{"seals", float64(trk.Seals), ""},
		}})
		inst.Engine.Close()
		if progress != nil {
			fmt.Fprintf(progress, "hotq: %s done\n", mode)
		}
	}
	return t, nil
}
