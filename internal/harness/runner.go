package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb/internal/stats"
	"hyperdb/internal/ycsb"
)

// RunConfig describes one measurement phase.
type RunConfig struct {
	// Clients is the concurrent client count (paper: 8).
	Clients int
	// Ops is the total operation count across clients.
	Ops int64
	// Workload is the YCSB mix.
	Workload ycsb.Workload
	// Records is the loaded dataset size in keys.
	Records int64
	// ValueSize in bytes (paper default 128).
	ValueSize int
	// Seed makes streams deterministic.
	Seed int64
}

func (c *RunConfig) fill() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 128
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Result is one measurement phase's outcome.
type Result struct {
	Engine     string
	Workload   string
	Ops        int64
	Errors     int64
	Duration   time.Duration
	Throughput float64 // ops per second
	ReadLat    *stats.Histogram
	WriteLat   *stats.Histogram
	ScanLat    *stats.Histogram
	AllLat     *stats.Histogram
}

// Load fills the engine with records keys (indices 0..records-1, keys
// FNV-scrambled) in a uniformly random order, using the given client count,
// then drains background work. This is §4.1's load phase.
func Load(e Engine, records int64, valueSize, clients int, seed int64) error {
	if clients <= 0 {
		clients = 8
	}
	// Random permutation insert order, split among clients.
	perm := rand.New(rand.NewSource(seed)).Perm(int(records))
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	chunk := (len(perm) + clients - 1) / clients
	for c := 0; c < clients; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(perm) {
			hi = len(perm)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(ids []int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for _, id := range ids {
				if err := e.Put(ycsb.Key(int64(id)), ycsb.Value(rng, valueSize)); err != nil {
					errCh <- fmt.Errorf("load: %w", err)
					return
				}
			}
		}(perm[lo:hi], seed+int64(c))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return e.Drain()
}

// Run replays cfg.Ops operations against the engine with concurrent clients
// and returns the measured result. Read misses on keys that exist are
// errors; misses on never-inserted keys are not (workload D/E insert
// streams race with reads of the newest records).
func Run(e Engine, cfg RunConfig) (Result, error) {
	cfg.fill()
	res := Result{
		Engine:   e.Label(),
		Workload: cfg.Workload.Name,
		ReadLat:  stats.NewHistogram(),
		WriteLat: stats.NewHistogram(),
		ScanLat:  stats.NewHistogram(),
		AllLat:   stats.NewHistogram(),
	}
	var errs atomic.Int64
	var fatal atomic.Value

	perClient := cfg.Ops / int64(cfg.Clients)
	if perClient == 0 {
		perClient = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			gen := ycsb.NewGenerator(cfg.Workload, cfg.Records, cfg.ValueSize, cfg.Seed*1000+id)
			gen.SetInsertStride(id, int64(cfg.Clients))
			for i := int64(0); i < perClient; i++ {
				op := gen.Next()
				t0 := time.Now()
				var err error
				switch op.Type {
				case ycsb.OpRead:
					_, err = e.Get(op.Key)
					if errors.Is(err, ErrNotFound) {
						err = nil
					}
					res.ReadLat.Record(time.Since(t0))
				case ycsb.OpUpdate:
					err = e.Put(op.Key, op.Value)
					res.WriteLat.Record(time.Since(t0))
				case ycsb.OpInsert:
					err = e.Put(op.Key, op.Value)
					res.WriteLat.Record(time.Since(t0))
				case ycsb.OpScan:
					_, err = e.Scan(op.Key, op.ScanLen)
					res.ScanLat.Record(time.Since(t0))
				case ycsb.OpRMW:
					_, err = e.Get(op.Key)
					if errors.Is(err, ErrNotFound) {
						err = nil
					}
					if err == nil {
						err = e.Put(op.Key, op.Value)
					}
					res.WriteLat.Record(time.Since(t0))
				}
				res.AllLat.Record(time.Since(t0))
				if err != nil {
					errs.Add(1)
					fatal.Store(err)
				}
			}
		}(int64(c))
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Ops = perClient * int64(cfg.Clients)
	res.Errors = errs.Load()
	if res.Duration > 0 {
		res.Throughput = float64(res.Ops) / res.Duration.Seconds()
	}
	if res.Errors > 0 {
		if err, _ := fatal.Load().(error); err != nil {
			return res, fmt.Errorf("harness: %d op errors, last: %w", res.Errors, err)
		}
	}
	return res, nil
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-11s YCSB-%s  %8.0f ops/s  read{p50=%v p99=%v}  write{p50=%v p99=%v}  n=%d err=%d",
		r.Engine, r.Workload, r.Throughput,
		r.ReadLat.Median(), r.ReadLat.P99(),
		r.WriteLat.Median(), r.WriteLat.P99(),
		r.Ops, r.Errors)
}
