package harness

import (
	"strings"
	"testing"

	"hyperdb/internal/ycsb"
)

func TestRunConfigDefaults(t *testing.T) {
	c := RunConfig{}
	c.fill()
	if c.Clients != 8 || c.ValueSize != 128 || c.Seed == 0 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestResultString(t *testing.T) {
	inst, err := Build(KindHyperDB, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Engine.Close()
	if err := Load(inst.Engine, 1000, 64, 2, 3); err != nil {
		t.Fatal(err)
	}
	res, err := Run(inst.Engine, RunConfig{
		Clients: 2, Ops: 500, Workload: ycsb.WorkloadA, Records: 1000, ValueSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"HyperDB", "YCSB-A", "ops/s", "read{", "write{"} {
		if !strings.Contains(s, want) {
			t.Fatalf("result string missing %q: %s", want, s)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	// Two engines loaded with the same seed hold identical data.
	a, _ := Build(KindHyperDB, tinyConfig())
	b, _ := Build(KindHyperDB, tinyConfig())
	defer a.Engine.Close()
	defer b.Engine.Close()
	if err := Load(a.Engine, 2000, 64, 4, 11); err != nil {
		t.Fatal(err)
	}
	if err := Load(b.Engine, 2000, 64, 4, 11); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i += 53 {
		va, ea := a.Engine.Get(ycsb.Key(i))
		vb, eb := b.Engine.Get(ycsb.Key(i))
		if ea != nil || eb != nil || string(va) != string(vb) {
			t.Fatalf("key %d differs across identically seeded loads", i)
		}
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	inst, err := Build(KindHyperDB, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Engine.Close()
	// Workload E scans against an empty store: not an error. But a closed
	// engine is.
	inst.Engine.Close()
	if _, err := Run(inst.Engine, RunConfig{
		Clients: 1, Ops: 10, Workload: ycsb.WorkloadA, Records: 10, ValueSize: 8,
	}); err == nil {
		t.Fatal("run against closed engine should fail")
	}
}

func TestTableGetAndPrint(t *testing.T) {
	tbl := &Table{ID: "T", Caption: "c", Rows: []Row{
		{Label: "r1", Cells: []Cell{{"a", 1.5, "x"}, {"b", 2, ""}}},
	}}
	if v, ok := tbl.Get("r1", "a"); !ok || v != 1.5 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	if _, ok := tbl.Get("r1", "zz"); ok {
		t.Fatal("phantom cell")
	}
	if _, ok := tbl.Get("zz", "a"); ok {
		t.Fatal("phantom row")
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	if !strings.Contains(sb.String(), "r1") || !strings.Contains(sb.String(), "a=1.5x") {
		t.Fatalf("print: %s", sb.String())
	}
}
