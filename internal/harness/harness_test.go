package harness

import (
	"bytes"
	"errors"
	"testing"

	"hyperdb/internal/ycsb"
)

// tinyConfig keeps engine tests fast and deterministic.
func tinyConfig() Config {
	return Config{
		NVMeCapacity:      8 << 20,
		SATACapacity:      512 << 20,
		Unthrottled:       true,
		BackgroundThreads: 2,
		Partitions:        4,
		CacheBytes:        2 << 20,
		FileSize:          256 << 10,
	}
}

// TestEnginesAgree loads every engine with the same data, applies the same
// update stream, and verifies all four return identical values afterwards.
func TestEnginesAgree(t *testing.T) {
	const records = 3000
	const valueSize = 100

	want := make(map[string][]byte)
	for i := int64(0); i < records; i++ {
		want[string(ycsb.Key(i))] = nil // filled below per engine deterministically
	}

	for _, kind := range AllKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			inst, err := Build(kind, tinyConfig())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			defer inst.Engine.Close()
			e := inst.Engine

			// Deterministic load: value = key repeated.
			for i := int64(0); i < records; i++ {
				k := ycsb.Key(i)
				v := bytes.Repeat(k, valueSize/len(k))
				if err := e.Put(k, v); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			// Overwrite a slice of keys.
			for i := int64(0); i < records; i += 3 {
				k := ycsb.Key(i)
				if err := e.Put(k, append([]byte("v2-"), k...)); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
			}
			// Delete a few.
			for i := int64(1); i < records; i += 17 {
				if err := e.Delete(ycsb.Key(i)); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
			if err := e.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			for i := int64(0); i < records; i++ {
				k := ycsb.Key(i)
				v, err := e.Get(k)
				deleted := i%17 == 1
				updated := i%3 == 0
				switch {
				case deleted && !updated || (deleted && updated && i%17 == 1):
					// Deletions happened after updates, so deleted wins.
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("key %d: expected ErrNotFound, got v=%d err=%v", i, len(v), err)
					}
				case updated:
					if err != nil {
						t.Fatalf("key %d: %v", i, err)
					}
					if want := append([]byte("v2-"), k...); !bytes.Equal(v, want) {
						t.Fatalf("key %d: got %q want %q", i, v, want)
					}
				default:
					if err != nil {
						t.Fatalf("key %d: %v", i, err)
					}
					if want := bytes.Repeat(k, valueSize/len(k)); !bytes.Equal(v, want) {
						t.Fatalf("key %d: wrong value", i)
					}
				}
			}
		})
	}
}

// TestRunSmoke exercises the Load+Run pipeline on each engine.
func TestRunSmoke(t *testing.T) {
	for _, kind := range AllKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			inst, err := Build(kind, tinyConfig())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			defer inst.Engine.Close()
			if err := Load(inst.Engine, 2000, 128, 4, 7); err != nil {
				t.Fatalf("load: %v", err)
			}
			res, err := Run(inst.Engine, RunConfig{
				Clients:   4,
				Ops:       4000,
				Workload:  ycsb.WorkloadA,
				Records:   2000,
				ValueSize: 128,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Throughput <= 0 {
				t.Fatalf("no throughput: %+v", res)
			}
			if res.ReadLat.Count() == 0 || res.WriteLat.Count() == 0 {
				t.Fatalf("missing latency samples: %s", res)
			}
		})
	}
}

// TestScanAgree verifies scans return identical ordered results everywhere.
func TestScanAgree(t *testing.T) {
	var ref []KV
	for _, kind := range AllKinds {
		inst, err := Build(kind, tinyConfig())
		if err != nil {
			t.Fatalf("%s build: %v", kind, err)
		}
		e := inst.Engine
		for i := int64(0); i < 2000; i++ {
			k := ycsb.Key(i)
			if err := e.Put(k, append([]byte("s-"), k...)); err != nil {
				t.Fatalf("%s put: %v", kind, err)
			}
		}
		if err := e.Drain(); err != nil {
			t.Fatalf("%s drain: %v", kind, err)
		}
		got, err := e.Scan(ycsb.Key(77), 64)
		if err != nil {
			t.Fatalf("%s scan: %v", kind, err)
		}
		if len(got) != 64 {
			t.Fatalf("%s scan returned %d", kind, len(got))
		}
		for i := 1; i < len(got); i++ {
			if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
				t.Fatalf("%s scan out of order at %d", kind, i)
			}
		}
		if ref == nil {
			ref = got
		} else {
			for i := range got {
				if !bytes.Equal(got[i].Key, ref[i].Key) || !bytes.Equal(got[i].Value, ref[i].Value) {
					t.Fatalf("%s scan[%d] differs from reference", kind, i)
				}
			}
		}
		e.Close()
	}
}
