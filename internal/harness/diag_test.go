package harness

import (
	"testing"

	"hyperdb/internal/ycsb"
)

// TestDiagYCSBB runs the three main engines through a throttled YCSB-B at
// default scale and asserts the paper's headline read-heavy ordering:
// HyperDB at least matches RocksDB. Slow (~30s); skipped in -short.
func TestDiagYCSBB(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled default-scale run")
	}
	if raceEnabled {
		t.Skip("throughput ordering is meaningless under the race detector")
	}
	s := DefaultScale()
	tput := map[EngineKind]float64{}
	for _, kind := range []EngineKind{KindRocksDB, KindPrismDB, KindHyperDB} {
		inst, err := Build(kind, s.config())
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
			t.Fatal(err)
		}
		nv0 := inst.NVMe.Counters().Snapshot()
		sa0 := inst.SATA.Counters().Snapshot()
		res, err := Run(inst.Engine, RunConfig{
			Clients: s.Clients, Ops: s.Ops, Workload: ycsb.WorkloadB,
			Records: s.Records, ValueSize: s.ValueSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		nv := inst.NVMe.Counters().Snapshot().Sub(nv0)
		sa := inst.SATA.Counters().Snapshot().Sub(sa0)
		tput[kind] = res.Throughput
		t.Logf("%s: tput=%.0f readP50=%v readP99=%v", inst.Engine.Label(), res.Throughput, res.ReadLat.Median(), res.ReadLat.P99())
		t.Logf("  NVMe: fgReadOps=%d bgReadOps=%d fgWriteOps=%d", nv.ReadOps-nv.BgReadOps, nv.BgReadOps, nv.WriteOps-nv.BgWriteOps)
		t.Logf("  SATA: fgReadOps=%d bgReadOps=%d bgWriteBytes=%dMB", sa.ReadOps-sa.BgReadOps, sa.BgReadOps, sa.BgWriteBytes>>20)
		if h, ok := inst.Engine.(*hyperAdapter); ok {
			st := h.Stats()
			t.Logf("  zone: objects=%d migrations=%d hotEvict=%d/%d promoDropped=%d cacheHits=%d cacheMiss=%d",
				st.Zone.Objects, st.Zone.Migrations, st.Zone.HotEvictDropped, st.Zone.HotEvictRelocated, st.PromotionsDropped, st.CacheHits, st.CacheMisses)
			var slab, idx int64
			for _, name := range inst.NVMe.List() {
				f, _ := inst.NVMe.Open(name)
				if f == nil {
					continue
				}
				if len(name) > 4 && name[len(name)-4:] == ".idx" {
					idx += f.AllocatedBytes()
				} else {
					slab += f.AllocatedBytes()
				}
			}
			t.Logf("  nvme used=%d cap=%d slab=%d idxMirror=%d files=%d",
				inst.NVMe.Used(), inst.NVMe.Capacity(), slab, idx, len(inst.NVMe.List()))
		}
		inst.Engine.Close()
	}
	// Guard against catastrophic regressions only (see diag2_test.go).
	if tput[KindHyperDB] < 0.6*tput[KindRocksDB] {
		t.Errorf("read-heavy ordering broken: HyperDB %.0f < 0.6x RocksDB %.0f",
			tput[KindHyperDB], tput[KindRocksDB])
	}
}
