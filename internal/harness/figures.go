package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"hyperdb/internal/baseline/leveled"
	"hyperdb/internal/hotness"
	"hyperdb/internal/stats"
	"hyperdb/internal/ycsb"
)

// Scale sizes every experiment. The default is the paper's setup scaled so
// each figure regenerates in seconds; Mult stretches all dimensions for
// higher-fidelity runs (hyperbench -scale).
type Scale struct {
	Records   int64 // loaded keys (paper: ~800 M for 100 GiB @128 B)
	Ops       int64 // measured operations (paper: 100 M)
	ValueSize int   // paper default: 128 B
	Clients   int   // paper: 8
	NVMeRatio float64
	SATACap   int64
	Throttled bool
	// TrackerMode selects HyperDB's hotness-tracker representation for
	// every figure (empty = bloom, the paper default).
	TrackerMode hotness.Mode
	// Compress names the capacity-tier block codec for every engine
	// (hyperbench -compress; empty = raw blocks, the paper default).
	Compress string
}

// DefaultScale is used by hyperbench; benchmarks use a smaller one.
func DefaultScale() Scale {
	return Scale{
		Records:   200_000,
		Ops:       100_000,
		ValueSize: 128,
		Clients:   8,
		NVMeRatio: 0.16,
		SATACap:   4 << 30,
		Throttled: true,
	}
}

// Mult scales records and ops by f.
func (s Scale) Mult(f float64) Scale {
	s.Records = int64(float64(s.Records) * f)
	s.Ops = int64(float64(s.Ops) * f)
	return s
}

// datasetBytes estimates the loaded payload.
func (s Scale) datasetBytes() int64 {
	return s.Records * int64(s.ValueSize+8+16)
}

// config derives a device/engine config from the scale.
func (s Scale) config() Config {
	nvme := int64(float64(s.datasetBytes()) * s.NVMeRatio)
	if nvme < 4<<20 {
		nvme = 4 << 20
	}
	c := Config{
		NVMeCapacity: nvme,
		SATACapacity: s.SATACap,
		Unthrottled:  !s.Throttled,
		CacheBytes:   s.datasetBytes() / 16,
		FileSize:     512 << 10,
		Tracker:      hotness.Config{Mode: s.TrackerMode},
		Compress:     s.Compress,
	}
	c.Fill()
	return c
}

// Row is one line of a figure's data table: a label plus named columns.
type Row struct {
	Label string
	Cells []Cell
}

// Cell is one named value.
type Cell struct {
	Name  string
	Value float64
	Unit  string
}

// Table is a reproduced figure: its id, caption and rows.
type Table struct {
	ID      string
	Caption string
	Rows    []Row
}

// JSON renders the table as a machine-readable object.
func (t *Table) JSON() ([]byte, error) {
	type cellJ struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
		Unit  string  `json:"unit,omitempty"`
	}
	type rowJ struct {
		Label string  `json:"label"`
		Cells []cellJ `json:"cells"`
	}
	out := struct {
		ID      string `json:"id"`
		Caption string `json:"caption"`
		Rows    []rowJ `json:"rows"`
	}{ID: t.ID, Caption: t.Caption}
	for _, r := range t.Rows {
		rj := rowJ{Label: r.Label}
		for _, c := range r.Cells {
			rj.Cells = append(rj.Cells, cellJ{c.Name, c.Value, c.Unit})
		}
		out.Rows = append(out.Rows, rj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Caption)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-28s", r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(w, "  %s=%.3g%s", c.Name, c.Value, c.Unit)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Get retrieves a cell value by row label and cell name (tests use this).
func (t *Table) Get(label, name string) (float64, bool) {
	for _, r := range t.Rows {
		if r.Label != label {
			continue
		}
		for _, c := range r.Cells {
			if c.Name == name {
				return c.Value, true
			}
		}
	}
	return 0, false
}

// workloadU is the write-only uniform workload of §2.3's motivation study.
var workloadU = ycsb.Workload{Name: "U", UpdateProp: 1.0, Dist: ycsb.Uniform}

// Fig2 reproduces Figure 2: NVMe bandwidth (read vs write) and capacity
// utilisation for the two baseline architectures under a write-only uniform
// workload, as background threads increase.
func Fig2(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig2", Caption: "NVMe bandwidth utilisation and capacity use vs background threads (write-only uniform)"}
	for _, kind := range []EngineKind{KindRocksDB, KindPrismDB} {
		for _, threads := range []int{1, 2, 4, 8} {
			cfg := s.config()
			cfg.BackgroundThreads = threads
			inst, err := Build(kind, cfg)
			if err != nil {
				return nil, err
			}
			if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			before := inst.NVMe.Counters().Snapshot()
			inst.NVMe.ResetUtilization()
			t0 := time.Now()
			res, err := Run(inst.Engine, RunConfig{
				Clients: s.Clients, Ops: s.Ops, Workload: workloadU,
				Records: s.Records, ValueSize: s.ValueSize,
			})
			if err != nil {
				inst.Engine.Close()
				return nil, err
			}
			dur := time.Since(t0).Seconds()
			d := inst.NVMe.Counters().Snapshot().Sub(before)
			util := inst.NVMe.Utilization()
			usedFrac := inst.NVMe.UsedFraction()
			inst.Engine.Close()
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s/threads=%d", inst.Engine.Label(), threads),
				Cells: []Cell{
					{"readBW", float64(d.ReadBytes) / dur / (1 << 20), "MiB/s"},
					{"writeBW", float64(d.WriteBytes) / dur / (1 << 20), "MiB/s"},
					{"util", util * 100, "%"},
					{"capUsed", usedFrac * 100, "%"},
					{"tput", res.Throughput / 1000, "kops"},
				},
			})
			if progress != nil {
				fmt.Fprintf(progress, "fig2: %s threads=%d done\n", inst.Engine.Label(), threads)
			}
		}
	}
	return t, nil
}

// Fig3 reproduces Figure 3: capacity-tier compaction bandwidth vs threads
// (3a) and the per-level compaction I/O breakdown (3b).
func Fig3(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig3", Caption: "Capacity-tier compaction bandwidth vs threads; per-level I/O breakdown"}
	for _, kind := range []EngineKind{KindRocksDB, KindPrismDB} {
		for _, threads := range []int{1, 2, 4, 8} {
			cfg := s.config()
			cfg.BackgroundThreads = threads
			// The paper's Fig. 3b profiles an LSM with five *populated*
			// levels; shrink the geometry so the scaled dataset reaches
			// the deepest level like the paper's 100 GiB load did.
			cfg.Ratio = 4
			cfg.FileSize = 256 << 10
			inst, err := Build(kind, cfg)
			if err != nil {
				return nil, err
			}
			if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			before := inst.SATA.Counters().Snapshot()
			inst.SATA.ResetUtilization()
			t0 := time.Now()
			if _, err := Run(inst.Engine, RunConfig{
				Clients: s.Clients, Ops: s.Ops, Workload: workloadU,
				Records: s.Records, ValueSize: s.ValueSize,
			}); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			dur := time.Since(t0).Seconds()
			d := inst.SATA.Counters().Snapshot().Sub(before)
			util := inst.SATA.Utilization()
			row := Row{
				Label: fmt.Sprintf("%s/threads=%d", inst.Engine.Label(), threads),
				Cells: []Cell{
					{"bgBW", float64(d.BgReadBytes+d.BgWriteBytes) / dur / (1 << 20), "MiB/s"},
					{"util", util * 100, "%"},
				},
			}
			// Per-level breakdown at 8 threads (Fig. 3b).
			if threads == 8 {
				var lsm *leveled.LSM
				switch a := inst.Engine.(type) {
				case *rocksAdapter:
					lsm = a.db.LSM()
				case *prismAdapter:
					lsm = a.db.LSM()
				}
				if lsm != nil {
					total := float64(0)
					perLevel := make([]float64, lsm.MaxLevels())
					for l := 0; l < lsm.MaxLevels(); l++ {
						tr := lsm.Traffic(l)
						perLevel[l] = float64(tr.ReadBytes.Load() + tr.WriteBytes.Load())
						total += perLevel[l]
					}
					for l, v := range perLevel {
						pct := 0.0
						if total > 0 {
							pct = v / total * 100
						}
						row.Cells = append(row.Cells, Cell{fmt.Sprintf("L%d", l), pct, "%"})
					}
				}
			}
			inst.Engine.Close()
			t.Rows = append(t.Rows, row)
			if progress != nil {
				fmt.Fprintf(progress, "fig3: %s threads=%d done\n", inst.Engine.Label(), threads)
			}
		}
	}
	return t, nil
}

// Fig6 reproduces Figure 6a: the correlation between historical access
// intervals and the next access. It replays an 80/20 skewed trace and
// reports P(next interval < t | previous s intervals < t) quantiles.
func Fig6(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig6a", Caption: "P(next interval < t | s past intervals < t), 80/20 trace"}
	a := hotness.NewIntervalAnalyzer()
	// 80% of accesses on 20% of objects.
	n := s.Records
	if n > 200_000 {
		n = 200_000
	}
	gen := ycsb.NewGenerator(ycsb.Workload{Name: "hot", ReadProp: 1, Dist: ycsb.Zipfian, Theta: 0.99}, n, 1, 11)
	total := s.Ops
	if total > 2_000_000 {
		total = 2_000_000
	}
	for i := int64(0); i < total; i++ {
		a.Observe(gen.Next().Key)
	}
	for _, tFrac := range []float64{0.05, 0.10, 0.20, 0.40} {
		tn := int64(float64(total) * tFrac)
		for _, sWin := range []int{1, 2, 3, 5} {
			probs := a.ConditionalProbability(tn, sWin)
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("t=%.0f%%/s=%d", tFrac*100, sWin),
				Cells: []Cell{
					{"p25", hotness.Quantile(probs, 0.25) * 100, "%"},
					{"median", hotness.Quantile(probs, 0.5) * 100, "%"},
					{"p75", hotness.Quantile(probs, 0.75) * 100, "%"},
					{"objects", float64(len(probs)), ""},
				},
			})
		}
	}
	if progress != nil {
		fmt.Fprintf(progress, "fig6: %d accesses over %d objects analysed\n", a.TotalAccesses(), a.TrackedObjects())
	}
	return t, nil
}

// Fig8 reproduces Figure 8: YCSB A–F throughput, median and P99 latency for
// all four engines. Latencies are normalised to RocksDB per workload, as in
// the paper.
func Fig8(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig8", Caption: "YCSB throughput and normalised latency"}
	workloads := []ycsb.Workload{
		ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC,
		ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF,
	}
	baseMed := map[string]float64{}
	baseP99 := map[string]float64{}
	for _, kind := range AllKinds {
		for _, w := range workloads {
			ops := s.Ops
			if w.Name == "E" {
				ops = s.Ops / 10 // scans touch ScanLen keys each
				if ops == 0 {
					ops = 1
				}
			}
			inst, err := Build(kind, s.config())
			if err != nil {
				return nil, err
			}
			if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			res, err := Run(inst.Engine, RunConfig{
				Clients: s.Clients, Ops: ops, Workload: w,
				Records: s.Records, ValueSize: s.ValueSize,
			})
			inst.Engine.Close()
			if err != nil {
				return nil, err
			}
			med := float64(res.AllLat.Median())
			p99 := float64(res.AllLat.P99())
			if kind == KindRocksDB {
				baseMed[w.Name] = med
				baseP99[w.Name] = p99
			}
			nm, np := 1.0, 1.0
			if b := baseMed[w.Name]; b > 0 {
				nm = med / b
			}
			if b := baseP99[w.Name]; b > 0 {
				np = p99 / b
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s/YCSB-%s", res.Engine, w.Name),
				Cells: []Cell{
					{"tput", res.Throughput / 1000, "kops"},
					{"medianNorm", nm, "x"},
					{"p99Norm", np, "x"},
					{"median", med / 1e3, "us"},
					{"p99", p99 / 1e3, "us"},
				},
			})
			if progress != nil {
				fmt.Fprintf(progress, "fig8: %s\n", res)
			}
		}
	}
	return t, nil
}

// Fig9a reproduces Figure 9a: YCSB-A throughput across key-distribution
// skews, from uniform through zipfian 1.2.
func Fig9a(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig9a", Caption: "YCSB-A throughput vs workload skew"}
	skews := []float64{0, 0.6, 0.8, 0.99, 1.1, 1.2}
	for _, kind := range []EngineKind{KindRocksDB, KindPrismDB, KindHyperDB} {
		for _, theta := range skews {
			inst, err := Build(kind, s.config())
			if err != nil {
				return nil, err
			}
			if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			res, err := Run(inst.Engine, RunConfig{
				Clients: s.Clients, Ops: s.Ops,
				Workload: ycsb.WorkloadA.WithTheta(theta),
				Records:  s.Records, ValueSize: s.ValueSize,
			})
			inst.Engine.Close()
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/theta=%.2f", res.Engine, theta)
			t.Rows = append(t.Rows, Row{
				Label: label,
				Cells: []Cell{{"tput", res.Throughput / 1000, "kops"}},
			})
			if progress != nil {
				fmt.Fprintf(progress, "fig9a: %s %.0f kops\n", label, res.Throughput/1000)
			}
		}
	}
	return t, nil
}

// Fig9b reproduces Figure 9b plus §4.2's migration analysis: YCSB-A
// throughput across value sizes, with migration page reads per migrated
// object for the two caching-tier engines.
func Fig9b(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig9b", Caption: "YCSB-A throughput vs value size; migration page reads per object"}
	sizes := []int{16, 64, 128, 256, 512, 1024}
	for _, kind := range []EngineKind{KindRocksDB, KindPrismDB, KindHyperDB} {
		for _, vs := range sizes {
			sc := s
			sc.ValueSize = vs
			// Keep the dataset byte size roughly constant across value
			// sizes, like the paper's fixed 100 GiB load.
			sc.Records = s.Records * int64(s.ValueSize+24) / int64(vs+24)
			inst, err := Build(kind, sc.config())
			if err != nil {
				return nil, err
			}
			if err := Load(inst.Engine, sc.Records, vs, sc.Clients, 7); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			res, err := Run(inst.Engine, RunConfig{
				Clients: sc.Clients, Ops: sc.Ops, Workload: ycsb.WorkloadA,
				Records: sc.Records, ValueSize: vs,
			})
			if err != nil {
				inst.Engine.Close()
				return nil, err
			}
			cells := []Cell{{"tput", res.Throughput / 1000, "kops"}}
			switch a := inst.Engine.(type) {
			case *hyperAdapter:
				st := a.Stats().Zone
				if st.MigratedObjects > 0 {
					cells = append(cells, Cell{"pagesPerObj", float64(st.MigrationPageReads) / float64(st.MigratedObjects), ""})
				}
			case *prismAdapter:
				st := a.db.Stats()
				if st.MigratedObjects > 0 {
					cells = append(cells, Cell{"pagesPerObj", float64(st.MigrationPageReads) / float64(st.MigratedObjects), ""})
				}
			}
			inst.Engine.Close()
			label := fmt.Sprintf("%s/value=%dB", res.Engine, vs)
			t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
			if progress != nil {
				fmt.Fprintf(progress, "fig9b: %s %.0f kops\n", label, res.Throughput/1000)
			}
		}
	}
	return t, nil
}

// Fig9c reproduces Figure 9c: YCSB-A throughput as the NVMe tier shrinks
// from 16% of the dataset to 1%.
func Fig9c(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig9c", Caption: "YCSB-A throughput vs NVMe:dataset ratio"}
	ratios := []float64{0.01, 0.02, 0.04, 0.08, 0.16}
	for _, kind := range []EngineKind{KindRocksDB, KindPrismDB, KindHyperDB} {
		for _, ratio := range ratios {
			sc := s
			sc.NVMeRatio = ratio
			inst, err := Build(kind, sc.config())
			if err != nil {
				return nil, err
			}
			if err := Load(inst.Engine, sc.Records, sc.ValueSize, sc.Clients, 7); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			res, err := Run(inst.Engine, RunConfig{
				Clients: sc.Clients, Ops: sc.Ops, Workload: ycsb.WorkloadA,
				Records: sc.Records, ValueSize: sc.ValueSize,
			})
			inst.Engine.Close()
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/nvme=%.0f%%", res.Engine, ratio*100)
			t.Rows = append(t.Rows, Row{
				Label: label,
				Cells: []Cell{{"tput", res.Throughput / 1000, "kops"}},
			})
			if progress != nil {
				fmt.Fprintf(progress, "fig9c: %s %.0f kops\n", label, res.Throughput/1000)
			}
		}
	}
	return t, nil
}

// Fig10 reproduces Figure 10: read and write latency (median and P99)
// across workload skews for RocksDB and HyperDB.
func Fig10(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig10", Caption: "Read/write latency breakdown vs skew"}
	skews := []float64{0, 0.8, 0.99, 1.2}
	for _, kind := range []EngineKind{KindRocksDB, KindHyperDB} {
		for _, theta := range skews {
			inst, err := Build(kind, s.config())
			if err != nil {
				return nil, err
			}
			if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
				inst.Engine.Close()
				return nil, err
			}
			res, err := Run(inst.Engine, RunConfig{
				Clients: s.Clients, Ops: s.Ops,
				Workload: ycsb.WorkloadA.WithTheta(theta),
				Records:  s.Records, ValueSize: s.ValueSize,
			})
			inst.Engine.Close()
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/theta=%.2f", res.Engine, theta)
			t.Rows = append(t.Rows, Row{
				Label: label,
				Cells: []Cell{
					{"readP50", float64(res.ReadLat.Median()) / 1e3, "us"},
					{"readP99", float64(res.ReadLat.P99()) / 1e3, "us"},
					{"writeP50", float64(res.WriteLat.Median()) / 1e3, "us"},
					{"writeP99", float64(res.WriteLat.P99()) / 1e3, "us"},
				},
			})
			if progress != nil {
				fmt.Fprintf(progress, "fig10: %s done\n", label)
			}
		}
	}
	return t, nil
}

// Fig11 reproduces Figure 11: total write traffic per tier and space usage
// under a uniform-distribution YCSB-A with 1 KiB values.
func Fig11(s Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "Fig11", Caption: "Write I/O traffic and space usage per tier (uniform, 1KiB values)"}
	sc := s
	sc.ValueSize = 1024
	sc.Records = s.Records * int64(s.ValueSize+24) / (1024 + 24) * 2
	if sc.Records < 4096 {
		sc.Records = 4096
	}
	for _, kind := range AllKinds {
		inst, err := Build(kind, sc.config())
		if err != nil {
			return nil, err
		}
		if err := Load(inst.Engine, sc.Records, sc.ValueSize, sc.Clients, 7); err != nil {
			inst.Engine.Close()
			return nil, err
		}
		if _, err := Run(inst.Engine, RunConfig{
			Clients: sc.Clients, Ops: sc.Ops,
			Workload: ycsb.WorkloadA.WithTheta(0), // uniform
			Records:  sc.Records, ValueSize: sc.ValueSize,
		}); err != nil {
			inst.Engine.Close()
			return nil, err
		}
		if err := inst.Engine.Drain(); err != nil {
			inst.Engine.Close()
			return nil, err
		}
		nv := inst.NVMe.Counters().Snapshot()
		sa := inst.SATA.Counters().Snapshot()
		label := inst.Engine.Label()
		cells := []Cell{
			{"nvmeWrite", float64(nv.WriteBytes) / (1 << 20), "MiB"},
			{"sataWrite", float64(sa.WriteBytes) / (1 << 20), "MiB"},
			{"totalWrite", float64(nv.WriteBytes+sa.WriteBytes) / (1 << 20), "MiB"},
			{"nvmeSpace", float64(inst.NVMe.Used()) / (1 << 20), "MiB"},
			{"sataSpace", float64(inst.SATA.Used()) / (1 << 20), "MiB"},
		}
		var lsm *leveled.LSM
		switch a := inst.Engine.(type) {
		case *rocksAdapter:
			lsm = a.db.LSM()
		case *prismAdapter:
			lsm = a.db.LSM()
		}
		if lsm != nil {
			for l := 0; l < lsm.MaxLevels(); l++ {
				if b := lsm.LevelBytes(l); b > 0 {
					cells = append(cells, Cell{fmt.Sprintf("L%d", l), float64(b) / (1 << 20), "MiB"})
				}
			}
		}
		t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
		inst.Engine.Close()
		if progress != nil {
			fmt.Fprintf(progress, "fig11: %s done\n", label)
		}
	}
	return t, nil
}

// Figures maps figure ids to their runners.
var Figures = map[string]func(Scale, io.Writer) (*Table, error){
	"fig2":     Fig2,
	"fig3":     Fig3,
	"fig6":     Fig6,
	"fig8":     Fig8,
	"fig9a":    Fig9a,
	"fig9b":    Fig9b,
	"fig9c":    Fig9c,
	"fig10":    Fig10,
	"fig11":    Fig11,
	"ablation": Ablation,
	"hotq":     HotQuality,
}

// FigureOrder is the presentation order.
var FigureOrder = []string{"fig2", "fig3", "fig6", "fig8", "fig9a", "fig9b", "fig9c", "fig10", "fig11", "ablation", "hotq"}

// FormatBytes re-exports the byte formatter for the CLI.
func FormatBytes(n uint64) string { return stats.FormatBytes(n) }
