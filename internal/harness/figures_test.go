package harness

import (
	"fmt"
	"strings"
	"testing"

	"hyperdb"
	"hyperdb/internal/device"
	"hyperdb/internal/ycsb"
)

func tinyScale() Scale {
	return Scale{
		Records:   30_000,
		Ops:       20_000,
		ValueSize: 128,
		Clients:   4,
		NVMeRatio: 0.16,
		SATACap:   2 << 30,
		Throttled: false,
	}
}

// TestFig6Shape asserts the paper's Figure 6a property: the conditional
// probability rises with the number of consistent past intervals s.
func TestFig6Shape(t *testing.T) {
	tbl, err := Fig6(tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tf := range []string{"10", "20"} {
		m1, ok1 := tbl.Get(fmt.Sprintf("t=%s%%/s=1", tf), "median")
		m5, ok5 := tbl.Get(fmt.Sprintf("t=%s%%/s=5", tf), "median")
		if !ok1 || !ok5 {
			t.Fatalf("missing rows for t=%s%%", tf)
		}
		if m5 < m1 {
			t.Errorf("t=%s%%: median(s=5)=%.1f < median(s=1)=%.1f", tf, m5, m1)
		}
	}
}

// TestFig9bMigrationLocality asserts the §4.2 claim behind Figure 9b: at
// small values, HyperDB's zone layout reads far fewer pages per migrated
// object than PrismDB's slab layout.
func TestFig9bMigrationLocality(t *testing.T) {
	s := tinyScale()
	s.ValueSize = 64
	perObj := map[EngineKind]float64{}
	for _, kind := range []EngineKind{KindPrismDB, KindHyperDB} {
		inst, err := Build(kind, s.config())
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(inst.Engine, RunConfig{
			Clients: s.Clients, Ops: s.Ops, Workload: ycsb.WorkloadA,
			Records: s.Records, ValueSize: s.ValueSize,
		}); err != nil {
			t.Fatal(err)
		}
		switch a := inst.Engine.(type) {
		case *hyperAdapter:
			st := a.Stats().Zone
			if st.MigratedObjects == 0 {
				t.Fatal("hyperdb: no migrations")
			}
			perObj[kind] = float64(st.MigrationPageReads) / float64(st.MigratedObjects)
		case *prismAdapter:
			st := a.db.Stats()
			if st.MigratedObjects == 0 {
				t.Fatal("prismdb: no migrations")
			}
			perObj[kind] = float64(st.MigrationPageReads) / float64(st.MigratedObjects)
		}
		inst.Engine.Close()
	}
	if perObj[KindHyperDB]*2 > perObj[KindPrismDB] {
		t.Errorf("migration locality: hyperdb %.3f pages/obj vs prismdb %.3f — want ≥2x advantage",
			perObj[KindHyperDB], perObj[KindPrismDB])
	}
}

// TestAblationRuns exercises every ablation variant end to end at tiny scale.
func TestAblationRuns(t *testing.T) {
	s := tinyScale()
	s.Records = 15_000
	s.Ops = 8_000
	tbl, err := Ablation(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 6 {
		t.Fatalf("expected ≥6 ablation rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		v, ok := tbl.Get(row.Label, "tput")
		if !ok {
			v, ok = tbl.Get(row.Label, "tputE")
		}
		if !ok || v <= 0 {
			t.Errorf("variant %s: no throughput", row.Label)
		}
	}
	// The no-mirror variant must shift index reads to SATA: baseline keeps
	// bg SATA writes in the same ballpark, so just sanity-check presence.
	var sb strings.Builder
	tbl.Fprint(&sb)
	if !strings.Contains(sb.String(), "no-index-mirror") {
		t.Fatal("missing no-index-mirror variant")
	}
}

// TestFig11TrafficOrdering asserts the headline Figure 11 ordering at tiny
// scale: HyperDB writes less than RocksDB-SC, and RocksDB-SC writes the most.
func TestFig11TrafficOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Fig11(tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	get := func(engine string) float64 {
		v, ok := tbl.Get(engine, "totalWrite")
		if !ok {
			t.Fatalf("missing row %s", engine)
		}
		return v
	}
	hyper, sc := get("HyperDB"), get("RocksDB-SC")
	if hyper >= sc {
		t.Errorf("HyperDB total write %.0f >= RocksDB-SC %.0f", hyper, sc)
	}
}

// TestScanPrefetchEquivalence verifies the prefetcher changes performance,
// never results.
func TestScanPrefetchEquivalence(t *testing.T) {
	if raceEnabled {
		t.Skip("NVMe traffic comparison is timing-sensitive under the race detector")
	}
	s := tinyScale()
	var results [2][]KV
	var reads [2]uint64
	for i, prefetch := range []bool{false, true} {
		cfg := s.config()
		nvme := device.New(device.UnthrottledProfile("nvme", cfg.NVMeCapacity))
		sata := device.New(device.UnthrottledProfile("sata", cfg.SATACapacity))
		db, err := hyperdb.Open(hyperdb.Options{
			NVMeDevice: nvme, SATADevice: sata,
			Partitions: cfg.Partitions, MigrationBatch: cfg.FileSize,
			ScanPrefetch: prefetch, DisableBackground: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := &hyperAdapter{db: db}
		if err := Load(eng, 20000, 64, 4, 7); err != nil {
			t.Fatal(err)
		}
		before := nvme.Counters().ReadBytes.Load()
		kvs, err := eng.Scan(ycsb.Key(5), 500)
		if err != nil {
			t.Fatal(err)
		}
		reads[i] = nvme.Counters().ReadBytes.Load() - before
		results[i] = kvs
		db.Close()
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("prefetch changed result count: %d vs %d", len(results[0]), len(results[1]))
	}
	for j := range results[0] {
		if string(results[0][j].Key) != string(results[1][j].Key) ||
			string(results[0][j].Value) != string(results[1][j].Value) {
			t.Fatalf("prefetch changed result %d", j)
		}
	}
	if reads[1] > reads[0] {
		t.Errorf("prefetch read MORE from NVMe: %d vs %d", reads[1], reads[0])
	}
}

// TestHotQualityParity asserts the sketch tracker's promotion quality on a
// zipfian YCSB-A run tracks the bloom reproduction baseline: recall against
// the top-1% ground truth must not trail by more than 10 points, and the
// background traffic its promotions trigger must stay within a few percent.
func TestHotQualityParity(t *testing.T) {
	// More ops than tinyScale: each partition's discriminator must seal
	// several windows (capacity ~800 distinct keys here) for the 3-window
	// classification to engage at all.
	s := tinyScale()
	s.Records = 20_000
	s.Ops = 240_000
	tbl, err := HotQuality(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	bRecall, ok1 := tbl.Get("bloom", "recall")
	sRecall, ok2 := tbl.Get("sketch", "recall")
	bTraffic, ok3 := tbl.Get("bloom", "bgTraffic")
	sTraffic, ok4 := tbl.Get("sketch", "bgTraffic")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing hotq cells: %v", tbl.Rows)
	}
	if bRecall <= 0 {
		t.Fatalf("bloom recall %.1f%%: discriminator never engaged", bRecall)
	}
	if sRecall < bRecall-10 {
		t.Errorf("sketch recall %.1f%% trails bloom %.1f%% by more than 10 points", sRecall, bRecall)
	}
	// Background traffic at this unthrottled tiny scale is scheduling-
	// dependent (worker/foreground races), so only a wide sanity band is
	// asserted here; the recorded BENCH_hotness.json run compares traffic at
	// full scale on throttled devices.
	if bTraffic > 0 {
		ratio := sTraffic / bTraffic
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("sketch bg traffic %.1f MiB vs bloom %.1f MiB (ratio %.2f) outside sanity band", sTraffic, bTraffic, ratio)
		}
	}
}
