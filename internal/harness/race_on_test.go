//go:build race

package harness

// raceEnabled is true when the race detector is compiled in. Tests that
// assert relative performance (throughput orderings, traffic byte counts
// shaped by background-worker timing) skip under it: the detector's
// slowdown distorts exactly what they measure.
const raceEnabled = true
