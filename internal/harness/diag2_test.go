package harness

import (
	"testing"

	"hyperdb/internal/ycsb"
)

// TestDiagYCSBA compares the write-heavy ordering at default scale.
// Slow; skipped in -short.
func TestDiagYCSBA(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled default-scale run")
	}
	s := DefaultScale()
	tput := map[EngineKind]float64{}
	for _, kind := range []EngineKind{KindRocksDB, KindPrismDB, KindHyperDB} {
		inst, err := Build(kind, s.config())
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(inst.Engine, s.Records, s.ValueSize, s.Clients, 7); err != nil {
			t.Fatal(err)
		}
		res, err := Run(inst.Engine, RunConfig{
			Clients: s.Clients, Ops: s.Ops, Workload: ycsb.WorkloadA,
			Records: s.Records, ValueSize: s.ValueSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		tput[kind] = res.Throughput
		t.Logf("%s: tput=%.0f readP99=%v writeP99=%v", inst.Engine.Label(), res.Throughput, res.ReadLat.P99(), res.WriteLat.P99())
		inst.Engine.Close()
	}
	// Guard against catastrophic regressions only: timing under a loaded CI
	// host swings ±2x, so this is not a calibration assertion (EXPERIMENTS.md
	// records calibrated numbers from isolated runs).
	if tput[KindHyperDB] < 0.5*tput[KindRocksDB] {
		t.Errorf("HyperDB %.0f < 0.5x RocksDB %.0f on YCSB-A", tput[KindHyperDB], tput[KindRocksDB])
	}
}
