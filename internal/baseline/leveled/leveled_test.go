package leveled

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

func newLSM(t testing.TB, fileSize int64) (*LSM, *device.Device) {
	t.Helper()
	dev := device.New(device.UnthrottledProfile("d", 0))
	l, err := New(Options{
		Name:      "t",
		Place:     func(int, int64) *device.Device { return dev },
		FileSize:  fileSize,
		L1Target:  2 * fileSize,
		Ratio:     4,
		MaxLevels: 4,
		L0Compact: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, dev
}

func k8(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

func sortedRun(lo, n int, seqBase uint64, tag string) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Entry{
			Key:   keys.InternalKey{User: k8(uint64(lo+i) << 32), Seq: seqBase + uint64(i), Kind: keys.KindSet},
			Value: []byte(fmt.Sprintf("%s-%d", tag, lo+i)),
		})
	}
	return out
}

func TestIngestAndGet(t *testing.T) {
	l, _ := newLSM(t, 64<<10)
	if err := l.Ingest(sortedRun(0, 1000, 1, "v"), device.Bg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v, kind, found, err := l.Get(k8(uint64(i)<<32), keys.MaxSeq, device.Fg)
		if err != nil || !found || kind != keys.KindSet {
			t.Fatalf("get %d: %v %v %v", i, kind, found, err)
		}
		if want := fmt.Sprintf("v-%d", i); string(v) != want {
			t.Fatalf("get %d = %q", i, v)
		}
	}
}

func TestL0NewestWins(t *testing.T) {
	l, _ := newLSM(t, 64<<10)
	l.Ingest(sortedRun(0, 100, 1, "old"), device.Bg)
	l.Ingest(sortedRun(0, 100, 1000, "new"), device.Bg)
	v, _, found, _ := l.Get(k8(0), keys.MaxSeq, device.Fg)
	if !found || string(v) != "new-0" {
		t.Fatalf("got %q", v)
	}
}

func TestCompactionDrainsL0(t *testing.T) {
	l, _ := newLSM(t, 16<<10)
	for r := 0; r < 4; r++ {
		l.Ingest(sortedRun(r*50, 200, uint64(r*1000+1), fmt.Sprintf("r%d", r)), device.Bg)
	}
	if l.TableCount(0) < 2 {
		t.Fatalf("L0 = %d", l.TableCount(0))
	}
	for {
		did, err := l.CompactOnce(device.Bg)
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}
	if l.TableCount(0) != 0 {
		t.Fatalf("L0 not drained: %d", l.TableCount(0))
	}
	// Newest versions survive.
	v, _, found, _ := l.Get(k8(uint64(150)<<32), keys.MaxSeq, device.Fg)
	if !found || string(v) != "r3-150" {
		t.Fatalf("after compaction: %q %v", v, found)
	}
	// Traffic recorded.
	if l.Traffic(1).Compactions.Load() == 0 || l.Traffic(1).WriteBytes.Load() == 0 {
		t.Fatal("compaction traffic not recorded")
	}
}

func TestTombstonesDropAtBottomOnly(t *testing.T) {
	l, _ := newLSM(t, 8<<10)
	l.Ingest(sortedRun(0, 100, 1, "v"), device.Bg)
	del := []Entry{{Key: keys.InternalKey{User: k8(5 << 32), Seq: 999, Kind: keys.KindDelete}}}
	l.Ingest(del, device.Bg)
	for {
		did, err := l.CompactOnce(device.Bg)
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}
	_, kind, found, _ := l.Get(k8(5<<32), keys.MaxSeq, device.Fg)
	if found && kind != keys.KindDelete {
		t.Fatal("deleted key resurrected")
	}
}

func TestScanIterMergesLevels(t *testing.T) {
	l, _ := newLSM(t, 16<<10)
	l.Ingest(sortedRun(0, 300, 1, "old"), device.Bg)
	l.Ingest(sortedRun(0, 300, 5000, "new"), device.Bg)
	l.CompactOnce(device.Bg)
	l.Ingest(sortedRun(100, 50, 9000, "newest"), device.Bg)

	it := l.NewScanIter(nil, device.Fg)
	defer it.Close()
	n := 0
	var prev []byte
	for ; it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		// Spot check precedence.
		idx := binary.BigEndian.Uint64(it.Key()) >> 32
		want := "new-"
		if idx >= 100 && idx < 150 {
			want = "newest-"
		}
		if !bytes.HasPrefix(it.Value(), []byte(want)) {
			t.Fatalf("key %d: %q, want prefix %q", idx, it.Value(), want)
		}
		n++
	}
	if n != 300 {
		t.Fatalf("scanned %d", n)
	}
}

func TestStallSignals(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("d", 0))
	l, _ := New(Options{
		Name:      "t",
		Place:     func(int, int64) *device.Device { return dev },
		FileSize:  8 << 10,
		L0Compact: 2,
		L0Stall:   3,
	})
	for r := 0; r < 3; r++ {
		l.Ingest(sortedRun(r*10, 50, uint64(r*100+1), "v"), device.Bg)
	}
	if !l.Stalled() {
		t.Fatal("should be stalled at 3 L0 files")
	}
	ch := l.StallChan()
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	for l.Stalled() {
		if _, err := l.CompactOnce(device.Bg); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("un-stall not broadcast")
	}
}

func TestPlacementRespected(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 0))
	sata := device.New(device.UnthrottledProfile("sata", 0))
	l, _ := New(Options{
		Name: "t",
		Place: func(level int, _ int64) *device.Device {
			if level <= 1 {
				return nvme
			}
			return sata
		},
		FileSize:  8 << 10,
		L1Target:  16 << 10,
		Ratio:     2,
		MaxLevels: 4,
		L0Compact: 2,
	})
	for r := 0; r < 12; r++ {
		l.Ingest(sortedRun(r*100, 300, uint64(r*1000+1), "v"), device.Bg)
		for {
			did, _ := l.CompactOnce(device.Bg)
			if !did {
				break
			}
		}
	}
	if nvme.Counters().WriteBytes.Load() == 0 {
		t.Fatal("nothing written to NVMe tier")
	}
	if sata.Counters().WriteBytes.Load() == 0 {
		t.Fatal("nothing written to SATA tier (deep levels)")
	}
}

func TestConcurrentCompactionThreads(t *testing.T) {
	l, _ := newLSM(t, 8<<10)
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(13))
	seq := uint64(0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := l.CompactOnce(device.Bg); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}()
	}
	for round := 0; round < 40; round++ {
		ids := rng.Perm(2000)[:100]
		sort.Ints(ids)
		var entries []Entry
		for _, id := range ids {
			seq++
			v := fmt.Sprintf("r%d-%d", round, id)
			entries = append(entries, Entry{
				Key:   keys.InternalKey{User: k8(uint64(id) << 32), Seq: seq, Kind: keys.KindSet},
				Value: []byte(v),
			})
			ref[string(k8(uint64(id)<<32))] = v
		}
		if err := l.Ingest(entries, device.Bg); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for {
		did, err := l.CompactOnce(device.Bg)
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}
	for k, want := range ref {
		v, _, found, err := l.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil || !found || string(v) != want {
			t.Fatalf("get %x: %q %v %v want %q", k, v, found, err, want)
		}
	}
}

func TestLevelBytesAndNeedsCompaction(t *testing.T) {
	l, _ := newLSM(t, 8<<10)
	if _, need := l.NeedsCompaction(); need {
		t.Fatal("empty LSM needs no compaction")
	}
	l.Ingest(sortedRun(0, 500, 1, "v"), device.Bg)
	if l.LevelBytes(0) == 0 {
		t.Fatal("level bytes not tracked")
	}
}
