package leveled

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/sstable"
)

// Recover rebuilds a leveled LSM from the SSTables persisted on devs. File
// names carry (level, generation); entries carry their sequence numbers, so
// no manifest is needed.
//
// Generation numbers are not a cross-level recency order — a deep compaction
// output can have a higher generation than an L0 flush holding newer
// versions of the same keys — so tables are restored at their named levels,
// where the shallowest-level-wins read path stays correct. Within L0, flushes
// are serialized, so generation order is arrival order. A crash mid-compaction
// can leave its outputs installed next to its not-yet-removed inputs; the
// resulting same-level overlaps at L1+ are repaired by a sequence-aware merge
// of each overlapping group into fresh tables. Structurally unreadable files
// (cut before their footer synced) are deleted: their content is either
// replayable (flush, WAL retained) or still present in the compaction's
// inputs. A device I/O error during open aborts recovery instead — the file
// may be intact, so deleting it would turn a transient fault into data loss.
//
// Returns the LSM and the largest sequence number seen.
func Recover(opts Options, devs ...*device.Device) (*LSM, uint64, error) {
	l, err := New(opts)
	if err != nil {
		return nil, 0, err
	}
	type cand struct {
		dev   *device.Device
		name  string
		level int
		gen   uint64
	}
	var cands []cand
	prefix := l.opts.Name + "-L"
	for _, dev := range devs {
		for _, name := range dev.List() {
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".sst") {
				continue
			}
			var level int
			var gen uint64
			if _, err := fmt.Sscanf(name, l.opts.Name+"-L%d-G%d.sst", &level, &gen); err != nil {
				continue
			}
			if level < 0 {
				continue
			}
			cands = append(cands, cand{dev, name, level, gen})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].gen < cands[b].gen })

	var maxSeq uint64
	for _, c := range cands {
		if c.gen > l.nextGen {
			l.nextGen = c.gen // never reuse a generation, even a discarded one
		}
		level := c.level
		if level >= l.opts.MaxLevels {
			level = l.opts.MaxLevels - 1
		}
		f, err := c.dev.Open(c.name)
		if err != nil {
			return nil, 0, err
		}
		r, err := sstable.OpenReader(f, l.opts.PageCache, device.BgSeq)
		if err != nil {
			if device.IsIOError(err) {
				// Medium error, not a torn file: deleting would lose data.
				return nil, 0, fmt.Errorf("leveled: recover %q: %w", c.name, err)
			}
			c.dev.Remove(c.name)
			continue
		}
		meta, err := r.ComputeMeta(device.BgSeq)
		if err != nil && device.IsIOError(err) {
			return nil, 0, fmt.Errorf("leveled: recover %q: %w", c.name, err)
		}
		if err != nil || meta.Entries == 0 {
			c.dev.Remove(c.name)
			continue
		}
		if meta.MaxSeq > maxSeq {
			maxSeq = meta.MaxSeq
		}
		tbl := &table{reader: r, meta: meta, file: f, dev: c.dev}
		tbl.refs.Store(1)
		l.levels[level] = append(l.levels[level], tbl)
	}

	for level := 1; level < l.opts.MaxLevels; level++ {
		sortTables(l.levels[level])
		if err := l.repairLevel(level); err != nil {
			return nil, 0, err
		}
	}
	return l, maxSeq, nil
}

// repairLevel restores the non-overlap invariant of a sorted level by
// merging each group of key-overlapping tables into fresh tables. Entries
// carry sequence numbers, so the newest version always wins regardless of
// which crash window produced the overlap.
func (l *LSM) repairLevel(level int) error {
	tables := l.levels[level]
	var out []*table
	i := 0
	for i < len(tables) {
		group := []*table{tables[i]}
		hi := tables[i].meta.Largest
		j := i + 1
		for j < len(tables) && bytes.Compare(tables[j].meta.Smallest, hi) <= 0 {
			if bytes.Compare(tables[j].meta.Largest, hi) > 0 {
				hi = tables[j].meta.Largest
			}
			group = append(group, tables[j])
			j++
		}
		if len(group) == 1 {
			out = append(out, tables[i])
		} else {
			merged, err := l.mergeGroup(group, level)
			if err != nil {
				return err
			}
			out = append(out, merged...)
		}
		i = j
	}
	sortTables(out)
	l.levels[level] = out
	return nil
}

// mergeGroup heap-merges overlapping tables (newest version per user key)
// into fresh tables at the level, then deletes the inputs.
func (l *LSM) mergeGroup(group []*table, level int) ([]*table, error) {
	op := device.BgSeq
	bottom := level == l.opts.MaxLevels-1
	h := make(tableHeap, 0, len(group))
	for _, t := range group {
		it := t.reader.NewIter(op)
		it.First()
		if it.Valid() {
			h = append(h, &tableIter{it: it})
		} else if err := it.Err(); err != nil {
			return nil, err
		}
	}
	heap.Init(&h)
	var merged []Entry
	var lastUser []byte
	haveLast := false
	for len(h) > 0 {
		top := h[0]
		k := top.it.Key()
		if !haveLast || !bytes.Equal(k.User, lastUser) {
			if k.Kind != keys.KindDelete || !bottom {
				merged = append(merged, Entry{
					Key: keys.InternalKey{
						User: append([]byte(nil), k.User...),
						Seq:  k.Seq,
						Kind: k.Kind,
					},
					Value: append([]byte(nil), top.it.Value()...),
				})
			}
			lastUser = append(lastUser[:0], k.User...)
			haveLast = true
		}
		top.it.Next()
		if top.it.Valid() {
			heap.Fix(&h, 0)
		} else {
			if err := top.it.Err(); err != nil {
				return nil, err
			}
			heap.Pop(&h)
		}
	}

	var newTables []*table
	rest := merged
	for len(rest) > 0 {
		n := len(rest)
		tbl, r, err := l.buildTable(level, rest, op)
		if err != nil {
			return nil, err
		}
		rest = r
		if len(rest) == n {
			return nil, fmt.Errorf("leveled: repair made no progress")
		}
		newTables = append(newTables, tbl)
	}
	for _, t := range group {
		t.release()
	}
	return newTables, nil
}
