package leveled

import (
	"bytes"
	"container/heap"
	"fmt"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// CompactOnce performs one compaction: all of L0 (plus overlapping L1) into
// L1, or one round-robin victim of an over-budget level (plus overlapping
// children) into the level below. Multiple background threads may call it
// concurrently — compactions into different target levels proceed in
// parallel, which is how the capacity-tier bandwidth scales with thread
// count in Figures 2a/3a. Returns whether work was started.
func (l *LSM) CompactOnce(op device.Op) (bool, error) {
	op.Background = true

	l.mu.Lock()
	plan, ok := l.planLocked()
	if !ok {
		l.mu.Unlock()
		return false, nil
	}
	for _, t := range plan.srcs {
		l.busy[t] = true
	}
	for _, t := range plan.overlaps {
		l.busy[t] = true
	}
	l.activeOut[plan.target] = true
	l.mu.Unlock()

	err := l.mergeInto(plan, op)

	l.mu.Lock()
	for _, t := range plan.srcs {
		delete(l.busy, t)
	}
	for _, t := range plan.overlaps {
		delete(l.busy, t)
	}
	l.activeOut[plan.target] = false
	l.mu.Unlock()
	return true, err
}

// plan is one compaction's inputs.
type plan struct {
	level    int
	target   int
	srcs     []*table
	overlaps []*table
}

// planLocked picks the shallowest actionable compaction. Caller holds mu.
func (l *LSM) planLocked() (plan, bool) {
	// L0 first: file-count trigger. When an L0 round is already in flight,
	// fall through to the deeper levels instead of idling — otherwise a
	// sustained ingest starves every level below L1.
	if len(l.levels[0]) >= l.opts.L0Compact && !l.activeOut[1] {
		srcs := append([]*table(nil), l.levels[0]...)
		busy := false
		for _, t := range srcs {
			if l.busy[t] {
				busy = true
				break
			}
		}
		if !busy {
			var span keys.Range
			for i, t := range srcs {
				if i == 0 {
					span = t.rang()
				} else {
					span = span.Union(t.rang())
				}
			}
			if overlaps, ok := l.overlapsLocked(1, span); ok {
				return plan{level: 0, target: 1, srcs: srcs, overlaps: overlaps}, true
			}
		}
	}
	for level := 1; level < l.opts.MaxLevels-1; level++ {
		if l.activeOut[level+1] {
			continue
		}
		var n int64
		for _, t := range l.levels[level] {
			n += t.meta.TotalSize
		}
		if n <= l.target(level) || len(l.levels[level]) == 0 {
			continue
		}
		// Round-robin victim, skipping busy tables.
		tables := l.levels[level]
		var victim *table
		for try := 0; try < len(tables); try++ {
			cand := tables[l.rr[level]%len(tables)]
			l.rr[level]++
			if !l.busy[cand] {
				victim = cand
				break
			}
		}
		if victim == nil {
			continue
		}
		overlaps, ok := l.overlapsLocked(level+1, victim.rang())
		if !ok {
			continue
		}
		return plan{level: level, target: level + 1, srcs: []*table{victim}, overlaps: overlaps}, true
	}
	return plan{}, false
}

// overlapsLocked collects level's tables overlapping span; ok=false when any
// needed input is busy in another compaction. Caller holds mu.
func (l *LSM) overlapsLocked(level int, span keys.Range) ([]*table, bool) {
	if level >= l.opts.MaxLevels {
		return nil, true
	}
	var out []*table
	for _, t := range l.levels[level] {
		if t.rang().Overlaps(span) {
			if l.busy[t] {
				return nil, false
			}
			out = append(out, t)
		}
	}
	return out, true
}

// mergeInto merges the plan's inputs, writes the result as new target-level
// tables, and installs them.
func (l *LSM) mergeInto(p plan, op device.Op) error {
	bottom := p.target == l.opts.MaxLevels-1

	all := append(append([]*table(nil), p.srcs...), p.overlaps...)
	var readBytes int64
	h := make(tableHeap, 0, len(all))
	for _, t := range all {
		readBytes += t.meta.TotalSize
		it := t.reader.NewIter(device.Op{Background: true, Sequential: true})
		it.First()
		if it.Valid() {
			h = append(h, &tableIter{it: it})
		} else if err := it.Err(); err != nil {
			return err
		}
	}
	heap.Init(&h)
	l.traffic[p.target].ReadBytes.Add(uint64(readBytes))
	l.traffic[p.target].Compactions.Inc()

	// Drain the heap into merged entries, newest version per user key.
	var merged []Entry
	var lastUser []byte
	haveLast := false
	for len(h) > 0 {
		top := h[0]
		k := top.it.Key()
		if !haveLast || !bytes.Equal(k.User, lastUser) {
			if k.Kind != keys.KindDelete || !bottom {
				merged = append(merged, Entry{
					Key: keys.InternalKey{
						User: append([]byte(nil), k.User...),
						Seq:  k.Seq,
						Kind: k.Kind,
					},
					Value: append([]byte(nil), top.it.Value()...),
				})
			}
			lastUser = append(lastUser[:0], k.User...)
			haveLast = true
		}
		top.it.Next()
		if top.it.Valid() {
			heap.Fix(&h, 0)
		} else {
			if err := top.it.Err(); err != nil {
				return err
			}
			heap.Pop(&h)
		}
	}

	// Write the new run.
	var newTables []*table
	rest := merged
	for len(rest) > 0 {
		n := len(rest)
		tbl, r, err := l.buildTable(p.target, rest, op)
		if err != nil {
			return err
		}
		rest = r
		if len(rest) == n {
			return fmt.Errorf("leveled: compaction made no progress")
		}
		newTables = append(newTables, tbl)
		l.traffic[p.target].WriteBytes.Add(uint64(tbl.meta.TotalSize))
	}

	// Install: remove inputs, insert the new run sorted by smallest key.
	l.mu.Lock()
	remove := func(level int, victims []*table) {
		out := l.levels[level][:0]
		for _, t := range l.levels[level] {
			dead := false
			for _, v := range victims {
				if t == v {
					dead = true
					break
				}
			}
			if !dead {
				out = append(out, t)
			}
		}
		l.levels[level] = out
	}
	remove(p.level, p.srcs)
	remove(p.target, p.overlaps)
	l.levels[p.target] = append(l.levels[p.target], newTables...)
	sortTables(l.levels[p.target])
	unstall := len(l.levels[0]) < l.opts.L0Stall
	if unstall {
		close(l.stallCh)
		l.stallCh = make(chan struct{})
	}
	l.mu.Unlock()

	// Drop the LSM's reference; files disappear once in-flight readers
	// finish.
	for _, t := range all {
		t.release()
	}
	return nil
}

func sortTables(ts []*table) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && bytes.Compare(ts[j].meta.Smallest, ts[j-1].meta.Smallest) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// tableIter adapts an sstable iterator for the merge heap.
type tableIter struct {
	it interface {
		Valid() bool
		Next()
		Key() keys.InternalKey
		Value() []byte
		Err() error
	}
}

type tableHeap []*tableIter

func (h tableHeap) Len() int { return len(h) }
func (h tableHeap) Less(i, j int) bool {
	return keys.Compare(h[i].it.Key(), h[j].it.Key()) < 0
}
func (h tableHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tableHeap) Push(x any)   { *h = append(*h, x.(*tableIter)) }
func (h *tableHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
