// Package leveled implements the classic leveled LSM structure shared by
// the two baselines: RocksDB-style (rocksish) feeds it from a memtable
// flush; PrismDB-style (prismish) feeds it from NVMe slab migrations. It is
// the textbook design the paper measures against: L0 holds overlapping
// tables; deeper levels hold sorted runs of non-overlapping tables with
// exponentially growing targets; compaction merges one victim table with
// every overlapping table below, rewriting all of them — the rewrite
// amplification Figure 3b attributes mostly to the deepest levels.
package leveled

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hyperdb/internal/cache"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/sstable"
	"hyperdb/internal/stats"
)

// Placement chooses the device for a new table at the given level —
// RocksDB's db_path mechanism. It may return a fallback when the preferred
// device is full.
type Placement func(level int, size int64) *device.Device

// Options configures a leveled LSM.
type Options struct {
	// Name prefixes file names (one instance per engine).
	Name string
	// Place picks devices per level (required).
	Place Placement
	// Fallback receives tables whose preferred device fills up mid-build
	// (placement checks are racy across concurrent compaction threads).
	Fallback *device.Device
	// FileSize is the target SSTable size (paper default 64 MiB, scaled).
	FileSize int64
	// L1Target is L1's byte budget; level k's budget is L1Target × Ratio^(k-1).
	L1Target int64
	// Ratio is the level size ratio (default 10).
	Ratio int
	// MaxLevels bounds depth (default 5: L0..L4 like the paper's Fig. 3b).
	MaxLevels int
	// L0Compact triggers L0→L1 compaction at this many L0 files (default 4).
	L0Compact int
	// L0Stall makes Put callers stall at this many L0 files (default 12).
	L0Stall int
	// PageCache serves block reads.
	PageCache cache.BlockCache
	// BloomBits per key for table filters.
	BloomBits int
	// Compress picks the block codec per level; levels below the policy's
	// MinLevel write the legacy raw format.
	Compress compress.Policy
}

func (o *Options) fill() {
	if o.FileSize <= 0 {
		o.FileSize = 2 << 20
	}
	if o.L1Target <= 0 {
		o.L1Target = 4 * o.FileSize
	}
	if o.Ratio <= 1 {
		o.Ratio = 10
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 5
	}
	if o.L0Compact <= 0 {
		o.L0Compact = 4
	}
	if o.L0Stall <= 0 {
		o.L0Stall = 12
	}
	if o.BloomBits <= 0 {
		o.BloomBits = 10
	}
}

// table is one SSTable plus its metadata. Tables are reference-counted:
// the LSM holds one reference while the table is installed in a level, and
// readers (gets, scans, compaction inputs) hold one for the duration of
// their access, so a compaction can delist a table without yanking the file
// out from under an in-flight read.
type table struct {
	reader *sstable.Reader
	meta   sstable.Meta
	file   *device.File
	dev    *device.Device
	refs   atomic.Int32
}

// acquire takes a reader reference. Callers must hold l.mu (any mode) so
// acquisition cannot race the final release.
func (t *table) acquire() { t.refs.Add(1) }

// release drops a reference, deleting the file at zero.
func (t *table) release() {
	if t.refs.Add(-1) == 0 {
		t.dev.Remove(t.file.Name())
	}
}

func (t *table) rang() keys.Range { return t.meta.Range() }

// LevelTraffic tallies compaction I/O per level (Figure 3b). RawBytes and
// StoredBytes compare uncompressed vs on-device data-block sizes written at
// the level; their ratio is the level's compression ratio.
type LevelTraffic struct {
	ReadBytes   stats.Counter
	WriteBytes  stats.Counter
	Compactions stats.Counter
	RawBytes    stats.Counter
	StoredBytes stats.Counter
}

// LSM is the leveled tree. Mutations (Ingest, CompactOnce) must come from
// one goroutine at a time; reads are concurrent.
type LSM struct {
	opts Options

	mu        sync.RWMutex
	levels    [][]*table // levels[0] newest-last; deeper levels key-sorted
	nextGen   uint64
	rr        []int           // round-robin victim cursor per level
	busy      map[*table]bool // inputs of in-flight compactions
	activeOut []bool          // a compaction is writing into this level

	traffic []*LevelTraffic
	stallCh chan struct{} // closed and replaced to broadcast un-stall
}

// New creates an empty leveled LSM.
func New(opts Options) (*LSM, error) {
	opts.fill()
	if opts.Place == nil {
		return nil, fmt.Errorf("leveled: Placement required")
	}
	l := &LSM{
		opts:      opts,
		levels:    make([][]*table, opts.MaxLevels),
		rr:        make([]int, opts.MaxLevels),
		busy:      make(map[*table]bool),
		activeOut: make([]bool, opts.MaxLevels+1),
		traffic:   make([]*LevelTraffic, opts.MaxLevels),
		stallCh:   make(chan struct{}),
	}
	for i := range l.traffic {
		l.traffic[i] = &LevelTraffic{}
	}
	return l, nil
}

// Traffic returns level k's compaction counters.
func (l *LSM) Traffic(level int) *LevelTraffic { return l.traffic[level] }

// MaxLevels returns the configured depth.
func (l *LSM) MaxLevels() int { return l.opts.MaxLevels }

// TableCount returns the number of tables at a level.
func (l *LSM) TableCount(level int) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.levels[level])
}

// LevelBytes returns the byte total at a level.
func (l *LSM) LevelBytes(level int) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var n int64
	for _, t := range l.levels[level] {
		n += t.meta.TotalSize
	}
	return n
}

// target returns level k's byte budget (0 = "count files" for L0).
func (l *LSM) target(level int) int64 {
	if level == 0 {
		return 0
	}
	t := l.opts.L1Target
	for i := 1; i < level; i++ {
		t *= int64(l.opts.Ratio)
	}
	return t
}

// Entry is one sorted KV fed to Ingest.
type Entry struct {
	Key   keys.InternalKey
	Value []byte
}

// Ingest writes sorted entries as one or more new L0 tables. This is the
// memtable-flush / migration entry point. I/O is background.
func (l *LSM) Ingest(entries []Entry, op device.Op) error {
	op.Background = true
	op.Sequential = true
	for len(entries) > 0 {
		n := len(entries)
		tbl, rest, err := l.buildTable(0, entries, op)
		if err != nil {
			return err
		}
		entries = rest
		if len(rest) == n {
			return fmt.Errorf("leveled: ingest made no progress")
		}
		l.mu.Lock()
		l.levels[0] = append(l.levels[0], tbl)
		l.mu.Unlock()
		l.traffic[0].WriteBytes.Add(uint64(tbl.meta.TotalSize))
	}
	return nil
}

// buildTable streams entries into a new table at level until FileSize,
// returning the table and the remaining entries.
func (l *LSM) buildTable(level int, entries []Entry, op device.Op) (*table, []Entry, error) {
	l.mu.Lock()
	l.nextGen++
	gen := l.nextGen
	l.mu.Unlock()
	size := int64(0)
	for _, e := range entries {
		size += int64(len(e.Key.User) + len(e.Value) + 16)
		if size > l.opts.FileSize {
			break
		}
	}
	dev := l.opts.Place(level, size)
	if dev == nil {
		return nil, nil, fmt.Errorf("leveled: no device for level %d", level)
	}
	tbl, rest, err := l.buildTableOn(dev, level, gen, entries, op)
	if errors.Is(err, device.ErrNoSpace) && l.opts.Fallback != nil && dev != l.opts.Fallback {
		// The placement check raced other builders; retry on the fallback.
		dev.Remove(fmt.Sprintf("%s-L%d-G%d.sst", l.opts.Name, level, gen))
		return l.buildTableOn(l.opts.Fallback, level, gen, entries, op)
	}
	return tbl, rest, err
}

// buildTableOn writes one table on the given device.
func (l *LSM) buildTableOn(dev *device.Device, level int, gen uint64, entries []Entry, op device.Op) (*table, []Entry, error) {
	name := fmt.Sprintf("%s-L%d-G%d.sst", l.opts.Name, level, gen)
	f, err := dev.Create(name)
	if err != nil {
		return nil, nil, err
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{
		BloomBitsPerKey: l.opts.BloomBits,
		ExpectedKeys:    int(l.opts.FileSize / 64),
		Op:              op,
		Codec:           l.opts.Compress.CodecFor(level),
	})
	written := int64(0)
	i := 0
	for ; i < len(entries); i++ {
		e := entries[i]
		if err := w.Add(e.Key, e.Value); err != nil {
			return nil, nil, err
		}
		written += int64(len(e.Key.User) + len(e.Value) + 16)
		if written >= l.opts.FileSize && i+1 < len(entries) &&
			!bytes.Equal(entries[i+1].Key.User, e.Key.User) {
			i++
			break
		}
	}
	meta, err := w.Finish()
	if err != nil {
		dev.Remove(name)
		return nil, nil, err
	}
	l.traffic[level].RawBytes.Add(uint64(meta.RawSize))
	l.traffic[level].StoredBytes.Add(uint64(meta.DataSize))
	r, err := sstable.OpenReader(f, l.opts.PageCache, op)
	if err != nil {
		dev.Remove(name)
		return nil, nil, err
	}
	tbl := &table{reader: r, meta: meta, file: f, dev: dev}
	tbl.refs.Store(1) // the LSM's own reference
	return tbl, entries[i:], nil
}

// Get searches L0 newest-first then each deeper level.
func (l *LSM) Get(user []byte, seq uint64, op device.Op) (value []byte, kind keys.Kind, found bool, err error) {
	l.mu.RLock()
	var candidates []*table
	for i := len(l.levels[0]) - 1; i >= 0; i-- {
		t := l.levels[0][i]
		if t.rang().Contains(user) {
			candidates = append(candidates, t)
		}
	}
	deeper := make([]*table, 0, l.opts.MaxLevels)
	for level := 1; level < l.opts.MaxLevels; level++ {
		if t := findTable(l.levels[level], user); t != nil {
			deeper = append(deeper, t)
		}
	}
	all := append(candidates, deeper...)
	for _, t := range all {
		t.acquire()
	}
	l.mu.RUnlock()
	defer func() {
		for _, t := range all {
			t.release()
		}
	}()

	for _, t := range all {
		v, k, ok, err := t.reader.Get(user, seq, op)
		if err != nil {
			return nil, 0, false, err
		}
		if ok {
			return v, k, true, nil
		}
	}
	return nil, 0, false, nil
}

// GetWithSeq is Get plus the matched version's sequence number. Crash
// recovery uses it to arbitrate between an LSM version and a fast-tier copy
// of the same key.
func (l *LSM) GetWithSeq(user []byte, seq uint64, op device.Op) (value []byte, kind keys.Kind, entrySeq uint64, found bool, err error) {
	l.mu.RLock()
	var all []*table
	for i := len(l.levels[0]) - 1; i >= 0; i-- {
		t := l.levels[0][i]
		if t.rang().Contains(user) {
			all = append(all, t)
		}
	}
	for level := 1; level < l.opts.MaxLevels; level++ {
		if t := findTable(l.levels[level], user); t != nil {
			all = append(all, t)
		}
	}
	for _, t := range all {
		t.acquire()
	}
	l.mu.RUnlock()
	defer func() {
		for _, t := range all {
			t.release()
		}
	}()

	for _, t := range all {
		v, k, es, ok, err := t.reader.GetEntry(user, seq, op)
		if err != nil {
			return nil, 0, 0, false, err
		}
		if ok {
			return v, k, es, true, nil
		}
	}
	return nil, 0, 0, false, nil
}

// findTable binary-searches a sorted non-overlapping level.
func findTable(tables []*table, user []byte) *table {
	lo, hi := 0, len(tables)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(tables[mid].meta.Largest, user) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(tables) {
		return nil
	}
	if bytes.Compare(tables[lo].meta.Smallest, user) <= 0 {
		return tables[lo]
	}
	return nil
}

// NeedsCompaction reports whether any level is over budget, and the
// shallowest such level.
func (l *LSM) NeedsCompaction() (int, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.levels[0]) >= l.opts.L0Compact {
		return 0, true
	}
	for level := 1; level < l.opts.MaxLevels-1; level++ {
		var n int64
		for _, t := range l.levels[level] {
			n += t.meta.TotalSize
		}
		if n > l.target(level) {
			return level, true
		}
	}
	return 0, false
}

// Quiesced reports whether no level needs compaction and no compaction is
// in flight — the drain-complete condition.
func (l *LSM) Quiesced() bool {
	if _, need := l.NeedsCompaction(); need {
		return false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, active := range l.activeOut {
		if active {
			return false
		}
	}
	return true
}

// Stalled reports whether writers should stall on L0 debt.
func (l *LSM) Stalled() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.levels[0]) >= l.opts.L0Stall
}

// StallChan returns a channel closed at the next un-stall transition.
func (l *LSM) StallChan() <-chan struct{} {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.stallCh
}
