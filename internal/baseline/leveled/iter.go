package leveled

import (
	"bytes"
	"container/heap"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// ScanIter streams live user keys in order across every level, resolving
// versions by sequence and eliding tombstones. Callers must Close the
// iterator to release its table references.
type ScanIter struct {
	h      tableHeap
	tables []*table
	key    []byte
	value  []byte
	valid  bool
	err    error
}

// Close releases the iterator's table references. Idempotent.
func (s *ScanIter) Close() {
	for _, t := range s.tables {
		t.release()
	}
	s.tables = nil
	s.valid = false
}

// NewScanIter opens a merged iterator at the first key >= lo (nil = start).
func (l *LSM) NewScanIter(lo []byte, op device.Op) *ScanIter {
	s := &ScanIter{}
	l.mu.RLock()
	var tables []*table
	for level := 0; level < l.opts.MaxLevels; level++ {
		tables = append(tables, l.levels[level]...)
	}
	for _, t := range tables {
		t.acquire()
	}
	l.mu.RUnlock()
	s.tables = tables
	for _, t := range tables {
		if lo != nil && bytes.Compare(t.meta.Largest, lo) < 0 {
			continue
		}
		it := t.reader.NewIter(op)
		if lo == nil {
			it.First()
		} else {
			it.SeekGE(keys.MakeSearchKey(lo, keys.MaxSeq))
		}
		if it.Valid() {
			s.h = append(s.h, &tableIter{it: it})
		} else if err := it.Err(); err != nil {
			s.err = err
		}
	}
	heap.Init(&s.h)
	s.advance()
	return s
}

func (s *ScanIter) advance() {
	s.valid = false
	for len(s.h) > 0 {
		top := s.h[0]
		k := top.it.Key()
		user := append([]byte(nil), k.User...)
		kind := k.Kind
		value := append([]byte(nil), top.it.Value()...)
		// Drain older versions of this user key.
		for len(s.h) > 0 {
			cur := s.h[0]
			ck := cur.it.Key()
			if !bytes.Equal(ck.User, user) {
				break
			}
			cur.it.Next()
			if cur.it.Valid() {
				heap.Fix(&s.h, 0)
			} else {
				if err := cur.it.Err(); err != nil {
					s.err = err
					return
				}
				heap.Pop(&s.h)
			}
		}
		if kind == keys.KindDelete {
			continue
		}
		s.key, s.value, s.valid = user, value, true
		return
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (s *ScanIter) Valid() bool { return s.valid }

// Next advances to the next live user key.
func (s *ScanIter) Next() { s.advance() }

// Key returns the current user key.
func (s *ScanIter) Key() []byte { return s.key }

// Value returns the current value.
func (s *ScanIter) Value() []byte { return s.value }

// Err returns the first error encountered.
func (s *ScanIter) Err() error { return s.err }
