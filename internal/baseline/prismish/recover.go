package prismish

import (
	"bytes"
	"fmt"
	"sort"

	"hyperdb/internal/baseline/leveled"
	"hyperdb/internal/btree"
	"hyperdb/internal/cache"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// Recover rebuilds the engine from the devices after a crash. Slab writes
// are durable in-place page writes, so the slot files themselves survive;
// what is lost is the in-memory index and free lists. Recovery rescans every
// slot: CRC-valid slots are candidates (torn or never-written slots fail the
// checksum and become free), the newest sequence wins per key, and a
// candidate whose key has an equal-or-newer version in the SATA LSM is a
// leftover from a completed migration — its slot is freed, since the
// migration's slot-free bookkeeping also lived only in memory.
func Recover(opts Options) (*DB, error) {
	if opts.NVMe == nil || opts.SATA == nil {
		return nil, fmt.Errorf("prismish: both devices required")
	}
	opts.fill()
	db := &DB{
		opts:  opts,
		dram:  cache.NewLRU(opts.CacheBytes, nil),
		index: btree.New[loc](),
		stopC: make(chan struct{}),
	}
	ps := opts.NVMe.PageSize()
	for _, c := range classes {
		name := fmt.Sprintf("prismish-slab%d", c)
		f, err := opts.NVMe.Open(name)
		if err != nil {
			f, err = opts.NVMe.Create(name)
			if err != nil {
				return nil, err
			}
		}
		spp := ps / c
		if spp < 1 {
			spp = 1
		}
		db.slabs = append(db.slabs, &slabFile{
			f: f, slotSize: c, slotsPerPage: spp,
			nextPage: uint32((f.Size() + int64(ps) - 1) / int64(ps)),
		})
	}

	l, lsmSeq, err := leveled.Recover(leveled.Options{
		Name:      "prismish",
		Place:     func(int, int64) *device.Device { return opts.SATA },
		FileSize:  opts.FileSize,
		L1Target:  opts.L1Target,
		Ratio:     opts.Ratio,
		MaxLevels: opts.MaxLevels,
		PageCache: db.dram,
		Compress:  opts.Compress,
	}, opts.SATA)
	if err != nil {
		return nil, err
	}
	db.lsm = l
	maxSeq := lsmSeq

	type cand struct {
		key  []byte
		l    loc
		free bool
	}
	var cands []cand
	pageBuf := make([]byte, ps)
	for ci, sf := range db.slabs {
		nPages := sf.f.Size() / int64(ps)
		for page := int64(0); page < nPages; page++ {
			if _, err := sf.f.ReadAt(pageBuf, page*int64(ps), device.BgSeq); err != nil {
				return nil, err
			}
			for slot := 0; slot < sf.slotsPerPage; slot++ {
				buf := pageBuf[slot*sf.slotSize : (slot+1)*sf.slotSize]
				seq, tomb, k, v, err := decodeSlot(buf)
				if err != nil {
					sf.freeSlots = append(sf.freeSlots,
						slotRef{page: uint32(page), slot: uint16(slot)})
					continue
				}
				if seq > maxSeq {
					maxSeq = seq
				}
				cands = append(cands, cand{
					key: bytes.Clone(k),
					l: loc{
						class: int8(ci), page: uint32(page), slot: uint16(slot),
						seq: seq, size: int32(slotHeader + len(k) + len(v)),
						tomb: tomb,
					},
				})
			}
		}
	}

	// Newest sequence wins per key; every losing copy (a stale slot left by a
	// resize to another class) frees its slot.
	sort.Slice(cands, func(a, b int) bool {
		if c := bytes.Compare(cands[a].key, cands[b].key); c != 0 {
			return c < 0
		}
		return cands[a].l.seq > cands[b].l.seq
	})
	for i := range cands {
		if i > 0 && bytes.Equal(cands[i].key, cands[i-1].key) {
			cands[i].free = true
			continue
		}
		_, _, entrySeq, found, err := db.lsm.GetWithSeq(cands[i].key, keys.MaxSeq, device.BgSeq)
		if err != nil {
			return nil, err
		}
		if found && entrySeq >= cands[i].l.seq {
			cands[i].free = true // already migrated to the LSM
			continue
		}
		db.index.Set(cands[i].key, cands[i].l)
	}
	for _, c := range cands {
		if c.free {
			db.slabs[c.l.class].freeSlots = append(db.slabs[c.l.class].freeSlots,
				slotRef{page: c.l.page, slot: c.l.slot})
		}
	}
	db.seq.Store(maxSeq)

	if !opts.DisableBackground {
		db.wg.Add(1)
		go db.migrationWorker()
		for i := 0; i < opts.BackgroundThreads; i++ {
			db.wg.Add(1)
			go db.compactionWorker()
		}
	}
	return db, nil
}
