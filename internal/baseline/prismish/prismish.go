// Package prismish is the PrismDB-style baseline of §4.1: the *caching*
// multi-tier architecture. The NVMe device holds a slab object store —
// size-classed slot files with global free lists, no key-range organisation
// — plus an in-memory index; a clock (second-chance) bit per object tracks
// hotness; when the device crosses its high watermark, cold objects in a
// key range are collected and merged into a SATA-resident leveled LSM.
//
// Because slots are allocated from global free lists, objects with adjacent
// keys scatter across pages. Migrating a sorted batch of K small objects
// therefore reads ~K distinct pages — the read amplification HyperDB's
// zone layout removes (Figures 2a and 9b).
package prismish

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb/internal/baseline/leveled"
	"hyperdb/internal/btree"
	"hyperdb/internal/cache"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/stats"
)

// ErrNotFound is returned for missing or deleted keys.
var ErrNotFound = fmt.Errorf("prismish: not found")

// ErrTooLarge reports an object over the page size.
var ErrTooLarge = fmt.Errorf("prismish: object exceeds page size")

// Options configures the engine.
type Options struct {
	NVMe *device.Device
	SATA *device.Device
	// CacheBytes is the DRAM page cache budget.
	CacheBytes int64
	// HighWatermark triggers migration; LowWatermark stops it.
	HighWatermark float64
	LowWatermark  float64
	// BatchObjects is the object count per migration batch.
	BatchObjects int
	// FileSize, L1Target, Ratio, MaxLevels parameterise the SATA LSM.
	FileSize  int64
	L1Target  int64
	Ratio     int
	MaxLevels int
	// BackgroundThreads compacts the SATA LSM (paper default 8).
	BackgroundThreads int
	// Compress picks the SSTable block codec per level (zero: raw).
	Compress compress.Policy
	// DisableBackground turns workers off.
	DisableBackground bool
	// BackgroundInterval is the workers' poll period.
	BackgroundInterval time.Duration
}

func (o *Options) fill() {
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.HighWatermark <= 0 || o.HighWatermark > 1 {
		o.HighWatermark = 0.9
	}
	if o.LowWatermark <= 0 || o.LowWatermark >= o.HighWatermark {
		o.LowWatermark = o.HighWatermark - 0.15
	}
	if o.BatchObjects <= 0 {
		o.BatchObjects = 4096
	}
	if o.BackgroundThreads <= 0 {
		o.BackgroundThreads = 8
	}
	if o.BackgroundInterval <= 0 {
		o.BackgroundInterval = 2 * time.Millisecond
	}
}

// slot header: seq(8) flags(1) klen(2) vlen(4) crc(4). The CRC covers the
// first 15 header bytes plus the key/value payload, so recovery can tell a
// fully persisted slot from a never-written or torn one — an all-zero slot
// fails the check (the CRC of zero bytes is non-zero).
const slotHeader = 19

// slotCRC checksums a slot's header prefix and payload.
func slotCRC(buf []byte, kl, vl int) uint32 {
	h := crc32.NewIEEE()
	h.Write(buf[:15])
	h.Write(buf[slotHeader : slotHeader+kl+vl])
	return h.Sum32()
}

var classes = []int{64, 128, 256, 512, 1024, 2048, 4096}

func classFor(n int) int {
	for i, c := range classes {
		if n <= c {
			return i
		}
	}
	return -1
}

// loc is an index entry in the slab store.
type loc struct {
	class int8
	page  uint32
	slot  uint16
	seq   uint64
	size  int32
	ref   bool // clock second-chance bit
	tomb  bool
}

// slabFile is one size class: pages of fixed slots with a global free list.
type slabFile struct {
	f            *device.File
	slotSize     int
	slotsPerPage int
	nextPage     uint32
	nextSlot     uint16
	freeSlots    []slotRef // global — the scatter source
	freePages    []uint32
}

type slotRef struct {
	page uint32
	slot uint16
}

// DB is the PrismDB-style engine.
type DB struct {
	opts  Options
	dram  *cache.LRU
	lsm   *leveled.LSM
	seq   atomic.Uint64
	stopC chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	slabs  []*slabFile
	index  *btree.Map[loc]
	cursor []byte // round-robin key cursor for migration ranges

	migrations     stats.Counter
	migratedObjs   stats.Counter
	migrationReads stats.Counter // page reads during migration
	closed         atomic.Bool
}

// Open builds the engine.
func Open(opts Options) (*DB, error) {
	if opts.NVMe == nil || opts.SATA == nil {
		return nil, fmt.Errorf("prismish: both devices required")
	}
	opts.fill()
	db := &DB{
		opts:  opts,
		dram:  cache.NewLRU(opts.CacheBytes, nil),
		index: btree.New[loc](),
		stopC: make(chan struct{}),
	}
	for _, c := range classes {
		f, err := opts.NVMe.Create(fmt.Sprintf("prismish-slab%d", c))
		if err != nil {
			return nil, err
		}
		spp := opts.NVMe.PageSize() / c
		if spp < 1 {
			spp = 1
		}
		db.slabs = append(db.slabs, &slabFile{
			f: f, slotSize: c, slotsPerPage: spp,
		})
	}
	l, err := leveled.New(leveled.Options{
		Name:      "prismish",
		Place:     func(int, int64) *device.Device { return opts.SATA },
		FileSize:  opts.FileSize,
		L1Target:  opts.L1Target,
		Ratio:     opts.Ratio,
		MaxLevels: opts.MaxLevels,
		PageCache: db.dram,
		Compress:  opts.Compress,
	})
	if err != nil {
		return nil, err
	}
	db.lsm = l
	if !opts.DisableBackground {
		db.wg.Add(1)
		go db.migrationWorker()
		for i := 0; i < opts.BackgroundThreads; i++ {
			db.wg.Add(1)
			go db.compactionWorker()
		}
	}
	return db, nil
}

// Close stops the workers.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	close(db.stopC)
	db.wg.Wait()
	return nil
}

func encodeSlot(dst []byte, seq uint64, tomb bool, k, v []byte) {
	binary.LittleEndian.PutUint64(dst, seq)
	if tomb {
		dst[8] = 1
	} else {
		dst[8] = 0
	}
	binary.LittleEndian.PutUint16(dst[9:], uint16(len(k)))
	binary.LittleEndian.PutUint32(dst[11:], uint32(len(v)))
	copy(dst[slotHeader:], k)
	copy(dst[slotHeader+len(k):], v)
	binary.LittleEndian.PutUint32(dst[15:], slotCRC(dst, len(k), len(v)))
}

func decodeSlot(buf []byte) (seq uint64, tomb bool, k, v []byte, err error) {
	if len(buf) < slotHeader {
		return 0, false, nil, nil, fmt.Errorf("prismish: short slot")
	}
	seq = binary.LittleEndian.Uint64(buf)
	tomb = buf[8] == 1
	kl := int(binary.LittleEndian.Uint16(buf[9:]))
	vl := int(binary.LittleEndian.Uint32(buf[11:]))
	if slotHeader+kl+vl > len(buf) {
		return 0, false, nil, nil, fmt.Errorf("prismish: slot overflow")
	}
	if binary.LittleEndian.Uint32(buf[15:]) != slotCRC(buf, kl, vl) {
		return 0, false, nil, nil, fmt.Errorf("prismish: slot checksum mismatch")
	}
	return seq, tomb, buf[slotHeader : slotHeader+kl], buf[slotHeader+kl : slotHeader+kl+vl], nil
}

// allocSlot returns a free slot in class c — global free list first (the
// scatter), then the current open page, then a fresh page.
func (db *DB) allocSlot(c int) (slotRef, error) {
	sf := db.slabs[c]
	if n := len(sf.freeSlots); n > 0 {
		r := sf.freeSlots[n-1]
		sf.freeSlots = sf.freeSlots[:n-1]
		return r, nil
	}
	if len(sf.freePages) > 0 {
		p := sf.freePages[len(sf.freePages)-1]
		if err := sf.f.Reallocate(int64(p)); err != nil {
			return slotRef{}, err
		}
		sf.freePages = sf.freePages[:len(sf.freePages)-1]
		for s := 1; s < sf.slotsPerPage; s++ {
			sf.freeSlots = append(sf.freeSlots, slotRef{page: p, slot: uint16(s)})
		}
		return slotRef{page: p, slot: 0}, nil
	}
	if sf.nextSlot == 0 {
		// Open a fresh page at the tail: a ledger operation, no traffic.
		end := (int64(sf.nextPage) + 1) * int64(db.opts.NVMe.PageSize())
		if err := sf.f.EnsureAllocated(end); err != nil {
			return slotRef{}, err
		}
	}
	r := slotRef{page: sf.nextPage, slot: sf.nextSlot}
	sf.nextSlot++
	if int(sf.nextSlot) >= sf.slotsPerPage {
		sf.nextSlot = 0
		sf.nextPage++
	}
	return r, nil
}

func (db *DB) writeSlot(c int, r slotRef, seq uint64, tomb bool, k, v []byte, op device.Op) error {
	sf := db.slabs[c]
	buf := make([]byte, sf.slotSize)
	encodeSlot(buf, seq, tomb, k, v)
	off := int64(r.page)*int64(db.opts.NVMe.PageSize()) + int64(r.slot)*int64(sf.slotSize)
	db.dram.Delete(db.pageKey(c, r.page))
	return sf.f.WriteAt(buf, off, op)
}

// pageKey builds the DRAM-cache key without fmt (hot on every slab read).
// The 'P' prefix plus binary layout keeps it disjoint from other cache keys.
func (db *DB) pageKey(c int, page uint32) string {
	var b [6]byte
	b[0] = 'P'
	b[1] = byte(c)
	binary.LittleEndian.PutUint32(b[2:], page)
	return string(b[:])
}

// readSlotPage fetches a slab page through the DRAM cache.
func (db *DB) readSlotPage(c int, page uint32, op device.Op) ([]byte, error) {
	ck := db.pageKey(c, page)
	if p, ok := db.dram.Get(ck); ok {
		return p, nil
	}
	sf := db.slabs[c]
	buf := make([]byte, db.opts.NVMe.PageSize())
	if _, err := sf.f.ReadAt(buf, int64(page)*int64(db.opts.NVMe.PageSize()), op); err != nil {
		return nil, err
	}
	db.dram.Put(ck, buf)
	return buf, nil
}
