package prismish

import (
	"bytes"
	"errors"
	"time"

	"hyperdb/internal/baseline/leveled"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// usedFraction is the slab store's logical occupancy: allocated device
// bytes minus reusable free slots/pages, over capacity. Slab pages persist
// across migrations (PrismDB keeps the NVMe >95% utilised, Fig. 2b), so the
// raw device usage would never fall; free-slot accounting is what tells
// migration when it has made room.
func (db *DB) usedFraction() float64 {
	capacity := db.opts.NVMe.Capacity()
	if capacity <= 0 {
		return 0
	}
	ps := int64(db.opts.NVMe.PageSize())
	db.mu.RLock()
	var free int64
	for _, sf := range db.slabs {
		free += int64(len(sf.freeSlots)) * int64(sf.slotSize)
		free += int64(len(sf.freePages)) * ps
	}
	db.mu.RUnlock()
	used := db.opts.NVMe.Used() - free
	if used < 0 {
		used = 0
	}
	return float64(used) / float64(capacity)
}

// Put writes key=value into the slab store (durable in-place page write).
// When the slab is full and background migration has not yet freed slots,
// the writer migrates synchronously and retries — the foreground-blocking
// behaviour that shows up as PrismDB's write slowdowns in §4.2.
func (db *DB) Put(key, value []byte) error {
	return db.putWithEviction(key, value, false)
}

// Delete writes a tombstone that migrates down to delete the SATA copy.
func (db *DB) Delete(key []byte) error {
	return db.putWithEviction(key, nil, true)
}

func (db *DB) putWithEviction(key, value []byte, tomb bool) error {
	for attempt := 0; ; attempt++ {
		err := db.put(key, value, tomb, device.Fg)
		if err == nil || !errors.Is(err, device.ErrNoSpace) || attempt >= 64 {
			return err
		}
		if _, merr := db.MigrateOnce(); merr != nil {
			return merr
		}
	}
}

func (db *DB) put(key, value []byte, tomb bool, op device.Op) error {
	seq := db.seq.Add(1)
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.putLocked(key, value, tomb, seq, op)
}

// putLocked is put's body with the sequence supplied by the caller (batches
// allocate one block up front). Caller holds db.mu.
func (db *DB) putLocked(key, value []byte, tomb bool, seq uint64, op device.Op) error {
	c := classFor(slotHeader + len(key) + len(value))
	if c < 0 {
		return ErrTooLarge
	}
	if old, ok := db.index.Get(key); ok {
		if int(old.class) == c {
			// In-place update.
			if err := db.writeSlot(c, slotRef{page: old.page, slot: old.slot}, seq, tomb, key, value, op); err != nil {
				return err
			}
			db.index.Set(bytes.Clone(key), loc{
				class: old.class, page: old.page, slot: old.slot,
				seq: seq, size: int32(slotHeader + len(key) + len(value)),
				ref: true, tomb: tomb,
			})
			return nil
		}
		// Resized: free the old slot, take a new one.
		db.slabs[old.class].freeSlots = append(db.slabs[old.class].freeSlots,
			slotRef{page: old.page, slot: old.slot})
	}
	r, err := db.allocSlot(c)
	if err != nil {
		return err
	}
	if err := db.writeSlot(c, r, seq, tomb, key, value, op); err != nil {
		return err
	}
	db.index.Set(bytes.Clone(key), loc{
		class: int8(c), page: r.page, slot: r.slot,
		seq: seq, size: int32(slotHeader + len(key) + len(value)),
		ref: true, tomb: tomb,
	})
	return nil
}

// Get returns the value for key, or ErrNotFound. SATA hits are admitted
// back into the slab (the caching architecture's promotion path).
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	l, ok := db.index.Get(key)
	db.mu.RUnlock()
	if ok {
		if l.tomb {
			return nil, ErrNotFound
		}
		page, err := db.readSlotPage(int(l.class), l.page, device.Fg)
		if err != nil {
			return nil, err
		}
		sf := db.slabs[l.class]
		off := int(l.slot) * sf.slotSize
		if off+sf.slotSize > len(page) {
			return nil, ErrNotFound
		}
		_, tomb, k, v, err := decodeSlot(page[off : off+sf.slotSize])
		if err != nil || tomb || !bytes.Equal(k, key) {
			return nil, ErrNotFound
		}
		db.mu.Lock()
		if cur, ok := db.index.Get(key); ok && cur.seq == l.seq {
			cur.ref = true
			db.index.Set(key, cur)
		}
		db.mu.Unlock()
		return bytes.Clone(v), nil
	}

	v, kind, found, err := db.lsm.Get(key, keys.MaxSeq, device.Fg)
	if err != nil {
		return nil, err
	}
	if !found || kind == keys.KindDelete {
		return nil, ErrNotFound
	}
	// Admission: copy the read object into the slab when there is room.
	if db.usedFraction() < db.opts.HighWatermark {
		db.put(key, v, false, device.Bg)
	}
	return v, nil
}

// BatchOp is one write in a WriteBatch: a put, or a delete when Delete is
// set.
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// WriteBatch applies the ops under one lock acquisition, drawing a single
// sequence block so slice order is sequence order (last-write-wins for
// duplicates). On ErrNoSpace the lock is dropped, one migration batch runs
// synchronously, and the batch resumes at the failed op.
func (db *DB) WriteBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	n := uint64(len(ops))
	base := db.seq.Add(n) - n + 1
	i, attempts := 0, 0
	db.mu.Lock()
	for i < len(ops) {
		o := &ops[i]
		err := db.putLocked(o.Key, o.Value, o.Delete, base+uint64(i), device.Fg)
		if err == nil {
			i++
			continue
		}
		if !errors.Is(err, device.ErrNoSpace) || attempts >= 64 {
			db.mu.Unlock()
			return err
		}
		attempts++
		db.mu.Unlock()
		if _, merr := db.MigrateOnce(); merr != nil {
			return merr
		}
		db.mu.Lock()
	}
	db.mu.Unlock()
	return nil
}

// MultiGet returns values positionally aligned with keys (nil = missing or
// deleted): one index-lock acquisition for the batch, a page memo shared
// between keys on the same slab page, one clock-bit refresh pass, and LSM
// fallback (with slab admission) for index misses.
func (db *DB) MultiGet(keyList [][]byte) ([][]byte, error) {
	out := make([][]byte, len(keyList))
	type pend struct {
		idx int
		l   loc
	}
	var slab []pend
	var lsmMiss []int
	db.mu.RLock()
	for i, k := range keyList {
		if l, ok := db.index.Get(k); ok {
			if !l.tomb {
				slab = append(slab, pend{idx: i, l: l})
			}
		} else {
			lsmMiss = append(lsmMiss, i)
		}
	}
	db.mu.RUnlock()

	type pid struct {
		c    int8
		page uint32
	}
	pages := make(map[pid][]byte, len(slab))
	var refresh []pend
	for _, p := range slab {
		key := keyList[p.idx]
		pg, ok := pages[pid{p.l.class, p.l.page}]
		if !ok {
			var err error
			pg, err = db.readSlotPage(int(p.l.class), p.l.page, device.Fg)
			if err != nil {
				return nil, err
			}
			pages[pid{p.l.class, p.l.page}] = pg
		}
		sf := db.slabs[p.l.class]
		off := int(p.l.slot) * sf.slotSize
		if off+sf.slotSize > len(pg) {
			continue
		}
		_, tomb, k2, v, err := decodeSlot(pg[off : off+sf.slotSize])
		if err != nil || tomb || !bytes.Equal(k2, key) {
			continue
		}
		out[p.idx] = bytes.Clone(v)
		refresh = append(refresh, p)
	}
	if len(refresh) > 0 {
		db.mu.Lock()
		for _, p := range refresh {
			if cur, ok := db.index.Get(keyList[p.idx]); ok && cur.seq == p.l.seq {
				cur.ref = true
				db.index.Set(keyList[p.idx], cur)
			}
		}
		db.mu.Unlock()
	}

	for _, i := range lsmMiss {
		v, kind, found, err := db.lsm.Get(keyList[i], keys.MaxSeq, device.Fg)
		if err != nil {
			return nil, err
		}
		if found && kind != keys.KindDelete {
			out[i] = v
			if db.usedFraction() < db.opts.HighWatermark {
				db.put(keyList[i], v, false, device.Bg)
			}
		}
	}
	return out, nil
}

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live keys >= start, merging slab and LSM.
func (db *DB) Scan(start []byte, limit int) ([]KV, error) {
	type sref struct {
		key []byte
		l   loc
	}
	var srefs []sref
	db.mu.RLock()
	db.index.Ascend(start, nil, func(k []byte, l loc) bool {
		srefs = append(srefs, sref{key: bytes.Clone(k), l: l})
		return len(srefs) < limit*4
	})
	db.mu.RUnlock()

	it := db.lsm.NewScanIter(start, device.Fg)
	defer it.Close()
	out := make([]KV, 0, limit)
	si := 0
	readSlab := func(r sref) ([]byte, bool) {
		page, err := db.readSlotPage(int(r.l.class), r.l.page, device.Fg)
		if err != nil {
			return nil, false
		}
		sf := db.slabs[r.l.class]
		off := int(r.l.slot) * sf.slotSize
		if off+sf.slotSize > len(page) {
			return nil, false
		}
		_, tomb, k, v, err := decodeSlot(page[off : off+sf.slotSize])
		if err != nil || tomb || !bytes.Equal(k, r.key) {
			return nil, false
		}
		return bytes.Clone(v), true
	}
	for len(out) < limit {
		var sk []byte
		if si < len(srefs) {
			sk = srefs[si].key
		}
		switch {
		case sk == nil && !it.Valid():
			return out, it.Err()
		case sk != nil && (!it.Valid() || bytes.Compare(sk, it.Key()) < 0):
			if !srefs[si].l.tomb {
				if v, ok := readSlab(srefs[si]); ok {
					out = append(out, KV{Key: sk, Value: v})
				}
			}
			si++
		case sk != nil && bytes.Equal(sk, it.Key()):
			if !srefs[si].l.tomb {
				if v, ok := readSlab(srefs[si]); ok {
					out = append(out, KV{Key: sk, Value: v})
				}
			}
			si++
			it.Next()
		default:
			out = append(out, KV{Key: bytes.Clone(it.Key()), Value: bytes.Clone(it.Value())})
			it.Next()
		}
	}
	return out, it.Err()
}

// Stats reports migration counters for the harness.
type Stats struct {
	Migrations         uint64
	MigratedObjects    uint64
	MigrationPageReads uint64
	SlabObjects        int
}

// Stats snapshots the engine counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{
		Migrations:         db.migrations.Load(),
		MigratedObjects:    db.migratedObjs.Load(),
		MigrationPageReads: db.migrationReads.Load(),
		SlabObjects:        db.index.Len(),
	}
}

// MigrateOnce demotes one batch of cold objects (clock bit clear) starting
// at the round-robin key cursor into the SATA LSM. Objects with the clock
// bit set get a second chance (bit cleared, kept). Returns the number of
// objects demoted.
func (db *DB) MigrateOnce() (int, error) {
	type victim struct {
		key []byte
		l   loc
	}
	var victims []victim

	db.mu.Lock()
	start := db.cursor
	// Ascend must not mutate the tree mid-walk; collect the second-chance
	// clears and apply them afterwards.
	var secondChance [][]byte
	collect := func(lo, hi []byte) {
		db.index.Ascend(lo, hi, func(k []byte, l loc) bool {
			if l.ref {
				secondChance = append(secondChance, bytes.Clone(k))
				return true
			}
			victims = append(victims, victim{key: bytes.Clone(k), l: l})
			return len(victims) < db.opts.BatchObjects
		})
	}
	collect(start, nil)
	if len(victims) < db.opts.BatchObjects && start != nil {
		collect(nil, start) // wrap around
	}
	for _, k := range secondChance {
		if l, ok := db.index.Get(k); ok && l.ref {
			l.ref = false
			db.index.Set(k, l)
		}
	}
	if len(victims) > 0 {
		db.cursor = keys.Successor(victims[len(victims)-1].key)
	} else {
		db.cursor = nil
	}
	db.mu.Unlock()
	if len(victims) == 0 {
		return 0, nil
	}

	// Read the victims' pages — scattered, so roughly one page per object.
	type pageID struct {
		c    int8
		page uint32
	}
	pages := make(map[pageID][]byte)
	var entries []leveled.Entry
	var pageReads uint64
	for _, vt := range victims {
		pid := pageID{vt.l.class, vt.l.page}
		page, ok := pages[pid]
		if !ok {
			sf := db.slabs[vt.l.class]
			buf := make([]byte, db.opts.NVMe.PageSize())
			if _, err := sf.f.ReadAt(buf, int64(vt.l.page)*int64(db.opts.NVMe.PageSize()), device.Bg); err != nil {
				return 0, err
			}
			pages[pid] = buf
			page = buf
			pageReads++
		}
		sf := db.slabs[vt.l.class]
		off := int(vt.l.slot) * sf.slotSize
		seq, tomb, k, v, err := decodeSlot(page[off : off+sf.slotSize])
		if err != nil || !bytes.Equal(k, vt.key) {
			continue
		}
		kind := keys.KindSet
		if tomb {
			kind = keys.KindDelete
		}
		entries = append(entries, leveled.Entry{
			Key:   keys.InternalKey{User: bytes.Clone(k), Seq: seq, Kind: kind},
			Value: bytes.Clone(v),
		})
	}
	// Victims were collected in key order (with at most one wrap); sort the
	// wrapped tail into place for the LSM ingest.
	sortEntries(entries)
	// Backpressure: when the SATA LSM has L0 debt, the migration thread
	// helps compact before ingesting more — otherwise a sustained uniform
	// write load grows L0 without bound (and stalls client writes anyway,
	// which is the PrismDB slowdown the paper observes).
	for db.lsm.Stalled() {
		did, err := db.lsm.CompactOnce(device.Bg)
		if err != nil {
			return 0, err
		}
		if !did {
			break
		}
	}
	if err := db.lsm.Ingest(entries, device.Bg); err != nil {
		return 0, err
	}

	// Remove from the index and free slots (skip keys updated concurrently).
	db.mu.Lock()
	demoted := 0
	for _, vt := range victims {
		if cur, ok := db.index.Get(vt.key); ok && cur.seq == vt.l.seq {
			db.index.Delete(vt.key)
			db.slabs[vt.l.class].freeSlots = append(db.slabs[vt.l.class].freeSlots,
				slotRef{page: vt.l.page, slot: vt.l.slot})
			demoted++
		}
	}
	db.mu.Unlock()

	db.migrations.Inc()
	db.migratedObjs.Add(uint64(demoted))
	db.migrationReads.Add(pageReads)
	return demoted, nil
}

func sortEntries(es []leveled.Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && bytes.Compare(es[j].Key.User, es[j-1].Key.User) < 0; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func (db *DB) migrationWorker() {
	defer db.wg.Done()
	t := time.NewTicker(db.opts.BackgroundInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stopC:
			return
		case <-t.C:
		}
		for db.usedFraction() >= db.opts.HighWatermark {
			n, err := db.MigrateOnce()
			if err != nil || n == 0 {
				break
			}
			if db.usedFraction() < db.opts.LowWatermark {
				break
			}
			select {
			case <-db.stopC:
				return
			default:
			}
		}
	}
}

func (db *DB) compactionWorker() {
	defer db.wg.Done()
	t := time.NewTicker(db.opts.BackgroundInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stopC:
			return
		case <-t.C:
		}
		for {
			did, err := db.lsm.CompactOnce(device.Bg)
			if err != nil || !did {
				break
			}
			select {
			case <-db.stopC:
				return
			default:
			}
		}
	}
}

// Drain migrates and compacts until quiescent (harness use).
func (db *DB) Drain() error {
	for db.usedFraction() >= db.opts.LowWatermark {
		n, err := db.MigrateOnce()
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
	}
	for {
		did, err := db.lsm.CompactOnce(device.Bg)
		if err != nil {
			return err
		}
		if did {
			continue
		}
		if db.lsm.Quiesced() {
			return nil
		}
		// A background thread holds the remaining work; yield and re-check.
		time.Sleep(time.Millisecond)
	}
}

// LSM exposes the SATA tree for harness inspection.
func (db *DB) LSM() *leveled.LSM { return db.lsm }
