package prismish

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hyperdb/internal/device"
)

func open(t testing.TB, nvmeCap int64) (*DB, *device.Device, *device.Device) {
	t.Helper()
	nvme := device.New(device.UnthrottledProfile("nvme", nvmeCap))
	sata := device.New(device.UnthrottledProfile("sata", 1<<30))
	db, err := Open(Options{
		NVMe: nvme, SATA: sata,
		CacheBytes:        1 << 20,
		BatchObjects:      256,
		FileSize:          64 << 10,
		L1Target:          128 << 10,
		Ratio:             4,
		MaxLevels:         4,
		DisableBackground: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, nvme, sata
}

func k8(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

func TestBasicOps(t *testing.T) {
	db, _, _ := open(t, 32<<20)
	for i := uint64(0); i < 1000; i++ {
		if err := db.Put(k8(i<<32), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		v, err := db.Get(k8(i << 32))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: %q %v", i, v, err)
		}
	}
	db.Delete(k8(3 << 32))
	if _, err := db.Get(k8(3 << 32)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted: %v", err)
	}
}

func TestMigrationDemotesColdAndKeepsHot(t *testing.T) {
	db, _, _ := open(t, 32<<20)
	for i := uint64(0); i < 1000; i++ {
		db.Put(k8(i<<32), make([]byte, 100))
	}
	// Touch a hot subset so their clock bits are set.
	for i := uint64(0); i < 50; i++ {
		db.Get(k8(i << 32))
	}
	// First pass clears clock bits (second chance); the next demotes.
	if _, err := db.MigrateOnce(); err != nil {
		t.Fatal(err)
	}
	n, err := db.MigrateOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing migrated")
	}
	st := db.Stats()
	if st.Migrations < 1 || st.MigrationPageReads == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Everything remains readable (from either tier).
	for i := uint64(0); i < 1000; i++ {
		if _, err := db.Get(k8(i << 32)); err != nil {
			t.Fatalf("get %d after migration: %v", i, err)
		}
	}
}

func TestSecondChanceProtectsHotObjects(t *testing.T) {
	db, _, _ := open(t, 32<<20)
	for i := uint64(0); i < 600; i++ {
		db.Put(k8(i<<32), make([]byte, 100))
	}
	// Puts set the ref bit; first pass only clears bits (second chance),
	// demoting nothing but making a second pass demote the untouched ones.
	n1, _ := db.MigrateOnce()
	// Keep object 0 hot by re-reading between passes.
	db.Get(k8(0))
	n2, _ := db.MigrateOnce()
	if n1+n2 == 0 {
		t.Fatal("no demotions across two passes")
	}
	// Hot object should still be in the slab.
	db.mu.RLock()
	_, inSlab := db.index.Get(k8(0))
	db.mu.RUnlock()
	if !inSlab {
		t.Fatal("recently read object was demoted despite second chance")
	}
}

func TestScatterCausesHighPageReadsPerObject(t *testing.T) {
	// The architectural contrast with HyperDB: after update churn, slots
	// for adjacent keys scatter across pages, so migrating K small objects
	// needs ~K page reads.
	db, _, _ := open(t, 64<<20)
	rng := rand.New(rand.NewSource(4))
	// Interleaved inserts and deletes to shuffle the free lists.
	for round := 0; round < 20; round++ {
		for i := 0; i < 500; i++ {
			db.Put(k8(rng.Uint64()), make([]byte, 100))
		}
		// Delete-then-reinsert shuffles slots through the global free list.
		for i := 0; i < 200; i++ {
			db.Delete(k8(rng.Uint64()))
		}
	}
	// Clear clock bits, then demote a batch and inspect its page locality.
	db.MigrateOnce()
	st0 := db.Stats()
	db.MigrateOnce()
	st1 := db.Stats()
	objs := st1.MigratedObjects - st0.MigratedObjects
	reads := st1.MigrationPageReads - st0.MigrationPageReads
	if objs == 0 {
		t.Skip("no demotions this round")
	}
	perObj := float64(reads) / float64(objs)
	// 100B objects, 40 slots/page: perfect locality would be 0.025
	// reads/object. Scatter should push this far higher.
	if perObj < 0.2 {
		t.Fatalf("%.3f page reads/object — too much locality for a slab layout", perObj)
	}
}

func TestAdmissionOnSATARead(t *testing.T) {
	db, _, _ := open(t, 32<<20)
	for i := uint64(0); i < 500; i++ {
		db.Put(k8(i<<32), []byte(fmt.Sprintf("v%d", i)))
	}
	// Demote everything: a zero round only means the clock bits got their
	// second chance, so stop after two consecutive empty rounds.
	empty := 0
	for empty < 2 {
		n, err := db.MigrateOnce()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			empty++
		} else {
			empty = 0
		}
	}
	if db.Stats().SlabObjects != 0 {
		t.Fatalf("slab still holds %d objects", db.Stats().SlabObjects)
	}
	// A read from SATA admits the object back into the slab.
	v, err := db.Get(k8(7 << 32))
	if err != nil || string(v) != "v7" {
		t.Fatalf("get from SATA: %q %v", v, err)
	}
	db.mu.RLock()
	_, admitted := db.index.Get(k8(7 << 32))
	db.mu.RUnlock()
	if !admitted {
		t.Fatal("SATA read was not admitted into the slab")
	}
}

func TestScanAcrossTiers(t *testing.T) {
	db, _, _ := open(t, 32<<20)
	for i := uint64(0); i < 400; i++ {
		db.Put(k8(i<<32), []byte(fmt.Sprintf("v%d", i)))
	}
	// Demote half the key space, keep the rest in the slab.
	db.MigrateOnce()
	db.MigrateOnce()
	kvs, err := db.Scan(k8(0), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 100 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatal("scan out of order")
		}
	}
}

func TestInPlaceUpdateKeepsSlot(t *testing.T) {
	db, nvme, _ := open(t, 32<<20)
	db.Put(k8(1), make([]byte, 100))
	used := nvme.Used()
	db.Put(k8(1), make([]byte, 90)) // same class
	if nvme.Used() != used {
		t.Fatal("in-place update allocated new space")
	}
}

func TestUsedFractionAccountsFreeSlots(t *testing.T) {
	db, _, _ := open(t, 1<<20)
	for i := uint64(0); i < 20000; i++ {
		if err := db.Put(k8(i<<32), make([]byte, 100)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Capacity exceeded repeatedly; eviction path must have kept puts alive
	// and usedFraction must stay at or below ~1.
	if f := db.usedFraction(); f > 1.01 {
		t.Fatalf("usedFraction = %f", f)
	}
	if db.Stats().Migrations == 0 {
		t.Fatal("no migrations despite slab pressure")
	}
}
