// Package rocksish is the RocksDB-style baseline of §4.1: a classic
// single-LSM key-value store with a skiplist memtable, group-committed WAL,
// L0 flush, and leveled compaction. Two multi-tier deployments are
// supported, matching the paper's baselines:
//
//   - Embedding ("RocksDB"): db_path-style placement puts the top levels of
//     the LSM on the NVMe device and deeper levels on SATA. A level cannot
//     span tiers, which is why Figure 2b shows 40–80% NVMe capacity
//     utilisation.
//   - Secondary cache ("RocksDB-SC"): the whole LSM lives on SATA and the
//     NVMe device serves as a flash block cache under the DRAM cache.
package rocksish

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb/internal/baseline/leveled"
	"hyperdb/internal/cache"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/skiplist"
	"hyperdb/internal/wal"
)

// ErrNotFound is returned for missing or deleted keys.
var ErrNotFound = fmt.Errorf("rocksish: not found")

// Options configures the engine.
type Options struct {
	// NVMe and SATA are the two storage tiers (required).
	NVMe *device.Device
	SATA *device.Device
	// SecondaryCache selects the RocksDB-SC deployment.
	SecondaryCache bool
	// MemtableBytes rotates the memtable at this size.
	MemtableBytes int64
	// CacheBytes is the DRAM block cache budget.
	CacheBytes int64
	// FileSize is the SSTable target (paper: 64 MiB, scaled by harness).
	FileSize int64
	// L1Target, Ratio, MaxLevels parameterise the leveled LSM.
	L1Target  int64
	Ratio     int
	MaxLevels int
	// BackgroundThreads is the compaction thread count (paper default 8).
	BackgroundThreads int
	// Compress picks the SSTable block codec per level (zero: raw).
	Compress compress.Policy
	// DisableBackground turns workers off (tests drive CompactOnce).
	DisableBackground bool
	// BackgroundInterval is the workers' poll period.
	BackgroundInterval time.Duration
}

func (o *Options) fill() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 1 << 20
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.FileSize <= 0 {
		o.FileSize = 2 << 20
	}
	if o.BackgroundThreads <= 0 {
		o.BackgroundThreads = 8
	}
	if o.BackgroundInterval <= 0 {
		o.BackgroundInterval = 2 * time.Millisecond
	}
}

// DB is the RocksDB-style engine.
type DB struct {
	opts Options
	lsm  *leveled.LSM
	bc   cache.BlockCache

	mu      sync.Mutex
	flushMu sync.Mutex
	walMu   sync.RWMutex // appenders hold R; rotation holds W
	mem     *skiplist.SkipList
	imm     *skiplist.SkipList
	memWAL  *wal.WAL
	immWAL  *wal.WAL
	walGen  int
	flushed chan struct{} // closed+replaced when a flush completes

	seq      atomic.Uint64
	stop     chan struct{}
	wg       sync.WaitGroup
	flushC   chan struct{}
	compactC chan struct{}
	closed   atomic.Bool
}

// Open builds the engine.
func Open(opts Options) (*DB, error) {
	if opts.NVMe == nil || opts.SATA == nil {
		return nil, fmt.Errorf("rocksish: both devices required")
	}
	opts.fill()
	db := &DB{
		opts:     opts,
		mem:      skiplist.New(),
		stop:     make(chan struct{}),
		flushC:   make(chan struct{}, 1),
		compactC: make(chan struct{}, 1),
		flushed:  make(chan struct{}),
	}

	if opts.SecondaryCache {
		// Flash cache over most of the NVMe device.
		budget := opts.NVMe.Capacity() * 9 / 10
		fl, err := cache.NewFlash(opts.NVMe, "rocksish-sc", budget)
		if err != nil {
			return nil, err
		}
		db.bc = cache.NewTiered(opts.CacheBytes, fl)
	} else {
		db.bc = cache.NewLRU(opts.CacheBytes, nil)
	}

	l, err := leveled.New(leveled.Options{
		Name:      "rocksish",
		Place:     db.place,
		Fallback:  opts.SATA,
		FileSize:  opts.FileSize,
		L1Target:  opts.L1Target,
		Ratio:     opts.Ratio,
		MaxLevels: opts.MaxLevels,
		PageCache: db.bc,
		Compress:  opts.Compress,
	})
	if err != nil {
		return nil, err
	}
	db.lsm = l

	w, err := wal.Open(opts.walDevice(), "rocksish-wal-0")
	if err != nil {
		return nil, err
	}
	db.memWAL = w

	if !opts.DisableBackground {
		db.wg.Add(1)
		go db.flushWorker()
		for i := 0; i < opts.BackgroundThreads; i++ {
			db.wg.Add(1)
			go db.compactionWorker()
		}
	}
	return db, nil
}

// walDevice returns where the WAL lives: the performance tier when
// embedding (RocksDB puts WAL on the fastest path), SATA for SC mode (the
// NVMe is a cache, not durable storage, in that deployment).
func (o *Options) walDevice() *device.Device {
	if o.SecondaryCache {
		return o.SATA
	}
	return o.NVMe
}

// place implements db_path placement: a level goes to NVMe while the
// cumulative LSM size through that level fits the NVMe budget; otherwise
// SATA. SC mode keeps every level on SATA.
func (db *DB) place(level int, size int64) *device.Device {
	if db.opts.SecondaryCache {
		return db.opts.SATA
	}
	// Reserve headroom for the WALs and in-flight builds: placement races
	// between compaction threads overshoot whatever remains.
	budget := db.opts.NVMe.Capacity()*85/100 - 2*db.opts.MemtableBytes
	cum := db.opts.MemtableBytes * 2 // L0 allowance
	target := db.opts.L1Target
	if target <= 0 {
		target = 4 * db.opts.FileSize
	}
	ratio := db.opts.Ratio
	if ratio <= 1 {
		ratio = 10
	}
	for l := 1; l <= level; l++ {
		cum += target
		target *= int64(ratio)
	}
	if cum <= budget && db.opts.NVMe.Used()+size <= budget {
		return db.opts.NVMe
	}
	return db.opts.SATA
}

// Close stops the workers, flushing nothing further.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	close(db.stop)
	db.wg.Wait()
	return nil
}

// record encodes a WAL entry: kind(1) seq(8) klen(4) vlen(4) key value.
func encodeRecord(kind keys.Kind, seq uint64, k, v []byte) []byte {
	buf := make([]byte, 17+len(k)+len(v))
	buf[0] = byte(kind)
	binary.LittleEndian.PutUint64(buf[1:], seq)
	binary.LittleEndian.PutUint32(buf[9:], uint32(len(k)))
	binary.LittleEndian.PutUint32(buf[13:], uint32(len(v)))
	copy(buf[17:], k)
	copy(buf[17+len(k):], v)
	return buf
}

// Put writes key=value through the WAL (group commit) and memtable.
func (db *DB) Put(key, value []byte) error {
	return db.write(keys.KindSet, key, value)
}

// Delete writes a tombstone.
func (db *DB) Delete(key []byte) error {
	return db.write(keys.KindDelete, key, nil)
}

// stallWait blocks while the LSM signals an L0-debt write stall,
// RocksDB-style.
func (db *DB) stallWait() {
	for db.lsm.Stalled() {
		ch := db.lsm.StallChan()
		select {
		case <-ch:
		case <-time.After(db.opts.BackgroundInterval):
		}
		if db.opts.DisableBackground {
			// Nothing will unstall us; let the test driver compact.
			break
		}
	}
}

func (db *DB) write(kind keys.Kind, key, value []byte) error {
	if db.closed.Load() {
		return fmt.Errorf("rocksish: closed")
	}
	db.stallWait()
	seq := db.seq.Add(1)

	// Hold the rotation lock across the append so a concurrent flush
	// cannot retire (and delete) this WAL mid-write.
	db.walMu.RLock()
	err := db.memWAL.Append(encodeRecord(kind, seq, key, value))
	db.walMu.RUnlock()
	if err != nil {
		return err
	}

	db.mu.Lock()
	db.mem.Insert(keys.InternalKey{User: append([]byte(nil), key...), Seq: seq, Kind: kind},
		append([]byte(nil), value...))
	return db.maybeRotateLocked()
}

// maybeRotateLocked rotates the memtable when it crosses its budget. Called
// with db.mu held; always returns with it released.
func (db *DB) maybeRotateLocked() error {
	if db.mem.ApproxBytes() >= db.opts.MemtableBytes {
		for db.imm != nil {
			// Previous flush still running: wait (write stall).
			done := db.flushed
			db.mu.Unlock()
			if db.opts.DisableBackground {
				if err := db.FlushOnce(); err != nil {
					return err
				}
			} else {
				select {
				case <-done:
				case <-time.After(db.opts.BackgroundInterval):
				}
			}
			db.mu.Lock()
		}
		db.imm = db.mem
		db.mem = skiplist.New()
		db.walGen++
		nw, err := wal.Open(db.opts.walDevice(), fmt.Sprintf("rocksish-wal-%d", db.walGen))
		if err != nil {
			db.mu.Unlock()
			return err
		}
		db.walMu.Lock()
		db.immWAL = db.memWAL
		db.memWAL = nw
		db.walMu.Unlock()
		select {
		case db.flushC <- struct{}{}:
		default:
		}
	}
	db.mu.Unlock()
	return nil
}

// BatchOp is one write in a WriteBatch: a put, or a delete when Delete is
// set.
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// WriteBatch is the group-commit write path: one stall check, one sequence
// block, one WAL-lock acquisition for all appends, and one memtable lock for
// all inserts with a single rotation check at the end. Slice order is
// sequence order, so duplicate keys resolve last-write-wins.
func (db *DB) WriteBatch(ops []BatchOp) error {
	if db.closed.Load() {
		return fmt.Errorf("rocksish: closed")
	}
	if len(ops) == 0 {
		return nil
	}
	db.stallWait()
	n := uint64(len(ops))
	base := db.seq.Add(n) - n + 1

	db.walMu.RLock()
	for i := range ops {
		kind := keys.KindSet
		if ops[i].Delete {
			kind = keys.KindDelete
		}
		if err := db.memWAL.Append(encodeRecord(kind, base+uint64(i), ops[i].Key, ops[i].Value)); err != nil {
			db.walMu.RUnlock()
			return err
		}
	}
	db.walMu.RUnlock()

	db.mu.Lock()
	for i := range ops {
		kind := keys.KindSet
		if ops[i].Delete {
			kind = keys.KindDelete
		}
		db.mem.Insert(keys.InternalKey{User: append([]byte(nil), ops[i].Key...), Seq: base + uint64(i), Kind: kind},
			append([]byte(nil), ops[i].Value...))
	}
	return db.maybeRotateLocked()
}

// MultiGet returns values positionally aligned with keys (nil = missing or
// deleted), snapshotting the memtables once for the whole batch.
func (db *DB) MultiGet(keyList [][]byte) ([][]byte, error) {
	if db.closed.Load() {
		return nil, fmt.Errorf("rocksish: closed")
	}
	db.mu.Lock()
	mem, imm := db.mem, db.imm
	db.mu.Unlock()

	out := make([][]byte, len(keyList))
	for i, key := range keyList {
		if v, kind, ok := mem.Get(key, keys.MaxSeq); ok {
			if kind != keys.KindDelete {
				out[i] = v
			}
			continue
		}
		if imm != nil {
			if v, kind, ok := imm.Get(key, keys.MaxSeq); ok {
				if kind != keys.KindDelete {
					out[i] = v
				}
				continue
			}
		}
		v, kind, found, err := db.lsm.Get(key, keys.MaxSeq, device.Fg)
		if err != nil {
			return nil, err
		}
		if found && kind != keys.KindDelete {
			out[i] = v
		}
	}
	return out, nil
}

// FlushOnce flushes the immutable memtable if present. Serialised by
// flushMu so the background worker and Drain cannot double-flush.
func (db *DB) FlushOnce() error {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	db.mu.Lock()
	imm, immWAL := db.imm, db.immWAL
	db.mu.Unlock()
	if imm == nil {
		return nil
	}
	var entries []leveled.Entry
	it := imm.Iter()
	for it.First(); it.Valid(); it.Next() {
		entries = append(entries, leveled.Entry{Key: it.Key(), Value: it.Value()})
	}
	if err := db.lsm.Ingest(entries, device.Bg); err != nil {
		return err
	}
	select {
	case db.compactC <- struct{}{}:
	default:
	}
	db.mu.Lock()
	db.imm = nil
	db.immWAL = nil
	close(db.flushed)
	db.flushed = make(chan struct{})
	db.mu.Unlock()
	if immWAL != nil {
		db.opts.walDevice().Remove(immWAL.Name())
	}
	return nil
}

func (db *DB) flushWorker() {
	defer db.wg.Done()
	t := time.NewTicker(db.opts.BackgroundInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stop:
			return
		case <-db.flushC:
		case <-t.C:
		}
		db.FlushOnce()
	}
}

func (db *DB) compactionWorker() {
	defer db.wg.Done()
	t := time.NewTicker(db.opts.BackgroundInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stop:
			return
		case <-db.compactC:
		case <-t.C:
		}
		for {
			did, err := db.lsm.CompactOnce(device.Bg)
			if err != nil || !did {
				break
			}
			select {
			case <-db.stop:
				return
			default:
			}
		}
	}
}

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	if db.closed.Load() {
		return nil, fmt.Errorf("rocksish: closed")
	}
	db.mu.Lock()
	mem, imm := db.mem, db.imm
	db.mu.Unlock()

	if v, kind, ok := mem.Get(key, keys.MaxSeq); ok {
		if kind == keys.KindDelete {
			return nil, ErrNotFound
		}
		return v, nil
	}
	if imm != nil {
		if v, kind, ok := imm.Get(key, keys.MaxSeq); ok {
			if kind == keys.KindDelete {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	v, kind, found, err := db.lsm.Get(key, keys.MaxSeq, device.Fg)
	if err != nil {
		return nil, err
	}
	if !found || kind == keys.KindDelete {
		return nil, ErrNotFound
	}
	return v, nil
}

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live keys >= start in order, merging memtables
// with the LSM.
func (db *DB) Scan(start []byte, limit int) ([]KV, error) {
	db.mu.Lock()
	mem, imm := db.mem, db.imm
	db.mu.Unlock()

	lsmIt := db.lsm.NewScanIter(start, device.Fg)
	defer lsmIt.Close()
	memIt := mem.Iter()
	memIt.SeekGE(keys.MakeSearchKey(start, keys.MaxSeq))
	var immIt *skiplist.Iterator
	if imm != nil {
		immIt = imm.Iter()
		immIt.SeekGE(keys.MakeSearchKey(start, keys.MaxSeq))
	}

	out := make([]KV, 0, limit)
	for len(out) < limit {
		// Find the smallest candidate user key across the three sources,
		// preferring the newest version (mem > imm > lsm).
		var bestKey []byte
		pick := -1 // 0=mem 1=imm 2=lsm
		if memIt.Valid() {
			bestKey, pick = memIt.Key().User, 0
		}
		if immIt != nil && immIt.Valid() {
			if pick < 0 || lessB(immIt.Key().User, bestKey) {
				bestKey, pick = immIt.Key().User, 1
			}
		}
		if lsmIt.Valid() {
			if pick < 0 || lessB(lsmIt.Key(), bestKey) {
				bestKey, pick = lsmIt.Key(), 2
			}
		}
		if pick < 0 {
			break
		}
		key := append([]byte(nil), bestKey...)
		var value []byte
		tomb := false
		switch pick {
		case 0:
			value = append([]byte(nil), memIt.Value()...)
			tomb = memIt.Key().Kind == keys.KindDelete
		case 1:
			value = append([]byte(nil), immIt.Value()...)
			tomb = immIt.Key().Kind == keys.KindDelete
		case 2:
			value = append([]byte(nil), lsmIt.Value()...)
		}
		// Advance every source past this user key.
		for memIt.Valid() && equalB(memIt.Key().User, key) {
			memIt.Next()
		}
		if immIt != nil {
			for immIt.Valid() && equalB(immIt.Key().User, key) {
				immIt.Next()
			}
		}
		if lsmIt.Valid() && equalB(lsmIt.Key(), key) {
			lsmIt.Next()
		}
		if !tomb {
			out = append(out, KV{Key: key, Value: value})
		}
	}
	return out, lsmIt.Err()
}

func lessB(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalB(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LSM exposes the underlying leveled tree for harness inspection.
func (db *DB) LSM() *leveled.LSM { return db.lsm }

// Drain flushes the memtable and compacts until quiescent (harness use).
func (db *DB) Drain() error {
	db.mu.Lock()
	if db.imm == nil && db.mem.Len() > 0 {
		db.imm = db.mem
		db.mem = skiplist.New()
		db.walGen++
		nw, err := wal.Open(db.opts.walDevice(), fmt.Sprintf("rocksish-wal-%d", db.walGen))
		if err != nil {
			db.mu.Unlock()
			return err
		}
		db.walMu.Lock()
		db.immWAL = db.memWAL
		db.memWAL = nw
		db.walMu.Unlock()
	}
	db.mu.Unlock()
	if err := db.FlushOnce(); err != nil {
		return err
	}
	for {
		did, err := db.lsm.CompactOnce(device.Bg)
		if err != nil {
			return err
		}
		if did {
			continue
		}
		if db.lsm.Quiesced() {
			return nil
		}
		// A background thread holds the remaining work; yield and re-check.
		time.Sleep(time.Millisecond)
	}
}
