package rocksish

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hyperdb/internal/baseline/leveled"
	"hyperdb/internal/cache"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/skiplist"
	"hyperdb/internal/wal"
)

// Recover rebuilds the engine from what survives on the devices after a
// crash: the leveled LSM is recovered from its self-describing SSTables, and
// every surviving WAL generation is replayed (oldest first) into a fresh
// memtable. The replayed records are ingested into L0 before the old logs
// are deleted, so a crash during recovery itself loses nothing — at worst
// the next recovery replays records whose sequence numbers already exist in
// the LSM, which is idempotent.
func Recover(opts Options) (*DB, error) {
	if opts.NVMe == nil || opts.SATA == nil {
		return nil, fmt.Errorf("rocksish: both devices required")
	}
	opts.fill()
	db := &DB{
		opts:     opts,
		mem:      skiplist.New(),
		stop:     make(chan struct{}),
		flushC:   make(chan struct{}, 1),
		compactC: make(chan struct{}, 1),
		flushed:  make(chan struct{}),
	}

	if opts.SecondaryCache {
		// Flash-cache contents are not durable state: drop any leftover
		// cache file and start the cache cold.
		opts.NVMe.Remove("rocksish-sc")
		budget := opts.NVMe.Capacity() * 9 / 10
		fl, err := cache.NewFlash(opts.NVMe, "rocksish-sc", budget)
		if err != nil {
			return nil, err
		}
		db.bc = cache.NewTiered(opts.CacheBytes, fl)
	} else {
		db.bc = cache.NewLRU(opts.CacheBytes, nil)
	}

	l, lsmSeq, err := leveled.Recover(leveled.Options{
		Name:      "rocksish",
		Place:     db.place,
		Fallback:  opts.SATA,
		FileSize:  opts.FileSize,
		L1Target:  opts.L1Target,
		Ratio:     opts.Ratio,
		MaxLevels: opts.MaxLevels,
		PageCache: db.bc,
		Compress:  opts.Compress,
	}, opts.NVMe, opts.SATA)
	if err != nil {
		return nil, err
	}
	db.lsm = l

	walDev := opts.walDevice()
	var gens []int
	for _, name := range walDev.List() {
		var gen int
		if _, err := fmt.Sscanf(name, "rocksish-wal-%d", &gen); err == nil {
			gens = append(gens, gen)
		}
	}
	sort.Ints(gens)
	var walSeq uint64
	for _, gen := range gens {
		w, err := wal.Open(walDev, fmt.Sprintf("rocksish-wal-%d", gen))
		if err != nil {
			return nil, err
		}
		err = w.Replay(func(p []byte) error {
			kind, seq, k, v, err := decodeRecord(p)
			if err != nil {
				return err
			}
			if seq > walSeq {
				walSeq = seq
			}
			db.mem.Insert(keys.InternalKey{User: k, Seq: seq, Kind: kind}, v)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Make the replayed records durable in L0 before the logs go away.
	if db.mem.Len() > 0 {
		var entries []leveled.Entry
		it := db.mem.Iter()
		for it.First(); it.Valid(); it.Next() {
			entries = append(entries, leveled.Entry{Key: it.Key(), Value: it.Value()})
		}
		if err := db.lsm.Ingest(entries, device.Bg); err != nil {
			return nil, err
		}
		db.mem = skiplist.New()
	}

	if n := len(gens); n > 0 {
		db.walGen = gens[n-1] + 1
	}
	w, err := wal.Open(walDev, fmt.Sprintf("rocksish-wal-%d", db.walGen))
	if err != nil {
		return nil, err
	}
	db.memWAL = w
	for _, gen := range gens {
		walDev.Remove(fmt.Sprintf("rocksish-wal-%d", gen))
	}

	if lsmSeq > walSeq {
		walSeq = lsmSeq
	}
	db.seq.Store(walSeq)

	if !opts.DisableBackground {
		db.wg.Add(1)
		go db.flushWorker()
		for i := 0; i < opts.BackgroundThreads; i++ {
			db.wg.Add(1)
			go db.compactionWorker()
		}
	}
	return db, nil
}

// decodeRecord is the inverse of encodeRecord.
func decodeRecord(p []byte) (kind keys.Kind, seq uint64, key, value []byte, err error) {
	if len(p) < 17 {
		return 0, 0, nil, nil, fmt.Errorf("rocksish: short wal record (%d bytes)", len(p))
	}
	kind = keys.Kind(p[0])
	seq = binary.LittleEndian.Uint64(p[1:])
	kl := int(binary.LittleEndian.Uint32(p[9:]))
	vl := int(binary.LittleEndian.Uint32(p[13:]))
	if 17+kl+vl != len(p) {
		return 0, 0, nil, nil, fmt.Errorf("rocksish: wal record length mismatch (%d+%d+17 != %d)", kl, vl, len(p))
	}
	key = append([]byte(nil), p[17:17+kl]...)
	value = append([]byte(nil), p[17+kl:]...)
	return kind, seq, key, value, nil
}
