package rocksish

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hyperdb/internal/device"
)

func open(t testing.TB, sc bool) (*DB, *device.Device, *device.Device) {
	t.Helper()
	nvme := device.New(device.UnthrottledProfile("nvme", 16<<20))
	sata := device.New(device.UnthrottledProfile("sata", 1<<30))
	db, err := Open(Options{
		NVMe: nvme, SATA: sata,
		SecondaryCache:    sc,
		MemtableBytes:     64 << 10,
		CacheBytes:        1 << 20,
		FileSize:          64 << 10,
		L1Target:          128 << 10,
		Ratio:             4,
		MaxLevels:         4,
		DisableBackground: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, nvme, sata
}

func k8(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

func TestPutGetDeleteFlow(t *testing.T) {
	db, _, _ := open(t, false)
	for i := uint64(0); i < 2000; i++ {
		if err := db.Put(k8(i<<32), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		v, err := db.Get(k8(i << 32))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: %q %v", i, v, err)
		}
	}
	if err := db.Delete(k8(5 << 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(k8(5 << 32)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted: %v", err)
	}
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(k8(5 << 32)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted after drain: %v", err)
	}
}

func TestMemtableRotationAndWALCleanup(t *testing.T) {
	db, nvme, _ := open(t, false)
	// Write enough to rotate several memtables.
	for i := uint64(0); i < 3000; i++ {
		if err := db.Put(k8(i<<32), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if db.mem.ApproxBytes() >= db.opts.MemtableBytes {
			// Rotation is triggered inside Put; with background disabled,
			// drive the flush ourselves.
			if err := db.FlushOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Drain()
	// Old WALs must have been removed: only the live one remains.
	walCount := 0
	for _, name := range nvme.List() {
		if len(name) > 12 && name[:12] == "rocksish-wal" {
			walCount++
		}
	}
	if walCount != 1 {
		t.Fatalf("%d WAL files on device, want 1 (stale WALs leak)", walCount)
	}
}

func TestEmbeddingPlacesTopLevelsOnNVMe(t *testing.T) {
	// A small NVMe budget forces the deep levels onto SATA (db_path).
	nvmeDev := device.New(device.UnthrottledProfile("nvme", 1<<20))
	sataDev := device.New(device.UnthrottledProfile("sata", 1<<30))
	db, err := Open(Options{
		NVMe: nvmeDev, SATA: sataDev,
		MemtableBytes:     64 << 10,
		FileSize:          64 << 10,
		L1Target:          128 << 10,
		Ratio:             4,
		MaxLevels:         4,
		DisableBackground: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	nvme, sata := nvmeDev, sataDev
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30000; i++ {
		if err := db.Put(k8(rng.Uint64()), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			db.Drain()
		}
	}
	db.Drain()
	if nvme.Counters().WriteBytes.Load() == 0 {
		t.Fatal("embedding mode wrote nothing to NVMe")
	}
	if sata.Counters().WriteBytes.Load() == 0 {
		t.Fatal("deep levels wrote nothing to SATA")
	}
	// db_path: NVMe usage stays under its budget.
	if f := nvme.UsedFraction(); f > 0.95 {
		t.Fatalf("NVMe overfilled: %.2f", f)
	}
}

func TestSecondaryCacheMode(t *testing.T) {
	db, nvme, sata := open(t, true)
	rng := rand.New(rand.NewSource(3))
	keys := make([][]byte, 5000)
	for i := range keys {
		keys[i] = k8(rng.Uint64())
		if err := db.Put(keys[i], make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	db.Drain()
	// All tables on SATA in SC mode.
	for _, name := range sata.List() {
		_ = name
	}
	if n := len(sata.List()); n == 0 {
		t.Fatal("no tables on SATA in SC mode")
	}
	// Read twice: second pass should hit the flash cache, adding NVMe reads.
	for _, k := range keys[:1000] {
		if _, err := db.Get(k); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	nvmeWrites := nvme.Counters().WriteBytes.Load()
	if nvmeWrites == 0 {
		t.Fatal("secondary cache absorbed no fills")
	}
}

func TestScanMergesMemtableAndLSM(t *testing.T) {
	db, _, _ := open(t, false)
	for i := uint64(0); i < 500; i++ {
		db.Put(k8(i<<32), []byte(fmt.Sprintf("lsm-%d", i)))
	}
	db.Drain()
	// Fresh writes stay in the memtable.
	for i := uint64(0); i < 500; i += 10 {
		db.Put(k8(i<<32), []byte(fmt.Sprintf("mem-%d", i)))
	}
	kvs, err := db.Scan(k8(0), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 50 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatal("scan out of order")
		}
	}
	// Key 0 was rewritten in the memtable: newest must win.
	if string(kvs[0].Value) != "mem-0" {
		t.Fatalf("kvs[0] = %q, want memtable version", kvs[0].Value)
	}
	if string(kvs[1].Value) != "lsm-1" {
		t.Fatalf("kvs[1] = %q, want lsm version", kvs[1].Value)
	}
}

func TestConcurrentWriters(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 64<<20))
	sata := device.New(device.UnthrottledProfile("sata", 1<<30))
	db, err := Open(Options{
		NVMe: nvme, SATA: sata,
		MemtableBytes: 256 << 10,
		FileSize:      128 << 10,
		Ratio:         4,
		MaxLevels:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				k := k8(id<<56 | i<<16)
				if err := db.Put(k, []byte(fmt.Sprintf("w%d-%d", id, i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if err := db.Drain(); err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < 8; w++ {
		for i := uint64(0); i < 2000; i += 101 {
			k := k8(w<<56 | i<<16)
			v, err := db.Get(k)
			if err != nil || string(v) != fmt.Sprintf("w%d-%d", w, i) {
				t.Fatalf("get w%d-%d: %q %v", w, i, v, err)
			}
		}
	}
}
