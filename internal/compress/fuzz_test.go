package compress

import (
	"bytes"
	"testing"
)

// FuzzDecode is the compressed-block decode contract: no payload panics,
// allocation stays under the cap, and every Encode output round-trips.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 0, 0, 0, 0})
	f.Add(Encode(nil, None, []byte("seed")))
	f.Add(Encode(nil, LZ, bytes.Repeat([]byte("seed value "), 64)))
	f.Add(Encode(nil, LZ, bytes.Repeat([]byte{0}, 512)))
	f.Add([]byte{1, 255, 255, 255, 255, 127}) // huge declared rawLen
	f.Fuzz(func(t *testing.T, p []byte) {
		const cap = 1 << 16
		out, err := Decode(p, cap) // must never panic
		if err == nil && len(out) > cap {
			t.Fatalf("decode produced %d bytes past cap %d", len(out), cap)
		}
		// Treat the input as raw data too: encoding must round-trip.
		for _, c := range []Codec{None, LZ} {
			enc := Encode(nil, c, p)
			dec, err := Decode(enc, len(p)+1)
			if err != nil {
				t.Fatalf("codec %v: decode of fresh encode failed: %v", c, err)
			}
			if !bytes.Equal(dec, p) {
				t.Fatalf("codec %v: round trip mismatch", c)
			}
		}
	})
}
