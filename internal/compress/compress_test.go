package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, c Codec, src []byte) []byte {
	t.Helper()
	payload := Encode(nil, c, src)
	got, err := Decode(payload, len(src)+1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(got))
	}
	return payload
}

func TestRoundTripNone(t *testing.T) {
	for _, src := range [][]byte{nil, {}, []byte("x"), []byte("hello world")} {
		p := roundTrip(t, None, src)
		if len(p) != len(src)+1 || p[0] != byte(None) {
			t.Fatalf("none payload framing wrong: %v", p)
		}
	}
}

func TestRoundTripLZ(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abcabcabcabcabcabcabcabc"),
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte("user0000012345 field value padding "), 200),
		[]byte(strings.Repeat("ab", 3) + "unique tail bytes here"),
	}
	rng := rand.New(rand.NewSource(7))
	rnd := make([]byte, 8192)
	rng.Read(rnd)
	cases = append(cases, rnd)
	// Compressible-with-long-matches case: repeated 1KiB page.
	page := make([]byte, 1024)
	rng.Read(page)
	cases = append(cases, bytes.Repeat(page, 8))
	for i, src := range cases {
		p := roundTrip(t, LZ, src)
		if !Codec(p[0]).Valid() {
			t.Fatalf("case %d: invalid tag %d", i, p[0])
		}
	}
}

func TestCompressibleShrinks(t *testing.T) {
	src := bytes.Repeat([]byte("hyperdb-value-padding-0123456789 "), 128)
	p := Encode(nil, LZ, src)
	if p[0] != byte(LZ) {
		t.Fatalf("compressible input stored raw")
	}
	if len(p) >= len(src)/2 {
		t.Fatalf("weak compression: %d -> %d", len(src), len(p))
	}
}

func TestIncompressibleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 4096)
	rng.Read(src)
	p := Encode(nil, LZ, src)
	if p[0] != byte(None) {
		t.Fatalf("incompressible input kept tag %d, want fallback to None", p[0])
	}
	if len(p) != len(src)+1 {
		t.Fatalf("fallback payload size %d, want %d", len(p), len(src)+1)
	}
}

func TestDecodeAllocationCap(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 1024)
	p := Encode(nil, LZ, src)
	if _, err := Decode(p, len(src)-1); err == nil {
		t.Fatalf("decode accepted payload above the allocation cap")
	}
	raw := Encode(nil, None, src)
	if _, err := Decode(raw, len(src)-1); err == nil {
		t.Fatalf("raw decode accepted payload above the allocation cap")
	}
}

func TestDecodeMalformed(t *testing.T) {
	good := Encode(nil, LZ, bytes.Repeat([]byte("abcd"), 64))
	cases := map[string][]byte{
		"empty":              {},
		"unknown tag":        {9, 1, 2, 3},
		"truncated length":   {1},
		"truncated checksum": {1, 4, 0xff},
		"literal past input": {1, 8, 0, 0, 0, 0, 254},
		"zero distance":      {1, 8, 0, 0, 0, 0, 1, 0},
		"distance too far":   {1, 8, 0, 0, 0, 0, 0x06, 'a', 'b', 'c', 'd', 1, 9},
		"short output":       {1, 200, 0, 0, 0, 0, 0, 'x'},
		"truncated stream":   good[:len(good)-3],
	}
	// Corrupt a literal byte: declared length and framing stay intact, so
	// only the checksum catches it.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xff
	cases["checksum mismatch"] = flipped
	for name, p := range cases {
		if _, err := Decode(p, 1<<20); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
}

func TestPolicyCodecFor(t *testing.T) {
	p := Policy{Codec: LZ, MinLevel: 2}
	if got := p.CodecFor(1); got != None {
		t.Fatalf("level 1 got %v, want None", got)
	}
	if got := p.CodecFor(2); got != LZ {
		t.Fatalf("level 2 got %v, want LZ", got)
	}
	if (Policy{}).CodecFor(3) != None {
		t.Fatalf("zero policy must be None everywhere")
	}
}

func TestParse(t *testing.T) {
	for s, want := range map[string]Codec{"": None, "off": None, "none": None, "on": LZ, "lz": LZ} {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := Parse("zstd"); err == nil {
		t.Fatalf("Parse accepted unknown codec")
	}
}
