// Package compress implements the block codecs behind the per-tier
// compression policy: a tiny registry of self-describing payload formats
// (one tag byte, then codec-specific framing) used by the SSTable and
// semi-SSTable block formats on the capacity tier. The NVMe zone tier
// never compresses — its slots are rewritten in place and latency-bound —
// so the policy lives at the table-format layer only.
//
// Payload layout:
//
//	tag 0 (None): raw bytes verbatim.
//	tag 1 (LZ):   uvarint rawLen | crc32(raw) LE | token stream.
//
// Encode always falls back to tag 0 when the compressed form would not be
// smaller, so incompressible blocks cost one byte of framing and zero CPU
// on the read path. Decode is strict: every length is bounds-checked,
// allocation is capped by the caller, the raw checksum must match, and no
// input can make it panic — a torn or corrupted compressed block fails
// closed with an error instead of yielding garbage.
package compress

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Codec identifies a registered block codec; the value is the payload's
// leading tag byte.
type Codec uint8

const (
	// None stores blocks raw (tag 0). As an Options codec value it also
	// means "legacy format": tables write untagged blocks byte-identical
	// to pre-compression builds.
	None Codec = 0
	// LZ is the built-in LZ77 byte codec (tag 1): greedy hash-table
	// matching with literal-run and match tokens, snappy-style.
	LZ Codec = 1
)

// codec is one registry entry.
type codec struct {
	name   string
	encode func(dst, src []byte) []byte // appends the tagged payload to dst
}

// registry indexes codecs by tag. Decoding dispatches on the payload's
// first byte; unknown tags fail closed.
var registry = [...]*codec{
	None: {name: "none", encode: encodeNone},
	LZ:   {name: "lz", encode: encodeLZ},
}

// Valid reports whether c names a registered codec.
func (c Codec) Valid() bool {
	return int(c) < len(registry) && registry[c] != nil
}

// String returns the codec's registry name.
func (c Codec) String() string {
	if c.Valid() {
		return registry[c].name
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// Parse maps a flag spelling to a codec: "", "off", "none" → None;
// "on", "lz" → LZ.
func Parse(s string) (Codec, error) {
	switch s {
	case "", "off", "none":
		return None, nil
	case "on", "lz":
		return LZ, nil
	}
	return None, fmt.Errorf("compress: unknown codec %q", s)
}

// Encode appends c's self-describing payload for src to dst and returns
// the extended slice. When the compressed form would be no smaller than
// raw, the payload degrades to tag None regardless of c.
func Encode(dst []byte, c Codec, src []byte) []byte {
	if !c.Valid() || c == None {
		return encodeNone(dst, src)
	}
	mark := len(dst)
	dst = registry[c].encode(dst, src)
	if len(dst)-mark >= len(src)+1 {
		return encodeNone(dst[:mark], src)
	}
	return dst
}

// Decode expands a payload produced by Encode. maxRaw caps the decoded
// allocation: a payload declaring more raw bytes is rejected before any
// allocation happens. Decode never panics on any input.
func Decode(payload []byte, maxRaw int) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("compress: empty payload")
	}
	switch Codec(payload[0]) {
	case None:
		raw := payload[1:]
		if len(raw) > maxRaw {
			return nil, fmt.Errorf("compress: raw payload %d exceeds cap %d", len(raw), maxRaw)
		}
		return raw, nil
	case LZ:
		return decodeLZ(payload[1:], maxRaw)
	}
	return nil, fmt.Errorf("compress: unknown codec tag %d", payload[0])
}

func encodeNone(dst, src []byte) []byte {
	dst = append(dst, byte(None))
	return append(dst, src...)
}

// --- LZ codec ---

const (
	lzMinMatch = 4   // shortest emitted match
	lzMaxToken = 131 // lzMinMatch + 127: longest match one token covers
	lzHashBits = 12
)

// encodeLZ appends tag | uvarint rawLen | crc32(raw) | tokens. Tokens:
// an even byte t encodes a literal run of t/2+1 bytes that follow; an odd
// byte t encodes a match of length t/2+lzMinMatch at a uvarint distance
// that follows. Long matches chain consecutive match tokens.
func encodeLZ(dst, src []byte) []byte {
	dst = append(dst, byte(LZ))
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(src))
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(i int) uint32 {
		v := binary.LittleEndian.Uint32(src[i:])
		return (v * 2654435761) >> (32 - lzHashBits)
	}
	emitLiterals := func(lo, hi int) {
		for lo < hi {
			n := hi - lo
			if n > 128 {
				n = 128
			}
			dst = append(dst, byte((n-1)<<1))
			dst = append(dst, src[lo:lo+n]...)
			lo += n
		}
	}
	litStart := 0
	i := 0
	for i+lzMinMatch <= len(src) {
		h := hash(i)
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || !matchAt(src, int(cand), i) {
			i++
			continue
		}
		// Extend the match as far as it goes.
		j := int(cand)
		length := lzMinMatch
		for i+length < len(src) && src[j+length] == src[i+length] {
			length++
		}
		emitLiterals(litStart, i)
		dist := uint64(i - j)
		for length > 0 {
			n := length
			if n > lzMaxToken {
				n = lzMaxToken
			}
			if n < lzMinMatch {
				// Tail shorter than a token's minimum: emit as literals.
				emitLiterals(i, i+n)
				i += n
				break
			}
			dst = append(dst, byte((n-lzMinMatch)<<1|1))
			dst = binary.AppendUvarint(dst, dist)
			i += n
			length -= n
		}
		litStart = i
	}
	emitLiterals(litStart, len(src))
	return dst
}

func matchAt(src []byte, cand, i int) bool {
	return cand+lzMinMatch <= i &&
		binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:])
}

// decodeLZ expands an LZ token stream (payload without the tag byte),
// enforcing the declared raw length, the allocation cap, and the raw
// checksum. Any malformed input returns an error; none can panic.
func decodeLZ(p []byte, maxRaw int) ([]byte, error) {
	rawLen, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("compress: truncated lz length")
	}
	p = p[n:]
	if rawLen > uint64(maxRaw) {
		return nil, fmt.Errorf("compress: lz declares %d raw bytes, cap %d", rawLen, maxRaw)
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("compress: truncated lz checksum")
	}
	sum := binary.LittleEndian.Uint32(p)
	p = p[4:]
	out := make([]byte, 0, int(rawLen))
	for len(p) > 0 {
		t := p[0]
		p = p[1:]
		if t&1 == 0 { // literal run
			n := int(t>>1) + 1
			if n > len(p) {
				return nil, fmt.Errorf("compress: lz literal run past input")
			}
			if uint64(len(out)+n) > rawLen {
				return nil, fmt.Errorf("compress: lz output exceeds declared length")
			}
			out = append(out, p[:n]...)
			p = p[n:]
			continue
		}
		length := int(t>>1) + lzMinMatch
		dist, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("compress: truncated lz distance")
		}
		p = p[n:]
		if dist == 0 || dist > uint64(len(out)) {
			return nil, fmt.Errorf("compress: lz distance %d out of range", dist)
		}
		if uint64(len(out)+length) > rawLen {
			return nil, fmt.Errorf("compress: lz output exceeds declared length")
		}
		// Byte-at-a-time copy: overlapping matches (dist < length) repeat
		// the run, exactly like the encoder saw it.
		j := len(out) - int(dist)
		for k := 0; k < length; k++ {
			out = append(out, out[j+k])
		}
	}
	if uint64(len(out)) != rawLen {
		return nil, fmt.Errorf("compress: lz decoded %d bytes, declared %d", len(out), rawLen)
	}
	if crc32.ChecksumIEEE(out) != sum {
		return nil, fmt.Errorf("compress: lz checksum mismatch")
	}
	return out, nil
}

// Policy is the per-tier compression policy threaded from Options down to
// the LSM: the zone (NVMe) tier is always raw by construction, and LSM
// levels at or below MinLevel..deepest compress with Codec.
type Policy struct {
	// Codec compresses capacity-tier data blocks; None disables
	// compression entirely (tables stay in the legacy untagged format).
	Codec Codec
	// MinLevel is the shallowest LSM level whose tables compress; levels
	// above it stay raw. 0 compresses every capacity level.
	MinLevel int
}

// CodecFor returns the codec for tables written at the given LSM level.
func (p Policy) CodecFor(level int) Codec {
	if p.Codec == None || level < p.MinLevel {
		return None
	}
	return p.Codec
}
