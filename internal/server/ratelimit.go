package server

import (
	"sync"
	"time"
)

// tokenBucket is a lazily refilled token bucket. Tokens accrue continuously
// at rate per second up to burst; each admitted request spends one. There
// is no background filler goroutine — the elapsed time since the last
// check mints the tokens — so an idle connection costs nothing.
//
// Each connection gets its own bucket (Config.ConnRate), which is the
// admission-control shape the drainer wants: one abusive tenant pipelining
// as fast as the socket allows is clipped at its own bucket and cannot
// monopolise the coalescing queue, while well-behaved connections never
// notice the limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	tb := &tokenBucket{rate: rate, burst: b, tokens: b, now: time.Now}
	tb.last = tb.now()
	return tb
}

// allow spends one token if available, reporting whether the request is
// admitted.
func (tb *tokenBucket) allow() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
