package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/device"
	"hyperdb/internal/wire"
)

// testEnv is one served engine over shared simulated devices, so tests can
// crash/recover against the same storage after shutdown.
type testEnv struct {
	srv  *Server
	addr string
	db   *hyperdb.DB
	opts hyperdb.Options
}

func newTestEnv(t *testing.T, mutate func(*Config)) *testEnv {
	t.Helper()
	opts := hyperdb.Options{
		NVMeDevice:     device.New(device.UnthrottledProfile("nvme", 32<<20)),
		SATADevice:     device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:     4,
		CacheBytes:     4 << 20,
		MigrationBatch: 256 << 10,
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cfg := Config{DB: db, OwnDB: true, MaxInflight: 64, Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		db.Close()
		t.Fatalf("server.New: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return &testEnv{srv: srv, addr: addr.String(), db: db, opts: opts}
}

func dialTest(t *testing.T, env *testEnv, conns int) *client.Client {
	t.Helper()
	c, err := client.Dial(client.Options{Addr: env.addr, Conns: conns})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServeBasicOps(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, err := c.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := c.Get([]byte("missing")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("get missing: %v, want ErrNotFound", err)
	}
	if err := c.Delete([]byte("alpha")); err != nil {
		t.Fatalf("del: %v", err)
	}
	if _, err := c.Get([]byte("alpha")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("get deleted: %v, want ErrNotFound", err)
	}

	if err := c.WriteBatch([]wire.BatchOp{
		{Key: []byte("b1"), Value: []byte("v1")},
		{Key: []byte("b2"), Value: []byte("v2")},
		{Key: []byte("b1"), Delete: true},
	}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	vals, err := c.MultiGet([][]byte{[]byte("b1"), []byte("b2"), []byte("nope")})
	if err != nil {
		t.Fatalf("mget: %v", err)
	}
	if vals[0] != nil || string(vals[1]) != "v2" || vals[2] != nil {
		t.Fatalf("mget values: %q", vals)
	}

	kvs, err := c.Scan(nil, 10)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(kvs) != 1 || string(kvs[0].Key) != "b2" {
		t.Fatalf("scan: %+v", kvs)
	}

	text, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"server.ops.put 1", "server.ops.get 3", "server.ops.batch 1", "NVMe: used="} {
		if !strings.Contains(text, want) {
			t.Fatalf("stats missing %q in:\n%s", want, text)
		}
	}
}

// TestMalformedPayloadKeepsConnection: a well-framed but invalid request
// gets StatusBadRequest and the connection keeps working.
func TestMalformedPayloadKeepsConnection(t *testing.T) {
	env := newTestEnv(t, nil)
	nc, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()

	// A PUT whose payload declares an empty key.
	bad := wire.AppendFrame(nil, wire.Frame{Op: wire.OpPut, ID: 7, Payload: wire.AppendPutReq(nil, nil, []byte("v"))})
	// An unknown op code.
	unknown := wire.AppendFrame(nil, wire.Frame{Op: wire.Op(99), ID: 8})
	// A valid ping.
	ping := wire.AppendFrame(nil, wire.Frame{Op: wire.OpPing, ID: 9, Payload: []byte("hi")})
	if _, err := nc.Write(append(append(bad, unknown...), ping...)); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := map[uint64]wire.Frame{}
	for i := 0; i < 3; i++ {
		f, err := wire.ReadFrame(nc, 0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		got[f.ID] = f
	}
	if got[7].Status != wire.StatusBadRequest {
		t.Fatalf("empty-key put: %+v", got[7])
	}
	if got[8].Status != wire.StatusBadRequest {
		t.Fatalf("unknown op: %+v", got[8])
	}
	if got[9].Status != wire.StatusOK || !bytes.Equal(got[9].Payload, []byte("hi")) {
		t.Fatalf("ping after bad requests: %+v", got[9])
	}
	if n := env.srv.Stats().BadRequests.Load(); n != 2 {
		t.Fatalf("BadRequests = %d, want 2", n)
	}
}

// TestBadFrameDropsConnection: an undecodable stream loses its connection,
// the server survives and keeps serving others.
func TestBadFrameDropsConnection(t *testing.T) {
	env := newTestEnv(t, nil)
	nc, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// Plausible length, garbage body: CRC cannot match.
	if _, err := nc.Write([]byte{0, 0, 0, 14, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after garbage: %v, want EOF (dropped)", err)
	}
	if n := env.srv.Stats().BadFrames.Load(); n != 1 {
		t.Fatalf("BadFrames = %d, want 1", n)
	}
	// The server is still healthy.
	c := dialTest(t, env, 1)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after drop: %v", err)
	}
}

func TestMaxConnsRejects(t *testing.T) {
	env := newTestEnv(t, func(c *Config) { c.MaxConns = 1 })
	first, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer first.Close()
	// Prove the first conn is admitted before racing the second one in.
	if _, err := first.Write(wire.AppendFrame(nil, wire.Frame{Op: wire.OpPing, ID: 1})); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := wire.ReadFrame(first, 0); err != nil {
		t.Fatalf("ping: %v", err)
	}

	second, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := second.Read(make([]byte, 1)); err == nil {
		t.Fatal("second conn read succeeded; want rejection")
	}
	if n := env.srv.Stats().ConnsRejected.Load(); n != 1 {
		t.Fatalf("ConnsRejected = %d, want 1", n)
	}
}

func TestShutdownConcurrentCallers(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = env.srv.Shutdown()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shutdown[%d]: %v", i, err)
		}
	}
	// The engine is closed (OwnDB): further direct ops fail.
	if err := env.db.Put([]byte("x"), []byte("y")); !errors.Is(err, hyperdb.ErrClosed) {
		t.Fatalf("put after shutdown: %v, want ErrClosed", err)
	}
}

// TestPipelinedCoalescingAndRecovery is the end-to-end acceptance test:
// N clients pipeline puts/gets over TCP; the server's stats must prove the
// coalescing (mean ops per drained WriteBatch > 1 under concurrent load);
// graceful shutdown answers every in-flight request; and a recovery reopen
// of the same devices sees every acknowledged write.
func TestPipelinedCoalescingAndRecovery(t *testing.T) {
	env := newTestEnv(t, func(c *Config) {
		// A short linger fattens batches even if the test machine drains
		// faster than the loopback delivers.
		c.CoalesceWait = 200 * time.Microsecond
	})

	const (
		goroutines = 32
		opsEach    = 200
	)
	var (
		ackedMu sync.Mutex
		acked   = make(map[string]string)
	)
	c := dialTest(t, env, 4)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := fmt.Sprintf("key-%03d-%04d", g, i)
				v := fmt.Sprintf("val-%03d-%04d", g, i)
				if err := c.Put([]byte(k), []byte(v)); err != nil {
					errCh <- fmt.Errorf("put %s: %w", k, err)
					return
				}
				ackedMu.Lock()
				acked[k] = v
				ackedMu.Unlock()
				if i%3 == 0 {
					got, err := c.Get([]byte(k))
					if err != nil || string(got) != v {
						errCh <- fmt.Errorf("get %s = %q, %v", k, got, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := env.srv.Stats()
	if st.WriteBatches.Load() == 0 {
		t.Fatal("no write batches drained")
	}
	meanBatch := st.MeanWriteBatch()
	t.Logf("coalescing: %d wire writes in %d WriteBatch calls (mean %.2f), %d reads in %d MultiGets (mean %.2f), mean drain depth %.2f",
		st.WriteOps.Load(), st.WriteBatches.Load(), meanBatch,
		st.ReadOps.Load(), st.ReadBatches.Load(), st.MeanReadBatch(), st.MeanDrainDepth())
	if meanBatch <= 1 {
		t.Fatalf("mean ops per drained WriteBatch = %.3f, want > 1 under %d concurrent clients", meanBatch, goroutines)
	}
	if got, want := st.WriteOps.Load(), uint64(goroutines*opsEach); got != want {
		t.Fatalf("write ops %d, want %d", got, want)
	}

	// Keep a stream of writes in flight while shutdown runs; everything
	// acknowledged before the socket dies must survive recovery.
	stopWriters := make(chan struct{})
	var lateWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		lateWG.Add(1)
		go func(g int) {
			defer lateWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				k := fmt.Sprintf("late-%d-%06d", g, i)
				if err := c.Put([]byte(k), []byte("z")); err != nil {
					return // shutdown refused or dropped it: not acked
				}
				ackedMu.Lock()
				acked[k] = "z"
				ackedMu.Unlock()
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := env.srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stopWriters)
	lateWG.Wait()

	// Reopen from the same simulated devices and verify every acked write.
	re, err := hyperdb.Recover(env.opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Close()
	for k, v := range acked {
		got, err := re.Get([]byte(k))
		if err != nil {
			t.Fatalf("acked key %q lost after recovery: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("acked key %q = %q after recovery, want %q", k, got, v)
		}
	}
	t.Logf("recovery verified %d acked writes", len(acked))
}
