package server

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/wire"
)

func TestServeIncr(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1)

	if v, err := c.Incr([]byte("hits"), 5); err != nil || v != 5 {
		t.Fatalf("first incr: %d %v, want 5", v, err)
	}
	if v, err := c.Incr([]byte("hits"), -2); err != nil || v != 3 {
		t.Fatalf("second incr: %d %v, want 3", v, err)
	}
	// The committed value is the canonical counter encoding, visible to Get.
	if v, err := c.Get([]byte("hits")); err != nil || !bytes.Equal(v, hyperdb.EncodeCounter(3)) {
		t.Fatalf("get after incr: %x %v", v, err)
	}
	// The session variant carries a usable token.
	v, tok, err := c.IncrSeq([]byte("hits"), 7)
	if err != nil || v != 10 {
		t.Fatalf("incr2: %d %v, want 10", v, err)
	}
	if tok.Seq == 0 {
		t.Fatal("incr2 returned zero sequence")
	}
	if got, _, err := c.GetSeq([]byte("hits"), tok); err != nil || !bytes.Equal(got, hyperdb.EncodeCounter(10)) {
		t.Fatalf("gated read after incr2: %x %v", got, err)
	}
}

func TestServeIncrNonCounter(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1)
	if err := c.Put([]byte("text"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Incr([]byte("text"), 1); err == nil {
		t.Fatal("incr on non-counter value succeeded")
	}
	// The failed merge left the value alone and the connection serving.
	if v, err := c.Get([]byte("text")); err != nil || string(v) != "hello" {
		t.Fatalf("value after failed incr: %q %v", v, err)
	}
}

func TestServeIncrConcurrentExactAndFolds(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1) // one conn: every incr pipelines into the same drainer

	const goroutines, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := c.Incr([]byte("ctr"), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, err := c.Incr([]byte("ctr"), 0); err != nil || v != goroutines*each {
		t.Fatalf("final counter: %d %v, want %d", v, err, goroutines*each)
	}
	st := env.srv.Stats()
	if st.MergeOps.Load() < goroutines*each {
		t.Fatalf("merge_ops = %d, want >= %d", st.MergeOps.Load(), goroutines*each)
	}
	if st.MergeFolded.Load() == 0 {
		t.Fatal("no merges folded despite a pipelined hot key")
	}
	if r := st.LogicalWritesPerDBCall(); r <= 1 {
		t.Fatalf("logical_writes_per_dbcall = %.3f, want > 1", r)
	}
}

func TestServeIncrNoMergeFold(t *testing.T) {
	env := newTestEnv(t, func(cfg *Config) { cfg.NoMergeFold = true })
	c := dialTest(t, env, 1)

	const goroutines, each = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := c.Incr([]byte("ctr"), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, err := c.Incr([]byte("ctr"), 0); err != nil || v != goroutines*each {
		t.Fatalf("final counter: %d %v, want %d", v, err, goroutines*each)
	}
	if folded := env.srv.Stats().MergeFolded.Load(); folded != 0 {
		t.Fatalf("merge_folded = %d with folding disabled", folded)
	}
}

func TestServeBatchMerge(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1)

	// Merge ops ride BATCH alongside puts and deletes, resolving in order.
	err := c.WriteBatch([]wire.BatchOp{
		{Key: []byte("a"), Value: hyperdb.EncodeCounter(100)},
		{Key: []byte("a"), Merge: true, Delta: 11},
		{Key: []byte("b"), Merge: true, Delta: -4},
		{Key: []byte("a"), Delete: true},
		{Key: []byte("a"), Merge: true, Delta: 2},
	})
	if err != nil {
		t.Fatalf("batch with merges: %v", err)
	}
	if v, err := c.Incr([]byte("a"), 0); err != nil || v != 2 {
		t.Fatalf("a after delete+merge: %d %v, want 2", v, err)
	}
	if v, err := c.Incr([]byte("b"), 0); err != nil || v != -4 {
		t.Fatalf("b from zero base: %d %v, want -4", v, err)
	}
	// Fold-path saturation: both deltas coalesce into one entry whose net
	// delta clamps, and the committed value clamps identically.
	err = c.WriteBatch([]wire.BatchOp{
		{Key: []byte("sat"), Merge: true, Delta: math.MaxInt64},
		{Key: []byte("sat"), Merge: true, Delta: math.MaxInt64},
		{Key: []byte("sat"), Merge: true, Delta: 1},
	})
	if err != nil {
		t.Fatalf("saturating batch: %v", err)
	}
	if v, err := c.Incr([]byte("sat"), 0); err != nil || v != math.MaxInt64 {
		t.Fatalf("saturated counter: %d %v, want MaxInt64", v, err)
	}
}

func TestServeIncrSaturation(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1)
	if v, err := c.Incr([]byte("s"), math.MaxInt64); err != nil || v != math.MaxInt64 {
		t.Fatalf("max: %d %v", v, err)
	}
	if v, err := c.Incr([]byte("s"), 1); err != nil || v != math.MaxInt64 {
		t.Fatalf("above max: %d %v, want MaxInt64", v, err)
	}
}

func TestServeSessionIncr(t *testing.T) {
	env := newTestEnv(t, nil)
	c := dialTest(t, env, 1)
	sess := client.NewSession(c, nil, client.ReadPrimary)
	if v, err := sess.Incr([]byte("sc"), 9); err != nil || v != 9 {
		t.Fatalf("session incr: %d %v, want 9", v, err)
	}
	if sess.Token().Seq == 0 {
		t.Fatal("session incr did not advance the token")
	}
	if v, err := sess.Get([]byte("sc")); err != nil || !bytes.Equal(v, hyperdb.EncodeCounter(9)) {
		t.Fatalf("session read-your-incr: %x %v", v, err)
	}
}

func TestConnRateLimit(t *testing.T) {
	// A near-zero refill rate with burst 1 admits exactly one request.
	env := newTestEnv(t, func(cfg *Config) {
		cfg.ConnRate = 0.001
		cfg.ConnBurst = 1
	})
	c := dialTest(t, env, 1)

	if err := c.Ping(); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	if _, err := c.Incr([]byte("k"), 1); !errors.Is(err, client.ErrRateLimited) {
		t.Fatalf("second request: %v, want ErrRateLimited", err)
	}
	// The connection survives rejection and keeps answering.
	if err := c.Ping(); !errors.Is(err, client.ErrRateLimited) {
		t.Fatalf("third request: %v, want ErrRateLimited", err)
	}
	if got := env.srv.Stats().RateLimited.Load(); got < 2 {
		t.Fatalf("rate_limited = %d, want >= 2", got)
	}
	// A fresh connection gets its own bucket.
	c2 := dialTest(t, env, 1)
	if err := c2.Ping(); err != nil {
		t.Fatalf("new conn within burst: %v", err)
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	tb := newTokenBucket(10, 2)
	tb.now = func() time.Time { return now }
	tb.last = now
	if !tb.allow() || !tb.allow() {
		t.Fatal("burst of 2 not admitted")
	}
	if tb.allow() {
		t.Fatal("third request admitted with empty bucket")
	}
	now = now.Add(100 * time.Millisecond) // 1 token at 10/s
	if !tb.allow() {
		t.Fatal("refilled token not admitted")
	}
	if tb.allow() {
		t.Fatal("second token minted from 100ms at 10/s")
	}
	// Refill clamps at burst, not at elapsed × rate.
	now = now.Add(time.Hour)
	if !tb.allow() || !tb.allow() {
		t.Fatal("burst not restored after idle")
	}
	if tb.allow() {
		t.Fatal("bucket exceeded burst after idle")
	}
}
