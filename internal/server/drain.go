package server

import (
	"fmt"
	"math"
	"strings"
	"time"

	"hyperdb"
	"hyperdb/internal/wire"
)

// satSub is saturating subtraction over the same clamped range as
// hyperdb.SatAdd (note -MinInt64 is itself unrepresentable).
func satSub(a, b int64) int64 {
	if b == math.MinInt64 {
		return hyperdb.SatAdd(hyperdb.SatAdd(a, math.MaxInt64), 1)
	}
	return hyperdb.SatAdd(a, -b)
}

// drainLoop is the engine-owning goroutine: it blocks for one request,
// sweeps everything else already queued into the same cycle, and processes
// the cycle with writes grouped into one DB.WriteBatch and point reads into
// one DB.MultiGet. Coalescing needs no timer to appear — while one cycle is
// inside the engine, pipelined requests pile up behind it, so the next
// cycle drains a batch. CoalesceWait adds an optional bounded linger for
// latency-insensitive deployments that want fatter batches at low load.
func (s *Server) drainLoop() {
	defer s.drainWG.Done()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		s.process(s.collect(first))
	}
}

// collect sweeps the queue without blocking (plus at most one CoalesceWait
// linger when the cycle would otherwise hold a single request).
func (s *Server) collect(first *request) []*request {
	batch := append(make([]*request, 0, 64), first)
	lingered := s.cfg.CoalesceWait <= 0
	for len(batch) < s.cfg.QueueDepth {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		default:
			if !lingered && len(batch) < 2 {
				lingered = true
				select {
				case r, ok := <-s.queue:
					if !ok {
						return batch
					}
					batch = append(batch, r)
					continue
				case <-time.After(s.cfg.CoalesceWait):
				}
			}
			return batch
		}
	}
	return batch
}

// process answers one drained cycle. Writes run before reads so a
// connection that pipelines PUT k then GET k observes its own write even
// when both land in the same cycle.
func (s *Server) process(batch []*request) {
	s.stats.Drains.Inc()
	s.stats.DrainedRequests.Add(uint64(len(batch)))
	epoch := s.epoch()

	// Phase 0a: handoff barriers and shard ownership. Closing a barrier
	// proves every write acked in an earlier cycle has committed: cycles are
	// serial, and the flip driver installs the successor map before
	// enqueueing its barrier, so any moved-slot write in this or a later
	// cycle is checked under the new map and bounced rather than committed.
	if s.cfg.Cluster != nil {
		kept := batch[:0]
		for _, r := range batch {
			if r.barrier != nil {
				close(r.barrier)
				continue
			}
			if !s.checkOwnership(r) {
				continue // bounced WRONG_SHARD or parked on an acquiring slot
			}
			kept = append(kept, r)
		}
		batch = kept
	}

	// Phase 0b: park session reads whose minSeq token is ahead of the node's
	// applied position. Parking moves the wait onto a per-request goroutine
	// so the drainer — the engine's only driver — never blocks on
	// replication progress. NoReadGate (the consistency harness's control
	// knob) serves them stale instead. A token naming a different non-zero
	// write lineage is refused outright: its sequence is meaningless against
	// this node's history, and waiting would dress the mismatch up as lag.
	if !s.cfg.NoReadGate {
		kept := batch[:0]
		for _, r := range batch {
			if r.sess && r.op != wire.OpPutV2 && r.op != wire.OpDelV2 && r.op != wire.OpBatchV2 &&
				r.op != wire.OpIncrV2 {
				if r.minEpoch != 0 && epoch != 0 && r.minEpoch != epoch {
					s.stats.EpochRejected.Inc()
					s.stats.ReplReadNotReady.Inc()
					r.reply(wire.StatusNotReady, wire.AppendAppliedSeq(nil, s.cfg.DB.ReadableSeq(), epoch))
					continue
				}
				if r.minSeq > s.cfg.DB.ReadableSeq() {
					s.park(r)
					continue
				}
			}
			kept = append(kept, r)
		}
		batch = kept
	}

	// Phase 1: group every write op in queue order into one WriteBatch. The
	// batch's last committed sequence answers the session (v2) writes: it is
	// ≥ every sequence the request's own ops drew, so gating a follower read
	// on it observes them all.
	//
	// Counter merges additionally coalesce before submission: consecutive
	// deltas to the same key (with no intervening put or delete of that key)
	// fold into one net-delta entry via the engine's saturating arithmetic,
	// so a hot counter hammered by every connection in the cycle costs one
	// batch entry — one WAL record, one replication op — however many INCRs
	// acked. Folding is semantics-preserving because merge runs commute:
	// fold-as-canonical means the folded net delta IS the committed history.
	type incrRef struct {
		r      *request
		entry  int   // wops index the delta landed in
		prefix int64 // entry's running delta just after this request folded
	}
	var wops []hyperdb.BatchOp
	var wreqs []*request
	var incrs []incrRef
	fold := !s.cfg.NoMergeFold
	// lastMerge tracks each key's open merge entry; a put or delete of the
	// key closes the run (later deltas must see the new base).
	var lastMerge map[string]int
	clobber := func(key []byte) {
		if len(lastMerge) > 0 {
			delete(lastMerge, string(key))
		}
	}
	addMerge := func(key []byte, delta int64) (int, int64) {
		s.stats.MergeOps.Inc()
		if i, ok := lastMerge[string(key)]; ok {
			s.stats.MergeFolded.Inc()
			wops[i].Delta = hyperdb.SatAdd(wops[i].Delta, delta)
			return i, wops[i].Delta
		}
		wops = append(wops, hyperdb.BatchOp{Key: key, Merge: true, Delta: delta})
		if fold {
			if lastMerge == nil {
				lastMerge = make(map[string]int)
			}
			lastMerge[string(key)] = len(wops) - 1
		}
		return len(wops) - 1, delta
	}
	for _, r := range batch {
		switch r.op {
		case wire.OpPut, wire.OpPutV2:
			wops = append(wops, hyperdb.BatchOp{Key: r.key, Value: r.value})
			wreqs = append(wreqs, r)
			clobber(r.key)
		case wire.OpDel, wire.OpDelV2:
			wops = append(wops, hyperdb.BatchOp{Key: r.key, Delete: true})
			wreqs = append(wreqs, r)
			clobber(r.key)
		case wire.OpBatch, wire.OpBatchV2:
			for _, b := range r.batch {
				if b.Merge {
					addMerge(b.Key, b.Delta)
				} else {
					wops = append(wops, hyperdb.BatchOp{Key: b.Key, Value: b.Value, Delete: b.Delete})
					clobber(b.Key)
				}
			}
			wreqs = append(wreqs, r)
		case wire.OpIncr, wire.OpIncrV2:
			entry, prefix := addMerge(r.key, r.delta)
			incrs = append(incrs, incrRef{r: r, entry: entry, prefix: prefix})
		}
	}
	if len(wops) > 0 {
		seq, err := s.cfg.DB.WriteBatchSeq(wops)
		s.stats.WriteBatches.Inc()
		s.stats.WriteOps.Add(uint64(len(wops)))
		for _, r := range wreqs {
			s.stats.countOp(r.op)
			switch {
			case err != nil:
				// WriteBatch may have applied a prefix; every write in the
				// cycle reports the failure rather than guessing which
				// side of the prefix it landed on.
				r.fail(err)
			case r.sess:
				r.reply(wire.StatusOK, wire.AppendAppliedSeq(nil, seq, epoch))
			default:
				r.reply(wire.StatusOK, nil)
			}
		}
		for _, ir := range incrs {
			s.stats.countOp(ir.r.op)
			if err != nil {
				ir.r.fail(err)
				continue
			}
			final, derr := hyperdb.DecodeCounter(wops[ir.entry].Value)
			if derr != nil {
				ir.r.fail(derr)
				continue
			}
			// Reconstruct this request's post-merge value: the entry's
			// resolved value minus the deltas folded in after it. Exact in
			// the unsaturated case; within saturation of the int64 range
			// each reply stays clamped to the same bound the engine hit.
			val := satSub(final, satSub(wops[ir.entry].Delta, ir.prefix))
			if ir.r.sess {
				ir.r.reply(wire.StatusOK, wire.AppendIncrV2Resp(nil, seq, epoch, val))
			} else {
				ir.r.reply(wire.StatusOK, wire.AppendIncrResp(nil, val))
			}
		}
	}

	// Phase 2: group every point read into one MultiGet. Session reads ride
	// the same engine call — MultiGetSession additionally samples the token
	// their responses carry, under the lock that keeps it ≥ anything read.
	var keys [][]byte
	var rreqs []*request
	sessRead := false
	for _, r := range batch {
		switch r.op {
		case wire.OpGet, wire.OpGetV2:
			keys = append(keys, r.key)
			rreqs = append(rreqs, r)
			sessRead = sessRead || r.sess
		case wire.OpMGet, wire.OpMGetV2:
			keys = append(keys, r.keys...)
			rreqs = append(rreqs, r)
			sessRead = sessRead || r.sess
		}
	}
	if len(keys) > 0 {
		var vals [][]byte
		var seq uint64
		var err error
		if sessRead {
			vals, seq, err = s.cfg.DB.MultiGetSession(keys)
		} else {
			vals, err = s.cfg.DB.MultiGet(keys)
		}
		s.stats.ReadBatches.Inc()
		s.stats.ReadOps.Add(uint64(len(keys)))
		off := 0
		for _, r := range rreqs {
			s.stats.countOp(r.op)
			if r.sess {
				s.countSessionRead(r)
			}
			switch {
			case err != nil:
				r.fail(err)
				if r.op == wire.OpMGet || r.op == wire.OpMGetV2 {
					off += len(r.keys)
				} else {
					off++
				}
			case r.op == wire.OpGet, r.op == wire.OpGetV2:
				v := vals[off]
				off++
				switch {
				case v == nil && r.sess:
					r.reply(wire.StatusNotFound, wire.AppendAppliedSeq(nil, seq, epoch))
				case v == nil:
					r.reply(wire.StatusNotFound, nil)
				case r.sess:
					r.reply(wire.StatusOK, wire.AppendGetV2Resp(nil, seq, epoch, v))
				default:
					r.reply(wire.StatusOK, v)
				}
			default: // OpMGet / OpMGetV2
				sub := vals[off : off+len(r.keys)]
				off += len(r.keys)
				if r.sess {
					r.reply(wire.StatusOK, wire.AppendMGetV2Resp(nil, seq, epoch, sub))
				} else {
					r.reply(wire.StatusOK, wire.AppendMGetResp(nil, sub))
				}
			}
		}
	}

	// Phase 3: the rest, one by one.
	for _, r := range batch {
		switch r.op {
		case wire.OpPing:
			s.stats.countOp(r.op)
			r.reply(wire.StatusOK, r.echo)
		case wire.OpScan, wire.OpScanV2:
			s.stats.countOp(r.op)
			if r.sess {
				s.countSessionRead(r)
				kvs, seq, err := s.cfg.DB.ScanSession(r.key, r.limit)
				if err != nil {
					r.fail(err)
					continue
				}
				r.reply(wire.StatusOK, wire.AppendScanV2Resp(nil, seq, epoch, toWireKVs(kvs)))
				continue
			}
			kvs, err := s.cfg.DB.Scan(r.key, r.limit)
			if err != nil {
				r.fail(err)
				continue
			}
			r.reply(wire.StatusOK, wire.AppendScanResp(nil, toWireKVs(kvs)))
		case wire.OpStats:
			s.stats.countOp(r.op)
			r.reply(wire.StatusOK, []byte(s.statsText()))
		case wire.OpShardMap:
			s.stats.countOp(r.op)
			if s.cfg.Cluster == nil {
				r.reply(wire.StatusBadRequest, []byte("cluster mode not enabled"))
				continue
			}
			r.reply(wire.StatusOK, s.cfg.Cluster.Map().Encode(nil))
		}
	}
}

func toWireKVs(kvs []hyperdb.KV) []wire.KV {
	out := make([]wire.KV, len(kvs))
	for i, kv := range kvs {
		out[i] = wire.KV{Key: kv.Key, Value: kv.Value}
	}
	return out
}

// countSessionRead accounts one served session read. A read carrying a
// token that lands on a primary-role node is (under the bounded policy) a
// fallback retry after a follower's NOT_READY — clients deliberately
// routing to the primary send minSeq 0, which a primary trivially
// satisfies.
func (s *Server) countSessionRead(r *request) {
	s.stats.ReplReadServed.Inc()
	if r.minSeq > 0 && !s.cfg.DB.IsFollower() {
		s.stats.ReplReadFallbacks.Inc()
	}
}

// park moves a gated session read off the drainer onto its own goroutine,
// which waits (bounded by Config.ReadWait, aborted by shutdown) for the
// node's applied position to reach the request's token. On success the
// request re-enters the queue and the gate passes on the next drain — the
// readable position never moves backward. Otherwise the request answers
// NOT_READY with the node's position and the client retries elsewhere.
//
// Shutdown safety: a parked request still holds its connection's in-flight
// slot, so readerWG.Wait — which precedes close(s.queue) — cannot return
// until the requeued request has been answered by the (still running)
// drainer. A requeue therefore always strictly precedes the queue close.
func (s *Server) park(r *request) {
	s.stats.ReplReadParked.Inc()
	go func() {
		start := time.Now()
		ok := s.cfg.DB.WaitReadable(r.minSeq, s.cfg.ReadWait, s.stopWait)
		s.stats.ReplReadWait.Record(time.Since(start))
		if ok {
			s.queue <- r
			return
		}
		s.stats.ReplReadNotReady.Inc()
		r.reply(wire.StatusNotReady, wire.AppendAppliedSeq(nil, s.cfg.DB.ReadableSeq(), s.epoch()))
	}()
}

// epoch reports the node's current write-lineage identifier, 0 when the
// deployment never configured one (which disables epoch checking).
func (s *Server) epoch() uint64 {
	if s.cfg.Epoch == nil {
		return 0
	}
	return s.cfg.Epoch()
}

// checkOwnership admits a request whose every key this node owns under the
// current shard map. A request touching a foreign slot is answered
// StatusWrongShard with the map as payload — the redirect doubles as the
// client's refresh — unless a handoff into this node covers the slot, in
// which case the request parks briefly: the flip is imminent, and bouncing
// would ping-pong the client between two nodes that both disown the slot.
// Only called with cfg.Cluster set; returns whether the request proceeds.
func (s *Server) checkOwnership(r *request) bool {
	n := s.cfg.Cluster
	m := n.Map()
	self := n.Self()
	owned := true
	var foreign uint32
	check := func(key []byte) {
		if slot := m.SlotOf(key); owned && m.Slots[slot] != self {
			owned, foreign = false, slot
		}
	}
	switch r.op {
	case wire.OpPut, wire.OpPutV2, wire.OpGet, wire.OpGetV2,
		wire.OpDel, wire.OpDelV2, wire.OpIncr, wire.OpIncrV2:
		check(r.key)
	case wire.OpBatch, wire.OpBatchV2:
		for _, b := range r.batch {
			check(b.Key)
		}
	case wire.OpMGet, wire.OpMGetV2:
		for _, k := range r.keys {
			check(k)
		}
	default:
		// Scans deliberately skip the check: a range spans slots, so a
		// cluster scan is per-shard by contract (the client merges).
		return true
	}
	if owned {
		return true
	}
	if acq, ch := n.Acquiring(foreign); acq && s.cfg.ReadWait > 0 {
		if r.acqDeadline.IsZero() {
			r.acqDeadline = time.Now().Add(s.cfg.ReadWait)
		}
		if time.Now().Before(r.acqDeadline) {
			s.parkAcquiring(r, ch)
			return false
		}
	}
	s.stats.WrongShard.Inc()
	r.reply(wire.StatusWrongShard, n.Map().Encode(nil))
	return false
}

// parkAcquiring shelves a request for a slot this node is mid-way through
// acquiring until the acquiring set changes (flip or abort), the deadline
// passes, or shutdown — then requeues it for a fresh ownership check. The
// same shutdown-safety argument as park applies: the request holds its
// connection's in-flight slot, so the requeue strictly precedes the queue
// close.
func (s *Server) parkAcquiring(r *request, ch <-chan struct{}) {
	s.stats.AcquireParked.Inc()
	go func() {
		t := time.NewTimer(time.Until(r.acqDeadline))
		defer t.Stop()
		select {
		case <-ch:
		case <-t.C:
		case <-s.stopWait:
		}
		s.queue <- r
	}()
}

// statsText renders the STATS payload: the server's counters, the
// replication section, then a blank line and the engine's multi-line
// summary.
func (s *Server) statsText() string {
	var b strings.Builder
	b.WriteString(s.stats.String())
	b.WriteString(s.replText())
	b.WriteString(s.clusterText())
	b.WriteString("\n")
	b.WriteString(s.cfg.DB.Stats().String())
	return b.String()
}

// replText renders the "repl.*" stats lines: the node's role, a follower's
// applied position, and — when this node ships a log — per-follower ack and
// lag. hyperctl's `repl status` parses these.
func (s *Server) replText() string {
	var b strings.Builder
	if s.cfg.DB.IsFollower() {
		fmt.Fprintf(&b, "repl.role follower\n")
		fmt.Fprintf(&b, "repl.applied %d\n", s.cfg.DB.CommitSeq())
		fmt.Fprintf(&b, "repl.readable %d\n", s.cfg.DB.ReadableSeq())
	} else {
		fmt.Fprintf(&b, "repl.role primary\n")
	}
	if s.cfg.Repl != nil {
		st := s.cfg.Repl.Status()
		fmt.Fprintf(&b, "repl.log_head %d\n", st.Head)
		fmt.Fprintf(&b, "repl.log_floor %d\n", st.Floor)
		fmt.Fprintf(&b, "repl.log_entries %d\n", st.Entries)
		fmt.Fprintf(&b, "repl.log_pending %d\n", st.Pending)
		fmt.Fprintf(&b, "repl.followers %d\n", len(st.Peers))
		for _, p := range st.Peers {
			fmt.Fprintf(&b, "repl.follower %s acked %d lag %d\n", p.Name, p.Acked, p.Lag)
		}
		ae := s.cfg.Repl.AEStatsSnapshot()
		fmt.Fprintf(&b, "repl.snap_bytes %d\n", ae.SnapshotBytes)
		fmt.Fprintf(&b, "repl.ae_sessions %d\n", ae.AESessions)
		fmt.Fprintf(&b, "repl.ae_bytes %d\n", ae.AEBytes)
		fmt.Fprintf(&b, "repl.ae_nodes %d\n", ae.AENodes)
		fmt.Fprintf(&b, "repl.ae_leaves %d\n", ae.AELeaves)
	}
	return b.String()
}

// clusterText renders the "cluster.*" stats lines when the node serves in
// cluster mode. hyperctl's `shardmap` and the smoke scripts parse these.
func (s *Server) clusterText() string {
	if s.cfg.Cluster == nil {
		return ""
	}
	n := s.cfg.Cluster
	m := n.Map()
	owned := 0
	for _, g := range m.Slots {
		if g == n.Self() {
			owned++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster.self %d\n", n.Self())
	fmt.Fprintf(&b, "cluster.map_version %d\n", m.Version)
	fmt.Fprintf(&b, "cluster.groups %d\n", len(m.Groups))
	fmt.Fprintf(&b, "cluster.slots %d\n", len(m.Slots))
	fmt.Fprintf(&b, "cluster.slots_owned %d\n", owned)
	fmt.Fprintf(&b, "cluster.epoch %d\n", s.epoch())
	return b.String()
}

// reply answers the request and releases its backpressure slot. The
// response is enqueued before the slot frees, which keeps the writer
// channel's capacity invariant (see conn.out).
func (r *request) reply(st wire.Status, payload []byte) {
	r.c.send(wire.AppendFrame(nil, wire.Frame{Op: r.op, Status: st, ID: r.id, Payload: payload}))
	<-r.c.inflight
}

// fail answers with StatusError and the engine's message.
func (r *request) fail(err error) {
	r.reply(wire.StatusError, []byte(err.Error()))
}
