package server

import (
	"fmt"
	"strings"
	"time"

	"hyperdb"
	"hyperdb/internal/wire"
)

// drainLoop is the engine-owning goroutine: it blocks for one request,
// sweeps everything else already queued into the same cycle, and processes
// the cycle with writes grouped into one DB.WriteBatch and point reads into
// one DB.MultiGet. Coalescing needs no timer to appear — while one cycle is
// inside the engine, pipelined requests pile up behind it, so the next
// cycle drains a batch. CoalesceWait adds an optional bounded linger for
// latency-insensitive deployments that want fatter batches at low load.
func (s *Server) drainLoop() {
	defer s.drainWG.Done()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		s.process(s.collect(first))
	}
}

// collect sweeps the queue without blocking (plus at most one CoalesceWait
// linger when the cycle would otherwise hold a single request).
func (s *Server) collect(first *request) []*request {
	batch := append(make([]*request, 0, 64), first)
	lingered := s.cfg.CoalesceWait <= 0
	for len(batch) < s.cfg.QueueDepth {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		default:
			if !lingered && len(batch) < 2 {
				lingered = true
				select {
				case r, ok := <-s.queue:
					if !ok {
						return batch
					}
					batch = append(batch, r)
					continue
				case <-time.After(s.cfg.CoalesceWait):
				}
			}
			return batch
		}
	}
	return batch
}

// process answers one drained cycle. Writes run before reads so a
// connection that pipelines PUT k then GET k observes its own write even
// when both land in the same cycle.
func (s *Server) process(batch []*request) {
	s.stats.Drains.Inc()
	s.stats.DrainedRequests.Add(uint64(len(batch)))

	// Phase 1: group every write op in queue order into one WriteBatch.
	var wops []hyperdb.BatchOp
	var wreqs []*request
	for _, r := range batch {
		switch r.op {
		case wire.OpPut:
			wops = append(wops, hyperdb.BatchOp{Key: r.key, Value: r.value})
			wreqs = append(wreqs, r)
		case wire.OpDel:
			wops = append(wops, hyperdb.BatchOp{Key: r.key, Delete: true})
			wreqs = append(wreqs, r)
		case wire.OpBatch:
			for _, b := range r.batch {
				wops = append(wops, hyperdb.BatchOp{Key: b.Key, Value: b.Value, Delete: b.Delete})
			}
			wreqs = append(wreqs, r)
		}
	}
	if len(wops) > 0 {
		err := s.cfg.DB.WriteBatch(wops)
		s.stats.WriteBatches.Inc()
		s.stats.WriteOps.Add(uint64(len(wops)))
		for _, r := range wreqs {
			s.stats.countOp(r.op)
			if err != nil {
				// WriteBatch may have applied a prefix; every write in the
				// cycle reports the failure rather than guessing which
				// side of the prefix it landed on.
				r.fail(err)
			} else {
				r.reply(wire.StatusOK, nil)
			}
		}
	}

	// Phase 2: group every point read into one MultiGet.
	var keys [][]byte
	var rreqs []*request
	for _, r := range batch {
		switch r.op {
		case wire.OpGet:
			keys = append(keys, r.key)
			rreqs = append(rreqs, r)
		case wire.OpMGet:
			keys = append(keys, r.keys...)
			rreqs = append(rreqs, r)
		}
	}
	if len(keys) > 0 {
		vals, err := s.cfg.DB.MultiGet(keys)
		s.stats.ReadBatches.Inc()
		s.stats.ReadOps.Add(uint64(len(keys)))
		off := 0
		for _, r := range rreqs {
			s.stats.countOp(r.op)
			switch {
			case err != nil:
				r.fail(err)
				if r.op == wire.OpMGet {
					off += len(r.keys)
				} else {
					off++
				}
			case r.op == wire.OpGet:
				v := vals[off]
				off++
				if v == nil {
					r.reply(wire.StatusNotFound, nil)
				} else {
					r.reply(wire.StatusOK, v)
				}
			default: // OpMGet
				sub := vals[off : off+len(r.keys)]
				off += len(r.keys)
				r.reply(wire.StatusOK, wire.AppendMGetResp(nil, sub))
			}
		}
	}

	// Phase 3: the rest, one by one.
	for _, r := range batch {
		switch r.op {
		case wire.OpPing:
			s.stats.countOp(r.op)
			r.reply(wire.StatusOK, r.echo)
		case wire.OpScan:
			s.stats.countOp(r.op)
			kvs, err := s.cfg.DB.Scan(r.key, r.limit)
			if err != nil {
				r.fail(err)
				continue
			}
			out := make([]wire.KV, len(kvs))
			for i, kv := range kvs {
				out[i] = wire.KV{Key: kv.Key, Value: kv.Value}
			}
			r.reply(wire.StatusOK, wire.AppendScanResp(nil, out))
		case wire.OpStats:
			s.stats.countOp(r.op)
			r.reply(wire.StatusOK, []byte(s.statsText()))
		}
	}
}

// statsText renders the STATS payload: the server's counters, the
// replication section, then a blank line and the engine's multi-line
// summary.
func (s *Server) statsText() string {
	var b strings.Builder
	b.WriteString(s.stats.String())
	b.WriteString(s.replText())
	b.WriteString("\n")
	b.WriteString(s.cfg.DB.Stats().String())
	return b.String()
}

// replText renders the "repl.*" stats lines: the node's role, a follower's
// applied position, and — when this node ships a log — per-follower ack and
// lag. hyperctl's `repl status` parses these.
func (s *Server) replText() string {
	var b strings.Builder
	if s.cfg.DB.IsFollower() {
		fmt.Fprintf(&b, "repl.role follower\n")
		fmt.Fprintf(&b, "repl.applied %d\n", s.cfg.DB.CommitSeq())
	} else {
		fmt.Fprintf(&b, "repl.role primary\n")
	}
	if s.cfg.Repl != nil {
		st := s.cfg.Repl.Status()
		fmt.Fprintf(&b, "repl.log_head %d\n", st.Head)
		fmt.Fprintf(&b, "repl.log_floor %d\n", st.Floor)
		fmt.Fprintf(&b, "repl.log_entries %d\n", st.Entries)
		fmt.Fprintf(&b, "repl.log_pending %d\n", st.Pending)
		fmt.Fprintf(&b, "repl.followers %d\n", len(st.Peers))
		for _, p := range st.Peers {
			fmt.Fprintf(&b, "repl.follower %s acked %d lag %d\n", p.Name, p.Acked, p.Lag)
		}
	}
	return b.String()
}

// reply answers the request and releases its backpressure slot. The
// response is enqueued before the slot frees, which keeps the writer
// channel's capacity invariant (see conn.out).
func (r *request) reply(st wire.Status, payload []byte) {
	r.c.send(wire.AppendFrame(nil, wire.Frame{Op: r.op, Status: st, ID: r.id, Payload: payload}))
	<-r.c.inflight
}

// fail answers with StatusError and the engine's message.
func (r *request) fail(err error) {
	r.reply(wire.StatusError, []byte(err.Error()))
}
