// Package server is hyperd's network front door: a TCP listener that
// decodes wire-protocol frames and feeds them to a HyperDB instance through
// a coalescing queue. Pipelined writes from any number of connections group
// into one DB.WriteBatch per drain cycle and pipelined point reads into one
// DB.MultiGet, so the engine's batch hot path — not per-request locking —
// carries the served load.
//
// Concurrency layout: every connection owns a reader goroutine (decode →
// submit) and a writer goroutine (response → socket); one drainer goroutine
// owns the engine. Per-connection backpressure is an in-flight semaphore:
// a reader blocks once MaxInflight of its requests are unanswered, which
// bounds the coalescing queue at conns × MaxInflight entries.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb"
	"hyperdb/internal/cluster"
	"hyperdb/internal/repl"
	"hyperdb/internal/stats"
	"hyperdb/internal/wire"
)

// Config parameterises a Server. The zero value of every field gets a sane
// default from fill.
type Config struct {
	// DB is the engine to serve. Required.
	DB *hyperdb.DB
	// OwnDB makes Shutdown finish the engine too: DrainBackground then
	// Close. hyperd sets it; tests that reuse the DB leave it false.
	OwnDB bool
	// MaxConns caps concurrently served connections; further accepts are
	// closed immediately. Default 256.
	MaxConns int
	// MaxInflight is the per-connection pipelining window: the number of
	// submitted-but-unanswered requests a connection may hold before its
	// reader stops consuming from the socket. Default 128.
	MaxInflight int
	// MaxFrame bounds accepted frame bodies. Default wire.MaxFrame.
	MaxFrame uint32
	// QueueDepth is the coalescing queue's capacity. Default 4096.
	QueueDepth int
	// CoalesceWait, when positive, lets a drain cycle that found fewer
	// than two requests wait once for more to arrive before hitting the
	// engine. Zero (the default) drains whatever is immediately pending.
	CoalesceWait time.Duration
	// MaxScanLimit caps the limit a SCAN request may ask for. Default 4096.
	MaxScanLimit int
	// ReadWait bounds how long a gated session read (a v2 read whose minSeq
	// token is ahead of this node's applied position) may wait for
	// replication to catch up before the server answers StatusNotReady.
	// Waiting happens on a parked goroutine, never on the drainer. Default
	// 100ms; negative refuses immediately.
	ReadWait time.Duration
	// NoReadGate disables the minSeq gate: session reads are answered from
	// whatever state the node has, however stale. It exists so the
	// consistency harness can prove it detects the staleness the gate
	// prevents; production configurations leave it false.
	NoReadGate bool
	// ConnRate, when positive, rate-limits each connection to that many
	// requests per second (token bucket, burst ConnBurst). Rejected requests
	// answer StatusRateLimited without entering the coalescing queue.
	// Replication handshakes are exempt. Zero disables limiting.
	ConnRate float64
	// ConnBurst is the token bucket's capacity when ConnRate is set.
	// Zero defaults to max(1, ConnRate).
	ConnBurst int
	// NoMergeFold disables the drainer's same-key delta coalescing: every
	// INCR submits its own batch entry. The A/B switch for the merge bench;
	// production configurations leave it false.
	NoMergeFold bool
	// Repl, when non-nil, serves replication followers: a connection whose
	// first frame is REPL_HELLO detaches from the request/response machinery
	// and is handed to Repl.ServeConn for log shipping. Nil rejects the
	// handshake. A follower-mode node may also set it (with its own log as
	// the engine tee) to serve downstream replicas after promotion.
	Repl *repl.Primary
	// Cluster, when non-nil, puts the node in sharded-cluster mode: every
	// keyed op is checked against the shard map before it touches the
	// engine, mis-routed ops bounce with StatusWrongShard plus the current
	// map, OpShardMap serves the map, and the handoff ops drive slot
	// migration (Repl must also be set — handoff reuses its snapshot
	// stream). Nil serves the whole keyspace, exactly as before.
	Cluster *cluster.Node
	// Epoch reports the node's current write-lineage identifier: the
	// replication log's epoch on a primary, the upstream epoch on a
	// follower. Session (v2) responses carry it next to the applied
	// sequence, and v2 reads whose token names a different non-zero epoch
	// are refused NOT_READY — their sequences are not comparable to this
	// lineage. Nil reports 0, which disables the check.
	Epoch func() uint64
	// Logf receives connection-level diagnostics. Nil disables logging.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.DB == nil {
		return errors.New("server: Config.DB is required")
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.MaxFrame == 0 || c.MaxFrame > wire.MaxFrame {
		c.MaxFrame = wire.MaxFrame
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.MaxScanLimit <= 0 {
		c.MaxScanLimit = 4096
	}
	if c.ReadWait == 0 {
		c.ReadWait = 100 * time.Millisecond
	}
	return nil
}

// Server serves one DB over one listener.
type Server struct {
	cfg Config

	ln    net.Listener
	queue chan *request
	stats Stats

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool // guarded by mu: no new conns once set

	closing  atomic.Bool
	acceptWG sync.WaitGroup
	readerWG sync.WaitGroup
	writerWG sync.WaitGroup
	drainWG  sync.WaitGroup

	// flushed is closed after the drainer exits, telling idle writers the
	// last response they will ever receive has been enqueued.
	flushed chan struct{}
	// stopWait is closed at the start of shutdown to abort parked session
	// reads: their waiters resolve (ready or NOT_READY) and release their
	// in-flight slots, which is what lets readerWG.Wait complete.
	stopWait chan struct{}

	shutdownOnce sync.Once
	shutdownErr  error
}

// New builds a Server and starts its drainer. Call Serve to accept.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *request, cfg.QueueDepth),
		conns:    make(map[*conn]struct{}),
		flushed:  make(chan struct{}),
		stopWait: make(chan struct{}),
	}
	s.stats.ReplReadWait = stats.NewHistogram()
	s.drainWG.Add(1)
	go s.drainLoop()
	return s, nil
}

// Listen is a convenience: net.Listen("tcp", addr) + Serve in a goroutine.
// It returns once the listener is bound, so the address is connectable.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.acceptWG.Add(1)
	go func() {
		defer s.acceptWG.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns the
// terminal accept error (nil after a clean Shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.startConn(nc)
	}
}

// startConn admits nc or closes it when the server is full or closing.
func (s *Server) startConn(nc net.Conn) {
	s.mu.Lock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		full := !s.closed
		s.mu.Unlock()
		if full {
			s.stats.ConnsRejected.Inc()
			s.logf("conn %s rejected: at MaxConns=%d", nc.RemoteAddr(), s.cfg.MaxConns)
		}
		nc.Close()
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	s.stats.ConnsAccepted.Inc()
	s.stats.connsActive.Add(1)
	s.readerWG.Add(1)
	s.writerWG.Add(1)
	go c.readLoop()
	go c.writeLoop()
}

// removeConn drops c from the registry once its reader is done.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.stats.connsActive.Add(-1)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Stats returns the server's counters (live; fields are atomic).
func (s *Server) Stats() *Stats { return &s.stats }

// Shutdown performs the graceful stop sequence: stop accepting, interrupt
// connection readers (pipelined requests already received stay in flight),
// drain the coalescing queue so every in-flight request gets its response,
// flush and close all connections, and — when the server owns the DB —
// DrainBackground and Close the engine. Safe to call more than once and
// from concurrent goroutines; every caller observes completion.
func (s *Server) Shutdown() error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.shutdown() })
	// Once guarantees all callers block until the first finishes.
	return s.shutdownErr
}

func (s *Server) shutdown() error {
	s.closing.Store(true)
	// Abort parked session reads first: each either requeues (and is
	// answered by the drainer, which runs until the queue closes below) or
	// replies NOT_READY itself; both release the in-flight slot that
	// readerWG.Wait is about to wait on.
	close(s.stopWait)
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		// Wake readers blocked in Read; they observe closing and exit.
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.acceptWG.Wait()

	// Readers exit after submitting every frame they had fully received;
	// their deferred drain of the in-flight semaphore means readerWG.Wait
	// also waits for the drainer to answer those requests.
	s.readerWG.Wait()

	// No submitters remain: close the queue, let the drainer finish the
	// tail, then release writers that are idle.
	close(s.queue)
	s.drainWG.Wait()
	close(s.flushed)
	s.writerWG.Wait()

	s.mu.Lock()
	for c := range s.conns {
		c.nc.Close()
		delete(s.conns, c)
	}
	s.mu.Unlock()

	if s.cfg.OwnDB {
		if err := s.cfg.DB.DrainBackground(); err != nil {
			s.cfg.DB.Close()
			return fmt.Errorf("server: drain background: %w", err)
		}
		if err := s.cfg.DB.Close(); err != nil {
			return fmt.Errorf("server: close db: %w", err)
		}
	}
	return nil
}

// request is one decoded, admitted client request waiting in the
// coalescing queue. Exactly one respond* call answers it.
type request struct {
	c  *conn
	id uint64
	op wire.Op

	key   []byte         // GET/DEL/SCAN start/INCR
	value []byte         // PUT
	batch []wire.BatchOp // BATCH
	keys  [][]byte       // MGET
	limit int            // SCAN
	echo  []byte         // PING
	delta int64          // INCR

	// sess marks a session (v2) request: its response carries the node's
	// applied (sequence, epoch), and for reads (minSeq, minEpoch) is the
	// client's session token — the position the node must have applied, in
	// the lineage it must share, before answering.
	sess     bool
	minSeq   uint64
	minEpoch uint64

	// slots carries a HANDOFF request's migrating slot list.
	slots []uint32

	// barrier marks a synthetic drainer-barrier request (no conn, no op):
	// the drainer closes the channel when it reaches the request, proving
	// every earlier cycle's writes have committed. The handoff flip uses it
	// to order the ownership swap against in-flight writes.
	barrier chan struct{}

	// acqDeadline bounds how long an op for a slot this node is still
	// acquiring may be re-parked before it bounces WRONG_SHARD anyway.
	acqDeadline time.Time
}

// bufferedReader sizes the per-connection read buffer.
const readBufSize = 64 << 10

type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	// out carries encoded responses to the writer. Capacity MaxInflight+2
	// exceeds the most responses that can be outstanding at once (at most
	// MaxInflight semaphore-holding requests plus the reader's own single
	// synchronous error reply), so enqueues never block in steady state.
	out chan []byte
	// inflight is the per-connection backpressure semaphore.
	inflight chan struct{}
	// dead is closed when the writer abandons the socket; responders then
	// drop instead of blocking.
	dead     chan struct{}
	deadOnce sync.Once
	// wdone is closed when the writer goroutine exits; the replication
	// handoff waits on it before taking over the socket.
	wdone chan struct{}
	// detached marks a connection surrendered to the replication stream:
	// the exiting writer must leave the socket open for it.
	detached atomic.Bool
	// limiter, when non-nil, admission-controls this connection's requests
	// (Config.ConnRate).
	limiter *tokenBucket
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv:      s,
		nc:       nc,
		br:       bufio.NewReaderSize(nc, readBufSize),
		bw:       bufio.NewWriterSize(nc, readBufSize),
		out:      make(chan []byte, s.cfg.MaxInflight+2),
		inflight: make(chan struct{}, s.cfg.MaxInflight),
		dead:     make(chan struct{}),
		wdone:    make(chan struct{}),
	}
	if s.cfg.ConnRate > 0 {
		c.limiter = newTokenBucket(s.cfg.ConnRate, s.cfg.ConnBurst)
	}
	return c
}

func (c *conn) kill() { c.deadOnce.Do(func() { close(c.dead) }) }

// readLoop decodes frames and submits requests until the peer disconnects,
// the stream turns malformed, or Shutdown interrupts it. On exit it waits
// for every submitted request to be answered, then lets the writer finish.
func (c *conn) readLoop() {
	defer c.srv.readerWG.Done()
	defer c.finishReads()
	first := true
	for {
		f, err := wire.ReadFrame(c.br, c.srv.cfg.MaxFrame)
		if err != nil {
			if !isClientGone(err) && !c.srv.closing.Load() {
				// Malformed stream (bad CRC, oversized frame, garbage
				// length): the frame boundary is lost, so drop the
				// connection rather than guess.
				c.srv.stats.BadFrames.Inc()
				c.srv.logf("conn %s: dropping on malformed stream: %v", c.nc.RemoteAddr(), err)
				c.kill()
			}
			return
		}
		if c.srv.closing.Load() {
			// Shutdown raced the read: refuse rather than admit new work.
			c.respondError(f.ID, f.Op, wire.StatusShuttingDown, "server shutting down")
			return
		}
		if f.Op == wire.OpReplHello {
			// A replication subscription claims the whole connection; it
			// must be the very first frame so no request/response traffic
			// is interleaved with the push stream.
			c.serveRepl(f, first)
			return
		}
		if f.Op == wire.OpHandoffHello {
			// Same contract as REPL_HELLO: a handoff stream owns its
			// connection from the first frame on.
			c.serveHandoffSource(f, first)
			return
		}
		if f.Op == wire.OpHandoff {
			// The admin trigger runs a whole slot migration — far too long
			// for the drainer. It occupies one in-flight slot on its own
			// goroutine; the reply releases it like any queued request.
			first = false
			if req, perr := c.decodeHandoff(f); perr != nil {
				c.srv.stats.BadRequests.Inc()
				c.respondError(f.ID, f.Op, wire.StatusBadRequest, perr.Error())
			} else {
				c.inflight <- struct{}{}
				go c.srv.runHandoffTarget(req)
			}
			continue
		}
		first = false
		if c.limiter != nil && !c.limiter.allow() {
			c.srv.stats.RateLimited.Inc()
			c.respondError(f.ID, f.Op, wire.StatusRateLimited, "rate limited")
			continue
		}
		req, perr := c.decode(f)
		if perr != nil {
			c.srv.stats.BadRequests.Inc()
			c.respondError(f.ID, f.Op, wire.StatusBadRequest, perr.Error())
			continue
		}
		c.inflight <- struct{}{} // backpressure: blocks at MaxInflight
		c.srv.queue <- req
	}
}

// serveRepl hands the connection to the replication subsystem. The writer
// goroutine is evicted first — it drains any queued frames, leaves the
// socket open (detached), and exits — so the repl stream is the socket's
// single writer. The call runs on the reader goroutine, keeping the
// connection inside readerWG: Shutdown's read deadline still interrupts the
// stream's ack reader, which unwinds ServeConn.
func (c *conn) serveRepl(f wire.Frame, first bool) {
	srv := c.srv
	if srv.cfg.Repl == nil {
		srv.stats.BadRequests.Inc()
		c.respondError(f.ID, f.Op, wire.StatusBadRequest, "replication not enabled")
		c.kill()
		return
	}
	if !first {
		srv.stats.BadRequests.Inc()
		c.respondError(f.ID, f.Op, wire.StatusBadRequest, "REPL_HELLO must be the first frame")
		c.kill()
		return
	}
	epoch, lastApplied, flags, err := wire.DecodeReplHelloReq(f.Payload)
	if err != nil {
		srv.stats.BadRequests.Inc()
		c.respondError(f.ID, f.Op, wire.StatusBadRequest, err.Error())
		c.kill()
		return
	}
	c.detached.Store(true)
	c.kill()
	<-c.wdone
	srv.stats.ReplConns.Inc()
	srv.stats.replActive.Add(1)
	defer srv.stats.replActive.Add(-1)
	srv.logf("conn %s: replication follower attached at seq %d", c.nc.RemoteAddr(), lastApplied)
	if err := srv.cfg.Repl.ServeConn(c.nc, c.br, epoch, lastApplied, flags); err != nil && !srv.closing.Load() {
		srv.logf("conn %s: replication stream ended: %v", c.nc.RemoteAddr(), err)
	}
}

// finishReads runs after the read loop: once the in-flight semaphore fully
// refills (every submitted request has enqueued its response), the writer
// may stop after flushing.
func (c *conn) finishReads() {
	for i := 0; i < cap(c.inflight); i++ {
		c.inflight <- struct{}{}
	}
	c.srv.removeConn(c)
	c.kill()
}

// decode turns a frame into a queued request. Slices are copied out of the
// frame's buffer because the request outlives this read iteration.
func (c *conn) decode(f wire.Frame) (*request, error) {
	if !f.Op.Valid() {
		return nil, fmt.Errorf("unknown op %d", uint8(f.Op))
	}
	req := &request{c: c, id: f.ID, op: f.Op}
	switch f.Op {
	case wire.OpPing:
		req.echo = append([]byte(nil), f.Payload...)
	case wire.OpPut:
		k, v, err := wire.DecodePutReq(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), k...)
		req.value = append([]byte(nil), v...)
	case wire.OpGet, wire.OpDel:
		k, err := wire.DecodeKeyReq(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), k...)
	case wire.OpBatch:
		ops, err := wire.DecodeBatchReq(f.Payload)
		if err != nil {
			return nil, err
		}
		for i := range ops {
			ops[i].Key = append([]byte(nil), ops[i].Key...)
			ops[i].Value = append([]byte(nil), ops[i].Value...)
		}
		req.batch = ops
	case wire.OpMGet:
		ks, err := wire.DecodeMGetReq(f.Payload)
		if err != nil {
			return nil, err
		}
		for i := range ks {
			ks[i] = append([]byte(nil), ks[i]...)
		}
		req.keys = ks
	case wire.OpScan:
		start, limit, err := wire.DecodeScanReq(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), start...)
		req.limit = int(limit)
		if req.limit > c.srv.cfg.MaxScanLimit {
			req.limit = c.srv.cfg.MaxScanLimit
		}
	case wire.OpStats:
		if len(f.Payload) != 0 {
			return nil, errors.New("stats takes no payload")
		}
	case wire.OpPutV2:
		k, v, err := wire.DecodePutReq(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), k...)
		req.value = append([]byte(nil), v...)
		req.sess = true
	case wire.OpDelV2:
		k, err := wire.DecodeKeyReq(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), k...)
		req.sess = true
	case wire.OpBatchV2:
		ops, err := wire.DecodeBatchReq(f.Payload)
		if err != nil {
			return nil, err
		}
		for i := range ops {
			ops[i].Key = append([]byte(nil), ops[i].Key...)
			ops[i].Value = append([]byte(nil), ops[i].Value...)
		}
		req.batch = ops
		req.sess = true
	case wire.OpGetV2:
		k, minSeq, minEpoch, err := wire.DecodeGetV2Req(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), k...)
		req.sess = true
		req.minSeq = minSeq
		req.minEpoch = minEpoch
	case wire.OpMGetV2:
		ks, minSeq, minEpoch, err := wire.DecodeMGetV2Req(f.Payload)
		if err != nil {
			return nil, err
		}
		for i := range ks {
			ks[i] = append([]byte(nil), ks[i]...)
		}
		req.keys = ks
		req.sess = true
		req.minSeq = minSeq
		req.minEpoch = minEpoch
	case wire.OpScanV2:
		start, limit, minSeq, minEpoch, err := wire.DecodeScanV2Req(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), start...)
		req.limit = int(limit)
		if req.limit > c.srv.cfg.MaxScanLimit {
			req.limit = c.srv.cfg.MaxScanLimit
		}
		req.sess = true
		req.minSeq = minSeq
		req.minEpoch = minEpoch
	case wire.OpIncr:
		k, delta, err := wire.DecodeIncrReq(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), k...)
		req.delta = delta
	case wire.OpIncrV2:
		k, delta, err := wire.DecodeIncrReq(f.Payload)
		if err != nil {
			return nil, err
		}
		req.key = append([]byte(nil), k...)
		req.delta = delta
		req.sess = true
	case wire.OpShardMap:
		if len(f.Payload) != 0 {
			return nil, errors.New("shardmap takes no payload")
		}
	case wire.OpReplFrame, wire.OpReplAck, wire.OpReplSnapshot,
		wire.OpReplFrame2, wire.OpHandoffFlip:
		// Push-stream ops are only meaningful inside a REPL_HELLO or
		// HANDOFF_HELLO stream; as requests they have no response protocol.
		return nil, fmt.Errorf("%s outside a replication stream", f.Op)
	}
	return req, nil
}

// decodeHandoff validates a HANDOFF admin request into a request that the
// target-side migration driver answers.
func (c *conn) decodeHandoff(f wire.Frame) (*request, error) {
	if c.srv.cfg.Cluster == nil || c.srv.cfg.Repl == nil {
		return nil, errors.New("cluster mode not enabled")
	}
	slots, err := wire.DecodeHandoffReq(f.Payload)
	if err != nil {
		return nil, err
	}
	nslots := uint32(len(c.srv.cfg.Cluster.Map().Slots))
	for _, s := range slots {
		if s >= nslots {
			return nil, fmt.Errorf("slot %d out of range (map has %d)", s, nslots)
		}
	}
	return &request{c: c, id: f.ID, op: f.Op, slots: slots}, nil
}

// send enqueues an encoded response frame, dropping it if the writer died.
func (c *conn) send(frame []byte) {
	select {
	case c.out <- frame:
	case <-c.dead:
	}
}

// respondError answers a request that never entered the queue.
func (c *conn) respondError(id uint64, op wire.Op, st wire.Status, msg string) {
	c.send(wire.AppendFrame(nil, wire.Frame{Op: op, Status: st, ID: id, Payload: []byte(msg)}))
}

// writeLoop flushes encoded responses to the socket, batching frames that
// are already queued into one flush.
func (c *conn) writeLoop() {
	defer c.srv.writerWG.Done()
	defer close(c.wdone)
	defer func() {
		// A detached connection belongs to the replication stream now;
		// closing it here would cut the stream off mid-handoff.
		if !c.detached.Load() {
			c.nc.Close()
		}
	}()
	for {
		var frame []byte
		select {
		case frame = <-c.out:
		default:
			// Nothing pending: flush what we have, then sleep until the
			// next response, writer death, or end-of-world.
			if err := c.bw.Flush(); err != nil {
				c.kill()
				return
			}
			select {
			case frame = <-c.out:
			case <-c.dead:
				// Reader finished and all responses are enqueued; drain
				// the channel remnant, flush, and exit.
				if !c.drainOut() {
					return
				}
				continue
			case <-c.srv.flushed:
				if !c.drainOut() {
					return
				}
				continue
			}
		}
		if _, err := c.bw.Write(frame); err != nil {
			c.kill()
			return
		}
	}
}

// drainOut writes any still-queued responses. It returns false when the
// channel is empty (caller exits after the final flush).
func (c *conn) drainOut() bool {
	wrote := false
	for {
		select {
		case frame := <-c.out:
			if _, err := c.bw.Write(frame); err != nil {
				c.kill()
				return false
			}
			wrote = true
		default:
			c.bw.Flush()
			return wrote
		}
	}
}

// isClientGone reports whether err is a disconnect or a shutdown deadline,
// as opposed to a protocol violation on a live stream.
func isClientGone(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true // SetReadDeadline(now) during Shutdown
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
