package server

import (
	"fmt"
	"strings"
	"sync/atomic"

	"hyperdb/internal/stats"
	"hyperdb/internal/wire"
)

// Stats is the server's observable state, built on the stats package's
// atomic counters so the coalescing claim is measurable, not asserted.
// All fields are safe to read while the server runs.
type Stats struct {
	ConnsAccepted stats.Counter
	ConnsRejected stats.Counter
	connsActive   atomic.Int64

	// BadFrames counts connections dropped for an undecodable stream;
	// BadRequests counts well-framed requests with malformed payloads
	// (answered with StatusBadRequest, connection kept).
	BadFrames   stats.Counter
	BadRequests stats.Counter

	// ReplConns counts accepted replication handoffs; replActive tracks
	// currently attached follower streams.
	ReplConns  stats.Counter
	replActive atomic.Int64

	// ops counts completed requests per op code (indexed by wire.Op).
	ops [32]stats.Counter

	// Session-read (follower-read) accounting. ReplReadServed counts v2
	// session reads answered on this node; ReplReadParked those whose token
	// was ahead of the applied position and had to wait; ReplReadNotReady
	// those refused after the bounded wait; ReplReadFallbacks token-carrying
	// session reads served while in the primary role — under the bounded
	// policy, retries after a follower's NOT_READY. ReplReadWait records how
	// long parked reads waited.
	ReplReadServed    stats.Counter
	ReplReadParked    stats.Counter
	ReplReadNotReady  stats.Counter
	ReplReadFallbacks stats.Counter
	ReplReadWait      *stats.Histogram

	// Coalescing accounting. Drains counts drain cycles; DrainedRequests
	// sums the requests each cycle collected (their ratio is the mean
	// queue backlog per cycle). WriteBatches/WriteOps measure how many
	// wire-level write ops each DB.WriteBatch carried; ReadBatches/ReadOps
	// the same for DB.MultiGet.
	Drains          stats.Counter
	DrainedRequests stats.Counter
	WriteBatches    stats.Counter
	WriteOps        stats.Counter
	ReadBatches     stats.Counter
	ReadOps         stats.Counter

	// Merge coalescing. MergeOps counts logical counter merges received
	// over the wire (INCR requests plus batch merge ops); MergeFolded those
	// absorbed into an already-pending entry for the same key instead of
	// submitting their own — each folded op is a logical write the engine,
	// WAL, and replication stream never saw.
	MergeOps    stats.Counter
	MergeFolded stats.Counter

	// RateLimited counts requests refused by the per-connection token
	// bucket (Config.ConnRate).
	RateLimited stats.Counter

	// Cluster accounting. WrongShard counts keyed ops bounced with
	// StatusWrongShard (each carried the current map back to the client);
	// AcquireParked those parked because a handoff into this node covered
	// their slot; EpochRejected v2 reads refused because their token named a
	// different write lineage. Handoffs* count target-side slot migrations.
	WrongShard     stats.Counter
	AcquireParked  stats.Counter
	EpochRejected  stats.Counter
	Handoffs       stats.Counter
	HandoffsFailed stats.Counter
}

// ActiveConns returns the number of currently served connections.
func (s *Stats) ActiveConns() int64 { return s.connsActive.Load() }

// ActiveReplConns returns the number of attached follower streams.
func (s *Stats) ActiveReplConns() int64 { return s.replActive.Load() }

// OpCount returns completed requests for one op.
func (s *Stats) OpCount(op wire.Op) uint64 {
	if int(op) >= len(s.ops) {
		return 0
	}
	return s.ops[op].Load()
}

func (s *Stats) countOp(op wire.Op) {
	if int(op) < len(s.ops) {
		s.ops[op].Inc()
	}
}

// MeanWriteBatch is the mean wire write-ops per drained DB.WriteBatch —
// the end-to-end group-commit factor. >1 means pipelined writes coalesced.
func (s *Stats) MeanWriteBatch() float64 {
	return mean(s.WriteOps.Load(), s.WriteBatches.Load())
}

// MeanReadBatch is the mean point lookups per drained DB.MultiGet.
func (s *Stats) MeanReadBatch() float64 {
	return mean(s.ReadOps.Load(), s.ReadBatches.Load())
}

// MeanDrainDepth is the mean queue backlog consumed per drain cycle.
func (s *Stats) MeanDrainDepth() float64 {
	return mean(s.DrainedRequests.Load(), s.Drains.Load())
}

// LogicalWritesPerDBCall is the mean logical writes carried per engine
// write call: submitted batch entries plus the merges folding absorbed,
// over WriteBatches. The headline coalescing ratio — how many acked wire
// writes each physical engine call (and its WAL/replication record)
// represents.
func (s *Stats) LogicalWritesPerDBCall() float64 {
	return mean(s.WriteOps.Load()+s.MergeFolded.Load(), s.WriteBatches.Load())
}

func mean(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// String renders the server section of a STATS response: one "key value"
// per line, machine-parseable and stable.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "server.conns_accepted %d\n", s.ConnsAccepted.Load())
	fmt.Fprintf(&b, "server.conns_rejected %d\n", s.ConnsRejected.Load())
	fmt.Fprintf(&b, "server.conns_active %d\n", s.ActiveConns())
	fmt.Fprintf(&b, "server.bad_frames %d\n", s.BadFrames.Load())
	fmt.Fprintf(&b, "server.bad_requests %d\n", s.BadRequests.Load())
	fmt.Fprintf(&b, "server.repl_conns %d\n", s.ReplConns.Load())
	fmt.Fprintf(&b, "server.repl_active %d\n", s.ActiveReplConns())
	for _, op := range []wire.Op{
		wire.OpPing, wire.OpPut, wire.OpGet, wire.OpDel, wire.OpBatch, wire.OpMGet, wire.OpScan, wire.OpStats,
		wire.OpPutV2, wire.OpDelV2, wire.OpBatchV2, wire.OpGetV2, wire.OpMGetV2, wire.OpScanV2,
		wire.OpIncr, wire.OpIncrV2, wire.OpShardMap, wire.OpHandoff,
	} {
		fmt.Fprintf(&b, "server.ops.%s %d\n", strings.ToLower(op.String()), s.OpCount(op))
	}
	fmt.Fprintf(&b, "server.repl_read_served %d\n", s.ReplReadServed.Load())
	fmt.Fprintf(&b, "server.repl_read_parked %d\n", s.ReplReadParked.Load())
	fmt.Fprintf(&b, "server.repl_read_not_ready %d\n", s.ReplReadNotReady.Load())
	fmt.Fprintf(&b, "server.repl_read_fallbacks %d\n", s.ReplReadFallbacks.Load())
	if s.ReplReadWait != nil {
		fmt.Fprintf(&b, "server.repl_read_wait_mean_us %d\n", s.ReplReadWait.Mean().Microseconds())
		fmt.Fprintf(&b, "server.repl_read_wait_p99_us %d\n", s.ReplReadWait.P99().Microseconds())
	}
	fmt.Fprintf(&b, "server.drains %d\n", s.Drains.Load())
	fmt.Fprintf(&b, "server.drained_requests %d\n", s.DrainedRequests.Load())
	fmt.Fprintf(&b, "server.mean_drain_depth %.3f\n", s.MeanDrainDepth())
	fmt.Fprintf(&b, "server.write_batches %d\n", s.WriteBatches.Load())
	fmt.Fprintf(&b, "server.write_ops %d\n", s.WriteOps.Load())
	fmt.Fprintf(&b, "server.mean_write_batch %.3f\n", s.MeanWriteBatch())
	fmt.Fprintf(&b, "server.read_batches %d\n", s.ReadBatches.Load())
	fmt.Fprintf(&b, "server.read_ops %d\n", s.ReadOps.Load())
	fmt.Fprintf(&b, "server.mean_read_batch %.3f\n", s.MeanReadBatch())
	fmt.Fprintf(&b, "server.merge_ops %d\n", s.MergeOps.Load())
	fmt.Fprintf(&b, "server.merge_folded %d\n", s.MergeFolded.Load())
	fmt.Fprintf(&b, "server.logical_writes_per_dbcall %.3f\n", s.LogicalWritesPerDBCall())
	fmt.Fprintf(&b, "server.rate_limited %d\n", s.RateLimited.Load())
	fmt.Fprintf(&b, "server.wrong_shard %d\n", s.WrongShard.Load())
	fmt.Fprintf(&b, "server.acquire_parked %d\n", s.AcquireParked.Load())
	fmt.Fprintf(&b, "server.epoch_rejected %d\n", s.EpochRejected.Load())
	fmt.Fprintf(&b, "server.handoffs %d\n", s.Handoffs.Load())
	fmt.Fprintf(&b, "server.handoffs_failed %d\n", s.HandoffsFailed.Load())
	return b.String()
}
