package server

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/cluster"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
	"hyperdb/internal/wire"
)

// newClusterEnv builds an n-group sharded cluster over real TCP. Listeners
// are bound first so every node's seed map can name every address; each node
// is then a full serving stack — engine with a teed replication log (slot
// handoff streams from it), server with the node's ownership state.
func newClusterEnv(t *testing.T, n, slots int) []*testEnv {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	envs := make([]*testEnv, n)
	for i := 0; i < n; i++ {
		m, err := cluster.New(slots, addrs)
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		node, err := cluster.NewNode(m, uint32(i))
		if err != nil {
			t.Fatalf("cluster.NewNode: %v", err)
		}
		rlog := repl.NewLog(repl.LogConfig{})
		opts := hyperdb.Options{
			NVMeDevice:     device.New(device.UnthrottledProfile("nvme", 32<<20)),
			SATADevice:     device.New(device.UnthrottledProfile("sata", 1<<30)),
			Partitions:     4,
			CacheBytes:     4 << 20,
			MigrationBatch: 256 << 10,
			Tee:            rlog,
		}
		db, err := hyperdb.Open(opts)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		cfg := Config{
			DB:          db,
			OwnDB:       true,
			MaxInflight: 64,
			ReadWait:    2 * time.Second,
			Logf:        t.Logf,
			Repl:        &repl.Primary{DB: db, Log: rlog},
			Epoch:       rlog.Epoch,
			Cluster:     node,
		}
		srv, err := New(cfg)
		if err != nil {
			db.Close()
			t.Fatalf("server.New: %v", err)
		}
		go srv.Serve(lns[i])
		t.Cleanup(func() { srv.Shutdown() })
		envs[i] = &testEnv{srv: srv, addr: addrs[i], db: db, opts: opts}
	}
	return envs
}

func dialClusterTest(t *testing.T, seeds ...string) *client.Cluster {
	t.Helper()
	cc, err := client.DialCluster(client.ClusterOptions{Seeds: seeds})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

// keysOwnedBy generates count distinct keys whose slots belong to group g
// under m. Calls with different groups over the same tag partition the same
// key sequence, so the sets never collide.
func keysOwnedBy(t *testing.T, m *cluster.Map, g uint32, count int, tag string) [][]byte {
	t.Helper()
	var out [][]byte
	for i := 0; len(out) < count; i++ {
		if i > 100_000 {
			t.Fatalf("no keys hash to group %d", g)
		}
		k := []byte(fmt.Sprintf("%s-%04d", tag, i))
		if m.OwnerGroup(m.SlotOf(k)) == g {
			out = append(out, k)
		}
	}
	return out
}

// TestClusterHandoffUnderLoad moves every slot of group 0 onto group 1 while
// a routing client keeps writing and reading, then proves the flip: both
// nodes agree on the successor map (no slot double-owned), every acked key
// reads back through a fresh client, and a stale client is bounced with the
// newer map.
func TestClusterHandoffUnderLoad(t *testing.T) {
	envs := newClusterEnv(t, 2, 16)
	cc := dialClusterTest(t, envs[0].addr, envs[1].addr)

	const n = 200
	key := func(i int) []byte { return []byte(fmt.Sprintf("ho-%04d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("v%d", i)) }
	for i := 0; i < n; i++ {
		if err := cc.Put(key(i), val(i)); err != nil {
			t.Fatalf("load put: %v", err)
		}
	}
	seed := cc.Map()
	if seed.Version != 1 {
		t.Fatalf("seed map version %d, want 1", seed.Version)
	}
	moved := seed.SlotsOf(0)

	// Keep traffic flowing through the routing client for the whole
	// migration; bounces and parks must stay invisible to the caller.
	stop := make(chan struct{})
	loadDone := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				loadDone <- nil
				return
			default:
			}
			k := key(i % n)
			if err := cc.Put(k, val(i%n)); err != nil {
				loadDone <- fmt.Errorf("live put %s: %w", k, err)
				return
			}
			if v, err := cc.Get(k); err != nil || string(v) != string(val(i%n)) {
				loadDone <- fmt.Errorf("live get %s = %q, %v", k, v, err)
				return
			}
		}
	}()

	tc := dialTest(t, envs[1], 1)
	nm, err := tc.Handoff(moved)
	close(stop)
	if err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}

	if nm.Version != 2 {
		t.Fatalf("post-flip map version %d, want 2", nm.Version)
	}
	for _, s := range moved {
		if nm.OwnerGroup(s) != 1 {
			t.Fatalf("slot %d still owned by group %d", s, nm.OwnerGroup(s))
		}
	}
	m0 := envs[0].srv.cfg.Cluster.Map()
	m1 := envs[1].srv.cfg.Cluster.Map()
	if m0.Version != 2 || m1.Version != 2 {
		t.Fatalf("nodes disagree on version: %d vs %d", m0.Version, m1.Version)
	}
	for s := range m0.Slots {
		if m0.Slots[s] != m1.Slots[s] {
			t.Fatalf("slot %d double-owned: node0 says group %d, node1 says %d",
				s, m0.Slots[s], m1.Slots[s])
		}
	}

	// Every acked key reads back through a client that never saw the old map.
	cc2 := dialClusterTest(t, envs[1].addr)
	for i := 0; i < n; i++ {
		v, err := cc2.Get(key(i))
		if err != nil || string(v) != string(val(i)) {
			t.Fatalf("post-handoff get %s = %q, %v", key(i), v, err)
		}
	}

	// A client still holding the seed map is bounced with the successor.
	movedKey := keysOwnedBy(t, seed, 0, 1, "ho")[0]
	sc := dialTest(t, envs[0], 1)
	_, err = sc.Get(movedKey)
	var ws *client.WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("stale read of %s: %v, want WrongShardError", movedKey, err)
	}
	if ws.Map.Version != 2 {
		t.Fatalf("bounce carried map version %d, want 2", ws.Map.Version)
	}
	if envs[1].srv.Stats().Handoffs.Load() != 1 {
		t.Fatalf("target handoffs counter = %d, want 1", envs[1].srv.Stats().Handoffs.Load())
	}
}

// TestClusterHandoffSourceCrash kills the source node the moment the flip
// commits: every key acked before the migration must survive on the target,
// which now owns the whole keyspace.
func TestClusterHandoffSourceCrash(t *testing.T) {
	envs := newClusterEnv(t, 2, 16)
	cc := dialClusterTest(t, envs[0].addr, envs[1].addr)

	const n = 150
	key := func(i int) []byte { return []byte(fmt.Sprintf("cr-%04d", i)) }
	for i := 0; i < n; i++ {
		if err := cc.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("load put: %v", err)
		}
	}

	tc := dialTest(t, envs[1], 1)
	if _, err := tc.Handoff(cc.Map().SlotsOf(0)); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if err := envs[0].srv.Shutdown(); err != nil {
		t.Fatalf("source shutdown: %v", err)
	}

	c1 := dialTest(t, envs[1], 1)
	for i := 0; i < n; i++ {
		v, err := c1.Get(key(i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %s lost with the source: %q, %v", key(i), v, err)
		}
	}
}

// TestClusterHandoffRejected exercises the abort path: a handoff naming
// slots the target already owns has no source to pull from and must fail
// cleanly, leaving the map and serving untouched.
func TestClusterHandoffRejected(t *testing.T) {
	envs := newClusterEnv(t, 2, 16)
	cc := dialClusterTest(t, envs[0].addr)

	tc := dialTest(t, envs[1], 1)
	owned := cc.Map().SlotsOf(1)
	if _, err := tc.Handoff(owned[:1]); err == nil {
		t.Fatal("handoff of already-owned slots succeeded")
	}
	if got := envs[1].srv.cfg.Cluster.Map().Version; got != 1 {
		t.Fatalf("failed handoff bumped the map to version %d", got)
	}
	if err := cc.Put([]byte("after"), []byte("ok")); err != nil {
		t.Fatalf("cluster stopped serving after rejected handoff: %v", err)
	}
	if envs[1].srv.Stats().HandoffsFailed.Load() == 0 {
		t.Fatal("failed handoff not counted")
	}
}

// TestClusterWrongShardRetryStorm flips one slot back and forth between the
// groups with client traffic against that slot after every flip. The routing
// client must converge after each flip with a bounded number of bounces and
// map refetches — a bounce carries the newer map, so chasing a churning map
// costs about one retry per flip, not a storm.
func TestClusterWrongShardRetryStorm(t *testing.T) {
	envs := newClusterEnv(t, 2, 8)
	cc := dialClusterTest(t, envs[0].addr, envs[1].addr)

	m := cc.Map()
	slot := m.SlotsOf(0)[0]
	var keys [][]byte
	for i := 0; len(keys) < 10; i++ {
		k := []byte(fmt.Sprintf("storm-%04d", i))
		if m.SlotOf(k) == slot {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if err := cc.Put(k, []byte("seed")); err != nil {
			t.Fatalf("seed put: %v", err)
		}
	}

	ctls := []*client.Client{dialTest(t, envs[0], 1), dialTest(t, envs[1], 1)}
	const rounds = 6
	for r := 0; r < rounds; r++ {
		target := (r + 1) % 2
		if _, err := ctls[target].Handoff([]uint32{slot}); err != nil {
			t.Fatalf("flip %d: %v", r, err)
		}
		for j, k := range keys {
			if j%2 == 0 {
				if err := cc.Put(k, []byte(fmt.Sprintf("r%d", r))); err != nil {
					t.Fatalf("flip %d put %s: %v", r, k, err)
				}
			} else if _, err := cc.Get(k); err != nil {
				t.Fatalf("flip %d get %s: %v", r, k, err)
			}
		}
	}

	retries, refetches := cc.Retries(), cc.Refetches()
	if retries == 0 {
		t.Fatal("no wrong-shard bounces despite a churning map")
	}
	if retries > rounds*4 {
		t.Fatalf("retry storm: %d bounces over %d flips", retries, rounds)
	}
	if refetches > rounds {
		t.Fatalf("refetch storm: %d refetches over %d flips", refetches, rounds)
	}
	final := cc.Map()
	if final.Version != rounds+1 {
		t.Fatalf("final map version %d, want %d", final.Version, rounds+1)
	}
}

// TestClusterSessionPerShardTokens drives session consistency across two
// shards: a batch straddling both groups must fold each group's applied
// position into that group's own token (each shard mints an independent
// sequence/epoch line), reads gate per shard, and writes to one shard must
// not advance the other's token.
func TestClusterSessionPerShardTokens(t *testing.T) {
	envs := newClusterEnv(t, 2, 16)
	cc := dialClusterTest(t, envs[0].addr, envs[1].addr)
	m := cc.Map()
	k0 := keysOwnedBy(t, m, 0, 3, "sess")
	k1 := keysOwnedBy(t, m, 1, 3, "sess")
	all := append(append([][]byte{}, k0...), k1...)

	sess := client.NewClusterSession(cc, true)
	var ops []wire.BatchOp
	for _, k := range all {
		ops = append(ops, wire.BatchOp{Key: k, Value: append([]byte("b-"), k...)})
	}
	if err := sess.WriteBatch(ops); err != nil {
		t.Fatalf("straddling batch: %v", err)
	}

	toks := sess.Tokens()
	if len(toks) != 2 {
		t.Fatalf("want one token per group, got %v", toks)
	}
	t0, t1 := toks[m.Groups[0]], toks[m.Groups[1]]
	if t0.Seq == 0 || t0.Epoch == 0 || t1.Seq == 0 || t1.Epoch == 0 {
		t.Fatalf("unqualified shard tokens: %v / %v", t0, t1)
	}
	if t0.Epoch == t1.Epoch {
		t.Fatalf("distinct shards share epoch %d", t0.Epoch)
	}

	// Read-your-writes holds on both shards, gated per group.
	for _, k := range all {
		v, err := sess.Get(k)
		if err != nil || string(v) != "b-"+string(k) {
			t.Fatalf("session get %s = %q, %v", k, v, err)
		}
	}

	// A MultiGet straddling shards reassembles positionally.
	mixed := [][]byte{k1[0], k0[0], k1[1], k0[1]}
	vals, err := sess.MultiGet(mixed)
	if err != nil {
		t.Fatalf("straddling mget: %v", err)
	}
	for i, k := range mixed {
		if string(vals[i]) != "b-"+string(k) {
			t.Fatalf("mget[%d] (%s) = %q", i, k, vals[i])
		}
	}

	// A write to shard 0 advances only shard 0's token.
	pre := sess.Tokens()
	if err := sess.Put(k0[0], []byte("x")); err != nil {
		t.Fatalf("put: %v", err)
	}
	post := sess.Tokens()
	if post[m.Groups[0]].Seq <= pre[m.Groups[0]].Seq {
		t.Fatalf("shard 0 token did not advance: %v -> %v", pre[m.Groups[0]], post[m.Groups[0]])
	}
	if post[m.Groups[1]] != pre[m.Groups[1]] {
		t.Fatalf("untouched shard's token moved: %v -> %v", pre[m.Groups[1]], post[m.Groups[1]])
	}

	// The single-token fallback stays exact while keys live in one group…
	solo := client.NewClusterSession(cc, false)
	if err := solo.Put(k0[0], []byte("solo")); err != nil {
		t.Fatalf("solo put: %v", err)
	}
	if v, err := solo.Get(k0[0]); err != nil || string(v) != "solo" {
		t.Fatalf("solo get: %q, %v", v, err)
	}
	if tk := solo.Tokens()[""]; tk.Seq == 0 || tk.Epoch == 0 {
		t.Fatalf("solo token unqualified: %v", tk)
	}
	// …and is refused — not silently clamped — the moment its token's
	// lineage crosses shards: shard 1 cannot order shard 0's epoch.
	if _, err := solo.Get(k1[0]); !errors.Is(err, client.ErrNotReady) {
		t.Fatalf("cross-shard single-token get: %v, want ErrNotReady", err)
	}
}
