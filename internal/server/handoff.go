// Slot handoff: live migration of a shard-slot range between two primary
// groups, built on the replication subsystem's pinned-head snapshot stream.
//
// The target node drives the whole migration (runHandoffTarget, triggered
// by an OpHandoff admin request): it marks the slots as acquiring, dials
// the current owner, and pulls a consistent snapshot of the moving keys
// followed by a filtered tail of live writes. The source (serveHandoffSource)
// keeps serving the slots throughout; ownership flips only at the very end,
// in an ordering that makes losing an acked write impossible:
//
//  1. target applies the full snapshot, asks to flip (HANDOFF_FLIP)
//  2. source installs the successor map — from this instant its drainer
//     bounces moved-slot ops with WRONG_SHARD instead of committing them
//  3. source runs a drainer barrier: cycles are serial, so when it closes,
//     every write acked under the old map has committed to the log
//  4. flipSeq = log head ≥ every such write; WaitResolved(flipSeq) then a
//     pre-closed-stop cursor drain ships the remaining filtered tail
//  5. source answers the flip with the new map — written after the final
//     REPL_FRAME2, so by TCP stream order the target holds every pre-flip
//     write when the response arrives
//  6. target installs the new map and starts serving the slots
//
// Double ownership is impossible: the source stops serving at step 2 and
// the target starts at step 6, which strictly follows it. Between the two,
// clients park briefly on the target (its acquiring set covers the slots)
// or retry on WRONG_SHARD. A failure after step 2 strands the slots until
// the operator re-runs the handoff or restarts the group (maps are not
// persisted; a restart reverts to the configured seed map) — stranding is
// an availability gap, never data loss, since the source keeps the data.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"hyperdb"
	"hyperdb/internal/cluster"
	"hyperdb/internal/keys"
	"hyperdb/internal/repl"
	"hyperdb/internal/wire"
)

// handoffDialTimeout bounds the target's dial to the source so a shutdown
// mid-handoff cannot stall readerWG on an unresponsive peer.
const handoffDialTimeout = 5 * time.Second

// sweepPairs bounds the scan pages of the target's pre-migration sweep.
const sweepPairs = 256

// serveHandoffSource owns the source half of a migration on the reader
// goroutine of the connection the target dialed. Like serveRepl it claims
// the whole socket from the first frame: the writer goroutine is evicted
// (detached) and the push stream becomes the socket's single writer.
func (c *conn) serveHandoffSource(f wire.Frame, first bool) {
	srv := c.srv
	refuse := func(msg string) {
		srv.stats.BadRequests.Inc()
		c.respondError(f.ID, f.Op, wire.StatusBadRequest, msg)
		c.kill()
	}
	if srv.cfg.Cluster == nil || srv.cfg.Repl == nil {
		refuse("cluster mode not enabled")
		return
	}
	if !first {
		refuse("HANDOFF_HELLO must be the first frame")
		return
	}
	targetGroup, slots, err := wire.DecodeHandoffHelloReq(f.Payload)
	if err != nil {
		refuse(err.Error())
		return
	}
	n := srv.cfg.Cluster
	m := n.Map()
	if int(targetGroup) >= len(m.Groups) || targetGroup == n.Self() {
		refuse(fmt.Sprintf("bad handoff target group %d", targetGroup))
		return
	}
	for _, sl := range slots {
		if int(sl) >= len(m.Slots) || m.Slots[sl] != n.Self() {
			refuse(fmt.Sprintf("slot %d not owned by this node", sl))
			return
		}
	}
	c.detached.Store(true)
	c.kill()
	<-c.wdone
	srv.logf("conn %s: handoff source streaming %d slots to group %d", c.nc.RemoteAddr(), len(slots), targetGroup)
	if err := srv.runHandoffSource(c, f.ID, targetGroup, slots); err != nil && !srv.closing.Load() {
		srv.logf("conn %s: handoff source ended: %v", c.nc.RemoteAddr(), err)
	}
	c.nc.Close()
}

// runHandoffSource streams the moving range to the target and performs the
// ownership flip when asked. See the package comment for the ordering that
// makes the flip safe.
func (s *Server) runHandoffSource(c *conn, helloID uint64, targetGroup uint32, slots []uint32) error {
	n := s.cfg.Cluster
	rlog := s.cfg.Repl.Log
	slotSet := make(map[uint32]struct{}, len(slots))
	for _, sl := range slots {
		slotSet[sl] = struct{}{}
	}
	m := n.Map()
	keep := func(key []byte) bool {
		_, ok := slotSet[m.SlotOf(key)]
		return ok
	}

	// The pin holds the whole migration, not just the snapshot: it keeps
	// the tail window shippable however long the transfer takes, so the
	// cursor can never overrun mid-handoff.
	snapSeq := rlog.PinHead()
	defer rlog.Unpin(snapSeq)
	err := writeHandoffFrame(c.bw, wire.Frame{
		Op: wire.OpHandoffHello, Status: wire.StatusOK, ID: helloID,
		Payload: wire.AppendHandoffHelloResp(nil, m.Version, snapSeq),
	})
	if err != nil {
		return err
	}
	if err := s.cfg.Repl.StreamSnapshotChunks(c.bw, snapSeq, keep); err != nil {
		return err
	}
	cur, ok := rlog.Subscribe(snapSeq)
	if !ok {
		return fmt.Errorf("handoff: snapshot seq %d below floor %d despite pin", snapSeq, rlog.Floor())
	}

	// The flip listener is the socket's only reader from here: exactly one
	// HANDOFF_FLIP request is legal, and anything else (including a dead
	// target) must wake the ship loop below.
	var flipID uint64
	flip := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		fr, err := wire.ReadFrame(c.br, s.cfg.MaxFrame)
		if err != nil {
			readErr <- err
			return
		}
		if fr.Op != wire.OpHandoffFlip || len(fr.Payload) != 0 {
			readErr <- fmt.Errorf("handoff: expected HANDOFF_FLIP, got %s", fr.Op)
			return
		}
		flipID = fr.ID
		close(flip)
	}()
	var stopErr error
	stopShip := make(chan struct{})
	go func() {
		defer close(stopShip)
		select {
		case <-flip:
		case err := <-readErr:
			stopErr = err
		case <-s.stopWait:
			stopErr = errors.New("handoff: server shutting down")
		}
	}()

	// Ship the filtered tail until the target asks to flip.
	for {
		base, ops, err := cur.Next(stopShip)
		if err != nil {
			if errors.Is(err, repl.ErrStopped) {
				break
			}
			return err
		}
		if payload := repl.AppendFilteredFrame(base, ops, keep); payload != nil {
			if err := writeHandoffFrame(c.bw, wire.Frame{Op: wire.OpReplFrame2, Status: wire.StatusOK, ID: base, Payload: payload}); err != nil {
				return err
			}
		}
	}
	select {
	case <-flip:
	default:
		if stopErr == nil {
			stopErr = errors.New("handoff: stream ended before flip")
		}
		return stopErr
	}

	// Flip. Install first, so the drainer checks every later cycle under
	// the new map; the barrier then proves all old-map acked writes have
	// committed, bounding them by the log head.
	cm := n.Map()
	for _, sl := range slots {
		if cm.Slots[sl] != n.Self() {
			return fmt.Errorf("handoff: lost slot %d before flip", sl)
		}
	}
	next, err := cm.Reassign(slots, targetGroup)
	if err != nil {
		return err
	}
	if !n.Install(next) {
		return errors.New("handoff: map version raced at flip")
	}
	barrier := make(chan struct{})
	s.queue <- &request{barrier: barrier}
	<-barrier
	flipSeq := rlog.Head()
	if err := rlog.WaitResolved(flipSeq, s.stopWait); err != nil {
		return err
	}
	drained := make(chan struct{})
	close(drained)
	for {
		base, ops, err := cur.Next(drained)
		if err != nil {
			if errors.Is(err, repl.ErrStopped) {
				break
			}
			return err
		}
		if base > flipSeq {
			break
		}
		if payload := repl.AppendFilteredFrame(base, ops, keep); payload != nil {
			if err := writeHandoffFrame(c.bw, wire.Frame{Op: wire.OpReplFrame2, Status: wire.StatusOK, ID: base, Payload: payload}); err != nil {
				return err
			}
		}
	}
	s.logf("handoff: flipped %d slots to group %d (map v%d, flip seq %d)", len(slots), targetGroup, next.Version, flipSeq)
	return writeHandoffFrame(c.bw, wire.Frame{
		Op: wire.OpHandoffFlip, Status: wire.StatusOK, ID: flipID,
		Payload: next.Encode(nil),
	})
}

// runHandoffTarget answers an OpHandoff admin request: pull the named slots
// from their current owner onto this node. It runs on its own goroutine
// holding one in-flight slot; the reply releases it.
func (s *Server) runHandoffTarget(r *request) {
	nm, err := s.handoffTarget(r.slots)
	if err != nil {
		s.stats.HandoffsFailed.Inc()
		s.logf("handoff: pull of %d slots failed: %v", len(r.slots), err)
		r.fail(err)
		return
	}
	s.stats.Handoffs.Inc()
	s.logf("handoff: acquired %d slots (map v%d)", len(r.slots), nm.Version)
	r.reply(wire.StatusOK, nm.Encode(nil))
}

func (s *Server) handoffTarget(slots []uint32) (*cluster.Map, error) {
	n := s.cfg.Cluster
	m := n.Map()
	src := -1
	for _, sl := range slots {
		if int(sl) >= len(m.Slots) {
			return nil, fmt.Errorf("slot %d out of range", sl)
		}
		g := int(m.Slots[sl])
		if g == int(n.Self()) {
			return nil, fmt.Errorf("slot %d already owned", sl)
		}
		if src == -1 {
			src = g
		} else if src != g {
			return nil, fmt.Errorf("slots span groups %d and %d; hand off from one source at a time", src, g)
		}
	}
	if err := n.BeginAcquire(slots); err != nil {
		return nil, err
	}
	nm, err := s.pullSlots(m, uint32(src), slots)
	if err != nil {
		n.AbortAcquire(slots)
		return nil, err
	}
	// FinishAcquire installs the map and clears the acquiring marks; parked
	// requests requeue and pass the ownership check on their next cycle.
	n.FinishAcquire(slots, nm)
	return nm, nil
}

// pullSlots performs the target side of the migration protocol against the
// source at m.Groups[src] and returns the post-flip map.
func (s *Server) pullSlots(m *cluster.Map, src uint32, slots []uint32) (*cluster.Map, error) {
	slotSet := make(map[uint32]struct{}, len(slots))
	for _, sl := range slots {
		slotSet[sl] = struct{}{}
	}
	inMove := func(key []byte) bool {
		_, ok := slotSet[m.SlotOf(key)]
		return ok
	}
	// Pre-sweep: drop any local keys in the moving range. An earlier
	// aborted pull may have left partial state the snapshot would not
	// overwrite (keys deleted at the source since), and the stream below
	// carries only live pairs.
	if err := s.sweepSlots(inMove); err != nil {
		return nil, err
	}

	d := net.Dialer{Timeout: handoffDialTimeout}
	nc, err := d.Dial("tcp", m.Groups[src])
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		// Translate shutdown into a socket close so blocking reads abort.
		select {
		case <-s.stopWait:
			nc.Close()
		case <-watch:
		}
	}()
	br := bufio.NewReaderSize(nc, readBufSize)
	bw := bufio.NewWriterSize(nc, readBufSize)

	err = writeHandoffFrame(bw, wire.Frame{
		Op: wire.OpHandoffHello, ID: 1,
		Payload: wire.AppendHandoffHelloReq(nil, s.cfg.Cluster.Self(), slots),
	})
	if err != nil {
		return nil, err
	}
	hello, err := wire.ReadFrame(br, s.cfg.MaxFrame)
	if err != nil {
		return nil, err
	}
	if hello.Op != wire.OpHandoffHello || hello.Status != wire.StatusOK {
		return nil, fmt.Errorf("handoff: source refused: op=%s status=%d %q", hello.Op, hello.Status, hello.Payload)
	}
	if _, _, err := wire.DecodeHandoffHelloResp(hello.Payload); err != nil {
		return nil, err
	}

	// Snapshot phase. Chunks apply as ordinary local batches — this node is
	// a primary in its own right: it mints its own sequences and tees its
	// own log, so its followers and session tokens see the migrated keys as
	// fresh local writes.
	for {
		fr, err := wire.ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			return nil, err
		}
		if fr.Op != wire.OpReplSnapshot {
			return nil, fmt.Errorf("handoff: unexpected op %s during snapshot", fr.Op)
		}
		_, kvs, done, err := wire.DecodeReplSnapshot(fr.Payload)
		if err != nil {
			return nil, err
		}
		if len(kvs) > 0 {
			ops := make([]hyperdb.BatchOp, len(kvs))
			for i, kv := range kvs {
				ops[i] = hyperdb.BatchOp{
					Key:   append([]byte(nil), kv.Key...),
					Value: append([]byte(nil), kv.Value...),
				}
			}
			if _, err := s.cfg.DB.WriteBatchSeq(ops); err != nil {
				return nil, err
			}
		}
		if done {
			break
		}
	}

	// Ask for the flip, then keep applying tail frames until the response
	// arrives. The source writes it after the final REPL_FRAME2, so stream
	// order guarantees this node holds every pre-flip write by then.
	if err := writeHandoffFrame(bw, wire.Frame{Op: wire.OpHandoffFlip, ID: 2}); err != nil {
		return nil, err
	}
	for {
		fr, err := wire.ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			return nil, err
		}
		switch fr.Op {
		case wire.OpReplFrame2:
			_, _, wops, err := wire.DecodeReplFrame2(fr.Payload)
			if err != nil {
				return nil, err
			}
			if len(wops) == 0 {
				continue
			}
			ops := make([]hyperdb.BatchOp, len(wops))
			for i, op := range wops {
				ops[i] = hyperdb.BatchOp{
					Key:    append([]byte(nil), op.Key...),
					Value:  append([]byte(nil), op.Value...),
					Delete: op.Delete,
					Merge:  op.Merge,
					Delta:  op.Delta,
				}
			}
			if _, err := s.cfg.DB.WriteBatchSeq(ops); err != nil {
				return nil, err
			}
		case wire.OpHandoffFlip:
			if fr.Status != wire.StatusOK {
				return nil, fmt.Errorf("handoff: flip refused: %q", fr.Payload)
			}
			return cluster.Decode(fr.Payload)
		default:
			return nil, fmt.Errorf("handoff: unexpected op %s while tailing", fr.Op)
		}
	}
}

// sweepSlots deletes every local key the membership test covers, in
// bounded scan pages.
func (s *Server) sweepSlots(inMove func(key []byte) bool) error {
	var start []byte
	for {
		kvs, err := s.cfg.DB.Scan(start, sweepPairs)
		if err != nil {
			return err
		}
		if len(kvs) == 0 {
			return nil
		}
		var dels []hyperdb.BatchOp
		for _, kv := range kvs {
			if inMove(kv.Key) {
				dels = append(dels, hyperdb.BatchOp{Key: append([]byte(nil), kv.Key...), Delete: true})
			}
		}
		if len(dels) > 0 {
			if _, err := s.cfg.DB.WriteBatchSeq(dels); err != nil {
				return err
			}
		}
		if len(kvs) < sweepPairs {
			return nil
		}
		start = keys.Successor(kvs[len(kvs)-1].Key)
	}
}

func writeHandoffFrame(bw *bufio.Writer, f wire.Frame) error {
	if _, err := bw.Write(wire.AppendFrame(nil, f)); err != nil {
		return err
	}
	return bw.Flush()
}
