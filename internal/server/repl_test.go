package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
	"hyperdb/internal/wire"
)

// newReplEnv builds a served engine with replication wired: follower mode
// and/or a log tee plus the server-side Primary.
func newReplEnv(t *testing.T, follower bool, logCfg *repl.LogConfig) (*testEnv, *repl.Log) {
	t.Helper()
	opts := hyperdb.Options{
		NVMeDevice:     device.New(device.UnthrottledProfile("nvme", 32<<20)),
		SATADevice:     device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:     4,
		CacheBytes:     4 << 20,
		MigrationBatch: 256 << 10,
		Follower:       follower,
	}
	var log *repl.Log
	if logCfg != nil {
		log = repl.NewLog(*logCfg)
		opts.Tee = log
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cfg := Config{DB: db, OwnDB: true, MaxInflight: 64, Logf: t.Logf}
	if log != nil {
		cfg.Repl = &repl.Primary{DB: db, Log: log}
	}
	srv, err := New(cfg)
	if err != nil {
		db.Close()
		t.Fatalf("server.New: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return &testEnv{srv: srv, addr: addr.String(), db: db, opts: opts}, log
}

// TestReplOverTCP runs a full primary/follower pair through the real
// serving path: the follower dials the primary's listener, hands itself
// over with REPL_HELLO, and both nodes serve clients throughout.
func TestReplOverTCP(t *testing.T) {
	prim, plog := newReplEnv(t, false, &repl.LogConfig{SyncAck: true})
	fol, flog := newReplEnv(t, true, nil)
	_ = flog

	// The follower applier dials the primary like hyperd would.
	nc, err := net.Dial("tcp", prim.addr)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	runDone := make(chan error, 1)
	go func() {
		runDone <- (&repl.Follower{DB: fol.db}).Run(nc, stop)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for len(plog.Status().Peers) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Client writes to the primary server; sync mode means a returned Put
	// is already applied downstream.
	pc := dialTest(t, prim, 1)
	for i := 0; i < 50; i++ {
		if err := pc.Put([]byte(fmt.Sprintf("tcp-%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pc.Delete([]byte("tcp-007")); err != nil {
		t.Fatal(err)
	}

	// Reads served by the follower's own server see everything.
	fc := dialTest(t, fol, 1)
	for _, i := range []int{0, 25, 49} {
		v, err := fc.Get([]byte(fmt.Sprintf("tcp-%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("follower read %d: %q %v", i, v, err)
		}
	}
	if _, err := fc.Get([]byte("tcp-007")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("follower delete: %v", err)
	}

	// Follower rejects foreground writes at the wire level.
	if err := fc.Put([]byte("x"), []byte("y")); err == nil {
		t.Fatal("follower accepted a foreground write")
	}

	// Stats expose the replication section on both sides.
	ptext, err := pc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ptext, "repl.role primary") || !strings.Contains(ptext, "repl.followers 1") {
		t.Fatalf("primary stats missing repl section:\n%s", ptext)
	}
	if !strings.Contains(ptext, "lag 0") {
		t.Fatalf("primary stats lag not converged:\n%s", ptext)
	}
	ftext, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ftext, "repl.role follower") || !strings.Contains(ftext, "repl.applied") {
		t.Fatalf("follower stats missing repl section:\n%s", ftext)
	}

	close(stop)
	if err := <-runDone; err != nil {
		t.Fatalf("follower run: %v", err)
	}
}

// rawConn dials and returns a frame-level connection for protocol tests.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func sendFrame(t *testing.T, nc net.Conn, f wire.Frame) {
	t.Helper()
	if _, err := nc.Write(wire.AppendFrame(nil, f)); err != nil {
		t.Fatal(err)
	}
}

func TestReplHelloMustBeFirstFrame(t *testing.T) {
	env, _ := newReplEnv(t, false, &repl.LogConfig{})
	nc := rawDial(t, env.addr)
	sendFrame(t, nc, wire.Frame{Op: wire.OpPing, ID: 1})
	f, err := wire.ReadFrame(nc, wire.MaxFrame)
	if err != nil || f.Status != wire.StatusOK {
		t.Fatalf("ping: %+v %v", f, err)
	}
	sendFrame(t, nc, wire.Frame{Op: wire.OpReplHello, ID: 2, Payload: wire.AppendReplHelloReq(nil, 0, 0, 0)})
	f, err = wire.ReadFrame(nc, wire.MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Status != wire.StatusBadRequest {
		t.Fatalf("late hello got status %d, want BadRequest", f.Status)
	}
}

func TestReplHelloRejectedWhenDisabled(t *testing.T) {
	env := newTestEnv(t, nil) // no Repl configured
	nc := rawDial(t, env.addr)
	sendFrame(t, nc, wire.Frame{Op: wire.OpReplHello, ID: 1, Payload: wire.AppendReplHelloReq(nil, 0, 0, 0)})
	f, err := wire.ReadFrame(nc, wire.MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Status != wire.StatusBadRequest {
		t.Fatalf("hello on non-repl server got status %d, want BadRequest", f.Status)
	}
}

func TestReplStreamOpsRejectedAsRequests(t *testing.T) {
	env := newTestEnv(t, nil)
	nc := rawDial(t, env.addr)
	sendFrame(t, nc, wire.Frame{Op: wire.OpReplAck, ID: 1, Payload: wire.AppendReplAck(nil, 5)})
	f, err := wire.ReadFrame(nc, wire.MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Status != wire.StatusBadRequest {
		t.Fatalf("stray ack got status %d, want BadRequest", f.Status)
	}
}
