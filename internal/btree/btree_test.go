package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGetDelete(t *testing.T) {
	m := New[int]()
	for i := 0; i < 1000; i++ {
		m.Set([]byte(fmt.Sprintf("%04d", i)), i)
	}
	if m.Len() != 1000 {
		t.Fatalf("len = %d", m.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := m.Get([]byte(fmt.Sprintf("%04d", i)))
		if !ok || v != i {
			t.Fatalf("get %d = %d %v", i, v, ok)
		}
	}
	for i := 0; i < 1000; i += 2 {
		if !m.Delete([]byte(fmt.Sprintf("%04d", i))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if m.Len() != 500 {
		t.Fatalf("len after deletes = %d", m.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := m.Get([]byte(fmt.Sprintf("%04d", i)))
		if ok != (i%2 == 1) {
			t.Fatalf("key %d presence = %v", i, ok)
		}
	}
	if m.Delete([]byte("0000")) {
		t.Fatal("double delete returned true")
	}
}

func TestOverwrite(t *testing.T) {
	m := New[string]()
	m.Set([]byte("k"), "v1")
	m.Set([]byte("k"), "v2")
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if v, _ := m.Get([]byte("k")); v != "v2" {
		t.Fatalf("v = %s", v)
	}
}

func TestAscendRange(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Set([]byte(fmt.Sprintf("%03d", i)), i)
	}
	var got []int
	m.Ascend([]byte("010"), []byte("020"), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("got %v", got)
	}
	// Early stop.
	got = nil
	m.Ascend(nil, nil, func(k []byte, v int) bool {
		got = append(got, v)
		return len(got) < 5
	})
	if len(got) != 5 {
		t.Fatalf("early stop got %d", len(got))
	}
	// Unbounded walks all, in order.
	got = nil
	m.Ascend(nil, nil, func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 100 || !sort.IntsAreSorted(got) {
		t.Fatalf("full ascend = %d entries sorted=%v", len(got), sort.IntsAreSorted(got))
	}
}

func TestMinMax(t *testing.T) {
	m := New[int]()
	if m.Min() != nil || m.Max() != nil {
		t.Fatal("empty tree min/max should be nil")
	}
	for _, k := range []string{"m", "c", "z", "a", "q"} {
		m.Set([]byte(k), 0)
	}
	if string(m.Min()) != "a" || string(m.Max()) != "z" {
		t.Fatalf("min=%q max=%q", m.Min(), m.Max())
	}
}

// TestAgainstReferenceModel drives random operations against map+sort.
func TestAgainstReferenceModel(t *testing.T) {
	m := New[uint64]()
	ref := map[string]uint64{}
	rng := rand.New(rand.NewSource(77))
	for op := 0; op < 200000; op++ {
		k := fmt.Sprintf("%05d", rng.Intn(5000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			m.Set([]byte(k), v)
			ref[k] = v
		case 2:
			got := m.Delete([]byte(k))
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: delete(%s) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		}
		if op%10000 == 0 {
			if m.Len() != len(ref) {
				t.Fatalf("op %d: len %d != ref %d", op, m.Len(), len(ref))
			}
		}
	}
	// Final full comparison including iteration order.
	var refKeys []string
	for k := range ref {
		refKeys = append(refKeys, k)
	}
	sort.Strings(refKeys)
	i := 0
	m.Ascend(nil, nil, func(k []byte, v uint64) bool {
		if string(k) != refKeys[i] {
			t.Fatalf("iter %d: %q != %q", i, k, refKeys[i])
		}
		if v != ref[refKeys[i]] {
			t.Fatalf("iter %d: value mismatch", i)
		}
		i++
		return true
	})
	if i != len(refKeys) {
		t.Fatalf("iterated %d, want %d", i, len(refKeys))
	}
}

func TestQuickSetThenGet(t *testing.T) {
	m := New[int]()
	i := 0
	prop := func(key []byte) bool {
		if len(key) == 0 {
			return true
		}
		i++
		m.Set(append([]byte(nil), key...), i)
		v, ok := m.Get(key)
		return ok && v == i
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequentialAndReverse(t *testing.T) {
	// Sequential insert then reverse delete stresses rebalancing.
	m := New[int]()
	const n = 50000
	for i := 0; i < n; i++ {
		m.Set(keyOf(i), i)
	}
	for i := n - 1; i >= 0; i-- {
		if !m.Delete(keyOf(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d", m.Len())
	}
}

func keyOf(i int) []byte {
	b := make([]byte, 8)
	for j := 7; j >= 0; j-- {
		b[j] = byte(i)
		i >>= 8
	}
	return b
}

func BenchmarkBTreeSet(b *testing.B) {
	m := New[int]()
	for i := 0; i < b.N; i++ {
		m.Set(keyOf(i), i)
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	m := New[int]()
	for i := 0; i < 100000; i++ {
		m.Set(keyOf(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keyOf(i % 100000))
	}
}

func TestBytesKeysNotAliased(t *testing.T) {
	m := New[int]()
	k := []byte("mutable")
	m.Set(bytes.Clone(k), 1)
	k[0] = 'X'
	if _, ok := m.Get([]byte("mutable")); !ok {
		t.Fatal("stored key should be intact")
	}
}
