// Package btree implements the in-memory B-tree index HyperDB keeps over
// the NVMe tier (§3.6): each entry maps a user key to its location in zone
// storage. Keys are ordered bytewise so range scans see keys in order.
//
// The tree is not internally synchronised; HyperDB wraps it in the owning
// partition's lock, matching the paper's shared-nothing design.
package btree

import "bytes"

const (
	degree   = 32           // minimum children per internal node
	maxItems = 2*degree - 1 // maximum items per node
	minItems = degree - 1   // minimum items per non-root node
)

type item[V any] struct {
	key []byte
	val V
}

type node[V any] struct {
	items    []item[V]
	children []*node[V] // nil for leaves
}

func (n *node[V]) leaf() bool { return len(n.children) == 0 }

// search returns the index of the first item with key >= k and whether an
// exact match sits at that index.
func (n *node[V]) search(k []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].key, k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.items) && bytes.Equal(n.items[lo].key, k)
}

// Map is an ordered map from []byte keys to V.
type Map[V any] struct {
	root *node[V]
	size int
}

// New returns an empty tree.
func New[V any]() *Map[V] { return &Map[V]{} }

// Len returns the number of entries.
func (t *Map[V]) Len() int { return t.size }

// Get returns the value for key k.
func (t *Map[V]) Get(k []byte) (V, bool) {
	var zero V
	n := t.root
	for n != nil {
		i, ok := n.search(k)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			return zero, false
		}
		n = n.children[i]
	}
	return zero, false
}

// Ref returns a pointer to the stored value for k, or nil if absent. It
// lets an update-in-place caller pay one descent instead of Get+Set and
// skip re-cloning the key. The pointer is invalidated by the next
// structural change (any Set or Delete); callers must hold whatever lock
// guards the tree for as long as they use it.
func (t *Map[V]) Ref(k []byte) *V {
	n := t.root
	for n != nil {
		i, ok := n.search(k)
		if ok {
			return &n.items[i].val
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
	return nil
}

// Set inserts or replaces the value for key k. The key slice is stored as
// given; callers that reuse buffers must clone first.
func (t *Map[V]) Set(k []byte, v V) {
	if t.root == nil {
		t.root = &node[V]{items: []item[V]{{key: k, val: v}}}
		t.size = 1
		return
	}
	if len(t.root.items) >= maxItems {
		old := t.root
		t.root = &node[V]{children: []*node[V]{old}}
		t.root.splitChild(0)
	}
	if t.root.insert(k, v) {
		t.size++
	}
}

// splitChild splits the full child at index i, hoisting its median.
func (n *node[V]) splitChild(i int) {
	child := n.children[i]
	mid := len(child.items) / 2
	median := child.items[mid]

	right := &node[V]{items: append([]item[V]{}, child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node[V]{}, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, item[V]{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insert adds k below n (which must not be full). Returns true if the tree
// grew (false = replaced existing).
func (n *node[V]) insert(k []byte, v V) bool {
	i, ok := n.search(k)
	if ok {
		n.items[i].val = v
		return false
	}
	if n.leaf() {
		n.items = append(n.items, item[V]{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item[V]{key: k, val: v}
		return true
	}
	if len(n.children[i].items) >= maxItems {
		n.splitChild(i)
		if c := bytes.Compare(k, n.items[i].key); c > 0 {
			i++
		} else if c == 0 {
			n.items[i].val = v
			return false
		}
	}
	return n.children[i].insert(k, v)
}

// Delete removes key k, reporting whether it was present.
func (t *Map[V]) Delete(k []byte) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.delete(k)
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if len(t.root.items) == 0 && t.root.leaf() {
		t.root = nil
	}
	if deleted {
		t.size--
	}
	return deleted
}

func (n *node[V]) delete(k []byte) bool {
	i, ok := n.search(k)
	if n.leaf() {
		if !ok {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if ok {
		// Replace with predecessor from the left subtree, then delete it there.
		pred := n.children[i].max()
		n.items[i] = pred
		n.ensureChild(i)
		// The item may have moved during rebalancing; re-resolve.
		j, stillHere := n.search(pred.key)
		if stillHere {
			return n.children[j].delete(pred.key)
		}
		return n.children[j].delete(pred.key)
	}
	n.ensureChild(i)
	j, _ := n.search(k)
	return n.children[j].delete(k)
}

func (n *node[V]) max() item[V] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// ensureChild guarantees children[i] has > minItems items before descending,
// borrowing from a sibling or merging as needed.
func (n *node[V]) ensureChild(i int) {
	if i >= len(n.children) {
		i = len(n.children) - 1
	}
	child := n.children[i]
	if len(child.items) > minItems {
		return
	}
	// Borrow from left sibling.
	if i > 0 && len(n.children[i-1].items) > minItems {
		left := n.children[i-1]
		child.items = append([]item[V]{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append([]*node[V]{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
		return
	}
	// Borrow from right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].items) > minItems {
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = right.items[1:]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
		return
	}
	// Merge with a sibling.
	if i > 0 {
		i--
	}
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend visits every entry with lo <= key < hi in order (nil bounds are
// open). Return false from fn to stop early. fn must not mutate the tree —
// collect keys and apply changes after the walk.
func (t *Map[V]) Ascend(lo, hi []byte, fn func(k []byte, v V) bool) {
	if t.root != nil {
		t.root.ascend(lo, hi, fn)
	}
}

func (n *node[V]) ascend(lo, hi []byte, fn func(k []byte, v V) bool) bool {
	start := 0
	if lo != nil {
		start, _ = n.search(lo)
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(lo, hi, fn) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		k := n.items[i].key
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return false
		}
		if lo != nil && bytes.Compare(k, lo) < 0 {
			continue
		}
		if !fn(k, n.items[i].val) {
			return false
		}
	}
	return true
}

// Min returns the smallest key, or nil when empty.
func (t *Map[V]) Min() []byte {
	if t.root == nil {
		return nil
	}
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0].key
}

// Max returns the largest key, or nil when empty.
func (t *Map[V]) Max() []byte {
	if t.root == nil {
		return nil
	}
	return t.root.max().key
}
