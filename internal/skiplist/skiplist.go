// Package skiplist provides the sorted in-memory write buffer (MemTable)
// used by every LSM engine in this repository. The design follows LevelDB's
// memtable: a probabilistic skip list ordered by internal key, safe for any
// number of concurrent readers alongside writers that are serialised
// externally (the engines serialise writes per partition through the WAL
// group-commit path anyway).
package skiplist

import (
	"sync"
	"sync/atomic"

	"hyperdb/internal/keys"
)

const maxHeight = 12

type node struct {
	key   keys.InternalKey
	value []byte
	next  [maxHeight]atomic.Pointer[node]
}

// SkipList is a sorted map from internal key to value. Readers never block;
// Insert takes an internal mutex so multiple writers are also safe, at the
// cost of serialising them.
type SkipList struct {
	head    *node
	height  atomic.Int32
	mu      sync.Mutex
	rnd     uint64
	count   atomic.Int64
	byteSz  atomic.Int64
	dataCap int64
}

// New returns an empty skip list.
func New() *SkipList {
	s := &SkipList{head: &node{}, rnd: 0x9E3779B97F4A7C15}
	s.height.Store(1)
	return s
}

// randomHeight draws a geometric height with p = 1/4, LevelDB-style.
// Called under mu.
func (s *SkipList) randomHeight() int {
	// xorshift64*
	s.rnd ^= s.rnd >> 12
	s.rnd ^= s.rnd << 25
	s.rnd ^= s.rnd >> 27
	r := s.rnd * 0x2545F4914F6CDD1D
	h := 1
	for h < maxHeight && r&3 == 0 {
		h++
		r >>= 2
	}
	return h
}

// findGE locates the first node with key >= target, filling prev with the
// rightmost node before target on every level when prev != nil.
func (s *SkipList) findGE(target keys.InternalKey, prev *[maxHeight]*node) *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && keys.Compare(next.key, target) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// Insert adds an entry. Duplicate internal keys (same user key, seq, kind)
// overwrite in place, which never happens in normal engine operation because
// sequence numbers are unique.
func (s *SkipList) Insert(key keys.InternalKey, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var prev [maxHeight]*node
	if existing := s.findGE(key, &prev); existing != nil && keys.Compare(existing.key, key) == 0 {
		s.byteSz.Add(int64(len(value)) - int64(len(existing.value)))
		existing.value = value
		return
	}

	h := s.randomHeight()
	if cur := int(s.height.Load()); h > cur {
		for i := cur; i < h; i++ {
			prev[i] = s.head
		}
		s.height.Store(int32(h))
	}

	n := &node{key: key, value: value}
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n)
	}
	s.count.Add(1)
	s.byteSz.Add(int64(len(key.User)) + 16 + int64(len(value)))
}

// Get returns the newest version of user key u visible at snapshot seq.
// ok is false when no version exists; a tombstone returns ok=true with
// kind=KindDelete so callers can stop searching older structures.
func (s *SkipList) Get(u []byte, seq uint64) (value []byte, kind keys.Kind, ok bool) {
	n := s.findGE(keys.MakeSearchKey(u, seq), nil)
	if n == nil || string(n.key.User) != string(u) {
		return nil, 0, false
	}
	return n.value, n.key.Kind, true
}

// Len returns the number of entries.
func (s *SkipList) Len() int { return int(s.count.Load()) }

// ApproxBytes estimates the memory held by keys and values.
func (s *SkipList) ApproxBytes() int64 { return s.byteSz.Load() }

// Iterator walks the list in internal-key order. It is valid as long as the
// list exists; concurrent inserts may or may not be observed.
type Iterator struct {
	list *SkipList
	node *node
}

// Iter returns an iterator positioned before the first entry.
func (s *SkipList) Iter() *Iterator { return &Iterator{list: s} }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.node != nil }

// First moves to the smallest entry.
func (it *Iterator) First() { it.node = it.list.head.next[0].Load() }

// Next advances the iterator.
func (it *Iterator) Next() {
	if it.node != nil {
		it.node = it.node.next[0].Load()
	}
}

// SeekGE positions at the first entry with internal key >= target.
func (it *Iterator) SeekGE(target keys.InternalKey) {
	it.node = it.list.findGE(target, nil)
}

// Key returns the current internal key. Only valid when Valid().
func (it *Iterator) Key() keys.InternalKey { return it.node.key }

// Value returns the current value. Only valid when Valid().
func (it *Iterator) Value() []byte { return it.node.value }
