package skiplist

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hyperdb/internal/keys"
)

func TestInsertGet(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		s.Insert(keys.InternalKey{User: k, Seq: uint64(i + 1), Kind: keys.KindSet},
			[]byte(fmt.Sprintf("val-%d", i)))
	}
	if s.Len() != 1000 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v, kind, ok := s.Get(k, keys.MaxSeq)
		if !ok || kind != keys.KindSet || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %d: %q %v %v", i, v, kind, ok)
		}
	}
	if _, _, ok := s.Get([]byte("nope"), keys.MaxSeq); ok {
		t.Fatal("phantom key")
	}
}

func TestVersionsAndSnapshots(t *testing.T) {
	s := New()
	k := []byte("k")
	s.Insert(keys.InternalKey{User: k, Seq: 10, Kind: keys.KindSet}, []byte("v10"))
	s.Insert(keys.InternalKey{User: k, Seq: 20, Kind: keys.KindDelete}, nil)
	s.Insert(keys.InternalKey{User: k, Seq: 30, Kind: keys.KindSet}, []byte("v30"))

	v, kind, ok := s.Get(k, keys.MaxSeq)
	if !ok || kind != keys.KindSet || string(v) != "v30" {
		t.Fatalf("latest: %q %v %v", v, kind, ok)
	}
	_, kind, ok = s.Get(k, 25)
	if !ok || kind != keys.KindDelete {
		t.Fatalf("snapshot 25 should see tombstone: %v %v", kind, ok)
	}
	v, _, ok = s.Get(k, 15)
	if !ok || string(v) != "v10" {
		t.Fatalf("snapshot 15: %q %v", v, ok)
	}
	if _, _, ok := s.Get(k, 5); ok {
		t.Fatal("snapshot 5 should see nothing")
	}
}

func TestIterSorted(t *testing.T) {
	s := New()
	perm := rand.New(rand.NewSource(3)).Perm(500)
	for _, i := range perm {
		s.Insert(keys.InternalKey{User: []byte(fmt.Sprintf("%05d", i)), Seq: 1, Kind: keys.KindSet}, nil)
	}
	it := s.Iter()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if want := fmt.Sprintf("%05d", i); string(it.Key().User) != want {
			t.Fatalf("entry %d: %q want %q", i, it.Key().User, want)
		}
		i++
	}
	if i != 500 {
		t.Fatalf("iterated %d", i)
	}
}

func TestIterSeekGE(t *testing.T) {
	s := New()
	for i := 0; i < 100; i += 2 {
		s.Insert(keys.InternalKey{User: []byte(fmt.Sprintf("%03d", i)), Seq: 1, Kind: keys.KindSet}, nil)
	}
	it := s.Iter()
	it.SeekGE(keys.MakeSearchKey([]byte("051"), keys.MaxSeq))
	if !it.Valid() || string(it.Key().User) != "052" {
		t.Fatalf("seek: %v", it.Key())
	}
	it.SeekGE(keys.MakeSearchKey([]byte("999"), keys.MaxSeq))
	if it.Valid() {
		t.Fatal("seek past end")
	}
}

func TestApproxBytes(t *testing.T) {
	s := New()
	if s.ApproxBytes() != 0 {
		t.Fatal("empty list has bytes")
	}
	s.Insert(keys.InternalKey{User: []byte("abc"), Seq: 1, Kind: keys.KindSet}, make([]byte, 100))
	if b := s.ApproxBytes(); b < 100 || b > 200 {
		t.Fatalf("approx = %d", b)
	}
}

func TestConcurrentReadersDuringInsert(t *testing.T) {
	s := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := s.Iter()
				prev := []byte(nil)
				for it.First(); it.Valid(); it.Next() {
					u := it.Key().User
					if prev != nil && string(prev) > string(u) {
						t.Error("iteration order violated during concurrent insert")
						return
					}
					prev = append(prev[:0], u...)
				}
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		s.Insert(keys.InternalKey{User: []byte(fmt.Sprintf("%08d", rand.Intn(100000))), Seq: uint64(i + 1), Kind: keys.KindSet}, nil)
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", id, i))
				s.Insert(keys.InternalKey{User: k, Seq: uint64(id*1000000 + i + 1), Kind: keys.KindSet}, k)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 20000 {
		t.Fatalf("len = %d, want 20000", s.Len())
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < 5000; i += 97 {
			k := []byte(fmt.Sprintf("w%d-%06d", w, i))
			if _, _, ok := s.Get(k, keys.MaxSeq); !ok {
				t.Fatalf("lost %s", k)
			}
		}
	}
}

func TestAgainstReferenceMap(t *testing.T) {
	s := New()
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	seq := uint64(0)
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("k%04d", rng.Intn(2000))
		v := fmt.Sprintf("v%d", i)
		seq++
		s.Insert(keys.InternalKey{User: []byte(k), Seq: seq, Kind: keys.KindSet}, []byte(v))
		ref[k] = v
	}
	for k, want := range ref {
		v, kind, ok := s.Get([]byte(k), keys.MaxSeq)
		if !ok || kind != keys.KindSet || string(v) != want {
			t.Fatalf("%s: got %q, want %q", k, v, want)
		}
	}
}
