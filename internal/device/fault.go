package device

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrInjected is the error surfaced by I/O that a fault plan failed. It is
// distinct from ErrNoSpace so engines' space-pressure retry loops never
// swallow an injected fault.
var ErrInjected = errors.New("device: injected fault")

// IsIOError reports whether err came from the device layer itself (an
// injected fault or a closed device) rather than from interpreting the bytes
// it returned. Recovery paths use this to tell a table that failed to open
// because the medium errored (retryable, keep the file) from one whose
// content is structurally torn (crash artifact, safe to discard).
func IsIOError(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrClosed)
}

// FaultPlan schedules deterministic I/O failures on a device. All decisions
// derive from Seed, so a failing crash-test cycle replays exactly.
//
// Write faults fire on the chargeable write operations: Sync of a non-empty
// dirty tail, and non-empty WriteAt. Read faults fire on ReadAt calls that
// would return data. Namespace operations (Create, Remove, Truncate,
// EnsureAllocated, PunchHole) never fault: the simulator treats metadata as
// durable the moment it is applied (see DESIGN.md, crash model).
type FaultPlan struct {
	// Seed drives the plan's private RNG (probability draws, torn-write
	// split points).
	Seed int64
	// FailWriteAfter > 0 fails the Nth write operation after the plan is
	// installed. One-shot: the counter keeps advancing but the trigger
	// disarms once fired.
	FailWriteAfter int64
	// FailReadAfter > 0 fails the Nth read operation. One-shot.
	FailReadAfter int64
	// WriteErrorProb fails each write independently with this probability.
	WriteErrorProb float64
	// ReadErrorProb fails each read independently with this probability.
	ReadErrorProb float64
	// TornWrites makes failed writes persist a strict prefix of their
	// payload before returning ErrInjected, modelling a write cut by power
	// loss partway through: a torn Sync durably advances over a prefix of
	// the dirty pages, a torn WriteAt applies a prefix of its bytes.
	TornWrites bool
}

// faultState is a device's installed plan plus its op counters.
type faultState struct {
	mu     sync.Mutex
	plan   FaultPlan
	rng    *rand.Rand
	writes int64
	reads  int64
}

// InjectFaults installs a fault plan, replacing any previous one and
// resetting the op counters.
func (d *Device) InjectFaults(p FaultPlan) {
	d.faults.Store(&faultState{plan: p, rng: rand.New(rand.NewSource(p.Seed))})
}

// ClearFaults removes the installed fault plan, if any.
func (d *Device) ClearFaults() {
	d.faults.Store(nil)
}

// writeFault consults the plan for one write op. When fire is true the write
// must fail with ErrInjected; if torn is also true, the caller persists a
// prefix sized by frac in [0,1) first.
func (d *Device) writeFault() (fire, torn bool, frac float64) {
	fs := d.faults.Load()
	if fs == nil {
		return false, false, 0
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writes++
	if fs.plan.FailWriteAfter > 0 && fs.writes == fs.plan.FailWriteAfter {
		fire = true
	}
	if !fire && fs.plan.WriteErrorProb > 0 && fs.rng.Float64() < fs.plan.WriteErrorProb {
		fire = true
	}
	if fire && fs.plan.TornWrites {
		torn = true
		frac = fs.rng.Float64()
	}
	return fire, torn, frac
}

// readFault consults the plan for one read op.
func (d *Device) readFault() bool {
	fs := d.faults.Load()
	if fs == nil {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.reads++
	if fs.plan.FailReadAfter > 0 && fs.reads == fs.plan.FailReadAfter {
		return true
	}
	return fs.plan.ReadErrorProb > 0 && fs.rng.Float64() < fs.plan.ReadErrorProb
}

// PowerCut models sudden power loss: every file's unsynced appended tail is
// discarded. Only Append buffers data (always at the tail — dirtyLo marks
// where the unsynced region begins), so truncating each file to dirtyLo
// restores exactly the durable image. WriteAt data and namespace operations
// (create/remove/truncate) are durable the moment they complete, so there
// are no crash-time create/remove races to resolve. The device stays usable:
// recovery code runs against the same handle.
func (d *Device) PowerCut() {
	d.mu.Lock()
	files := make([]*File, 0, len(d.files))
	for _, f := range d.files {
		files = append(files, f)
	}
	d.mu.Unlock()
	for _, f := range files {
		f.powerCut()
	}
}
