// Package device simulates the heterogeneous SSDs the paper evaluates on.
//
// A Device is a page-granular block store with a latency/bandwidth cost
// model and full traffic accounting. Engines never touch the OS filesystem;
// they allocate extents from a Device and read/write whole pages, exactly as
// the paper's engines do against raw NVMe and SATA SSDs. Because every
// engine in this repository (HyperDB and both baselines) runs against the
// same Device implementation, bandwidth-utilisation, traffic-volume and
// space-usage comparisons are apples-to-apples.
//
// The cost model is a real-time multi-channel queue: each I/O occupies one
// of the device's channels for latency + bytes/bandwidth, and the caller
// blocks until its completion time. Saturation, queueing delay (write
// stalls, P99 tails) and throughput caps all emerge from this, which is
// what the paper's figures measure. Profiles are scaled down from the real
// parts (Samsung PM9A3, Intel D3-S4610) so that benchmarks finish in
// seconds; the NVMe:SATA performance *ratios* match the real pair.
package device

import "time"

// Profile describes the performance characteristics of a simulated SSD.
type Profile struct {
	// Name labels the device in reports ("nvme", "sata").
	Name string
	// PageSize is the read unit in bytes: block-oriented engines fetch
	// whole pages, so partial-page reads charge a full page — the
	// amplification §2.3 analyses. The paper uses 4 KiB.
	PageSize int
	// SectorSize is the write unit (LBA granularity, default 512 B):
	// host-visible write volume counts sectors actually written, so a
	// small in-place slot update does not cost a whole page.
	SectorSize int
	// Capacity is the device size in bytes. Zero means unbounded.
	Capacity int64
	// ReadLatency is the fixed per-command setup cost of a random read.
	ReadLatency time.Duration
	// WriteLatency is the fixed per-command setup cost of a random write.
	WriteLatency time.Duration
	// ReadBandwidth caps sustained read throughput, bytes/second.
	ReadBandwidth int64
	// WriteBandwidth caps sustained write throughput, bytes/second.
	WriteBandwidth int64
	// Channels is the number of commands the device services concurrently
	// (an abstraction of NVMe's deep queues vs SATA's single queue).
	Channels int
	// SeqDiscount divides the per-command latency for sequential multi-page
	// commands, modelling readahead/streaming efficiency. 1 = no discount.
	SeqDiscount int
}

// The simulated profiles run time-compressed relative to the real parts so
// experiments complete quickly; what matters for the paper's figures is the
// NVMe:SATA *ratio* (≈8:1 bandwidth, ≈3.5:1 latency), which tracks the
// PM9A3 vs D3-S4610 pair.

// NVMeProfile models the performance tier (Samsung PM9A3-like, scaled).
func NVMeProfile(capacity int64) Profile {
	return Profile{
		Name:           "nvme",
		PageSize:       4096,
		Capacity:       capacity,
		ReadLatency:    5 * time.Microsecond,
		WriteLatency:   2500 * time.Nanosecond,
		ReadBandwidth:  2048 << 20,
		WriteBandwidth: 1536 << 20,
		Channels:       16,
		SeqDiscount:    4,
	}
}

// SATAProfile models the capacity tier (Intel D3-S4610-like, scaled).
func SATAProfile(capacity int64) Profile {
	return Profile{
		Name:           "sata",
		PageSize:       4096,
		Capacity:       capacity,
		ReadLatency:    17500 * time.Nanosecond,
		WriteLatency:   10 * time.Microsecond,
		ReadBandwidth:  256 << 20,
		WriteBandwidth: 240 << 20,
		Channels:       4,
		SeqDiscount:    8,
	}
}

// UnthrottledProfile is a zero-cost device for unit tests: full accounting,
// no delays, no capacity bound unless capacity > 0.
func UnthrottledProfile(name string, capacity int64) Profile {
	return Profile{
		Name:     name,
		PageSize: 4096,
		Capacity: capacity,
		Channels: 1,
	}
}

// throttled reports whether the profile carries any timing costs.
func (p Profile) throttled() bool {
	return p.ReadLatency > 0 || p.WriteLatency > 0 ||
		p.ReadBandwidth > 0 || p.WriteBandwidth > 0
}
