package device

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func unthrottled(capacity int64) *Device {
	return New(UnthrottledProfile("test", capacity))
}

func TestFileAppendReadRoundtrip(t *testing.T) {
	d := unthrottled(0)
	f, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, device layer")
	off, err := f.Append(data)
	if err != nil || off != 0 {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	if err := f.Sync(Fg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	n, err := f.ReadAt(buf, 0, Fg)
	if err != nil || n != len(data) || !bytes.Equal(buf, data) {
		t.Fatalf("read: n=%d err=%v data=%q", n, err, buf)
	}
}

func TestReadChargesWholePages(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	f.Append(make([]byte, 10000))
	f.Sync(Fg)
	before := d.Counters().Snapshot()
	one := make([]byte, 1)
	f.ReadAt(one, 5000, Fg) // 1 byte in the middle of page 1
	delta := d.Counters().Snapshot().Sub(before)
	if delta.ReadBytes != 4096 {
		t.Fatalf("1-byte read charged %d bytes, want 4096 (page granularity)", delta.ReadBytes)
	}
	before = d.Counters().Snapshot()
	span := make([]byte, 4097) // crosses a page boundary
	f.ReadAt(span, 0, Fg)
	delta = d.Counters().Snapshot().Sub(before)
	if delta.ReadBytes != 8192 {
		t.Fatalf("page-crossing read charged %d, want 8192", delta.ReadBytes)
	}
}

func TestWriteChargesSectors(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	before := d.Counters().Snapshot()
	f.WriteAt(make([]byte, 100), 0, Fg)
	delta := d.Counters().Snapshot().Sub(before)
	if delta.WriteBytes != 512 {
		t.Fatalf("100-byte write charged %d, want 512 (sector granularity)", delta.WriteBytes)
	}
	before = d.Counters().Snapshot()
	f.WriteAt(make([]byte, 1024), 8192, Fg)
	delta = d.Counters().Snapshot().Sub(before)
	if delta.WriteBytes != 1024 {
		t.Fatalf("1KiB write charged %d, want 1024", delta.WriteBytes)
	}
}

func TestSyncCoalescesAppends(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	before := d.Counters().Snapshot()
	for i := 0; i < 10; i++ {
		f.Append(make([]byte, 100))
	}
	f.Sync(Fg)
	delta := d.Counters().Snapshot().Sub(before)
	if delta.WriteOps != 1 {
		t.Fatalf("10 appends + 1 sync = %d write ops, want 1 (group commit)", delta.WriteOps)
	}
	if delta.WriteBytes != 1024 { // 1000 bytes sector-rounded
		t.Fatalf("sync charged %d bytes, want 1024", delta.WriteBytes)
	}
	// A clean sync charges nothing.
	before = d.Counters().Snapshot()
	f.Sync(Fg)
	if d.Counters().Snapshot().Sub(before).WriteBytes != 0 {
		t.Fatal("clean sync should be free")
	}
}

func TestBackgroundAttribution(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	f.WriteAt(make([]byte, 512), 0, Bg)
	f.WriteAt(make([]byte, 512), 4096, Fg)
	s := d.Counters().Snapshot()
	if s.BgWriteBytes != 512 || s.WriteBytes != 1024 {
		t.Fatalf("bg=%d total=%d; want 512/1024", s.BgWriteBytes, s.WriteBytes)
	}
}

func TestCapacityEnforced(t *testing.T) {
	d := unthrottled(8192) // two pages
	f, _ := d.Create("a")
	if err := f.WriteAt(make([]byte, 8192), 0, Fg); err != nil {
		t.Fatalf("within capacity: %v", err)
	}
	if err := f.WriteAt(make([]byte, 1), 8192, Fg); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	if d.Used() != 8192 {
		t.Fatalf("used = %d", d.Used())
	}
	if d.UsedFraction() != 1.0 {
		t.Fatalf("used fraction = %f", d.UsedFraction())
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	d := unthrottled(8192)
	f, _ := d.Create("a")
	f.WriteAt(make([]byte, 8192), 0, Fg)
	if err := d.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 0 {
		t.Fatalf("used after remove = %d", d.Used())
	}
	if _, err := f.ReadAt(make([]byte, 1), 0, Fg); !errors.Is(err, ErrClosed) {
		t.Fatalf("read of removed file: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	f.Append(make([]byte, 10000))
	f.Sync(Fg)
	used := d.Used()
	if err := f.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4096 {
		t.Fatalf("size = %d", f.Size())
	}
	if d.Used() >= used {
		t.Fatal("truncate did not free pages")
	}
	if err := f.Truncate(99999); err == nil {
		t.Fatal("growing truncate should fail")
	}
}

func TestHolePunchAndReallocate(t *testing.T) {
	d := unthrottled(16 * 4096)
	f, _ := d.Create("a")
	f.EnsureAllocated(8 * 4096)
	used := d.Used()
	f.PunchHole(3)
	f.PunchHole(3) // idempotent
	if d.Used() != used-4096 {
		t.Fatalf("punch freed %d, want 4096", used-d.Used())
	}
	if f.AllocatedBytes() != 7*4096 {
		t.Fatalf("allocated = %d", f.AllocatedBytes())
	}
	// Data still readable after punch (TRIM semantics until reuse).
	if _, err := f.ReadAt(make([]byte, 10), 3*4096, Fg); err != nil {
		t.Fatal(err)
	}
	if err := f.Reallocate(3); err != nil {
		t.Fatal(err)
	}
	if d.Used() != used {
		t.Fatalf("reallocate restored %d, want %d", d.Used(), used)
	}
	// Reallocate of a never-punched page is a no-op.
	if err := f.Reallocate(0); err != nil {
		t.Fatal(err)
	}
	if d.Used() != used {
		t.Fatal("no-op reallocate changed usage")
	}
}

func TestReallocateFailsWhenFull(t *testing.T) {
	d := unthrottled(2 * 4096)
	f, _ := d.Create("a")
	f.EnsureAllocated(2 * 4096)
	f.PunchHole(0)
	// Fill the freed page from another file.
	g, _ := d.Create("b")
	if err := g.EnsureAllocated(4096); err != nil {
		t.Fatal(err)
	}
	if err := f.Reallocate(0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
}

func TestTruncatePastHoles(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	f.EnsureAllocated(8 * 4096)
	f.PunchHole(6)
	f.PunchHole(7)
	used := d.Used()
	if err := f.Truncate(4 * 4096); err != nil {
		t.Fatal(err)
	}
	// Pages 4,5 freed now; 6,7 were already free — no double count.
	if got := used - d.Used(); got != 2*4096 {
		t.Fatalf("truncate freed %d, want %d", got, 2*4096)
	}
}

func TestCreateDuplicateAndOpen(t *testing.T) {
	d := unthrottled(0)
	if _, err := d.Create("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("x"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if _, err := d.Open("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open("missing"); err == nil {
		t.Fatal("open of missing file should fail")
	}
	names := d.List()
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("list = %v", names)
	}
}

func TestThrottledLatency(t *testing.T) {
	p := Profile{
		Name: "slow", PageSize: 4096, Channels: 1,
		ReadLatency: 2 * time.Millisecond,
	}
	d := New(p)
	f, _ := d.Create("a")
	f.Append(make([]byte, 4096))
	f.Sync(Fg)
	start := time.Now()
	f.ReadAt(make([]byte, 100), 0, Fg)
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("read returned in %v, want >= 2ms", el)
	}
}

func TestThrottledQueueing(t *testing.T) {
	// One channel, 2ms per read: 4 concurrent reads take >= ~8ms total.
	p := Profile{Name: "q", PageSize: 4096, Channels: 1, ReadLatency: 2 * time.Millisecond}
	d := New(p)
	f, _ := d.Create("a")
	f.Append(make([]byte, 4096))
	f.Sync(Fg)
	start := time.Now()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			f.ReadAt(make([]byte, 10), 0, Fg)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if el := time.Since(start); el < 7*time.Millisecond {
		t.Fatalf("4 serialized reads took %v, want >= ~8ms", el)
	}
	if u := d.Utilization(); u <= 0 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestSequentialDiscount(t *testing.T) {
	p := Profile{
		Name: "seq", PageSize: 4096, Channels: 1,
		ReadLatency: 4 * time.Millisecond, SeqDiscount: 8,
	}
	d := New(p)
	f, _ := d.Create("a")
	f.Append(make([]byte, 8*4096))
	f.Sync(Fg)

	start := time.Now()
	f.ReadAt(make([]byte, 8*4096), 0, FgSeq)
	seq := time.Since(start)
	if seq > 3*time.Millisecond {
		t.Fatalf("sequential 8-page read took %v, want < 3ms (one discounted command)", seq)
	}
	start = time.Now()
	f.ReadAt(make([]byte, 2*4096), 0, Fg) // random: 2 commands x 4ms
	random := time.Since(start)
	if random < 7*time.Millisecond {
		t.Fatalf("random 2-page read took %v, want >= 8ms", random)
	}
}

func TestConcurrentFileAccess(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	f.EnsureAllocated(64 * 4096)
	var wg = make(chan struct{}, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				page := int64(rng.Intn(64))
				if rng.Intn(2) == 0 {
					f.WriteAt([]byte{byte(seed)}, page*4096, Fg)
				} else {
					f.ReadAt(make([]byte, 64), page*4096, Fg)
				}
			}
			wg <- struct{}{}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-wg
	}
}

func TestAllocatedPageIDs(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	f.EnsureAllocated(5 * 4096)
	f.PunchHole(1)
	f.PunchHole(3)
	got := f.AllocatedPageIDs()
	want := []int64{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("pages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pages = %v, want %v", got, want)
		}
	}
	// Punched pages read back zeroed (deterministic TRIM), and a write into
	// a punched page implicitly reallocates it on the ledger.
	used := d.Used()
	if err := f.WriteAt([]byte{0xAA}, 1*4096+7, Fg); err != nil {
		t.Fatal(err)
	}
	if d.Used() != used+4096 {
		t.Fatalf("write into hole did not reallocate: used %d -> %d", used, d.Used())
	}
	f.PunchHole(1)
	buf := make([]byte, 16)
	f.ReadAt(buf, 1*4096, Fg)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("punched page not zeroed")
		}
	}
}

func TestEnsureAllocatedChargesNothing(t *testing.T) {
	d := unthrottled(0)
	f, _ := d.Create("a")
	before := d.Counters().Snapshot()
	if err := f.EnsureAllocated(64 * 4096); err != nil {
		t.Fatal(err)
	}
	delta := d.Counters().Snapshot().Sub(before)
	if delta.WriteBytes != 0 || delta.ReadBytes != 0 {
		t.Fatalf("allocation charged I/O: %+v", delta)
	}
	if d.Used() != 64*4096 {
		t.Fatalf("used = %d", d.Used())
	}
}
