package device

import (
	"bytes"
	"errors"
	"testing"
)

func newTestDev() *Device {
	return New(UnthrottledProfile("t", 0))
}

// Open on a closed device must fail like Create does, instead of handing out
// a file whose I/O would hit a dead ledger.
func TestOpenAfterClose(t *testing.T) {
	d := newTestDev()
	if _, err := d.Create("a"); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Open("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open on closed device: err=%v, want ErrClosed", err)
	}
	if _, err := d.Create("b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create on closed device: err=%v, want ErrClosed", err)
	}
}

// TestTruncateDirtyWindow drives Truncate through every position relative to
// the dirty append window and checks both the power-cut image and what the
// next Sync charges.
func TestTruncateDirtyWindow(t *testing.T) {
	const ps = 4096
	cases := []struct {
		name       string
		truncateTo int64
		wantSize   int64 // file size after truncate
		wantBytes  uint64
	}{
		// Synced prefix: 2 pages. Dirty appended tail: [8192, 14192).
		{"above window (no-op)", 14192, 14192, 6144}, // sectorRound(6000), pages 2..3
		{"inside window", 10000, 10000, 2048},        // sectorRound(10000-8192)
		{"at window start", 8192, 8192, 0},           // window emptied
		{"below window", 8000, 8000, 0},              // window emptied, synced data cut
		{"to zero", 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newTestDev()
			f, err := d.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Append(make([]byte, 2*ps)); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(Fg); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Append(make([]byte, 6000)); err != nil {
				t.Fatal(err)
			}
			if err := f.Truncate(tc.truncateTo); err != nil {
				t.Fatal(err)
			}
			if got := f.Size(); got != tc.wantSize {
				t.Fatalf("size after truncate = %d, want %d", got, tc.wantSize)
			}
			before := d.Counters().Snapshot()
			if err := f.Sync(Fg); err != nil {
				t.Fatal(err)
			}
			delta := d.Counters().Snapshot().Sub(before)
			if delta.WriteBytes != tc.wantBytes {
				t.Fatalf("sync charged %d bytes, want %d", delta.WriteBytes, tc.wantBytes)
			}
			wantOps := uint64(1)
			if tc.wantBytes == 0 {
				wantOps = 0
			}
			if delta.WriteOps != wantOps {
				t.Fatalf("sync charged %d ops, want %d", delta.WriteOps, wantOps)
			}
			// After a clean sync nothing is dirty: a power cut keeps the file.
			f.powerCut()
			if got := f.Size(); got != tc.wantSize {
				t.Fatalf("size after sync+powercut = %d, want %d", got, tc.wantSize)
			}
		})
	}
}

func TestPowerCutDiscardsUnsyncedTail(t *testing.T) {
	d := newTestDev()
	f, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	durable := bytes.Repeat([]byte{7}, 5000)
	if _, err := f.Append(durable); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(Fg); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(make([]byte, 3000)); err != nil {
		t.Fatal(err)
	}
	d.PowerCut()
	if got := f.Size(); got != int64(len(durable)) {
		t.Fatalf("size after power cut = %d, want %d", got, len(durable))
	}
	back := make([]byte, len(durable))
	if _, err := f.ReadAt(back, 0, Fg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, durable) {
		t.Fatal("synced bytes corrupted by power cut")
	}
	// WriteAt data is durable immediately — a second cut keeps it.
	if err := f.WriteAt([]byte{9, 9, 9}, 100, Fg); err != nil {
		t.Fatal(err)
	}
	d.PowerCut()
	if _, err := f.ReadAt(back[:3], 100, Fg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[:3], []byte{9, 9, 9}) {
		t.Fatal("WriteAt data lost by power cut")
	}
}

func TestFailWriteAfterOneShot(t *testing.T) {
	d := newTestDev()
	f, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(FaultPlan{Seed: 1, FailWriteAfter: 3})
	for i := 1; i <= 5; i++ {
		err := f.WriteAt([]byte{1}, int64(i)*4096, Fg)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: err=%v, want ErrInjected", i, err)
			}
		} else if err != nil {
			t.Fatalf("write %d: %v (trigger must be one-shot)", i, err)
		}
	}
	d.ClearFaults()
	if err := f.WriteAt([]byte{1}, 0, Fg); err != nil {
		t.Fatal(err)
	}
}

func TestTornSyncPersistsPagePrefix(t *testing.T) {
	const ps = 4096
	for seed := int64(0); seed < 20; seed++ {
		d := newTestDev()
		f, err := d.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 4*ps)
		for i := range data {
			data[i] = byte(i)
		}
		if _, err := f.Append(data); err != nil {
			t.Fatal(err)
		}
		d.InjectFaults(FaultPlan{Seed: seed, FailWriteAfter: 1, TornWrites: true})
		if err := f.Sync(Fg); !errors.Is(err, ErrInjected) {
			t.Fatalf("seed %d: sync err=%v, want ErrInjected", seed, err)
		}
		d.ClearFaults()
		d.PowerCut()
		size := f.Size()
		if size < 0 || size >= int64(len(data)) {
			t.Fatalf("seed %d: torn sync kept %d bytes, want a strict prefix", seed, size)
		}
		if size%ps != 0 {
			t.Fatalf("seed %d: torn sync kept %d bytes, not page-aligned", seed, size)
		}
		if size > 0 {
			back := make([]byte, size)
			if _, err := f.ReadAt(back, 0, Fg); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, data[:size]) {
				t.Fatalf("seed %d: torn prefix corrupted", seed)
			}
		}
	}
}

func TestTornWriteAtPersistsBytePrefix(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d := newTestDev()
		f, err := d.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.EnsureAllocated(4096); err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0xAB}, 1000)
		d.InjectFaults(FaultPlan{Seed: seed, FailWriteAfter: 1, TornWrites: true})
		if err := f.WriteAt(data, 0, Fg); !errors.Is(err, ErrInjected) {
			t.Fatalf("seed %d: err=%v, want ErrInjected", seed, err)
		}
		d.ClearFaults()
		back := make([]byte, len(data))
		if _, err := f.ReadAt(back, 0, Fg); err != nil {
			t.Fatal(err)
		}
		n := 0
		for n < len(back) && back[n] == 0xAB {
			n++
		}
		if n >= len(data) {
			t.Fatalf("seed %d: torn WriteAt persisted everything", seed)
		}
		for _, b := range back[n:] {
			if b != 0 {
				t.Fatalf("seed %d: non-prefix bytes written", seed)
			}
		}
	}
}

func TestReadFault(t *testing.T) {
	d := newTestDev()
	f, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt([]byte{1, 2, 3}, 0, Fg); err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(FaultPlan{Seed: 1, FailReadAfter: 2})
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0, Fg); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := f.ReadAt(buf, 0, Fg); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: err=%v, want ErrInjected", err)
	}
	if _, err := f.ReadAt(buf, 0, Fg); err != nil {
		t.Fatalf("read 3: %v (one-shot)", err)
	}
}
