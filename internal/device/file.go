package device

import (
	"fmt"
	"sync"
)

// File is a named byte extent on a Device. All I/O is charged at page
// granularity against the owning device — reading one byte costs a page,
// exactly the amplification effect the paper's migration analysis hinges on.
//
// Two write paths exist:
//
//   - Append + Sync: log-structured writers (WAL, SSTable builders) buffer
//     appends and pay for the dirty pages once at Sync, sequentially. This
//     models group commit and streaming table writes.
//   - WriteAt: in-place writers (zone slots) pay immediately, randomly.
type File struct {
	dev  *Device
	name string

	mu       sync.RWMutex
	buf      []byte
	pages    int64          // extent pages covering buf (incl. punched holes)
	holes    map[int64]bool // punched (deallocated) page indices
	dirtyLo  int64          // first dirty byte not yet synced; -1 when clean
	dirtyHi  int64          // one past last dirty byte
	released bool
}

// AllocatedPageIDs returns the indices of all non-punched pages, in order.
// Recovery scans use it to enumerate the pages that hold live slots.
func (f *File) AllocatedPageIDs() []int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]int64, 0, f.pages-int64(len(f.holes)))
	for i := int64(0); i < f.pages; i++ {
		if !f.holes[i] {
			out = append(out, i)
		}
	}
	return out
}

// PunchHole releases the page at index pageIdx back to the device ledger
// (TRIM). Like a deterministic-TRIM SSD, the page reads back as zeros
// afterwards — recovery scans must never see a recycled page's previous
// occupancy. Idempotent.
func (f *File) PunchHole(pageIdx int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released || pageIdx < 0 || pageIdx >= f.pages {
		return
	}
	if f.holes == nil {
		f.holes = make(map[int64]bool)
	}
	if !f.holes[pageIdx] {
		f.holes[pageIdx] = true
		f.dev.freePages(1)
		ps := int64(f.dev.PageSize())
		lo := pageIdx * ps
		hi := lo + ps
		if lo < int64(len(f.buf)) {
			if hi > int64(len(f.buf)) {
				hi = int64(len(f.buf))
			}
			clear(f.buf[lo:hi])
		}
	}
}

// Reallocate claims back a previously punched page, failing with ErrNoSpace
// when the device is full. No-op for pages that were never punched.
func (f *File) Reallocate(pageIdx int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released {
		return ErrClosed
	}
	if !f.holes[pageIdx] {
		return nil
	}
	if err := f.dev.allocPages(1); err != nil {
		return err
	}
	delete(f.holes, pageIdx)
	return nil
}

// Name returns the file's name on its device.
func (f *File) Name() string { return f.name }

// Size returns the logical length in bytes.
func (f *File) Size() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.buf))
}

// AllocatedBytes returns the page-rounded on-device footprint, excluding
// punched holes.
func (f *File) AllocatedBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return (f.pages - int64(len(f.holes))) * int64(f.dev.PageSize())
}

func (f *File) pageSpan(off, n int64) (firstPage, pages int64) {
	ps := int64(f.dev.PageSize())
	firstPage = off / ps
	lastPage := (off + n - 1) / ps
	return firstPage, lastPage - firstPage + 1
}

// ensureCapacity grows the allocation to cover size bytes.
func (f *File) ensureCapacity(size int64) error {
	ps := int64(f.dev.PageSize())
	need := (size + ps - 1) / ps
	if need > f.pages {
		if err := f.dev.allocPages(need - f.pages); err != nil {
			return err
		}
		f.pages = need
	}
	return nil
}

// unholeRange reallocates any punched pages the byte span [off, off+n)
// touches, so a write into a TRIMmed region is ledger-accounted again.
// Caller holds mu.
func (f *File) unholeRange(off, n int64) error {
	if len(f.holes) == 0 || n <= 0 {
		return nil
	}
	first, pages := f.pageSpan(off, n)
	for p := first; p < first+pages; p++ {
		if f.holes[p] {
			if err := f.dev.allocPages(1); err != nil {
				return err
			}
			delete(f.holes, p)
		}
	}
	return nil
}

// Append adds data to the end of the file without charging I/O; call Sync to
// persist (and pay for) the dirty tail. Returns the offset the data begins at.
func (f *File) Append(data []byte) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released {
		return 0, ErrClosed
	}
	off := int64(len(f.buf))
	if err := f.ensureCapacity(off + int64(len(data))); err != nil {
		return 0, err
	}
	if err := f.unholeRange(off, int64(len(data))); err != nil {
		return 0, err
	}
	f.buf = append(f.buf, data...)
	if len(data) > 0 {
		if f.dirtyLo < 0 {
			f.dirtyLo = off
		}
		if end := off + int64(len(data)); end > f.dirtyHi {
			f.dirtyHi = end
		}
	}
	return off, nil
}

// Sync charges a sequential write for every dirty page and marks the file
// clean. Multiple Appends coalesce into one Sync — group commit.
func (f *File) Sync(op Op) error {
	f.mu.Lock()
	if f.released {
		f.mu.Unlock()
		return ErrClosed
	}
	if f.dirtyLo < 0 || f.dirtyHi <= f.dirtyLo {
		f.dirtyLo, f.dirtyHi = -1, 0
		f.mu.Unlock()
		return nil
	}
	lo, hi := f.dirtyLo, f.dirtyHi
	if fire, torn, frac := f.dev.writeFault(); fire {
		if !torn {
			// Nothing persisted; the dirty range is untouched.
			f.mu.Unlock()
			return ErrInjected
		}
		// Torn sync: a strict page-aligned prefix of the dirty range
		// becomes durable (and is paid for); the rest stays dirty and a
		// PowerCut discards it.
		firstPage, pages := f.pageSpan(lo, hi-lo)
		keep := int64(frac * float64(pages))
		if keep >= pages {
			keep = pages - 1
		}
		if keep <= 0 {
			f.mu.Unlock()
			return ErrInjected
		}
		ps := int64(f.dev.PageSize())
		newLo := (firstPage + keep) * ps
		if newLo > hi {
			newLo = hi
		}
		f.dirtyLo = newLo
		f.mu.Unlock()
		op.Sequential = true
		f.dev.chargeWrite(sectorRound(f.dev, newLo-lo), keep, op)
		return ErrInjected
	}
	f.dirtyLo, f.dirtyHi = -1, 0
	f.mu.Unlock()

	_, pages := f.pageSpan(lo, hi-lo)
	op.Sequential = true
	f.dev.chargeWrite(sectorRound(f.dev, hi-lo), pages, op)
	return nil
}

// sectorRound rounds n up to the device's write (sector) granularity.
func sectorRound(d *Device, n int64) int64 {
	s := int64(d.profile.SectorSize)
	if s <= 0 {
		s = 512
	}
	return (n + s - 1) / s * s
}

// WriteAt overwrites len(p) bytes at off, extending the file if needed, and
// charges the touched pages immediately (random write path).
func (f *File) WriteAt(p []byte, off int64, op Op) error {
	if off < 0 {
		return fmt.Errorf("device: negative offset %d", off)
	}
	f.mu.Lock()
	if f.released {
		f.mu.Unlock()
		return ErrClosed
	}
	if len(p) > 0 {
		if fire, torn, frac := f.dev.writeFault(); fire {
			keep := 0
			if torn {
				// Torn in-place write: a strict byte prefix lands.
				keep = int(frac * float64(len(p)))
				if keep >= len(p) {
					keep = len(p) - 1
				}
			}
			if keep <= 0 {
				f.mu.Unlock()
				return ErrInjected
			}
			p = p[:keep]
			if err := f.writeAtLocked(p, off, op); err != nil {
				return err
			}
			return ErrInjected
		}
	}
	return f.writeAtLocked(p, off, op)
}

// writeAtLocked applies and charges an in-place write; caller holds f.mu,
// which is released before charging.
func (f *File) writeAtLocked(p []byte, off int64, op Op) error {
	end := off + int64(len(p))
	if err := f.ensureCapacity(end); err != nil {
		f.mu.Unlock()
		return err
	}
	if err := f.unholeRange(off, int64(len(p))); err != nil {
		f.mu.Unlock()
		return err
	}
	if end > int64(len(f.buf)) {
		f.buf = append(f.buf, make([]byte, end-int64(len(f.buf)))...)
	}
	copy(f.buf[off:end], p)
	f.mu.Unlock()

	if len(p) > 0 {
		// One command; write volume counts sectors, not whole pages.
		f.dev.chargeWrite(sectorRound(f.dev, int64(len(p))), 1, op)
	}
	return nil
}

// EnsureAllocated grows the file's allocation (and zero extent) to cover
// size bytes without charging any I/O — allocating fresh slot pages is a
// metadata operation, not device traffic.
func (f *File) EnsureAllocated(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released {
		return ErrClosed
	}
	if err := f.ensureCapacity(size); err != nil {
		return err
	}
	if size > int64(len(f.buf)) {
		f.buf = append(f.buf, make([]byte, size-int64(len(f.buf)))...)
	}
	return nil
}

// ReadAt fills p from offset off and charges every page the span touches.
// Short reads at EOF return the bytes available and io.EOF semantics are
// replaced by an explicit count: n < len(p) means EOF was hit.
func (f *File) ReadAt(p []byte, off int64, op Op) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("device: negative offset %d", off)
	}
	f.mu.RLock()
	if f.released {
		f.mu.RUnlock()
		return 0, ErrClosed
	}
	if off >= int64(len(f.buf)) {
		f.mu.RUnlock()
		return 0, nil
	}
	if len(p) > 0 && f.dev.readFault() {
		f.mu.RUnlock()
		return 0, ErrInjected
	}
	n := copy(p, f.buf[off:])
	f.mu.RUnlock()

	if n > 0 {
		_, pages := f.pageSpan(off, int64(n))
		f.dev.chargeRead(pages*int64(f.dev.PageSize()), pages, op)
	}
	return n, nil
}

// ReadPage reads the page containing offset off (page-aligned retrieval),
// charging exactly one page. Returns the page's bytes (may be short at EOF)
// and the page-aligned offset it begins at.
func (f *File) ReadPage(off int64, op Op) ([]byte, int64, error) {
	ps := int64(f.dev.PageSize())
	base := off / ps * ps
	buf := make([]byte, ps)
	n, err := f.ReadAt(buf, base, op)
	if err != nil {
		return nil, 0, err
	}
	return buf[:n], base, nil
}

// Truncate shrinks the file to size bytes, returning now-unused pages.
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released {
		return ErrClosed
	}
	if size < 0 || size > int64(len(f.buf)) {
		return fmt.Errorf("device: truncate size %d out of range [0,%d]", size, len(f.buf))
	}
	f.truncateLocked(size)
	return nil
}

// powerCut discards the file's dirty appended tail. Appends only ever dirty
// the tail (and Truncate clamps the window), so [dirtyLo, len(buf)) is
// exactly the unsynced region; truncating to dirtyLo restores the durable
// image.
func (f *File) powerCut() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released || f.dirtyLo < 0 {
		return
	}
	f.truncateLocked(f.dirtyLo)
}

// truncateLocked shrinks buf to size and returns freed pages; caller holds
// f.mu and has validated size.
func (f *File) truncateLocked(size int64) {
	f.buf = f.buf[:size]
	ps := int64(f.dev.PageSize())
	need := (size + ps - 1) / ps
	if need < f.pages {
		freed := f.pages - need
		for idx := range f.holes {
			if idx >= need {
				delete(f.holes, idx) // already returned to the ledger
				freed--
			}
		}
		if freed > 0 {
			f.dev.freePages(freed)
		}
		f.pages = need
	}
	if f.dirtyHi > size {
		f.dirtyHi = size
	}
	if f.dirtyLo >= size {
		f.dirtyLo, f.dirtyHi = -1, 0
	}
}

// release frees all pages; called by Device.Remove.
func (f *File) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.released {
		return
	}
	f.released = true
	f.dev.freePages(f.pages - int64(len(f.holes)))
	f.pages = 0
	f.holes = nil
	f.buf = nil
}
