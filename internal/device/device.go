package device

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb/internal/stats"
)

// ErrNoSpace is returned when an allocation would exceed the device capacity.
var ErrNoSpace = errors.New("device: out of space")

// ErrClosed is returned by operations on a closed device or file.
var ErrClosed = errors.New("device: closed")

// Op qualifies a single I/O for costing and accounting.
type Op struct {
	// Background marks I/O issued by compaction, migration, or flush jobs
	// rather than a client operation. Background traffic is tallied
	// separately; it is what the paper's Figure 11 measures.
	Background bool
	// Sequential marks streaming multi-page I/O eligible for the profile's
	// sequential latency discount (SSTable writes, compaction reads).
	Sequential bool
}

// Fg and Bg are the common Op shorthands.
var (
	Fg    = Op{}
	FgSeq = Op{Sequential: true}
	Bg    = Op{Background: true}
	BgSeq = Op{Background: true, Sequential: true}
)

// Device is a simulated SSD: a capacity ledger, a real-time performance
// model, an I/O accountant, and a flat namespace of Files.
type Device struct {
	profile  Profile
	throttle *throttle
	counters stats.TrafficCounters
	faults   atomic.Pointer[faultState]

	// usedPages and closed are atomic so the capacity ledger and watermark
	// checks (UsedFraction on every foreground write) never contend with
	// namespace operations; mu guards only the files map.
	usedPages atomic.Int64
	maxPages  int64 // 0 = unbounded
	closed    atomic.Bool

	mu    sync.Mutex
	files map[string]*File
}

// New creates a device with the given profile.
func New(p Profile) *Device {
	if p.PageSize <= 0 {
		p.PageSize = 4096
	}
	if p.SectorSize <= 0 {
		p.SectorSize = 512
	}
	if p.SeqDiscount < 1 {
		p.SeqDiscount = 1
	}
	d := &Device{
		profile:  p,
		throttle: newThrottle(p.Channels),
		files:    make(map[string]*File),
	}
	if p.Capacity > 0 {
		d.maxPages = (p.Capacity + int64(p.PageSize) - 1) / int64(p.PageSize)
	}
	return d
}

// Profile returns the device's configuration.
func (d *Device) Profile() Profile { return d.profile }

// PageSize returns the device's atomic I/O unit in bytes.
func (d *Device) PageSize() int { return d.profile.PageSize }

// Counters exposes the device's traffic accounting.
func (d *Device) Counters() *stats.TrafficCounters { return &d.counters }

// Capacity returns the configured capacity in bytes (0 = unbounded).
func (d *Device) Capacity() int64 { return d.profile.Capacity }

// Used returns the currently allocated bytes. A single atomic load: safe on
// the per-op watermark-check path.
func (d *Device) Used() int64 {
	return d.usedPages.Load() * int64(d.profile.PageSize)
}

// UsedFraction returns Used/Capacity, or 0 for unbounded devices.
func (d *Device) UsedFraction() float64 {
	if d.profile.Capacity <= 0 {
		return 0
	}
	return float64(d.Used()) / float64(d.profile.Capacity)
}

// Utilization returns the fraction of device service capacity consumed since
// creation (or the last ResetUtilization): booked busy time divided by
// wall time × channels. This is the metric behind Figures 2a and 3a.
func (d *Device) Utilization() float64 {
	busy, elapsed, channels := d.throttle.busyTime()
	if elapsed <= 0 {
		return 0
	}
	return float64(busy) / (float64(elapsed) * float64(channels))
}

// ResetUtilization restarts the utilisation measurement window.
func (d *Device) ResetUtilization() { d.throttle.resetBusy() }

// allocPages reserves n pages, failing with ErrNoSpace past capacity. The
// bounded case is a CAS loop so concurrent allocations can never oversubscribe
// the ledger.
func (d *Device) allocPages(n int64) error {
	if n < 0 {
		return fmt.Errorf("device: negative allocation %d", n)
	}
	if d.closed.Load() {
		return ErrClosed
	}
	if d.maxPages <= 0 {
		d.usedPages.Add(n)
		return nil
	}
	for {
		used := d.usedPages.Load()
		if used+n > d.maxPages {
			return fmt.Errorf("%w (%s: %d used + %d requested of %d pages)",
				ErrNoSpace, d.profile.Name, used, n, d.maxPages)
		}
		if d.usedPages.CompareAndSwap(used, used+n) {
			return nil
		}
	}
}

// freePages returns n pages to the ledger.
func (d *Device) freePages(n int64) {
	if d.usedPages.Add(-n) < 0 {
		// Clamp: double-free accounting bugs shouldn't manufacture capacity.
		for {
			used := d.usedPages.Load()
			if used >= 0 || d.usedPages.CompareAndSwap(used, 0) {
				return
			}
		}
	}
}

// chargeRead books the cost of reading pages bytes and blocks until the
// modelled completion time. bytes must already be page-rounded.
func (d *Device) chargeRead(bytes int64, pagesTouched int64, op Op) {
	d.counters.ReadBytes.Add(uint64(bytes))
	d.counters.ReadOps.Inc()
	if op.Background {
		d.counters.BgReadBytes.Add(uint64(bytes))
		d.counters.BgReadOps.Inc()
	}
	d.block(d.profile.ReadLatency, d.profile.ReadBandwidth, bytes, pagesTouched, op)
}

// chargeWrite books the cost of writing pages bytes and blocks accordingly.
func (d *Device) chargeWrite(bytes int64, pagesTouched int64, op Op) {
	d.counters.WriteBytes.Add(uint64(bytes))
	d.counters.WriteOps.Inc()
	if op.Background {
		d.counters.BgWriteBytes.Add(uint64(bytes))
		d.counters.BgWriteOps.Inc()
	}
	d.block(d.profile.WriteLatency, d.profile.WriteBandwidth, bytes, pagesTouched, op)
}

func (d *Device) block(latency time.Duration, bandwidth int64, bytes, pagesTouched int64, op Op) {
	if !d.profile.throttled() || bytes == 0 {
		return
	}
	var service time.Duration
	if op.Sequential {
		// One command setup amortised across the streamed pages.
		service = latency / time.Duration(d.profile.SeqDiscount)
	} else {
		// Every discontiguous page is its own command.
		service = latency * time.Duration(max64(pagesTouched, 1))
	}
	if bandwidth > 0 {
		service += time.Duration(float64(bytes) / float64(bandwidth) * float64(time.Second))
	}
	waitUntil(d.throttle.reserve(service))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Create makes a new empty file. It fails if the name exists.
func (d *Device) Create(name string) (*File, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("device: file %q exists", name)
	}
	f := &File{dev: d, name: name, dirtyLo: -1}
	d.files[name] = f
	return f, nil
}

// Open returns an existing file by name.
func (d *Device) Open(name string) (*File, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("device: file %q not found", name)
	}
	return f, nil
}

// Remove deletes a file and releases its pages.
func (d *Device) Remove(name string) error {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("device: file %q not found", name)
	}
	delete(d.files, name)
	d.mu.Unlock()
	f.release()
	return nil
}

// List returns the names of all files, sorted.
func (d *Device) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close marks the device closed. Outstanding files remain readable so that
// shutdown paths can drain, but new allocation fails.
func (d *Device) Close() {
	d.closed.Store(true)
}
