package device

import (
	"sync"
	"time"
)

// throttle models the device's command channels as a real-time queue.
// Each I/O reserves the earliest-available channel for its service time and
// the caller blocks until the reserved completion instant. Under load,
// reservations stack up and callers observe queueing delay — the mechanism
// behind the write stalls and P99 tails the paper measures.
type throttle struct {
	mu       sync.Mutex
	channels []time.Time // per-channel next-free instant
	busy     time.Duration
	started  time.Time
}

func newThrottle(channels int) *throttle {
	if channels < 1 {
		channels = 1
	}
	t := &throttle{channels: make([]time.Time, channels), started: time.Now()}
	now := t.started
	for i := range t.channels {
		t.channels[i] = now
	}
	return t
}

// reserve books service time on the least-loaded channel and returns the
// completion instant the caller must wait for.
func (t *throttle) reserve(service time.Duration) time.Time {
	now := time.Now()
	t.mu.Lock()
	best := 0
	for i, free := range t.channels {
		if free.Before(t.channels[best]) {
			best = i
		}
	}
	start := t.channels[best]
	if start.Before(now) {
		start = now
	}
	end := start.Add(service)
	t.channels[best] = end
	t.busy += service
	t.mu.Unlock()
	return end
}

// busyTime returns the total service time booked and the wall time elapsed
// since the throttle was created; their ratio (per channel) is the device
// utilisation reported in Figures 2a and 3a.
func (t *throttle) busyTime() (busy time.Duration, elapsed time.Duration, channels int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.busy, time.Since(t.started), len(t.channels)
}

func (t *throttle) resetBusy() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.busy = 0
	t.started = time.Now()
}

// waitUntil blocks until instant ts. It sleeps for the bulk of the wait and
// yields-spins across the final stretch, because time.Sleep on Linux rounds
// small durations up far enough to distort a microsecond-scale device model.
func waitUntil(ts time.Time) {
	const spinWindow = 60 * time.Microsecond
	for {
		d := time.Until(ts)
		if d <= 0 {
			return
		}
		if d > spinWindow {
			time.Sleep(d - spinWindow)
			continue
		}
		// Short remainder: spin with scheduler yields.
		for time.Now().Before(ts) {
		}
		return
	}
}
