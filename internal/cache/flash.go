package cache

import (
	"container/list"
	"hash/crc32"
	"sync"

	"hyperdb/internal/device"
)

// BlockCache is the read-path cache interface shared by table readers.
// *LRU (DRAM) and *Tiered (DRAM + flash) both satisfy it.
type BlockCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
	Delete(key string)
}

// Flash is a device-backed block cache: the secondary-cache architecture
// the paper evaluates as RocksDB-SC, where the NVMe device caches data
// blocks for the SATA-resident LSM. Hits cost an NVMe page read; fills cost
// an NVMe page write — the "higher extra write volume" §4.2 observes.
type Flash struct {
	mu      sync.Mutex
	f       *device.File
	dev     *device.Device
	budget  int64
	used    int64
	items   map[string]*list.Element
	order   *list.List // front = most recent
	free    []flashExtent
	tail    int64
	hits    uint64
	misses  uint64
	fills   uint64
	crcErrs uint64
}

type flashExtent struct {
	off   int64
	pages int64
}

type flashEntry struct {
	key   string
	off   int64
	size  int64 // logical bytes
	pages int64
	crc   uint32
	ready bool // extent contents written
}

// NewFlash creates a flash cache holding up to budget bytes in a file on
// dev.
func NewFlash(dev *device.Device, name string, budget int64) (*Flash, error) {
	f, err := dev.Create(name)
	if err != nil {
		return nil, err
	}
	return &Flash{
		f:      f,
		dev:    dev,
		budget: budget,
		items:  make(map[string]*list.Element),
		order:  list.New(),
	}, nil
}

// Get reads a cached block from the device (one charged read). The extent
// is re-verified after the read: a concurrent eviction may have recycled it
// for another block, in which case the read retries or misses.
func (c *Flash) Get(key string) ([]byte, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		c.mu.Lock()
		el, ok := c.items[key]
		if !ok {
			c.misses++
			c.mu.Unlock()
			return nil, false
		}
		e := el.Value.(*flashEntry)
		if !e.ready {
			// Fill still in flight; treat as a miss.
			c.misses++
			c.mu.Unlock()
			return nil, false
		}
		c.order.MoveToFront(el)
		off, size, crc := e.off, e.size, e.crc
		c.mu.Unlock()

		buf := make([]byte, size)
		if _, err := c.f.ReadAt(buf, off, device.Fg); err != nil {
			return nil, false
		}
		c.mu.Lock()
		el2, ok2 := c.items[key]
		stable := ok2 && el2 == el && el2.Value.(*flashEntry).off == off
		c.mu.Unlock()
		if !stable {
			continue
		}
		if crc32.ChecksumIEEE(buf) != crc {
			// The extent raced a recycler; drop the entry and miss.
			c.mu.Lock()
			c.crcErrs++
			c.mu.Unlock()
			c.Delete(key)
			return nil, false
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return buf, true
	}
	return nil, false
}

// Put inserts a block, evicting LRU entries to fit (charged write).
func (c *Flash) Put(key string, value []byte) {
	ps := int64(c.dev.PageSize())
	pages := (int64(len(value)) + ps - 1) / ps
	if pages*ps > c.budget {
		return
	}
	c.mu.Lock()
	if _, ok := c.items[key]; ok {
		c.mu.Unlock()
		return
	}
	for c.used+pages*ps > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*flashEntry)
		c.order.Remove(back)
		delete(c.items, e.key)
		c.used -= e.pages * ps
		c.free = append(c.free, flashExtent{off: e.off, pages: e.pages})
	}
	// First-fit from the free list, else extend the tail.
	off := int64(-1)
	for i, fe := range c.free {
		if fe.pages >= pages {
			off = fe.off
			if fe.pages > pages {
				c.free[i] = flashExtent{off: fe.off + pages*ps, pages: fe.pages - pages}
			} else {
				c.free = append(c.free[:i], c.free[i+1:]...)
			}
			break
		}
	}
	if off < 0 {
		off = c.tail
		c.tail += pages * ps
	}
	e := &flashEntry{key: key, off: off, size: int64(len(value)), pages: pages, crc: crc32.ChecksumIEEE(value)}
	c.items[key] = c.order.PushFront(e)
	c.used += pages * ps
	c.fills++
	c.mu.Unlock()

	// Cache fill is background traffic: it is not on the client's critical
	// path (RocksDB-SC inserts on DRAM-cache eviction). The entry becomes
	// readable only once its bytes are on the device.
	if err := c.f.WriteAt(value, off, device.Bg); err != nil {
		c.Delete(key)
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		if fe := el.Value.(*flashEntry); fe.off == off {
			fe.ready = true
		}
	}
	c.mu.Unlock()
}

// Delete removes a cached block.
func (c *Flash) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*flashEntry)
		c.order.Remove(el)
		delete(c.items, e.key)
		ps := int64(c.dev.PageSize())
		c.used -= e.pages * ps
		c.free = append(c.free, flashExtent{off: e.off, pages: e.pages})
	}
}

// Stats returns hit/miss/fill counts.
func (c *Flash) Stats() (hits, misses, fills uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.fills
}

// CRCErrors returns the number of reads dropped by checksum verification.
func (c *Flash) CRCErrors() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crcErrs
}

// Tiered layers a DRAM LRU over a Flash cache: DRAM evictions spill to
// flash; flash hits re-promote to DRAM.
type Tiered struct {
	dram  *LRU
	flash *Flash
}

// NewTiered builds the two-level cache. DRAM evictions feed the flash tier.
func NewTiered(dramBytes int64, flash *Flash) *Tiered {
	t := &Tiered{flash: flash}
	t.dram = NewLRU(dramBytes, func(key string, value []byte) {
		flash.Put(key, value)
	})
	return t
}

// Get checks DRAM then flash, promoting flash hits.
func (t *Tiered) Get(key string) ([]byte, bool) {
	if v, ok := t.dram.Get(key); ok {
		return v, true
	}
	if v, ok := t.flash.Get(key); ok {
		t.dram.Put(key, v)
		return v, true
	}
	return nil, false
}

// Put inserts into DRAM (spilling to flash on eviction).
func (t *Tiered) Put(key string, value []byte) { t.dram.Put(key, value) }

// Delete removes from both tiers.
func (t *Tiered) Delete(key string) {
	t.dram.Delete(key)
	t.flash.Delete(key)
}
