// Package cache provides the DRAM caches from the paper's setup: a sharded,
// byte-budgeted LRU used at page granularity in front of both devices
// (64 MiB shared in the paper's experiments), and an object cache that
// staging-buffers promoted objects before they flush to the hot zone.
package cache

import (
	"container/list"
	"sync"
)

// entry is one cached item.
type entry struct {
	key    string
	value  []byte
	charge int64
}

// shard is an independently locked LRU. Hit/miss tallies live per shard,
// under the lock Get already holds, so parallel readers never contend on a
// shared counter cache line; Stats aggregates them on demand.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	hits     uint64
	misses   uint64
	order    *list.List // front = most recent
	items    map[string]*list.Element
	onEvict  func(key string, value []byte)
}

// LRU is a sharded least-recently-used byte cache.
type LRU struct {
	shards []shard
}

const nShards = 16

// NewLRU creates a cache with the given total byte capacity. onEvict, if
// non-nil, runs outside the shard lock for every evicted entry.
func NewLRU(capacity int64, onEvict func(key string, value []byte)) *LRU {
	c := &LRU{shards: make([]shard, nShards)}
	per := capacity / nShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = shard{
			capacity: per,
			order:    list.New(),
			items:    make(map[string]*list.Element),
			onEvict:  onEvict,
		}
	}
	return c
}

func (c *LRU) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%nShards]
}

// Get returns the cached value and refreshes its recency.
func (c *LRU) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*entry).value
	s.hits++
	s.mu.Unlock()
	return v, true
}

// Put inserts or refreshes key with the given value. Values larger than a
// shard are rejected silently (they would evict everything for one item).
func (c *LRU) Put(key string, value []byte) {
	s := c.shardFor(key)
	charge := int64(len(key) + len(value) + 64)
	if charge > s.capacity {
		return
	}
	var evicted []entry
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.used += charge - e.charge
		e.value, e.charge = value, charge
		s.order.MoveToFront(el)
	} else {
		s.items[key] = s.order.PushFront(&entry{key: key, value: value, charge: charge})
		s.used += charge
	}
	for s.used > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.order.Remove(back)
		delete(s.items, e.key)
		s.used -= e.charge
		evicted = append(evicted, *e)
	}
	s.mu.Unlock()
	if s.onEvict != nil {
		for _, e := range evicted {
			s.onEvict(e.key, e.value)
		}
	}
}

// Delete removes key if present.
func (c *LRU) Delete(key string) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.order.Remove(el)
		delete(s.items, key)
		s.used -= e.charge
	}
}

// Used returns the bytes currently cached.
func (c *LRU) Used() int64 {
	var total int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += c.shards[i].used
		c.shards[i].mu.Unlock()
	}
	return total
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	var total int
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return total
}

// HitRate returns hits/(hits+misses) since creation, or 0 when unused.
func (c *LRU) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Stats returns raw hit/miss counts summed across shards.
func (c *LRU) Stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}
