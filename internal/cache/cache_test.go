package cache

import (
	"fmt"
	"sync"
	"testing"

	"hyperdb/internal/device"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(1<<20, nil)
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("get a = %q %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	c.Put("a", []byte("2"))
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Fatal("overwrite failed")
	}
	c.Delete("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("delete failed")
	}
}

func TestLRUEvictsByBytes(t *testing.T) {
	// Tiny budget: with 16 shards, each shard holds very little.
	c := NewLRU(16*300, nil)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%02d", i), make([]byte, 100))
	}
	if used := c.Used(); used > 16*300 {
		t.Fatalf("used %d exceeds budget", used)
	}
	if c.Len() >= 100 {
		t.Fatal("nothing evicted")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	// Budget fits two entries per shard (charge = key+value+64 ≈ 130);
	// inserting a third evicts the least recent. Pick keys that share a
	// shard by brute force.
	c := NewLRU(16*300, nil)
	// Find three keys in one shard.
	shard0 := c.shardFor("probe")
	var ks []string
	for i := 0; len(ks) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == shard0 {
			ks = append(ks, k)
		}
	}
	c.Put(ks[0], make([]byte, 60))
	c.Put(ks[1], make([]byte, 60))
	c.Get(ks[0]) // refresh ks[0]
	c.Put(ks[2], make([]byte, 60))
	if _, ok := c.Get(ks[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(ks[1]); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestLRUOnEvict(t *testing.T) {
	var evicted []string
	c := NewLRU(16*200, func(key string, value []byte) {
		evicted = append(evicted, key)
	})
	shard0 := c.shardFor("probe")
	var ks []string
	for i := 0; len(ks) < 4; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == shard0 {
			ks = append(ks, k)
		}
	}
	for _, k := range ks {
		c.Put(k, make([]byte, 80))
	}
	if len(evicted) == 0 {
		t.Fatal("eviction callback never fired")
	}
}

func TestLRUOversizedRejected(t *testing.T) {
	c := NewLRU(1600, nil) // 100 bytes/shard
	c.Put("big", make([]byte, 4096))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized value should not be cached")
	}
}

func TestLRUHitRate(t *testing.T) {
	c := NewLRU(1<<20, nil)
	c.Put("a", []byte("x"))
	c.Get("a")
	c.Get("a")
	c.Get("b")
	if hr := c.HitRate(); hr < 0.6 || hr > 0.7 {
		t.Fatalf("hit rate = %f, want 2/3", hr)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(1<<20, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (id*31+i)%500)
				if i%3 == 0 {
					c.Put(k, []byte(k))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFlashCache(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("nvme", 1<<20))
	fl, err := NewFlash(dev, "flash", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	fl.Put("block1", []byte("contents-1"))
	before := dev.Counters().Snapshot()
	v, ok := fl.Get("block1")
	if !ok || string(v) != "contents-1" {
		t.Fatalf("flash get: %q %v", v, ok)
	}
	delta := dev.Counters().Snapshot().Sub(before)
	if delta.ReadBytes == 0 {
		t.Fatal("flash hit must charge a device read")
	}
	if _, ok := fl.Get("missing"); ok {
		t.Fatal("phantom flash hit")
	}
	hits, misses, fills := fl.Stats()
	if hits != 1 || misses != 1 || fills != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, fills)
	}
}

func TestFlashEvictionAndReuse(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("nvme", 1<<20))
	fl, _ := NewFlash(dev, "flash", 4*4096) // four pages
	for i := 0; i < 10; i++ {
		fl.Put(fmt.Sprintf("b%d", i), make([]byte, 4000))
	}
	// Only the most recent ~4 survive.
	if _, ok := fl.Get("b0"); ok {
		t.Fatal("oldest block survived eviction")
	}
	if _, ok := fl.Get("b9"); !ok {
		t.Fatal("newest block evicted")
	}
	if used := fl.used; used > 4*4096 {
		t.Fatalf("flash used %d over budget", used)
	}
}

func TestFlashWritesAreBackground(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("nvme", 1<<20))
	fl, _ := NewFlash(dev, "flash", 64<<10)
	fl.Put("b", make([]byte, 4096))
	s := dev.Counters().Snapshot()
	if s.BgWriteBytes == 0 {
		t.Fatal("cache fill should be background traffic")
	}
}

func TestTiered(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("nvme", 1<<20))
	fl, _ := NewFlash(dev, "flash", 64<<10)
	tc := NewTiered(16*200, fl) // tiny DRAM: spills fast
	shard := tc.dram.shardFor("probe")
	var ks []string
	for i := 0; len(ks) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if tc.dram.shardFor(k) == shard {
			ks = append(ks, k)
		}
	}
	tc.Put(ks[0], make([]byte, 80))
	tc.Put(ks[1], make([]byte, 80))
	tc.Put(ks[2], make([]byte, 80)) // evicts ks[0] or ks[1] into flash
	for _, k := range ks {
		if _, ok := tc.Get(k); !ok {
			t.Fatalf("%s lost from both tiers", k)
		}
	}
	tc.Delete(ks[0])
	if _, ok := tc.Get(ks[0]); ok {
		t.Fatal("delete did not remove from both tiers")
	}
}
