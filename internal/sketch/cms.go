// Package sketch implements the probabilistic summaries behind the hotness
// tracker's O(1)-memory mode: a Count-Min Sketch with conservative update
// for per-window access frequency, and a HyperLogLog for distinct-key
// cardinality. Both operate on a caller-supplied 64-bit key hash so the hot
// path scans each key exactly once and shares the hash between stripe
// selection, filter probes and sketch probes.
//
// Neither structure is safe for concurrent use; callers shard or lock,
// exactly as they do for the bloom filters.
package sketch

import "math"

// CMS is a Count-Min Sketch with conservative update: Add only raises the
// counters that equal the current minimum, so estimates stay
// overestimate-only while collision inflation shrinks well below the plain
// ε·N bound. Width w and depth d give the classic guarantee
// P[estimate > count + e/w · N] ≤ e^−d for N total additions.
type CMS struct {
	width  uint32
	depth  uint32
	counts []uint32 // depth rows of width counters, row-major
}

// NewCMS creates a sketch with the given geometry. Width is rounded up to a
// power of two so probe reduction is a mask, not a division.
func NewCMS(width, depth int) *CMS {
	if width < 16 {
		width = 16
	}
	if depth < 1 {
		depth = 1
	}
	if depth > 16 {
		depth = 16
	}
	w := uint32(1)
	for int(w) < width {
		w <<= 1
	}
	return &CMS{
		width:  w,
		depth:  uint32(depth),
		counts: make([]uint32, int(w)*depth),
	}
}

// NewCMSForError sizes a sketch for the classic (ε, δ) guarantee:
// width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉.
func NewCMSForError(epsilon, delta float64) *CMS {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.01
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.02
	}
	return NewCMS(int(math.Ceil(math.E/epsilon)), int(math.Ceil(math.Log(1/delta))))
}

// probe derives row i's column from the key hash by double hashing. The low
// half seeds the walk and the (odd-forced) high half strides it, the same
// split the bloom filters use — one 64-bit hash serves every probe.
func (c *CMS) probe(h uint64, i uint32) uint32 {
	h1, h2 := uint32(h), uint32(h>>32)|1
	return (h1 + i*h2) & (c.width - 1)
}

// AddHash counts one occurrence of the key hashed to h, with conservative
// update, and returns the key's new estimate.
func (c *CMS) AddHash(h uint64) uint32 {
	minv := uint32(math.MaxUint32)
	for i := uint32(0); i < c.depth; i++ {
		if v := c.counts[i*c.width+c.probe(h, i)]; v < minv {
			minv = v
		}
	}
	if minv == math.MaxUint32 { // depth 0 cannot happen, but stay safe
		return 0
	}
	minv++
	for i := uint32(0); i < c.depth; i++ {
		if p := &c.counts[i*c.width+c.probe(h, i)]; *p < minv {
			*p = minv
		}
	}
	return minv
}

// EstimateHash returns the count estimate for the key hashed to h: the
// minimum over its row counters, never below the true count.
func (c *CMS) EstimateHash(h uint64) uint32 {
	minv := uint32(math.MaxUint32)
	for i := uint32(0); i < c.depth; i++ {
		if v := c.counts[i*c.width+c.probe(h, i)]; v < minv {
			minv = v
		}
	}
	return minv
}

// AtLeastHash reports whether the estimate for the key hashed to h is at
// least threshold. Equivalent to EstimateHash(h) >= threshold but exits at
// the first row counter below the threshold, so misses — the common case on
// a discriminator's cascade scan — read one row instead of all of them.
func (c *CMS) AtLeastHash(h uint64, threshold uint32) bool {
	for i := uint32(0); i < c.depth; i++ {
		if c.counts[i*c.width+c.probe(h, i)] < threshold {
			return false
		}
	}
	return true
}

// Width returns the (rounded) counters-per-row.
func (c *CMS) Width() int { return int(c.width) }

// Depth returns the row count.
func (c *CMS) Depth() int { return int(c.depth) }

// SizeBytes returns the counter-array footprint.
func (c *CMS) SizeBytes() int64 { return int64(len(c.counts)) * 4 }

// Reset zeroes every counter, reusing the allocation.
func (c *CMS) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
}
