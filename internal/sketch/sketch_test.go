package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestCMSOverestimateOnly: with conservative update the estimate can never
// fall below the true count, for any insertion pattern.
func TestCMSOverestimateOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCMS(1024, 4)
	truth := make(map[uint64]uint32)
	hashes := make([]uint64, 5000)
	for i := range hashes {
		hashes[i] = rng.Uint64()
	}
	for n := 0; n < 200000; n++ {
		h := hashes[rng.Intn(len(hashes))]
		truth[h]++
		if got := c.AddHash(h); got < truth[h] {
			t.Fatalf("AddHash estimate %d below true count %d", got, truth[h])
		}
	}
	for h, want := range truth {
		if got := c.EstimateHash(h); got < want {
			t.Fatalf("estimate %d below true count %d", got, want)
		}
	}
}

// TestCMSErrorBound: the classic Count-Min guarantee — the overshoot
// exceeds ε·N with probability at most δ — must hold for the geometry
// NewCMSForError picks (conservative update only tightens it).
func TestCMSErrorBound(t *testing.T) {
	const epsilon, delta = 0.01, 0.02
	c := NewCMSForError(epsilon, delta)
	if c.Depth() < int(math.Ceil(math.Log(1/delta))) {
		t.Fatalf("depth %d below ln(1/δ)=%.1f", c.Depth(), math.Log(1/delta))
	}
	if float64(c.Width()) < math.E/epsilon {
		t.Fatalf("width %d below e/ε=%.0f", c.Width(), math.E/epsilon)
	}
	// The rounded width gives the effective ε the bound is stated against.
	effEps := math.E / float64(c.Width())

	rng := rand.New(rand.NewSource(2))
	truth := make(map[uint64]uint32)
	// Zipf-ish multiplicities: a realistic skewed stream.
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	var total uint64
	for n := 0; n < 300000; n++ {
		h := mix64(zipf.Uint64())
		truth[h]++
		c.AddHash(h)
		total++
	}
	bound := uint32(effEps * float64(total))
	var over int
	for h, want := range truth {
		if c.EstimateHash(h)-want > bound {
			over++
		}
	}
	frac := float64(over) / float64(len(truth))
	if frac > delta {
		t.Fatalf("%.4f of keys overshoot ε·N=%d (δ=%.3f)", frac, bound, delta)
	}
}

// TestCMSAtLeastAgreesWithEstimate: the early-exit threshold probe must be
// exactly EstimateHash(h) >= threshold for every key and threshold.
func TestCMSAtLeastAgreesWithEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCMS(256, 4)
	hashes := make([]uint64, 2000)
	for i := range hashes {
		hashes[i] = rng.Uint64()
		for k := rng.Intn(8); k >= 0; k-- {
			c.AddHash(hashes[i])
		}
	}
	for _, h := range hashes {
		est := c.EstimateHash(h)
		for _, th := range []uint32{0, 1, est, est + 1, est + 100} {
			if got, want := c.AtLeastHash(h, th), est >= th; got != want {
				t.Fatalf("AtLeastHash(h, %d) = %v, estimate %d", th, got, est)
			}
		}
	}
}

func TestCMSResetAndSize(t *testing.T) {
	c := NewCMS(100, 3) // width rounds up to 128
	if c.Width() != 128 || c.Depth() != 3 {
		t.Fatalf("geometry = %dx%d", c.Width(), c.Depth())
	}
	if c.SizeBytes() != 128*3*4 {
		t.Fatalf("SizeBytes = %d", c.SizeBytes())
	}
	c.AddHash(42)
	if c.EstimateHash(42) != 1 {
		t.Fatal("count lost")
	}
	c.Reset()
	if c.EstimateHash(42) != 0 {
		t.Fatal("reset incomplete")
	}
}

// TestHLLAccuracy: relative error stays within ~2% from 1e4 up to 1e7
// distinct values at precision 14 (the tracker's standalone-estimator
// setting; per-stripe instances use a smaller precision because their share
// of the window is proportionally smaller).
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []uint64{10_000, 100_000, 1_000_000, 10_000_000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			l := NewHLL(14)
			for i := uint64(0); i < n; i++ {
				// Sequential values exercise the internal finalizer: AddHash
				// must not rely on the caller's hash being well mixed.
				l.AddHash(i)
			}
			est := l.Estimate()
			rel := math.Abs(est-float64(n)) / float64(n)
			if rel > 0.02 {
				t.Fatalf("n=%d est=%.0f rel err %.4f > 2%%", n, est, rel)
			}
		})
	}
}

// TestHLLEstimateIsIncremental: the O(1) estimate must agree with a from-
// scratch recomputation of the harmonic sum at every checkpoint.
func TestHLLEstimateIsIncremental(t *testing.T) {
	l := NewHLL(8)
	recompute := func() float64 {
		var inv float64
		var zeros uint32
		for _, r := range l.reg {
			inv += math.Ldexp(1, -int(r))
			if r == 0 {
				zeros++
			}
		}
		if inv != l.invSum || zeros != l.zeros {
			t.Fatalf("incremental state drifted: invSum %.6f vs %.6f, zeros %d vs %d",
				l.invSum, inv, l.zeros, zeros)
		}
		return inv
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		l.AddHash(rng.Uint64())
		if i%997 == 0 {
			recompute()
		}
	}
	recompute()
}

func TestHLLSmallRangeAndReset(t *testing.T) {
	l := NewHLL(12)
	for i := uint64(0); i < 100; i++ {
		l.AddHash(i)
	}
	if est := l.Estimate(); math.Abs(est-100) > 5 {
		t.Fatalf("linear-counting estimate %.1f for 100 values", est)
	}
	if l.SizeBytes() != 4096 {
		t.Fatalf("SizeBytes = %d", l.SizeBytes())
	}
	l.Reset()
	if est := l.Estimate(); est != 0 {
		t.Fatalf("estimate after reset = %.1f", est)
	}
}

// TestHLLMonotoneWithinRegime: adding values never decreases the raw
// estimate; the tracker's occupancy counter relies on per-stripe estimates
// moving (almost) monotonically so seal checks can use a running sum.
func TestHLLMonotoneWithinRegime(t *testing.T) {
	l := NewHLL(10)
	rng := rand.New(rand.NewSource(4))
	prev := 0.0
	for i := 0; i < 200000; i++ {
		l.AddHash(rng.Uint64())
		if i%1000 == 0 {
			est := l.Estimate()
			// Allow the documented dip at the linear-counting crossover only.
			if est < prev*0.98 {
				t.Fatalf("estimate fell %.1f → %.1f at i=%d", prev, est, i)
			}
			if est > prev {
				prev = est
			}
		}
	}
}

func BenchmarkCMSAddHash(b *testing.B) {
	c := NewCMS(1<<15, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddHash(uint64(i))
	}
}

func BenchmarkHLLAddHash(b *testing.B) {
	l := NewHLL(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.AddHash(uint64(i))
	}
}
