package sketch

import (
	"math"
	"math/bits"
)

// HLL is a HyperLogLog distinct-value estimator over 64-bit hashes. The
// register array is fixed at construction (2^precision bytes) and the raw
// harmonic sum is maintained incrementally on every register change, so
// Estimate is O(1) — cheap enough for the hotness tracker to consult it on
// every Record when deciding whether the open window is full.
type HLL struct {
	p      uint8
	m      uint32
	reg    []uint8
	invSum float64 // Σ 2^−reg[j], updated incrementally
	zeros  uint32  // registers still at zero (linear-counting range)
}

// NewHLL creates an estimator with 2^precision registers. Precision 4–16;
// the standard error is ≈1.04/√m, so precision 12 (4 KiB) gives ~1.6% and
// precision 14 (16 KiB) ~0.8%.
func NewHLL(precision int) *HLL {
	if precision < 4 {
		precision = 4
	}
	if precision > 16 {
		precision = 16
	}
	m := uint32(1) << precision
	return &HLL{
		p:      uint8(precision),
		m:      m,
		reg:    make([]uint8, m),
		invSum: float64(m), // all registers zero: Σ 2^0 = m
		zeros:  m,
	}
}

// mix64 is a splitmix64-style finalizer decorrelating the HLL's register
// selection from the probes the same 64-bit key hash feeds elsewhere (bloom
// bits, CMS rows, stripe choice) and repairing FNV's weak avalanche on the
// short keys the engine sees.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// AddHash observes the key hashed to h and reports whether a register rose —
// i.e. whether Estimate can have changed. Callers polling the estimate on a
// hot path (the tracker's occupancy counter) skip the float math entirely
// when AddHash returns false, which is the overwhelmingly common case once
// the registers warm up.
func (l *HLL) AddHash(h uint64) bool {
	x := mix64(h)
	idx := x >> (64 - l.p)
	// Rank = position of the first set bit in the remaining stream. The OR
	// floors the value so rank caps at 64−p+1 even for an all-zero suffix.
	rank := uint8(bits.LeadingZeros64((x<<l.p)|(1<<(uint(l.p)-1))) + 1)
	cur := l.reg[idx]
	if rank <= cur {
		return false
	}
	l.invSum += math.Ldexp(1, -int(rank)) - math.Ldexp(1, -int(cur))
	if cur == 0 {
		l.zeros--
	}
	l.reg[idx] = rank
	return true
}

// Estimate returns the current distinct-count estimate. O(1): the harmonic
// sum is maintained by AddHash; only the bias constant and the small-range
// linear-counting correction are applied here.
func (l *HLL) Estimate() float64 {
	m := float64(l.m)
	est := l.alpha() * m * m / l.invSum
	if est <= 2.5*m && l.zeros > 0 {
		// Small-range correction: linear counting on empty registers.
		return m * math.Log(m/float64(l.zeros))
	}
	return est
}

func (l *HLL) alpha() float64 {
	switch l.m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(l.m))
	}
}

// SizeBytes returns the register-array footprint.
func (l *HLL) SizeBytes() int64 { return int64(len(l.reg)) }

// Reset clears the registers, reusing the allocation.
func (l *HLL) Reset() {
	for i := range l.reg {
		l.reg[i] = 0
	}
	l.invSum = float64(l.m)
	l.zeros = l.m
}
