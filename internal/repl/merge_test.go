package repl

import (
	"bytes"
	"testing"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/wal"
	"hyperdb/internal/wire"
)

func mergeOp(k string, d int64) core.BatchOp {
	return core.BatchOp{Key: []byte(k), Merge: true, Delta: d}
}

func TestLogShipsUnresolvedMergeDeltas(t *testing.T) {
	// The log snapshots ops at Append time — before the engine resolves
	// merges in place — so followers receive the unresolved delta and apply
	// it against their own identical base.
	l := NewLog(LogConfig{})
	ops := []core.BatchOp{mergeOp("ctr", 5), op("a", "1")}
	tok := l.Append(1, ops)
	// Simulate the engine's post-resolution write-back on the caller's
	// slice; the log's clone must be unaffected.
	ops[0].Merge = false
	ops[0].Value = []byte("resolved")
	l.Commit(tok, true)

	cur, ok := l.Subscribe(0)
	if !ok {
		t.Fatal("subscribe refused")
	}
	base, shipped, err := cur.Next(make(chan struct{}))
	if err != nil || base != 1 {
		t.Fatalf("next: base=%d err=%v", base, err)
	}
	if len(shipped) != 2 || !shipped[0].Merge || shipped[0].Delta != 5 || len(shipped[0].Value) != 0 {
		t.Fatalf("shipped merge op mutated: %+v", shipped[0])
	}
	if shipped[1].Merge || string(shipped[1].Value) != "1" {
		t.Fatalf("shipped put op mutated: %+v", shipped[1])
	}
}

func TestLogMergeSaveRecover(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("t", 0))
	w, err := wal.Open(dev, "repl-log")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(LogConfig{})
	e1 := []core.BatchOp{mergeOp("ctr", -42), op("a", "x")}
	e2 := []core.BatchOp{{Key: []byte("ctr"), Delete: true}, mergeOp("ctr", 7)}
	l.Commit(l.Append(1, e1), true)
	l.Commit(l.Append(3, e2), true)
	if err := l.SaveTo(w); err != nil {
		t.Fatal(err)
	}

	w2, err := wal.Open(dev, "repl-log")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RecoverLog(w2, LogConfig{}, 99)
	if err != nil {
		t.Fatal(err)
	}
	cur, ok := r.Subscribe(0)
	if !ok {
		t.Fatal("tail of recovered log refused")
	}
	stop := make(chan struct{})
	base, got1, err := cur.Next(stop)
	if err != nil || base != 1 {
		t.Fatalf("entry 1: base=%d err=%v", base, err)
	}
	if !got1[0].Merge || got1[0].Delta != -42 || !bytes.Equal(got1[0].Key, []byte("ctr")) {
		t.Fatalf("merge op lost through save/recover: %+v", got1[0])
	}
	if got1[1].Merge || string(got1[1].Value) != "x" {
		t.Fatalf("put op corrupted: %+v", got1[1])
	}
	base, got2, err := cur.Next(stop)
	if err != nil || base != 3 {
		t.Fatalf("entry 2: base=%d err=%v", base, err)
	}
	if !got2[0].Delete || got2[0].Merge {
		t.Fatalf("delete op corrupted: %+v", got2[0])
	}
	if !got2[1].Merge || got2[1].Delta != 7 {
		t.Fatalf("post-delete merge corrupted: %+v", got2[1])
	}
}

func TestLogBytesAccountsEncodedEntries(t *testing.T) {
	l := NewLog(LogConfig{})
	if l.Bytes() != 0 {
		t.Fatalf("fresh log reports %d bytes", l.Bytes())
	}
	// Bytes() must equal the real encoded size of the op stream — the
	// arithmetic mirror and the actual encoder agree, including the zig-zag
	// delta and multi-byte varint cases.
	e1 := []core.BatchOp{mergeOp("ctr", 300), mergeOp("c2", -1), op("key", "value")}
	l.Commit(l.Append(1, e1), true)
	want := uint64(len(wire.AppendReplFrame(nil, 1, toWireOps(e1))))
	if l.Bytes() != want {
		t.Fatalf("Bytes() = %d after entry 1, want %d", l.Bytes(), want)
	}
	e2 := []core.BatchOp{{Key: []byte("k"), Delete: true}}
	l.Commit(l.Append(4, e2), true)
	want += uint64(len(wire.AppendReplFrame(nil, 4, toWireOps(e2))))
	if l.Bytes() != want {
		t.Fatalf("Bytes() = %d after entry 2, want %d", l.Bytes(), want)
	}
}
