package repl

import (
	"errors"
	"fmt"
	"testing"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
	"hyperdb/internal/merkle"
	"hyperdb/internal/wire"
)

// openStoreAE is openStore with the anti-entropy Merkle tree enabled.
func openStoreAE(t testing.TB, follower bool, tee core.Tee) *core.DB {
	t.Helper()
	db, err := core.Open(core.Options{
		NVMe:              device.New(device.UnthrottledProfile("nvme", 64<<20)),
		SATA:              device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:        2,
		CacheBytes:        2 << 20,
		MigrationBatch:    128 << 10,
		DisableBackground: true,
		Tracker:           hotness.Config{WindowCapacity: 512},
		Follower:          follower,
		Tee:               tee,
		AntiEntropy:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// aeKey spreads keys across the Merkle leaf space: the first byte is a
// multiplicative hash of i, so a 2000-key dataset covers ~250 leaves and a
// 10-key divergence touches ~10 — the gap the O(divergence) assertion
// measures.
func aeKey(i int) []byte {
	h := byte(uint32(i) * 2654435761 >> 24)
	return append([]byte{h}, fmt.Sprintf("-ae-%05d", i)...)
}

func TestAntiEntropyRejoinTransfersOnlyDivergence(t *testing.T) {
	// A follower tails a 2000-key dataset, disconnects, and misses an
	// update burst confined to 10 keys that nonetheless pushes it off the
	// retained window. The rejoin must run the Merkle conversation and
	// transfer O(divergence) — a small fraction of the dataset — yet
	// converge byte-identically, deletions included. SyncAck keeps the
	// attached load inside the tiny window; with no peers connected the
	// churn phase commits immediately and truncates freely.
	log := NewLog(LogConfig{MaxEntries: 8, SyncAck: true})
	pdb := openStoreAE(t, false, log)
	fdb := openStoreAE(t, true, nil)
	prim := &Primary{DB: pdb, Log: log, SnapshotPairs: 64, Tree: pdb.MerkleTree()}
	fol := &Follower{DB: fdb, Tree: fdb.MerkleTree()}
	if prim.Tree == nil || fol.Tree == nil {
		t.Fatal("AntiEntropy stores did not build Merkle trees")
	}
	stop, _, fdone := startPair(prim, fol)

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	const n = 2000
	for i := 0; i < n; i++ {
		if err := pdb.Put(aeKey(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "follower to catch up", func() bool { return fdb.CommitSeq() == pdb.CommitSeq() })
	if got := prim.AEStatsSnapshot(); got.AESessions != 0 {
		t.Fatalf("anti-entropy ran during the initial tail attach: %+v", got)
	}

	// Disconnect, then churn 10 keys hard enough to truncate the log far
	// past the follower's position: overwrites, one delete, one new key.
	close(stop)
	if err := <-fdone; err != nil {
		t.Fatalf("first run: %v", err)
	}
	for round := 0; round < 50; round++ {
		for i := 0; i < 9; i++ {
			if err := pdb.Put(aeKey(i), []byte(fmt.Sprintf("round-%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := pdb.Delete(aeKey(4)); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Put(aeKey(n), []byte("brand-new")); err != nil {
		t.Fatal(err)
	}
	if log.Floor() <= fdb.CommitSeq() {
		t.Fatalf("churn did not push the floor (%d) past the follower (%d); test is vacuous", log.Floor(), fdb.CommitSeq())
	}

	// Reattach: the follower advertises anti-entropy and holds state, so
	// the primary must choose the Merkle conversation.
	stop2, _, fdone2 := startPair(prim, fol)
	defer func() { close(stop2); <-fdone2 }()
	waitFor(t, "lag to converge after anti-entropy rejoin", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})

	if _, err := fdb.Get(aeKey(4)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key survived the rejoin: %v", err)
	}
	if v, err := fdb.Get(aeKey(n)); err != nil || string(v) != "brand-new" {
		t.Fatalf("missed-gap key: %q %v", v, err)
	}
	assertStoresConverged(t, pdb, fdb)

	// Transfer accounting: one anti-entropy session ran, it fetched a
	// handful of leaves, and its payload is a small fraction of what a full
	// snapshot would have moved.
	st := prim.AEStatsSnapshot()
	if st.AESessions != 1 {
		t.Fatalf("AESessions = %d, want 1", st.AESessions)
	}
	if st.AEBytes == 0 || st.AENodes == 0 || st.AELeaves == 0 {
		t.Fatalf("anti-entropy counters empty: %+v", st)
	}
	if st.AELeaves > 30 {
		t.Fatalf("fetched %d leaves for a 10-key divergence", st.AELeaves)
	}
	var datasetBytes uint64
	kvs, err := pdb.Scan(nil, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		datasetBytes += uint64(len(kv.Key) + len(kv.Value))
	}
	if st.AEBytes*5 >= datasetBytes {
		t.Fatalf("anti-entropy moved %d of %d dataset bytes — not O(divergence)", st.AEBytes, datasetBytes)
	}

	// Tailing still works after the repair handoff.
	if err := pdb.Put([]byte("post-ae"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-rejoin tail apply", func() bool {
		_, err := fdb.Get([]byte("post-ae"))
		return err == nil
	})
}

func TestAntiEntropyNoDivergenceFetchesNothing(t *testing.T) {
	// The follower falls off the window, but the writes it missed rewrote
	// identical values: its data matches the primary exactly. The Merkle
	// walk must prove that from the root alone and fetch zero ranges.
	log := NewLog(LogConfig{MaxEntries: 8, SyncAck: true})
	pdb := openStoreAE(t, false, log)
	fdb := openStoreAE(t, true, nil)
	prim := &Primary{DB: pdb, Log: log, Tree: pdb.MerkleTree()}
	fol := &Follower{DB: fdb, Tree: fdb.MerkleTree()}
	stop, _, fdone := startPair(prim, fol)

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	for i := 0; i < 100; i++ {
		if err := pdb.Put(aeKey(i), []byte("stable")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "follower to catch up", func() bool { return fdb.CommitSeq() == pdb.CommitSeq() })

	close(stop)
	if err := <-fdone; err != nil {
		t.Fatalf("first run: %v", err)
	}
	// Same keys, same values: data unchanged, sequences marching on.
	for round := 0; round < 30; round++ {
		for i := 0; i < 5; i++ {
			if err := pdb.Put(aeKey(i), []byte("stable")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if log.Floor() <= fdb.CommitSeq() {
		t.Fatal("rewrites did not push the floor past the follower; test is vacuous")
	}

	stop2, _, fdone2 := startPair(prim, fol)
	defer func() { close(stop2); <-fdone2 }()
	waitFor(t, "lag to converge after empty rejoin", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})

	st := prim.AEStatsSnapshot()
	if st.AESessions != 1 {
		t.Fatalf("AESessions = %d, want 1", st.AESessions)
	}
	if st.AEBytes != 0 || st.AELeaves != 0 {
		t.Fatalf("identical replicas still transferred data: %+v", st)
	}
	assertStoresConverged(t, pdb, fdb)
}

func TestFreshFollowerStillFullSnapshotsWithTree(t *testing.T) {
	// A follower with the capability but no state (lastApplied 0) has
	// nothing to diff against — the primary must fall back to the plain
	// snapshot stream.
	log := NewLog(LogConfig{MaxEntries: 8})
	pdb := openStoreAE(t, false, log)
	for i := 0; i < 200; i++ {
		if err := pdb.Put(aeKey(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if log.Floor() == 0 {
		t.Fatal("pre-load did not truncate the log; test is vacuous")
	}

	fdb := openStoreAE(t, true, nil)
	prim := &Primary{DB: pdb, Log: log, Tree: pdb.MerkleTree()}
	fol := &Follower{DB: fdb, Tree: fdb.MerkleTree()}
	stop, _, fdone := startPair(prim, fol)
	defer func() { close(stop); <-fdone }()
	waitFor(t, "lag to converge after snapshot", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})

	st := prim.AEStatsSnapshot()
	if st.AESessions != 0 {
		t.Fatalf("fresh follower ran anti-entropy: %+v", st)
	}
	if st.SnapshotBytes == 0 {
		t.Fatal("full snapshot moved no bytes")
	}
	assertStoresConverged(t, pdb, fdb)
}

func TestWireTreeBitsCoverMerkle(t *testing.T) {
	// The wire layer bounds advertised tree geometry without importing the
	// merkle package; this pins the two limits together.
	var root [wire.TreeHashLen]byte
	if _, _, err := wire.DecodeTreeRoot(wire.AppendTreeRoot(nil, merkle.MaxBits, root)); err != nil {
		t.Fatalf("wire rejects merkle.MaxBits=%d: %v", merkle.MaxBits, err)
	}
	if _, _, err := wire.DecodeTreeRoot(wire.AppendTreeRoot(nil, merkle.MaxBits+1, root)); err == nil {
		t.Fatal("wire accepts tree bits beyond merkle.MaxBits")
	}
}
