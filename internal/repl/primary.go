package repl

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"

	"hyperdb/internal/core"
	"hyperdb/internal/keys"
	"hyperdb/internal/merkle"
	"hyperdb/internal/stats"
	"hyperdb/internal/wire"
)

// DB is the engine surface replication needs. Both *core.DB and the public
// *hyperdb.DB satisfy it.
type DB interface {
	CommitSeq() uint64
	Scan(start []byte, limit int) ([]core.KV, error)
	ApplyReplicated(ops []core.BatchOp, base uint64) error
	ApplySnapshotChunk(ops []core.BatchOp, seq uint64) error
	IsFollower() bool
	Promote()
}

// Primary ships the replication log to followers. One ServeConn call owns
// one follower connection for its lifetime; the serving layer (or a test
// harness over net.Pipe) hands the socket over after reading the follower's
// REPL_HELLO.
type Primary struct {
	DB  DB
	Log *Log
	// Tree, when non-nil, lets diverged followers rejoin via the Merkle
	// anti-entropy conversation instead of a full snapshot. Wire it to the
	// engine's tree (db.MerkleTree()) so committed writes keep it fresh.
	Tree *merkle.Tree
	// SnapshotPairs bounds pairs per snapshot scan page. Default 256.
	SnapshotPairs int
	// SnapshotChunkBytes splits scan pages into frames no bigger than
	// roughly this payload size. Default 512 KiB.
	SnapshotChunkBytes int

	// Transfer accounting: full-snapshot payload bytes vs anti-entropy
	// payload bytes — their gap is what Merkle rejoin saved — plus the
	// hash-walk effort (nodes served, leaf ranges fetched, sessions run).
	snapBytes  stats.Counter
	aeBytes    stats.Counter
	aeNodes    stats.Counter
	aeLeaves   stats.Counter
	aeSessions stats.Counter
}

// AEStats is a point-in-time view of the primary's transfer accounting.
type AEStats struct {
	SnapshotBytes uint64 // key+value bytes streamed by full snapshots
	AEBytes       uint64 // key+value bytes streamed by anti-entropy fetches
	AENodes       uint64 // tree node hashes served to diff queries
	AELeaves      uint64 // divergent leaf ranges fetched
	AESessions    uint64 // anti-entropy conversations served
}

// AEStatsSnapshot reads the transfer counters.
func (p *Primary) AEStatsSnapshot() AEStats {
	return AEStats{
		SnapshotBytes: p.snapBytes.Load(),
		AEBytes:       p.aeBytes.Load(),
		AENodes:       p.aeNodes.Load(),
		AELeaves:      p.aeLeaves.Load(),
		AESessions:    p.aeSessions.Load(),
	}
}

func (p *Primary) snapshotPairs() int {
	if p.SnapshotPairs > 0 {
		return p.SnapshotPairs
	}
	return 256
}

func (p *Primary) chunkBytes() int {
	if p.SnapshotChunkBytes > 0 {
		return p.SnapshotChunkBytes
	}
	return 512 << 10
}

// Serve reads the follower's REPL_HELLO from a raw connection and delegates
// to ServeConn. The serving layer reads the hello inside its own frame loop
// and calls ServeConn directly; harnesses over net.Pipe use Serve.
func (p *Primary) Serve(nc net.Conn) error {
	br := bufio.NewReader(nc)
	f, err := wire.ReadFrame(br, wire.MaxFrame)
	if err != nil {
		nc.Close()
		return err
	}
	if f.Op != wire.OpReplHello {
		nc.Close()
		return fmt.Errorf("repl: expected REPL_HELLO, got %s", f.Op)
	}
	epoch, lastApplied, flags, err := wire.DecodeReplHelloReq(f.Payload)
	if err != nil {
		nc.Close()
		return err
	}
	return p.ServeConn(nc, br, epoch, lastApplied, flags)
}

// ServeConn drives the primary side of one follower connection: subscribe
// the follower at lastApplied (epoch and lastApplied already decoded from
// its REPL_HELLO), bootstrap it via streamed snapshot when it has fallen
// off the retained window — or when its epoch shows its state comes from
// another write lineage, so its sequence numbers cannot be trusted against
// this log — then tail-ship committed entries and consume acks until the
// connection dies or the cursor overruns. br carries any bytes already
// buffered past the hello; nil wraps nc directly. ServeConn closes nc.
//
// flags carries the follower hello's capability bits: when it advertises
// anti-entropy, this primary has a Tree, and the follower holds state that
// fell off the retained window, the bootstrap runs the Merkle repair
// conversation — only divergent leaf ranges travel — instead of a full
// snapshot.
func (p *Primary) ServeConn(nc net.Conn, br *bufio.Reader, epoch, lastApplied uint64, flags uint8) error {
	defer nc.Close()
	if br == nil {
		br = bufio.NewReader(nc)
	}
	bw := bufio.NewWriter(nc)
	name := "follower"
	if addr := nc.RemoteAddr(); addr != nil {
		name = addr.String()
	}

	// A follower with no state at all (lastApplied 0) may tail regardless
	// of epoch; anyone else must prove its state is a prefix of this log's
	// history by presenting the matching epoch.
	var cur *Cursor
	ok := false
	if lastApplied == 0 || epoch == p.Log.Epoch() {
		cur, ok = p.Log.Subscribe(lastApplied)
	}
	start := lastApplied
	if ok {
		if err := writeFrame(bw, wire.Frame{
			Op: wire.OpReplHello, Status: wire.StatusOK,
			Payload: wire.AppendReplHelloResp(nil, wire.ReplModeTail, p.Log.Epoch(), start),
		}); err != nil {
			return err
		}
	} else {
		// The pin is held until the tail subscription is established, so a
		// truncation racing the stream can never raise the floor past the
		// snapshot sequence between the last chunk and the handoff.
		snapSeq := p.Log.PinHead()
		var err error
		if flags&wire.ReplFlagAntiEntropy != 0 && p.Tree != nil && lastApplied > 0 {
			// The follower has state and can diff it: ship only divergence.
			// Epoch mismatch does not disqualify — the hash walk finds every
			// range where the lineages differ, whatever their sequences say.
			err = p.serveAntiEntropy(bw, br, snapSeq)
		} else {
			err = p.streamSnapshot(bw, snapSeq)
		}
		if err != nil {
			p.Log.Unpin(snapSeq)
			return err
		}
		cur, ok = p.Log.Subscribe(snapSeq)
		p.Log.Unpin(snapSeq)
		if !ok {
			return fmt.Errorf("repl: snapshot seq %d below floor %d despite pin", snapSeq, p.Log.Floor())
		}
		start = snapSeq
	}

	peer := p.Log.Register(name, start, func() { nc.Close() })
	defer p.Log.Unregister(peer)

	// The ack reader is the only goroutine reading the socket; its exit
	// (peer gone, protocol violation, or a shutdown read-deadline) closes
	// done and the socket, which unblocks the ship loop below.
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer nc.Close()
		for {
			f, err := wire.ReadFrame(br, wire.MaxFrame)
			if err != nil {
				return
			}
			if f.Op != wire.OpReplAck {
				return
			}
			seq, err := wire.DecodeReplAck(f.Payload)
			if err != nil {
				return
			}
			peer.Ack(seq)
		}
	}()

	for {
		base, ops, err := cur.Next(done)
		if err != nil {
			nc.Close()
			<-done
			if errors.Is(err, ErrStopped) {
				return nil
			}
			return err
		}
		err = writeFrame(bw, wire.Frame{
			Op: wire.OpReplFrame, Status: wire.StatusOK, ID: base,
			Payload: wire.AppendReplFrame(nil, base, toWireOps(ops)),
		})
		if err != nil {
			<-done
			return err
		}
	}
}

// streamSnapshot sends the snapshot-mode hello, streams the store's live
// pairs in key order (every pair tagged with snapSeq, the pinned resolved
// head), and finishes with the done chunk. The caller pins snapSeq before
// calling and holds the pin until its tail subscription is established.
func (p *Primary) streamSnapshot(bw *bufio.Writer, snapSeq uint64) error {
	err := writeFrame(bw, wire.Frame{
		Op: wire.OpReplHello, Status: wire.StatusOK,
		Payload: wire.AppendReplHelloResp(nil, wire.ReplModeSnapshot, p.Log.Epoch(), snapSeq),
	})
	if err != nil {
		return err
	}
	return p.StreamSnapshotChunks(bw, snapSeq, nil)
}

// StreamSnapshotChunks streams the store's live pairs in key order as
// REPL_SNAPSHOT frames tagged with snapSeq, ending with the done chunk.
// keep, when non-nil, filters which keys ship — the slot-handoff driver
// passes the moving range's membership test so only migrating keys travel.
// The caller owns the pin on snapSeq and any preceding hello.
func (p *Primary) StreamSnapshotChunks(bw *bufio.Writer, snapSeq uint64, keep func(key []byte) bool) error {
	var pageStart []byte
	for {
		kvs, err := p.DB.Scan(pageStart, p.snapshotPairs())
		if err != nil {
			return fmt.Errorf("repl: snapshot scan: %w", err)
		}
		if len(kvs) == 0 {
			break
		}
		fullPage := len(kvs) == p.snapshotPairs()
		pageStart = keys.Successor(kvs[len(kvs)-1].Key)
		if keep != nil {
			n := 0
			for _, kv := range kvs {
				if keep(kv.Key) {
					kvs[n] = kv
					n++
				}
			}
			kvs = kvs[:n]
		}
		if err := p.writeSnapshotKVs(bw, kvs, snapSeq, &p.snapBytes); err != nil {
			return err
		}
		if !fullPage {
			break
		}
	}
	return writeFrame(bw, wire.Frame{
		Op: wire.OpReplSnapshot, Status: wire.StatusOK,
		Payload: wire.AppendReplSnapshot(nil, snapSeq, nil, true),
	})
}

// writeSnapshotKVs splits one scan page into byte-bounded REPL_SNAPSHOT
// frames so no frame approaches the wire's cap, feeding the payload bytes
// into counter.
func (p *Primary) writeSnapshotKVs(bw *bufio.Writer, kvs []core.KV, snapSeq uint64, counter *stats.Counter) error {
	for len(kvs) > 0 {
		n, size := 0, 0
		for n < len(kvs) && (n == 0 || size < p.chunkBytes()) {
			size += len(kvs[n].Key) + len(kvs[n].Value)
			n++
		}
		chunk := make([]wire.KV, n)
		for i := 0; i < n; i++ {
			chunk[i] = wire.KV{Key: kvs[i].Key, Value: kvs[i].Value}
		}
		err := writeFrame(bw, wire.Frame{
			Op: wire.OpReplSnapshot, Status: wire.StatusOK,
			Payload: wire.AppendReplSnapshot(nil, snapSeq, chunk, false),
		})
		if err != nil {
			return err
		}
		counter.Add(uint64(size))
		kvs = kvs[n:]
	}
	return nil
}

// serveAntiEntropy drives the primary side of the Merkle repair
// conversation, called with snapSeq pinned and before the ack reader
// starts, so this is the only reader of br. Protocol:
//
//  1. hello response, mode anti-entropy, carrying the pinned sequence;
//  2. TREE_ROOT push with the primary tree's geometry and root digest;
//  3. the follower walks: TREE_DIFF queries name node ids, the primary
//     answers each with the digests;
//  4. the walk ends with a TREE_DIFF carrying TreeDiffFetch and the
//     divergent leaf ids (possibly none); the primary streams exactly
//     those leaves' key ranges as REPL_SNAPSHOT chunks and finishes with
//     the done chunk, after which the caller hands off to tailing.
func (p *Primary) serveAntiEntropy(bw *bufio.Writer, br *bufio.Reader, snapSeq uint64) error {
	snap, err := p.Tree.Snapshot(p.scanPairs, p.snapshotPairs())
	if err != nil {
		return fmt.Errorf("repl: merkle snapshot: %w", err)
	}
	p.aeSessions.Inc()
	err = writeFrame(bw, wire.Frame{
		Op: wire.OpReplHello, Status: wire.StatusOK,
		Payload: wire.AppendReplHelloResp(nil, wire.ReplModeAntiEntropy, p.Log.Epoch(), snapSeq),
	})
	if err != nil {
		return err
	}
	err = writeFrame(bw, wire.Frame{
		Op: wire.OpTreeRoot, Status: wire.StatusOK,
		Payload: wire.AppendTreeRoot(nil, snap.Bits(), snap.Root()),
	})
	if err != nil {
		return err
	}
	for {
		f, err := wire.ReadFrame(br, wire.MaxFrame)
		if err != nil {
			return err
		}
		if f.Op != wire.OpTreeDiff {
			return fmt.Errorf("repl: unexpected op %s during anti-entropy", f.Op)
		}
		flags, ids, _, err := wire.DecodeTreeDiff(f.Payload)
		if err != nil {
			return err
		}
		if flags&wire.TreeDiffFetch != 0 {
			return p.streamLeafRanges(bw, snap, ids, snapSeq)
		}
		hashes := make([][wire.TreeHashLen]byte, len(ids))
		for i, id := range ids {
			h, ok := snap.Node(id)
			if !ok {
				return fmt.Errorf("repl: tree diff for node %d outside tree", id)
			}
			hashes[i] = h
		}
		p.aeNodes.Add(uint64(len(ids)))
		err = writeFrame(bw, wire.Frame{
			Op: wire.OpTreeDiff, Status: wire.StatusOK,
			Payload: wire.AppendTreeDiff(nil, wire.TreeDiffHashes, ids, hashes),
		})
		if err != nil {
			return err
		}
	}
}

// streamLeafRanges ships the named leaves' key ranges as snapshot chunks —
// the primary-side I/O is bounded by the divergent ranges, not the
// dataset — then the done chunk.
func (p *Primary) streamLeafRanges(bw *bufio.Writer, snap *merkle.Snapshot, leafIDs []uint32, snapSeq uint64) error {
	for _, id := range leafIDs {
		if !snap.IsLeaf(id) {
			return fmt.Errorf("repl: fetch of non-leaf node %d", id)
		}
	}
	// Leaves sort by id == bucket order == global key order, so the stream
	// stays ordered for the follower's sweep.
	sorted := append([]uint32(nil), leafIDs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	p.aeLeaves.Add(uint64(len(sorted)))
	for _, id := range sorted {
		lo, hi := snap.LeafSpan(id)
		start := lo
		for {
			kvs, err := p.DB.Scan(start, p.snapshotPairs())
			if err != nil {
				return fmt.Errorf("repl: anti-entropy scan: %w", err)
			}
			fullPage := len(kvs) == p.snapshotPairs()
			if len(kvs) > 0 {
				start = keys.Successor(kvs[len(kvs)-1].Key)
			}
			if hi != nil {
				n := 0
				for _, kv := range kvs {
					if bytes.Compare(kv.Key, hi) >= 0 {
						fullPage = false // past the leaf: stop paging
						break
					}
					kvs[n] = kv
					n++
				}
				kvs = kvs[:n]
			}
			if err := p.writeSnapshotKVs(bw, kvs, snapSeq, &p.aeBytes); err != nil {
				return err
			}
			if !fullPage {
				break
			}
		}
	}
	return writeFrame(bw, wire.Frame{
		Op: wire.OpReplSnapshot, Status: wire.StatusOK,
		Payload: wire.AppendReplSnapshot(nil, snapSeq, nil, true),
	})
}

// scanPairs adapts DB.Scan to the merkle package's pair stream.
func (p *Primary) scanPairs(start []byte, limit int) ([]merkle.Pair, error) {
	kvs, err := p.DB.Scan(start, limit)
	if err != nil {
		return nil, err
	}
	pairs := make([]merkle.Pair, len(kvs))
	for i, kv := range kvs {
		pairs[i] = merkle.Pair{Key: kv.Key, Value: kv.Value}
	}
	return pairs, nil
}

// AppendFilteredFrame encodes one log entry as a REPL_FRAME2 payload
// covering [base, base+len(ops)-1], keeping only ops whose key passes keep
// (nil keeps everything). It returns nil when no op survives the filter —
// the window moved nothing the handoff target needs, so shipping it would
// only burn bandwidth.
func AppendFilteredFrame(base uint64, ops []core.BatchOp, keep func(key []byte) bool) []byte {
	kept := make([]wire.BatchOp, 0, len(ops))
	for _, op := range ops {
		if keep != nil && !keep(op.Key) {
			continue
		}
		kept = append(kept, wire.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete, Merge: op.Merge, Delta: op.Delta})
	}
	if len(kept) == 0 {
		return nil
	}
	return wire.AppendReplFrame2(nil, base, base+uint64(len(ops))-1, kept)
}

// Status reports the log's view for stats rendering.
func (p *Primary) Status() LogStatus { return p.Log.Status() }

func writeFrame(bw *bufio.Writer, f wire.Frame) error {
	if _, err := bw.Write(wire.AppendFrame(nil, f)); err != nil {
		return err
	}
	return bw.Flush()
}
