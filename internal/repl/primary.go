package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"hyperdb/internal/core"
	"hyperdb/internal/keys"
	"hyperdb/internal/wire"
)

// DB is the engine surface replication needs. Both *core.DB and the public
// *hyperdb.DB satisfy it.
type DB interface {
	CommitSeq() uint64
	Scan(start []byte, limit int) ([]core.KV, error)
	ApplyReplicated(ops []core.BatchOp, base uint64) error
	ApplySnapshotChunk(ops []core.BatchOp, seq uint64) error
	IsFollower() bool
	Promote()
}

// Primary ships the replication log to followers. One ServeConn call owns
// one follower connection for its lifetime; the serving layer (or a test
// harness over net.Pipe) hands the socket over after reading the follower's
// REPL_HELLO.
type Primary struct {
	DB  DB
	Log *Log
	// SnapshotPairs bounds pairs per snapshot scan page. Default 256.
	SnapshotPairs int
	// SnapshotChunkBytes splits scan pages into frames no bigger than
	// roughly this payload size. Default 512 KiB.
	SnapshotChunkBytes int
}

func (p *Primary) snapshotPairs() int {
	if p.SnapshotPairs > 0 {
		return p.SnapshotPairs
	}
	return 256
}

func (p *Primary) chunkBytes() int {
	if p.SnapshotChunkBytes > 0 {
		return p.SnapshotChunkBytes
	}
	return 512 << 10
}

// Serve reads the follower's REPL_HELLO from a raw connection and delegates
// to ServeConn. The serving layer reads the hello inside its own frame loop
// and calls ServeConn directly; harnesses over net.Pipe use Serve.
func (p *Primary) Serve(nc net.Conn) error {
	br := bufio.NewReader(nc)
	f, err := wire.ReadFrame(br, wire.MaxFrame)
	if err != nil {
		nc.Close()
		return err
	}
	if f.Op != wire.OpReplHello {
		nc.Close()
		return fmt.Errorf("repl: expected REPL_HELLO, got %s", f.Op)
	}
	epoch, lastApplied, err := wire.DecodeReplHelloReq(f.Payload)
	if err != nil {
		nc.Close()
		return err
	}
	return p.ServeConn(nc, br, epoch, lastApplied)
}

// ServeConn drives the primary side of one follower connection: subscribe
// the follower at lastApplied (epoch and lastApplied already decoded from
// its REPL_HELLO), bootstrap it via streamed snapshot when it has fallen
// off the retained window — or when its epoch shows its state comes from
// another write lineage, so its sequence numbers cannot be trusted against
// this log — then tail-ship committed entries and consume acks until the
// connection dies or the cursor overruns. br carries any bytes already
// buffered past the hello; nil wraps nc directly. ServeConn closes nc.
func (p *Primary) ServeConn(nc net.Conn, br *bufio.Reader, epoch, lastApplied uint64) error {
	defer nc.Close()
	if br == nil {
		br = bufio.NewReader(nc)
	}
	bw := bufio.NewWriter(nc)
	name := "follower"
	if addr := nc.RemoteAddr(); addr != nil {
		name = addr.String()
	}

	// A follower with no state at all (lastApplied 0) may tail regardless
	// of epoch; anyone else must prove its state is a prefix of this log's
	// history by presenting the matching epoch.
	var cur *Cursor
	ok := false
	if lastApplied == 0 || epoch == p.Log.Epoch() {
		cur, ok = p.Log.Subscribe(lastApplied)
	}
	start := lastApplied
	if ok {
		if err := writeFrame(bw, wire.Frame{
			Op: wire.OpReplHello, Status: wire.StatusOK,
			Payload: wire.AppendReplHelloResp(nil, wire.ReplModeTail, p.Log.Epoch(), start),
		}); err != nil {
			return err
		}
	} else {
		// The pin is held until the tail subscription is established, so a
		// truncation racing the stream can never raise the floor past the
		// snapshot sequence between the last chunk and the handoff.
		snapSeq := p.Log.PinHead()
		err := p.streamSnapshot(bw, snapSeq)
		if err != nil {
			p.Log.Unpin(snapSeq)
			return err
		}
		cur, ok = p.Log.Subscribe(snapSeq)
		p.Log.Unpin(snapSeq)
		if !ok {
			return fmt.Errorf("repl: snapshot seq %d below floor %d despite pin", snapSeq, p.Log.Floor())
		}
		start = snapSeq
	}

	peer := p.Log.Register(name, start, func() { nc.Close() })
	defer p.Log.Unregister(peer)

	// The ack reader is the only goroutine reading the socket; its exit
	// (peer gone, protocol violation, or a shutdown read-deadline) closes
	// done and the socket, which unblocks the ship loop below.
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer nc.Close()
		for {
			f, err := wire.ReadFrame(br, wire.MaxFrame)
			if err != nil {
				return
			}
			if f.Op != wire.OpReplAck {
				return
			}
			seq, err := wire.DecodeReplAck(f.Payload)
			if err != nil {
				return
			}
			peer.Ack(seq)
		}
	}()

	for {
		base, ops, err := cur.Next(done)
		if err != nil {
			nc.Close()
			<-done
			if errors.Is(err, ErrStopped) {
				return nil
			}
			return err
		}
		err = writeFrame(bw, wire.Frame{
			Op: wire.OpReplFrame, Status: wire.StatusOK, ID: base,
			Payload: wire.AppendReplFrame(nil, base, toWireOps(ops)),
		})
		if err != nil {
			<-done
			return err
		}
	}
}

// streamSnapshot sends the snapshot-mode hello, streams the store's live
// pairs in key order (every pair tagged with snapSeq, the pinned resolved
// head), and finishes with the done chunk. The caller pins snapSeq before
// calling and holds the pin until its tail subscription is established.
func (p *Primary) streamSnapshot(bw *bufio.Writer, snapSeq uint64) error {
	err := writeFrame(bw, wire.Frame{
		Op: wire.OpReplHello, Status: wire.StatusOK,
		Payload: wire.AppendReplHelloResp(nil, wire.ReplModeSnapshot, p.Log.Epoch(), snapSeq),
	})
	if err != nil {
		return err
	}
	return p.StreamSnapshotChunks(bw, snapSeq, nil)
}

// StreamSnapshotChunks streams the store's live pairs in key order as
// REPL_SNAPSHOT frames tagged with snapSeq, ending with the done chunk.
// keep, when non-nil, filters which keys ship — the slot-handoff driver
// passes the moving range's membership test so only migrating keys travel.
// The caller owns the pin on snapSeq and any preceding hello.
func (p *Primary) StreamSnapshotChunks(bw *bufio.Writer, snapSeq uint64, keep func(key []byte) bool) error {
	var pageStart []byte
	for {
		kvs, err := p.DB.Scan(pageStart, p.snapshotPairs())
		if err != nil {
			return fmt.Errorf("repl: snapshot scan: %w", err)
		}
		if len(kvs) == 0 {
			break
		}
		fullPage := len(kvs) == p.snapshotPairs()
		pageStart = keys.Successor(kvs[len(kvs)-1].Key)
		if keep != nil {
			n := 0
			for _, kv := range kvs {
				if keep(kv.Key) {
					kvs[n] = kv
					n++
				}
			}
			kvs = kvs[:n]
		}
		// Split the page into byte-bounded chunks so one frame never
		// approaches the wire's frame cap.
		for len(kvs) > 0 {
			n, size := 0, 0
			for n < len(kvs) && (n == 0 || size < p.chunkBytes()) {
				size += len(kvs[n].Key) + len(kvs[n].Value)
				n++
			}
			chunk := make([]wire.KV, n)
			for i := 0; i < n; i++ {
				chunk[i] = wire.KV{Key: kvs[i].Key, Value: kvs[i].Value}
			}
			err = writeFrame(bw, wire.Frame{
				Op: wire.OpReplSnapshot, Status: wire.StatusOK,
				Payload: wire.AppendReplSnapshot(nil, snapSeq, chunk, false),
			})
			if err != nil {
				return err
			}
			kvs = kvs[n:]
		}
		if !fullPage {
			break
		}
	}
	return writeFrame(bw, wire.Frame{
		Op: wire.OpReplSnapshot, Status: wire.StatusOK,
		Payload: wire.AppendReplSnapshot(nil, snapSeq, nil, true),
	})
}

// AppendFilteredFrame encodes one log entry as a REPL_FRAME2 payload
// covering [base, base+len(ops)-1], keeping only ops whose key passes keep
// (nil keeps everything). It returns nil when no op survives the filter —
// the window moved nothing the handoff target needs, so shipping it would
// only burn bandwidth.
func AppendFilteredFrame(base uint64, ops []core.BatchOp, keep func(key []byte) bool) []byte {
	kept := make([]wire.BatchOp, 0, len(ops))
	for _, op := range ops {
		if keep != nil && !keep(op.Key) {
			continue
		}
		kept = append(kept, wire.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete, Merge: op.Merge, Delta: op.Delta})
	}
	if len(kept) == 0 {
		return nil
	}
	return wire.AppendReplFrame2(nil, base, base+uint64(len(ops))-1, kept)
}

// Status reports the log's view for stats rendering.
func (p *Primary) Status() LogStatus { return p.Log.Status() }

func writeFrame(bw *bufio.Writer, f wire.Frame) error {
	if _, err := bw.Write(wire.AppendFrame(nil, f)); err != nil {
		return err
	}
	return bw.Flush()
}
