package repl

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

func openStore(t testing.TB, follower bool, tee core.Tee) *core.DB {
	t.Helper()
	db, err := core.Open(core.Options{
		NVMe:              device.New(device.UnthrottledProfile("nvme", 64<<20)),
		SATA:              device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:        2,
		CacheBytes:        2 << 20,
		MigrationBatch:    128 << 10,
		DisableBackground: true,
		Tracker:           hotness.Config{WindowCapacity: 512},
		Follower:          follower,
		Tee:               tee,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// startPair wires a primary and follower over net.Pipe and returns the
// follower stop channel plus completion channels for both sides.
func startPair(prim *Primary, fol *Follower) (stop chan struct{}, pdone, fdone chan error) {
	pc, fc := net.Pipe()
	stop = make(chan struct{})
	pdone = make(chan error, 1)
	fdone = make(chan error, 1)
	go func() { pdone <- prim.Serve(pc) }()
	go func() { fdone <- fol.Run(fc, stop) }()
	return stop, pdone, fdone
}

func TestTailReplicationSyncAck(t *testing.T) {
	log := NewLog(LogConfig{SyncAck: true})
	pdb := openStore(t, false, log)
	fdb := openStore(t, true, nil)
	prim := &Primary{DB: pdb, Log: log}
	fol := &Follower{DB: fdb}
	stop, pdone, fdone := startPair(prim, fol)

	// Wait for registration so the sync-ack gate covers every write below.
	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })

	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
	for i := 0; i < 100; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Synchronous mode: a returned Put is already applied on the follower.
	for _, i := range []int{0, 37, 99} {
		v, err := fdb.Get(key(i))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("follower key %d: %q %v", i, v, err)
		}
	}

	// Batches and deletes replicate through the same path.
	if err := pdb.WriteBatch([]core.BatchOp{
		{Key: key(0), Value: []byte("rewritten")},
		{Key: key(1), Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Delete(key(2)); err != nil {
		t.Fatal(err)
	}
	if v, err := fdb.Get(key(0)); err != nil || string(v) != "rewritten" {
		t.Fatalf("follower rewrite: %q %v", v, err)
	}
	for _, i := range []int{1, 2} {
		if _, err := fdb.Get(key(i)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("follower delete %d: %v", i, err)
		}
	}

	// Sequences agree and lag is zero the moment writes stop.
	if ps, fs := pdb.CommitSeq(), fdb.CommitSeq(); ps != fs {
		t.Fatalf("seq mismatch: primary %d follower %d", ps, fs)
	}
	st := log.Status()
	if len(st.Peers) != 1 || st.Peers[0].Lag != 0 {
		t.Fatalf("status %+v, want zero lag", st)
	}

	close(stop)
	if err := <-fdone; err != nil {
		t.Fatalf("follower: %v", err)
	}
	if err := <-pdone; err != nil {
		t.Fatalf("primary: %v", err)
	}
}

func TestLagConvergesToZeroAsync(t *testing.T) {
	log := NewLog(LogConfig{})
	pdb := openStore(t, false, log)
	fdb := openStore(t, true, nil)
	prim := &Primary{DB: pdb, Log: log}
	fol := &Follower{DB: fdb}
	stop, _, fdone := startPair(prim, fol)
	defer func() { close(stop); <-fdone }()

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	key := func(i int) []byte { return []byte(fmt.Sprintf("async-%04d", i)) }
	for i := 0; i < 300; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Load has stopped; the follower must drain to zero lag.
	waitFor(t, "lag to converge to 0", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})
	for _, i := range []int{0, 150, 299} {
		v, err := fdb.Get(key(i))
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("follower key %d: %q %v", i, v, err)
		}
	}
}

func TestSnapshotBootstrapPastWindow(t *testing.T) {
	// A tiny retained window plus a big pre-load guarantees a fresh
	// follower (lastApplied 0) is below the floor and must bootstrap via
	// snapshot before tailing.
	log := NewLog(LogConfig{MaxEntries: 8})
	pdb := openStore(t, false, log)
	key := func(i int) []byte { return []byte(fmt.Sprintf("snap-%04d", i)) }
	for i := 0; i < 400; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pdb.Delete(key(3)); err != nil {
		t.Fatal(err)
	}
	if log.Floor() == 0 {
		t.Fatal("pre-load did not truncate the log; test is vacuous")
	}

	flog := NewLog(LogConfig{})
	fdb := openStore(t, true, flog)
	prim := &Primary{DB: pdb, Log: log, SnapshotPairs: 64}
	fol := &Follower{DB: fdb, Log: flog}
	stop, _, fdone := startPair(prim, fol)
	defer func() { close(stop); <-fdone }()

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	// Post-snapshot writes arrive via the tail.
	if err := pdb.Put(key(0), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lag to converge to 0", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})

	for _, i := range []int{1, 2, 100, 399} {
		v, err := fdb.Get(key(i))
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("follower key %d: %q %v", i, v, err)
		}
	}
	if v, err := fdb.Get(key(0)); err != nil || string(v) != "updated" {
		t.Fatalf("tailed update: %q %v", v, err)
	}
	if _, err := fdb.Get(key(3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key resurrected on follower: %v", err)
	}
	// The follower's own log was floored at the snapshot sequence, so a
	// stale downstream replica cannot silently tail across the bootstrap.
	if flog.Floor() == 0 {
		t.Fatal("follower log floor not set after snapshot bootstrap")
	}

	// Full-state equivalence via scan.
	want, err := pdb.Scan(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fdb.Scan(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("scan size mismatch: primary %d follower %d", len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i].Key, got[i].Key) || !bytes.Equal(want[i].Value, got[i].Value) {
			t.Fatalf("scan divergence at %d: %q vs %q", i, want[i].Key, got[i].Key)
		}
	}
}

// assertStoresConverged fails unless a full scan of both stores agrees.
func assertStoresConverged(t *testing.T, pdb, fdb *core.DB) {
	t.Helper()
	want, err := pdb.Scan(nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fdb.Scan(nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("scan size mismatch: primary %d follower %d", len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i].Key, got[i].Key) || !bytes.Equal(want[i].Value, got[i].Value) {
			t.Fatalf("scan divergence at %d: %q vs %q", i, want[i].Key, got[i].Key)
		}
	}
}

func TestReBootstrapDoesNotResurrectDeletions(t *testing.T) {
	// The scenario the redial loop produces naturally: a follower tails for
	// a while, loses its connection, and falls off the retained window
	// during the gap — in which the primary deletes keys the follower
	// already holds. The second attach must bootstrap via snapshot AND
	// convey those deletions, or the follower resurrects dead keys forever.
	log := NewLog(LogConfig{MaxEntries: 8})
	pdb := openStore(t, false, log)
	fdb := openStore(t, true, nil)
	prim := &Primary{DB: pdb, Log: log, SnapshotPairs: 64}
	fol := &Follower{DB: fdb}
	stop, _, fdone := startPair(prim, fol)

	key := func(i int) []byte { return []byte(fmt.Sprintf("rb-%04d", i)) }
	for i := 0; i < 50; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "follower to catch up", func() bool { return fdb.CommitSeq() == pdb.CommitSeq() })

	// Disconnect, then change state during the gap: delete keys the
	// follower holds, overwrite one, and write far past the window.
	close(stop)
	if err := <-fdone; err != nil {
		t.Fatalf("first run: %v", err)
	}
	for _, i := range []int{3, 17, 49} {
		if err := pdb.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pdb.Put(key(5), []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 300; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Reattach the same follower: it is below the floor now, so the
	// primary streams a snapshot onto its existing state.
	stop2, _, fdone2 := startPair(prim, fol)
	defer func() { close(stop2); <-fdone2 }()
	waitFor(t, "lag to converge after re-bootstrap", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})

	for _, i := range []int{3, 17, 49} {
		if _, err := fdb.Get(key(i)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("deleted key %d resurrected after re-bootstrap: %v", i, err)
		}
	}
	if v, err := fdb.Get(key(5)); err != nil || string(v) != "rewritten" {
		t.Fatalf("overwritten key: %q %v", v, err)
	}
	assertStoresConverged(t, pdb, fdb)
}

func TestDivergentNodeForcedThroughSnapshot(t *testing.T) {
	// A node resurrected from a previous primary incarnation: it holds
	// replicated state (including sequences past the new primary's head)
	// that the new primary's log never saw. Its epoch cannot match, so it
	// must be forced through a snapshot that sweeps the divergent keys —
	// silently tailing would diverge forever.
	fdb := openStore(t, true, nil)
	if err := fdb.ApplyReplicated([]core.BatchOp{
		{Key: []byte("ghost-a"), Value: []byte("old-world")},
		{Key: []byte("ghost-b"), Value: []byte("old-world")},
	}, 40); err != nil {
		t.Fatal(err)
	}

	log := NewLog(LogConfig{})
	pdb := openStore(t, false, log)
	for i := 0; i < 10; i++ {
		if err := pdb.Put([]byte(fmt.Sprintf("live-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if fdb.CommitSeq() <= log.Head() {
		t.Fatalf("test setup: follower seq %d not past primary head %d", fdb.CommitSeq(), log.Head())
	}

	prim := &Primary{DB: pdb, Log: log}
	fol := &Follower{DB: fdb}
	stop, _, fdone := startPair(prim, fol)
	defer func() { close(stop); <-fdone }()
	waitFor(t, "lag to converge after forced snapshot", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})

	for _, k := range []string{"ghost-a", "ghost-b"} {
		if _, err := fdb.Get([]byte(k)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("divergent key %q survived the forced snapshot: %v", k, err)
		}
	}
	// Tailing still works after the bootstrap reset the apply position
	// below the store's old sequence counter.
	if err := pdb.Put([]byte("live-post"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-bootstrap tail apply", func() bool {
		_, err := fdb.Get([]byte("live-post"))
		return err == nil
	})
	assertStoresConverged(t, pdb, fdb)
}

func TestFailoverPromoteServesWrites(t *testing.T) {
	log := NewLog(LogConfig{SyncAck: true})
	pdb := openStore(t, false, log)
	flog := NewLog(LogConfig{})
	fdb := openStore(t, true, flog)
	prim := &Primary{DB: pdb, Log: log}
	fol := &Follower{DB: fdb, Log: flog}
	stop, _, fdone := startPair(prim, fol)

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	for i := 0; i < 50; i++ {
		if err := pdb.Put([]byte(fmt.Sprintf("fo-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// "Kill" the primary: stop the applier, promote the follower.
	close(stop)
	if err := <-fdone; err != nil {
		t.Fatalf("follower run: %v", err)
	}
	fdb.Promote()
	if fdb.IsFollower() {
		t.Fatal("still follower")
	}
	// Every synchronously acked write survived.
	for i := 0; i < 50; i++ {
		if _, err := fdb.Get([]byte(fmt.Sprintf("fo-%03d", i))); err != nil {
			t.Fatalf("acked write lost: %d %v", i, err)
		}
	}
	// New writes mint sequences above everything applied and tee into the
	// promoted node's own log, so it can serve its own followers.
	before := fdb.CommitSeq()
	if err := fdb.Put([]byte("post-promote"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if fdb.CommitSeq() <= before {
		t.Fatal("sequence did not advance past replicated history")
	}
	if flog.Head() <= before {
		t.Fatalf("promoted node's log head %d did not record the new write", flog.Head())
	}
}
