package repl

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

func openStore(t testing.TB, follower bool, tee core.Tee) *core.DB {
	t.Helper()
	db, err := core.Open(core.Options{
		NVMe:              device.New(device.UnthrottledProfile("nvme", 64<<20)),
		SATA:              device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:        2,
		CacheBytes:        2 << 20,
		MigrationBatch:    128 << 10,
		DisableBackground: true,
		Tracker:           hotness.Config{WindowCapacity: 512},
		Follower:          follower,
		Tee:               tee,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// startPair wires a primary and follower over net.Pipe and returns the
// follower stop channel plus completion channels for both sides.
func startPair(prim *Primary, fol *Follower) (stop chan struct{}, pdone, fdone chan error) {
	pc, fc := net.Pipe()
	stop = make(chan struct{})
	pdone = make(chan error, 1)
	fdone = make(chan error, 1)
	go func() { pdone <- prim.Serve(pc) }()
	go func() { fdone <- fol.Run(fc, stop) }()
	return stop, pdone, fdone
}

func TestTailReplicationSyncAck(t *testing.T) {
	log := NewLog(LogConfig{SyncAck: true})
	pdb := openStore(t, false, log)
	fdb := openStore(t, true, nil)
	prim := &Primary{DB: pdb, Log: log}
	fol := &Follower{DB: fdb}
	stop, pdone, fdone := startPair(prim, fol)

	// Wait for registration so the sync-ack gate covers every write below.
	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })

	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
	for i := 0; i < 100; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Synchronous mode: a returned Put is already applied on the follower.
	for _, i := range []int{0, 37, 99} {
		v, err := fdb.Get(key(i))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("follower key %d: %q %v", i, v, err)
		}
	}

	// Batches and deletes replicate through the same path.
	if err := pdb.WriteBatch([]core.BatchOp{
		{Key: key(0), Value: []byte("rewritten")},
		{Key: key(1), Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Delete(key(2)); err != nil {
		t.Fatal(err)
	}
	if v, err := fdb.Get(key(0)); err != nil || string(v) != "rewritten" {
		t.Fatalf("follower rewrite: %q %v", v, err)
	}
	for _, i := range []int{1, 2} {
		if _, err := fdb.Get(key(i)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("follower delete %d: %v", i, err)
		}
	}

	// Sequences agree and lag is zero the moment writes stop.
	if ps, fs := pdb.CommitSeq(), fdb.CommitSeq(); ps != fs {
		t.Fatalf("seq mismatch: primary %d follower %d", ps, fs)
	}
	st := log.Status()
	if len(st.Peers) != 1 || st.Peers[0].Lag != 0 {
		t.Fatalf("status %+v, want zero lag", st)
	}

	close(stop)
	if err := <-fdone; err != nil {
		t.Fatalf("follower: %v", err)
	}
	if err := <-pdone; err != nil {
		t.Fatalf("primary: %v", err)
	}
}

func TestLagConvergesToZeroAsync(t *testing.T) {
	log := NewLog(LogConfig{})
	pdb := openStore(t, false, log)
	fdb := openStore(t, true, nil)
	prim := &Primary{DB: pdb, Log: log}
	fol := &Follower{DB: fdb}
	stop, _, fdone := startPair(prim, fol)
	defer func() { close(stop); <-fdone }()

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	key := func(i int) []byte { return []byte(fmt.Sprintf("async-%04d", i)) }
	for i := 0; i < 300; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Load has stopped; the follower must drain to zero lag.
	waitFor(t, "lag to converge to 0", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})
	for _, i := range []int{0, 150, 299} {
		v, err := fdb.Get(key(i))
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("follower key %d: %q %v", i, v, err)
		}
	}
}

func TestSnapshotBootstrapPastWindow(t *testing.T) {
	// A tiny retained window plus a big pre-load guarantees a fresh
	// follower (lastApplied 0) is below the floor and must bootstrap via
	// snapshot before tailing.
	log := NewLog(LogConfig{MaxEntries: 8})
	pdb := openStore(t, false, log)
	key := func(i int) []byte { return []byte(fmt.Sprintf("snap-%04d", i)) }
	for i := 0; i < 400; i++ {
		if err := pdb.Put(key(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pdb.Delete(key(3)); err != nil {
		t.Fatal(err)
	}
	if log.Floor() == 0 {
		t.Fatal("pre-load did not truncate the log; test is vacuous")
	}

	flog := NewLog(LogConfig{})
	fdb := openStore(t, true, flog)
	prim := &Primary{DB: pdb, Log: log, SnapshotPairs: 64}
	fol := &Follower{DB: fdb, Log: flog}
	stop, _, fdone := startPair(prim, fol)
	defer func() { close(stop); <-fdone }()

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	// Post-snapshot writes arrive via the tail.
	if err := pdb.Put(key(0), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lag to converge to 0", func() bool {
		st := log.Status()
		return len(st.Peers) == 1 && st.Peers[0].Lag == 0
	})

	for _, i := range []int{1, 2, 100, 399} {
		v, err := fdb.Get(key(i))
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("follower key %d: %q %v", i, v, err)
		}
	}
	if v, err := fdb.Get(key(0)); err != nil || string(v) != "updated" {
		t.Fatalf("tailed update: %q %v", v, err)
	}
	if _, err := fdb.Get(key(3)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key resurrected on follower: %v", err)
	}
	// The follower's own log was floored at the snapshot sequence, so a
	// stale downstream replica cannot silently tail across the bootstrap.
	if flog.Floor() == 0 {
		t.Fatal("follower log floor not set after snapshot bootstrap")
	}

	// Full-state equivalence via scan.
	want, err := pdb.Scan(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fdb.Scan(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("scan size mismatch: primary %d follower %d", len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i].Key, got[i].Key) || !bytes.Equal(want[i].Value, got[i].Value) {
			t.Fatalf("scan divergence at %d: %q vs %q", i, want[i].Key, got[i].Key)
		}
	}
}

func TestFailoverPromoteServesWrites(t *testing.T) {
	log := NewLog(LogConfig{SyncAck: true})
	pdb := openStore(t, false, log)
	flog := NewLog(LogConfig{})
	fdb := openStore(t, true, flog)
	prim := &Primary{DB: pdb, Log: log}
	fol := &Follower{DB: fdb, Log: flog}
	stop, _, fdone := startPair(prim, fol)

	waitFor(t, "follower registration", func() bool { return len(log.Status().Peers) == 1 })
	for i := 0; i < 50; i++ {
		if err := pdb.Put([]byte(fmt.Sprintf("fo-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// "Kill" the primary: stop the applier, promote the follower.
	close(stop)
	if err := <-fdone; err != nil {
		t.Fatalf("follower run: %v", err)
	}
	fdb.Promote()
	if fdb.IsFollower() {
		t.Fatal("still follower")
	}
	// Every synchronously acked write survived.
	for i := 0; i < 50; i++ {
		if _, err := fdb.Get([]byte(fmt.Sprintf("fo-%03d", i))); err != nil {
			t.Fatalf("acked write lost: %d %v", i, err)
		}
	}
	// New writes mint sequences above everything applied and tee into the
	// promoted node's own log, so it can serve its own followers.
	before := fdb.CommitSeq()
	if err := fdb.Put([]byte("post-promote"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if fdb.CommitSeq() <= before {
		t.Fatal("sequence did not advance past replicated history")
	}
	if flog.Head() <= before {
		t.Fatalf("promoted node's log head %d did not record the new write", flog.Head())
	}
}
