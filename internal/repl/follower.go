package repl

import (
	"bufio"
	"fmt"
	"net"

	"hyperdb/internal/core"
	"hyperdb/internal/wire"
)

// Follower drives the replica side of one upstream connection: announce the
// last applied sequence, bootstrap from a snapshot when the primary says
// so, then apply tailed entries and acknowledge each one. The store must be
// open in follower mode; every apply goes through the engine's normal batch
// machinery so zone placement, hotness, and compaction behave exactly as
// they would on the primary.
type Follower struct {
	DB DB
	// Log, when non-nil, is this node's own replication log (the engine's
	// Tee). A snapshot bootstrap floors it at the snapshot sequence so that,
	// after a promotion, downstream followers can't silently tail across
	// history this node never logged.
	Log *Log
}

// Run replicates from the upstream connection until it fails or stop
// closes. It returns nil on stop, the transport or apply error otherwise;
// the caller owns redial policy. Run closes nc.
func (f *Follower) Run(nc net.Conn, stop <-chan struct{}) error {
	defer nc.Close()
	// Translate stop into a socket close so blocking reads abort promptly.
	finished := make(chan struct{})
	defer close(finished)
	if stop != nil {
		go func() {
			select {
			case <-stop:
				nc.Close()
			case <-finished:
			}
		}()
	}
	isStop := func() bool {
		if stop == nil {
			return false
		}
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	lastApplied := f.DB.CommitSeq()
	err := writeFrame(bw, wire.Frame{
		Op:      wire.OpReplHello,
		Payload: wire.AppendReplHelloReq(nil, lastApplied),
	})
	if err != nil {
		if isStop() {
			return nil
		}
		return err
	}

	hello, err := wire.ReadFrame(br, wire.MaxFrame)
	if err != nil {
		if isStop() {
			return nil
		}
		return err
	}
	if hello.Op != wire.OpReplHello || hello.Status != wire.StatusOK {
		return fmt.Errorf("repl: upstream rejected hello: op=%s status=%d %q", hello.Op, hello.Status, hello.Payload)
	}
	mode, startSeq, err := wire.DecodeReplHelloResp(hello.Payload)
	if err != nil {
		return err
	}

	if mode == wire.ReplModeSnapshot {
		if err := f.bootstrap(br, startSeq); err != nil {
			if isStop() {
				return nil
			}
			return err
		}
	}

	for {
		fr, err := wire.ReadFrame(br, wire.MaxFrame)
		if err != nil {
			if isStop() {
				return nil
			}
			return err
		}
		if fr.Op != wire.OpReplFrame {
			return fmt.Errorf("repl: unexpected op %s while tailing", fr.Op)
		}
		base, wops, err := wire.DecodeReplFrame(fr.Payload)
		if err != nil {
			return err
		}
		if err := f.DB.ApplyReplicated(fromWireOps(wops), base); err != nil {
			return fmt.Errorf("repl: apply entry at %d: %w", base, err)
		}
		last := base + uint64(len(wops)) - 1
		err = writeFrame(bw, wire.Frame{
			Op: wire.OpReplAck, Status: wire.StatusOK, ID: fr.ID,
			Payload: wire.AppendReplAck(nil, last),
		})
		if err != nil {
			if isStop() {
				return nil
			}
			return err
		}
	}
}

// bootstrap consumes the snapshot stream, applying every chunk at the
// pinned sequence, and floors this node's own log when it has one.
func (f *Follower) bootstrap(br *bufio.Reader, snapSeq uint64) error {
	for {
		fr, err := wire.ReadFrame(br, wire.MaxFrame)
		if err != nil {
			return err
		}
		if fr.Op != wire.OpReplSnapshot {
			return fmt.Errorf("repl: unexpected op %s during snapshot", fr.Op)
		}
		seq, kvs, done, err := wire.DecodeReplSnapshot(fr.Payload)
		if err != nil {
			return err
		}
		if seq != snapSeq {
			return fmt.Errorf("repl: snapshot seq changed mid-stream: %d then %d", snapSeq, seq)
		}
		if len(kvs) > 0 {
			if err := f.DB.ApplySnapshotChunk(kvsToBatch(kvs), snapSeq); err != nil {
				return fmt.Errorf("repl: apply snapshot chunk: %w", err)
			}
		}
		if done {
			break
		}
	}
	if f.Log != nil {
		f.Log.SetFloor(snapSeq)
	}
	return nil
}

func kvsToBatch(kvs []wire.KV) []core.BatchOp {
	ops := make([]core.BatchOp, len(kvs))
	for i, kv := range kvs {
		ops[i] = core.BatchOp{
			Key:   append([]byte(nil), kv.Key...),
			Value: append([]byte(nil), kv.Value...),
		}
	}
	return ops
}
