package repl

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sort"
	"sync/atomic"

	"hyperdb/internal/core"
	"hyperdb/internal/keys"
	"hyperdb/internal/merkle"
	"hyperdb/internal/wire"
)

// sweepPairs bounds the local scan pages used to reconcile the store
// against an incoming snapshot stream.
const sweepPairs = 256

// Follower drives the replica side of one upstream connection: announce the
// last applied sequence, bootstrap from a snapshot when the primary says
// so, then apply tailed entries and acknowledge each one. The store must be
// open in follower mode; every apply goes through the engine's normal batch
// machinery so zone placement, hotness, and compaction behave exactly as
// they would on the primary.
//
// A Follower is stateful across Run calls (the redial loop reuses it): it
// remembers the upstream's write-lineage epoch and the replication
// position it has applied through, so a reattach resumes from the stream
// position rather than the store's raw sequence counter — the two diverge
// after a forced re-bootstrap onto a store that already held state.
type Follower struct {
	DB DB
	// Log, when non-nil, is this node's own replication log (the engine's
	// Tee). A snapshot bootstrap floors it at the snapshot sequence so that,
	// after a promotion, downstream followers can't silently tail across
	// history this node never logged.
	Log *Log
	// ApplyDelay, when non-nil, runs before each tailed entry applies; base
	// is the entry's first sequence. Test harnesses inject replication lag
	// with it (the consistency checker stalls appliers to force session
	// reads into the gate); production leaves it nil.
	ApplyDelay func(base uint64)
	// Tree, when non-nil, advertises the anti-entropy capability on hello:
	// a re-attach that fell off the primary's retained window then runs the
	// Merkle repair conversation (fetching only divergent leaf ranges)
	// instead of a full snapshot. Wire it to the engine's tree
	// (db.MerkleTree()) so every local apply keeps it fresh.
	Tree *merkle.Tree

	// epoch is the upstream log's lineage ID from the last hello response
	// (0 until first attach); applied is the stream position this Follower
	// has applied through (0 means "unknown: fall back to CommitSeq").
	// epoch is atomic because the serving drainer reads it concurrently to
	// stamp session replies while Run keeps replicating.
	epoch   atomic.Uint64
	applied uint64
}

// Epoch returns the upstream write-lineage ID this follower last attached
// under, 0 before the first successful hello. Safe to call concurrently
// with Run.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// Run replicates from the upstream connection until it fails or stop
// closes. It returns nil on stop, the transport or apply error otherwise;
// the caller owns redial policy. Run closes nc.
func (f *Follower) Run(nc net.Conn, stop <-chan struct{}) error {
	defer nc.Close()
	// Translate stop into a socket close so blocking reads abort promptly.
	finished := make(chan struct{})
	defer close(finished)
	if stop != nil {
		go func() {
			select {
			case <-stop:
				nc.Close()
			case <-finished:
			}
		}()
	}
	isStop := func() bool {
		if stop == nil {
			return false
		}
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	lastApplied := f.applied
	if lastApplied == 0 {
		lastApplied = f.DB.CommitSeq()
	}
	var helloFlags uint8
	if f.Tree != nil {
		helloFlags |= wire.ReplFlagAntiEntropy
	}
	err := writeFrame(bw, wire.Frame{
		Op:      wire.OpReplHello,
		Payload: wire.AppendReplHelloReq(nil, f.epoch.Load(), lastApplied, helloFlags),
	})
	if err != nil {
		if isStop() {
			return nil
		}
		return err
	}

	hello, err := wire.ReadFrame(br, wire.MaxFrame)
	if err != nil {
		if isStop() {
			return nil
		}
		return err
	}
	if hello.Op != wire.OpReplHello || hello.Status != wire.StatusOK {
		return fmt.Errorf("repl: upstream rejected hello: op=%s status=%d %q", hello.Op, hello.Status, hello.Payload)
	}
	mode, epoch, startSeq, err := wire.DecodeReplHelloResp(hello.Payload)
	if err != nil {
		return err
	}

	switch mode {
	case wire.ReplModeSnapshot:
		if err := f.bootstrap(br, startSeq); err != nil {
			if isStop() {
				return nil
			}
			return err
		}
	case wire.ReplModeAntiEntropy:
		if err := f.antiEntropy(br, bw, startSeq); err != nil {
			if isStop() {
				return nil
			}
			return err
		}
	}
	// Attached: adopt the upstream's lineage and resume point (in tail mode
	// startSeq echoes lastApplied; after a bootstrap it is the snapshot seq).
	f.epoch.Store(epoch)
	f.applied = startSeq

	for {
		fr, err := wire.ReadFrame(br, wire.MaxFrame)
		if err != nil {
			if isStop() {
				return nil
			}
			return err
		}
		if fr.Op != wire.OpReplFrame {
			return fmt.Errorf("repl: unexpected op %s while tailing", fr.Op)
		}
		base, wops, err := wire.DecodeReplFrame(fr.Payload)
		if err != nil {
			return err
		}
		if f.ApplyDelay != nil {
			f.ApplyDelay(base)
		}
		if err := f.DB.ApplyReplicated(fromWireOps(wops), base); err != nil {
			return fmt.Errorf("repl: apply entry at %d: %w", base, err)
		}
		last := base + uint64(len(wops)) - 1
		f.applied = last
		err = writeFrame(bw, wire.Frame{
			Op: wire.OpReplAck, Status: wire.StatusOK, ID: fr.ID,
			Payload: wire.AppendReplAck(nil, last),
		})
		if err != nil {
			if isStop() {
				return nil
			}
			return err
		}
	}
}

// bootstrap consumes the snapshot stream, applying every chunk at the
// pinned sequence, and floors this node's own log when it has one. The
// snapshot carries only live pairs, so deletions are conveyed by sweeping:
// chunks arrive in global key order, and before each chunk applies, every
// local key inside its range that the chunk does not contain is deleted at
// the snapshot sequence. A follower that re-bootstraps onto existing state
// (it fell off the retained window, or its epoch no longer matches) thus
// converges exactly — keys deleted on the primary during the gap do not
// resurrect.
func (f *Follower) bootstrap(br *bufio.Reader, snapSeq uint64) error {
	if err := f.consumeSnapshot(br, snapSeq, nil, nil, nil); err != nil {
		return err
	}
	return f.finishBootstrap(snapSeq)
}

// consumeSnapshot applies a REPL_SNAPSHOT chunk stream. cursor is the
// lowest local key not yet reconciled against the stream (nil: keyspace
// start); inScope, when non-nil, restricts the sweep to keys the stream
// covers (anti-entropy fetches only divergent leaf ranges, so local keys
// outside them must survive); finalHi, when non-nil, bounds the final
// chunk's sweep instead of the end of the keyspace.
func (f *Follower) consumeSnapshot(br *bufio.Reader, snapSeq uint64, cursor []byte, inScope func([]byte) bool, finalHi []byte) error {
	for {
		fr, err := wire.ReadFrame(br, wire.MaxFrame)
		if err != nil {
			return err
		}
		if fr.Op != wire.OpReplSnapshot {
			return fmt.Errorf("repl: unexpected op %s during snapshot", fr.Op)
		}
		seq, kvs, done, err := wire.DecodeReplSnapshot(fr.Payload)
		if err != nil {
			return err
		}
		if seq != snapSeq {
			return fmt.Errorf("repl: snapshot seq changed mid-stream: %d then %d", snapSeq, seq)
		}
		if err := f.sweepStale(cursor, kvs, snapSeq, done, inScope, finalHi); err != nil {
			return err
		}
		if len(kvs) > 0 {
			if err := f.DB.ApplySnapshotChunk(kvsToBatch(kvs), snapSeq); err != nil {
				return fmt.Errorf("repl: apply snapshot chunk: %w", err)
			}
			cursor = keys.Successor(kvs[len(kvs)-1].Key)
		}
		if done {
			return nil
		}
	}
}

// finishBootstrap stamps the bootstrap position even when the stream
// carried no pairs and nothing needed sweeping, so the tail handoff starts
// from snapSeq, and resets this node's own log.
func (f *Follower) finishBootstrap(snapSeq uint64) error {
	if err := f.DB.ApplySnapshotChunk(nil, snapSeq); err != nil {
		return err
	}
	if f.Log != nil {
		// The bootstrap replaced this node's state wholesale: its own log's
		// window and lineage no longer describe it, and the incoming tail
		// may restart below the old head. Reset rather than floor.
		f.Log.ResetTo(snapSeq)
	}
	return nil
}

// sweepStale deletes every local key covered by this chunk's range that
// the chunk does not contain: keys in [cursor, last chunk key], or from
// cursor to the end of the keyspace (bounded by finalHi when set) for the
// final chunk. Local keys past the range are left for later chunks; keys
// outside inScope (when non-nil) are never deleted — the stream does not
// speak for their ranges. Deletes apply at the snapshot sequence, exactly
// like the snapshot's own pairs.
func (f *Follower) sweepStale(cursor []byte, kvs []wire.KV, snapSeq uint64, final bool, inScope func([]byte) bool, finalHi []byte) error {
	var hi []byte
	if n := len(kvs); n > 0 {
		hi = kvs[n-1].Key
	} else if !final {
		return nil
	}
	ki := 0
	for {
		page, err := f.DB.Scan(cursor, sweepPairs)
		if err != nil {
			return fmt.Errorf("repl: snapshot sweep scan: %w", err)
		}
		var dels []core.BatchOp
		inRange := len(page)
		for i, kv := range page {
			if !final && bytes.Compare(kv.Key, hi) > 0 {
				inRange = i
				break
			}
			if final && finalHi != nil && bytes.Compare(kv.Key, finalHi) >= 0 {
				inRange = i
				break
			}
			for ki < len(kvs) && bytes.Compare(kvs[ki].Key, kv.Key) < 0 {
				ki++
			}
			if ki < len(kvs) && bytes.Equal(kvs[ki].Key, kv.Key) {
				continue // retained: the chunk overwrites it
			}
			if inScope != nil && !inScope(kv.Key) {
				continue // the stream does not cover this key's range
			}
			dels = append(dels, core.BatchOp{Key: append([]byte(nil), kv.Key...), Delete: true})
		}
		if len(dels) > 0 {
			if err := f.DB.ApplySnapshotChunk(dels, snapSeq); err != nil {
				return fmt.Errorf("repl: sweep stale keys: %w", err)
			}
		}
		if inRange < len(page) || len(page) < sweepPairs {
			return nil
		}
		cursor = keys.Successor(page[len(page)-1].Key)
	}
}

// antiEntropy drives the follower side of the Merkle repair conversation
// (the mirror of Primary.serveAntiEntropy): read the primary's TREE_ROOT,
// snapshot the local tree at the same geometry, walk mismatched subtrees
// top-down with TREE_DIFF hash queries, then fetch exactly the divergent
// leaf ranges as a scoped snapshot stream. Keys outside those ranges are
// provably identical on both sides — the sweep never touches them — so
// the transfer is O(divergence), not O(dataset).
func (f *Follower) antiEntropy(br *bufio.Reader, bw *bufio.Writer, snapSeq uint64) error {
	fr, err := wire.ReadFrame(br, wire.MaxFrame)
	if err != nil {
		return err
	}
	if fr.Op != wire.OpTreeRoot {
		return fmt.Errorf("repl: expected TREE_ROOT, got %s", fr.Op)
	}
	bits, root, err := wire.DecodeTreeRoot(fr.Payload)
	if err != nil {
		return err
	}
	var snap *merkle.Snapshot
	if f.Tree != nil && f.Tree.Bits() == bits {
		snap, err = f.Tree.Snapshot(f.scanPairs, sweepPairs)
	} else {
		// Geometry mismatch: rebuild from scratch at the primary's bits so
		// the hashes compare node-for-node.
		snap, err = merkle.BuildSnapshot(bits, f.scanPairs, sweepPairs)
	}
	if err != nil {
		return fmt.Errorf("repl: merkle snapshot: %w", err)
	}

	var divergent []uint32
	if snap.Root() != root {
		mismatched := []uint32{1}
		for len(mismatched) > 0 {
			query := make([]uint32, 0, 2*len(mismatched))
			for _, id := range mismatched {
				query = append(query, 2*id, 2*id+1)
			}
			err = writeFrame(bw, wire.Frame{
				Op: wire.OpTreeDiff, Status: wire.StatusOK,
				Payload: wire.AppendTreeDiff(nil, 0, query, nil),
			})
			if err != nil {
				return err
			}
			resp, err := wire.ReadFrame(br, wire.MaxFrame)
			if err != nil {
				return err
			}
			if resp.Op != wire.OpTreeDiff {
				return fmt.Errorf("repl: unexpected op %s during anti-entropy", resp.Op)
			}
			flags, ids, hashes, err := wire.DecodeTreeDiff(resp.Payload)
			if err != nil {
				return err
			}
			if flags != wire.TreeDiffHashes || len(ids) != len(query) {
				return fmt.Errorf("repl: bad tree diff response: flags %#x, %d ids for %d queried", flags, len(ids), len(query))
			}
			mismatched = mismatched[:0]
			for i, id := range ids {
				if id != query[i] {
					return fmt.Errorf("repl: tree diff response id %d, queried %d", id, query[i])
				}
				local, ok := snap.Node(id)
				if !ok {
					return fmt.Errorf("repl: tree diff response for node %d outside tree", id)
				}
				if local == hashes[i] {
					continue
				}
				if snap.IsLeaf(id) {
					divergent = append(divergent, id)
				} else {
					mismatched = append(mismatched, id)
				}
			}
		}
	}

	sort.Slice(divergent, func(a, b int) bool { return divergent[a] < divergent[b] })
	err = writeFrame(bw, wire.Frame{
		Op: wire.OpTreeDiff, Status: wire.StatusOK,
		Payload: wire.AppendTreeDiff(nil, wire.TreeDiffFetch, divergent, nil),
	})
	if err != nil {
		return err
	}
	if len(divergent) == 0 {
		// Nothing diverged: the primary answers the empty fetch with just the
		// done chunk. No sweeping — local state is proven identical.
		fr, err := wire.ReadFrame(br, wire.MaxFrame)
		if err != nil {
			return err
		}
		if fr.Op != wire.OpReplSnapshot {
			return fmt.Errorf("repl: unexpected op %s during snapshot", fr.Op)
		}
		seq, kvs, done, err := wire.DecodeReplSnapshot(fr.Payload)
		if err != nil {
			return err
		}
		if !done || len(kvs) != 0 || seq != snapSeq {
			return fmt.Errorf("repl: expected bare done chunk after empty fetch (seq=%d done=%v pairs=%d)", seq, done, len(kvs))
		}
		return f.finishBootstrap(snapSeq)
	}
	buckets := make(map[uint32]struct{}, len(divergent))
	for _, id := range divergent {
		buckets[snap.LeafBucket(id)] = struct{}{}
	}
	inScope := func(key []byte) bool {
		_, ok := buckets[merkle.BucketOf(uint(bits), key)]
		return ok
	}
	cursor, _ := snap.LeafSpan(divergent[0])
	_, finalHi := snap.LeafSpan(divergent[len(divergent)-1])
	if err := f.consumeSnapshot(br, snapSeq, cursor, inScope, finalHi); err != nil {
		return err
	}
	return f.finishBootstrap(snapSeq)
}

// scanPairs adapts DB.Scan to the merkle package's pair stream.
func (f *Follower) scanPairs(start []byte, limit int) ([]merkle.Pair, error) {
	kvs, err := f.DB.Scan(start, limit)
	if err != nil {
		return nil, err
	}
	pairs := make([]merkle.Pair, len(kvs))
	for i, kv := range kvs {
		pairs[i] = merkle.Pair{Key: kv.Key, Value: kv.Value}
	}
	return pairs, nil
}

func kvsToBatch(kvs []wire.KV) []core.BatchOp {
	ops := make([]core.BatchOp, len(kvs))
	for i, kv := range kvs {
		ops[i] = core.BatchOp{
			Key:   append([]byte(nil), kv.Key...),
			Value: append([]byte(nil), kv.Value...),
		}
	}
	return ops
}
