package repl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/wal"
)

func op(k, v string) core.BatchOp {
	return core.BatchOp{Key: []byte(k), Value: []byte(v)}
}

// collect drains n entries from a cursor with a timeout guard.
func collect(t *testing.T, c *Cursor, n int) []uint64 {
	t.Helper()
	stop := make(chan struct{})
	timer := time.AfterFunc(5*time.Second, func() { close(stop) })
	defer timer.Stop()
	var bases []uint64
	for i := 0; i < n; i++ {
		base, _, err := c.Next(stop)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		bases = append(bases, base)
	}
	return bases
}

func TestLogShipsResolvedPrefixInBaseOrder(t *testing.T) {
	l := NewLog(LogConfig{})
	t1 := l.Append(1, []core.BatchOp{op("a", "1"), op("b", "1")}) // 1..2
	t2 := l.Append(3, []core.BatchOp{op("c", "1")})               // 3
	t3 := l.Append(4, []core.BatchOp{op("d", "1")})               // 4

	cur, ok := l.Subscribe(0)
	if !ok {
		t.Fatal("subscribe at 0 refused on empty-floor log")
	}

	// Resolve out of order: 3 commits first, then 1; nothing ships past the
	// pending entry 1 until it resolves.
	l.Commit(t2, true)
	stop := make(chan struct{})
	close(stop)
	if _, _, err := cur.Next(stop); !errors.Is(err, ErrStopped) {
		t.Fatalf("shipped past a pending entry: %v", err)
	}
	l.Commit(t1, true)
	if got := collect(t, cur, 2); got[0] != 1 || got[1] != 3 {
		t.Fatalf("bases %v, want [1 3]", got)
	}
	// Aborted entries never ship: after aborting 4, the cursor stays dry.
	l.Commit(t3, false)
	stop2 := make(chan struct{})
	close(stop2)
	if _, _, err := cur.Next(stop2); !errors.Is(err, ErrStopped) {
		t.Fatalf("aborted entry shipped: %v", err)
	}
	if l.Head() != 4 {
		t.Fatalf("head %d, want 4", l.Head())
	}
}

func TestLogTruncationFloorAndOverrun(t *testing.T) {
	l := NewLog(LogConfig{MaxEntries: 2})
	seq := uint64(1)
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			tok := l.Append(seq, []core.BatchOp{op(fmt.Sprintf("k%d", seq), "v")})
			l.Commit(tok, true)
			seq++
		}
	}
	appendN(6)
	if l.Floor() != 4 {
		t.Fatalf("floor %d, want 4 (entries 1-4 truncated)", l.Floor())
	}
	// A follower below the floor must snapshot.
	if _, ok := l.Subscribe(3); ok {
		t.Fatal("subscribe below floor accepted")
	}
	// At or above the floor it can tail.
	cur, ok := l.Subscribe(4)
	if !ok {
		t.Fatal("subscribe at floor refused")
	}
	if got := collect(t, cur, 2); got[0] != 5 || got[1] != 6 {
		t.Fatalf("bases %v, want [5 6]", got)
	}
	// A slow cursor that falls off the window overruns.
	slow, ok := l.Subscribe(4)
	if !ok {
		t.Fatal("subscribe refused")
	}
	appendN(4)
	stop := make(chan struct{})
	close(stop)
	if _, _, err := slow.Next(stop); !errors.Is(err, ErrOverrun) {
		t.Fatalf("want ErrOverrun, got %v", err)
	}
	// A subscriber claiming a sequence above everything the log has ever
	// covered holds state from some other history: tailing would silently
	// skip it, so it must be refused into a snapshot instead.
	if _, ok := l.Subscribe(l.Head() + 1); ok {
		t.Fatal("subscribe above head accepted")
	}
	if _, ok := l.Subscribe(l.Head()); !ok {
		t.Fatal("subscribe at head refused")
	}
}

func TestLogEpochMintedAndRecovered(t *testing.T) {
	a, b := NewLog(LogConfig{}), NewLog(LogConfig{})
	if a.Epoch() == 0 || b.Epoch() == 0 {
		t.Fatal("zero epoch minted")
	}
	if a.Epoch() == b.Epoch() {
		t.Fatal("two fresh logs share an epoch")
	}
}

func TestLogSyncAckTimeoutEvictsDeadPeer(t *testing.T) {
	l := NewLog(LogConfig{SyncAck: true, AckTimeout: 50 * time.Millisecond})
	evicted := make(chan struct{})
	l.Register("dead", 0, func() { close(evicted) })

	tok := l.Append(1, []core.BatchOp{op("a", "1")})
	done := make(chan struct{})
	go func() { l.Commit(tok, true); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("commit never timed out on a peer that never acks")
	}
	select {
	case <-evicted:
	case <-time.After(time.Second):
		t.Fatal("laggard peer's evict hook never ran")
	}
	if st := l.Status(); len(st.Peers) != 0 {
		t.Fatalf("evicted peer still registered: %+v", st)
	}

	// With the laggard gone, later synchronous commits are unimpeded.
	tok = l.Append(2, []core.BatchOp{op("b", "1")})
	done = make(chan struct{})
	go func() { l.Commit(tok, true); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("commit blocked after eviction")
	}
}

func TestLogPinHoldsWindow(t *testing.T) {
	l := NewLog(LogConfig{MaxEntries: 2})
	for seq := uint64(1); seq <= 3; seq++ {
		l.Commit(l.Append(seq, []core.BatchOp{op(fmt.Sprintf("k%d", seq), "v")}), true)
	}
	pin := l.PinHead()
	if pin != 3 {
		t.Fatalf("pin %d, want 3", pin)
	}
	// With seq 3 pinned, entries above it must survive any overflow.
	for seq := uint64(4); seq <= 10; seq++ {
		l.Commit(l.Append(seq, []core.BatchOp{op(fmt.Sprintf("k%d", seq), "v")}), true)
	}
	cur, ok := l.Subscribe(pin)
	if !ok {
		t.Fatal("tail from pinned seq refused")
	}
	if got := collect(t, cur, 7); got[0] != 4 || got[6] != 10 {
		t.Fatalf("bases %v, want 4..10", got)
	}
	// Unpinning releases the window.
	l.Unpin(pin)
	if l.Floor() <= pin {
		t.Fatalf("floor %d did not advance past unpinned %d", l.Floor(), pin)
	}
}

func TestLogSyncAckWaits(t *testing.T) {
	l := NewLog(LogConfig{SyncAck: true})

	// No followers: commits return immediately.
	tok := l.Append(1, []core.BatchOp{op("a", "1")})
	done := make(chan struct{})
	go func() { l.Commit(tok, true); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("commit with no peers blocked")
	}

	p := l.Register("f1", 1, nil)
	tok = l.Append(2, []core.BatchOp{op("b", "1"), op("c", "1")}) // 2..3
	done = make(chan struct{})
	go func() { l.Commit(tok, true); close(done) }()
	select {
	case <-done:
		t.Fatal("sync commit returned before ack")
	case <-time.After(50 * time.Millisecond):
	}
	p.Ack(2) // partial: entry ends at 3
	select {
	case <-done:
		t.Fatal("sync commit returned on partial ack")
	case <-time.After(50 * time.Millisecond):
	}
	p.Ack(3)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sync commit never returned after full ack")
	}

	// A follower that disconnects stops gating commits.
	tok = l.Append(4, []core.BatchOp{op("d", "1")})
	done = make(chan struct{})
	go func() { l.Commit(tok, true); close(done) }()
	select {
	case <-done:
		t.Fatal("sync commit returned before ack or disconnect")
	case <-time.After(50 * time.Millisecond):
	}
	l.Unregister(p)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sync commit never returned after peer left")
	}

	st := l.Status()
	if len(st.Peers) != 0 || st.Head != 4 {
		t.Fatalf("status %+v", st)
	}
}

func TestLogStatusLag(t *testing.T) {
	l := NewLog(LogConfig{})
	p := l.Register("f1", 0, nil)
	for seq := uint64(1); seq <= 5; seq++ {
		l.Commit(l.Append(seq, []core.BatchOp{op(fmt.Sprintf("k%d", seq), "v")}), true)
	}
	st := l.Status()
	if len(st.Peers) != 1 || st.Peers[0].Lag != 5 {
		t.Fatalf("status %+v, want lag 5", st)
	}
	p.Ack(5)
	if st = l.Status(); st.Peers[0].Lag != 0 {
		t.Fatalf("lag %d after full ack", st.Peers[0].Lag)
	}
}

func TestLogSaveRecover(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("t", 0))
	w, err := wal.Open(dev, "repl-log")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(LogConfig{MaxEntries: 4})
	for seq := uint64(1); seq <= 6; seq++ {
		l.Commit(l.Append(seq, []core.BatchOp{op(fmt.Sprintf("k%d", seq), fmt.Sprintf("v%d", seq))}), true)
	}
	wantFloor := l.Floor()
	if err := l.SaveTo(w); err != nil {
		t.Fatal(err)
	}

	// Clean path: window and floor restored.
	w2, err := wal.Open(dev, "repl-log")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RecoverLog(w2, LogConfig{MaxEntries: 4}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if r.Floor() != wantFloor || r.Head() != 6 {
		t.Fatalf("recovered floor=%d head=%d, want floor=%d head=6", r.Floor(), r.Head(), wantFloor)
	}
	// A clean restart keeps the write lineage, so followers can re-tail.
	if r.Epoch() != l.Epoch() {
		t.Fatalf("clean recovery changed epoch: %d -> %d", l.Epoch(), r.Epoch())
	}
	cur, ok := r.Subscribe(wantFloor)
	if !ok {
		t.Fatal("tail from recovered floor refused")
	}
	bases := collect(t, cur, int(6-wantFloor))
	if bases[0] != wantFloor+1 || bases[len(bases)-1] != 6 {
		t.Fatalf("recovered bases %v", bases)
	}

	// The marker is single-use: recovering again (same WAL, now reset)
	// yields a fresh log at the fallback floor.
	w3, err := wal.Open(dev, "repl-log")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RecoverLog(w3, LogConfig{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Floor() != 42 {
		t.Fatalf("second recovery floor %d, want fallback 42", r2.Floor())
	}
	// A crash-path recovery mints a fresh lineage: old followers must not
	// be able to tail state this instance cannot vouch for.
	if r2.Epoch() == l.Epoch() {
		t.Fatal("crash recovery kept the old epoch")
	}

	// Crash path: a save without sync (simulated by a power cut right
	// after SaveTo's records would have been written unsynced) must not be
	// trusted. Write a fresh save, cut power before it syncs via a torn
	// plan... simplest honest check: a WAL whose tail lacks the marker.
	w4, err := wal.Open(dev, "repl-log-2")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveTo(w4); err != nil {
		t.Fatal(err)
	}
	// Append a trailing entry record after the marker: marker no longer
	// terminal, so the log must be discarded.
	if err := w4.Append([]byte{recEntry, 0}); err != nil {
		t.Fatal(err)
	}
	w5, err := wal.Open(dev, "repl-log-2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverLog(w5, LogConfig{}, 7); err == nil {
		t.Fatal("corrupt trailing entry accepted")
	}
}

func TestLogRecoverDiscardsUnsyncedSave(t *testing.T) {
	// A save whose final sync never happened (power cut mid-save) leaves an
	// unsynced marker; recovery must fall back to a fresh floored log.
	dev := device.New(device.UnthrottledProfile("t", 0))
	w, err := wal.Open(dev, "repl-log")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendNoSync([]byte{recClean, 0}); err != nil {
		t.Fatal(err)
	}
	dev.PowerCut()
	w2, err := wal.Open(dev, "repl-log")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RecoverLog(w2, LogConfig{}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if r.Floor() != 17 {
		t.Fatalf("unsynced save survived a power cut: floor %d", r.Floor())
	}
}
