// Package repl implements primary→follower replication: the primary tees
// every committed WriteBatch into a bounded, sequence-tagged in-memory log
// and ships it to subscribed followers over the wire protocol; a follower
// that has fallen off the retained window bootstraps from a streamed
// snapshot before tailing. Synchronous mode holds each write's commit until
// every connected follower acknowledges it, which is what makes failover
// lossless for acknowledged writes.
package repl

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb/internal/core"
	"hyperdb/internal/wal"
	"hyperdb/internal/wire"
)

// ErrOverrun reports a cursor that needs entries already truncated from the
// log; the follower must re-bootstrap via snapshot.
var ErrOverrun = errors.New("repl: cursor fell off the retained log window")

// ErrStopped reports a blocking log wait cancelled by its stop channel.
var ErrStopped = errors.New("repl: stopped")

// LogConfig parameterises a replication log.
type LogConfig struct {
	// MaxEntries bounds the retained window (entry count). Default 1024.
	MaxEntries int
	// SyncAck holds Commit(ok) until every currently registered follower
	// has acknowledged the entry. With no followers connected, commits
	// proceed immediately.
	SyncAck bool
	// AckTimeout bounds how long a synchronous Commit waits for one
	// follower: a peer still unacknowledged when it fires is evicted (its
	// connection closed) so a half-dead link cannot stall writes forever.
	// 0 means the 10s default; negative disables the timeout.
	AckTimeout time.Duration
}

func (c *LogConfig) fill() {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1024
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 10 * time.Second
	}
}

const (
	statePending = iota
	stateCommitted
	stateAborted
)

type entry struct {
	base  uint64
	last  uint64
	ops   []core.BatchOp // deep-copied at Append
	state uint8
}

// Log is the primary-side replication log. It implements core.Tee: the
// engine appends each batch under its replication mutex right after the
// batch's sequence block is allocated, so entries arrive in strictly
// increasing base order; they resolve (commit or abort) out of order and
// ship only across the resolved prefix, preserving base order on the wire.
//
// Sequence gaps between entries are expected: promotions mint sequences
// that never reach the log (they relocate a value without changing it), and
// aborted batches occupy sequences that are never shipped.
type Log struct {
	mu       sync.Mutex
	cfg      LogConfig
	epoch    uint64 // write-lineage ID; see Epoch
	entries  []*entry
	resolved int    // entries[:resolved] are all committed or aborted
	floor    uint64 // highest seq no longer available (dropped or never held)
	head     uint64 // highest seq covered by any appended entry
	pins     map[uint64]int
	peers    map[*Peer]struct{}
	// change is the broadcast primitive: closed and replaced whenever ship
	// or ack progress is possible, so waiters can select on it.
	change chan struct{}

	// logBytes accumulates the encoded size of every appended entry — the
	// uvarint base + batch-op frame each entry occupies on the wire and in
	// the persisted log. This is the deployment's foreground WAL-bytes
	// figure: the merge bench reads it to show delta folding shrinking the
	// op-log proportionally.
	logBytes atomic.Uint64
}

// NewLog builds an empty log. A primary reopened over existing data must
// SetFloor(db.CommitSeq()) so stale followers are forced through a
// snapshot rather than silently missing the pre-log history.
func NewLog(cfg LogConfig) *Log {
	cfg.fill()
	return &Log{
		cfg:    cfg,
		epoch:  newEpoch(),
		pins:   make(map[uint64]int),
		peers:  make(map[*Peer]struct{}),
		change: make(chan struct{}),
	}
}

// newEpoch mints a random non-zero lineage identifier.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("repl: epoch entropy: %v", err))
	}
	e := binary.LittleEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return e
}

// Epoch identifies this log's write lineage. Followers record it from the
// hello response and present it when they reattach; a subscriber whose
// epoch does not match cannot prove its state is a prefix of this log's
// history (it may carry writes from a dead primary's incarnation that
// never shipped), so it is forced through a snapshot instead of tailing.
// The epoch survives a clean shutdown via SaveTo/RecoverLog and is
// re-minted after a crash, which is exactly when old state stops being
// trustworthy.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// broadcast wakes every waiter. Callers hold l.mu.
func (l *Log) broadcast() {
	close(l.change)
	l.change = make(chan struct{})
}

// Append records a pending entry covering [base, base+len(ops)-1]. Ops are
// deep-copied: the caller's buffers are reused after its batch returns,
// while the log outlives it. The returned token (the base itself — bases
// are unique) resolves the entry in Commit. Implements core.Tee.
func (l *Log) Append(base uint64, ops []core.BatchOp) uint64 {
	e := &entry{base: base, last: base + uint64(len(ops)) - 1, ops: cloneOps(ops)}
	l.logBytes.Add(encodedEntrySize(base, ops))
	l.mu.Lock()
	if n := len(l.entries); n > 0 && base <= l.entries[n-1].last {
		l.mu.Unlock()
		panic(fmt.Sprintf("repl: out-of-order append: base %d after %d", base, l.entries[n-1].last))
	}
	l.entries = append(l.entries, e)
	if e.last > l.head {
		l.head = e.last
	}
	l.truncateLocked()
	l.mu.Unlock()
	return base
}

// Commit resolves the entry appended under tok. ok=false (the batch failed
// and was never acknowledged) drops it from shipping. With SyncAck and
// ok=true, Commit blocks until every follower registered at this moment has
// acknowledged the entry's last sequence — or has disconnected, or has sat
// unacknowledged past AckTimeout, in which case it is evicted so a
// half-dead connection cannot stall writes indefinitely. Implements
// core.Tee.
func (l *Log) Commit(tok uint64, ok bool) {
	l.mu.Lock()
	e := l.findLocked(tok)
	if e == nil || e.state != statePending {
		l.mu.Unlock()
		return
	}
	if ok {
		e.state = stateCommitted
	} else {
		e.state = stateAborted
	}
	for l.resolved < len(l.entries) && l.entries[l.resolved].state != statePending {
		l.resolved++
	}
	l.truncateLocked()
	l.broadcast()

	if !ok || !l.cfg.SyncAck || len(l.peers) == 0 {
		l.mu.Unlock()
		return
	}
	// Wait for the followers connected right now; ones that join later
	// start past this entry anyway, ones that drop out stop counting.
	waitOn := make([]*Peer, 0, len(l.peers))
	for p := range l.peers {
		waitOn = append(waitOn, p)
	}
	target := e.last
	var timeoutC <-chan time.Time
	if l.cfg.AckTimeout > 0 {
		timer := time.NewTimer(l.cfg.AckTimeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	timedOut := false
	for {
		var laggards []*Peer
		for _, p := range waitOn {
			if _, live := l.peers[p]; live && p.acked.Load() < target {
				laggards = append(laggards, p)
			}
		}
		if len(laggards) == 0 {
			l.mu.Unlock()
			return
		}
		if timedOut {
			// Evict the stragglers: synchronous commits stop counting them
			// and their connections are severed so the ship loops unwind.
			for _, p := range laggards {
				delete(l.peers, p)
			}
			l.broadcast()
			l.mu.Unlock()
			for _, p := range laggards {
				if p.evict != nil {
					p.evict()
				}
			}
			return
		}
		ch := l.change
		l.mu.Unlock()
		select {
		case <-ch:
		case <-timeoutC:
			timedOut = true
		}
		l.mu.Lock()
	}
}

// findLocked locates the entry with the given base by binary search.
func (l *Log) findLocked(base uint64) *entry {
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].base >= base })
	if i < len(l.entries) && l.entries[i].base == base {
		return l.entries[i]
	}
	return nil
}

// truncateLocked drops resolved prefix entries beyond the retained window,
// never crossing a pin. Only committed entries raise the floor: aborted
// ones are never shipped, so dropping them makes nothing unavailable.
func (l *Log) truncateLocked() {
	minPin := uint64(math.MaxUint64)
	for s := range l.pins {
		if s < minPin {
			minPin = s
		}
	}
	for len(l.entries) > l.cfg.MaxEntries && l.resolved > 0 {
		e := l.entries[0]
		if e.last > minPin {
			return
		}
		l.entries = l.entries[1:]
		l.resolved--
		if e.state == stateCommitted && e.last > l.floor {
			l.floor = e.last
		}
	}
}

// SetFloor raises the log's availability floor: followers at or below it
// must bootstrap via snapshot. Used when a log fronts a store that already
// holds history the log never saw (a recovered primary, or a follower that
// itself bootstrapped from a snapshot).
func (l *Log) SetFloor(seq uint64) {
	l.mu.Lock()
	if seq > l.floor {
		l.floor = seq
	}
	if seq > l.head {
		l.head = seq
	}
	l.mu.Unlock()
}

// ResetTo discards the retained window and the write lineage: the node's
// state was just replaced wholesale by a snapshot bootstrap, so nothing it
// previously logged can be vouched for — and the tail that follows may
// legally restart below the old head, which the append ordering invariant
// would otherwise reject. The log restarts empty, floored at seq, under a
// fresh epoch; live downstream cursors overrun and those followers
// re-bootstrap in turn.
func (l *Log) ResetTo(seq uint64) {
	l.mu.Lock()
	l.entries = nil
	l.resolved = 0
	l.floor = seq
	l.head = seq
	l.epoch = newEpoch()
	l.broadcast()
	l.mu.Unlock()
}

// Floor returns the highest unavailable sequence.
func (l *Log) Floor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// Head returns the highest sequence any appended entry covers.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// PinHead pins the resolved head — the highest sequence S such that every
// logged entry at or below S has resolved and, if committed, is applied and
// visible to reads — and returns it. While pinned, entries above S are kept
// shippable, so a snapshot taken at S can always hand off to a tail
// subscription from S. Release with Unpin.
func (l *Log) PinHead() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.floor
	if l.resolved > 0 {
		if last := l.entries[l.resolved-1].last; last > s {
			s = last
		}
	}
	l.pins[s]++
	return s
}

// Unpin releases one PinHead reference on seq.
func (l *Log) Unpin(seq uint64) {
	l.mu.Lock()
	if l.pins[seq]--; l.pins[seq] <= 0 {
		delete(l.pins, seq)
	}
	l.truncateLocked()
	l.mu.Unlock()
}

// WaitResolved blocks until every entry at or below seq has resolved
// (committed or aborted), so a cursor drained up to seq is guaranteed to
// have seen every committed write in [1, seq]. Returns ErrStopped if stop
// closes first. The handoff flip uses this: after the ownership barrier,
// nothing new at or below the flip sequence can appear, so once the prefix
// resolves the drain-and-ship is complete.
func (l *Log) WaitResolved(seq uint64, stop <-chan struct{}) error {
	l.mu.Lock()
	for {
		if l.resolved == len(l.entries) || l.entries[l.resolved].base > seq {
			l.mu.Unlock()
			return nil
		}
		ch := l.change
		l.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return ErrStopped
		}
		l.mu.Lock()
	}
}

// Subscribe opens a ship cursor for a follower whose last applied sequence
// is lastApplied. ok=false means the follower cannot tail: it fell below
// the retained window, or it claims a sequence above everything this log
// has ever covered — state from some other history that tailing would
// silently skip past — and must bootstrap via snapshot first.
func (l *Log) Subscribe(lastApplied uint64) (*Cursor, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lastApplied < l.floor || lastApplied > l.head {
		return nil, false
	}
	return &Cursor{log: l, next: lastApplied + 1}, true
}

// Cursor walks committed entries in base order for one follower.
type Cursor struct {
	log  *Log
	next uint64
}

// Next blocks until the next committed entry at or above the cursor is
// shippable, the cursor falls off the retained window (ErrOverrun — the
// follower must re-bootstrap), or stop closes (ErrStopped).
func (c *Cursor) Next(stop <-chan struct{}) (base uint64, ops []core.BatchOp, err error) {
	l := c.log
	l.mu.Lock()
	for {
		if c.next <= l.floor {
			l.mu.Unlock()
			return 0, nil, ErrOverrun
		}
		for i := 0; i < l.resolved; i++ {
			e := l.entries[i]
			if e.last < c.next || e.state != stateCommitted {
				continue
			}
			c.next = e.last + 1
			l.mu.Unlock()
			return e.base, e.ops, nil
		}
		ch := l.change
		l.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return 0, nil, ErrStopped
		}
		l.mu.Lock()
	}
}

// Peer tracks one connected follower's acknowledgement progress.
type Peer struct {
	log   *Log
	name  string
	acked atomic.Uint64
	evict func()
}

// Register adds a follower that has everything through acked. evict, when
// non-nil, is called (off the log's lock) if an ack-timeout eviction
// removes the peer; it should sever the follower's connection.
func (l *Log) Register(name string, acked uint64, evict func()) *Peer {
	p := &Peer{log: l, name: name, evict: evict}
	p.acked.Store(acked)
	l.mu.Lock()
	l.peers[p] = struct{}{}
	l.broadcast()
	l.mu.Unlock()
	return p
}

// Unregister removes a follower; synchronous commits stop waiting on it.
func (l *Log) Unregister(p *Peer) {
	l.mu.Lock()
	delete(l.peers, p)
	l.broadcast()
	l.mu.Unlock()
}

// Ack records that the follower has durably applied everything through seq.
func (p *Peer) Ack(seq uint64) {
	for {
		cur := p.acked.Load()
		if seq <= cur {
			return
		}
		if p.acked.CompareAndSwap(cur, seq) {
			break
		}
	}
	p.log.mu.Lock()
	p.log.broadcast()
	p.log.mu.Unlock()
}

// Acked returns the follower's acknowledged sequence.
func (p *Peer) Acked() uint64 { return p.acked.Load() }

// PeerStatus is one follower's view in Status.
type PeerStatus struct {
	Name  string
	Acked uint64
	Lag   uint64 // log head minus acked
}

// LogStatus snapshots the log for stats reporting.
type LogStatus struct {
	Head    uint64
	Floor   uint64
	Entries int
	Pending int
	Peers   []PeerStatus
}

// Status snapshots head/floor/occupancy and per-follower lag. Lag measures
// against the log head, not the engine's sequence counter: promotions mint
// sequences that never ship, and counting them would show phantom lag.
func (l *Log) Status() LogStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LogStatus{
		Head:    l.head,
		Floor:   l.floor,
		Entries: len(l.entries),
		Pending: len(l.entries) - l.resolved,
	}
	for p := range l.peers {
		acked := p.acked.Load()
		var lag uint64
		if l.head > acked {
			lag = l.head - acked
		}
		st.Peers = append(st.Peers, PeerStatus{Name: p.name, Acked: acked, Lag: lag})
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Name < st.Peers[j].Name })
	return st
}

func cloneOps(ops []core.BatchOp) []core.BatchOp {
	out := make([]core.BatchOp, len(ops))
	for i, op := range ops {
		out[i] = core.BatchOp{
			Key:    append([]byte(nil), op.Key...),
			Value:  append([]byte(nil), op.Value...),
			Delete: op.Delete,
			Merge:  op.Merge,
			Delta:  op.Delta,
		}
	}
	return out
}

// Bytes returns the cumulative encoded size of every entry appended to
// this log — the wire/WAL footprint of the op stream (frame payloads; WAL
// record framing excluded). Merge ops are appended unresolved (key +
// varint delta), so folding N deltas into one entry shrinks this figure by
// construction.
func (l *Log) Bytes() uint64 { return l.logBytes.Load() }

// encodedEntrySize mirrors wire.AppendReplFrame's encoding arithmetic:
// uvarint base | uvarint count | per op: kind byte + key + value/delta.
func encodedEntrySize(base uint64, ops []core.BatchOp) uint64 {
	n := uvarintLen(base) + uvarintLen(uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		n += 1 + uvarintLen(uint64(len(op.Key))) + uint64(len(op.Key))
		switch {
		case op.Delete:
		case op.Merge:
			n += varintLen(op.Delta)
		default:
			n += uvarintLen(uint64(len(op.Value))) + uint64(len(op.Value))
		}
	}
	return n
}

func uvarintLen(v uint64) uint64 {
	n := uint64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) uint64 {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63)) // zig-zag, as encoding/binary
}

// Log persistence: the retained window survives a *clean* shutdown only.
// Records written mid-flight cannot be trusted after a crash — a torn tail
// or an entry synced before its apply would desynchronise the log from the
// recovered store, silently diverging followers that tail from it — so
// SaveTo stamps a terminal clean-shutdown marker and RecoverLog discards
// everything unless that marker is the final record. After a crash the
// primary starts an empty log floored at its recovered CommitSeq, forcing
// followers through a snapshot, which is always safe.
const (
	recEntry = 1
	recClean = 2
)

// SaveTo writes the retained committed window and the clean marker to w,
// then syncs once (records stage through the unsynced append path).
func (l *Log) SaveTo(w *wal.WAL) error {
	l.mu.Lock()
	if l.resolved != len(l.entries) {
		l.mu.Unlock()
		return errors.New("repl: SaveTo with unresolved entries")
	}
	floor := l.floor
	epoch := l.epoch
	var recs [][]byte
	for _, e := range l.entries {
		if e.state != stateCommitted {
			continue
		}
		rec := append([]byte{recEntry}, wire.AppendReplFrame(nil, e.base, toWireOps(e.ops))...)
		recs = append(recs, rec)
	}
	l.mu.Unlock()

	for _, rec := range recs {
		if err := w.AppendNoSync(rec); err != nil {
			return err
		}
	}
	marker := binary.AppendUvarint([]byte{recClean}, floor)
	marker = binary.AppendUvarint(marker, epoch)
	if err := w.AppendNoSync(marker); err != nil {
		return err
	}
	return w.Sync()
}

// RecoverLog rebuilds a log from w. With a clean marker as the final record
// the saved window is restored (and the WAL reset for the new instance);
// anything else — empty log, torn tail, marker missing — yields a fresh log
// floored at fallbackFloor.
func RecoverLog(w *wal.WAL, cfg LogConfig, fallbackFloor uint64) (*Log, error) {
	l := NewLog(cfg)
	var entries []*entry
	clean := false
	err := w.Replay(func(rec []byte) error {
		clean = false
		if len(rec) == 0 {
			return fmt.Errorf("repl: empty log record")
		}
		switch rec[0] {
		case recEntry:
			base, wops, err := wire.DecodeReplFrame(rec[1:])
			if err != nil {
				return fmt.Errorf("repl: bad log entry: %w", err)
			}
			e := &entry{base: base, last: base + uint64(len(wops)) - 1, ops: fromWireOps(wops), state: stateCommitted}
			if n := len(entries); n > 0 && e.base <= entries[n-1].last {
				return fmt.Errorf("repl: out-of-order saved entry at base %d", base)
			}
			entries = append(entries, e)
		case recClean:
			floor, n := binary.Uvarint(rec[1:])
			if n <= 0 {
				return fmt.Errorf("repl: bad clean marker")
			}
			epoch, n2 := binary.Uvarint(rec[1+n:])
			if n2 <= 0 || epoch == 0 {
				return fmt.Errorf("repl: bad clean marker epoch")
			}
			l.floor = floor
			// A clean shutdown preserves the write lineage: followers that
			// tailed this node can keep tailing after the restart.
			l.epoch = epoch
			clean = true
		default:
			return fmt.Errorf("repl: unknown log record kind %d", rec[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !clean {
		fresh := NewLog(cfg)
		fresh.floor = fallbackFloor
		fresh.head = fallbackFloor
		if err := w.Reset(); err != nil {
			return nil, err
		}
		return fresh, nil
	}
	l.entries = entries
	l.resolved = len(entries)
	l.head = l.floor
	if n := len(entries); n > 0 {
		l.head = entries[n-1].last
	}
	// The marker is spent: a later crash must not replay into this window.
	if err := w.Reset(); err != nil {
		return nil, err
	}
	return l, nil
}

func toWireOps(ops []core.BatchOp) []wire.BatchOp {
	out := make([]wire.BatchOp, len(ops))
	for i, op := range ops {
		out[i] = wire.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete, Merge: op.Merge, Delta: op.Delta}
	}
	return out
}

func fromWireOps(ops []wire.BatchOp) []core.BatchOp {
	out := make([]core.BatchOp, len(ops))
	for i, op := range ops {
		out[i] = core.BatchOp{
			Key:    append([]byte(nil), op.Key...),
			Value:  append([]byte(nil), op.Value...),
			Delete: op.Delete,
			Merge:  op.Merge,
			Delta:  op.Delta,
		}
	}
	return out
}
