package consistency

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/repl"
)

// TestSessionConsistencyBounded runs seeded random schedules against a
// lagging 1+2 cluster under the bounded policy: every read-your-writes and
// monotonic-reads check must hold even though the followers apply multiple
// milliseconds behind the primary. Reproduce a failure from the printed
// seed.
func TestSessionConsistencyBounded(t *testing.T) {
	for i := 0; i < 2; i++ {
		seed := int64(7300 + 61*i)
		cfg := Config{Seed: seed}
		if v := Run(cfg); v != "" {
			t.Fatalf("seed=%d: %s", seed, v)
		}
	}
}

// TestHarnessDetectsStalenessWithoutGate is the teeth test: the same
// schedules MUST fail when the servers' minSeq gate is disabled, proving
// the harness detects the staleness the gate prevents. The failing
// schedule is shrunk before reporting.
func TestHarnessDetectsStalenessWithoutGate(t *testing.T) {
	cfg := Config{
		Seed:       9100,
		NoReadGate: true,
		// Chunky lag so an ungated read-after-write lands well before the
		// follower applies the write.
		MinLag: 3 * time.Millisecond,
		MaxLag: 8 * time.Millisecond,
	}
	cfg.fill()
	var violation string
	var sched []step
	for attempt := 0; attempt < 3 && violation == ""; attempt++ {
		c := cfg
		c.Seed = cfg.Seed + int64(attempt)
		sched = GenSchedule(rand.New(rand.NewSource(c.Seed)), c)
		violation = RunSchedule(c, sched)
		cfg.Seed = c.Seed
	}
	if violation == "" {
		t.Fatal("gate disabled but no schedule produced a consistency violation; the harness has no teeth")
	}
	if !strings.Contains(violation, "violation") {
		t.Fatalf("gate-off run failed for a non-consistency reason: %s", violation)
	}
	min := Shrink(cfg, sched, 6)
	t.Logf("gate-off violation (seed=%d): %s", cfg.Seed, violation)
	t.Logf("shrunk schedule (%d steps): %s", len(min), FormatSchedule(min))
}

// failoverSess is one session's model across the failover test: per-key
// last acknowledged write version, last attempted version (a write that
// errored during the kill may still have committed), the highest version
// each key has been observed at, and the highest version observed through
// a follower-served read (the replication guarantee the promoted node must
// retain — see reconcile).
type failoverSess struct {
	sess      *client.Session
	acked     []int
	attempted []int
	lastRead  []int
	folRead   []int
}

// checkOwnRead enforces the never-backward invariant for one private key:
// an observed version may never be below an acknowledged write or a prior
// read, and never above the last attempted write.
func (fs *failoverSess) checkOwnRead(id, k int, v []byte, err error) error {
	floor := fs.acked[k]
	if fs.lastRead[k] > floor {
		floor = fs.lastRead[k]
	}
	switch {
	case errors.Is(err, client.ErrNotFound):
		if floor > 0 {
			return fmt.Errorf("session %d key %d: missing after version %d was acknowledged or read", id, k, floor)
		}
	case err != nil:
		return err
	default:
		got, perr := strconv.Atoi(string(v))
		if perr != nil {
			return fmt.Errorf("session %d key %d: unparseable value %q", id, k, v)
		}
		if got < floor {
			return fmt.Errorf("session %d key %d: read version %d after version %d was acknowledged or read", id, k, got, floor)
		}
		if got > fs.attempted[k] {
			return fmt.Errorf("session %d key %d: read version %d beyond last attempted write %d", id, k, got, fs.attempted[k])
		}
		fs.lastRead[k] = got
		if fs.sess.LastNode() != "primary" {
			fs.folRead[k] = got
		}
	}
	return nil
}

// reconcile runs at the failover boundary. A sync-ack primary unblocks
// pending commits when a follower connection dies, so a write can be
// acknowledged during the kill without reaching any follower; a bounded
// read that fell back to the primary can likewise observe a write that
// never ships. Both are durability losses of a non-quorum failover, not
// session-consistency violations — the promoted node reallocates their
// sequences, so tokens cannot fence them (see DESIGN.md). What failover
// MUST retain is every version a follower ever served: followers apply a
// shared prefix, and the most caught-up one is promoted. reconcile asserts
// that, then caps the session's floors to the surviving version so phase 2
// enforces never-backward against real state.
func (fs *failoverSess) reconcile(id, k int, survived int) error {
	if survived < fs.folRead[k] {
		return fmt.Errorf("session %d key %d: promoted node holds version %d but a follower served %d", id, k, survived, fs.folRead[k])
	}
	if fs.acked[k] > survived {
		fs.acked[k] = survived
	}
	if fs.lastRead[k] > survived {
		fs.lastRead[k] = survived
	}
	return nil
}

// TestFailoverSessionNeverReadsBackward kills a sync-ack primary mid-load
// with follower reads enabled, promotes the most caught-up follower, and
// rewires the other one under it. Sessions carry their tokens across the
// failover: no session may ever observe a value older than one it already
// read or had acknowledged — before, during, and (after reconciling floors
// against what the promotion could retain) after the switch.
func TestFailoverSessionNeverReadsBackward(t *testing.T) {
	const nSess, nKeys = 3, 6
	// ReadWait stays short: after the kill, sessions whose tokens reference
	// a lost acknowledged write park against followers that can never catch
	// up, and each such read costs one full wait before NOT_READY.
	cfg := Config{Keys: nKeys, ReadWait: 250 * time.Millisecond}
	cfg.fill()

	prim, err := newNode(false, true, repl.LogConfig{SyncAck: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fols [2]*node
	for i := range fols {
		if fols[i], err = newNode(true, true, repl.LogConfig{}, cfg); err != nil {
			t.Fatal(err)
		}
	}

	// Appliers: both followers tail the primary, re-teeing into their own
	// logs so either can serve downstream after a promotion.
	stop1 := make(chan struct{})
	var appliers sync.WaitGroup
	for i := range fols {
		nc, err := net.Dial("tcp", prim.addr)
		if err != nil {
			t.Fatal(err)
		}
		fol := &repl.Follower{DB: fols[i].db, Log: fols[i].log}
		fols[i].fol.Store(fol)
		appliers.Add(1)
		go func() {
			defer appliers.Done()
			fol.Run(nc, stop1) // ends with an error when the primary dies
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(prim.log.Status().Peers) < len(fols) {
		if time.Now().After(deadline) {
			t.Fatal("followers never attached")
		}
		time.Sleep(time.Millisecond)
	}

	copts := func(addr string) client.Options {
		return client.Options{Addr: addr, RedialAttempts: 1}
	}
	pc, err := client.Dial(copts(prim.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	var fcs []*client.Client
	for i := range fols {
		fc, err := client.Dial(copts(fols[i].addr))
		if err != nil {
			t.Fatal(err)
		}
		defer fc.Close()
		fcs = append(fcs, fc)
	}

	// Phase 1: sessions write and read under the bounded policy while the
	// primary is killed mid-load. A put that errors leaves its version
	// "attempted but unacknowledged"; sessions then keep reading from the
	// surviving followers. Read errors during the kill window are
	// tolerated — stale values never are.
	sessions := make([]*failoverSess, nSess)
	errs := make(chan error, nSess)
	var load sync.WaitGroup
	for i := 0; i < nSess; i++ {
		fs := &failoverSess{
			sess:      client.NewSession(pc, fcs, client.ReadBounded),
			acked:     make([]int, nKeys),
			attempted: make([]int, nKeys),
			lastRead:  make([]int, nKeys),
			folRead:   make([]int, nKeys),
		}
		sessions[i] = fs
		load.Add(1)
		go func(id int) {
			defer load.Done()
			rng := rand.New(rand.NewSource(int64(8800 + id)))
			key := func(k int) []byte { return []byte(fmt.Sprintf("f%02d-k%03d", id, k)) }
			// Run until the kill is felt (a put fails), then a tail of reads
			// against the surviving followers. The iteration cap only guards
			// against the kill never landing.
			writing, tail := true, 0
			for it := 0; it < 100000 && (writing || tail < 12); it++ {
				if !writing {
					tail++
				}
				k := rng.Intn(nKeys)
				if writing && rng.Float64() < 0.6 {
					fs.attempted[k]++
					if err := fs.sess.Put(key(k), []byte(fmt.Sprintf("%08d", fs.attempted[k]))); err != nil {
						writing = false // primary is dying; keep reading
					} else {
						fs.acked[k] = fs.attempted[k]
					}
				}
				v, err := fs.sess.Get(key(k))
				if err != nil && !errors.Is(err, client.ErrNotFound) {
					continue // transport failure mid-kill: no value observed
				}
				if cerr := fs.checkOwnRead(id, k, v, err); cerr != nil {
					errs <- cerr
					return
				}
			}
		}(i)
	}
	time.Sleep(60 * time.Millisecond) // let the load get going
	if err := prim.srv.Shutdown(); err != nil {
		t.Logf("primary shutdown: %v", err)
	}
	load.Wait()
	select {
	case err := <-errs:
		t.Fatalf("phase 1: %v", err)
	default:
	}

	// Failover: stop the appliers, promote the most caught-up follower,
	// and rewire the other one to tail it.
	close(stop1)
	appliers.Wait()
	target, other := 0, 1
	if fols[1].db.CommitSeq() > fols[0].db.CommitSeq() {
		target, other = 1, 0
	}
	t.Logf("promote: f0 commit=%d readable=%d, f1 commit=%d readable=%d, target=f%d",
		fols[0].db.CommitSeq(), fols[0].db.ReadableSeq(),
		fols[1].db.CommitSeq(), fols[1].db.ReadableSeq(), target)
	fols[target].db.Promote()

	stop2 := make(chan struct{})
	rejoined := make(chan error, 1)
	nc, err := net.Dial("tcp", fols[target].addr)
	if err != nil {
		t.Fatal(err)
	}
	refol := &repl.Follower{DB: fols[other].db, Log: fols[other].log}
	fols[other].fol.Store(refol)
	go func() {
		rejoined <- refol.Run(nc, stop2)
	}()
	deadline = time.Now().Add(10 * time.Second)
	for len(fols[target].log.Status().Peers) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("surviving follower never rejoined the promoted node")
		}
		time.Sleep(time.Millisecond)
	}

	// Reconcile every session's floors against what the promoted node
	// actually retained: follower-served reads must have survived; acked
	// writes and primary-served reads that never shipped are the documented
	// losses of a non-quorum failover and lower the floor.
	for id, fs := range sessions {
		for k := 0; k < nKeys; k++ {
			survived := 0
			v, err := fols[target].db.Get([]byte(fmt.Sprintf("f%02d-k%03d", id, k)))
			switch {
			case err == nil:
				if survived, err = strconv.Atoi(string(v)); err != nil {
					t.Fatalf("promoted node session %d key %d: unparseable value %q", id, k, v)
				}
			case !errors.Is(err, hyperdb.ErrNotFound):
				t.Fatal(err)
			}
			if err := fs.reconcile(id, k, survived); err != nil {
				t.Fatalf("failover: %v", err)
			}
		}
	}

	// Phase 2: sessions resume against the new topology, seeded with their
	// phase-1 tokens. Every read must respect the same never-backward
	// invariant; after new writes land, reads must be exact.
	for id, fs := range sessions {
		ns := client.NewSession(fcs[target], []*client.Client{fcs[other]}, client.ReadBounded)
		// A token referencing a lost write names a sequence of the dead
		// lineage: no surviving node ever satisfies it, so every gated read
		// would answer NOT_READY. Re-establishing a session across failover
		// therefore clamps the token to the promoted node's position — a
		// deliberate epoch-0 seed, because carrying the dead lineage's epoch
		// would make the new primary refuse the clamped gate too (see
		// DESIGN.md and TestCrossLineageTokenRefused).
		tok := fs.sess.Token()
		if c := fols[target].db.CommitSeq(); c < tok.Seq {
			tok.Seq = c
		}
		ns.SeedToken(client.Token{Seq: tok.Seq})
		fs.sess = ns
		key := func(k int) []byte { return []byte(fmt.Sprintf("f%02d-k%03d", id, k)) }
		for k := 0; k < nKeys; k++ {
			v, err := ns.Get(key(k))
			if err != nil && !errors.Is(err, client.ErrNotFound) {
				t.Fatalf("phase 2 session %d key %d: %v", id, k, err)
			}
			if cerr := fs.checkOwnRead(id, k, v, err); cerr != nil {
				t.Fatalf("phase 2: %v (served by %s, token=%d, target readable=%d, other readable=%d)",
					cerr, ns.LastNode(), ns.Token(),
					fols[target].db.ReadableSeq(), fols[other].db.ReadableSeq())
			}
		}
		// Liveness on the promoted primary: new writes, exact reads.
		for k := 0; k < nKeys; k++ {
			fs.attempted[k]++
			fs.acked[k] = fs.attempted[k]
			want := fmt.Sprintf("%08d", fs.attempted[k])
			if err := ns.Put(key(k), []byte(want)); err != nil {
				t.Fatalf("post-failover put session %d key %d: %v", id, k, err)
			}
			v, err := ns.Get(key(k))
			if err != nil || string(v) != want {
				t.Fatalf("post-failover get session %d key %d = %q (%v), want %q", id, k, v, err, want)
			}
		}
	}

	close(stop2)
	if err := <-rejoined; err != nil {
		t.Fatalf("rejoined applier: %v", err)
	}
	fols[other].srv.Shutdown()
	fols[target].srv.Shutdown()
}

// TestCrossLineageTokenRefused pins the epoch qualification of session
// tokens: a gated read whose token was minted by a different write lineage
// must be refused with NOT_READY, never silently satisfied by sequence
// comparison alone. Two independent primaries stand in for "before and
// after a failover that replaced the log": their sequence counters overlap
// numerically but number different histories, which is precisely the state
// a bare-sequence gate cannot detect.
func TestCrossLineageTokenRefused(t *testing.T) {
	cfg := Config{ReadWait: 100 * time.Millisecond}
	cfg.fill()
	a, err := newNode(false, true, repl.LogConfig{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.srv.Shutdown()
	b, err := newNode(false, true, repl.LogConfig{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.srv.Shutdown()

	ca, err := client.Dial(client.Options{Addr: a.addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := client.Dial(client.Options{Addr: b.addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	// Advance both lineages past each other's positions so a bare-sequence
	// gate would be satisfied on either node.
	sess := client.NewSession(ca, nil, client.ReadPrimary)
	for i := 0; i < 5; i++ {
		if err := sess.Put([]byte(fmt.Sprintf("a-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := cb.Put([]byte(fmt.Sprintf("b-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	tok := sess.Token()
	if tok.Seq == 0 || tok.Epoch == 0 {
		t.Fatalf("session token %v lacks a sequence or epoch", tok)
	}
	if b.db.ReadableSeq() < tok.Seq {
		t.Fatalf("test setup: node B readable %d below token seq %d", b.db.ReadableSeq(), tok.Seq)
	}

	// The cross-lineage gate must be refused even though B's sequence has
	// numerically passed it.
	if _, _, err := cb.GetSeq([]byte("b-0"), tok); !errors.Is(err, client.ErrNotReady) {
		t.Fatalf("cross-lineage gated read: err=%v, want ErrNotReady", err)
	}

	// Deliberately clamping to epoch 0 re-enables sequence-only gating —
	// the documented escape hatch a client uses after accepting a lineage
	// change.
	if v, btok, err := cb.GetSeq([]byte("b-0"), client.Token{Seq: tok.Seq}); err != nil || string(v) != "v" {
		t.Fatalf("epoch-0 clamped read: %q %v", v, err)
	} else if btok.Epoch == 0 || btok.Epoch == tok.Epoch {
		t.Fatalf("node B response epoch %d; want a non-zero epoch distinct from A's %d", btok.Epoch, tok.Epoch)
	}

	// Same-lineage gating still works end to end.
	if v, _, err := ca.GetSeq([]byte("a-0"), tok); err != nil || string(v) != "v" {
		t.Fatalf("same-lineage gated read: %q %v", v, err)
	}
}
