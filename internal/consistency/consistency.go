// Package consistency is a randomized-schedule session-consistency harness
// for follower reads. A cluster of one primary and F followers runs over
// real TCP through the full serving stack; the followers' appliers are
// stalled with seeded random lag so their state genuinely trails the
// primary. N client sessions then execute a seeded schedule of writes and
// policy-routed reads, and every read is checked against the strongest
// claim the session protocol makes:
//
//   - Read-your-writes: a session reading a key only it writes must see
//     exactly its last acknowledged write — never an older version, never
//     absence after the first write.
//   - Monotonic reads: a session re-reading a key written by another
//     session must never observe a version older than one it already saw,
//     and never absence after a hit — across every node its reads land on.
//
// The checks hold because session writes return their committed sequence,
// session reads carry it as a gate the server enforces against its applied
// replication position, and every response's applied sequence folds back
// into the token. Disabling the gate (server.Config.NoReadGate) makes the
// same schedules fail — the harness proves it can detect the staleness the
// gate prevents, so a green run means something.
//
// Failures reproduce from the printed seed and shrink (ddmin) before
// reporting, like package crashtest.
package consistency

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
	"hyperdb/internal/server"
)

// Config parameterises one harness run. The zero value of every field gets
// a sane default from fill.
type Config struct {
	// Seed drives schedule generation and lag injection.
	Seed int64
	// Sessions is the number of concurrent client sessions. Default 4.
	Sessions int
	// Steps is the total schedule length across sessions. Default 160.
	Steps int
	// Keys is the per-session private key-space size (and the shared
	// key-space size). Default 8.
	Keys int
	// Followers is the replica count. Default 2.
	Followers int
	// Policy routes the sessions' reads. Default ReadBounded.
	Policy client.ReadPolicy
	// NoReadGate disables the servers' minSeq gate — the harness's teeth
	// test: schedules that pass with the gate must fail without it.
	NoReadGate bool
	// ReadWait is the followers' bounded gate wait. Default 5s (tests want
	// parked reads to resolve, not time out, unless replication truly
	// stalls).
	ReadWait time.Duration
	// MinLag and MaxLag bound the injected per-entry apply delay on each
	// follower. Defaults 1ms and 4ms.
	MinLag, MaxLag time.Duration
}

func (c *Config) fill() {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Steps <= 0 {
		c.Steps = 160
	}
	if c.Keys <= 0 {
		c.Keys = 8
	}
	if c.Followers <= 0 {
		c.Followers = 2
	}
	if c.Policy == 0 && c.Followers > 0 {
		c.Policy = client.ReadBounded
	}
	if c.ReadWait == 0 {
		c.ReadWait = 5 * time.Second
	}
	if c.MinLag <= 0 {
		c.MinLag = time.Millisecond
	}
	if c.MaxLag < c.MinLag {
		c.MaxLag = 4 * time.Millisecond
	}
}

type stepKind uint8

const (
	// stepPutGet writes a session-private key and immediately reads it
	// back — the sharpest read-your-writes probe, because the replica
	// cannot have applied the write yet unless the gate made it wait.
	stepPutGet stepKind = iota
	stepPut             // write a private key
	stepGet             // read a private key
	stepMGet            // read three private keys in one MGET
	stepScan            // scan the session's private prefix
	// stepIncr merges a delta into a session-private counter and immediately
	// reads it back through the routing policy — the read-your-increments
	// analogue of stepPutGet: the replica cannot have applied the merge yet
	// unless the gate made it wait, and the value must equal the session's
	// exact delta sum.
	stepIncr
	stepCtrGet    // read a private counter (must decode to the exact sum)
	stepSharedPut // session 0 bumps a shared key
	stepSharedGet // read a shared key (monotonic-reads probe)
)

// step is one schedule element. Versions are derived deterministically at
// execution time (each write of a key is its previous version + 1), so a
// shrunk schedule replays exactly.
type step struct {
	sess int
	kind stepKind
	key  int
}

func (s step) String() string {
	switch s.kind {
	case stepPutGet:
		return fmt.Sprintf("s%d:putget(k%d)", s.sess, s.key)
	case stepPut:
		return fmt.Sprintf("s%d:put(k%d)", s.sess, s.key)
	case stepGet:
		return fmt.Sprintf("s%d:get(k%d)", s.sess, s.key)
	case stepMGet:
		return fmt.Sprintf("s%d:mget(k%d..)", s.sess, s.key)
	case stepScan:
		return fmt.Sprintf("s%d:scan", s.sess)
	case stepIncr:
		return fmt.Sprintf("s%d:incr(q%d)", s.sess, s.key)
	case stepCtrGet:
		return fmt.Sprintf("s%d:ctrget(q%d)", s.sess, s.key)
	case stepSharedPut:
		return fmt.Sprintf("s%d:shput(k%d)", s.sess, s.key)
	default:
		return fmt.Sprintf("s%d:shget(k%d)", s.sess, s.key)
	}
}

// FormatSchedule renders a schedule for failure reports.
func FormatSchedule(sched []step) string {
	parts := make([]string, len(sched))
	for i, s := range sched {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// GenSchedule builds a seeded schedule. Shared writes are pinned to
// session 0 so every shared key has a single writer and observed versions
// are totally ordered.
func GenSchedule(rng *rand.Rand, cfg Config) []step {
	cfg.fill()
	sched := make([]step, 0, cfg.Steps)
	for i := 0; i < cfg.Steps; i++ {
		st := step{sess: rng.Intn(cfg.Sessions), key: rng.Intn(cfg.Keys)}
		switch r := rng.Float64(); {
		case r < 0.26:
			st.kind = stepPutGet
		case r < 0.36:
			st.kind = stepPut
		case r < 0.52:
			st.kind = stepGet
		case r < 0.60:
			st.kind = stepMGet
		case r < 0.66:
			st.kind = stepScan
		case r < 0.76:
			st.kind = stepIncr
		case r < 0.84:
			st.kind = stepCtrGet
		case r < 0.92:
			st.kind = stepSharedPut
			st.sess = 0
		default:
			st.kind = stepSharedGet
		}
		sched = append(sched, st)
	}
	return sched
}

// node is one served engine in the harness cluster.
type node struct {
	db   *hyperdb.DB
	srv  *server.Server
	addr string
	log  *repl.Log
	// fol is the follower applier once attached; the server's Epoch hook
	// reads it so v2 responses carry the lineage the applier is on.
	fol atomic.Pointer[repl.Follower]
}

func newNode(follower, withLog bool, logCfg repl.LogConfig, cfg Config) (*node, error) {
	opts := hyperdb.Options{
		NVMeDevice:     device.New(device.UnthrottledProfile("nvme", 32<<20)),
		SATADevice:     device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:     4,
		CacheBytes:     4 << 20,
		MigrationBatch: 256 << 10,
		Follower:       follower,
	}
	var log *repl.Log
	if withLog {
		log = repl.NewLog(logCfg)
		opts.Tee = log
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		return nil, err
	}
	n := &node{db: db, log: log}
	scfg := server.Config{
		DB:         db,
		OwnDB:      true,
		ReadWait:   cfg.ReadWait,
		NoReadGate: cfg.NoReadGate && follower,
	}
	if log != nil {
		scfg.Repl = &repl.Primary{DB: db, Log: log}
	}
	// A node's serving epoch is the lineage of whatever it applies from:
	// the upstream's while it runs as a follower (even when re-teeing into
	// its own log for chaining — the re-tee log's distinct epoch only
	// matters once this node is promoted and its log becomes the write
	// lineage), its own log's once primary.
	scfg.Epoch = func() uint64 {
		if db.IsFollower() {
			if f := n.fol.Load(); f != nil {
				return f.Epoch()
			}
			return 0
		}
		if log != nil {
			return log.Epoch()
		}
		return 0
	}
	srv, err := server.New(scfg)
	if err != nil {
		db.Close()
		return nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		return nil, err
	}
	n.srv, n.addr = srv, addr.String()
	return n, nil
}

// cluster is 1 primary + F followers with lag-injected appliers.
type cluster struct {
	primary   *node
	followers []*node
	stop      chan struct{}
	appliers  sync.WaitGroup

	lagMu  sync.Mutex
	lagRng *rand.Rand
	minLag time.Duration
	lagW   time.Duration // MaxLag - MinLag
}

func (cl *cluster) lag() time.Duration {
	cl.lagMu.Lock()
	d := cl.minLag
	if cl.lagW > 0 {
		d += time.Duration(cl.lagRng.Int63n(int64(cl.lagW)))
	}
	cl.lagMu.Unlock()
	return d
}

func newCluster(cfg Config) (*cluster, error) {
	cl := &cluster{
		stop:   make(chan struct{}),
		lagRng: rand.New(rand.NewSource(cfg.Seed ^ 0x1a9)),
		minLag: cfg.MinLag,
		lagW:   cfg.MaxLag - cfg.MinLag,
	}
	p, err := newNode(false, true, repl.LogConfig{}, cfg)
	if err != nil {
		return nil, fmt.Errorf("primary: %w", err)
	}
	cl.primary = p
	for i := 0; i < cfg.Followers; i++ {
		f, err := newNode(true, false, repl.LogConfig{}, cfg)
		if err != nil {
			cl.close()
			return nil, fmt.Errorf("follower %d: %w", i, err)
		}
		cl.followers = append(cl.followers, f)
		nc, err := net.Dial("tcp", p.addr)
		if err != nil {
			cl.close()
			return nil, fmt.Errorf("follower %d dial: %w", i, err)
		}
		fol := &repl.Follower{
			DB:         f.db,
			ApplyDelay: func(uint64) { time.Sleep(cl.lag()) },
		}
		f.fol.Store(fol)
		cl.appliers.Add(1)
		go func() {
			defer cl.appliers.Done()
			fol.Run(nc, cl.stop)
		}()
	}
	// Wait for every applier to attach before the workload starts, so no
	// session races the bootstrap handshake.
	deadline := time.Now().Add(10 * time.Second)
	for len(p.log.Status().Peers) < cfg.Followers {
		if time.Now().After(deadline) {
			cl.close()
			return nil, errors.New("followers never attached")
		}
		time.Sleep(time.Millisecond)
	}
	return cl, nil
}

func (cl *cluster) close() {
	close(cl.stop)
	cl.appliers.Wait()
	for _, f := range cl.followers {
		f.srv.Shutdown()
	}
	if cl.primary != nil {
		cl.primary.srv.Shutdown()
	}
}

// Run generates the seeded schedule and executes it, returning "" or a
// violation description.
func Run(cfg Config) string {
	cfg.fill()
	sched := GenSchedule(rand.New(rand.NewSource(cfg.Seed)), cfg)
	return RunSchedule(cfg, sched)
}

// RunSchedule executes one explicit schedule (Shrink re-enters here).
func RunSchedule(cfg Config, sched []step) string {
	cfg.fill()
	cl, err := newCluster(cfg)
	if err != nil {
		return fmt.Sprintf("cluster: %v", err)
	}
	defer cl.close()

	pc, err := client.Dial(client.Options{Addr: cl.primary.addr})
	if err != nil {
		return fmt.Sprintf("dial primary: %v", err)
	}
	defer pc.Close()
	var fcs []*client.Client
	for i, f := range cl.followers {
		fc, err := client.Dial(client.Options{Addr: f.addr})
		if err != nil {
			return fmt.Sprintf("dial follower %d: %v", i, err)
		}
		defer fc.Close()
		fcs = append(fcs, fc)
	}

	// Split the schedule per session, preserving order within each.
	perSess := make([][]step, cfg.Sessions)
	for _, st := range sched {
		if st.sess < cfg.Sessions {
			perSess[st.sess] = append(perSess[st.sess], st)
		}
	}

	violations := make(chan string, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		if len(perSess[i]) == 0 {
			continue
		}
		sess := client.NewSession(pc, fcs, cfg.Policy)
		wg.Add(1)
		go func(id int, steps []step) {
			defer wg.Done()
			if v := runSession(id, sess, steps, cfg); v != "" {
				violations <- v
			}
		}(i, perSess[i])
	}
	wg.Wait()
	select {
	case v := <-violations:
		return v
	default:
		return ""
	}
}

// runSession executes one session's steps, checking every read. It keeps
// the session's authoritative model: the exact version of every private
// key it wrote (it is the only writer) and the highest version it has
// observed per shared key.
func runSession(id int, sess *client.Session, steps []step, cfg Config) string {
	own := make([]int, cfg.Keys)    // last acknowledged version per private key
	shared := make([]int, cfg.Keys) // session 0's shared write counters
	obs := make([]int, cfg.Keys)    // highest observed version per shared key
	ctr := make([]int64, cfg.Keys)  // exact acked delta sum per private counter
	ctrLive := make([]bool, cfg.Keys)
	var nIncr int64 // drives deterministic delta derivation

	ownKey := func(k int) []byte { return []byte(fmt.Sprintf("s%02d-k%03d", id, k)) }
	// Counters use 'q' so they sort after the 'k' keyspace: stepScan's
	// limit-bounded scan of the session prefix still sees every private
	// k-key first.
	ctrKey := func(k int) []byte { return []byte(fmt.Sprintf("s%02d-q%03d", id, k)) }
	sharedKey := func(k int) []byte { return []byte(fmt.Sprintf("shared-k%03d", k)) }
	val := func(v int) []byte { return []byte(fmt.Sprintf("%08d", v)) }
	bad := func(si int, format string, args ...any) string {
		return fmt.Sprintf("session %d step %d (%s, served by %s): %s",
			id, si, steps[si], sess.LastNode(), fmt.Sprintf(format, args...))
	}
	parse := func(v []byte) (int, bool) {
		n, err := strconv.Atoi(string(v))
		return n, err == nil
	}

	// checkOwn verifies read-your-writes for one private key: the read
	// must return exactly the session's last acknowledged version.
	checkOwn := func(si, k int, v []byte, err error) string {
		want := own[k]
		switch {
		case errors.Is(err, client.ErrNotFound):
			if want != 0 {
				return bad(si, "read-your-writes violation: key %s missing, last write was version %d", ownKey(k), want)
			}
		case err != nil:
			return bad(si, "read failed: %v", err)
		default:
			got, ok := parse(v)
			if !ok {
				return bad(si, "unparseable value %q for %s", v, ownKey(k))
			}
			if got != want {
				return bad(si, "read-your-writes violation: key %s version %d, last write was version %d", ownKey(k), got, want)
			}
		}
		return ""
	}

	// checkCtr verifies read-your-increments for one private counter: the
	// session is the only writer, so the read must decode to its exact
	// acknowledged delta sum.
	checkCtr := func(si, k int, v []byte, err error) string {
		switch {
		case errors.Is(err, client.ErrNotFound):
			if ctrLive[k] {
				return bad(si, "read-your-increments violation: counter %s missing, acked sum is %d", ctrKey(k), ctr[k])
			}
		case err != nil:
			return bad(si, "counter read failed: %v", err)
		default:
			got, derr := hyperdb.DecodeCounter(v)
			if derr != nil {
				return bad(si, "counter %s holds a non-counter value (%dB)", ctrKey(k), len(v))
			}
			if got != ctr[k] {
				return bad(si, "read-your-increments violation: counter %s = %d, acked sum is %d", ctrKey(k), got, ctr[k])
			}
		}
		return ""
	}

	for si, st := range steps {
		switch st.kind {
		case stepPut, stepPutGet:
			own[st.key]++
			if err := sess.Put(ownKey(st.key), val(own[st.key])); err != nil {
				return bad(si, "put failed: %v", err)
			}
			if st.kind == stepPutGet {
				v, err := sess.Get(ownKey(st.key))
				if viol := checkOwn(si, st.key, v, err); viol != "" {
					return viol
				}
			}
		case stepGet:
			v, err := sess.Get(ownKey(st.key))
			if viol := checkOwn(si, st.key, v, err); viol != "" {
				return viol
			}
		case stepMGet:
			ks := [][]byte{
				ownKey(st.key),
				ownKey((st.key + 1) % cfg.Keys),
				ownKey((st.key + 2) % cfg.Keys),
			}
			vals, err := sess.MultiGet(ks)
			if err != nil {
				return bad(si, "mget failed: %v", err)
			}
			for j, v := range vals {
				k := (st.key + j) % cfg.Keys
				e := error(nil)
				if v == nil {
					e = client.ErrNotFound
				}
				if viol := checkOwn(si, k, v, e); viol != "" {
					return viol
				}
			}
		case stepScan:
			// The private prefix sorts contiguously, so the first Keys
			// results cover every live private key: the scan must return
			// exactly the keys this session has written, each at its last
			// acknowledged version.
			kvs, err := sess.Scan(ownKey(0)[:4], cfg.Keys)
			if err != nil {
				return bad(si, "scan failed: %v", err)
			}
			found := make(map[string]string, len(kvs))
			for _, kv := range kvs {
				if strings.HasPrefix(string(kv.Key), string(ownKey(0)[:4])) {
					found[string(kv.Key)] = string(kv.Value)
				}
			}
			for k := 0; k < cfg.Keys; k++ {
				v, here := found[string(ownKey(k))]
				switch {
				case own[k] == 0 && here:
					return bad(si, "scan returned never-written key %s", ownKey(k))
				case own[k] != 0 && !here:
					return bad(si, "read-your-writes violation: scan missing key %s (version %d)", ownKey(k), own[k])
				case own[k] != 0:
					got, ok := parse([]byte(v))
					if !ok || got != own[k] {
						return bad(si, "read-your-writes violation: scan key %s version %q, last write was version %d", ownKey(k), v, own[k])
					}
				}
			}
		case stepIncr:
			// Deltas derive from a per-session counter so a shrunk schedule
			// replays the same values; they include negatives and zero.
			nIncr++
			d := nIncr%7 - 2
			want := ctr[st.key] + d
			v, err := sess.Incr(ctrKey(st.key), d)
			if err != nil {
				return bad(si, "incr failed: %v", err)
			}
			if v != want {
				return bad(si, "incr violation: counter %s returned %d, session model %d", ctrKey(st.key), v, want)
			}
			ctr[st.key], ctrLive[st.key] = want, true
			// Immediate policy-routed read-back: the merge just committed on
			// the primary, so a replica serving this read proves the gate.
			rv, rerr := sess.Get(ctrKey(st.key))
			if viol := checkCtr(si, st.key, rv, rerr); viol != "" {
				return viol
			}
		case stepCtrGet:
			v, err := sess.Get(ctrKey(st.key))
			if viol := checkCtr(si, st.key, v, err); viol != "" {
				return viol
			}
		case stepSharedPut:
			shared[st.key]++
			if err := sess.Put(sharedKey(st.key), val(shared[st.key])); err != nil {
				return bad(si, "shared put failed: %v", err)
			}
			if obs[st.key] < shared[st.key] {
				obs[st.key] = shared[st.key]
			}
		case stepSharedGet:
			v, err := sess.Get(sharedKey(st.key))
			switch {
			case errors.Is(err, client.ErrNotFound):
				if obs[st.key] > 0 {
					return bad(si, "monotonic reads violation: key %s missing after observing version %d", sharedKey(st.key), obs[st.key])
				}
			case err != nil:
				return bad(si, "shared read failed: %v", err)
			default:
				got, ok := parse(v)
				if !ok {
					return bad(si, "unparseable value %q for %s", v, sharedKey(st.key))
				}
				if got < obs[st.key] {
					return bad(si, "monotonic reads violation: key %s version %d after observing version %d", sharedKey(st.key), got, obs[st.key])
				}
				obs[st.key] = got
			}
		}
	}
	return ""
}

// Shrink reduces a failing schedule with bounded ddmin: repeatedly remove
// chunks while the run still fails, halving chunk size when stuck. budget
// caps the number of re-runs (each spins up a fresh cluster).
func Shrink(cfg Config, sched []step, budget int) []step {
	fails := func(s []step) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return RunSchedule(cfg, s) != ""
	}
	n := 2
	for len(sched) > 1 {
		chunk := (len(sched) + n - 1) / n
		removed := false
		for start := 0; start < len(sched); start += chunk {
			end := start + chunk
			if end > len(sched) {
				end = len(sched)
			}
			cand := make([]step, 0, len(sched)-(end-start))
			cand = append(cand, sched[:start]...)
			cand = append(cand, sched[end:]...)
			if len(cand) > 0 && fails(cand) {
				sched = cand
				if n > 2 {
					n--
				}
				removed = true
				break
			}
		}
		if !removed {
			if n >= len(sched) || budget <= 0 {
				break
			}
			n *= 2
			if n > len(sched) {
				n = len(sched)
			}
		}
	}
	return sched
}
