package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Node is one server's view of the cluster: the current map, its own group
// index, and the set of slots it is mid-way through acquiring. The server
// drainer consults it on every keyed op; the handoff drivers mutate it.
//
// Ownership answers are three-valued: a node owns a slot, is acquiring it
// (a handoff into this node is in flight — park the request briefly, the
// flip is imminent), or neither (bounce with WRONG_SHARD).
type Node struct {
	self uint32 // this node's group index

	cur atomic.Pointer[Map]

	mu        sync.Mutex
	acquiring map[uint32]bool
	change    chan struct{} // closed and remade on every acquiring-set change
}

// NewNode wires a node at group index self serving map m.
func NewNode(m *Map, self uint32) (*Node, error) {
	if int(self) >= len(m.Groups) {
		return nil, fmt.Errorf("cluster: self group %d of %d", self, len(m.Groups))
	}
	n := &Node{self: self, acquiring: make(map[uint32]bool), change: make(chan struct{})}
	n.cur.Store(m)
	return n, nil
}

// Self returns this node's group index.
func (n *Node) Self() uint32 { return n.self }

// Map returns the current map. The result is immutable.
func (n *Node) Map() *Map { return n.cur.Load() }

// Install adopts m if it is newer than the current map and returns whether
// it did. Handoff flips go through here: the swap is atomic, so a request
// checked after Install commits under the new ownership.
func (n *Node) Install(m *Map) bool {
	for {
		cur := n.cur.Load()
		if m.Version <= cur.Version {
			return false
		}
		if n.cur.CompareAndSwap(cur, m) {
			return true
		}
	}
}

// Owns reports whether this node owns the slot under the current map.
func (n *Node) Owns(slot uint32) bool {
	m := n.cur.Load()
	return int(slot) < len(m.Slots) && m.Slots[slot] == n.self
}

// Acquiring reports whether a handoff into this node covers slot, and
// returns a channel closed at the next acquiring-set change so callers can
// wait for the flip (or abort) instead of bouncing the client.
func (n *Node) Acquiring(slot uint32) (bool, <-chan struct{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.acquiring[slot], n.change
}

// BeginAcquire marks slots as being handed off into this node. It fails if
// any slot is already owned or already being acquired.
func (n *Node) BeginAcquire(slots []uint32) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.cur.Load()
	for _, s := range slots {
		if int(s) >= len(m.Slots) {
			return fmt.Errorf("cluster: slot %d of %d", s, len(m.Slots))
		}
		if m.Slots[s] == n.self {
			return fmt.Errorf("cluster: slot %d already owned", s)
		}
		if n.acquiring[s] {
			return fmt.Errorf("cluster: slot %d already being acquired", s)
		}
	}
	for _, s := range slots {
		n.acquiring[s] = true
	}
	n.bump()
	return nil
}

// FinishAcquire installs the post-flip map and clears the acquiring marks.
func (n *Node) FinishAcquire(slots []uint32, m *Map) {
	n.Install(m)
	n.mu.Lock()
	for _, s := range slots {
		delete(n.acquiring, s)
	}
	n.bump()
	n.mu.Unlock()
}

// AbortAcquire clears the acquiring marks after a failed handoff.
func (n *Node) AbortAcquire(slots []uint32) {
	n.mu.Lock()
	for _, s := range slots {
		delete(n.acquiring, s)
	}
	n.bump()
	n.mu.Unlock()
}

// bump wakes every Acquiring waiter. Callers hold n.mu.
func (n *Node) bump() {
	close(n.change)
	n.change = make(chan struct{})
}
