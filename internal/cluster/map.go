// Package cluster implements HyperDB's shard layer: a versioned map from
// consistent-hash slots to primary groups, the per-node ownership state the
// server consults on every keyed op, and the helpers both sides of a slot
// handoff share.
//
// The unit of ownership is the slot: a key hashes (FNV-1a) to one of a
// fixed number of slots, and the map names the group serving each slot.
// Rebalancing moves slots, never individual keys, so a map stays a few
// hundred bytes regardless of dataset size. Clients cache the map and route
// directly — nodes never proxy; a mis-routed op is bounced with
// StatusWrongShard plus the server's (newer) map, which is simultaneously
// the redirect and the refresh.
package cluster

import (
	"fmt"
	"hash/fnv"

	"hyperdb/internal/wire"
)

// DefaultSlots is the slot count hyperd uses when none is configured. Small
// enough that the map encodes in well under a KiB, large enough to balance
// across any plausible group count.
const DefaultSlots = 128

// Map is an immutable shard map. Share it by pointer; never mutate one
// that has been installed or handed out — derive a successor with Clone.
type Map struct {
	wire.ShardMap
}

// New builds a version-1 map spreading slots round-robin over groups.
func New(slots int, groups []string) (*Map, error) {
	m := &Map{wire.ShardMap{
		Version: 1,
		Groups:  append([]string(nil), groups...),
		Slots:   make([]uint32, slots),
	}}
	for i := range m.Slots {
		m.Slots[i] = uint32(i % max(len(groups), 1))
	}
	if err := wire.ValidateShardMap(&m.ShardMap); err != nil {
		return nil, err
	}
	return m, nil
}

// Decode parses and validates an encoded map.
func Decode(p []byte) (*Map, error) {
	sm, err := wire.DecodeShardMap(p)
	if err != nil {
		return nil, err
	}
	if err := wire.ValidateShardMap(sm); err != nil {
		return nil, err
	}
	return &Map{*sm}, nil
}

// Encode appends the wire form of m to dst.
func (m *Map) Encode(dst []byte) []byte { return wire.AppendShardMap(dst, &m.ShardMap) }

// SlotOf returns the slot a key hashes to.
func (m *Map) SlotOf(key []byte) uint32 {
	h := fnv.New64a()
	h.Write(key)
	return uint32(h.Sum64() % uint64(len(m.Slots)))
}

// OwnerGroup returns the group index owning a slot.
func (m *Map) OwnerGroup(slot uint32) uint32 { return m.Slots[slot] }

// Owner returns the address of the group owning key's slot.
func (m *Map) Owner(key []byte) string { return m.Groups[m.Slots[m.SlotOf(key)]] }

// GroupOf returns the index of addr in the group table, or -1.
func (m *Map) GroupOf(addr string) int {
	for i, a := range m.Groups {
		if a == addr {
			return i
		}
	}
	return -1
}

// SlotsOf returns the slots a group currently owns.
func (m *Map) SlotsOf(group uint32) []uint32 {
	var out []uint32
	for s, g := range m.Slots {
		if g == group {
			out = append(out, uint32(s))
		}
	}
	return out
}

// Clone returns a deep copy safe to mutate into a successor map.
func (m *Map) Clone() *Map {
	return &Map{wire.ShardMap{
		Version: m.Version,
		Groups:  append([]string(nil), m.Groups...),
		Slots:   append([]uint32(nil), m.Slots...),
	}}
}

// Reassign derives the successor map moving the given slots to group,
// bumping the version.
func (m *Map) Reassign(slots []uint32, group uint32) (*Map, error) {
	if int(group) >= len(m.Groups) {
		return nil, fmt.Errorf("cluster: group %d of %d", group, len(m.Groups))
	}
	next := m.Clone()
	next.Version++
	for _, s := range slots {
		if int(s) >= len(next.Slots) {
			return nil, fmt.Errorf("cluster: slot %d of %d", s, len(next.Slots))
		}
		next.Slots[s] = group
	}
	return next, nil
}
