package cluster

import (
	"fmt"
	"testing"
)

func TestNewMapBalances(t *testing.T) {
	m, err := New(128, []string{"a:1", "b:1", "c:1"})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint32]int)
	for _, g := range m.Slots {
		counts[g]++
	}
	for g := uint32(0); g < 3; g++ {
		if counts[g] < 128/3 {
			t.Fatalf("group %d owns %d slots", g, counts[g])
		}
	}
}

func TestSlotOfStableAndCovering(t *testing.T) {
	m, _ := New(64, []string{"a:1", "b:1"})
	hit := make(map[uint32]bool)
	for i := 0; i < 4096; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		s := m.SlotOf(k)
		if s != m.SlotOf(k) {
			t.Fatal("SlotOf not deterministic")
		}
		if int(s) >= len(m.Slots) {
			t.Fatalf("slot %d out of range", s)
		}
		hit[s] = true
	}
	if len(hit) < 60 {
		t.Fatalf("only %d/64 slots hit by 4096 keys", len(hit))
	}
}

func TestReassignBumpsVersion(t *testing.T) {
	m, _ := New(8, []string{"a:1", "b:1"})
	next, err := m.Reassign([]uint32{0, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Version != 2 || next.Slots[0] != 1 || next.Slots[2] != 1 {
		t.Fatalf("reassign: %+v", next.ShardMap)
	}
	if m.Slots[0] != 0 {
		t.Fatal("Reassign mutated the source map")
	}
	if _, err := m.Reassign([]uint32{99}, 1); err == nil {
		t.Fatal("out-of-range slot reassigned")
	}
	if _, err := m.Reassign([]uint32{0}, 9); err == nil {
		t.Fatal("out-of-range group reassigned")
	}
}

func TestMapEncodeDecode(t *testing.T) {
	m, _ := New(16, []string{"a:1", "b:1"})
	got, err := Decode(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || len(got.Slots) != len(m.Slots) {
		t.Fatalf("decode: %+v", got.ShardMap)
	}
}

func TestNodeOwnershipAndAcquire(t *testing.T) {
	m, _ := New(8, []string{"a:1", "b:1"})
	n, err := NewNode(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Owns(0) || n.Owns(1) {
		t.Fatal("round-robin ownership wrong")
	}

	if err := n.BeginAcquire([]uint32{1, 3}); err != nil {
		t.Fatal(err)
	}
	if err := n.BeginAcquire([]uint32{1}); err == nil {
		t.Fatal("double acquire allowed")
	}
	if err := n.BeginAcquire([]uint32{0}); err == nil {
		t.Fatal("acquiring an owned slot allowed")
	}
	acq, ch := n.Acquiring(1)
	if !acq {
		t.Fatal("slot 1 not acquiring")
	}

	next, _ := m.Reassign([]uint32{1, 3}, 0)
	n.FinishAcquire([]uint32{1, 3}, next)
	select {
	case <-ch:
	default:
		t.Fatal("FinishAcquire did not wake waiters")
	}
	if acq, _ := n.Acquiring(1); acq {
		t.Fatal("slot 1 still acquiring after finish")
	}
	if !n.Owns(1) || !n.Owns(3) {
		t.Fatal("flip did not grant ownership")
	}
	if n.Map().Version != 2 {
		t.Fatalf("map version %d", n.Map().Version)
	}

	// Older maps never displace newer ones.
	if n.Install(m) {
		t.Fatal("stale map installed")
	}

	if err := n.BeginAcquire([]uint32{5}); err != nil {
		t.Fatal(err)
	}
	n.AbortAcquire([]uint32{5})
	if acq, _ := n.Acquiring(5); acq {
		t.Fatal("slot 5 still acquiring after abort")
	}
}
