package merkle

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// mapScan adapts a sorted in-memory map to ScanFunc.
type mapScan struct {
	keys [][]byte
	vals map[string][]byte
}

func newMapScan() *mapScan { return &mapScan{vals: map[string][]byte{}} }

func (m *mapScan) put(k, v string) {
	if _, ok := m.vals[k]; !ok {
		m.keys = append(m.keys, []byte(k))
		sort.Slice(m.keys, func(a, b int) bool { return bytes.Compare(m.keys[a], m.keys[b]) < 0 })
	}
	m.vals[k] = []byte(v)
}

func (m *mapScan) scan(start []byte, limit int) ([]Pair, error) {
	var out []Pair
	for _, k := range m.keys {
		if bytes.Compare(k, start) < 0 {
			continue
		}
		out = append(out, Pair{Key: k, Value: m.vals[string(k)]})
		if len(out) == limit {
			break
		}
	}
	return out, nil
}

func TestLeafSpanBoundaries(t *testing.T) {
	const bits = 4
	lo, hi := LeafSpan(bits, 0)
	if lo != nil {
		t.Fatalf("bucket 0 lo = %x, want nil", lo)
	}
	if want := []byte{0x10}; !bytes.Equal(hi, want) {
		t.Fatalf("bucket 0 hi = %x, want %x", hi, want)
	}
	lo, hi = LeafSpan(bits, 15)
	if want := []byte{0xf0}; !bytes.Equal(lo, want) {
		t.Fatalf("last bucket lo = %x, want %x", lo, want)
	}
	if hi != nil {
		t.Fatalf("last bucket hi = %x, want nil", hi)
	}
	// A short key equal to a padded boundary must land in the bucket the
	// trimmed boundary assigns it to.
	if b := BucketOf(bits, []byte{0x10}); b != 1 {
		t.Fatalf("BucketOf(0x10) = %d, want 1", b)
	}
	if b := BucketOf(bits, []byte{0x0f, 0xff}); b != 0 {
		t.Fatalf("BucketOf(0x0fff) = %d, want 0", b)
	}
}

func TestSnapshotMatchesBuild(t *testing.T) {
	m := newMapScan()
	for i := 0; i < 500; i++ {
		m.put(fmt.Sprintf("key-%04d", i), fmt.Sprintf("val-%d", i))
	}
	tr := New(6)
	snap, err := tr.Snapshot(m.scan, 64)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildSnapshot(6, m.scan, 64)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Root() != built.Root() {
		t.Fatalf("incremental root != from-scratch root")
	}
	if snap.Root() == (Hash{}) {
		t.Fatalf("root is zero for non-empty data")
	}
}

func TestIncrementalUpdate(t *testing.T) {
	m := newMapScan()
	for i := 0; i < 200; i++ {
		m.put(fmt.Sprintf("key-%04d", i), "v0")
	}
	tr := New(6)
	s1, err := tr.Snapshot(m.scan, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate one key; only its leaf is marked.
	m.put("key-0042", "v1")
	tr.MarkKey([]byte("key-0042"))
	s2, err := tr.Snapshot(m.scan, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Root() == s2.Root() {
		t.Fatalf("root unchanged after mutation")
	}
	// Rebuild from scratch must agree with the incremental result.
	built, err := BuildSnapshot(6, m.scan, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Root() != built.Root() {
		t.Fatalf("incremental update diverged from rebuild")
	}
	// Exactly the mutated key's leaf differs between s1 and s2.
	want := LeafID(6, BucketOf(6, []byte("key-0042")))
	diffs := 0
	for id := uint32(1 << 6); id < 2<<6; id++ {
		h1, _ := s1.Node(id)
		h2, _ := s2.Node(id)
		if h1 != h2 {
			diffs++
			if id != want {
				t.Fatalf("unexpected leaf %d differs", id)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d leaves differ, want 1", diffs)
	}
}

func TestDivergenceWalk(t *testing.T) {
	a, b := newMapScan(), newMapScan()
	for i := 0; i < 1000; i++ {
		k, v := fmt.Sprintf("key-%05d", i), fmt.Sprintf("val-%d", i)
		a.put(k, v)
		b.put(k, v)
	}
	// Diverge k keys on b.
	divergent := map[uint32]bool{}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%05d", i*137)
		b.put(k, "stale")
		divergent[BucketOf(DefaultBits, []byte(k))] = true
	}
	sa, err := BuildSnapshot(DefaultBits, a.scan, 128)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := BuildSnapshot(DefaultBits, b.scan, 128)
	if err != nil {
		t.Fatal(err)
	}
	// BFS walk exactly as the anti-entropy follower does.
	var leaves []uint32
	queue := []uint32{1}
	visited := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		visited++
		ha, _ := sa.Node(id)
		hb, _ := sb.Node(id)
		if ha == hb {
			continue
		}
		if sa.IsLeaf(id) {
			leaves = append(leaves, id)
			continue
		}
		queue = append(queue, 2*id, 2*id+1)
	}
	if len(leaves) != len(divergent) {
		t.Fatalf("walk found %d divergent leaves, want %d", len(leaves), len(divergent))
	}
	for _, id := range leaves {
		if !divergent[sa.LeafBucket(id)] {
			t.Fatalf("leaf %d not actually divergent", id)
		}
	}
	// O(divergence): visits bounded by ~2 * leaves * depth, far below the
	// 2048-node full tree.
	if visited > 2*len(divergent)*(DefaultBits+1)+1 {
		t.Fatalf("walk visited %d nodes for %d divergent leaves", visited, len(divergent))
	}
}

func TestEmptyTree(t *testing.T) {
	m := newMapScan()
	tr := New(4)
	s, err := tr.Snapshot(m.scan, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root() != (Hash{}) {
		t.Fatalf("empty tree root = %x, want zero", s.Root())
	}
}

func TestLeafSpanScanEquivalence(t *testing.T) {
	// Per-leaf hashRange over spans must agree with the bucketed full pass,
	// including short keys that sit exactly on padded boundaries.
	m := newMapScan()
	m.put(string([]byte{0x10}), "edge") // equals bucket-1 boundary at bits=4
	m.put(string([]byte{0x0f, 0xff}), "below")
	for i := 0; i < 300; i++ {
		m.put(fmt.Sprintf("k%03d", i), "v")
	}
	const bits = 4
	all, err := hashAllLeaves(bits, m.scan, 32)
	if err != nil {
		t.Fatal(err)
	}
	for b := uint32(0); b < 1<<bits; b++ {
		lo, hi := LeafSpan(bits, b)
		h, err := hashRange(m.scan, lo, hi, 32)
		if err != nil {
			t.Fatal(err)
		}
		if h != all[b] {
			t.Fatalf("bucket %d: per-leaf hash != full-pass hash", b)
		}
	}
}
