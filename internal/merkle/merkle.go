// Package merkle maintains an incremental Merkle tree over the 64-bit
// prefix keyspace (zone.Key64 order). The keyspace is split into 2^bits
// equal leaf ranges; each leaf digests its range's live key-value pairs and
// internal nodes digest their children, so two replicas can locate every
// divergent range by walking subtree hashes top-down — O(divergence)
// comparisons instead of O(dataset) transfer on rejoin.
//
// Hashes cover user keys and values only, never sequence numbers: a
// follower bootstrapped from a snapshot re-mints sequences locally but must
// still hash identically to the primary once its data matches.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"

	"hyperdb/internal/keys"
)

// DefaultBits gives 1024 leaves — at the paper's scale each leaf covers a
// few thousand objects, so a single-key divergence costs one leaf fetch.
const DefaultBits = 10

// MaxBits bounds the node array (2^17 hashes = 4 MiB) against bad input.
const MaxBits = 16

// Hash is one node digest; the zero Hash marks an empty subtree.
type Hash = [32]byte

// Pair is one live key-value pair fed to leaf hashing.
type Pair struct {
	Key   []byte
	Value []byte
}

// ScanFunc pages live pairs in key order: up to limit pairs with key >=
// start. core.DB.Scan adapts to it directly.
type ScanFunc func(start []byte, limit int) ([]Pair, error)

// BucketOf returns the leaf bucket (0-based) holding key.
func BucketOf(bits uint, key []byte) uint32 {
	var b [8]byte
	copy(b[:], key)
	return uint32(binary.BigEndian.Uint64(b[:]) >> (64 - bits))
}

// LeafID converts a bucket to its heap node id (leaves occupy
// [2^bits, 2^bits+1)).
func LeafID(bits uint, bucket uint32) uint32 { return 1<<bits + bucket }

// LeafSpan returns the closed-open user-key range [lo, hi) that bucket
// covers; nil lo means the keyspace start, nil hi means its end. Trimming
// trailing zero bytes from the boundary's big-endian encoding keeps short
// keys on the correct side: byte order against the trimmed boundary agrees
// exactly with zero-padded prefix order against the boundary value.
func LeafSpan(bits uint, bucket uint32) (lo, hi []byte) {
	return boundary(bits, uint64(bucket)), boundary(bits, uint64(bucket)+1)
}

func boundary(bits uint, b uint64) []byte {
	if b == 0 || b >= 1<<bits {
		return nil
	}
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], b<<(64-bits))
	n := 8
	for n > 0 && e[n-1] == 0 {
		n--
	}
	return append([]byte(nil), e[:n]...)
}

// Tree tracks which leaves a node's committed writes have dirtied and
// recomputes only those on Snapshot. MarkKey is cheap enough for the apply
// path; Snapshot does the scans.
type Tree struct {
	bits uint

	mu    sync.Mutex
	dirty map[uint32]struct{}
	nodes []Hash // heap-numbered, ids 1..2^(bits+1)-1; index 0 unused
}

// New returns a tree with every leaf dirty, so the first Snapshot builds
// from the DB's current contents. bits outside [1, MaxBits] gets
// DefaultBits.
func New(bits int) *Tree {
	if bits < 1 || bits > MaxBits {
		bits = DefaultBits
	}
	t := &Tree{
		bits:  uint(bits),
		nodes: make([]Hash, 2<<uint(bits)),
		dirty: make(map[uint32]struct{}, 1<<uint(bits)),
	}
	t.markAllLocked()
	return t
}

// Bits returns the tree's leaf-count exponent.
func (t *Tree) Bits() int { return int(t.bits) }

// MarkKey records that key's leaf needs rehashing.
func (t *Tree) MarkKey(key []byte) {
	b := BucketOf(t.bits, key)
	t.mu.Lock()
	t.dirty[b] = struct{}{}
	t.mu.Unlock()
}

// MarkAll invalidates every leaf — used after wholesale state replacement
// (snapshot bootstrap, anti-entropy repair).
func (t *Tree) MarkAll() {
	t.mu.Lock()
	t.markAllLocked()
	t.mu.Unlock()
}

func (t *Tree) markAllLocked() {
	for b := uint32(0); b < 1<<t.bits; b++ {
		t.dirty[b] = struct{}{}
	}
}

// Snapshot rehashes the dirty leaves via scan, folds the changes up the
// tree and returns an immutable copy for an anti-entropy conversation.
// Writes racing the scans stay conservatively dirty for the next call.
func (t *Tree) Snapshot(scan ScanFunc, pairsPerPage int) (*Snapshot, error) {
	if pairsPerPage <= 0 {
		pairsPerPage = 256
	}
	t.mu.Lock()
	dirty := t.dirty
	t.dirty = make(map[uint32]struct{})
	t.mu.Unlock()

	restore := func() {
		t.mu.Lock()
		for b := range dirty {
			t.dirty[b] = struct{}{}
		}
		t.mu.Unlock()
	}

	updates := make(map[uint32]Hash, len(dirty))
	if len(dirty) == 1<<t.bits {
		// Everything is dirty (first snapshot, or post-bootstrap): one
		// ordered pass over the whole keyspace beats 2^bits range scans.
		leaves, err := hashAllLeaves(t.bits, scan, pairsPerPage)
		if err != nil {
			restore()
			return nil, err
		}
		for b, h := range leaves {
			updates[uint32(b)] = h
		}
	} else {
		for b := range dirty {
			lo, hi := LeafSpan(t.bits, b)
			h, err := hashRange(scan, lo, hi, pairsPerPage)
			if err != nil {
				restore()
				return nil, err
			}
			updates[b] = h
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	cur := make(map[uint32]struct{}, len(updates))
	for b, h := range updates {
		id := LeafID(t.bits, b)
		if t.nodes[id] != h {
			t.nodes[id] = h
			cur[id] = struct{}{}
		}
	}
	for len(cur) > 0 {
		parents := make(map[uint32]struct{}, len(cur))
		for id := range cur {
			if id > 1 {
				parents[id>>1] = struct{}{}
			}
		}
		for p := range parents {
			t.nodes[p] = combine(t.nodes[2*p], t.nodes[2*p+1])
		}
		cur = parents
	}
	return &Snapshot{bits: t.bits, nodes: append([]Hash(nil), t.nodes...)}, nil
}

// combine hashes two children; an all-empty pair stays the zero Hash so
// empty subtrees compare equal without hashing.
func combine(l, r Hash) Hash {
	if l == (Hash{}) && r == (Hash{}) {
		return Hash{}
	}
	var buf [64]byte
	copy(buf[:32], l[:])
	copy(buf[32:], r[:])
	return sha256.Sum256(buf[:])
}

// writePair frames one pair into a leaf digest: uvarint lengths prevent
// (key, value) boundary ambiguity.
func writePair(h hash.Hash, key, value []byte) {
	var tmp [binary.MaxVarintLen64]byte
	h.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(key)))])
	h.Write(key)
	h.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(value)))])
	h.Write(value)
}

// hashRange digests the live pairs in [lo, hi) via paged scans. An empty
// range digests to the zero Hash.
func hashRange(scan ScanFunc, lo, hi []byte, pairsPerPage int) (Hash, error) {
	h := sha256.New()
	empty := true
	start := lo
	for {
		pairs, err := scan(start, pairsPerPage)
		if err != nil {
			return Hash{}, err
		}
		for _, p := range pairs {
			if hi != nil && bytes.Compare(p.Key, hi) >= 0 {
				pairs = nil // past the leaf: stop paging
				break
			}
			empty = false
			writePair(h, p.Key, p.Value)
		}
		if len(pairs) < pairsPerPage {
			break
		}
		start = keys.Successor(pairs[len(pairs)-1].Key)
	}
	if empty {
		return Hash{}, nil
	}
	var out Hash
	h.Sum(out[:0])
	return out, nil
}

// hashAllLeaves digests every leaf in one ordered pass over the keyspace.
func hashAllLeaves(bits uint, scan ScanFunc, pairsPerPage int) ([]Hash, error) {
	leaves := make([]Hash, 1<<bits)
	h := sha256.New()
	cur := uint32(0)
	started := false
	flush := func() {
		if started {
			h.Sum(leaves[cur][:0])
			h.Reset()
			started = false
		}
	}
	var start []byte
	for {
		pairs, err := scan(start, pairsPerPage)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			b := BucketOf(bits, p.Key)
			if b != cur {
				if b < cur {
					return nil, fmt.Errorf("merkle: scan out of order at %q", p.Key)
				}
				flush()
				cur = b
			}
			started = true
			writePair(h, p.Key, p.Value)
		}
		if len(pairs) < pairsPerPage {
			break
		}
		start = keys.Successor(pairs[len(pairs)-1].Key)
	}
	flush()
	return leaves, nil
}

// BuildSnapshot hashes a DB from scratch at the given bits — the fallback
// when two nodes' trees disagree on leaf count.
func BuildSnapshot(bits int, scan ScanFunc, pairsPerPage int) (*Snapshot, error) {
	if bits < 1 || bits > MaxBits {
		bits = DefaultBits
	}
	if pairsPerPage <= 0 {
		pairsPerPage = 256
	}
	leaves, err := hashAllLeaves(uint(bits), scan, pairsPerPage)
	if err != nil {
		return nil, err
	}
	nodes := make([]Hash, 2<<uint(bits))
	copy(nodes[1<<uint(bits):], leaves)
	for id := uint32(1<<uint(bits)) - 1; id >= 1; id-- {
		nodes[id] = combine(nodes[2*id], nodes[2*id+1])
	}
	return &Snapshot{bits: uint(bits), nodes: nodes}, nil
}

// Snapshot is an immutable point-in-time tree served to an anti-entropy
// peer. Node ids are heap-numbered: root 1, children of i are 2i and 2i+1,
// leaves occupy [2^bits, 2^(bits+1)).
type Snapshot struct {
	bits  uint
	nodes []Hash
}

// Bits returns the leaf-count exponent.
func (s *Snapshot) Bits() int { return int(s.bits) }

// Root returns the whole-tree digest.
func (s *Snapshot) Root() Hash { return s.nodes[1] }

// Node returns the digest of a heap node id; ok=false for out-of-range ids.
func (s *Snapshot) Node(id uint32) (Hash, bool) {
	if id < 1 || int(id) >= len(s.nodes) {
		return Hash{}, false
	}
	return s.nodes[id], true
}

// IsLeaf reports whether id addresses a leaf.
func (s *Snapshot) IsLeaf(id uint32) bool {
	return id >= 1<<s.bits && id < 2<<s.bits
}

// LeafBucket converts a leaf id back to its bucket.
func (s *Snapshot) LeafBucket(id uint32) uint32 { return id - 1<<s.bits }

// LeafSpan returns the key range of a leaf id.
func (s *Snapshot) LeafSpan(id uint32) (lo, hi []byte) {
	return LeafSpan(s.bits, s.LeafBucket(id))
}
