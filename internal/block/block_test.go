package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyperdb/internal/keys"
)

func ik(user string, seq uint64) keys.InternalKey {
	return keys.InternalKey{User: []byte(user), Seq: seq, Kind: keys.KindSet}
}

func TestBuildIterate(t *testing.T) {
	b := NewBuilder(4)
	var want []string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		want = append(want, k)
		b.Add(ik(k, uint64(i)), []byte("val-"+k))
	}
	if b.Count() != 100 {
		t.Fatalf("count = %d", b.Count())
	}
	data := b.Finish()
	it, err := NewIter(data)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key().User) != want[i] {
			t.Fatalf("entry %d: got %q want %q", i, it.Key().User, want[i])
		}
		if string(it.Value()) != "val-"+want[i] {
			t.Fatalf("entry %d: wrong value %q", i, it.Value())
		}
		if it.Key().Seq != uint64(i) {
			t.Fatalf("entry %d: seq = %d", i, it.Key().Seq)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != 100 {
		t.Fatalf("iterated %d entries", i)
	}
}

func TestPrefixCompressionShrinks(t *testing.T) {
	long := NewBuilder(16)
	flat := 0
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("very/long/common/prefix/key-%06d", i)
		long.Add(ik(k, 1), []byte("v"))
		flat += len(k) + 8 + 1
	}
	if got := len(long.Finish()); got >= flat {
		t.Fatalf("prefix compression ineffective: %d >= %d", got, flat)
	}
}

func TestSeekGE(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 50; i++ {
		b.Add(ik(fmt.Sprintf("k%03d", i*2), 1), nil) // even keys only
	}
	it, err := NewIter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	// Exact hit.
	it.SeekGE(keys.MakeSearchKey([]byte("k020"), keys.MaxSeq))
	if !it.Valid() || string(it.Key().User) != "k020" {
		t.Fatalf("seek exact: %v", it.Key())
	}
	// Between keys: lands on next.
	it.SeekGE(keys.MakeSearchKey([]byte("k021"), keys.MaxSeq))
	if !it.Valid() || string(it.Key().User) != "k022" {
		t.Fatalf("seek between: %v", it.Key())
	}
	// Before first.
	it.SeekGE(keys.MakeSearchKey([]byte("a"), keys.MaxSeq))
	if !it.Valid() || string(it.Key().User) != "k000" {
		t.Fatalf("seek before: %v", it.Key())
	}
	// Past last.
	it.SeekGE(keys.MakeSearchKey([]byte("z"), keys.MaxSeq))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestSeekGEVersions(t *testing.T) {
	// Multiple versions of one key: seek at a snapshot lands on the newest
	// version visible.
	b := NewBuilder(16)
	b.Add(keys.InternalKey{User: []byte("k"), Seq: 30, Kind: keys.KindSet}, []byte("v30"))
	b.Add(keys.InternalKey{User: []byte("k"), Seq: 20, Kind: keys.KindDelete}, nil)
	b.Add(keys.InternalKey{User: []byte("k"), Seq: 10, Kind: keys.KindSet}, []byte("v10"))
	it, _ := NewIter(b.Finish())

	it.SeekGE(keys.MakeSearchKey([]byte("k"), keys.MaxSeq))
	if !it.Valid() || it.Key().Seq != 30 {
		t.Fatalf("snapshot max: %v", it.Key())
	}
	it.SeekGE(keys.MakeSearchKey([]byte("k"), 25))
	if !it.Valid() || it.Key().Seq != 20 || it.Key().Kind != keys.KindDelete {
		t.Fatalf("snapshot 25: %v", it.Key())
	}
	it.SeekGE(keys.MakeSearchKey([]byte("k"), 15))
	if !it.Valid() || it.Key().Seq != 10 {
		t.Fatalf("snapshot 15: %v", it.Key())
	}
}

func TestEmptyValues(t *testing.T) {
	b := NewBuilder(0)
	b.Add(ik("a", 1), nil)
	b.Add(ik("b", 2), []byte{})
	it, err := NewIter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if len(it.Value()) != 0 {
			t.Fatalf("value = %q", it.Value())
		}
		n++
	}
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(4)
	b.Add(ik("x", 1), []byte("v"))
	b.Finish()
	b.Reset()
	if b.Count() != 0 || b.FirstUserKey() != nil {
		t.Fatal("reset incomplete")
	}
	b.Add(ik("a", 1), []byte("v"))
	it, err := NewIter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	it.First()
	if !it.Valid() || string(it.Key().User) != "a" {
		t.Fatal("reuse after reset broken")
	}
}

func TestMalformedBlocks(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, {0, 0, 0, 99}, bytes.Repeat([]byte{7}, 12)} {
		if _, err := NewIter(data); err == nil {
			// A 12-byte garbage block may parse as a handle but must fail
			// during iteration instead.
			it, _ := NewIter(data)
			if it != nil {
				for it.First(); it.Valid(); it.Next() {
				}
				if it.Err() == nil {
					t.Fatalf("malformed block %v accepted silently", data)
				}
			}
		}
	}
}

func TestFirstLastUserKey(t *testing.T) {
	b := NewBuilder(4)
	b.Add(ik("aaa", 1), nil)
	b.Add(ik("mmm", 1), nil)
	b.Add(ik("zzz", 1), nil)
	if string(b.FirstUserKey()) != "aaa" || string(b.LastUserKey()) != "zzz" {
		t.Fatalf("bounds = %q..%q", b.FirstUserKey(), b.LastUserKey())
	}
}

func TestRandomizedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		ks := make([]string, 0, n)
		seen := map[string]bool{}
		for len(ks) < n {
			k := fmt.Sprintf("%x", rng.Int63())
			if !seen[k] {
				seen[k] = true
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		b := NewBuilder(1 + rng.Intn(20))
		vals := map[string][]byte{}
		for _, k := range ks {
			v := make([]byte, rng.Intn(64))
			rng.Read(v)
			vals[k] = v
			b.Add(ik(k, uint64(rng.Intn(1000))), v)
		}
		it, err := NewIter(b.Finish())
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key().User) != ks[i] {
				t.Fatalf("trial %d entry %d: %q != %q", trial, i, it.Key().User, ks[i])
			}
			if !bytes.Equal(it.Value(), vals[ks[i]]) {
				t.Fatalf("trial %d entry %d: value mismatch", trial, i)
			}
			i++
		}
		if i != n {
			t.Fatalf("trial %d: %d/%d entries", trial, i, n)
		}
		// Seek every key.
		for _, k := range ks {
			it.SeekGE(keys.MakeSearchKey([]byte(k), keys.MaxSeq))
			if !it.Valid() || string(it.Key().User) != k {
				t.Fatalf("trial %d: seek %q failed", trial, k)
			}
		}
	}
}

func TestCountHelper(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 37; i++ {
		b.Add(ik(fmt.Sprintf("k%02d", i), 1), nil)
	}
	n, err := Count(b.Finish())
	if err != nil || n != 37 {
		t.Fatalf("count = %d err=%v", n, err)
	}
}
