// Package block implements the prefix-compressed sorted block format shared
// by classic SSTables and semi-SSTables. Entries are (internal key, value)
// pairs sorted by internal key; keys share prefixes with their predecessor
// and restart points every N entries allow binary search. The same format,
// with empty values, encodes the "all valid keys" index the semi-SSTable
// keeps so compaction can read keys without touching data blocks (§3.2).
package block

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyperdb/internal/keys"
)

// DefaultRestartInterval matches LevelDB's default.
const DefaultRestartInterval = 16

// ErrMalformed reports an undecodable block.
var ErrMalformed = errors.New("block: malformed")

// Builder assembles one block. Keys must be added in strictly increasing
// internal-key order.
type Builder struct {
	buf             []byte
	restarts        []uint32
	restartInterval int
	counter         int
	count           int
	lastKey         []byte
	firstUser       []byte
	lastUser        []byte
}

// NewBuilder returns a builder with the given restart interval (0 = default).
func NewBuilder(restartInterval int) *Builder {
	if restartInterval <= 0 {
		restartInterval = DefaultRestartInterval
	}
	return &Builder{restartInterval: restartInterval}
}

// Reset clears the builder for reuse.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.count = 0
	b.lastKey = b.lastKey[:0]
	b.firstUser = nil
	b.lastUser = nil
}

// Count returns the number of entries added since the last Reset.
func (b *Builder) Count() int { return b.count }

// SizeEstimate returns the encoded size if Finish were called now.
func (b *Builder) SizeEstimate() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// FirstUserKey and LastUserKey bound the entries added so far.
func (b *Builder) FirstUserKey() []byte { return b.firstUser }
func (b *Builder) LastUserKey() []byte  { return b.lastUser }

// Add appends an entry. ikey must sort after every previously added key.
func (b *Builder) Add(ikey keys.InternalKey, value []byte) {
	enc := ikey.Encode(nil)
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(enc) < n {
			n = len(enc)
		}
		for shared < n && b.lastKey[shared] == enc[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	var tmp [binary.MaxVarintLen32]byte
	for _, v := range []int{shared, len(enc) - shared, len(value)} {
		n := binary.PutUvarint(tmp[:], uint64(v))
		b.buf = append(b.buf, tmp[:n]...)
	}
	b.buf = append(b.buf, enc[shared:]...)
	b.buf = append(b.buf, value...)

	b.lastKey = append(b.lastKey[:0], enc...)
	if b.firstUser == nil {
		b.firstUser = append([]byte(nil), ikey.User...)
	}
	b.lastUser = append(b.lastUser[:0], ikey.User...)
	b.counter++
	b.count++
}

// Finish appends the restart array and entry count, returning the block.
// The returned slice is owned by the caller; the builder may be reused
// after Reset.
func (b *Builder) Finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	out := make([]byte, len(b.buf), len(b.buf)+4*len(b.restarts)+8)
	copy(out, b.buf)
	var tmp [4]byte
	for _, r := range b.restarts {
		binary.LittleEndian.PutUint32(tmp[:], r)
		out = append(out, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.restarts)))
	out = append(out, tmp[:]...)
	return out
}

// Iter iterates a finished block in sorted order.
type Iter struct {
	data     []byte // entries only (restart trailer stripped)
	restarts []uint32
	off      int // offset of current entry; len(data) = exhausted
	nextOff  int
	key      []byte
	value    []byte
	valid    bool
	err      error
}

// NewIter opens a finished block for iteration.
func NewIter(data []byte) (*Iter, error) {
	if len(data) < 4 {
		return nil, ErrMalformed
	}
	n := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	trailer := 4 + 4*n
	if n < 1 || trailer > len(data) {
		return nil, fmt.Errorf("%w: bad restart count %d", ErrMalformed, n)
	}
	it := &Iter{
		data:     data[:len(data)-trailer],
		restarts: make([]uint32, n),
	}
	for i := 0; i < n; i++ {
		it.restarts[i] = binary.LittleEndian.Uint32(data[len(data)-trailer+4*i:])
		if int(it.restarts[i]) > len(it.data) {
			return nil, fmt.Errorf("%w: restart %d out of range", ErrMalformed, i)
		}
	}
	return it, nil
}

// Err returns the first decoding error encountered.
func (it *Iter) Err() error { return it.err }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.valid }

// Key returns the current internal key (decoded view into the iterator's
// scratch buffer — copy before the next move if retained).
func (it *Iter) Key() keys.InternalKey {
	ik, _ := keys.DecodeInternalKey(it.key)
	return ik
}

// Value returns the current value (view into the block data).
func (it *Iter) Value() []byte { return it.value }

// First positions at the first entry.
func (it *Iter) First() {
	it.off = 0
	it.nextOff = 0
	it.key = it.key[:0]
	it.parseNext()
}

// Next advances to the following entry.
func (it *Iter) Next() {
	if !it.valid {
		return
	}
	it.parseNext()
}

// parseNext decodes the entry at nextOff.
func (it *Iter) parseNext() {
	it.valid = false
	if it.nextOff >= len(it.data) {
		return
	}
	off := it.nextOff
	shared, n1 := binary.Uvarint(it.data[off:])
	if n1 <= 0 {
		it.err = ErrMalformed
		return
	}
	off += n1
	unshared, n2 := binary.Uvarint(it.data[off:])
	if n2 <= 0 {
		it.err = ErrMalformed
		return
	}
	off += n2
	vlen, n3 := binary.Uvarint(it.data[off:])
	if n3 <= 0 {
		it.err = ErrMalformed
		return
	}
	off += n3
	if int(shared) > len(it.key) || off+int(unshared)+int(vlen) > len(it.data) {
		it.err = ErrMalformed
		return
	}
	it.key = append(it.key[:shared], it.data[off:off+int(unshared)]...)
	off += int(unshared)
	it.value = it.data[off : off+int(vlen)]
	it.off = it.nextOff
	it.nextOff = off + int(vlen)
	it.valid = true
}

// SeekGE positions at the first entry with internal key >= target.
func (it *Iter) SeekGE(target keys.InternalKey) {
	// Binary-search restart points for the last restart whose key < target.
	lo, hi := 0, len(it.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.nextOff = int(it.restarts[mid])
		it.key = it.key[:0]
		it.parseNext()
		if !it.valid {
			hi = mid - 1
			continue
		}
		if keys.Compare(it.Key(), target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.nextOff = int(it.restarts[lo])
	it.key = it.key[:0]
	for it.parseNext(); it.valid; it.parseNext() {
		if keys.Compare(it.Key(), target) >= 0 {
			return
		}
	}
}

// Count returns the total number of entries by scanning; used in tests and
// compaction statistics, not on hot paths.
func Count(data []byte) (int, error) {
	it, err := NewIter(data)
	if err != nil {
		return 0, err
	}
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	return n, it.Err()
}
