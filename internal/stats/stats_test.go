package stats

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() == 0 || h.Max() == 0 {
		t.Fatal("min/max not tracked")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform from 1µs to 100ms.
		d := time.Duration(float64(time.Microsecond) * pow10(rng.Float64()*5))
		samples = append(samples, d)
		h.Record(d)
	}
	exact := ExactPercentiles(samples, 0.5, 0.9, 0.99)
	for i, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		lo := float64(exact[i]) * 0.85
		hi := float64(exact[i]) * 1.15
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q=%.2f: histogram %v vs exact %v (>15%% off)", q, got, exact[i])
		}
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	// linear interpolation within the last decade is fine for test data
	return r * (1 + 9*x)
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(rng.Intn(1000000)) * time.Nanosecond)
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d, want 80000", h.Count())
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	b.Record(4 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() < 4*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(rng.Intn(10_000_000)))
	}
	prev := time.Duration(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestCounters(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTrafficSnapshotSub(t *testing.T) {
	var tc TrafficCounters
	tc.ReadBytes.Add(100)
	tc.WriteBytes.Add(50)
	tc.BgWriteBytes.Add(20)
	s1 := tc.Snapshot()
	tc.ReadBytes.Add(10)
	tc.WriteBytes.Add(5)
	d := tc.Snapshot().Sub(s1)
	if d.ReadBytes != 10 || d.WriteBytes != 5 || d.BgWriteBytes != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if s1.TotalBytes() != 150 {
		t.Fatalf("total = %d", s1.TotalBytes())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2048:    "2.00KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestBandwidthSampler(t *testing.T) {
	var tc TrafficCounters
	s := NewBandwidthSampler(&tc, 10*time.Millisecond)
	for i := 0; i < 5; i++ {
		tc.ReadBytes.Add(1 << 20)
		tc.WriteBytes.Add(1 << 19)
		time.Sleep(12 * time.Millisecond)
	}
	samples := s.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	r, w := MeanBandwidth(samples)
	if r <= 0 || w <= 0 {
		t.Fatalf("bandwidth r=%f w=%f", r, w)
	}
	if r < w {
		t.Fatalf("reads were 2x writes, but r=%f < w=%f", r, w)
	}
}

func TestMeanBandwidthSkipsIdle(t *testing.T) {
	samples := []BandwidthSample{
		{ReadBps: 0, WriteBps: 0}, // idle: skipped
		{ReadBps: 100, WriteBps: 50},
		{ReadBps: 200, WriteBps: 150},
	}
	r, w := MeanBandwidth(samples)
	if r != 150 || w != 100 {
		t.Fatalf("r=%f w=%f", r, w)
	}
}
