// Package stats provides the measurement plumbing used by every experiment:
// lock-free latency histograms with percentile queries, monotonic traffic
// counters, and a periodic bandwidth sampler.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe log-linear latency histogram. Buckets grow
// geometrically from 250ns to ~17min with 16 linear sub-buckets per octave,
// giving a worst-case quantile error of ~6%. Record is wait-free.
type Histogram struct {
	counts [nBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds, for Mean
	max    atomic.Uint64
	min    atomic.Uint64
}

const (
	subBuckets = 16
	octaves    = 33 // 250ns << 33 exceeds any latency we measure
	nBuckets   = octaves * subBuckets
	baseNanos  = 250
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

func bucketFor(nanos uint64) int {
	if nanos < baseNanos {
		return 0
	}
	v := nanos / baseNanos
	// octave = floor(log2(v)), position within the octave in 16 steps.
	oct := 63 - leadingZeros64(v)
	if oct >= octaves {
		return nBuckets - 1
	}
	var sub uint64
	if oct > 0 {
		sub = (v - 1<<uint(oct)) >> uint(oct-4)
		if oct < 4 {
			sub = (v - 1<<uint(oct)) << uint(4-oct)
		}
	}
	idx := oct*subBuckets + int(sub)
	if idx >= nBuckets {
		idx = nBuckets - 1
	}
	return idx
}

func bucketUpper(idx int) uint64 {
	oct := idx / subBuckets
	sub := uint64(idx % subBuckets)
	lo := uint64(1) << uint(oct)
	var width uint64
	if oct >= 4 {
		width = lo >> 4
	} else {
		width = 1
	}
	return (lo + (sub+1)*width) * baseNanos
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	n := uint64(d.Nanoseconds())
	h.counts[bucketFor(n)].Add(1)
	h.total.Add(1)
	h.sum.Add(n)
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if n >= cur || h.min.CompareAndSwap(cur, n) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the average latency, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Min returns the smallest recorded latency, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	v := h.min.Load()
	if v == math.MaxUint64 {
		return 0
	}
	return time.Duration(v)
}

// Quantile returns the latency at quantile q in [0,1]. Snapshot-consistent
// enough for reporting: concurrent records may shift the answer by a bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < nBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return h.Max()
}

// Median is Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(math.MaxUint64)
}

// Merge adds o's observations into h. Min/Max merge exactly; buckets add.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	if om := o.max.Load(); om > h.max.Load() {
		h.max.Store(om)
	}
	if om := o.min.Load(); om < h.min.Load() {
		h.min.Store(om)
	}
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Median(), h.P99(), h.Max())
}

// ExactPercentiles computes percentiles from a raw sample slice; used by
// tests to validate the histogram's bucketed answers.
func ExactPercentiles(samples []time.Duration, qs ...float64) []time.Duration {
	if len(samples) == 0 {
		return make([]time.Duration, len(qs))
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		rank := int(q * float64(len(s)))
		if rank >= len(s) {
			rank = len(s) - 1
		}
		out[i] = s[rank]
	}
	return out
}
