package stats

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// TrafficCounters aggregates the I/O accounting a single device or engine
// component exposes: bytes and operation counts, split by direction and by
// foreground/background origin.
type TrafficCounters struct {
	ReadBytes    Counter
	WriteBytes   Counter
	ReadOps      Counter
	WriteOps     Counter
	BgReadBytes  Counter
	BgWriteBytes Counter
	BgReadOps    Counter
	BgWriteOps   Counter
}

// Snapshot is an immutable copy of TrafficCounters at one instant.
type Snapshot struct {
	ReadBytes, WriteBytes, ReadOps, WriteOps         uint64
	BgReadBytes, BgWriteBytes, BgReadOps, BgWriteOps uint64
}

// Snapshot copies the current counter values.
func (t *TrafficCounters) Snapshot() Snapshot {
	return Snapshot{
		ReadBytes: t.ReadBytes.Load(), WriteBytes: t.WriteBytes.Load(),
		ReadOps: t.ReadOps.Load(), WriteOps: t.WriteOps.Load(),
		BgReadBytes: t.BgReadBytes.Load(), BgWriteBytes: t.BgWriteBytes.Load(),
		BgReadOps: t.BgReadOps.Load(), BgWriteOps: t.BgWriteOps.Load(),
	}
}

// Sub returns the component-wise difference s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		ReadBytes: s.ReadBytes - o.ReadBytes, WriteBytes: s.WriteBytes - o.WriteBytes,
		ReadOps: s.ReadOps - o.ReadOps, WriteOps: s.WriteOps - o.WriteOps,
		BgReadBytes: s.BgReadBytes - o.BgReadBytes, BgWriteBytes: s.BgWriteBytes - o.BgWriteBytes,
		BgReadOps: s.BgReadOps - o.BgReadOps, BgWriteOps: s.BgWriteOps - o.BgWriteOps,
	}
}

// TotalBytes returns all bytes moved, foreground plus background.
func (s Snapshot) TotalBytes() uint64 {
	return s.ReadBytes + s.WriteBytes
}

// TotalWriteBytes returns all bytes written (foreground counters already
// include background traffic recorded through the same device; the Bg*
// fields are an attribution subset, not an addition).
func (s Snapshot) TotalWriteBytes() uint64 { return s.WriteBytes }

func (s Snapshot) String() string {
	return fmt.Sprintf("read=%s(%d ops) write=%s(%d ops) bgRead=%s bgWrite=%s",
		FormatBytes(s.ReadBytes), s.ReadOps, FormatBytes(s.WriteBytes), s.WriteOps,
		FormatBytes(s.BgReadBytes), FormatBytes(s.BgWriteBytes))
}

// FormatBytes renders n in human units (KiB/MiB/GiB).
func FormatBytes(n uint64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib:
		return fmt.Sprintf("%.2fGiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.2fMiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.2fKiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// BandwidthSample is one interval of observed device throughput.
type BandwidthSample struct {
	At         time.Time
	ReadBps    float64
	WriteBps   float64
	BgReadBps  float64
	BgWriteBps float64
}

// BandwidthSampler periodically snapshots a TrafficCounters and converts
// deltas into bandwidth samples, mimicking iostat over the simulated device.
type BandwidthSampler struct {
	mu      sync.Mutex
	src     *TrafficCounters
	last    Snapshot
	lastAt  time.Time
	samples []BandwidthSample
	stop    chan struct{}
	done    chan struct{}
}

// NewBandwidthSampler begins sampling src every interval until Stop.
func NewBandwidthSampler(src *TrafficCounters, interval time.Duration) *BandwidthSampler {
	s := &BandwidthSampler{
		src:    src,
		last:   src.Snapshot(),
		lastAt: time.Now(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go s.run(interval)
	return s
}

func (s *BandwidthSampler) run(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			s.sampleAt(now)
		}
	}
}

func (s *BandwidthSampler) sampleAt(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.src.Snapshot()
	dt := now.Sub(s.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	d := cur.Sub(s.last)
	s.samples = append(s.samples, BandwidthSample{
		At:         now,
		ReadBps:    float64(d.ReadBytes) / dt,
		WriteBps:   float64(d.WriteBytes) / dt,
		BgReadBps:  float64(d.BgReadBytes) / dt,
		BgWriteBps: float64(d.BgWriteBytes) / dt,
	})
	s.last, s.lastAt = cur, now
}

// Stop halts sampling and returns all collected samples.
func (s *BandwidthSampler) Stop() []BandwidthSample {
	close(s.stop)
	<-s.done
	s.sampleAt(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// MeanBandwidth averages the samples, skipping fully idle intervals so warmup
// and drain phases don't dilute the estimate.
func MeanBandwidth(samples []BandwidthSample) (readBps, writeBps float64) {
	var n int
	for _, s := range samples {
		if s.ReadBps == 0 && s.WriteBps == 0 {
			continue
		}
		readBps += s.ReadBps
		writeBps += s.WriteBps
		n++
	}
	if n > 0 {
		readBps /= float64(n)
		writeBps /= float64(n)
	}
	return readBps, writeBps
}
