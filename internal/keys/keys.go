// Package keys defines the key model shared by every storage engine in this
// repository: user keys, internal keys carrying a sequence number and kind,
// and half-open key ranges.
//
// All engines order user keys bytewise (bytes.Compare). Internal keys order
// first by user key ascending, then by sequence number descending so that
// the newest version of a key sorts first, then by kind descending so that a
// delete at the same sequence shadows a set.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind discriminates the mutation type carried by an internal key.
type Kind uint8

const (
	// KindSet is a plain value write.
	KindSet Kind = 1
	// KindDelete is a tombstone.
	KindDelete Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindSet:
		return "set"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MaxSeq is the largest representable sequence number. Lookups use it as the
// snapshot "read everything" bound.
const MaxSeq = uint64(1)<<56 - 1

// InternalKey is a user key plus the metadata needed to order multiple
// versions of it inside an LSM structure.
type InternalKey struct {
	User []byte
	Seq  uint64
	Kind Kind
}

// MakeSearchKey returns the internal key that sorts before every version of
// user key u visible at snapshot seq. Using Seq = seq and Kind = KindSet is
// the conventional "newest visible first" probe.
func MakeSearchKey(u []byte, seq uint64) InternalKey {
	return InternalKey{User: u, Seq: seq, Kind: KindSet}
}

// Compare orders internal keys: user key ascending, then sequence
// descending, then kind descending. Returns -1, 0, or +1.
func Compare(a, b InternalKey) int {
	if c := bytes.Compare(a.User, b.User); c != 0 {
		return c
	}
	if a.Seq != b.Seq {
		if a.Seq > b.Seq {
			return -1
		}
		return 1
	}
	if a.Kind != b.Kind {
		if a.Kind > b.Kind {
			return -1
		}
		return 1
	}
	return 0
}

// Encode appends the canonical binary form of k to dst and returns the
// extended slice. Layout: user key bytes, then 8 bytes of (seq<<8 | kind)
// little-endian. The trailer keeps user-key prefix ordering intact for
// bytewise comparators that only look at the user portion.
func (k InternalKey) Encode(dst []byte) []byte {
	dst = append(dst, k.User...)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], k.Seq<<8|uint64(k.Kind))
	return append(dst, trailer[:]...)
}

// DecodeInternalKey parses the canonical binary form produced by Encode.
// The returned key aliases buf.
func DecodeInternalKey(buf []byte) (InternalKey, error) {
	if len(buf) < 8 {
		return InternalKey{}, fmt.Errorf("keys: internal key too short: %d bytes", len(buf))
	}
	trailer := binary.LittleEndian.Uint64(buf[len(buf)-8:])
	return InternalKey{
		User: buf[:len(buf)-8],
		Seq:  trailer >> 8,
		Kind: Kind(trailer & 0xff),
	}, nil
}

func (k InternalKey) String() string {
	return fmt.Sprintf("%q#%d,%s", k.User, k.Seq, k.Kind)
}

// Range is a closed-open interval [Lo, Hi) of user keys. A nil Hi means
// "unbounded above"; a nil Lo means "unbounded below". An empty (zero)
// Range covers everything.
type Range struct {
	Lo []byte // inclusive; nil = -inf
	Hi []byte // exclusive; nil = +inf
}

// Contains reports whether user key u falls inside r.
func (r Range) Contains(u []byte) bool {
	if r.Lo != nil && bytes.Compare(u, r.Lo) < 0 {
		return false
	}
	if r.Hi != nil && bytes.Compare(u, r.Hi) >= 0 {
		return false
	}
	return true
}

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool {
	if r.Hi != nil && o.Lo != nil && bytes.Compare(r.Hi, o.Lo) <= 0 {
		return false
	}
	if o.Hi != nil && r.Lo != nil && bytes.Compare(o.Hi, r.Lo) <= 0 {
		return false
	}
	return true
}

// Union returns the smallest range covering both r and o.
func (r Range) Union(o Range) Range {
	out := Range{Lo: r.Lo, Hi: r.Hi}
	if r.Lo != nil && (o.Lo == nil || bytes.Compare(o.Lo, r.Lo) < 0) {
		out.Lo = o.Lo
	}
	if r.Hi != nil && (o.Hi == nil || bytes.Compare(o.Hi, r.Hi) > 0) {
		out.Hi = o.Hi
	}
	return out
}

// Empty reports whether the range can contain no key (Lo >= Hi with both
// bounds set). The zero Range is NOT empty — it is unbounded.
func (r Range) Empty() bool {
	return r.Lo != nil && r.Hi != nil && bytes.Compare(r.Lo, r.Hi) >= 0
}

func (r Range) String() string {
	lo, hi := "-inf", "+inf"
	if r.Lo != nil {
		lo = fmt.Sprintf("%q", r.Lo)
	}
	if r.Hi != nil {
		hi = fmt.Sprintf("%q", r.Hi)
	}
	return fmt.Sprintf("[%s,%s)", lo, hi)
}

// Clone deep-copies the range bounds.
func (r Range) Clone() Range {
	return Range{Lo: bytes.Clone(r.Lo), Hi: bytes.Clone(r.Hi)}
}

// RangeFromKeys builds the tight closed-open range covering the given keys:
// [min, successor(max)). Returns the zero Range when keys is empty.
func RangeFromKeys(ks [][]byte) Range {
	if len(ks) == 0 {
		return Range{}
	}
	lo, hi := ks[0], ks[0]
	for _, k := range ks[1:] {
		if bytes.Compare(k, lo) < 0 {
			lo = k
		}
		if bytes.Compare(k, hi) > 0 {
			hi = k
		}
	}
	return Range{Lo: bytes.Clone(lo), Hi: Successor(hi)}
}

// Successor returns the smallest key strictly greater than u, i.e. u with a
// zero byte appended. The result never aliases u.
func Successor(u []byte) []byte {
	out := make([]byte, len(u)+1)
	copy(out, u)
	return out
}
