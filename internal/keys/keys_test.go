package keys

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b InternalKey
		want int
	}{
		{InternalKey{User: []byte("a"), Seq: 1, Kind: KindSet}, InternalKey{User: []byte("b"), Seq: 1, Kind: KindSet}, -1},
		{InternalKey{User: []byte("b"), Seq: 1, Kind: KindSet}, InternalKey{User: []byte("a"), Seq: 9, Kind: KindSet}, 1},
		// Same user key: higher seq sorts first.
		{InternalKey{User: []byte("k"), Seq: 9, Kind: KindSet}, InternalKey{User: []byte("k"), Seq: 1, Kind: KindSet}, -1},
		// Same user key and seq: delete sorts before set.
		{InternalKey{User: []byte("k"), Seq: 5, Kind: KindDelete}, InternalKey{User: []byte("k"), Seq: 5, Kind: KindSet}, -1},
		{InternalKey{User: []byte("k"), Seq: 5, Kind: KindSet}, InternalKey{User: []byte("k"), Seq: 5, Kind: KindSet}, 0},
	}
	for i, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("case %d: Compare(%v,%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("case %d reversed: got %d want %d", i, got, -c.want)
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(user []byte, seq uint64, kindSet bool) bool {
		seq &= MaxSeq
		kind := KindSet
		if !kindSet {
			kind = KindDelete
		}
		k := InternalKey{User: user, Seq: seq, Kind: kind}
		enc := k.Encode(nil)
		dec, err := DecodeInternalKey(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec.User, user) && dec.Seq == seq && dec.Kind == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTooShort(t *testing.T) {
	if _, err := DecodeInternalKey([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestEncodePreservesOrdering(t *testing.T) {
	// Encoded keys compared bytewise on the user-key prefix must respect
	// user-key ordering.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := make([]byte, 1+rng.Intn(10))
		b := make([]byte, 1+rng.Intn(10))
		rng.Read(a)
		rng.Read(b)
		ka := InternalKey{User: a, Seq: uint64(rng.Intn(100)), Kind: KindSet}
		kb := InternalKey{User: b, Seq: uint64(rng.Intn(100)), Kind: KindSet}
		if c := bytes.Compare(a, b); c != 0 {
			if got := Compare(ka, kb); got != c {
				t.Fatalf("user ordering broken: %q vs %q", a, b)
			}
		}
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Lo: []byte("b"), Hi: []byte("d")}
	for _, tc := range []struct {
		k    string
		want bool
	}{
		{"a", false}, {"b", true}, {"c", true}, {"cz", true}, {"d", false}, {"e", false},
	} {
		if got := r.Contains([]byte(tc.k)); got != tc.want {
			t.Errorf("Contains(%q) = %v, want %v", tc.k, got, tc.want)
		}
	}
	unbounded := Range{}
	if !unbounded.Contains([]byte("anything")) {
		t.Error("zero Range must contain everything")
	}
}

func TestRangeOverlaps(t *testing.T) {
	mk := func(lo, hi string) Range {
		r := Range{}
		if lo != "" {
			r.Lo = []byte(lo)
		}
		if hi != "" {
			r.Hi = []byte(hi)
		}
		return r
	}
	cases := []struct {
		a, b Range
		want bool
	}{
		{mk("a", "c"), mk("b", "d"), true},
		{mk("a", "b"), mk("b", "c"), false}, // touching, half-open
		{mk("a", "b"), mk("c", "d"), false},
		{mk("", ""), mk("x", "y"), true},  // unbounded overlaps all
		{mk("a", ""), mk("", "b"), true},  // half-bounded
		{mk("c", ""), mk("", "b"), false}, // disjoint half-bounded
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: %v.Overlaps(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("case %d sym: got %v want %v", i, got, c.want)
		}
	}
}

func TestRangeUnion(t *testing.T) {
	a := Range{Lo: []byte("b"), Hi: []byte("d")}
	b := Range{Lo: []byte("c"), Hi: []byte("f")}
	u := a.Union(b)
	if string(u.Lo) != "b" || string(u.Hi) != "f" {
		t.Fatalf("union = %v", u)
	}
	// Union with unbounded side.
	c := Range{Lo: nil, Hi: []byte("c")}
	u = a.Union(c)
	if u.Lo != nil || string(u.Hi) != "d" {
		t.Fatalf("union with half-bounded = %v", u)
	}
}

func TestRangeEmpty(t *testing.T) {
	if (Range{}).Empty() {
		t.Error("zero range is unbounded, not empty")
	}
	if !(Range{Lo: []byte("b"), Hi: []byte("b")}).Empty() {
		t.Error("lo==hi should be empty")
	}
	if !(Range{Lo: []byte("c"), Hi: []byte("b")}).Empty() {
		t.Error("lo>hi should be empty")
	}
}

func TestRangeFromKeys(t *testing.T) {
	ks := [][]byte{[]byte("m"), []byte("a"), []byte("z"), []byte("q")}
	r := RangeFromKeys(ks)
	if string(r.Lo) != "a" {
		t.Fatalf("lo = %q", r.Lo)
	}
	if !r.Contains([]byte("z")) {
		t.Fatal("range must contain its max key")
	}
	if r.Contains([]byte("z\x00\x00")) {
		t.Fatal("range should stop just past max")
	}
	if got := RangeFromKeys(nil); got.Lo != nil || got.Hi != nil {
		t.Fatalf("empty keys should give zero range, got %v", got)
	}
}

func TestSuccessor(t *testing.T) {
	s := Successor([]byte("ab"))
	if !bytes.Equal(s, []byte("ab\x00")) {
		t.Fatalf("successor = %q", s)
	}
	if bytes.Compare(s, []byte("ab")) <= 0 {
		t.Fatal("successor must be strictly greater")
	}
	// Nothing sorts between k and Successor(k).
	if bytes.Compare([]byte("ab"), s) >= 0 {
		t.Fatal("ordering broken")
	}
}

func TestRangeClone(t *testing.T) {
	r := Range{Lo: []byte("a"), Hi: []byte("b")}
	c := r.Clone()
	c.Lo[0] = 'z'
	if r.Lo[0] != 'a' {
		t.Fatal("clone aliases original")
	}
}

func TestMakeSearchKeySortsFirst(t *testing.T) {
	// The search key for (u, seq) must sort <= any version of u with
	// seq' <= seq, and > any version with seq' > seq.
	u := []byte("k")
	probe := MakeSearchKey(u, 50)
	older := InternalKey{User: u, Seq: 49, Kind: KindSet}
	newer := InternalKey{User: u, Seq: 51, Kind: KindSet}
	if Compare(probe, older) > 0 {
		t.Fatal("probe must sort before older versions")
	}
	if Compare(probe, newer) < 0 {
		t.Fatal("probe must sort after newer versions")
	}
}
