package crashtest

import (
	"math/rand"
	"sort"
	"testing"

	"hyperdb/internal/device"
)

// TestRecoverReadFaultFailsClosed arms a read fault during recovery itself.
// Recovery must surface the device error rather than misclassifying an
// intact table as a crash artifact — deleting a file on a transient read
// fault would turn the fault into permanent data loss. No file present
// before the failed recovery may be missing afterwards, and once the fault
// clears, recovery must succeed over the same devices.
func TestRecoverReadFaultFailsClosed(t *testing.T) {
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			nvme := device.New(device.UnthrottledProfile("nvme", f.NVMeCap))
			sata := device.New(device.UnthrottledProfile("sata", f.SATACap))
			cfg := Config{NVMe: nvme, SATA: sata}
			eng, err := f.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			for _, o := range genTrace(rng, 32, 150) {
				switch o.kind {
				case opPut:
					err = eng.Put([]byte(o.key), []byte(o.value))
				case opDelete:
					err = eng.Delete([]byte(o.key))
				case opStep:
					err = eng.Step()
				default:
					_, gerr := eng.Get([]byte(o.key))
					if gerr != nil && gerr != ErrNotFound {
						err = gerr
					}
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			nvme.PowerCut()
			sata.PowerCut()
			before := append(nvme.List(), sata.List()...)
			sort.Strings(before)

			nvme.InjectFaults(device.FaultPlan{Seed: 9, FailReadAfter: 1})
			sata.InjectFaults(device.FaultPlan{Seed: 9, FailReadAfter: 1})
			if _, err := f.Recover(cfg); err == nil {
				t.Fatal("recovery with an armed read fault succeeded silently")
			}
			nvme.ClearFaults()
			sata.ClearFaults()

			after := make(map[string]bool)
			for _, n := range append(nvme.List(), sata.List()...) {
				after[n] = true
			}
			for _, n := range before {
				if !after[n] {
					t.Fatalf("failed recovery deleted %q", n)
				}
			}

			reng, err := f.Recover(cfg)
			if err != nil {
				t.Fatalf("recover after clearing fault: %v", err)
			}
			defer reng.Close()
			if _, err := reng.Scan([]byte(""), 64); err != nil {
				t.Fatalf("scan after recovery: %v", err)
			}
		})
	}
}
