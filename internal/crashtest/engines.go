package crashtest

import (
	"errors"

	"hyperdb/internal/baseline/prismish"
	"hyperdb/internal/baseline/rocksish"
	"hyperdb/internal/compress"
	"hyperdb/internal/core"
	"hyperdb/internal/device"
)

// crashCompress is the codec policy every engine runs its crash cycles
// under: compressed capacity-tier blocks from L1 down, so torn writes land
// inside compressed payloads and recovery must fail them closed (drop the
// torn table, keep serving) rather than decode garbage.
var crashCompress = compress.Policy{Codec: compress.LZ, MinLevel: 1}

// Config carries the two simulated devices a cycle runs against. Capacities
// are deliberately tiny so a short trace forces flushes, migrations and
// compactions — the windows the fault plan cuts into.
type Config struct {
	NVMe *device.Device
	SATA *device.Device
}

// ErrNotFound is the harness's uniform missing-key error; adapters map each
// engine's sentinel onto it.
var ErrNotFound = errors.New("crashtest: not found")

// ErrNotCounter is the harness's uniform counter-type error: an Incr landed
// on a value that is not a canonical 8-byte counter.
var ErrNotCounter = errors.New("crashtest: not a counter")

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Engine is the uniform surface the harness drives. Step runs one bounded
// round of background work (flush, migration, compaction) so crashes land
// inside those code paths deterministically.
type Engine interface {
	Put(key, value []byte) error
	Delete(key []byte) error
	Get(key []byte) ([]byte, error)
	// Incr adds delta to the counter at key (missing = base 0) and returns
	// the post-merge value. HyperDB routes this through its merge operator;
	// baselines emulate it with a read-modify-write.
	Incr(key []byte, delta int64) (int64, error)
	Scan(start []byte, limit int) ([]KV, error)
	Step() error
	Close() error
}

// rmwIncr emulates a merge for engines without one: read the counter, add
// saturating, write the new encoding back. Not atomic, which is fine — the
// harness drives each engine single-threaded.
func rmwIncr(get func([]byte) ([]byte, error), put func([]byte, []byte) error, key []byte, delta int64) (int64, error) {
	var base int64
	switch cur, err := get(key); {
	case err == nil:
		if base, err = core.DecodeCounter(cur); err != nil {
			return 0, ErrNotCounter
		}
	case errors.Is(err, ErrNotFound):
	default:
		return 0, err
	}
	v := core.SatAdd(base, delta)
	if err := put(key, core.EncodeCounter(v)); err != nil {
		return 0, err
	}
	return v, nil
}

// Factory builds an engine fresh (Open) or from surviving device state
// (Recover), plus the device capacities it is sized for.
type Factory struct {
	Name    string
	NVMeCap int64
	SATACap int64
	Open    func(Config) (Engine, error)
	Recover func(Config) (Engine, error)
}

// Factories returns the three engines under crash test: HyperDB and the two
// baselines. All run with background workers disabled — the trace's Step ops
// drive flush/migration/compaction, which keeps every cycle deterministic
// for a given seed.
func Factories() []Factory {
	return []Factory{
		{
			Name:    "hyperdb",
			NVMeCap: 64 << 10,
			SATACap: 1 << 20,
			Open: func(c Config) (Engine, error) {
				db, err := core.Open(hyperOpts(c))
				return &hyperEngine{db}, err
			},
			Recover: func(c Config) (Engine, error) {
				db, err := core.Recover(hyperOpts(c))
				return &hyperEngine{db}, err
			},
		},
		{
			Name:    "rocksish",
			NVMeCap: 64 << 10,
			SATACap: 2 << 20,
			Open: func(c Config) (Engine, error) {
				db, err := rocksish.Open(rocksOpts(c))
				return &rocksEngine{db}, err
			},
			Recover: func(c Config) (Engine, error) {
				db, err := rocksish.Recover(rocksOpts(c))
				return &rocksEngine{db}, err
			},
		},
		{
			Name:    "prismish",
			NVMeCap: 64 << 10,
			SATACap: 1 << 20,
			Open: func(c Config) (Engine, error) {
				db, err := prismish.Open(prismOpts(c))
				return &prismEngine{db}, err
			},
			Recover: func(c Config) (Engine, error) {
				db, err := prismish.Recover(prismOpts(c))
				return &prismEngine{db}, err
			},
		},
	}
}

func hyperOpts(c Config) core.Options {
	return core.Options{
		NVMe:              c.NVMe,
		SATA:              c.SATA,
		Partitions:        2,
		CacheBytes:        64 << 10,
		MigrationBatch:    8 << 10,
		MaxLevels:         3,
		MirrorIndexToNVMe: true,
		DisableBackground: true,
		CompressPolicy:    crashCompress,
	}
}

type hyperEngine struct{ db *core.DB }

func (e *hyperEngine) Put(k, v []byte) error { return e.db.Put(k, v) }
func (e *hyperEngine) Delete(k []byte) error { return e.db.Delete(k) }
func (e *hyperEngine) Get(k []byte) ([]byte, error) {
	v, err := e.db.Get(k)
	if errors.Is(err, core.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (e *hyperEngine) Incr(k []byte, d int64) (int64, error) {
	v, err := e.db.Incr(k, d)
	if errors.Is(err, core.ErrNotCounter) {
		return 0, ErrNotCounter
	}
	return v, err
}
func (e *hyperEngine) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := e.db.Scan(start, limit)
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, err
}
func (e *hyperEngine) Step() error {
	for pid := 0; pid < e.db.Partitions(); pid++ {
		if err := e.db.MigrationStep(pid); err != nil {
			return err
		}
		if _, err := e.db.CompactionStep(pid); err != nil {
			return err
		}
	}
	return nil
}
func (e *hyperEngine) Close() error { return e.db.Close() }

func rocksOpts(c Config) rocksish.Options {
	return rocksish.Options{
		NVMe:              c.NVMe,
		SATA:              c.SATA,
		MemtableBytes:     2 << 10,
		CacheBytes:        64 << 10,
		FileSize:          4 << 10,
		L1Target:          8 << 10,
		Ratio:             4,
		MaxLevels:         3,
		DisableBackground: true,
		Compress:          crashCompress,
	}
}

type rocksEngine struct{ db *rocksish.DB }

func (e *rocksEngine) Put(k, v []byte) error { return e.db.Put(k, v) }
func (e *rocksEngine) Delete(k []byte) error { return e.db.Delete(k) }
func (e *rocksEngine) Get(k []byte) ([]byte, error) {
	v, err := e.db.Get(k)
	if errors.Is(err, rocksish.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (e *rocksEngine) Incr(k []byte, d int64) (int64, error) { return rmwIncr(e.Get, e.Put, k, d) }
func (e *rocksEngine) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := e.db.Scan(start, limit)
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, err
}
func (e *rocksEngine) Step() error {
	if err := e.db.FlushOnce(); err != nil {
		return err
	}
	_, err := e.db.LSM().CompactOnce(device.Bg)
	return err
}
func (e *rocksEngine) Close() error { return e.db.Close() }

func prismOpts(c Config) prismish.Options {
	return prismish.Options{
		NVMe:              c.NVMe,
		SATA:              c.SATA,
		CacheBytes:        64 << 10,
		HighWatermark:     0.6,
		LowWatermark:      0.4,
		BatchObjects:      24,
		FileSize:          4 << 10,
		L1Target:          8 << 10,
		Ratio:             4,
		MaxLevels:         3,
		DisableBackground: true,
		Compress:          crashCompress,
	}
}

type prismEngine struct{ db *prismish.DB }

func (e *prismEngine) Put(k, v []byte) error { return e.db.Put(k, v) }
func (e *prismEngine) Delete(k []byte) error { return e.db.Delete(k) }
func (e *prismEngine) Get(k []byte) ([]byte, error) {
	v, err := e.db.Get(k)
	if errors.Is(err, prismish.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}
func (e *prismEngine) Incr(k []byte, d int64) (int64, error) { return rmwIncr(e.Get, e.Put, k, d) }
func (e *prismEngine) Scan(start []byte, limit int) ([]KV, error) {
	kvs, err := e.db.Scan(start, limit)
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, err
}
func (e *prismEngine) Step() error {
	if _, err := e.db.MigrateOnce(); err != nil {
		return err
	}
	_, err := e.db.LSM().CompactOnce(device.Bg)
	return err
}
func (e *prismEngine) Close() error { return e.db.Close() }
