package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
)

// failoverCycle is the replication analogue of runCycle: a primary with an
// armed fault plan ships every committed batch to a live follower in
// synchronous-ack mode, the seeded workload runs until an injected fault
// kills the primary, and the follower is promoted in its place. Because an
// acknowledged write waited for the follower's ack and a failed batch is
// aborted before it ships, the promoted follower must hold EXACTLY the
// acknowledged state — no uncertainty window at all, which is a strictly
// stronger check than single-node recovery allows.
func failoverCycle(seed int64, trace []op, failNVMe, failSATA int64, torn bool) (violation string, crashed bool) {
	pnvme := device.New(device.UnthrottledProfile("p-nvme", 64<<10))
	psata := device.New(device.UnthrottledProfile("p-sata", 1<<20))
	fnvme := device.New(device.UnthrottledProfile("f-nvme", 64<<10))
	fsata := device.New(device.UnthrottledProfile("f-sata", 1<<20))

	rlog := repl.NewLog(repl.LogConfig{SyncAck: true})
	mkOpts := func(nv, sa *device.Device) core.Options {
		return core.Options{
			NVMe:              nv,
			SATA:              sa,
			Partitions:        2,
			CacheBytes:        64 << 10,
			MigrationBatch:    8 << 10,
			MaxLevels:         3,
			MirrorIndexToNVMe: true,
			DisableBackground: true,
		}
	}
	popts := mkOpts(pnvme, psata)
	popts.Tee = rlog
	pdb, err := core.Open(popts)
	if err != nil {
		return fmt.Sprintf("open primary: %v", err), false
	}
	fopts := mkOpts(fnvme, fsata)
	fopts.Follower = true
	fdb, err := core.Open(fopts)
	if err != nil {
		return fmt.Sprintf("open follower: %v", err), false
	}
	defer fdb.Close()

	pc, fc := net.Pipe()
	stop := make(chan struct{})
	fdone := make(chan error, 1)
	go (&repl.Primary{DB: pdb, Log: rlog}).Serve(pc)
	go func() { fdone <- (&repl.Follower{DB: fdb}).Run(fc, stop) }()
	deadline := time.Now().Add(10 * time.Second)
	for len(rlog.Status().Peers) == 0 {
		if time.Now().After(deadline) {
			return "follower never registered", false
		}
		time.Sleep(time.Millisecond)
	}

	// Only the primary's devices are armed: the scenario is a primary
	// dying mid-load, not a correlated double failure.
	pnvme.InjectFaults(device.FaultPlan{Seed: seed, FailWriteAfter: failNVMe, TornWrites: torn})
	psata.InjectFaults(device.FaultPlan{Seed: seed + 1, FailWriteAfter: failSATA, TornWrites: torn})

	m := model{}
	step := func() error {
		for pid := 0; pid < pdb.Partitions(); pid++ {
			if err := pdb.MigrationStep(pid); err != nil {
				return err
			}
			if _, err := pdb.CompactionStep(pid); err != nil {
				return err
			}
		}
		return nil
	}
	for i, o := range trace {
		switch o.kind {
		case opPut:
			if err := pdb.Put([]byte(o.key), []byte(o.value)); err != nil {
				// Unacked and aborted: the batch never shipped, so the
				// follower keeps the previous acknowledged state — the model
				// is deliberately NOT updated.
				crashed = true
			} else {
				s := m.at(o.key)
				s.present, s.cur = true, o.value
			}
		case opDelete:
			if err := pdb.Delete([]byte(o.key)); err != nil {
				crashed = true
			} else {
				m.at(o.key).present = false
			}
		case opGet:
			v, err := pdb.Get([]byte(o.key))
			s := m.at(o.key)
			switch {
			case err == nil:
				if !s.present || s.cur != string(v) {
					return fmt.Sprintf("live get op %d: %s returned %dB, model present=%v", i, o.key, len(v), s.present), crashed
				}
			case errors.Is(err, core.ErrNotFound):
				if s.present {
					return fmt.Sprintf("live get op %d: %s missing, model has %dB", i, o.key, len(s.cur)), crashed
				}
			default:
				crashed = true
			}
		case opIncr:
			s := m.at(o.key)
			base, ok := s.counterBase()
			if !ok {
				return fmt.Sprintf("trace bug: incr target %s holds a non-counter model value", o.key), crashed
			}
			want := core.SatAdd(base, o.delta)
			v, err := pdb.Incr([]byte(o.key), o.delta)
			if err != nil {
				// Unacked and aborted before shipping: like a failed put, the
				// follower keeps the previous acknowledged counter exactly.
				crashed = true
			} else {
				if v != want {
					return fmt.Sprintf("live incr op %d: %s = %d, model %d", i, o.key, v, want), crashed
				}
				s.present, s.cur = true, string(core.EncodeCounter(want))
			}
		case opStep:
			if err := step(); err != nil {
				crashed = true
			}
		}
		if crashed {
			break
		}
	}

	// The primary is dead: power-cut its devices and abandon the instance
	// (no shutdown, no recovery — failover replaces it). Stop the applier
	// and promote the follower.
	pnvme.PowerCut()
	psata.PowerCut()
	close(stop)
	if err := <-fdone; err != nil {
		return fmt.Sprintf("follower applier: %v", err), crashed
	}
	fdb.Promote()
	if fdb.IsFollower() {
		return "promote did not take effect", crashed
	}

	// Point reads: exact agreement with the acknowledged model.
	for k, s := range m {
		v, err := fdb.Get([]byte(k))
		if err != nil && !errors.Is(err, core.ErrNotFound) {
			return fmt.Sprintf("promoted get %s: %v", k, err), crashed
		}
		present := err == nil
		if present != s.present || (present && string(v) != s.cur) {
			return fmt.Sprintf("promoted get %s: present=%v val=%q, acked present=%v val=%q",
				k, present, trunc(string(v)), s.present, trunc(s.cur)), crashed
		}
	}

	// Scan: strict order, exact model agreement, no resurrected keys.
	kvs, err := fdb.Scan(nil, len(m)+16)
	if err != nil {
		return fmt.Sprintf("promoted scan: %v", err), crashed
	}
	seen := make(map[string]string, len(kvs))
	prev := ""
	for _, kv := range kvs {
		k := string(kv.Key)
		if prev != "" && k <= prev {
			return fmt.Sprintf("promoted scan order violation: %q after %q", k, prev), crashed
		}
		prev = k
		seen[k] = string(kv.Value)
	}
	for k, s := range m {
		v, ok := seen[k]
		if ok != s.present || (ok && v != s.cur) {
			return fmt.Sprintf("promoted scan key %s: present=%v val=%q, acked present=%v val=%q",
				k, ok, trunc(v), s.present, trunc(s.cur)), crashed
		}
	}
	for k := range seen {
		if _, known := m[k]; !known {
			return fmt.Sprintf("promoted scan resurrected never-acked key %q", k), crashed
		}
	}

	// Liveness: the promoted node serves writes, background work, and
	// exact reads on its own healthy devices.
	for k := range m {
		want := "post-failover-" + k
		if err := fdb.Put([]byte(k), []byte(want)); err != nil {
			return fmt.Sprintf("post-failover put %s: %v", k, err), crashed
		}
		v, err := fdb.Get([]byte(k))
		if err != nil || string(v) != want {
			return fmt.Sprintf("post-failover get %s = %q (%v), want %q", k, trunc(string(v)), err, want), crashed
		}
	}
	for pid := 0; pid < fdb.Partitions(); pid++ {
		if err := fdb.MigrationStep(pid); err != nil {
			return fmt.Sprintf("post-failover migration step: %v", err), crashed
		}
		if _, err := fdb.CompactionStep(pid); err != nil {
			return fmt.Sprintf("post-failover compaction step: %v", err), crashed
		}
	}
	return "", crashed
}

// TestFailoverPromotedFollowerHoldsAckedState kills a sync-ack primary
// mid-load under a seeded fault plan and promotes its follower: every
// acknowledged write must read back exactly and nothing unacknowledged may
// resurrect. Reproduce a failure from the printed seed.
func TestFailoverPromotedFollowerHoldsAckedState(t *testing.T) {
	const cycles = 24
	midCrash := 0
	for i := 0; i < cycles; i++ {
		seed := int64(5100 + 37*i)
		rng := rand.New(rand.NewSource(seed))
		trace := genTrace(rng, 48, 160)
		failNVMe := 1 + rng.Int63n(120)
		failSATA := 1 + rng.Int63n(60)
		v, crashed := failoverCycle(seed, trace, failNVMe, failSATA, i%2 == 0)
		if v != "" {
			t.Fatalf("cycle %d seed=%d failNVMe=%d failSATA=%d: %s", i, seed, failNVMe, failSATA, v)
		}
		if crashed {
			midCrash++
		}
	}
	if midCrash < cycles/4 {
		t.Fatalf("only %d/%d cycles crashed mid-load; fault plans are not firing", midCrash, cycles)
	}
	t.Logf("%d/%d cycles crashed mid-load", midCrash, cycles)
}

// TestFailoverMergeHeavyExactCounters kills a sync-ack primary mid
// merge-heavy load and promotes its follower: the promoted node's counters
// must equal the acked model EXACTLY. This is the end-to-end check that
// unresolved deltas ship through the replication log and resolve to the
// same values on the follower — a folded or reordered delta would surface
// here as a counter drift.
func TestFailoverMergeHeavyExactCounters(t *testing.T) {
	const cycles = 16
	midCrash := 0
	for i := 0; i < cycles; i++ {
		seed := int64(6300 + 53*i)
		rng := rand.New(rand.NewSource(seed))
		trace := genMergeTrace(rng, 24, 8, 160)
		failNVMe := 1 + rng.Int63n(120)
		failSATA := 1 + rng.Int63n(60)
		v, crashed := failoverCycle(seed, trace, failNVMe, failSATA, i%2 == 0)
		if v != "" {
			t.Fatalf("cycle %d seed=%d failNVMe=%d failSATA=%d: %s", i, seed, failNVMe, failSATA, v)
		}
		if crashed {
			midCrash++
		}
	}
	if midCrash < cycles/4 {
		t.Fatalf("only %d/%d cycles crashed mid-load; fault plans are not firing", midCrash, cycles)
	}
	t.Logf("%d/%d cycles crashed mid-load", midCrash, cycles)
}
