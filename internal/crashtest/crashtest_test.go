package crashtest

import (
	"math/rand"
	"testing"
)

// TestCrashRecovery runs seeded crash-recover-verify cycles against each
// engine. Half the cycles use torn writes (a failed write persists a
// prefix), half fail cleanly. Reproduce a failure by running the printed
// seed; the reported trace is the ddmin-shrunk failing workload.
func TestCrashRecovery(t *testing.T) {
	const cycles = 60
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			midCrash := 0
			for i := 0; i < cycles; i++ {
				seed := int64(7000 + 31*i)
				rng := rand.New(rand.NewSource(seed))
				c := cycleConfig{
					factory:  f,
					seed:     seed,
					trace:    genTrace(rng, 48, 160),
					failNVMe: 1 + rng.Int63n(120),
					failSATA: 1 + rng.Int63n(60),
					torn:     i%2 == 0,
				}
				v, crashed := runCycle(c)
				if v != "" {
					shrunk := shrink(c, 120)
					t.Fatalf("cycle %d seed=%d failNVMe=%d failSATA=%d torn=%v: %s\nshrunk trace (%d ops): %s",
						i, seed, c.failNVMe, c.failSATA, c.torn, v, len(shrunk), formatTrace(shrunk))
				}
				if crashed {
					midCrash++
				}
			}
			// The fault schedules must actually cut operations mid-trace —
			// otherwise the suite degrades to idle power cuts only.
			if midCrash < cycles/4 {
				t.Fatalf("only %d/%d cycles crashed mid-operation; fault plans are not firing", midCrash, cycles)
			}
			t.Logf("%d/%d cycles crashed mid-operation", midCrash, cycles)
		})
	}
}

// TestCrashRecoveryMergeHeavy runs seeded crash cycles under a merge-heavy
// workload: half the ops are counter increments skewed onto one hot key, so
// crashes cut into the merge resolve/fold path and its WAL records. After
// recovery every acknowledged counter must decode to the exact acked sum
// (the uncertain window covers only the single in-flight increment).
func TestCrashRecoveryMergeHeavy(t *testing.T) {
	const cycles = 40
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			midCrash := 0
			for i := 0; i < cycles; i++ {
				seed := int64(8200 + 41*i)
				rng := rand.New(rand.NewSource(seed))
				c := cycleConfig{
					factory:  f,
					seed:     seed,
					trace:    genMergeTrace(rng, 24, 8, 160),
					failNVMe: 1 + rng.Int63n(120),
					failSATA: 1 + rng.Int63n(60),
					torn:     i%2 == 0,
				}
				v, crashed := runCycle(c)
				if v != "" {
					shrunk := shrink(c, 120)
					t.Fatalf("cycle %d seed=%d failNVMe=%d failSATA=%d torn=%v: %s\nshrunk trace (%d ops): %s",
						i, seed, c.failNVMe, c.failSATA, c.torn, v, len(shrunk), formatTrace(shrunk))
				}
				if crashed {
					midCrash++
				}
			}
			if midCrash < cycles/4 {
				t.Fatalf("only %d/%d cycles crashed mid-operation; fault plans are not firing", midCrash, cycles)
			}
			t.Logf("%d/%d cycles crashed mid-operation", midCrash, cycles)
		})
	}
}

// TestIdleCrash power-cuts without any injected fault: everything
// acknowledged before an idle crash must survive.
func TestIdleCrash(t *testing.T) {
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for i := 0; i < 5; i++ {
				seed := int64(91 + i)
				rng := rand.New(rand.NewSource(seed))
				c := cycleConfig{
					factory: f,
					seed:    seed,
					trace:   genTrace(rng, 32, 200),
					// No FailWriteAfter: the trace completes, then power cuts.
				}
				if v, _ := runCycle(c); v != "" {
					t.Fatalf("seed=%d: %s", seed, v)
				}
			}
		})
	}
}
