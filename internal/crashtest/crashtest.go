// Package crashtest is a deterministic crash-recovery harness. A cycle runs
// a seeded random workload against an engine on simulated devices armed with
// a fault plan; the first operation error is treated as the crash point, the
// devices suffer a power cut (unsynced appended tails vanish, torn writes
// may have persisted a prefix), and the engine is recovered and checked
// against an in-memory model:
//
//   - Durability: every acknowledged write not overwritten later must read
//     back exactly (value, or absence after an acknowledged delete).
//   - Bounded uncertainty: only the single in-flight operation's key may
//     differ, and then only to a previously acknowledged value, the
//     in-flight value, or absence — never an invented value.
//   - No resurrection: keys never written must not appear; scans must be
//     strictly ordered and agree with the model.
//   - Liveness: after recovery the engine accepts writes, runs background
//     steps, and serves exact reads.
//
// Failures reproduce from the printed seed; the failing trace is shrunk
// (ddmin) before reporting.
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
)

type opKind uint8

const (
	opPut opKind = iota
	opDelete
	opGet
	opStep
	opIncr
)

// op is one trace element. Values and deltas are materialised at generation
// time so a shrunk trace replays byte-identically.
type op struct {
	kind  opKind
	key   string
	value string
	delta int64 // opIncr
}

func (o op) String() string {
	switch o.kind {
	case opPut:
		return fmt.Sprintf("put(%s,%dB)", o.key, len(o.value))
	case opDelete:
		return fmt.Sprintf("del(%s)", o.key)
	case opGet:
		return fmt.Sprintf("get(%s)", o.key)
	case opIncr:
		return fmt.Sprintf("incr(%s,%+d)", o.key, o.delta)
	default:
		return "step"
	}
}

func formatTrace(t []op) string {
	parts := make([]string, len(t))
	for i, o := range t {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// genTrace builds a workload of puts, deletes, reads and background steps
// over a small hot key space.
func genTrace(rng *rand.Rand, nKeys, nOps int) []op {
	ops := make([]op, 0, nOps)
	for i := 0; i < nOps; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(nKeys))
		switch r := rng.Float64(); {
		case r < 0.55:
			b := make([]byte, 8+rng.Intn(160))
			for j := range b {
				b[j] = 'a' + byte(rng.Intn(26))
			}
			ops = append(ops, op{kind: opPut, key: k, value: string(b)})
		case r < 0.70:
			ops = append(ops, op{kind: opDelete, key: k})
		case r < 0.90:
			ops = append(ops, op{kind: opGet, key: k})
		default:
			ops = append(ops, op{kind: opStep})
		}
	}
	return ops
}

// genMergeTrace builds a merge-heavy workload: counter increments dominate
// (hot-skewed so same-key folds happen in every drain window), with enough
// puts, deletes, reads and background steps interleaved that crashes land
// inside flush/migration/compaction. Counters live on their own "c" keyspace
// so a merge never collides with an opaque put value; deletes and reads hit
// both keyspaces, covering the tombstone-means-base-0 path.
func genMergeTrace(rng *rand.Rand, nKeys, nCtrs, nOps int) []op {
	pick := func() string {
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("c%03d", rng.Intn(nCtrs))
		}
		return fmt.Sprintf("k%03d", rng.Intn(nKeys))
	}
	ops := make([]op, 0, nOps)
	for i := 0; i < nOps; i++ {
		switch r := rng.Float64(); {
		case r < 0.50:
			c := fmt.Sprintf("c%03d", rng.Intn(nCtrs))
			if rng.Intn(2) == 0 {
				c = "c000" // hot counter: half the increments collide
			}
			ops = append(ops, op{kind: opIncr, key: c, delta: int64(rng.Intn(9) - 2)})
		case r < 0.64:
			b := make([]byte, 8+rng.Intn(160))
			for j := range b {
				b[j] = 'a' + byte(rng.Intn(26))
			}
			ops = append(ops, op{kind: opPut, key: fmt.Sprintf("k%03d", rng.Intn(nKeys)), value: string(b)})
		case r < 0.72:
			ops = append(ops, op{kind: opDelete, key: pick()})
		case r < 0.90:
			ops = append(ops, op{kind: opGet, key: pick()})
		default:
			ops = append(ops, op{kind: opStep})
		}
	}
	return ops
}

// kstate is the model's view of one key.
type kstate struct {
	present bool
	cur     string
	history map[string]bool // every acknowledged value, for the uncertain set

	// Crash-point uncertainty: set when the in-flight op at the crash
	// targeted this key.
	uncertain bool
	pendPut   bool
	pendVal   string
}

type model map[string]*kstate

func (m model) at(k string) *kstate {
	s := m[k]
	if s == nil {
		s = &kstate{history: make(map[string]bool)}
		m[k] = s
	}
	return s
}

// counterBase is the model's pre-merge counter value for the key: absent or
// deleted means 0, otherwise the decoded current value. ok is false when the
// key holds a non-counter value — the trace generator keeps counter and
// opaque keyspaces disjoint, so that is a harness bug, not an engine one.
func (s *kstate) counterBase() (int64, bool) {
	if !s.present {
		return 0, true
	}
	v, err := core.DecodeCounter([]byte(s.cur))
	return v, err == nil
}

// allowed reports whether an observed post-crash state is legal for the key.
func (s *kstate) allowed(present bool, val string) bool {
	if !s.uncertain {
		return present == s.present && (!present || val == s.cur)
	}
	if !present {
		return true
	}
	return s.history[val] || (s.pendPut && val == s.pendVal)
}

// cycleConfig pins everything one cycle needs to replay exactly.
type cycleConfig struct {
	factory  Factory
	seed     int64
	trace    []op
	failNVMe int64 // FailWriteAfter for the NVMe device
	failSATA int64 // FailWriteAfter for the SATA device
	torn     bool
}

// runCycle executes one crash-recover-verify cycle. It returns "" on
// success, otherwise a description of the invariant violation. crashed
// reports whether an injected fault surfaced mid-trace (as opposed to the
// power cut landing on an idle engine).
func runCycle(c cycleConfig) (violation string, crashed bool) {
	nvme := device.New(device.UnthrottledProfile("nvme", c.factory.NVMeCap))
	sata := device.New(device.UnthrottledProfile("sata", c.factory.SATACap))
	cfg := Config{NVMe: nvme, SATA: sata}
	eng, err := c.factory.Open(cfg)
	if err != nil {
		return fmt.Sprintf("open: %v", err), false
	}
	nvme.InjectFaults(device.FaultPlan{Seed: c.seed, FailWriteAfter: c.failNVMe, TornWrites: c.torn})
	sata.InjectFaults(device.FaultPlan{Seed: c.seed + 1, FailWriteAfter: c.failSATA, TornWrites: c.torn})

	m := model{}
	for i, o := range c.trace {
		switch o.kind {
		case opPut:
			if err := eng.Put([]byte(o.key), []byte(o.value)); err != nil {
				s := m.at(o.key)
				s.uncertain, s.pendPut, s.pendVal = true, true, o.value
				crashed = true
			} else {
				s := m.at(o.key)
				s.present, s.cur = true, o.value
				s.history[o.value] = true
			}
		case opDelete:
			if err := eng.Delete([]byte(o.key)); err != nil {
				m.at(o.key).uncertain = true
				crashed = true
			} else {
				m.at(o.key).present = false
			}
		case opGet:
			v, err := eng.Get([]byte(o.key))
			s := m.at(o.key)
			switch {
			case err == nil:
				if !s.present || s.cur != string(v) {
					return fmt.Sprintf("live get op %d: %s returned %dB, model %v", i, o.key, len(v), s.present), crashed
				}
			case errors.Is(err, ErrNotFound):
				if s.present {
					return fmt.Sprintf("live get op %d: %s missing, model has %dB", i, o.key, len(s.cur)), crashed
				}
			default:
				// An injected fault surfaced through a read-path write (e.g. a
				// cache admission); treat it as the crash point. Reads do not
				// change logical state, so no key becomes uncertain.
				crashed = true
			}
		case opIncr:
			s := m.at(o.key)
			base, ok := s.counterBase()
			if !ok {
				return fmt.Sprintf("trace bug: incr target %s holds a non-counter model value", o.key), crashed
			}
			want := core.SatAdd(base, o.delta)
			v, err := eng.Incr([]byte(o.key), o.delta)
			switch {
			case err == nil:
				if v != want {
					return fmt.Sprintf("live incr op %d: %s = %d, model %d", i, o.key, v, want), crashed
				}
				enc := string(core.EncodeCounter(want))
				s.present, s.cur = true, enc
				s.history[enc] = true
			case errors.Is(err, ErrNotCounter):
				// Never legal here: the keyspaces are disjoint, so a
				// non-counter base means the engine corrupted the value.
				return fmt.Sprintf("live incr op %d: %s rejected as non-counter: %v", i, o.key, err), crashed
			default:
				// Unacked: the counter may hold the old value, the post-merge
				// value (the merge resolves to a put of that encoding), or —
				// for a never-persisted key — nothing.
				s.uncertain, s.pendPut, s.pendVal = true, true, string(core.EncodeCounter(want))
				crashed = true
			}
		case opStep:
			// A failed background step crashes the system mid-flush/
			// migration/compaction. No client op is in flight, so every
			// acknowledged write must still be durable.
			if err := eng.Step(); err != nil {
				crashed = true
			}
		}
		if crashed {
			break
		}
	}
	// !crashed = the power cut lands on an idle engine; same checks apply.
	nvme.PowerCut()
	sata.PowerCut()
	nvme.ClearFaults()
	sata.ClearFaults()

	reng, err := c.factory.Recover(cfg)
	if err != nil {
		return fmt.Sprintf("recover: %v", err), crashed
	}
	defer reng.Close()

	// Point reads against the model.
	for k, s := range m {
		v, err := reng.Get([]byte(k))
		if err != nil && !errors.Is(err, ErrNotFound) {
			return fmt.Sprintf("post-crash get %s: %v", k, err), crashed
		}
		present := err == nil
		if !s.allowed(present, string(v)) {
			return fmt.Sprintf("post-crash get %s: present=%v val=%q, model cur=%q present=%v uncertain=%v",
				k, present, trunc(string(v)), trunc(s.cur), s.present, s.uncertain), crashed
		}
	}

	// Scan: strict key order, no resurrected keys, model agreement.
	kvs, err := reng.Scan([]byte(""), len(m)+16)
	if err != nil {
		return fmt.Sprintf("post-crash scan: %v", err), crashed
	}
	seen := make(map[string]string, len(kvs))
	prev := ""
	for _, kv := range kvs {
		k := string(kv.Key)
		if prev != "" && k <= prev {
			return fmt.Sprintf("scan order violation: %q after %q", k, prev), crashed
		}
		prev = k
		seen[k] = string(kv.Value)
	}
	for k, s := range m {
		v, ok := seen[k]
		if !s.allowed(ok, v) {
			return fmt.Sprintf("post-crash scan key %s: present=%v val=%q, model cur=%q present=%v uncertain=%v",
				k, ok, trunc(v), trunc(s.cur), s.present, s.uncertain), crashed
		}
	}
	for k := range seen {
		if _, known := m[k]; !known {
			return fmt.Sprintf("scan resurrected never-written key %q", k), crashed
		}
	}

	// Liveness: overwrite every key, run background steps, verify exactly.
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for i, k := range ks {
		want := fmt.Sprintf("post-%d-%s", i, k)
		if err := reng.Put([]byte(k), []byte(want)); err != nil {
			return fmt.Sprintf("post-recovery put %s: %v", k, err), crashed
		}
	}
	for i := 0; i < 4; i++ {
		if err := reng.Step(); err != nil {
			return fmt.Sprintf("post-recovery step %d: %v", i, err), crashed
		}
	}
	for i, k := range ks {
		want := fmt.Sprintf("post-%d-%s", i, k)
		v, err := reng.Get([]byte(k))
		if err != nil {
			return fmt.Sprintf("post-recovery get %s: %v", k, err), crashed
		}
		if string(v) != want {
			return fmt.Sprintf("post-recovery get %s = %q, want %q", k, trunc(string(v)), want), crashed
		}
	}
	return "", crashed
}

func trunc(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

// shrink reduces a failing trace with bounded ddmin: repeatedly remove
// chunks while the cycle still fails, halving chunk size when stuck.
func shrink(c cycleConfig, budget int) []op {
	trace := c.trace
	fails := func(t []op) bool {
		if budget <= 0 {
			return false
		}
		budget--
		cc := c
		cc.trace = t
		v, _ := runCycle(cc)
		return v != ""
	}
	n := 2
	for len(trace) > 1 {
		chunk := (len(trace) + n - 1) / n
		removed := false
		for start := 0; start < len(trace); start += chunk {
			end := start + chunk
			if end > len(trace) {
				end = len(trace)
			}
			cand := make([]op, 0, len(trace)-(end-start))
			cand = append(cand, trace[:start]...)
			cand = append(cand, trace[end:]...)
			if len(cand) > 0 && fails(cand) {
				trace = cand
				if n > 2 {
					n--
				}
				removed = true
				break
			}
		}
		if !removed {
			if n >= len(trace) || budget <= 0 {
				break
			}
			n *= 2
			if n > len(trace) {
				n = len(trace)
			}
		}
	}
	return trace
}
