package sstable

import (
	"fmt"
	"strings"
	"testing"

	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

func TestCompressedTableRoundTrip(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("t", 0))
	f, _ := dev.Create("c.sst")
	w := NewWriter(f, WriterOptions{Codec: compress.LZ})
	pad := strings.Repeat("padding-padding-padding-", 6)
	const n = 400
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		ik := keys.InternalKey{User: []byte(k), Seq: uint64(i + 1), Kind: keys.KindSet}
		if err := w.Add(ik, []byte(pad+k)); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if meta.RawSize <= meta.DataSize {
		t.Fatalf("no shrink: raw=%d stored=%d", meta.RawSize, meta.DataSize)
	}
	r, err := OpenReader(f, nil, device.Fg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.tagged {
		t.Fatalf("reader did not detect Magic2")
	}
	for _, i := range []int{0, 7, n / 2, n - 1} {
		k := fmt.Sprintf("key-%05d", i)
		v, kind, found, err := r.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil || !found || kind != keys.KindSet || string(v) != pad+k {
			t.Fatalf("get %s: %v %v %v", k, kind, found, err)
		}
	}
	// Full scan via iterator exercises sequential decompression.
	it := r.NewIter(device.Fg)
	count := 0
	for it.First(); it.Valid(); it.Next() {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("iterated %d entries, want %d", count, n)
	}
	// Legacy tables still open: write one raw alongside.
	f2, _ := dev.Create("raw.sst")
	w2 := NewWriter(f2, WriterOptions{})
	w2.Add(keys.InternalKey{User: []byte("a"), Seq: 1, Kind: keys.KindSet}, []byte("v"))
	if _, err := w2.Finish(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenReader(f2, nil, device.Fg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.tagged {
		t.Fatalf("legacy table misread as tagged")
	}
}
