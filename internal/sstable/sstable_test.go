package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hyperdb/internal/cache"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

func newDev() *device.Device {
	return device.New(device.UnthrottledProfile("t", 0))
}

func buildTable(t testing.TB, dev *device.Device, name string, n int) (*Reader, map[string]string) {
	t.Helper()
	f, err := dev.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{ExpectedKeys: n})
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v := fmt.Sprintf("value-%05d", i)
		want[k] = v
		if err := w.Add(keys.InternalKey{User: []byte(k), Seq: uint64(i + 1), Kind: keys.KindSet}, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Entries != n {
		t.Fatalf("meta entries = %d", meta.Entries)
	}
	if string(meta.Smallest) != "key-00000" || string(meta.Largest) != fmt.Sprintf("key-%05d", n-1) {
		t.Fatalf("meta bounds %q..%q", meta.Smallest, meta.Largest)
	}
	r, err := OpenReader(f, nil, device.Fg)
	if err != nil {
		t.Fatal(err)
	}
	return r, want
}

func TestWriteReadGet(t *testing.T) {
	dev := newDev()
	r, want := buildTable(t, dev, "t1", 2000)
	for k, v := range want {
		got, kind, found, err := r.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil || !found || kind != keys.KindSet || string(got) != v {
			t.Fatalf("get %s: %q kind=%v found=%v err=%v", k, got, kind, found, err)
		}
	}
	if _, _, found, _ := r.Get([]byte("zzz"), keys.MaxSeq, device.Fg); found {
		t.Fatal("phantom key")
	}
}

func TestBloomSkipsAbsentKeys(t *testing.T) {
	dev := newDev()
	r, _ := buildTable(t, dev, "t1", 2000)
	before := dev.Counters().ReadBytes.Load()
	misses := 0
	for i := 0; i < 1000; i++ {
		_, _, found, _ := r.Get([]byte(fmt.Sprintf("absent-%d", i)), keys.MaxSeq, device.Fg)
		if !found {
			misses++
		}
	}
	delta := dev.Counters().ReadBytes.Load() - before
	// With a 1% FP rate, ~10 of 1000 absent lookups read a block; allow 5x.
	if delta > 50*4096 {
		t.Fatalf("absent lookups read %d bytes; bloom filter not effective", delta)
	}
}

func TestIterFullScan(t *testing.T) {
	dev := newDev()
	r, want := buildTable(t, dev, "t1", 1500)
	it := r.NewIter(device.Fg)
	n := 0
	prev := ""
	for it.First(); it.Valid(); it.Next() {
		k := string(it.Key().User)
		if k <= prev {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		if want[k] != string(it.Value()) {
			t.Fatalf("value mismatch at %q", k)
		}
		prev = k
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1500 {
		t.Fatalf("scanned %d entries", n)
	}
}

func TestIterSeek(t *testing.T) {
	dev := newDev()
	r, _ := buildTable(t, dev, "t1", 1000)
	it := r.NewIter(device.Fg)
	it.SeekGE(keys.MakeSearchKey([]byte("key-00500"), keys.MaxSeq))
	if !it.Valid() || string(it.Key().User) != "key-00500" {
		t.Fatalf("seek exact: %v", it.Key())
	}
	it.SeekGE(keys.MakeSearchKey([]byte("key-005005"), keys.MaxSeq))
	if !it.Valid() || string(it.Key().User) != "key-00501" {
		t.Fatalf("seek between: %v", it.Key())
	}
	it.SeekGE(keys.MakeSearchKey([]byte("zzz"), keys.MaxSeq))
	if it.Valid() {
		t.Fatal("seek past end")
	}
}

func TestPageCacheReducesReads(t *testing.T) {
	dev := newDev()
	pc := cache.NewLRU(1<<20, nil)
	f, _ := dev.Create("t1")
	w := NewWriter(f, WriterOptions{})
	for i := 0; i < 1000; i++ {
		w.Add(keys.InternalKey{User: []byte(fmt.Sprintf("k%04d", i)), Seq: 1, Kind: keys.KindSet}, []byte("v"))
	}
	w.Finish()
	r, err := OpenReader(f, pc, device.Fg)
	if err != nil {
		t.Fatal(err)
	}
	r.Get([]byte("k0500"), keys.MaxSeq, device.Fg)
	before := dev.Counters().ReadBytes.Load()
	for i := 0; i < 100; i++ {
		r.Get([]byte("k0500"), keys.MaxSeq, device.Fg)
	}
	if delta := dev.Counters().ReadBytes.Load() - before; delta != 0 {
		t.Fatalf("cached gets read %d bytes from device", delta)
	}
}

func TestTombstonesVisible(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("t1")
	w := NewWriter(f, WriterOptions{})
	w.Add(keys.InternalKey{User: []byte("a"), Seq: 5, Kind: keys.KindDelete}, nil)
	w.Add(keys.InternalKey{User: []byte("b"), Seq: 6, Kind: keys.KindSet}, []byte("v"))
	w.Finish()
	r, _ := OpenReader(f, nil, device.Fg)
	_, kind, found, err := r.Get([]byte("a"), keys.MaxSeq, device.Fg)
	if err != nil || !found || kind != keys.KindDelete {
		t.Fatalf("tombstone: kind=%v found=%v err=%v", kind, found, err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("junk")
	f.Append(bytes.Repeat([]byte{0xAB}, 500))
	f.Sync(device.Fg)
	if _, err := OpenReader(f, nil, device.Fg); err == nil {
		t.Fatal("garbage accepted")
	}
	short, _ := dev.Create("short")
	short.Append([]byte{1, 2, 3})
	short.Sync(device.Fg)
	if _, err := OpenReader(short, nil, device.Fg); err == nil {
		t.Fatal("short file accepted")
	}
}

func TestMultipleVersionsNewestWins(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("t1")
	w := NewWriter(f, WriterOptions{})
	// Internal-key order: same user key, descending seq.
	w.Add(keys.InternalKey{User: []byte("k"), Seq: 30, Kind: keys.KindSet}, []byte("v30"))
	w.Add(keys.InternalKey{User: []byte("k"), Seq: 10, Kind: keys.KindSet}, []byte("v10"))
	w.Finish()
	r, _ := OpenReader(f, nil, device.Fg)
	v, _, found, _ := r.Get([]byte("k"), keys.MaxSeq, device.Fg)
	if !found || string(v) != "v30" {
		t.Fatalf("got %q", v)
	}
	v, _, found, _ = r.Get([]byte("k"), 20, device.Fg)
	if !found || string(v) != "v10" {
		t.Fatalf("snapshot 20: %q", v)
	}
}

func TestHandleRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		h := Handle{Offset: rng.Uint64() >> 8, Size: rng.Uint64() >> 40}
		enc := EncodeHandle(nil, h)
		got, err := DecodeHandle(enc)
		if err != nil || got != h {
			t.Fatalf("roundtrip %v -> %v err=%v", h, got, err)
		}
	}
	if _, err := DecodeHandle(nil); err == nil {
		t.Fatal("empty handle accepted")
	}
}

func TestLargeValues(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("big")
	w := NewWriter(f, WriterOptions{})
	big := bytes.Repeat([]byte{7}, 20000) // spans multiple blocks
	w.Add(keys.InternalKey{User: []byte("big"), Seq: 1, Kind: keys.KindSet}, big)
	w.Add(keys.InternalKey{User: []byte("small"), Seq: 2, Kind: keys.KindSet}, []byte("s"))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, _ := OpenReader(f, nil, device.Fg)
	v, _, found, err := r.Get([]byte("big"), keys.MaxSeq, device.Fg)
	if err != nil || !found || !bytes.Equal(v, big) {
		t.Fatalf("large value: found=%v len=%d err=%v", found, len(v), err)
	}
}
