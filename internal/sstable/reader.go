package sstable

import (
	"encoding/binary"
	"fmt"

	"hyperdb/internal/block"
	"hyperdb/internal/bloom"
	"hyperdb/internal/cache"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// maxRawBlock caps the decoded size a compressed data block may declare,
// bounding the allocation a corrupted length field can trigger.
const maxRawBlock = 16 << 20

// Reader serves lookups and scans from a finished table. The footer, index
// block and bloom filter are read once at open (charged to the device) and
// pinned in memory, modelling RocksDB's table cache. Data-block reads go
// through the optional shared page cache.
type Reader struct {
	f      *device.File
	filter *bloom.Filter
	index  []byte
	blocks []Handle // data block handles in key order
	seps   [][]byte // last user key per block, parallel to blocks
	pcache cache.BlockCache
	tagged bool // Magic2: data blocks are compress payloads
}

// OpenReader loads table metadata from f. pcache may be nil.
func OpenReader(f *device.File, pcache cache.BlockCache, op device.Op) (*Reader, error) {
	size := f.Size()
	if size < footerSize {
		return nil, fmt.Errorf("sstable: file %q too small (%d bytes)", f.Name(), size)
	}
	footer := make([]byte, footerSize)
	if _, err := f.ReadAt(footer, size-footerSize, op); err != nil {
		return nil, err
	}
	tagged := false
	switch got := binary.LittleEndian.Uint64(footer[footerSize-8:]); got {
	case Magic:
	case Magic2:
		tagged = true
	default:
		return nil, fmt.Errorf("sstable: bad magic %#x in %q", got, f.Name())
	}
	// The two handles are varint-encoded back to back at the footer start.
	filterH, err := DecodeHandle(footer)
	if err != nil {
		return nil, err
	}
	_, n1 := binary.Uvarint(footer)
	_, n2 := binary.Uvarint(footer[n1:])
	indexH, err := DecodeHandle(footer[n1+n2:])
	if err != nil {
		return nil, err
	}

	filterData := make([]byte, filterH.Size)
	if _, err := f.ReadAt(filterData, int64(filterH.Offset), op); err != nil {
		return nil, err
	}
	filter, err := bloom.Unmarshal(filterData)
	if err != nil {
		return nil, fmt.Errorf("sstable: %q filter: %w", f.Name(), err)
	}
	indexData := make([]byte, indexH.Size)
	if _, err := f.ReadAt(indexData, int64(indexH.Offset), op); err != nil {
		return nil, err
	}

	r := &Reader{f: f, filter: filter, index: indexData, pcache: pcache, tagged: tagged}
	it, err := block.NewIter(indexData)
	if err != nil {
		return nil, fmt.Errorf("sstable: %q index: %w", f.Name(), err)
	}
	for it.First(); it.Valid(); it.Next() {
		h, err := DecodeHandle(it.Value())
		if err != nil {
			return nil, err
		}
		r.blocks = append(r.blocks, h)
		r.seps = append(r.seps, append([]byte(nil), it.Key().User...))
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// NumBlocks returns the data block count.
func (r *Reader) NumBlocks() int { return len(r.blocks) }

// readBlock fetches a data block, via the page cache when available. The
// cache holds stored (possibly compressed) bytes; Magic2 tables decompress
// after the fetch, failing closed on any corrupted payload.
func (r *Reader) readBlock(i int, op device.Op) ([]byte, error) {
	h := r.blocks[i]
	var key string
	var data []byte
	if r.pcache != nil {
		key = fmt.Sprintf("%s#%d", r.f.Name(), h.Offset)
		if cached, ok := r.pcache.Get(key); ok {
			if len(cached) != int(h.Size) {
				return nil, fmt.Errorf("sstable: cached block %s has %d bytes, want %d", key, len(cached), h.Size)
			}
			data = cached
		}
	}
	if data == nil {
		data = make([]byte, h.Size)
		if n, err := r.f.ReadAt(data, int64(h.Offset), op); err != nil {
			return nil, err
		} else if n != int(h.Size) {
			return nil, fmt.Errorf("sstable: short read %d/%d at %s+%d", n, h.Size, r.f.Name(), h.Offset)
		}
		if r.pcache != nil {
			r.pcache.Put(key, data)
		}
	}
	if r.tagged {
		return compress.Decode(data, maxRawBlock)
	}
	return data, nil
}

// blockFor returns the index of the first block whose separator >= user key,
// or -1 when the key is past the last block.
func (r *Reader) blockFor(user []byte) int {
	lo, hi := 0, len(r.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if lessBytes(r.seps[mid], user) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.blocks) {
		return -1
	}
	return lo
}

func lessBytes(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Get returns the newest version of user visible at snapshot seq.
// found=false means the table holds no version; a tombstone returns
// found=true, kind=KindDelete.
func (r *Reader) Get(user []byte, seq uint64, op device.Op) (value []byte, kind keys.Kind, found bool, err error) {
	value, kind, _, found, err = r.GetEntry(user, seq, op)
	return value, kind, found, err
}

// GetEntry is Get plus the matched version's sequence number; crash
// recovery uses the sequence to arbitrate between an LSM version and a
// fast-tier copy of the same key.
func (r *Reader) GetEntry(user []byte, seq uint64, op device.Op) (value []byte, kind keys.Kind, entrySeq uint64, found bool, err error) {
	if !r.filter.Contains(user) {
		return nil, 0, 0, false, nil
	}
	bi := r.blockFor(user)
	if bi < 0 {
		return nil, 0, 0, false, nil
	}
	data, err := r.readBlock(bi, op)
	if err != nil {
		return nil, 0, 0, false, err
	}
	it, err := block.NewIter(data)
	if err != nil {
		return nil, 0, 0, false, err
	}
	it.SeekGE(keys.MakeSearchKey(user, seq))
	if !it.Valid() || string(it.Key().User) != string(user) {
		return nil, 0, 0, false, it.Err()
	}
	v := append([]byte(nil), it.Value()...)
	return v, it.Key().Kind, it.Key().Seq, true, nil
}

// ComputeMeta rebuilds the table's Meta by scanning every entry. The footer
// does not persist the writer's metadata, so recovery derives it here.
func (r *Reader) ComputeMeta(op device.Op) (Meta, error) {
	var m Meta
	m.TotalSize = r.f.Size()
	m.Blocks = len(r.blocks)
	for _, h := range r.blocks {
		m.DataSize += int64(h.Size)
	}
	it := r.NewIter(op)
	for it.First(); it.Valid(); it.Next() {
		k := it.Key()
		if m.Smallest == nil {
			m.Smallest = append([]byte(nil), k.User...)
		}
		m.Largest = append(m.Largest[:0], k.User...)
		if k.Seq > m.MaxSeq {
			m.MaxSeq = k.Seq
		}
		m.Entries++
	}
	if err := it.Err(); err != nil {
		return Meta{}, err
	}
	m.Largest = append([]byte(nil), m.Largest...)
	return m, nil
}

// Iter iterates the whole table in internal-key order.
type Iter struct {
	r   *Reader
	op  device.Op
	bi  int
	cur *block.Iter
	err error
}

// NewIter returns an iterator over the table. Call First or SeekGE first.
func (r *Reader) NewIter(op device.Op) *Iter {
	return &Iter{r: r, op: op, bi: -1}
}

func (it *Iter) loadBlock(i int) bool {
	if i >= len(it.r.blocks) {
		it.cur = nil
		return false
	}
	data, err := it.r.readBlock(i, it.op)
	if err != nil {
		it.err, it.cur = err, nil
		return false
	}
	b, err := block.NewIter(data)
	if err != nil {
		it.err, it.cur = err, nil
		return false
	}
	it.bi = i
	it.cur = b
	return true
}

// First positions at the table's first entry.
func (it *Iter) First() {
	if it.loadBlock(0) {
		it.cur.First()
		it.skipExhausted()
	}
}

// SeekGE positions at the first entry with internal key >= target.
func (it *Iter) SeekGE(target keys.InternalKey) {
	bi := it.r.blockFor(target.User)
	if bi < 0 {
		it.cur = nil
		return
	}
	if it.loadBlock(bi) {
		it.cur.SeekGE(target)
		it.skipExhausted()
	}
}

// Next advances the iterator.
func (it *Iter) Next() {
	if it.cur == nil {
		return
	}
	it.cur.Next()
	it.skipExhausted()
}

func (it *Iter) skipExhausted() {
	for it.cur != nil && !it.cur.Valid() {
		if err := it.cur.Err(); err != nil {
			it.err, it.cur = err, nil
			return
		}
		if !it.loadBlock(it.bi + 1) {
			return
		}
		it.cur.First()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.cur != nil && it.cur.Valid() }

// Key returns the current internal key.
func (it *Iter) Key() keys.InternalKey { return it.cur.Key() }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.cur.Value() }

// Err returns the first error encountered.
func (it *Iter) Err() error { return it.err }
