// Package sstable implements the classic sorted string table used by the
// RocksDB-style and PrismDB-style baselines: sorted prefix-compressed data
// blocks, a whole-table bloom filter, an index block mapping separator keys
// to block handles, and a fixed footer. The semi-SSTable (package semisst)
// extends this format with append-after-persist and per-block validity.
package sstable

import (
	"encoding/binary"
	"fmt"

	"hyperdb/internal/block"
	"hyperdb/internal/bloom"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// Magic identifies a finished table in the footer.
const Magic = 0x7068db5e57ab1e00

// Magic2 identifies a table whose data blocks are self-describing compress
// payloads (tag byte + codec framing). Filter and index blocks stay raw in
// both formats. Readers accept either magic, so compressed and legacy
// tables coexist in one store and compaction converts between them.
const Magic2 = 0x7068db5e57ab1e02

// Handle locates a block inside a table file.
type Handle struct {
	Offset uint64
	Size   uint64
}

// EncodeHandle appends the varint encoding of h to dst.
func EncodeHandle(dst []byte, h Handle) []byte {
	var tmp [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], h.Offset)
	n += binary.PutUvarint(tmp[n:], h.Size)
	return append(dst, tmp[:n]...)
}

// DecodeHandle parses a handle from buf.
func DecodeHandle(buf []byte) (Handle, error) {
	off, n1 := binary.Uvarint(buf)
	if n1 <= 0 {
		return Handle{}, fmt.Errorf("sstable: bad handle offset")
	}
	sz, n2 := binary.Uvarint(buf[n1:])
	if n2 <= 0 {
		return Handle{}, fmt.Errorf("sstable: bad handle size")
	}
	return Handle{Offset: off, Size: sz}, nil
}

// WriterOptions configures table construction.
type WriterOptions struct {
	// BlockSize is the uncompressed data-block target in bytes (default 4096,
	// one device page, matching the paper's access granularity).
	BlockSize int
	// BloomBitsPerKey sizes the table filter (default 10).
	BloomBitsPerKey int
	// ExpectedKeys pre-sizes the bloom filter (default 4096).
	ExpectedKeys int
	// Op attributes the build I/O (flush and compaction use device.Bg).
	Op device.Op
	// Codec compresses data blocks; None writes the legacy format (Magic
	// footer, raw blocks). Any other codec writes Magic2 with every data
	// block stored as a compress payload.
	Codec compress.Codec
}

func (o *WriterOptions) fill() {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
	if o.ExpectedKeys <= 0 {
		o.ExpectedKeys = 4096
	}
}

// Meta summarises a finished table.
type Meta struct {
	Entries   int
	DataSize  int64 // stored bytes of data blocks (after compression)
	RawSize   int64 // uncompressed bytes of data blocks
	TotalSize int64 // whole file
	Blocks    int
	Smallest  []byte // first user key
	Largest   []byte // last user key
	MaxSeq    uint64
}

// Range returns the closed-open user-key range covered by the table.
func (m Meta) Range() keys.Range {
	return keys.Range{Lo: m.Smallest, Hi: keys.Successor(m.Largest)}
}

// Writer builds a table by streaming sorted entries into a device file.
type Writer struct {
	f      *device.File
	opts   WriterOptions
	data   *block.Builder
	index  *block.Builder
	filter *bloom.Filter
	meta   Meta
	err    error
}

// NewWriter begins a new table in f, which must be empty.
func NewWriter(f *device.File, opts WriterOptions) *Writer {
	opts.fill()
	return &Writer{
		f:      f,
		opts:   opts,
		data:   block.NewBuilder(0),
		index:  block.NewBuilder(1),
		filter: bloom.New(opts.ExpectedKeys, opts.BloomBitsPerKey),
	}
}

// Add appends an entry; internal keys must arrive in strictly increasing
// order.
func (w *Writer) Add(ikey keys.InternalKey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	w.data.Add(ikey, value)
	w.filter.Add(ikey.User)
	if w.meta.Smallest == nil {
		w.meta.Smallest = append([]byte(nil), ikey.User...)
	}
	w.meta.Largest = append(w.meta.Largest[:0], ikey.User...)
	if ikey.Seq > w.meta.MaxSeq {
		w.meta.MaxSeq = ikey.Seq
	}
	w.meta.Entries++
	if w.data.SizeEstimate() >= w.opts.BlockSize {
		w.err = w.flushDataBlock()
	}
	return w.err
}

func (w *Writer) flushDataBlock() error {
	if w.data.Count() == 0 {
		return nil
	}
	lastUser := append([]byte(nil), w.data.LastUserKey()...)
	content := w.data.Finish()
	w.meta.RawSize += int64(len(content))
	if w.opts.Codec != compress.None {
		content = compress.Encode(nil, w.opts.Codec, content)
	}
	off, err := w.f.Append(content)
	if err != nil {
		return err
	}
	w.meta.DataSize += int64(len(content))
	w.meta.Blocks++
	// Index entry: separator = last user key of the block at max seq, so a
	// SeekGE(user) lands on the right block.
	sep := keys.InternalKey{User: lastUser, Seq: 0, Kind: keys.KindSet}
	w.index.Add(sep, EncodeHandle(nil, Handle{Offset: uint64(off), Size: uint64(len(content))}))
	w.data.Reset()
	return nil
}

// Finish flushes remaining blocks, writes filter, index and footer, and
// syncs the file. The writer is unusable afterwards.
func (w *Writer) Finish() (Meta, error) {
	if w.err != nil {
		return Meta{}, w.err
	}
	if err := w.flushDataBlock(); err != nil {
		return Meta{}, err
	}
	filterData := w.filter.Marshal()
	filterOff, err := w.f.Append(filterData)
	if err != nil {
		return Meta{}, err
	}
	indexData := w.index.Finish()
	indexOff, err := w.f.Append(indexData)
	if err != nil {
		return Meta{}, err
	}
	footer := make([]byte, 0, 48)
	footer = EncodeHandle(footer, Handle{Offset: uint64(filterOff), Size: uint64(len(filterData))})
	footer = EncodeHandle(footer, Handle{Offset: uint64(indexOff), Size: uint64(len(indexData))})
	// Pad so the footer is fixed-size from the end.
	for len(footer) < footerSize-8 {
		footer = append(footer, 0)
	}
	var magic [8]byte
	if w.opts.Codec != compress.None {
		binary.LittleEndian.PutUint64(magic[:], Magic2)
	} else {
		binary.LittleEndian.PutUint64(magic[:], Magic)
	}
	footer = append(footer, magic[:]...)
	if _, err := w.f.Append(footer); err != nil {
		return Meta{}, err
	}
	if err := w.f.Sync(w.opts.Op); err != nil {
		return Meta{}, err
	}
	w.meta.TotalSize = w.f.Size()
	return w.meta, nil
}

// footerSize is the fixed footer length: two padded handles plus magic.
const footerSize = 48
