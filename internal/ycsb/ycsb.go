// Package ycsb reimplements the YCSB cloud-serving benchmark core used in
// §4: the six standard workloads A–F, zipfian / uniform / latest request
// distributions (Gray's incremental-zeta zipfian, FNV-scrambled like YCSB's
// ScrambledZipfian), and deterministic per-client operation streams.
package ycsb

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// OpType is the kind of one generated operation.
type OpType int

// Operation kinds.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpScan
	OpRMW // read-modify-write (workload F)
)

func (t OpType) String() string {
	switch t {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	default:
		return "?"
	}
}

// Distribution selects how request keys are drawn.
type Distribution int

// Request distributions.
const (
	Uniform Distribution = iota
	Zipfian
	Latest
)

// Workload is a YCSB workload mix.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	Dist       Distribution
	// Theta is the zipfian skew (YCSB default 0.99).
	Theta float64
	// ScanLen is the range-query length (paper default 50).
	ScanLen int
}

// The six standard workloads, §4.1 defaults.
var (
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: Zipfian, Theta: 0.99}
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: Zipfian, Theta: 0.99}
	WorkloadC = Workload{Name: "C", ReadProp: 1.0, Dist: Zipfian, Theta: 0.99}
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: Latest, Theta: 0.99}
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: Zipfian, Theta: 0.99, ScanLen: 50}
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: Zipfian, Theta: 0.99}
)

// ByName returns the standard workload with the given letter.
func ByName(name string) (Workload, bool) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF} {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// WithTheta returns a copy of w with the zipfian skew replaced (uniform when
// theta == 0).
func (w Workload) WithTheta(theta float64) Workload {
	o := w
	if theta <= 0 {
		o.Dist = Uniform
	} else {
		if o.Dist == Uniform {
			o.Dist = Zipfian
		}
		o.Theta = theta
	}
	return o
}

// Key renders record index i as the canonical 8-byte key: an FNV-64 scramble
// (YCSB's ScrambledZipfian) so hot indices spread uniformly across the key
// space — and therefore across partitions, zones and level segments.
func Key(i int64) []byte {
	h := fnv64(uint64(i))
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, h)
	return b
}

func fnv64(x uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return h
}

// Value fills a deterministic pseudo-random value of the given size.
func Value(rng *rand.Rand, size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	return v
}

// zipfGen draws zipf-distributed ranks in [0, n) with Gray's algorithm,
// supporting incremental growth of n (needed by the Latest distribution).
type zipfGen struct {
	n          int64
	theta      float64
	alpha      float64
	zetan      float64
	zeta2theta float64
	eta        float64
	countZeta  int64 // n the current zetan corresponds to
}

func newZipf(n int64, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	z.zeta2theta = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.countZeta = n
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = z.etaNow()
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) etaNow() float64 {
	return (1 - math.Pow(2.0/float64(z.n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// grow extends n incrementally, updating zeta without a full recompute.
func (z *zipfGen) grow(n int64) {
	if n <= z.countZeta {
		z.n = n
		return
	}
	for i := z.countZeta + 1; i <= n; i++ {
		z.zetan += 1.0 / math.Pow(float64(i), z.theta)
	}
	z.countZeta = n
	z.n = n
	z.eta = z.etaNow()
}

// next draws one rank; rank 0 is the hottest.
func (z *zipfGen) next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Op is one generated operation.
type Op struct {
	Type    OpType
	Key     []byte
	Value   []byte
	ScanLen int
}

// Generator produces a deterministic operation stream for one client.
type Generator struct {
	w          Workload
	rng        *rand.Rand
	zipf       *zipfGen
	records    int64 // current record count (inserts grow it)
	valSize    int
	nextInsert int64
	stride     int64
}

// NewGenerator creates a stream over records existing keys with the given
// value size. Each client gets its own seed.
func NewGenerator(w Workload, records int64, valueSize int, seed int64) *Generator {
	g := &Generator{
		w:          w,
		rng:        rand.New(rand.NewSource(seed)),
		records:    records,
		valSize:    valueSize,
		nextInsert: records,
		stride:     1,
	}
	if w.Dist == Zipfian || w.Dist == Latest {
		theta := w.Theta
		if theta <= 0 {
			theta = 0.99
		}
		g.zipf = newZipf(records, theta)
	}
	return g
}

// pickKey draws a key index according to the workload's distribution.
func (g *Generator) pickKey() int64 {
	switch g.w.Dist {
	case Uniform:
		return g.rng.Int63n(g.records)
	case Zipfian:
		return g.zipf.next(g.rng)
	case Latest:
		// Rank 0 = newest record.
		r := g.zipf.next(g.rng)
		idx := g.records - 1 - r
		if idx < 0 {
			idx = 0
		}
		return idx
	default:
		return g.rng.Int63n(g.records)
	}
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	w := g.w
	switch {
	case p < w.ReadProp:
		return Op{Type: OpRead, Key: Key(g.pickKey())}
	case p < w.ReadProp+w.UpdateProp:
		return Op{Type: OpUpdate, Key: Key(g.pickKey()), Value: Value(g.rng, g.valSize)}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp:
		idx := g.nextInsert
		g.nextInsert += g.stride
		g.records++
		if g.zipf != nil && g.w.Dist == Latest {
			g.zipf.grow(g.records)
		}
		return Op{Type: OpInsert, Key: Key(idx), Value: Value(g.rng, g.valSize)}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		n := w.ScanLen
		if n <= 0 {
			n = 50
		}
		return Op{Type: OpScan, Key: Key(g.pickKey()), ScanLen: n}
	default:
		return Op{Type: OpRMW, Key: Key(g.pickKey()), Value: Value(g.rng, g.valSize)}
	}
}

// Records returns the current record count (grows with inserts).
func (g *Generator) Records() int64 { return g.records }

// SetInsertStride partitions the insert index space among clients so
// concurrent generators never produce colliding insert keys: client id gets
// indices records+id, records+id+n, records+id+2n, …
func (g *Generator) SetInsertStride(id, n int64) {
	if n < 1 {
		n = 1
	}
	g.nextInsert = g.records + id
	g.stride = n
}
