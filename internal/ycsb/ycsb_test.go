package ycsb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestKeyDeterministicAndSpread(t *testing.T) {
	if !bytes.Equal(Key(42), Key(42)) {
		t.Fatal("keys not deterministic")
	}
	if bytes.Equal(Key(1), Key(2)) {
		t.Fatal("distinct indices collide")
	}
	// Scrambled keys should spread across the byte space: bucket the first
	// byte of many keys and check no bucket dominates.
	buckets := make([]int, 16)
	const n = 50000
	for i := int64(0); i < n; i++ {
		buckets[Key(i)[0]>>4]++
	}
	for b, c := range buckets {
		frac := float64(c) / n
		if frac < 0.03 || frac > 0.10 {
			t.Fatalf("bucket %d holds %.3f of keys; scrambling broken", b, frac)
		}
	}
}

func TestValueSizeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := Value(rng, 128)
	if len(v) != 128 {
		t.Fatalf("len = %d", len(v))
	}
	rng2 := rand.New(rand.NewSource(1))
	if !bytes.Equal(v, Value(rng2, 128)) {
		t.Fatal("values not deterministic per seed")
	}
}

func TestZipfianSkew(t *testing.T) {
	z := newZipf(10000, 0.99)
	rng := rand.New(rand.NewSource(5))
	counts := make(map[int64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.next(rng)]++
	}
	// Rank 0 must be the hottest and hold a few percent of accesses.
	if counts[0] < n/100 {
		t.Fatalf("rank 0 got %d/%d accesses; not zipfian", counts[0], n)
	}
	// Top 20% of ranks should hold >70% of accesses at theta 0.99.
	var top int
	for r, c := range counts {
		if r < 2000 {
			top += c
		}
	}
	if frac := float64(top) / n; frac < 0.70 {
		t.Fatalf("top 20%% holds %.2f, want >0.70", frac)
	}
	// All ranks in range.
	for r := range counts {
		if r < 0 || r >= 10000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestUniformNotSkewed(t *testing.T) {
	g := NewGenerator(Workload{Name: "u", ReadProp: 1, Dist: Uniform}, 1000, 8, 3)
	counts := make(map[string]int)
	for i := 0; i < 100000; i++ {
		counts[string(g.Next().Key)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform over 1000 keys, 100 accesses each on average; max should stay
	// within ~2x of the mean.
	if max > 220 {
		t.Fatalf("max count %d too high for uniform", max)
	}
}

func TestWorkloadMixes(t *testing.T) {
	cases := []struct {
		w        Workload
		wantType OpType
		minFrac  float64
		maxFrac  float64
	}{
		{WorkloadA, OpUpdate, 0.45, 0.55},
		{WorkloadB, OpRead, 0.90, 0.99},
		{WorkloadC, OpRead, 1.0, 1.0},
		{WorkloadD, OpInsert, 0.03, 0.08},
		{WorkloadE, OpScan, 0.90, 0.99},
		{WorkloadF, OpRMW, 0.45, 0.55},
	}
	for _, c := range cases {
		g := NewGenerator(c.w, 10000, 8, 11)
		n := 20000
		count := 0
		for i := 0; i < n; i++ {
			if g.Next().Type == c.wantType {
				count++
			}
		}
		frac := float64(count) / float64(n)
		if frac < c.minFrac || frac > c.maxFrac {
			t.Errorf("workload %s: %v fraction %.3f outside [%.2f,%.2f]",
				c.w.Name, c.wantType, frac, c.minFrac, c.maxFrac)
		}
	}
}

func TestScanOpsCarryLength(t *testing.T) {
	g := NewGenerator(WorkloadE, 1000, 8, 2)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Type == OpScan && op.ScanLen != 50 {
			t.Fatalf("scan len = %d", op.ScanLen)
		}
	}
}

func TestLatestDistributionFavorsRecent(t *testing.T) {
	g := NewGenerator(WorkloadD, 10000, 8, 9)
	recent, old := 0, 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Type != OpRead {
			continue
		}
		// Reverse-engineer the index by scanning is expensive; instead use
		// the generator's own pickKey via statistics: keys near the newest
		// record should dominate. We re-derive index by comparing against
		// Key() of candidate indices in the hot range.
		hot := false
		for d := int64(0); d < 100; d++ {
			idx := g.Records() - 1 - d
			if idx >= 0 && bytes.Equal(op.Key, Key(idx)) {
				hot = true
				break
			}
		}
		if hot {
			recent++
		} else {
			old++
		}
	}
	if recent == 0 || float64(recent)/float64(recent+old) < 0.2 {
		t.Fatalf("latest distribution: recent=%d old=%d", recent, old)
	}
}

func TestInsertStrideNoCollisions(t *testing.T) {
	const clients = 4
	gens := make([]*Generator, clients)
	for c := range gens {
		gens[c] = NewGenerator(WorkloadD, 1000, 8, int64(c+1))
		gens[c].SetInsertStride(int64(c), clients)
	}
	seen := map[string]int{}
	for c, g := range gens {
		for i := 0; i < 5000; i++ {
			op := g.Next()
			if op.Type == OpInsert {
				if prev, dup := seen[string(op.Key)]; dup {
					t.Fatalf("clients %d and %d inserted the same key", prev, c)
				}
				seen[string(op.Key)] = c
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no inserts generated")
	}
}

func TestWithTheta(t *testing.T) {
	u := WorkloadA.WithTheta(0)
	if u.Dist != Uniform {
		t.Fatal("theta 0 should be uniform")
	}
	z := WorkloadA.WithTheta(1.2)
	if z.Dist != Zipfian || z.Theta != 1.2 {
		t.Fatalf("theta override: %+v", z)
	}
	// Original untouched.
	if WorkloadA.Theta != 0.99 {
		t.Fatal("WithTheta mutated the original")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		w, ok := ByName(name)
		if !ok || w.Name != name {
			t.Fatalf("ByName(%s) = %+v %v", name, w, ok)
		}
	}
	if _, ok := ByName("Z"); ok {
		t.Fatal("phantom workload")
	}
}

func TestZipfGrow(t *testing.T) {
	z := newZipf(100, 0.99)
	z1 := z.zetan
	z.grow(200)
	if z.zetan <= z1 {
		t.Fatal("zeta did not grow")
	}
	want := zetaStatic(200, 0.99)
	if math.Abs(z.zetan-want) > 1e-9 {
		t.Fatalf("incremental zeta %.9f != static %.9f", z.zetan, want)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if r := z.next(rng); r < 0 || r >= 200 {
			t.Fatalf("rank %d out of range after grow", r)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(WorkloadA, 1000, 16, 5)
	b := NewGenerator(WorkloadA, 1000, 16, 5)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Type != ob.Type || !bytes.Equal(oa.Key, ob.Key) || !bytes.Equal(oa.Value, ob.Value) {
			t.Fatalf("op %d diverged", i)
		}
	}
}
