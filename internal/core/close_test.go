package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperdb/internal/device"
)

// TestCloseConcurrent is the regression test for the hyperd shutdown race:
// a signal handler's Close racing a deferred Close. Every Close caller must
// return only after the background workers have stopped, and foreground
// ops racing the close must either complete or fail with ErrClosed — never
// panic or deadlock.
func TestCloseConcurrent(t *testing.T) {
	db, err := Open(Options{
		NVMe:               device.New(device.UnthrottledProfile("nvme", 16<<20)),
		SATA:               device.New(device.UnthrottledProfile("sata", 256<<20)),
		Partitions:         2,
		CacheBytes:         1 << 20,
		BackgroundInterval: time.Millisecond, // busy workers during the race
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Foreground writers keep the engine hot while Close lands.
	var opWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		opWG.Add(1)
		go func(g int) {
			defer opWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := db.Put([]byte(fmt.Sprintf("k%d-%d", g, i)), []byte("v"))
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("put during close: %v", err)
					return
				}
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	var closers sync.WaitGroup
	var done atomic.Int32
	for i := 0; i < 8; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := db.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
			// Workers must be gone by the time any Close returns; a
			// subsequent op must therefore fail closed.
			if err := db.Put([]byte("after"), []byte("x")); !errors.Is(err, ErrClosed) {
				t.Errorf("put after close: %v, want ErrClosed", err)
			}
			done.Add(1)
		}()
	}
	closers.Wait()
	close(stop)
	opWG.Wait()
	if done.Load() != 8 {
		t.Fatalf("only %d of 8 concurrent Close calls returned", done.Load())
	}
	// Close remains idempotent after the storm.
	if err := db.Close(); err != nil {
		t.Fatalf("re-close: %v", err)
	}
}
