package core

import (
	"bytes"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/zone"
)

// kindOf maps a tombstone flag to the internal-key kind.
func kindOf(tombstone bool) keys.Kind {
	if tombstone {
		return keys.KindDelete
	}
	return keys.KindSet
}

// KV is one scan result.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live key-value pairs with key >= start, in key
// order, merging the performance and capacity tiers. Per §4.2 the zone tier
// is consulted by sequential point lookups over its ordered index while the
// LSM side streams blocks.
func (db *DB) Scan(start []byte, limit int) ([]KV, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if limit <= 0 {
		return nil, nil
	}
	out := make([]KV, 0, limit)
	// Partitions are key-ranged, so visiting them in order preserves the
	// global order.
	startPart := db.partFor(start)
	for pi := startPart.id; pi < len(db.parts) && len(out) < limit; pi++ {
		p := db.parts[pi]
		lo := start
		if pi != startPart.id {
			lo = nil
		}
		kvs, err := db.scanPartition(p, lo, limit-len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, kvs...)
	}
	return out, nil
}

// scanPartition merges one partition's two tiers from lo upward.
func (db *DB) scanPartition(p *partition, lo []byte, limit int) ([]KV, error) {
	// Snapshot the zone tier's index entries in range. Values are read
	// afterwards (sequential point queries).
	type zref struct {
		key []byte
		loc zone.Location
	}
	var zrefs []zref
	zi := 0
	chunk := limit * 4 // headroom for tombstones shadowing LSM keys
	if chunk < 64 {
		chunk = 64
	}
	exhausted := false
	fill := func(from []byte) {
		zrefs = zrefs[:0]
		zi = 0
		n := 0
		p.zones.Scan(from, nil, func(k []byte, loc zone.Location) bool {
			n++
			zrefs = append(zrefs, zref{key: append([]byte(nil), k...), loc: loc})
			return n < chunk
		})
		exhausted = n < chunk
	}
	fill(lo)

	ti := p.tree.NewScanIter(lo, device.Fg)
	defer ti.Close()
	var prefetch *zone.ScanReader
	if db.opts.ScanPrefetch {
		prefetch = p.zones.NewScanReader()
	}
	readZone := func(key []byte, loc zone.Location) ([]byte, error) {
		if prefetch != nil {
			return prefetch.Read(key, loc, device.Fg)
		}
		return p.zones.ReadAt(key, loc, device.Fg)
	}
	out := make([]KV, 0, limit)
	for len(out) < limit {
		if zi >= len(zrefs) && !exhausted {
			// Refill the zone cursor past the last consumed key.
			fill(keys.Successor(zrefs[len(zrefs)-1].key))
		}
		var zk []byte
		if zi < len(zrefs) {
			zk = zrefs[zi].key
		}
		tValid := ti.Valid()
		if zk == nil && !tValid {
			break
		}
		switch {
		case zk != nil && (!tValid || bytes.Compare(zk, ti.Key()) < 0):
			// Zone-tier key only.
			if !zrefs[zi].loc.Tombstone {
				v, err := readZone(zk, zrefs[zi].loc)
				if err == nil {
					out = append(out, KV{Key: zk, Value: v})
				}
				// A racing migration moved the object; the LSM iterator
				// was opened before, so skip rather than double-count.
			}
			zi++
		case zk != nil && bytes.Equal(zk, ti.Key()):
			// Both tiers: the zone tier is authoritative (newest or an
			// authoritative tombstone).
			if !zrefs[zi].loc.Tombstone {
				v, err := readZone(zk, zrefs[zi].loc)
				if err == nil {
					out = append(out, KV{Key: zk, Value: v})
				}
			}
			zi++
			ti.Next()
		default:
			out = append(out, KV{
				Key:   append([]byte(nil), ti.Key()...),
				Value: append([]byte(nil), ti.Value()...),
			})
			ti.Next()
		}
	}
	if err := ti.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
