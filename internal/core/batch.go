package core

import (
	"errors"
	"fmt"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/zone"
)

// BatchOp is one write in a WriteBatch: a put, a delete when Delete is set
// (Value is ignored), or a counter merge when Merge is set — Delta is added
// to the key's current counter value (missing key = 0, non-counter value =
// ErrNotCounter) and the op commits the post-merge value. After a
// successful WriteBatchSeq the engine has rewritten each merge op's Value
// to its canonical 8-byte post-merge encoding, so callers can read results
// out of their own slice. Merge and Delete are mutually exclusive.
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
	Merge  bool
	Delta  int64
}

// WriteBatch applies ops with batch-grouped amortisation: keys are grouped
// per partition, each group takes the tracker and zone locks once, and the
// whole batch draws a single sequence block. Ordering follows the slice —
// duplicate keys resolve last-write-wins. The batch is not atomic across
// partitions (each partition group is its own lock scope), matching the
// paper's shared-nothing design; an error may leave a prefix applied.
//
// When a replication tee is installed the batch is also appended to the
// tee's log before the apply and committed after it; Commit may block until
// followers acknowledge when synchronous replication is on.
func (db *DB) WriteBatch(ops []BatchOp) error {
	_, err := db.WriteBatchSeq(ops)
	return err
}

// WriteBatchSeq is WriteBatch returning the last sequence the batch
// committed at (op i carries base+i; the return is base+len(ops)-1). The
// serving layer hands this to session clients as their read-your-writes
// token: a follower read gated at this sequence observes the batch. A
// nil-op batch returns 0.
func (db *DB) WriteBatchSeq(ops []BatchOp) (uint64, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if db.follower.Load() {
		return 0, ErrFollower
	}
	if len(ops) == 0 {
		return 0, nil
	}
	// Validate everything up front so a malformed op can't strand a
	// half-applied batch.
	for i := range ops {
		if len(ops[i].Key) == 0 {
			return 0, fmt.Errorf("hyperdb: empty key at batch index %d", i)
		}
		if ops[i].Merge && ops[i].Delete {
			return 0, fmt.Errorf("hyperdb: merge+delete op at batch index %d", i)
		}
	}

	// One sequence block for the batch; op i carries base+i so slice order
	// is sequence order and duplicates resolve last-write-wins. With a tee
	// the allocation and the log append share a critical section so the
	// shipped log's base order matches sequence order.
	n := uint64(len(ops))
	var base, tok uint64
	tee := db.opts.Tee
	if tee != nil {
		db.replMu.Lock()
		base = db.seq.Add(n) - n + 1
		tok = tee.Append(base, ops)
		db.replMu.Unlock()
	} else {
		base = db.seq.Add(n) - n + 1
	}

	err := db.applyAt(ops, func(i int) uint64 { return base + uint64(i) })
	if tee != nil {
		tee.Commit(tok, err == nil)
	}
	if err != nil {
		return 0, err
	}
	return base + n - 1, nil
}

// applyAt applies ops grouped per partition, tagging op i with seqOf(i).
// Shared by the foreground WriteBatch path and the replication appliers, so
// replicated writes exercise the identical tracker/zone/stall machinery.
func (db *DB) applyAt(ops []BatchOp, seqOf func(int) uint64) error {
	if db.tree != nil {
		// Every apply path dirties the written keys' Merkle leaves, so the
		// tree stays consistent on primaries, followers, and across
		// snapshot bootstraps alike.
		for i := range ops {
			db.tree.MarkKey(ops[i].Key)
		}
	}
	// Group op indices per partition, preserving slice order within a group.
	groups := make(map[*partition][]int, len(db.parts))
	for i := range ops {
		p := db.partFor(ops[i].Key)
		groups[p] = append(groups[p], i)
	}

	for p, idxs := range groups {
		if err := db.applyGroup(p, ops, idxs, seqOf); err != nil {
			return err
		}
	}
	return nil
}

// applyGroup applies one partition's slice of a batch. Groups containing
// merge ops first resolve them to plain puts under the partition's merge
// lock, held across the zone apply so the read-modify-write cannot lose a
// concurrently merging batch's update. (A plain Put racing a merge to the
// same key through the direct engine API can still be absorbed — the
// served path's single drainer serialises all writes, so this only
// concerns embedded users mixing both on one key.)
func (db *DB) applyGroup(p *partition, ops []BatchOp, idxs []int, seqOf func(int) uint64) error {
	hasMerge := false
	for _, i := range idxs {
		if ops[i].Merge {
			hasMerge = true
			break
		}
	}
	if hasMerge {
		p.mergeMu.Lock()
		defer p.mergeMu.Unlock()
		if err := db.resolveMerges(p, ops, idxs); err != nil {
			return err
		}
	}

	keyList := make([][]byte, len(idxs))
	for gi, i := range idxs {
		keyList[gi] = ops[i].Key
	}
	hot := make([]bool, len(idxs))
	p.tracker.RecordBatch(keyList, hot)

	zops := make([]zone.BatchOp, len(idxs))
	for gi, i := range idxs {
		zops[gi] = zone.BatchOp{
			Key:    ops[i].Key,
			Value:  ops[i].Value,
			Seq:    seqOf(i),
			Hot:    hot[gi],
			Delete: ops[i].Delete,
		}
	}
	rem := zops
	applied, err := p.zones.ApplyBatch(rem)
	rem = rem[applied:]
	if errors.Is(err, device.ErrNoSpace) {
		// Stall: demote synchronously and resume from the failed op,
		// keeping the already-allocated sequences.
		err = db.putStalled(p, func() error {
			n, rerr := p.zones.ApplyBatch(rem)
			rem = rem[n:]
			return rerr
		})
	}
	if err != nil {
		return err
	}
	db.maybeTriggerMigration(p)
	return nil
}

// advanceSeqTo lifts the sequence counter to at least s, so sequences the
// node mints after a promotion stay above everything it applied.
func (db *DB) advanceSeqTo(s uint64) {
	for {
		cur := db.seq.Load()
		if cur >= s || db.seq.CompareAndSwap(cur, s) {
			return
		}
	}
}

// ApplyReplicated applies one shipped log entry on a follower: op i carries
// sequence base+i, exactly as the primary committed it. Entries must be
// applied in increasing base order (the single-applier contract) so that
// per-key sequence order matches apply order. The entry is re-teed when a
// tee is installed, which lets a follower feed its own downstream replicas.
func (db *DB) ApplyReplicated(ops []BatchOp, base uint64) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if !db.follower.Load() {
		return fmt.Errorf("hyperdb: ApplyReplicated on a primary")
	}
	if len(ops) == 0 || base == 0 {
		return fmt.Errorf("hyperdb: malformed replicated entry (base=%d, %d ops)", base, len(ops))
	}
	for i := range ops {
		if len(ops[i].Key) == 0 {
			return fmt.Errorf("hyperdb: empty key at replicated index %d", i)
		}
	}
	last := base + uint64(len(ops)) - 1
	// Entries must advance strictly past the last applied one. This is the
	// single-applier contract, enforced here so a non-increasing base from
	// the wire fails the stream instead of panicking the re-tee below.
	if prev := db.replApplied.Load(); base <= prev {
		return fmt.Errorf("hyperdb: replicated entry base %d does not advance past applied position %d", base, prev)
	}
	db.advanceSeqTo(last)

	var tok uint64
	tee := db.opts.Tee
	if tee != nil {
		db.replMu.Lock()
		tok = tee.Append(base, ops)
		db.replMu.Unlock()
	}
	// The apply holds the session-read lock exclusively: a gated read either
	// runs before (observing nothing of this entry, token < base) or after
	// (observing all of it, token ≥ last) — never a half-applied middle
	// whose newest data would outrun the token it returns.
	db.applyRW.Lock()
	err := db.applyAt(ops, func(i int) uint64 { return base + uint64(i) })
	if err == nil {
		db.replApplied.Store(last)
		db.advanceReadSeq(last)
	}
	db.applyRW.Unlock()
	if tee != nil {
		tee.Commit(tok, err == nil)
	}
	return err
}

// ApplySnapshotChunk applies one streamed bootstrap chunk on a follower —
// snapshot pairs, or the tombstones the bootstrap sweep uses to drop local
// keys absent from the snapshot. Every op is tagged with the snapshot's
// pinned sequence seq: snapshot values reflect primary state no newer than
// the log tail that follows, so a uniform tag below the tail keeps per-key
// sequence order intact — both live (the tail re-applies any racing write)
// and across a follower crash (recovery picks the highest sequence per
// key). Each chunk resets the replication apply position to seq, so the
// tail that follows must start past the snapshot — even when a forced
// re-bootstrap hands a store a position below what it had applied before.
// Chunks are not teed; a follower that chains further replicas must floor
// its own log at seq.
func (db *DB) ApplySnapshotChunk(ops []BatchOp, seq uint64) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if !db.follower.Load() {
		return fmt.Errorf("hyperdb: ApplySnapshotChunk on a primary")
	}
	for i := range ops {
		if len(ops[i].Key) == 0 {
			return fmt.Errorf("hyperdb: empty key at snapshot index %d", i)
		}
	}
	db.advanceSeqTo(seq)
	db.replApplied.Store(seq)
	if len(ops) == 0 {
		// The terminal bootstrap stamp: the snapshot (and its deletion
		// sweep) is fully applied, so the store now reflects primary state
		// at seq and reads may be gated against it. Intermediate chunks do
		// NOT advance the readable position — a half-bootstrapped store
		// serves only tokens from before the bootstrap began.
		db.advanceReadSeq(seq)
		return nil
	}
	db.applyRW.Lock()
	err := db.applyAt(ops, func(int) uint64 { return seq })
	db.applyRW.Unlock()
	return err
}

// MultiGet looks up every key and returns positionally aligned values; a
// missing or deleted key yields nil (no ErrNotFound per key, so one cold key
// doesn't fail the batch). Lookups are grouped per partition: one tracker
// pass, one zone index-lock acquisition, and page reads shared across keys
// that land on the same slot page. Hot capacity-tier hits are queued for
// promotion exactly like Get.
func (db *DB) MultiGet(keyList [][]byte) ([][]byte, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	out := make([][]byte, len(keyList))
	if len(keyList) == 0 {
		return out, nil
	}

	groups := make(map[*partition][]int, len(db.parts))
	for i, k := range keyList {
		p := db.partFor(k)
		groups[p] = append(groups[p], i)
	}

	for p, idxs := range groups {
		gk := make([][]byte, len(idxs))
		for gi, i := range idxs {
			gk[gi] = keyList[i]
		}
		hot := make([]bool, len(idxs))
		p.tracker.RecordBatch(gk, hot)

		res, err := p.zones.GetBatch(gk, device.Fg)
		if err != nil {
			return nil, err
		}
		for gi, r := range res {
			i := idxs[gi]
			switch {
			case r.Found && !r.Tombstone:
				out[i] = r.Value
			case r.Found: // tombstone: authoritative miss
			default:
				v, kind, found, err := p.tree.Get(gk[gi], keys.MaxSeq, device.Fg)
				if err != nil {
					return nil, err
				}
				if found && kind != keys.KindDelete {
					out[i] = v
					if hot[gi] {
						db.enqueuePromotion(p, gk[gi], v)
					}
				}
			}
		}
	}
	return out, nil
}
