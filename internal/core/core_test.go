package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

func openCore(t testing.TB, nvmeCap int64, background bool) *DB {
	t.Helper()
	db, err := Open(Options{
		NVMe:              device.New(device.UnthrottledProfile("nvme", nvmeCap)),
		SATA:              device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:        4,
		CacheBytes:        2 << 20,
		MigrationBatch:    128 << 10,
		DisableBackground: !background,
		Tracker:           hotness.Config{WindowCapacity: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func k8(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

func TestPartitionRouting(t *testing.T) {
	db := openCore(t, 64<<20, false)
	// Keys at partition boundaries route consistently.
	for _, k := range [][]byte{k8(0), k8(1 << 62), k8(1 << 63), k8(3 << 62), k8(^uint64(0))} {
		p := db.partFor(k)
		if p == nil {
			t.Fatalf("no partition for %x", k)
		}
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := db.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get %x: %q %v", k, v, err)
		}
	}
	// Each partition owns a disjoint range.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		k := k8(uint64(i) << 62)
		seen[db.partFor(k).id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("keys spread over %d partitions, want 4", len(seen))
	}
}

func TestPromotionPath(t *testing.T) {
	db := openCore(t, 64<<20, false)
	key := k8(42 << 40)
	db.Put(key, []byte("value"))
	p := db.partFor(key)

	// Push the object down to the capacity tier.
	z := p.zones.PickDemotionVictim()
	if z == nil {
		t.Fatal("no victim")
	}
	if err := db.demoteZone(p, z); err != nil {
		t.Fatal(err)
	}
	if p.zones.Has(key) {
		t.Fatal("key still in NVMe after demotion")
	}

	// Heat the key: enough reads to fill tracker windows with it present.
	for w := 0; w < 4; w++ {
		db.Get(key)
		for i := 0; p.tracker.CascadeDepth() < w+1 && i < 1<<18; i++ {
			p.tracker.Record([]byte(fmt.Sprintf("filler-%d-%d", w, i)))
		}
	}
	// This read should classify hot and enqueue a promotion.
	if _, err := db.Get(key); err != nil {
		t.Fatal(err)
	}
	if err := db.MigrationStep(p.id); err != nil {
		t.Fatal(err)
	}
	if !p.zones.Has(key) {
		t.Fatal("hot object was not promoted back to NVMe")
	}
	v, err := db.Get(key)
	if err != nil || string(v) != "value" {
		t.Fatalf("promoted get: %q %v", v, err)
	}
}

func TestWriteStallFreesSpace(t *testing.T) {
	// NVMe far too small for the workload: puts must stall-demote rather
	// than fail.
	db := openCore(t, 2<<20, false)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30000; i++ {
		if err := db.Put(k8(rng.Uint64()), make([]byte, 100)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st := db.Stats()
	if st.Zone.Migrations == 0 {
		t.Fatal("no migrations under pressure")
	}
	if st.NVMeUsed > st.NVMeCapacity {
		t.Fatal("NVMe overcommitted")
	}
}

func TestStatsShape(t *testing.T) {
	db := openCore(t, 3<<20, false)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		db.Put(k8(rng.Uint64()), make([]byte, 128))
	}
	db.DrainBackground()
	st := db.Stats()
	if st.Zone.Objects == 0 {
		t.Fatal("no objects tracked")
	}
	if st.NVMe.WriteBytes == 0 || st.SATA.WriteBytes == 0 {
		t.Fatalf("traffic missing: %+v", st)
	}
	var live int64
	for _, l := range st.Levels {
		live += l.LiveBytes
	}
	if live == 0 {
		t.Fatal("no LSM data after drain")
	}
	if st.SpaceAmp < 1.0 {
		t.Fatalf("space amp %f < 1", st.SpaceAmp)
	}
	if s := st.String(); len(s) < 50 {
		t.Fatalf("stats string too short: %q", s)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	db := openCore(t, 8<<20, true) // background workers on
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := k8(uint64(rng.Intn(20000)) << 40)
				switch rng.Intn(10) {
				case 0:
					if err := db.Delete(k); err != nil {
						errCh <- err
						return
					}
				case 1, 2, 3:
					if _, err := db.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
						errCh <- err
						return
					}
				case 4:
					if _, err := db.Scan(k, 20); err != nil {
						errCh <- err
						return
					}
				default:
					if err := db.Put(k, make([]byte, 64+rng.Intn(64))); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestScanSeesBothTiers(t *testing.T) {
	db := openCore(t, 8<<20, false)
	// Write a sorted range, demote everything, then overwrite a few in NVMe.
	for i := uint64(0); i < 2000; i++ {
		db.Put(k8(i<<44), []byte(fmt.Sprintf("sata-%d", i)))
	}
	for _, p := range db.parts {
		for {
			z := p.zones.PickDemotionVictim()
			if z == nil {
				break
			}
			if err := db.demoteZone(p, z); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := uint64(0); i < 2000; i += 100 {
		db.Put(k8(i<<44), []byte(fmt.Sprintf("nvme-%d", i)))
	}
	kvs, err := db.Scan(k8(0), 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 250 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	for i, kv := range kvs {
		idx := binary.BigEndian.Uint64(kv.Key) >> 44
		want := fmt.Sprintf("sata-%d", idx)
		if idx%100 == 0 {
			want = fmt.Sprintf("nvme-%d", idx)
		}
		if string(kv.Value) != want {
			t.Fatalf("scan[%d] key %d = %q, want %q", i, idx, kv.Value, want)
		}
	}
	// Order.
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatal("scan out of order")
		}
	}
}

func TestDeleteCrossTier(t *testing.T) {
	db := openCore(t, 8<<20, false)
	key := k8(11 << 40)
	db.Put(key, []byte("v"))
	p := db.partFor(key)
	// Demote to SATA.
	for {
		z := p.zones.PickDemotionVictim()
		if z == nil {
			break
		}
		if err := db.demoteZone(p, z); err != nil {
			t.Fatal(err)
		}
	}
	// Delete writes an NVMe tombstone shadowing the SATA value.
	if err := db.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	// Migrate the tombstone down; key must stay dead.
	if err := db.DrainBackground(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after tombstone migration: %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db := openCore(t, 8<<20, false)
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestClosedDB(t *testing.T) {
	db := openCore(t, 8<<20, false)
	db.Close()
	if err := db.Put(k8(1), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := db.Get(k8(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	// Idempotent close.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScanChunkRefill exercises the zone-cursor refill path: more zone-tier
// entries than one chunk (limit*4) between scan start and the result window.
func TestScanChunkRefill(t *testing.T) {
	db := openCore(t, 64<<20, false) // roomy NVMe: everything stays in zones
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := db.Put(k8(i<<44), []byte(fmt.Sprintf("z%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Delete 4 of every 5 keys: the scan must walk ~2500 zone entries (past
	// the 2000-entry chunk) to produce 500 results, forcing a cursor refill.
	for i := uint64(0); i < n; i++ {
		if i%5 != 0 {
			if err := db.Delete(k8(i << 44)); err != nil {
				t.Fatal(err)
			}
		}
	}
	kvs, err := db.Scan(k8(0), 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 500 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	for i, kv := range kvs {
		if want := fmt.Sprintf("z%d", i*5); string(kv.Value) != want {
			t.Fatalf("scan[%d] = %q want %q", i, kv.Value, want)
		}
	}
}
