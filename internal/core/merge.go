package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// ErrNotCounter is returned when a merge lands on an existing value that is
// not a counter (anything but exactly 8 bytes). Counters are canonical
// 8-byte little-endian int64 values; a missing or deleted key merges
// against base 0.
var ErrNotCounter = errors.New("hyperdb: existing value is not a counter")

// CounterLen is the canonical encoded size of a counter value.
const CounterLen = 8

// EncodeCounter renders v in the canonical counter representation.
func EncodeCounter(v int64) []byte {
	var b [CounterLen]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeCounter parses a canonical counter value. A nil/deleted value is
// not a counter here — callers map absence to base 0 before decoding.
func DecodeCounter(b []byte) (int64, error) {
	if len(b) != CounterLen {
		return 0, fmt.Errorf("%w (%d bytes)", ErrNotCounter, len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// SatAdd adds two int64s, saturating at the int64 range instead of
// wrapping. Merge folds and merge applies both use it, so folding deltas
// before the apply commits the same value as applying them one by one.
func SatAdd(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt64
	}
	if b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// counterBase resolves the pre-merge value of key from the partition's
// current state: the zone tier is authoritative when it holds the key (a
// tombstone means base 0), otherwise the LSM tree. A key found nowhere
// merges against 0.
func (db *DB) counterBase(p *partition, key []byte) (int64, error) {
	v, _, tomb, found, err := p.zones.Get(key, device.Fg)
	if err != nil {
		return 0, err
	}
	if found {
		if tomb {
			return 0, nil
		}
		return DecodeCounter(v)
	}
	v, kind, found, err := p.tree.Get(key, keys.MaxSeq, device.Fg)
	if err != nil {
		return 0, err
	}
	if !found || kind == keys.KindDelete {
		return 0, nil
	}
	return DecodeCounter(v)
}

// resolveMerges rewrites every merge op in the group to a plain put of its
// post-merge value, walking the group in slice order so an earlier put,
// delete, or merge to the same key in the same batch is what a later merge
// sees. Caller holds p.mergeMu so the read-modify-write against partition
// state is atomic with respect to other merging batches. ops[i].Value is
// mutated in place — WriteBatchSeq callers read post-merge values out of
// their own slice after the call.
func (db *DB) resolveMerges(p *partition, ops []BatchOp, idxs []int) error {
	// pending maps keys already written earlier in this group to their
	// in-batch value; nil means deleted (base 0 for a following merge).
	pending := make(map[string][]byte)
	for _, i := range idxs {
		op := &ops[i]
		switch {
		case op.Delete:
			pending[string(op.Key)] = nil
		case !op.Merge:
			pending[string(op.Key)] = op.Value
		default:
			var base int64
			if pv, ok := pending[string(op.Key)]; ok {
				if pv != nil {
					b, err := DecodeCounter(pv)
					if err != nil {
						return fmt.Errorf("merge %q: %w", op.Key, err)
					}
					base = b
				}
			} else {
				b, err := db.counterBase(p, op.Key)
				if err != nil {
					if errors.Is(err, ErrNotCounter) {
						return fmt.Errorf("merge %q: %w", op.Key, err)
					}
					return err
				}
				base = b
			}
			op.Value = EncodeCounter(SatAdd(base, op.Delta))
			pending[string(op.Key)] = op.Value
			db.mergeOps.Add(1)
		}
	}
	return nil
}

// Incr atomically adds delta to the counter at key and returns the
// post-merge value. A missing or deleted key starts from 0; an existing
// non-counter value fails with ErrNotCounter. The result saturates at the
// int64 range. Routed through WriteBatchSeq, so the increment replicates
// and coalesces exactly like any other merge op.
func (db *DB) Incr(key []byte, delta int64) (int64, error) {
	ops := []BatchOp{{Key: key, Merge: true, Delta: delta}}
	if _, err := db.WriteBatchSeq(ops); err != nil {
		return 0, err
	}
	return DecodeCounter(ops[0].Value)
}
