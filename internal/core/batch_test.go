package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

func TestWriteBatchEmpty(t *testing.T) {
	db := openCore(t, 64<<20, false)
	if err := db.WriteBatch(nil); err != nil {
		t.Fatalf("nil batch: %v", err)
	}
	if err := db.WriteBatch([]BatchOp{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	vals, err := db.MultiGet(nil)
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty MultiGet: %v %v", vals, err)
	}
}

func TestWriteBatchEmptyKeyRejected(t *testing.T) {
	db := openCore(t, 64<<20, false)
	err := db.WriteBatch([]BatchOp{
		{Key: k8(1), Value: []byte("a")},
		{Key: nil, Value: []byte("b")},
	})
	if err == nil {
		t.Fatal("empty key accepted")
	}
	// Validation is up-front: nothing from the batch may have applied.
	if _, err := db.Get(k8(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("prefix applied despite validation error: %v", err)
	}
}

func TestWriteBatchDuplicateKeysLastWins(t *testing.T) {
	db := openCore(t, 64<<20, false)
	k := k8(7)
	if err := db.WriteBatch([]BatchOp{
		{Key: k, Value: []byte("first")},
		{Key: k, Value: []byte("second")},
		{Key: k, Delete: true},
		{Key: k, Value: []byte("final")},
	}); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(k); err != nil || string(v) != "final" {
		t.Fatalf("got %q %v, want final", v, err)
	}
	// A batch ending in a delete leaves the key gone.
	if err := db.WriteBatch([]BatchOp{
		{Key: k, Value: []byte("alive")},
		{Key: k, Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after trailing delete, got %v", err)
	}
}

func TestWriteBatchSpansAllPartitions(t *testing.T) {
	db := openCore(t, 64<<20, false) // 4 partitions
	var ops []BatchOp
	const perPart = 8
	for i := 0; i < 4; i++ {
		for j := 0; j < perPart; j++ {
			k := k8(uint64(i)<<62 | uint64(j))
			ops = append(ops, BatchOp{Key: k, Value: []byte(fmt.Sprintf("p%d-%d", i, j))})
		}
	}
	if err := db.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, op := range ops {
		seen[db.partFor(op.Key).id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("batch spread over %d partitions, want 4", len(seen))
	}
	keyList := make([][]byte, len(ops))
	for i := range ops {
		keyList[i] = ops[i].Key
	}
	vals, err := db.MultiGet(keyList)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if !bytes.Equal(v, ops[i].Value) {
			t.Fatalf("key %x: got %q want %q", ops[i].Key, v, ops[i].Value)
		}
	}
}

func TestMultiGetMissesAndTombstones(t *testing.T) {
	db := openCore(t, 64<<20, false)
	if err := db.Put(k8(1), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(k8(2), []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(k8(2)); err != nil {
		t.Fatal(err)
	}
	vals, err := db.MultiGet([][]byte{k8(1), k8(2), k8(3)})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "one" {
		t.Fatalf("vals[0]=%q", vals[0])
	}
	if vals[1] != nil {
		t.Fatalf("deleted key returned %q", vals[1])
	}
	if vals[2] != nil {
		t.Fatalf("missing key returned %q", vals[2])
	}
}

func TestWriteBatchStallFreesSpace(t *testing.T) {
	// NVMe far too small for the workload: batches must hit ErrNoSpace
	// internally, stall-demote, and resume from the failed op with their
	// original sequences.
	db := openCore(t, 2<<20, false)
	rng := rand.New(rand.NewSource(9))
	const batch = 64
	for i := 0; i < 400; i++ {
		ops := make([]BatchOp, batch)
		for j := range ops {
			ops[j] = BatchOp{Key: k8(rng.Uint64()), Value: make([]byte, 100)}
		}
		if err := db.WriteBatch(ops); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	st := db.Stats()
	if st.Zone.Migrations == 0 {
		t.Fatal("no migrations under pressure")
	}
	if st.NVMeUsed > st.NVMeCapacity {
		t.Fatal("NVMe overcommitted")
	}
}

// TestHotPathStress hammers a single partition from 16 goroutines with
// mixed Put/Get/Delete/WriteBatch/MultiGet while the background migration
// and compaction workers run. Its value is under -race: it exercises the
// striped tracker, the atomic device ledger, the value cache, and the batch
// paths against concurrent demotion and promotion.
func TestHotPathStress(t *testing.T) {
	db, err := Open(Options{
		NVMe:           device.New(device.UnthrottledProfile("nvme", 4<<20)),
		SATA:           device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:     1, // one partition: all goroutines contend on one tracker/zone manager
		CacheBytes:     1 << 20,
		MigrationBatch: 64 << 10,
		Tracker:        hotness.Config{WindowCapacity: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	iters := 300
	if testing.Short() {
		iters = 60
	}
	const workers = 16
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			key := func() []byte { return k8(uint64(rng.Intn(4096))) }
			for i := 0; i < iters; i++ {
				switch rng.Intn(10) {
				case 0:
					if err := db.Delete(key()); err != nil {
						errCh <- err
						return
					}
				case 1, 2:
					if _, err := db.Get(key()); err != nil && !errors.Is(err, ErrNotFound) {
						errCh <- err
						return
					}
				case 3, 4:
					keyList := make([][]byte, 16)
					for j := range keyList {
						keyList[j] = key()
					}
					if _, err := db.MultiGet(keyList); err != nil {
						errCh <- err
						return
					}
				case 5, 6:
					ops := make([]BatchOp, 16)
					for j := range ops {
						ops[j] = BatchOp{Key: key(), Value: make([]byte, 64+rng.Intn(64))}
						if rng.Intn(8) == 0 {
							ops[j].Delete = true
						}
					}
					if err := db.WriteBatch(ops); err != nil {
						errCh <- err
						return
					}
				default:
					if err := db.Put(key(), make([]byte, 64+rng.Intn(64))); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// The DB must still be coherent: a final write-read round trip.
	k := k8(1)
	if err := db.Put(k, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(k); err != nil || string(v) != "survivor" {
		t.Fatalf("post-stress get: %q %v", v, err)
	}
}
