package core

import (
	"fmt"
	"strings"
	"testing"

	"hyperdb/internal/device"
)

// mirrorTestOpts sizes the engine so a few hundred puts overflow the
// performance tier and force migrations, which build L1 semi-SSTables whose
// indexes are mirrored to NVMe.
func mirrorTestOpts(nvme, sata *device.Device) Options {
	return Options{
		NVMe:              nvme,
		SATA:              sata,
		Partitions:        2,
		CacheBytes:        64 << 10,
		MigrationBatch:    8 << 10,
		MaxLevels:         3,
		MirrorIndexToNVMe: true,
		DisableBackground: true,
	}
}

func countIdxMirrors(d *device.Device) int {
	n := 0
	for _, name := range d.List() {
		if strings.HasSuffix(name, ".sst.idx") {
			n++
		}
	}
	return n
}

// TestRecoverWithIndexMirror covers the MirrorIndexToNVMe path through
// Recover: index mirrors must exist on the performance tier before the
// crash-free restart, survive it, and the recovered tree must serve every
// key. Orphaned mirrors (whose table is gone) must be swept.
func TestRecoverWithIndexMirror(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 64<<10))
	sata := device.New(device.UnthrottledProfile("sata", 8<<20))
	db, err := Open(mirrorTestOpts(nvme, sata))
	if err != nil {
		t.Fatal(err)
	}

	// Spread keys across both partitions; drive migration/compaction by hand.
	want := make(map[string]string)
	for i := 0; i < 400; i++ {
		k := k8(uint64(i) * 0x9E3779B97F4A7C15)
		v := fmt.Sprintf("value-%04d-%s", i, strings.Repeat("x", 96))
		if err := db.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[string(k)] = v
		if i%16 == 15 {
			for pid := 0; pid < db.Partitions(); pid++ {
				if err := db.MigrationStep(pid); err != nil {
					t.Fatal(err)
				}
				if _, err := db.CompactionStep(pid); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if got := db.Stats().Zone.Migrations; got == 0 {
		t.Fatal("no migrations ran; test is not exercising the capacity tier")
	}
	if got := countIdxMirrors(nvme); got == 0 {
		t.Fatal("MirrorIndexToNVMe=true but no .sst.idx files on the NVMe device")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Recover(mirrorTestOpts(nvme, sata))
	if err != nil {
		t.Fatal(err)
	}
	if got := countIdxMirrors(nvme); got == 0 {
		t.Fatal("index mirrors vanished across recovery")
	}
	for k, v := range want {
		got, err := re.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %x after recover: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("get %x after recover = %q, want %q", k, got, v)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// An orphaned mirror — its table deleted out from under it — must be
	// removed by the next recovery, and a mirror whose table survives kept.
	if _, err := nvme.Create("p0-L1-S0-G9999.sst.idx"); err != nil {
		t.Fatal(err)
	}
	re2, err := Recover(mirrorTestOpts(nvme, sata))
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	for _, name := range nvme.List() {
		if name == "p0-L1-S0-G9999.sst.idx" {
			t.Fatal("orphaned index mirror not swept by Recover")
		}
	}
	if got := countIdxMirrors(nvme); got == 0 {
		t.Fatal("live index mirrors removed by orphan sweep")
	}
	for k, v := range want {
		got, err := re2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("get %x after second recover = %q, %v (want %q)", k, got, err, v)
		}
	}
}

// TestRecoverWithoutMirror is the control: with the mirror disabled no .idx
// files appear and recovery still serves the data from SATA alone.
func TestRecoverWithoutMirror(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 64<<10))
	sata := device.New(device.UnthrottledProfile("sata", 8<<20))
	opts := mirrorTestOpts(nvme, sata)
	opts.MirrorIndexToNVMe = false
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Put(k8(uint64(i)*0x9E3779B97F4A7C15), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			for pid := 0; pid < db.Partitions(); pid++ {
				if err := db.MigrationStep(pid); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if got := countIdxMirrors(nvme); got != 0 {
		t.Fatalf("mirror disabled but %d .sst.idx files on NVMe", got)
	}
	db.Close()
	re, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 200; i++ {
		if _, err := re.Get(k8(uint64(i) * 0x9E3779B97F4A7C15)); err != nil {
			t.Fatalf("get %d after mirror-less recover: %v", i, err)
		}
	}
}
