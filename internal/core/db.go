package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hyperdb/internal/cache"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
	"hyperdb/internal/keys"
	"hyperdb/internal/lsm"
	"hyperdb/internal/merkle"
	"hyperdb/internal/zone"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("hyperdb: closed")

// ErrNotFound is returned by Get for missing or deleted keys.
var ErrNotFound = errors.New("hyperdb: not found")

// ErrFollower is returned by foreground writes on a DB opened in follower
// mode: replicas accept writes only through the replication apply path
// until Promote makes them primary.
var ErrFollower = errors.New("hyperdb: follower is read-only")

// promotion is one pending hot-object copy into the performance tier.
type promotion struct {
	key   []byte
	value []byte
	seq   uint64
}

// partition is one shared-nothing slice of the key space (§3.1): its own
// zone group, LSM tree, tracker and background workers.
type partition struct {
	id      int
	keyLo   uint64
	keyHi   uint64
	zones   *zone.Manager
	tree    *lsm.Tree
	tracker *hotness.Tracker

	// mergeMu serialises merge resolution (read-modify-write of counter
	// state) against other merging batches on this partition. Taken only
	// for batches that contain merge ops.
	mergeMu sync.Mutex

	promoCh chan *promotion
	// promoSlots is the queue's free-slot semaphore: enqueuePromotion
	// reserves a slot *before* copying the object, so overflow drops cost
	// nothing, and a successful reservation guarantees the channel send
	// cannot block (slots never exceed the channel capacity).
	promoSlots atomic.Int64
	wakeMig    chan struct{}
	wakeComp   chan struct{}
	promoDrop  atomic.Uint64
}

// DB is the HyperDB engine.
type DB struct {
	opts  Options
	cache *cache.LRU
	parts []*partition
	seq   atomic.Uint64

	// promoPool recycles promotion buffers between enqueue and drain,
	// keeping steady-state promotions allocation-free on the read path.
	promoPool sync.Pool

	// follower marks replica mode (see Options.Follower); Promote clears it.
	follower atomic.Bool
	// replApplied is the replication apply position: the highest sequence
	// covered by an ApplyReplicated entry, reset by each snapshot bootstrap
	// to the snapshot sequence. ApplyReplicated rejects an entry whose base
	// does not advance past it, so a buggy or malicious upstream sending a
	// non-increasing base errors the stream instead of corrupting state (or
	// tripping the replication log's ordering panic via the re-tee path).
	replApplied atomic.Uint64
	// replMu orders sequence-block allocation and the replication tee's
	// Append so the shipped log is strictly base-ordered. Only taken when a
	// tee is installed — the unreplicated hot path stays lock-free.
	replMu sync.Mutex

	// Session-read support (see session.go). readSeq is the readable
	// position on a follower: the highest replication sequence whose apply
	// has fully completed. readCh is closed and replaced on each advance to
	// wake WaitReadable; applyRW excludes session reads from observing a
	// half-applied replicated entry (appliers hold it exclusively, session
	// reads share it). The foreground write path never touches applyRW, so
	// primaries pay nothing for it.
	readSeq atomic.Uint64
	readMu  sync.Mutex
	readCh  chan struct{}
	applyRW sync.RWMutex

	// mergeOps counts merge ops resolved through the batch path.
	mergeOps atomic.Uint64

	// tree is the incremental Merkle tree over the keyspace, maintained
	// from every apply path when Options.AntiEntropy is set; nil otherwise.
	tree *merkle.Tree

	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
	stop      chan struct{}
}

// Open assembles a DB over the two devices.
func Open(opts Options) (*DB, error) {
	if opts.NVMe == nil || opts.SATA == nil {
		return nil, fmt.Errorf("hyperdb: both NVMe and SATA devices are required")
	}
	opts.fill()
	db := &DB{
		opts:   opts,
		cache:  cache.NewLRU(opts.CacheBytes, nil),
		stop:   make(chan struct{}),
		readCh: make(chan struct{}),
	}
	db.follower.Store(opts.Follower)
	if opts.AntiEntropy {
		db.tree = merkle.New(merkle.DefaultBits)
	}

	p := uint64(opts.Partitions)
	width := math.MaxUint64/p + 1
	var metaDev *device.Device
	if opts.MirrorIndexToNVMe {
		metaDev = opts.NVMe
	}
	hotCap := int64(float64(opts.NVMe.Capacity()) / float64(p) * opts.HotZoneFraction)
	for i := 0; i < opts.Partitions; i++ {
		lo := uint64(i) * width
		hi := lo + width
		if i == opts.Partitions-1 {
			hi = math.MaxUint64
		}
		zm, err := zone.NewManager(zone.Config{
			Dev:         opts.NVMe,
			Partition:   i,
			BatchSize:   opts.MigrationBatch,
			HotCapacity: hotCap,
			PageCache:   db.cache,
			// A quarter of the DRAM budget, split across partitions, goes
			// to the zone tier's per-key value cache.
			ValueCacheBytes: opts.CacheBytes / int64(4*opts.Partitions),
		})
		if err != nil {
			return nil, err
		}
		tree := lsm.New(lsm.Options{
			Dev:           opts.SATA,
			Partition:     i,
			KeyLo:         lo,
			KeyHi:         hi,
			Ratio:         opts.Ratio,
			L1Segments:    opts.L1Segments,
			FileSize:      opts.MigrationBatch, // §3.6: zone size == semi-SST size
			MaxLevels:     opts.MaxLevels,
			Depth:         opts.CompactionDepth,
			TClean:        opts.TClean,
			SpaceAmpLimit: opts.SpaceAmpLimit,
			PowerK:        opts.PowerK,
			PageCache:     db.cache,
			MetaBackup:    metaDev,
			Compress:      opts.CompressPolicy,
			Seed:          uint64(i + 1),
		})
		part := &partition{
			id:       i,
			keyLo:    lo,
			keyHi:    hi,
			zones:    zm,
			tree:     tree,
			tracker:  hotness.NewTracker(opts.Tracker),
			promoCh:  make(chan *promotion, opts.PromoteQueue),
			wakeMig:  make(chan struct{}, 1),
			wakeComp: make(chan struct{}, 1),
		}
		part.promoSlots.Store(int64(opts.PromoteQueue))
		db.parts = append(db.parts, part)
	}
	if !opts.DisableBackground {
		for _, part := range db.parts {
			db.wg.Add(2)
			go db.migrationWorker(part)
			go db.compactionWorker(part)
		}
	}
	return db, nil
}

// Close stops the background workers and waits for them. It is idempotent
// and safe for concurrent callers: every caller — first or not — returns
// only after the workers have fully stopped, so a signal handler racing a
// deferred Close (the hyperd shutdown shape) cannot observe a half-closed
// engine.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		db.closed.Store(true)
		close(db.stop)
		db.wg.Wait()
	})
	return nil
}

// partFor routes a key to its partition by key-range.
func (db *DB) partFor(key []byte) *partition {
	p := uint64(len(db.parts))
	if p == 1 {
		// MaxUint64/1+1 would wrap to zero width.
		return db.parts[0]
	}
	width := math.MaxUint64/p + 1
	i := zone.Key64(key) / width
	if i >= p {
		i = p - 1
	}
	return db.parts[i]
}

// IsHot classifies key against its partition's hotness discriminator
// without recording an access. Lock-free; experiments use it to audit
// promotion quality against known access distributions.
func (db *DB) IsHot(key []byte) bool {
	return db.partFor(key).tracker.IsHot(key)
}

// nextSeq issues a globally unique, monotonically increasing sequence.
func (db *DB) nextSeq() uint64 { return db.seq.Add(1) }

// Put writes key=value. The write is durable in the performance tier when
// Put returns (in-place slot write, no WAL — §3.6).
func (db *DB) Put(key, value []byte) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.follower.Load() {
		return ErrFollower
	}
	if len(key) == 0 {
		return fmt.Errorf("hyperdb: empty key")
	}
	if db.opts.Tee != nil {
		// Replicated deployments route every write through the batch path so
		// the tee sees one committed, seq-tagged entry per logical write.
		return db.WriteBatch([]BatchOp{{Key: key, Value: value}})
	}
	p := db.partFor(key)
	hot := p.tracker.Record(key)
	// One sequence per logical write, even across stall retries, so the
	// crash tests' seq-based uncertainty windows stay tight.
	seq := db.nextSeq()
	err := p.zones.Put(key, value, seq, hot, false)
	if errors.Is(err, device.ErrNoSpace) {
		// Background demotion lagged behind the write rate: migrate
		// synchronously (the write-stall analogue) and retry.
		err = db.putStalled(p, func() error {
			return p.zones.Put(key, value, seq, hot, false)
		})
	}
	if err != nil {
		return err
	}
	db.maybeTriggerMigration(p)
	return nil
}

// putStalled demotes zones synchronously until the write succeeds. The
// device is shared, so when the writer's own partition has nothing left to
// demote, the best-scoring zone of any partition is demoted instead; hot
// zones are evicted as a last resort.
func (db *DB) putStalled(p *partition, retry func() error) error {
	for attempt := 0; attempt < 256; attempt++ {
		vp, z := p, p.zones.PickDemotionVictim()
		if z == nil {
			var best float64
			for _, cand := range db.parts {
				if cz := cand.zones.PickDemotionVictim(); cz != nil && (z == nil || cz.Score() > best) {
					vp, z, best = cand, cz, cz.Score()
				}
			}
		}
		if z == nil {
			// No key-range zones anywhere: evict the largest hot zone.
			var hp *partition
			for _, cand := range db.parts {
				if hp == nil || cand.zones.HotZoneBytes() > hp.zones.HotZoneBytes() {
					hp = cand
				}
			}
			if hp == nil || hp.zones.HotZoneBytes() == 0 {
				break
			}
			if err := hp.zones.EvictHotZone(hp.tracker.IsHot); err != nil {
				return err
			}
		} else if err := db.demoteZone(vp, z); err != nil {
			if errors.Is(err, device.ErrNoSpace) {
				continue // another stalled writer freed/consumed space; retry
			}
			return err
		}
		err := retry()
		if err == nil || !errors.Is(err, device.ErrNoSpace) {
			return err
		}
	}
	return retry()
}

// Delete removes key by writing a tombstone that later migrates down.
func (db *DB) Delete(key []byte) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.follower.Load() {
		return ErrFollower
	}
	if len(key) == 0 {
		return fmt.Errorf("hyperdb: empty key")
	}
	if db.opts.Tee != nil {
		return db.WriteBatch([]BatchOp{{Key: key, Delete: true}})
	}
	p := db.partFor(key)
	p.tracker.Record(key)
	seq := db.nextSeq()
	err := p.zones.Delete(key, seq)
	if errors.Is(err, device.ErrNoSpace) {
		err = db.putStalled(p, func() error {
			return p.zones.Delete(key, seq)
		})
	}
	if err != nil {
		return err
	}
	db.maybeTriggerMigration(p)
	return nil
}

// Get returns the value for key, or ErrNotFound. Hot objects found in the
// capacity tier are queued for promotion into the hot zone (§3.5).
func (db *DB) Get(key []byte) ([]byte, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	p := db.partFor(key)
	hot := p.tracker.Record(key)

	v, _, tomb, found, err := p.zones.Get(key, device.Fg)
	if err != nil {
		return nil, err
	}
	if found {
		if tomb {
			return nil, ErrNotFound
		}
		return v, nil
	}

	v, kind, found, err := p.tree.Get(key, keys.MaxSeq, device.Fg)
	if err != nil {
		return nil, err
	}
	if !found || kind == keys.KindDelete {
		return nil, ErrNotFound
	}
	if hot {
		db.enqueuePromotion(p, key, v)
	}
	return v, nil
}

// enqueuePromotion hands a hot capacity-tier object to the partition's
// object cache for asynchronous promotion. Best-effort: overflow drops.
// The slot is reserved before the object is copied, so a drop costs two
// atomic ops and no allocation, and the buffers come from a pool so
// steady-state promotion enqueues allocate nothing.
func (db *DB) enqueuePromotion(p *partition, key, value []byte) {
	if db.follower.Load() {
		// A promotion mints a fresh local sequence; on a follower that could
		// collide with a sequence the primary has yet to ship, leaving two
		// different versions of a key tagged identically after a crash.
		// Replicas therefore serve capacity-tier hits without promoting.
		return
	}
	if p.promoSlots.Add(-1) < 0 {
		p.promoSlots.Add(1)
		p.promoDrop.Add(1)
		return
	}
	pr, _ := db.promoPool.Get().(*promotion)
	if pr == nil {
		pr = &promotion{}
	}
	pr.key = append(pr.key[:0], key...)
	pr.value = append(pr.value[:0], value...)
	pr.seq = db.nextSeq()
	// Cannot block: every send holds a reserved slot and the channel's
	// capacity equals the slot count.
	p.promoCh <- pr
	db.wake(p.wakeMig)
}

func (db *DB) wake(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// maybeTriggerMigration wakes the partition's migration worker when the
// performance tier crosses its high watermark.
func (db *DB) maybeTriggerMigration(p *partition) {
	if db.opts.NVMe.UsedFraction() >= db.opts.HighWatermark || p.zones.HotZoneOver() {
		db.wake(p.wakeMig)
	}
}

// IsFollower reports whether the DB is currently in replica mode.
func (db *DB) IsFollower() bool { return db.follower.Load() }

// Promote flips a follower to primary: foreground writes are accepted and
// reads may promote again. The caller must have stopped the replication
// applier first — a replicated apply racing a promotion would interleave
// primary-minted and upstream sequences. Idempotent.
func (db *DB) Promote() { db.follower.Store(false) }

// CommitSeq returns the highest sequence the engine has issued (primary) or
// applied (follower). On a primary with a replication tee this is also the
// upper bound of the shipped log.
func (db *DB) CommitSeq() uint64 { return db.seq.Load() }

// Partitions returns the partition count (for harness introspection).
func (db *DB) Partitions() int { return len(db.parts) }

// MerkleTree returns the anti-entropy Merkle tree, nil unless
// Options.AntiEntropy was set.
func (db *DB) MerkleTree() *merkle.Tree { return db.tree }

// Options returns the resolved configuration.
func (db *DB) Options() Options { return db.opts }
