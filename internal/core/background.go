package core

import (
	"time"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/semisst"
	"hyperdb/internal/zone"
)

// migrationWorker is a partition's background demotion/promotion thread
// (§3.5): it demotes the best-scoring zone while the performance tier sits
// above its high watermark, drains pending promotions, and evicts the hot
// zone when it outgrows its budget.
func (db *DB) migrationWorker(p *partition) {
	defer db.wg.Done()
	t := time.NewTicker(db.opts.BackgroundInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stop:
			return
		case <-p.wakeMig:
		case <-t.C:
		}
		if err := db.MigrationStep(p.id); err != nil {
			// Background errors are recorded, not fatal: the next pass
			// retries. ErrNoSpace on SATA would be terminal but the
			// capacity tier is sized for the workload.
			continue
		}
	}
}

// compactionWorker is a partition's background compaction thread: one
// preemptive block compaction (or pending full compaction) per pass.
func (db *DB) compactionWorker(p *partition) {
	defer db.wg.Done()
	t := time.NewTicker(db.opts.BackgroundInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stop:
			return
		case <-p.wakeComp:
		case <-t.C:
		}
		for {
			did, err := p.tree.MaybeCompact(device.Bg)
			if err != nil || !did {
				break
			}
			select {
			case <-db.stop:
				return
			default:
			}
		}
	}
}

// MigrationStep runs one bounded pass of the §3.5 migration logic for
// partition pid: promotions first (they free the queue), then demotions
// until the device falls below the low watermark, then hot-zone eviction.
// Exposed so tests and benchmarks can drive migration deterministically
// when background workers are disabled.
func (db *DB) MigrationStep(pid int) error {
	p := db.parts[pid]

	// Drain the promotion queue (the in-memory object cache flush). Buffers
	// go back to the pool and their reserved slots free up whether or not
	// the promotion succeeded.
	for {
		select {
		case pr := <-p.promoCh:
			err := p.zones.Promote(pr.key, pr.value, pr.seq)
			pr.key, pr.value = pr.key[:0], pr.value[:0]
			db.promoPool.Put(pr)
			p.promoSlots.Add(1)
			if err != nil {
				return err
			}
			continue
		default:
		}
		break
	}

	// Rebuild one oversized zone per pass (§3.2's periodic zone rebuild),
	// so bootstrap-era zones shrink to the current width estimate before
	// they are ever demoted wholesale. A split transiently doubles the
	// zone's footprint; when the device cannot absorb that, leave the zone
	// alone — an oversized zone under a skewed workload is usually the
	// *hottest* range, and demoting it here would evict exactly the data
	// the tier exists to serve. The watermark demotion below still reclaims
	// space by score when pressure is real.
	if z, zBytes := p.zones.PickOversizedZone(); z != nil {
		free := db.opts.NVMe.Capacity() - db.opts.NVMe.Used()
		if free > 2*zBytes {
			if _, err := p.zones.SplitZone(z); err != nil {
				return err
			}
		}
	}

	// When the tier crosses its high watermark, demote zones (one migration
	// batch of adjacent keys each) until usage falls below the low
	// watermark (§3.5).
	if db.opts.NVMe.UsedFraction() >= db.opts.HighWatermark {
		for db.opts.NVMe.UsedFraction() >= db.opts.LowWatermark {
			z := p.zones.PickDemotionVictim()
			if z == nil {
				break
			}
			if err := db.demoteZone(p, z); err != nil {
				return err
			}
		}
	}

	if p.zones.HotZoneOver() {
		if err := p.zones.EvictHotZone(p.tracker.IsHot); err != nil {
			return err
		}
	}
	db.wake(p.wakeComp)
	return nil
}

// demoteZone migrates one zone into the capacity tier's L1. A nil batch
// means a racing migration already took the zone.
func (db *DB) demoteZone(p *partition, z *zone.Zone) error {
	batch, err := p.zones.PrepareMigration(z)
	if err != nil || batch == nil {
		return err
	}
	entries := make([]semisst.Entry, 0, len(batch.Entries))
	for _, e := range batch.Entries {
		// The batch already owns cloned key/value buffers (PrepareMigration
		// detaches them) and the semi-SST copies whatever it retains, so the
		// entries can borrow directly — no per-object key clone here.
		entries = append(entries, semisst.Entry{
			Key:   keys.InternalKey{User: e.Key, Seq: e.Seq, Kind: kindOf(e.Tombstone)},
			Value: e.Value,
		})
	}
	if err := p.tree.MergeBatch(entries, device.Bg); err != nil {
		p.zones.AbortMigration(batch)
		return err
	}
	p.zones.CommitMigration(batch)
	return nil
}

// CompactionStep runs at most one compaction for partition pid, reporting
// whether any work was done. For deterministic test/benchmark driving.
func (db *DB) CompactionStep(pid int) (bool, error) {
	return db.parts[pid].tree.MaybeCompact(device.Bg)
}

// DrainBackground runs migration and compaction across all partitions until
// the system is quiescent: NVMe below the low watermark (or nothing left to
// demote) and no compaction debt. Benchmarks call this to flush background
// work out of measurement windows.
func (db *DB) DrainBackground() error {
	for {
		work := false
		for _, p := range db.parts {
			before := p.zones.Stats().Migrations
			if err := db.MigrationStep(p.id); err != nil {
				return err
			}
			if p.zones.Stats().Migrations != before {
				work = true
			}
			for {
				did, err := p.tree.MaybeCompact(device.Bg)
				if err != nil {
					return err
				}
				if !did {
					break
				}
				work = true
			}
		}
		if !work {
			return nil
		}
	}
}
