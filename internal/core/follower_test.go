package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

func openCoreWith(t testing.TB, mutate func(*Options)) *DB {
	t.Helper()
	opts := Options{
		NVMe:              device.New(device.UnthrottledProfile("nvme", 64<<20)),
		SATA:              device.New(device.UnthrottledProfile("sata", 1<<30)),
		Partitions:        4,
		CacheBytes:        2 << 20,
		MigrationBatch:    128 << 10,
		DisableBackground: true,
		Tracker:           hotness.Config{WindowCapacity: 512},
	}
	if mutate != nil {
		mutate(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestFollowerRejectsForegroundWrites(t *testing.T) {
	db := openCoreWith(t, func(o *Options) { o.Follower = true })
	if !db.IsFollower() {
		t.Fatal("not in follower mode")
	}
	if err := db.Put(k8(1), []byte("v")); !errors.Is(err, ErrFollower) {
		t.Fatalf("Put: %v, want ErrFollower", err)
	}
	if err := db.Delete(k8(1)); !errors.Is(err, ErrFollower) {
		t.Fatalf("Delete: %v, want ErrFollower", err)
	}
	if err := db.WriteBatch([]BatchOp{{Key: k8(1), Value: []byte("v")}}); !errors.Is(err, ErrFollower) {
		t.Fatalf("WriteBatch: %v, want ErrFollower", err)
	}

	// The replicated path is the only write path, and reads serve from it.
	if err := db.ApplyReplicated([]BatchOp{{Key: k8(1), Value: []byte("r1")}}, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(k8(1)); err != nil || string(v) != "r1" {
		t.Fatalf("get after apply: %q %v", v, err)
	}
	vals, err := db.MultiGet([][]byte{k8(1), k8(2)})
	if err != nil || string(vals[0]) != "r1" || vals[1] != nil {
		t.Fatalf("multiget: %q %v", vals, err)
	}
}

func TestApplyReplicatedOrderingAndPromote(t *testing.T) {
	db := openCoreWith(t, func(o *Options) { o.Follower = true })
	if err := db.ApplyReplicated([]BatchOp{
		{Key: k8(1), Value: []byte("a1")},
		{Key: k8(2), Value: []byte("b1")},
	}, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyReplicated([]BatchOp{
		{Key: k8(1), Value: []byte("a2")},
		{Key: k8(2), Delete: true},
	}, 3); err != nil {
		t.Fatal(err)
	}
	if got := db.CommitSeq(); got != 4 {
		t.Fatalf("CommitSeq = %d, want 4", got)
	}
	if v, err := db.Get(k8(1)); err != nil || string(v) != "a2" {
		t.Fatalf("k1: %q %v", v, err)
	}
	if _, err := db.Get(k8(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("k2 not deleted: %v", err)
	}

	// Promotion flips the node to primary: foreground writes work and mint
	// sequences above everything applied; the replicated path shuts off.
	db.Promote()
	if db.IsFollower() {
		t.Fatal("still follower after Promote")
	}
	if err := db.Put(k8(3), []byte("local")); err != nil {
		t.Fatal(err)
	}
	if got := db.CommitSeq(); got != 5 {
		t.Fatalf("post-promote CommitSeq = %d, want 5", got)
	}
	if err := db.ApplyReplicated([]BatchOp{{Key: k8(4), Value: []byte("x")}}, 6); err == nil {
		t.Fatal("ApplyReplicated accepted on a primary")
	}
	if err := db.ApplySnapshotChunk([]BatchOp{{Key: k8(4), Value: []byte("x")}}, 6); err == nil {
		t.Fatal("ApplySnapshotChunk accepted on a primary")
	}
}

func TestApplyReplicatedMalformed(t *testing.T) {
	db := openCoreWith(t, func(o *Options) { o.Follower = true })
	if err := db.ApplyReplicated(nil, 1); err == nil {
		t.Fatal("empty entry accepted")
	}
	if err := db.ApplyReplicated([]BatchOp{{Key: k8(1), Value: []byte("v")}}, 0); err == nil {
		t.Fatal("base 0 accepted")
	}
	if err := db.ApplyReplicated([]BatchOp{{Key: nil, Value: []byte("v")}}, 1); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := db.ApplySnapshotChunk([]BatchOp{{Key: nil}}, 1); err == nil {
		t.Fatal("empty snapshot key accepted")
	}
}

func TestApplyReplicatedRejectsNonIncreasingBase(t *testing.T) {
	// A base taken straight off the wire must not be able to reach the
	// replication tee's ordering panic: a stale or duplicate base errors
	// the stream instead of crashing the follower process.
	db := openCoreWith(t, func(o *Options) {
		o.Follower = true
		o.Tee = &recordTee{}
	})
	if err := db.ApplyReplicated([]BatchOp{
		{Key: k8(1), Value: []byte("a")},
		{Key: k8(2), Value: []byte("b")},
	}, 5); err != nil { // covers 5..6
		t.Fatal(err)
	}
	for _, base := range []uint64{5, 6, 3} {
		if err := db.ApplyReplicated([]BatchOp{{Key: k8(3), Value: []byte("x")}}, base); err == nil {
			t.Fatalf("non-increasing base %d accepted", base)
		}
	}
	if err := db.ApplyReplicated([]BatchOp{{Key: k8(3), Value: []byte("x")}}, 7); err != nil {
		t.Fatalf("advancing base rejected: %v", err)
	}
	// A snapshot bootstrap resets the position: the tail may legitimately
	// restart below previously applied sequences after a forced re-bootstrap.
	if err := db.ApplySnapshotChunk([]BatchOp{{Key: k8(4), Value: []byte("s")}}, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyReplicated([]BatchOp{{Key: k8(5), Value: []byte("y")}}, 5); err != nil {
		t.Fatalf("post-bootstrap base rejected: %v", err)
	}
}

func TestApplySnapshotChunkThenTail(t *testing.T) {
	db := openCoreWith(t, func(o *Options) { o.Follower = true })
	// Bootstrap: every snapshot pair lands at the pinned sequence.
	if err := db.ApplySnapshotChunk([]BatchOp{
		{Key: k8(1), Value: []byte("snap1")},
		{Key: k8(2), Value: []byte("snap2")},
	}, 5); err != nil {
		t.Fatal(err)
	}
	if got := db.CommitSeq(); got != 5 {
		t.Fatalf("CommitSeq = %d, want 5", got)
	}
	// Tail entries above the pin override snapshot values; untouched keys
	// keep theirs.
	if err := db.ApplyReplicated([]BatchOp{{Key: k8(1), Value: []byte("tail")}}, 6); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(k8(1)); err != nil || string(v) != "tail" {
		t.Fatalf("k1: %q %v", v, err)
	}
	if v, err := db.Get(k8(2)); err != nil || string(v) != "snap2" {
		t.Fatalf("k2: %q %v", v, err)
	}
}

// recordTee captures Append calls for ordering assertions.
type recordTee struct {
	mu      sync.Mutex
	bases   []uint64
	counts  []int
	next    uint64
	commits map[uint64]bool
}

func (r *recordTee) Append(base uint64, ops []BatchOp) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bases = append(r.bases, base)
	r.counts = append(r.counts, len(ops))
	r.next++
	return r.next
}

func (r *recordTee) Commit(tok uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.commits == nil {
		r.commits = make(map[uint64]bool)
	}
	r.commits[tok] = ok
}

// TestTeeOrderedUnderConcurrency drives concurrent writers and checks the
// tee invariant the replication log depends on: Append arrives in strictly
// increasing base order with no sequence gaps between entries.
func TestTeeOrderedUnderConcurrency(t *testing.T) {
	tee := &recordTee{}
	db := openCoreWith(t, func(o *Options) { o.Tee = tee })

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var err error
				switch i % 3 {
				case 0:
					err = db.Put(k8(uint64(w*1000+i)), []byte("v"))
				case 1:
					err = db.WriteBatch([]BatchOp{
						{Key: k8(uint64(w*1000 + i)), Value: []byte("b")},
						{Key: k8(uint64(w*1000 + i + 500)), Delete: true},
					})
				default:
					err = db.Delete(k8(uint64(w*1000 + i)))
				}
				if err != nil {
					t.Errorf("writer %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	tee.mu.Lock()
	defer tee.mu.Unlock()
	if len(tee.bases) != writers*perWriter {
		t.Fatalf("tee saw %d entries, want %d", len(tee.bases), writers*perWriter)
	}
	want := uint64(1)
	for i, base := range tee.bases {
		if base != want {
			t.Fatalf("entry %d: base %d, want %d (log has a gap or reorder)", i, base, want)
		}
		want += uint64(tee.counts[i])
	}
	if want-1 != db.CommitSeq() {
		t.Fatalf("log covers through %d, CommitSeq %d", want-1, db.CommitSeq())
	}
	for tok := uint64(1); tok <= uint64(len(tee.bases)); tok++ {
		if ok, found := tee.commits[tok]; !found || !ok {
			t.Fatalf("token %d: committed=%v found=%v", tok, ok, found)
		}
	}
}

// TestTeeFailedBatchAborted checks that a batch rejected up-front never
// reaches the tee, so the replication log only carries real writes.
func TestTeeFailedBatchAborted(t *testing.T) {
	tee := &recordTee{}
	db := openCoreWith(t, func(o *Options) { o.Tee = tee })
	if err := db.WriteBatch([]BatchOp{{Key: nil, Value: []byte("v")}}); err == nil {
		t.Fatal("empty key accepted")
	}
	tee.mu.Lock()
	defer tee.mu.Unlock()
	if len(tee.bases) != 0 {
		t.Fatalf("invalid batch reached the tee: %v", tee.bases)
	}
}

func TestMultiGetDuplicateKeysInOneCall(t *testing.T) {
	db := openCore(t, 64<<20, false)
	if err := db.Put(k8(1), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(k8(2), []byte("two")); err != nil {
		t.Fatal(err)
	}
	// The same key repeated (including interleaved with others and with a
	// missing key) must fill every requested position independently.
	keys := [][]byte{k8(1), k8(2), k8(1), k8(9), k8(1), k8(2)}
	vals, err := db.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "one", "", "one", "two"}
	for i, w := range want {
		got := string(vals[i])
		if w == "" {
			if vals[i] != nil {
				t.Fatalf("pos %d: got %q, want nil", i, got)
			}
			continue
		}
		if got != w {
			t.Fatalf("pos %d: got %q, want %q", i, got, w)
		}
	}
}

func TestWriteBatchPutDeleteInterleaveLWW(t *testing.T) {
	// Run both with and without a tee: the tee routes singles through the
	// batch path, and last-write-wins must hold identically.
	for _, withTee := range []bool{false, true} {
		t.Run(fmt.Sprintf("tee=%v", withTee), func(t *testing.T) {
			db := openCoreWith(t, func(o *Options) {
				if withTee {
					o.Tee = &recordTee{}
				}
			})
			kA, kB := k8(100), k8(200)
			if err := db.WriteBatch([]BatchOp{
				{Key: kA, Value: []byte("a1")},
				{Key: kB, Value: []byte("b1")},
				{Key: kA, Delete: true},
				{Key: kB, Value: []byte("b2")},
				{Key: kA, Value: []byte("a2")},
				{Key: kB, Delete: true},
			}); err != nil {
				t.Fatal(err)
			}
			if v, err := db.Get(kA); err != nil || string(v) != "a2" {
				t.Fatalf("kA: %q %v, want a2", v, err)
			}
			if _, err := db.Get(kB); !errors.Is(err, ErrNotFound) {
				t.Fatalf("kB: %v, want ErrNotFound", err)
			}
			// A second batch re-deleting then reviving the same key.
			if err := db.WriteBatch([]BatchOp{
				{Key: kA, Delete: true},
				{Key: kA, Value: []byte("a3")},
			}); err != nil {
				t.Fatal(err)
			}
			if v, err := db.Get(kA); err != nil || string(v) != "a3" {
				t.Fatalf("kA round 2: %q %v, want a3", v, err)
			}
		})
	}
}
