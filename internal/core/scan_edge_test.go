package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

func TestScanStartPastLastKey(t *testing.T) {
	db := openCore(t, 64<<20, false)
	for i := uint64(0); i < 100; i++ {
		if err := db.Put(k8(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Start strictly above every written key, in the last partition.
	kvs, err := db.Scan(k8(^uint64(0)), 10)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(kvs) != 0 {
		t.Fatalf("scan past last key returned %d pairs", len(kvs))
	}
	// Start in the gap after the data but inside the first partition.
	kvs, err = db.Scan(k8(100), 10)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(kvs) != 0 {
		t.Fatalf("scan from gap returned %d pairs: first=%x", len(kvs), kvs[0].Key)
	}
}

func TestScanLimitExceedsDataset(t *testing.T) {
	db := openCore(t, 64<<20, false)
	const n = 64
	// Spread keys across all four partitions.
	for i := uint64(0); i < n; i++ {
		if err := db.Put(k8(i<<56), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := db.Scan(nil, 100000)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(kvs) != n {
		t.Fatalf("scan returned %d pairs, want %d", len(kvs), n)
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatalf("scan out of order at %d: %x >= %x", i, kvs[i-1].Key, kvs[i].Key)
		}
	}
}

// TestScanTombstoneShadowsLSMAtPartitionBoundary pins the trickiest merge
// case: a key demoted to the capacity tier, then deleted — so the zone
// tier holds an authoritative tombstone while the LSM still has the value —
// sitting exactly on the first key of a partition. A scan that crosses the
// boundary must suppress the key and keep everything around it.
func TestScanTombstoneShadowsLSMAtPartitionBoundary(t *testing.T) {
	db := openCore(t, 64<<20, false)
	boundary := uint64(1) << 62 // first key of partition 1 (4 partitions)
	if got := db.partFor(k8(boundary)).id; got != 1 {
		t.Fatalf("boundary key routed to partition %d, want 1", got)
	}
	if got := db.partFor(k8(boundary - 1)).id; got != 0 {
		t.Fatalf("boundary-1 key routed to partition %d, want 0", got)
	}

	put := func(i uint64, v string) {
		t.Helper()
		if err := db.Put(k8(i), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	put(boundary-1, "left")    // partition 0, stays in the zone tier
	put(boundary, "doomed")    // partition 1, will demote then die
	put(boundary+1, "stale")   // partition 1, will demote then be overwritten
	put(boundary+2, "lsmOnly") // partition 1, will demote and stay

	// Demote every key-range zone of partition 1 into its LSM.
	p := db.parts[1]
	for {
		z := p.zones.PickDemotionVictim()
		if z == nil {
			break
		}
		if err := db.demoteZone(p, z); err != nil {
			t.Fatalf("demote: %v", err)
		}
	}
	if _, _, found, err := p.tree.Get(k8(boundary), keys.MaxSeq, device.Fg); err != nil || !found {
		t.Fatalf("boundary key not in LSM after demotion (found=%v err=%v)", found, err)
	}
	if p.zones.Has(k8(boundary)) {
		t.Fatal("boundary key still in the zone tier after demotion")
	}

	// Zone-tier tombstone now shadows the LSM value at the boundary, and a
	// fresh zone-tier write shadows the stale LSM value one key later.
	if err := db.Delete(k8(boundary)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	put(boundary+1, "fresh")

	if _, err := db.Get(k8(boundary)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get tombstoned key: %v, want ErrNotFound", err)
	}

	kvs, err := db.Scan(k8(boundary-1), 10)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	want := []struct {
		k uint64
		v string
	}{
		{boundary - 1, "left"},
		{boundary + 1, "fresh"},
		{boundary + 2, "lsmOnly"},
	}
	if len(kvs) != len(want) {
		var got []string
		for _, kv := range kvs {
			got = append(got, fmt.Sprintf("%x=%q", kv.Key, kv.Value))
		}
		t.Fatalf("scan across boundary returned %d pairs %v, want %d", len(kvs), got, len(want))
	}
	for i, w := range want {
		if !bytes.Equal(kvs[i].Key, k8(w.k)) || string(kvs[i].Value) != w.v {
			t.Fatalf("scan[%d] = %x=%q, want %x=%q", i, kvs[i].Key, kvs[i].Value, k8(w.k), w.v)
		}
	}
}
