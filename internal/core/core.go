package core
