package core

import (
	"time"
)

// Session-consistency support: follower reads gated on replication
// progress.
//
// The readable sequence is the highest replication position whose writes
// are fully visible to readers. On a primary every committed write is
// readable the moment WriteBatch returns, so the readable sequence is
// simply the allocation counter. On a follower it advances only after an
// ApplyReplicated entry (or the terminal snapshot-bootstrap stamp) has
// fully applied — never mid-apply — so a reader holding the apply lock in
// shared mode cannot observe state newer than the token it samples.
//
// The serving layer gates a session read carrying minSeq on
// WaitReadable(minSeq, ...) and answers it with the token from the
// matching *Session read, which the client folds into its session state:
// read-your-writes because a session's writes return their committed
// sequence, monotonic reads because the token only grows.

// ReadableSeq returns the highest sequence whose effects are visible to
// readers on this node: the allocation counter on a primary, the fully
// applied replication position on a follower.
func (db *DB) ReadableSeq() uint64 {
	if db.follower.Load() {
		return db.readSeq.Load()
	}
	return db.seq.Load()
}

// advanceReadSeq lifts the readable position to at least s and wakes every
// WaitReadable waiter when it advanced.
func (db *DB) advanceReadSeq(s uint64) {
	for {
		cur := db.readSeq.Load()
		if cur >= s {
			return
		}
		if db.readSeq.CompareAndSwap(cur, s) {
			break
		}
	}
	db.readMu.Lock()
	ch := db.readCh
	db.readCh = make(chan struct{})
	db.readMu.Unlock()
	close(ch)
}

// WaitReadable blocks until the readable position reaches min, the timeout
// elapses, or abort closes, and reports whether the position was reached.
// Promotion is also observed: a follower promoted mid-wait re-evaluates
// against its (now authoritative) allocation counter on the next advance or
// timeout tick. Callers that must not block (the server's drainer) park a
// goroutine on this instead.
func (db *DB) WaitReadable(min uint64, timeout time.Duration, abort <-chan struct{}) bool {
	if db.ReadableSeq() >= min {
		return true
	}
	if timeout <= 0 {
		return false
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		db.readMu.Lock()
		ch := db.readCh
		db.readMu.Unlock()
		// Re-check under a fresh channel: an advance between the first
		// check and the subscription would otherwise be missed.
		if db.ReadableSeq() >= min {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return db.ReadableSeq() >= min
		case <-abort:
			return db.ReadableSeq() >= min
		}
	}
}

// GetSession is Get plus the session token: it returns the node's readable
// sequence sampled such that no observed state can be newer than the token.
// A missing key returns ErrNotFound with a valid token.
func (db *DB) GetSession(key []byte) (value []byte, appliedSeq uint64, err error) {
	db.applyRW.RLock()
	defer db.applyRW.RUnlock()
	value, err = db.Get(key)
	return value, db.ReadableSeq(), err
}

// MultiGetSession is MultiGet plus the session token.
func (db *DB) MultiGetSession(keyList [][]byte) (vals [][]byte, appliedSeq uint64, err error) {
	db.applyRW.RLock()
	defer db.applyRW.RUnlock()
	vals, err = db.MultiGet(keyList)
	return vals, db.ReadableSeq(), err
}

// ScanSession is Scan plus the session token.
func (db *DB) ScanSession(start []byte, limit int) (kvs []KV, appliedSeq uint64, err error) {
	db.applyRW.RLock()
	defer db.applyRW.RUnlock()
	kvs, err = db.Scan(start, limit)
	return kvs, db.ReadableSeq(), err
}
