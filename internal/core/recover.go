package core

import (
	"fmt"
	"math"

	"hyperdb/internal/cache"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
	"hyperdb/internal/lsm"
	"hyperdb/internal/merkle"
	"hyperdb/internal/zone"
)

// Recover reassembles a DB from devices carrying a previous instance's
// persistent state (after a crash or clean Close). The performance tier
// recovers KVell-style by scanning slot files and keeping the newest
// checksummed version per key; the capacity tier reopens its self-describing
// semi-SSTables. The hotness trackers restart cold — access history is
// ephemeral by design (§3.3), so objects re-earn hot status.
func Recover(opts Options) (*DB, error) {
	if opts.NVMe == nil || opts.SATA == nil {
		return nil, fmt.Errorf("hyperdb: both NVMe and SATA devices are required")
	}
	opts.fill()
	db := &DB{
		opts:   opts,
		cache:  cache.NewLRU(opts.CacheBytes, nil),
		stop:   make(chan struct{}),
		readCh: make(chan struct{}),
	}
	db.follower.Store(opts.Follower)
	if opts.AntiEntropy {
		db.tree = merkle.New(merkle.DefaultBits)
	}

	p := uint64(opts.Partitions)
	width := math.MaxUint64/p + 1
	var metaDev *device.Device
	if opts.MirrorIndexToNVMe {
		metaDev = opts.NVMe
	}
	hotCap := int64(float64(opts.NVMe.Capacity()) / float64(p) * opts.HotZoneFraction)
	var maxSeq uint64
	for i := 0; i < opts.Partitions; i++ {
		lo := uint64(i) * width
		hi := lo + width
		if i == opts.Partitions-1 {
			hi = math.MaxUint64
		}
		zm, zseq, err := zone.Recover(zone.Config{
			Dev:         opts.NVMe,
			Partition:   i,
			BatchSize:   opts.MigrationBatch,
			HotCapacity: hotCap,
			PageCache:   db.cache,
			// A quarter of the DRAM budget, split across partitions, goes
			// to the zone tier's per-key value cache.
			ValueCacheBytes: opts.CacheBytes / int64(4*opts.Partitions),
		})
		if err != nil {
			return nil, fmt.Errorf("hyperdb: recover partition %d zones: %w", i, err)
		}
		tree, tseq, err := lsm.Recover(lsm.Options{
			Dev:           opts.SATA,
			Partition:     i,
			KeyLo:         lo,
			KeyHi:         hi,
			Ratio:         opts.Ratio,
			L1Segments:    opts.L1Segments,
			FileSize:      opts.MigrationBatch,
			MaxLevels:     opts.MaxLevels,
			Depth:         opts.CompactionDepth,
			TClean:        opts.TClean,
			SpaceAmpLimit: opts.SpaceAmpLimit,
			PowerK:        opts.PowerK,
			PageCache:     db.cache,
			MetaBackup:    metaDev,
			Compress:      opts.CompressPolicy,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			return nil, fmt.Errorf("hyperdb: recover partition %d tree: %w", i, err)
		}
		if zseq > maxSeq {
			maxSeq = zseq
		}
		if tseq > maxSeq {
			maxSeq = tseq
		}
		part := &partition{
			id: i, keyLo: lo, keyHi: hi,
			zones:    zm,
			tree:     tree,
			tracker:  hotness.NewTracker(opts.Tracker),
			promoCh:  make(chan *promotion, opts.PromoteQueue),
			wakeMig:  make(chan struct{}, 1),
			wakeComp: make(chan struct{}, 1),
		}
		part.promoSlots.Store(int64(opts.PromoteQueue))
		db.parts = append(db.parts, part)
	}
	db.seq.Store(maxSeq)
	// A recovered follower must not accept replicated entries at or below
	// the sequences its devices already hold; a snapshot bootstrap resets
	// this position explicitly. Everything recovered is fully applied, so
	// the readable position starts there too.
	db.replApplied.Store(maxSeq)
	db.readSeq.Store(maxSeq)
	if !opts.DisableBackground {
		for _, part := range db.parts {
			db.wg.Add(2)
			go db.migrationWorker(part)
			go db.compactionWorker(part)
		}
	}
	return db, nil
}
