package core

import (
	"fmt"
	"strings"

	"hyperdb/internal/hotness"
	"hyperdb/internal/stats"
	"hyperdb/internal/zone"
)

// LevelStats describes one LSM level aggregated across partitions.
type LevelStats struct {
	Level        int
	Tables       int
	LiveBytes    int64
	FileBytes    int64
	CompactReads uint64
	CompactWrite uint64
	Compactions  uint64
	FullRewrites uint64
	// RawBytes/StoredBytes are uncompressed vs on-device sizes of every
	// data block written at the level; raw/stored is the compression ratio
	// and raw-stored is the compaction traffic the codec saved.
	RawBytes    uint64
	StoredBytes uint64
}

// Stats is a point-in-time view of the engine for the experiment harness.
type Stats struct {
	// Device accounting.
	NVMe stats.Snapshot
	SATA stats.Snapshot
	// Capacity usage.
	NVMeUsed     int64
	NVMeCapacity int64
	SATAUsed     int64
	// Zone tier aggregates.
	Zone zone.Stats
	// Per-level LSM aggregates (index 0 = L1).
	Levels []LevelStats
	// DRAM cache.
	CacheHits   uint64
	CacheMisses uint64
	// Promotions dropped on queue overflow.
	PromotionsDropped uint64
	// MergeOps counts counter merges resolved through the batch path.
	MergeOps uint64
	// SpaceAmp is file bytes over live bytes in the capacity tier.
	SpaceAmp float64
	// Trackers holds each partition's hotness-discriminator health snapshot
	// (index = partition).
	Trackers []hotness.Stats
}

// Stats snapshots the engine.
func (db *DB) Stats() Stats {
	s := Stats{
		NVMe:         db.opts.NVMe.Counters().Snapshot(),
		SATA:         db.opts.SATA.Counters().Snapshot(),
		NVMeUsed:     db.opts.NVMe.Used(),
		NVMeCapacity: db.opts.NVMe.Capacity(),
		SATAUsed:     db.opts.SATA.Used(),
	}
	s.CacheHits, s.CacheMisses = db.cache.Stats()
	s.MergeOps = db.mergeOps.Load()

	maxLevels := db.opts.MaxLevels
	s.Levels = make([]LevelStats, maxLevels)
	var live, file int64
	for _, p := range db.parts {
		zs := p.zones.Stats()
		s.Zone.Objects += zs.Objects
		s.Zone.PayloadBytes += zs.PayloadBytes
		s.Zone.Zones += zs.Zones
		s.Zone.Migrations += zs.Migrations
		s.Zone.MigratedObjects += zs.MigratedObjects
		s.Zone.MigrationPageReads += zs.MigrationPageReads
		s.Zone.InPlaceUpdates += zs.InPlaceUpdates
		s.Zone.Relocations += zs.Relocations
		s.Zone.HotEvictDropped += zs.HotEvictDropped
		s.Zone.HotEvictRelocated += zs.HotEvictRelocated
		s.PromotionsDropped += p.promoDrop.Load()
		s.Trackers = append(s.Trackers, p.tracker.Stats())
		for l := 1; l <= maxLevels; l++ {
			ls := &s.Levels[l-1]
			ls.Level = l
			ls.Tables += p.tree.TableCount(l)
			lv, fl := p.tree.LevelBytes(l)
			ls.LiveBytes += lv
			ls.FileBytes += fl
			live += lv
			file += fl
			tr := p.tree.Traffic(l)
			ls.CompactReads += tr.ReadBytes.Load()
			ls.CompactWrite += tr.WriteBytes.Load()
			ls.Compactions += tr.Compactions.Load()
			ls.FullRewrites += tr.FullRewrites.Load()
			ls.RawBytes += tr.RawBytes.Load()
			ls.StoredBytes += tr.StoredBytes.Load()
		}
	}
	if live > 0 {
		s.SpaceAmp = float64(file) / float64(live)
	} else {
		s.SpaceAmp = 1
	}
	return s
}

// String renders a multi-line summary for the hyperctl CLI.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NVMe: used=%s/%s  traffic{%s}\n",
		stats.FormatBytes(uint64(s.NVMeUsed)), stats.FormatBytes(uint64(s.NVMeCapacity)), s.NVMe)
	fmt.Fprintf(&b, "SATA: used=%s  traffic{%s}\n",
		stats.FormatBytes(uint64(s.SATAUsed)), s.SATA)
	fmt.Fprintf(&b, "Zone tier: objects=%d zones=%d payload=%s migrations=%d (objects=%d, pageReads=%d) inPlace=%d\n",
		s.Zone.Objects, s.Zone.Zones, stats.FormatBytes(uint64(s.Zone.PayloadBytes)),
		s.Zone.Migrations, s.Zone.MigratedObjects, s.Zone.MigrationPageReads, s.Zone.InPlaceUpdates)
	for _, l := range s.Levels {
		if l.Tables == 0 && l.CompactWrite == 0 {
			continue
		}
		fmt.Fprintf(&b, "L%d: tables=%d live=%s file=%s compactIO{r=%s w=%s} compactions=%d rewrites=%d",
			l.Level, l.Tables, stats.FormatBytes(uint64(l.LiveBytes)), stats.FormatBytes(uint64(l.FileBytes)),
			stats.FormatBytes(l.CompactReads), stats.FormatBytes(l.CompactWrite), l.Compactions, l.FullRewrites)
		if l.StoredBytes > 0 && l.RawBytes != l.StoredBytes {
			fmt.Fprintf(&b, " compress{raw=%s stored=%s ratio=%.2f}",
				stats.FormatBytes(l.RawBytes), stats.FormatBytes(l.StoredBytes),
				float64(l.RawBytes)/float64(l.StoredBytes))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "cache: hits=%d misses=%d  spaceAmp=%.2f promoDropped=%d mergeOps=%d\n",
		s.CacheHits, s.CacheMisses, s.SpaceAmp, s.PromotionsDropped, s.MergeOps)
	if len(s.Trackers) > 0 {
		var agg hotness.Stats
		agg.Mode = s.Trackers[0].Mode
		var mem int64
		for _, t := range s.Trackers {
			agg.Seals += t.Seals
			agg.Records += t.Records
			agg.HotHits += t.HotHits
			if t.CascadeDepth > agg.CascadeDepth {
				agg.CascadeDepth = t.CascadeDepth
			}
			mem += t.MemoryBytes
		}
		fmt.Fprintf(&b, "hotness[%s]: mem=%s seals=%d depth=%d records=%d hot=%d (%.2f%%)\n",
			agg.Mode, stats.FormatBytes(uint64(mem)), agg.Seals, agg.CascadeDepth,
			agg.Records, agg.HotHits, 100*agg.HotRate())
	}
	return b.String()
}
