// Package core implements the HyperDB engine (§3): a shared-nothing array
// of partitions, each owning a zone group on the performance tier, a
// semi-SSTable LSM on the capacity tier, a cascading-discriminator hotness
// tracker, and background migration/compaction workers. Writes land
// directly in NVMe zone slots (durable in-place, KVell-style — no WAL);
// reads fall from the DRAM page cache through the zone index to the
// capacity tier, promoting hot objects back up.
package core

import (
	"math"
	"time"

	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/hotness"
)

// Tee observes every committed foreground write for replication. Append is
// called under the engine's replication mutex immediately after the batch's
// sequence block is allocated — so calls arrive in strictly increasing base
// order — and before the batch is applied. Commit resolves the entry once
// the apply finishes; with ok=true it may block until downstream followers
// acknowledge (synchronous replication), with ok=false the entry is dropped
// (the batch failed and was never acknowledged to the client).
type Tee interface {
	Append(base uint64, ops []BatchOp) (token uint64)
	Commit(token uint64, ok bool)
}

// Options configures a DB.
type Options struct {
	// NVMe is the performance-tier device (required).
	NVMe *device.Device
	// SATA is the capacity-tier device (required).
	SATA *device.Device
	// Partitions is the shared-nothing partition count (paper: 8).
	Partitions int
	// CacheBytes is the shared DRAM page cache (paper: 64 MiB).
	CacheBytes int64
	// MigrationBatch is B: zone capacity == semi-SSTable file size (§3.6).
	MigrationBatch int64
	// HighWatermark starts demotion when NVMe usage crosses it.
	HighWatermark float64
	// LowWatermark stops demotion once NVMe usage falls below it.
	LowWatermark float64
	// HotZoneFraction is the share of a partition's NVMe budget the hot
	// zone may hold before eviction.
	HotZoneFraction float64
	// Tracker configures the per-partition cascading discriminator;
	// WindowCapacity 0 derives it from the NVMe object budget (§3.3).
	Tracker hotness.Config
	// Ratio is the LSM size ratio T (paper: 10).
	Ratio int
	// L1Segments is the file count at L1 per partition.
	L1Segments int
	// MaxLevels bounds LSM depth.
	MaxLevels int
	// CompactionDepth is k, the preemptive chase depth.
	CompactionDepth int
	// TClean is the full-compaction dirty threshold (paper: 0.5).
	TClean float64
	// SpaceAmpLimit flips victim selection to dirtiest-first (paper: 1.5).
	SpaceAmpLimit float64
	// PowerK is the victim sampling width (paper: 8).
	PowerK int
	// MirrorIndexToNVMe keeps semi-SSTable index backups on the
	// performance tier (§3.1). On by default via Open.
	MirrorIndexToNVMe bool
	// DisableBackground turns off the per-partition workers; tests and
	// benchmarks then drive migration/compaction explicitly.
	DisableBackground bool
	// BackgroundInterval is the idle poll period of the workers.
	BackgroundInterval time.Duration
	// PromoteQueue bounds pending promotions per partition (the in-memory
	// object cache of §3.5); overflow drops promotions best-effort.
	PromoteQueue int
	// AvgObjectSize seeds the tracker window estimate before data arrives.
	AvgObjectSize int
	// ScanPrefetch enables the range-scan page prefetcher — the
	// optimisation §4.2 leaves as future work. Off by default so YCSB-E
	// reproduces the paper's "no improvement" result; the ablation measures
	// what it buys.
	ScanPrefetch bool
	// AntiEntropy maintains an incremental Merkle tree from every apply
	// path, enabling O(divergence) replica rejoin (package merkle + repl).
	AntiEntropy bool
	// CompressPolicy compresses capacity-tier data blocks from MinLevel
	// down; the zone tier (NVMe slots) always stays raw — cold data pays the
	// CPU, the hot path does not. Zero value disables compression.
	CompressPolicy compress.Policy
	// Follower opens the DB in replica mode: foreground writes are rejected
	// with ErrFollower and reads never enqueue promotions (promotion would
	// mint local sequences that could collide with the primary's). Writes
	// arrive only through ApplyReplicated/ApplySnapshotChunk until Promote
	// flips the node to primary.
	Follower bool
	// Tee, when non-nil, receives every committed foreground write (and, on
	// followers, every replicated apply) for log shipping to replicas.
	Tee Tee
}

func (o *Options) fill() {
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.MigrationBatch <= 0 {
		o.MigrationBatch = 2 << 20
	}
	if o.HighWatermark <= 0 || o.HighWatermark > 1 {
		o.HighWatermark = 0.85
	}
	if o.LowWatermark <= 0 || o.LowWatermark >= o.HighWatermark {
		o.LowWatermark = o.HighWatermark - 0.15
		if o.LowWatermark <= 0 {
			o.LowWatermark = o.HighWatermark / 2
		}
	}
	if o.HotZoneFraction <= 0 || o.HotZoneFraction >= 1 {
		o.HotZoneFraction = 0.25
	}
	if o.Ratio <= 1 {
		o.Ratio = 10
	}
	if o.L1Segments <= 0 {
		o.L1Segments = 2
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 4
	}
	if o.CompactionDepth <= 0 {
		o.CompactionDepth = 2
	}
	if o.TClean <= 0 {
		o.TClean = 0.5
	}
	if o.SpaceAmpLimit <= 0 {
		o.SpaceAmpLimit = 1.5
	}
	if o.PowerK <= 0 {
		o.PowerK = 8
	}
	if o.BackgroundInterval <= 0 {
		o.BackgroundInterval = 2 * time.Millisecond
	}
	if o.PromoteQueue <= 0 {
		o.PromoteQueue = 1024
	}
	if o.AvgObjectSize <= 0 {
		o.AvgObjectSize = 160
	}
	if o.Tracker.WindowCapacity <= 0 {
		// §3.6 sizes the filters from "the estimated number of objects that
		// the partition can store"; with up to MaxFilters sealed windows in
		// the cascade, each window takes an equal share, so the cascade
		// collectively spans the partition's object budget and windows turn
		// over fast enough for hot classification to engage.
		//
		// Only MaxFilters is needed here; the full Tracker.Fill() runs inside
		// NewTracker *after* this derivation, so mode-dependent defaults (the
		// sketch width in particular) see the real WindowCapacity rather than
		// a placeholder.
		mf := o.Tracker.MaxFilters
		if mf <= 0 {
			mf = 4
		}
		perPart := int64(1 << 24)
		if o.NVMe != nil && o.NVMe.Capacity() > 0 {
			perPart = o.NVMe.Capacity() / int64(o.Partitions)
		}
		w := perPart / int64(o.AvgObjectSize) / int64(mf)
		if w < 512 {
			w = 512
		}
		if w > math.MaxInt32 {
			w = math.MaxInt32
		}
		o.Tracker.WindowCapacity = int(w)
	}
}
