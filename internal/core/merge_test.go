package core

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"hyperdb/internal/device"
)

func TestIncrBasic(t *testing.T) {
	db := openCore(t, 64<<20, false)
	k := k8(101)
	v, err := db.Incr(k, 5)
	if err != nil || v != 5 {
		t.Fatalf("first incr: %d %v, want 5", v, err)
	}
	v, err = db.Incr(k, -2)
	if err != nil || v != 3 {
		t.Fatalf("second incr: %d %v, want 3", v, err)
	}
	// The stored value is the canonical 8-byte encoding, readable via Get.
	raw, err := db.Get(k)
	if err != nil || !bytes.Equal(raw, EncodeCounter(3)) {
		t.Fatalf("get: %x %v, want %x", raw, err, EncodeCounter(3))
	}
	// And via MultiGet.
	vals, err := db.MultiGet([][]byte{k})
	if err != nil || len(vals) != 1 || !bytes.Equal(vals[0], EncodeCounter(3)) {
		t.Fatalf("multiget: %x %v", vals, err)
	}
	if got := db.Stats().MergeOps; got != 2 {
		t.Fatalf("MergeOps = %d, want 2", got)
	}
}

func TestIncrAfterDeleteCountsFromZero(t *testing.T) {
	db := openCore(t, 64<<20, false)
	k := k8(102)
	if _, err := db.Incr(k, 41); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(k); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Incr(k, 1); err != nil || v != 1 {
		t.Fatalf("incr after delete: %d %v, want 1", v, err)
	}
}

func TestIncrNonCounterValue(t *testing.T) {
	db := openCore(t, 64<<20, false)
	k := k8(103)
	if err := db.Put(k, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Incr(k, 1); !errors.Is(err, ErrNotCounter) {
		t.Fatalf("incr on text value: %v, want ErrNotCounter", err)
	}
	// The failed merge must not have clobbered the value.
	if v, err := db.Get(k); err != nil || string(v) != "hello" {
		t.Fatalf("value after failed merge: %q %v", v, err)
	}
}

func TestMergeBatchInOrderResolution(t *testing.T) {
	db := openCore(t, 64<<20, false)
	k := k8(104)
	// put → merge sees the put; merge → merge chains; delete → merge
	// restarts from zero; merge → put is overwritten by the put.
	ops := []BatchOp{
		{Key: k, Value: EncodeCounter(100)},
		{Key: k, Merge: true, Delta: 10}, // 110
		{Key: k, Merge: true, Delta: -1}, // 109
		{Key: k, Delete: true},
		{Key: k, Merge: true, Delta: 7}, // 7
	}
	if _, err := db.WriteBatchSeq(ops); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Incr(k, 0); err != nil || v != 7 {
		t.Fatalf("final value: %d %v, want 7", v, err)
	}
	// The engine rewrote each merge op's Value to its post-merge encoding.
	if !bytes.Equal(ops[1].Value, EncodeCounter(110)) || !bytes.Equal(ops[4].Value, EncodeCounter(7)) {
		t.Fatalf("resolved values not written back: %x %x", ops[1].Value, ops[4].Value)
	}
}

func TestMergeDeleteExclusive(t *testing.T) {
	db := openCore(t, 64<<20, false)
	if _, err := db.WriteBatchSeq([]BatchOp{{Key: k8(1), Merge: true, Delete: true}}); err == nil {
		t.Fatal("merge+delete op accepted")
	}
}

func TestIncrSaturation(t *testing.T) {
	db := openCore(t, 64<<20, false)
	k := k8(105)
	if v, err := db.Incr(k, math.MaxInt64); err != nil || v != math.MaxInt64 {
		t.Fatalf("max: %d %v", v, err)
	}
	if v, err := db.Incr(k, 1); err != nil || v != math.MaxInt64 {
		t.Fatalf("saturating add above max: %d %v", v, err)
	}
	if v, err := db.Incr(k, math.MinInt64); err != nil || v != -1 {
		t.Fatalf("back down: %d %v", v, err)
	}
	k2 := k8(106)
	if v, err := db.Incr(k2, math.MinInt64); err != nil || v != math.MinInt64 {
		t.Fatalf("min: %d %v", v, err)
	}
	if v, err := db.Incr(k2, -1); err != nil || v != math.MinInt64 {
		t.Fatalf("saturating add below min: %d %v", v, err)
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{1, 2, 3},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{math.MinInt64, -1, math.MinInt64},
		{math.MinInt64, math.MinInt64, math.MinInt64},
		{math.MaxInt64, math.MinInt64, -1},
		{-5, 3, -2},
	}
	for _, c := range cases {
		if got := SatAdd(c.a, c.b); got != c.want {
			t.Errorf("SatAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIncrResolvesLSMBase(t *testing.T) {
	db := openCore(t, 64<<20, false)
	k := k8(107)
	if _, err := db.Incr(k, 77); err != nil {
		t.Fatal(err)
	}
	// Demote the key's zone so the counter lives only in the capacity tier,
	// then merge against the LSM base.
	p := db.partFor(k)
	for {
		z := p.zones.PickDemotionVictim()
		if z == nil {
			break
		}
		if err := db.demoteZone(p, z); err != nil {
			t.Fatal(err)
		}
	}
	if v, _, _, found, err := p.zones.Get(k, device.Fg); err != nil || found {
		t.Fatalf("key still in zone tier: %x found=%v err=%v", v, found, err)
	}
	if v, err := db.Incr(k, 3); err != nil || v != 80 {
		t.Fatalf("incr against LSM base: %d %v, want 80", v, err)
	}
}

func TestIncrConcurrentExact(t *testing.T) {
	db := openCore(t, 64<<20, false)
	const goroutines, each = 8, 200
	k := k8(108)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := db.Incr(k, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, err := db.Incr(k, 0); err != nil || v != goroutines*each {
		t.Fatalf("final counter: %d %v, want %d", v, err, goroutines*each)
	}
}

func TestFollowerAppliesMergeDeltas(t *testing.T) {
	// A follower receiving unresolved deltas must converge to the same
	// counter values as the primary that folded them.
	fol := openCoreWith(t, func(o *Options) { o.Follower = true })
	k := k8(109)
	if err := fol.ApplyReplicated([]BatchOp{{Key: k, Merge: true, Delta: 5}}, 10); err != nil {
		t.Fatal(err)
	}
	if err := fol.ApplyReplicated([]BatchOp{
		{Key: k, Merge: true, Delta: -2},
		{Key: k8(110), Value: []byte("x")},
		{Key: k, Merge: true, Delta: 100},
	}, 20); err != nil {
		t.Fatal(err)
	}
	if v, err := fol.Get(k); err != nil || !bytes.Equal(v, EncodeCounter(103)) {
		t.Fatalf("follower counter: %x %v, want %x", v, err, EncodeCounter(103))
	}
}
