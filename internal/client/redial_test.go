package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// refusedAddr returns an address that actively refuses connections: bind a
// listener to grab a free port, then close it before anyone dials.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDialRetriesWithBackoffAgainstRefusingListener(t *testing.T) {
	addr := refusedAddr(t)
	var attempts atomic.Int64
	t0 := time.Now()
	_, err := Dial(Options{
		Addr:           addr,
		RedialAttempts: 3,
		RedialBackoff:  10 * time.Millisecond,
		DialFunc: func(a string, timeout time.Duration) (net.Conn, error) {
			attempts.Add(1)
			return net.DialTimeout("tcp", a, timeout)
		},
	})
	if err == nil {
		t.Fatal("dial against refusing listener succeeded")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("dial attempts = %d, want 3", got)
	}
	// Two backoff sleeps precede attempts 2 and 3: at least 10/2 + 20/2 ms.
	if elapsed := time.Since(t0); elapsed < 15*time.Millisecond {
		t.Fatalf("dial returned after %v; backoff sleeps were skipped", elapsed)
	}
}

func TestDialSingleAttemptFailsFast(t *testing.T) {
	addr := refusedAddr(t)
	var attempts atomic.Int64
	_, err := Dial(Options{
		Addr:           addr,
		RedialAttempts: 1,
		DialFunc: func(a string, timeout time.Duration) (net.Conn, error) {
			attempts.Add(1)
			return net.DialTimeout("tcp", a, timeout)
		},
	})
	if err == nil {
		t.Fatal("dial against refusing listener succeeded")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("dial attempts = %d, want 1", got)
	}
}

func TestRedialRecoversWhenServerReturns(t *testing.T) {
	// First attempt refused, second accepted: the backoff loop inside one
	// conn() call must recover without surfacing an error to the caller.
	addr := refusedAddr(t)
	var attempts atomic.Int64
	fail := errors.New("synthetic refusal")
	var ln net.Listener
	c, err := Dial(Options{
		Addr:           addr,
		RedialAttempts: 4,
		RedialBackoff:  5 * time.Millisecond,
		DialFunc: func(a string, timeout time.Duration) (net.Conn, error) {
			if attempts.Add(1) == 1 {
				return nil, fail
			}
			if ln == nil {
				var lerr error
				if ln, lerr = net.Listen("tcp", "127.0.0.1:0"); lerr != nil {
					return nil, lerr
				}
				go func() {
					// Absorb the connection; Dial only needs the TCP accept.
					nc, aerr := ln.Accept()
					if aerr == nil {
						defer nc.Close()
						time.Sleep(100 * time.Millisecond)
					}
				}()
			}
			return net.DialTimeout("tcp", ln.Addr().String(), timeout)
		},
	})
	if err != nil {
		t.Fatalf("dial did not recover: %v", err)
	}
	defer c.Close()
	if ln != nil {
		defer ln.Close()
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("dial attempts = %d, want 2", got)
	}
}

func TestBackoffCapsAndJitters(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	prevBase := time.Duration(0)
	for i := 0; i < 10; i++ {
		d := b.Next()
		base := 10 * time.Millisecond << i
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, base/2, base)
		}
		if base == 80*time.Millisecond && prevBase == base {
			// Capped: stays within the cap window forever.
			if d > 80*time.Millisecond {
				t.Fatalf("delay %v exceeds cap", d)
			}
		}
		prevBase = base
	}
	b.Reset()
	if d := b.Next(); d > 10*time.Millisecond {
		t.Fatalf("post-reset delay %v did not restart at Initial", d)
	}
}
