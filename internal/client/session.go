package client

import (
	"errors"
	"fmt"
	"sync/atomic"

	"hyperdb/internal/wire"
)

// ErrNotReady is returned when a session read's token is ahead of every
// node willing to serve it: the contacted follower timed out waiting for
// replication to catch up, and (under the bounded policy) the primary
// fallback also refused — which only happens after a failover that lost
// acknowledged writes the session had observed.
var ErrNotReady = errors.New("client: not ready (replica behind session token)")

// ReadPolicy selects where a Session routes its reads.
type ReadPolicy int

const (
	// ReadPrimary sends every read to the primary: always current, no
	// follower offload. Session tokens still update (they make the policy
	// switchable mid-session).
	ReadPrimary ReadPolicy = iota
	// ReadBounded spreads reads round-robin across the whole group
	// (followers and primary), follower reads carrying the session token; a
	// follower answers once it has applied that position, or refuses after
	// its bounded wait, in which case the read falls back to the primary.
	// This keeps read-your-writes and monotonic reads while scaling read
	// capacity with the group.
	ReadBounded
	// ReadAny spreads reads across the group with no freshness requirement
	// on followers: maximum offload, eventual consistency only.
	ReadAny
)

// ParseReadPolicy maps the -read-policy flag values to a ReadPolicy.
func ParseReadPolicy(s string) (ReadPolicy, error) {
	switch s {
	case "primary":
		return ReadPrimary, nil
	case "bounded":
		return ReadBounded, nil
	case "any":
		return ReadAny, nil
	}
	return 0, fmt.Errorf("client: unknown read policy %q (want primary, bounded or any)", s)
}

func (p ReadPolicy) String() string {
	switch p {
	case ReadPrimary:
		return "primary"
	case ReadBounded:
		return "bounded"
	case ReadAny:
		return "any"
	}
	return fmt.Sprintf("ReadPolicy(%d)", int(p))
}

// Session is one logical client with session consistency: read-your-writes
// and monotonic reads across the whole replication group. It tracks a
// token — the highest sequence it has written or observed — folds every v2
// response into it, and sends it as the minSeq gate on follower reads.
// Writes always go to the primary. Safe for concurrent use, though the
// session guarantee is per causal chain: concurrent calls on one Session
// order only through the shared token.
type Session struct {
	primary   *Client
	followers []*Client
	policy    ReadPolicy

	token     atomic.Uint64
	rr        atomic.Uint64 // round-robin cursor over followers
	fallbacks atomic.Uint64 // follower refusals retried on the primary
	notReady  atomic.Uint64 // NOT_READY responses received
	lastNode  atomic.Int64  // -1 primary, else follower index
}

// NewSession builds a Session over a primary and optional follower
// clients. With no followers every policy degenerates to ReadPrimary.
func NewSession(primary *Client, followers []*Client, policy ReadPolicy) *Session {
	s := &Session{primary: primary, followers: followers, policy: policy}
	s.lastNode.Store(-1)
	return s
}

// Token returns the session's current token: the highest sequence it has
// written or observed.
func (s *Session) Token() uint64 { return s.token.Load() }

// SeedToken lifts the session token to at least seq — used to resume a
// session (e.g. across hyperctl invocations) from an externally carried
// token.
func (s *Session) SeedToken(seq uint64) { s.observe(seq) }

// Fallbacks returns how many reads fell back to the primary after a
// follower refused or failed.
func (s *Session) Fallbacks() uint64 { return s.fallbacks.Load() }

// NotReady returns how many NOT_READY refusals the session received.
func (s *Session) NotReady() uint64 { return s.notReady.Load() }

// LastNode names the node that served the session's most recent read:
// "primary", or "follower[i]".
func (s *Session) LastNode() string {
	if i := s.lastNode.Load(); i >= 0 {
		return fmt.Sprintf("follower[%d]", i)
	}
	return "primary"
}

func (s *Session) observe(seq uint64) {
	for {
		cur := s.token.Load()
		if cur >= seq || s.token.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Put writes through the primary and folds the committed sequence into the
// session token, so a follower read issued next observes this write.
func (s *Session) Put(key, value []byte) error {
	seq, err := s.primary.PutSeq(key, value)
	if err != nil {
		return err
	}
	s.observe(seq)
	return nil
}

// Delete removes key through the primary, updating the session token.
func (s *Session) Delete(key []byte) error {
	seq, err := s.primary.DeleteSeq(key)
	if err != nil {
		return err
	}
	s.observe(seq)
	return nil
}

// Incr adds delta to the counter at key through the primary, returning the
// post-merge value and updating the session token so a follower read issued
// next observes the new count.
func (s *Session) Incr(key []byte, delta int64) (int64, error) {
	v, seq, err := s.primary.IncrSeq(key, delta)
	if err != nil {
		return 0, err
	}
	s.observe(seq)
	return v, nil
}

// WriteBatch applies ops through the primary, updating the session token.
func (s *Session) WriteBatch(ops []wire.BatchOp) error {
	seq, err := s.primary.WriteBatchSeq(ops)
	if err != nil {
		return err
	}
	s.observe(seq)
	return nil
}

// readTarget picks the next read-serving node round-robin across the whole
// group — every follower plus the primary, which is always current and
// would otherwise sit idle for reads. It returns nil when the rotation
// lands on the primary (or the policy pins reads there): the caller then
// reads the primary deliberately, with no gate.
func (s *Session) readTarget() (*Client, int) {
	if s.policy == ReadPrimary || len(s.followers) == 0 {
		return nil, -1
	}
	i := int((s.rr.Add(1) - 1) % uint64(len(s.followers)+1))
	if i == len(s.followers) {
		return nil, -1
	}
	return s.followers[i], i
}

// minSeq is the gate a follower read carries: the session token under the
// bounded policy, zero (no gate) under any.
func (s *Session) minSeq() uint64 {
	if s.policy == ReadBounded {
		return s.token.Load()
	}
	return 0
}

// fallthroughToPrimary reports whether a follower read error should retry
// on the primary (refusals and transport failures) rather than surface.
func fallthroughToPrimary(err error) bool {
	return err != nil && !errors.Is(err, ErrNotFound)
}

// Get reads key with the session's policy: follower first (gated per
// policy), primary fallback on refusal or failure. A fallback keeps the
// token as its minSeq — after a failover that lost the session's observed
// writes, the new primary refuses too rather than serve a stale value, and
// Get returns ErrNotReady.
func (s *Session) Get(key []byte) ([]byte, error) {
	var gate uint64 // deliberate primary reads carry no gate
	if f, i := s.readTarget(); f != nil {
		v, seq, err := f.GetSeq(key, s.minSeq())
		if !fallthroughToPrimary(err) {
			s.observe(seq)
			s.lastNode.Store(int64(i))
			return v, err
		}
		s.noteFallback(err)
		gate = s.primaryMinSeq()
	}
	v, seq, err := s.primary.GetSeq(key, gate)
	if err == nil || errors.Is(err, ErrNotFound) {
		s.observe(seq)
		s.lastNode.Store(-1)
	}
	return v, err
}

// MultiGet is Get for many keys; absent keys yield nil entries.
func (s *Session) MultiGet(keys [][]byte) ([][]byte, error) {
	var gate uint64
	if f, i := s.readTarget(); f != nil {
		vals, seq, err := f.MultiGetSeq(keys, s.minSeq())
		if !fallthroughToPrimary(err) {
			s.observe(seq)
			s.lastNode.Store(int64(i))
			return vals, err
		}
		s.noteFallback(err)
		gate = s.primaryMinSeq()
	}
	vals, seq, err := s.primary.MultiGetSeq(keys, gate)
	if err == nil {
		s.observe(seq)
		s.lastNode.Store(-1)
	}
	return vals, err
}

// Scan reads up to limit pairs with key >= start under the session policy.
func (s *Session) Scan(start []byte, limit int) ([]wire.KV, error) {
	var gate uint64
	if f, i := s.readTarget(); f != nil {
		kvs, seq, err := f.ScanSeq(start, limit, s.minSeq())
		if !fallthroughToPrimary(err) {
			s.observe(seq)
			s.lastNode.Store(int64(i))
			return kvs, err
		}
		s.noteFallback(err)
		gate = s.primaryMinSeq()
	}
	kvs, seq, err := s.primary.ScanSeq(start, limit, gate)
	if err == nil {
		s.observe(seq)
		s.lastNode.Store(-1)
	}
	return kvs, err
}

func (s *Session) noteFallback(err error) {
	s.fallbacks.Add(1)
	if errors.Is(err, ErrNotReady) {
		s.notReady.Add(1)
	}
}

// primaryMinSeq is the gate a primary-routed read carries. A deliberate
// primary read sends zero — the primary is definitionally current for its
// own group, and zero is how the server distinguishes routed reads from
// fallbacks. A bounded-policy session with followers only reaches the
// primary as a fallback, which keeps the token so a primary that lost the
// session's writes (failover without sync acks) refuses instead of
// silently rewinding the session.
func (s *Session) primaryMinSeq() uint64 {
	if s.policy == ReadBounded && len(s.followers) > 0 {
		return s.token.Load()
	}
	return 0
}

// --- v2 (session) calls on Client ---

// PutSeq is Put returning the committed sequence (the write's session
// token).
func (c *Client) PutSeq(key, value []byte) (uint64, error) {
	p, err := c.callOK(wire.OpPutV2, wire.AppendPutReq(nil, key, value))
	if err != nil {
		return 0, err
	}
	return decodeSeq(p)
}

// DeleteSeq is Delete returning the committed sequence.
func (c *Client) DeleteSeq(key []byte) (uint64, error) {
	p, err := c.callOK(wire.OpDelV2, wire.AppendKeyReq(nil, key))
	if err != nil {
		return 0, err
	}
	return decodeSeq(p)
}

// WriteBatchSeq is WriteBatch returning the committed sequence.
func (c *Client) WriteBatchSeq(ops []wire.BatchOp) (uint64, error) {
	p, err := c.callOK(wire.OpBatchV2, wire.AppendBatchReq(nil, ops))
	if err != nil {
		return 0, err
	}
	return decodeSeq(p)
}

// IncrSeq is Incr returning the post-merge value and the committed
// sequence (the merge's session token).
func (c *Client) IncrSeq(key []byte, delta int64) (int64, uint64, error) {
	p, err := c.callOK(wire.OpIncrV2, wire.AppendIncrReq(nil, key, delta))
	if err != nil {
		return 0, 0, err
	}
	seq, v, err := wire.DecodeIncrV2Resp(p)
	if err != nil {
		return 0, 0, fmt.Errorf("client: bad INCR2 response: %w", err)
	}
	return v, seq, nil
}

// GetSeq is the session read: the server answers only once its applied
// position reaches minSeq (or refuses with ErrNotReady after its bounded
// wait). The returned sequence is the serving node's applied position —
// valid on success, ErrNotFound, and ErrNotReady alike.
func (c *Client) GetSeq(key []byte, minSeq uint64) ([]byte, uint64, error) {
	resp, err := c.call(wire.OpGetV2, wire.AppendGetV2Req(nil, key, minSeq))
	if err != nil {
		return nil, 0, err
	}
	switch resp.Status {
	case wire.StatusOK:
		seq, v, err := wire.DecodeGetV2Resp(resp.Payload)
		if err != nil {
			return nil, 0, fmt.Errorf("client: bad GET2 response: %w", err)
		}
		return v, seq, nil
	case wire.StatusNotFound:
		seq, err := decodeSeq(resp.Payload)
		if err != nil {
			return nil, 0, err
		}
		return nil, seq, ErrNotFound
	case wire.StatusNotReady:
		seq, err := decodeSeq(resp.Payload)
		if err != nil {
			return nil, 0, err
		}
		return nil, seq, ErrNotReady
	}
	return nil, 0, statusErr(resp)
}

// MultiGetSeq is the session MultiGet; absent keys yield nil entries.
func (c *Client) MultiGetSeq(keys [][]byte, minSeq uint64) ([][]byte, uint64, error) {
	resp, err := c.call(wire.OpMGetV2, wire.AppendMGetV2Req(nil, keys, minSeq))
	if err != nil {
		return nil, 0, err
	}
	switch resp.Status {
	case wire.StatusOK:
		seq, vals, err := wire.DecodeMGetV2Resp(resp.Payload)
		if err != nil {
			return nil, 0, fmt.Errorf("client: bad MGET2 response: %w", err)
		}
		if len(vals) != len(keys) {
			return nil, 0, fmt.Errorf("client: MGET2 returned %d values for %d keys", len(vals), len(keys))
		}
		return vals, seq, nil
	case wire.StatusNotReady:
		seq, err := decodeSeq(resp.Payload)
		if err != nil {
			return nil, 0, err
		}
		return nil, seq, ErrNotReady
	}
	return nil, 0, statusErr(resp)
}

// ScanSeq is the session Scan.
func (c *Client) ScanSeq(start []byte, limit int, minSeq uint64) ([]wire.KV, uint64, error) {
	if limit < 0 {
		limit = 0
	}
	resp, err := c.call(wire.OpScanV2, wire.AppendScanV2Req(nil, start, uint32(limit), minSeq))
	if err != nil {
		return nil, 0, err
	}
	switch resp.Status {
	case wire.StatusOK:
		seq, kvs, err := wire.DecodeScanV2Resp(resp.Payload)
		if err != nil {
			return nil, 0, fmt.Errorf("client: bad SCAN2 response: %w", err)
		}
		return kvs, seq, nil
	case wire.StatusNotReady:
		seq, err := decodeSeq(resp.Payload)
		if err != nil {
			return nil, 0, err
		}
		return nil, seq, ErrNotReady
	}
	return nil, 0, statusErr(resp)
}

func decodeSeq(p []byte) (uint64, error) {
	seq, err := wire.DecodeAppliedSeq(p)
	if err != nil {
		return 0, fmt.Errorf("client: bad applied-seq payload: %w", err)
	}
	return seq, nil
}
