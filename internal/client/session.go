package client

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hyperdb/internal/wire"
)

// ErrNotReady is returned when a session read's token is ahead of every
// node willing to serve it: the contacted follower timed out waiting for
// replication to catch up, and (under the bounded policy) the primary
// fallback also refused — which only happens after a failover that lost
// acknowledged writes the session had observed.
var ErrNotReady = errors.New("client: not ready (replica behind session token)")

// ReadPolicy selects where a Session routes its reads.
type ReadPolicy int

const (
	// ReadPrimary sends every read to the primary: always current, no
	// follower offload. Session tokens still update (they make the policy
	// switchable mid-session).
	ReadPrimary ReadPolicy = iota
	// ReadBounded spreads reads round-robin across the whole group
	// (followers and primary), follower reads carrying the session token; a
	// follower answers once it has applied that position, or refuses after
	// its bounded wait, in which case the read falls back to the primary.
	// This keeps read-your-writes and monotonic reads while scaling read
	// capacity with the group.
	ReadBounded
	// ReadAny spreads reads across the group with no freshness requirement
	// on followers: maximum offload, eventual consistency only.
	ReadAny
)

// ParseReadPolicy maps the -read-policy flag values to a ReadPolicy.
func ParseReadPolicy(s string) (ReadPolicy, error) {
	switch s {
	case "primary":
		return ReadPrimary, nil
	case "bounded":
		return ReadBounded, nil
	case "any":
		return ReadAny, nil
	}
	return 0, fmt.Errorf("client: unknown read policy %q (want primary, bounded or any)", s)
}

func (p ReadPolicy) String() string {
	switch p {
	case ReadPrimary:
		return "primary"
	case ReadBounded:
		return "bounded"
	case ReadAny:
		return "any"
	}
	return fmt.Sprintf("ReadPolicy(%d)", int(p))
}

// Token is a session's consistency position: the highest applied sequence
// it has written or observed, qualified by the write-lineage epoch that
// minted it. Epoch 0 means "lineage unknown" — a seeded or legacy token
// that gates on sequence alone.
type Token struct {
	Seq   uint64
	Epoch uint64
}

// String renders "SEQ" for epoch-0 tokens and "SEQ@EPOCH" otherwise — the
// format ParseToken accepts and hyperctl prints.
func (t Token) String() string {
	if t.Epoch == 0 {
		return fmt.Sprintf("%d", t.Seq)
	}
	return fmt.Sprintf("%d@%d", t.Seq, t.Epoch)
}

// ParseToken parses "SEQ" or "SEQ@EPOCH".
func ParseToken(s string) (Token, error) {
	var t Token
	seqs, epochs, qualified := strings.Cut(s, "@")
	seq, err := strconv.ParseUint(seqs, 10, 64)
	if err != nil {
		return t, fmt.Errorf("client: bad token %q: %w", s, err)
	}
	t.Seq = seq
	if qualified {
		if t.Epoch, err = strconv.ParseUint(epochs, 10, 64); err != nil {
			return t, fmt.Errorf("client: bad token %q: %w", s, err)
		}
	}
	return t, nil
}

// mergeToken folds an observed position into a session token. Same or
// unknown lineage: the sequences are comparable, so keep the max (learning
// the epoch when the current token lacks one). Different non-zero lineage:
// the serving node's history replaced the one the token was minted against
// (a failover, or a handoff target with its own log), sequences are not
// comparable, and the observed position is adopted wholesale.
func mergeToken(cur, t Token) Token {
	if t.Epoch != 0 && cur.Epoch != 0 && t.Epoch != cur.Epoch {
		return t
	}
	if t.Seq > cur.Seq {
		cur.Seq = t.Seq
	}
	if cur.Epoch == 0 {
		cur.Epoch = t.Epoch
	}
	return cur
}

// Session is one logical client with session consistency: read-your-writes
// and monotonic reads across the whole replication group. It tracks a
// token — the highest (sequence, epoch) it has written or observed — folds
// every v2 response into it, and sends it as the gate on follower reads.
// Writes always go to the primary. Safe for concurrent use, though the
// session guarantee is per causal chain: concurrent calls on one Session
// order only through the shared token.
type Session struct {
	primary   *Client
	followers []*Client
	policy    ReadPolicy

	mu  sync.Mutex
	tok Token

	rr        atomic.Uint64 // round-robin cursor over followers
	fallbacks atomic.Uint64 // follower refusals retried on the primary
	notReady  atomic.Uint64 // NOT_READY responses received
	lastNode  atomic.Int64  // -1 primary, else follower index
}

// NewSession builds a Session over a primary and optional follower
// clients. With no followers every policy degenerates to ReadPrimary.
func NewSession(primary *Client, followers []*Client, policy ReadPolicy) *Session {
	s := &Session{primary: primary, followers: followers, policy: policy}
	s.lastNode.Store(-1)
	return s
}

// Token returns the session's current token: the highest position it has
// written or observed.
func (s *Session) Token() Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tok
}

// SeedToken folds an externally carried token into the session — used to
// resume a session (e.g. across hyperctl invocations). An epoch-0 seed
// gates on sequence alone, which is also the deliberate clamp after a
// failover invalidated the token's lineage.
func (s *Session) SeedToken(t Token) { s.observe(t) }

// Fallbacks returns how many reads fell back to the primary after a
// follower refused or failed.
func (s *Session) Fallbacks() uint64 { return s.fallbacks.Load() }

// NotReady returns how many NOT_READY refusals the session received.
func (s *Session) NotReady() uint64 { return s.notReady.Load() }

// LastNode names the node that served the session's most recent read:
// "primary", or "follower[i]".
func (s *Session) LastNode() string {
	if i := s.lastNode.Load(); i >= 0 {
		return fmt.Sprintf("follower[%d]", i)
	}
	return "primary"
}

func (s *Session) observe(t Token) {
	s.mu.Lock()
	s.tok = mergeToken(s.tok, t)
	s.mu.Unlock()
}

// Put writes through the primary and folds the committed position into the
// session token, so a follower read issued next observes this write.
func (s *Session) Put(key, value []byte) error {
	tok, err := s.primary.PutSeq(key, value)
	if err != nil {
		return err
	}
	s.observe(tok)
	return nil
}

// Delete removes key through the primary, updating the session token.
func (s *Session) Delete(key []byte) error {
	tok, err := s.primary.DeleteSeq(key)
	if err != nil {
		return err
	}
	s.observe(tok)
	return nil
}

// Incr adds delta to the counter at key through the primary, returning the
// post-merge value and updating the session token so a follower read issued
// next observes the new count.
func (s *Session) Incr(key []byte, delta int64) (int64, error) {
	v, tok, err := s.primary.IncrSeq(key, delta)
	if err != nil {
		return 0, err
	}
	s.observe(tok)
	return v, nil
}

// WriteBatch applies ops through the primary, updating the session token.
func (s *Session) WriteBatch(ops []wire.BatchOp) error {
	tok, err := s.primary.WriteBatchSeq(ops)
	if err != nil {
		return err
	}
	s.observe(tok)
	return nil
}

// readTarget picks the next read-serving node round-robin across the whole
// group — every follower plus the primary, which is always current and
// would otherwise sit idle for reads. It returns nil when the rotation
// lands on the primary (or the policy pins reads there): the caller then
// reads the primary deliberately, with no gate.
func (s *Session) readTarget() (*Client, int) {
	if s.policy == ReadPrimary || len(s.followers) == 0 {
		return nil, -1
	}
	i := int((s.rr.Add(1) - 1) % uint64(len(s.followers)+1))
	if i == len(s.followers) {
		return nil, -1
	}
	return s.followers[i], i
}

// gate is the token a follower read carries: the session token under the
// bounded policy, zero (no gate) under any.
func (s *Session) gate() Token {
	if s.policy == ReadBounded {
		return s.Token()
	}
	return Token{}
}

// fallthroughToPrimary reports whether a follower read error should retry
// on the primary (refusals and transport failures) rather than surface.
func fallthroughToPrimary(err error) bool {
	return err != nil && !errors.Is(err, ErrNotFound)
}

// Get reads key with the session's policy: follower first (gated per
// policy), primary fallback on refusal or failure. A fallback keeps the
// token as its minSeq — after a failover that lost the session's observed
// writes, the new primary refuses too rather than serve a stale value, and
// Get returns ErrNotReady.
func (s *Session) Get(key []byte) ([]byte, error) {
	var gate Token // deliberate primary reads carry no gate
	if f, i := s.readTarget(); f != nil {
		v, tok, err := f.GetSeq(key, s.gate())
		if !fallthroughToPrimary(err) {
			s.observe(tok)
			s.lastNode.Store(int64(i))
			return v, err
		}
		s.noteFallback(err)
		gate = s.primaryGate()
	}
	v, tok, err := s.primary.GetSeq(key, gate)
	if err == nil || errors.Is(err, ErrNotFound) {
		s.observe(tok)
		s.lastNode.Store(-1)
	}
	return v, err
}

// MultiGet is Get for many keys; absent keys yield nil entries.
func (s *Session) MultiGet(keys [][]byte) ([][]byte, error) {
	var gate Token
	if f, i := s.readTarget(); f != nil {
		vals, tok, err := f.MultiGetSeq(keys, s.gate())
		if !fallthroughToPrimary(err) {
			s.observe(tok)
			s.lastNode.Store(int64(i))
			return vals, err
		}
		s.noteFallback(err)
		gate = s.primaryGate()
	}
	vals, tok, err := s.primary.MultiGetSeq(keys, gate)
	if err == nil {
		s.observe(tok)
		s.lastNode.Store(-1)
	}
	return vals, err
}

// Scan reads up to limit pairs with key >= start under the session policy.
func (s *Session) Scan(start []byte, limit int) ([]wire.KV, error) {
	var gate Token
	if f, i := s.readTarget(); f != nil {
		kvs, tok, err := f.ScanSeq(start, limit, s.gate())
		if !fallthroughToPrimary(err) {
			s.observe(tok)
			s.lastNode.Store(int64(i))
			return kvs, err
		}
		s.noteFallback(err)
		gate = s.primaryGate()
	}
	kvs, tok, err := s.primary.ScanSeq(start, limit, gate)
	if err == nil {
		s.observe(tok)
		s.lastNode.Store(-1)
	}
	return kvs, err
}

func (s *Session) noteFallback(err error) {
	s.fallbacks.Add(1)
	if errors.Is(err, ErrNotReady) {
		s.notReady.Add(1)
	}
}

// primaryGate is the gate a primary-routed read carries. A deliberate
// primary read sends a zero token — the primary is definitionally current
// for its own group, and zero is how the server distinguishes routed reads
// from fallbacks. A bounded-policy session with followers only reaches the
// primary as a fallback, which keeps the token so a primary that lost the
// session's writes (failover without sync acks) refuses instead of
// silently rewinding the session.
func (s *Session) primaryGate() Token {
	if s.policy == ReadBounded && len(s.followers) > 0 {
		return s.Token()
	}
	return Token{}
}

// --- v2 (session) calls on Client ---

// PutSeq is Put returning the committed position (the write's session
// token).
func (c *Client) PutSeq(key, value []byte) (Token, error) {
	p, err := c.callOK(wire.OpPutV2, wire.AppendPutReq(nil, key, value))
	if err != nil {
		return Token{}, err
	}
	return decodeTok(p)
}

// DeleteSeq is Delete returning the committed position.
func (c *Client) DeleteSeq(key []byte) (Token, error) {
	p, err := c.callOK(wire.OpDelV2, wire.AppendKeyReq(nil, key))
	if err != nil {
		return Token{}, err
	}
	return decodeTok(p)
}

// WriteBatchSeq is WriteBatch returning the committed position.
func (c *Client) WriteBatchSeq(ops []wire.BatchOp) (Token, error) {
	p, err := c.callOK(wire.OpBatchV2, wire.AppendBatchReq(nil, ops))
	if err != nil {
		return Token{}, err
	}
	return decodeTok(p)
}

// IncrSeq is Incr returning the post-merge value and the committed
// position (the merge's session token).
func (c *Client) IncrSeq(key []byte, delta int64) (int64, Token, error) {
	p, err := c.callOK(wire.OpIncrV2, wire.AppendIncrReq(nil, key, delta))
	if err != nil {
		return 0, Token{}, err
	}
	seq, epoch, v, err := wire.DecodeIncrV2Resp(p)
	if err != nil {
		return 0, Token{}, fmt.Errorf("client: bad INCR2 response: %w", err)
	}
	return v, Token{Seq: seq, Epoch: epoch}, nil
}

// GetSeq is the session read: the server answers only once its applied
// position reaches the gate (or refuses with ErrNotReady after its bounded
// wait, or because the gate names a different write lineage). The returned
// token is the serving node's applied position — valid on success,
// ErrNotFound, and ErrNotReady alike, though sessions must not fold
// NOT_READY positions in (that would silently clamp the gate).
func (c *Client) GetSeq(key []byte, gate Token) ([]byte, Token, error) {
	resp, err := c.call(wire.OpGetV2, wire.AppendGetV2Req(nil, key, gate.Seq, gate.Epoch))
	if err != nil {
		return nil, Token{}, err
	}
	switch resp.Status {
	case wire.StatusOK:
		seq, epoch, v, err := wire.DecodeGetV2Resp(resp.Payload)
		if err != nil {
			return nil, Token{}, fmt.Errorf("client: bad GET2 response: %w", err)
		}
		return v, Token{Seq: seq, Epoch: epoch}, nil
	case wire.StatusNotFound:
		tok, err := decodeTok(resp.Payload)
		if err != nil {
			return nil, Token{}, err
		}
		return nil, tok, ErrNotFound
	case wire.StatusNotReady:
		tok, err := decodeTok(resp.Payload)
		if err != nil {
			return nil, Token{}, err
		}
		return nil, tok, ErrNotReady
	}
	return nil, Token{}, statusErr(resp)
}

// MultiGetSeq is the session MultiGet; absent keys yield nil entries.
func (c *Client) MultiGetSeq(keys [][]byte, gate Token) ([][]byte, Token, error) {
	resp, err := c.call(wire.OpMGetV2, wire.AppendMGetV2Req(nil, keys, gate.Seq, gate.Epoch))
	if err != nil {
		return nil, Token{}, err
	}
	switch resp.Status {
	case wire.StatusOK:
		seq, epoch, vals, err := wire.DecodeMGetV2Resp(resp.Payload)
		if err != nil {
			return nil, Token{}, fmt.Errorf("client: bad MGET2 response: %w", err)
		}
		if len(vals) != len(keys) {
			return nil, Token{}, fmt.Errorf("client: MGET2 returned %d values for %d keys", len(vals), len(keys))
		}
		return vals, Token{Seq: seq, Epoch: epoch}, nil
	case wire.StatusNotReady:
		tok, err := decodeTok(resp.Payload)
		if err != nil {
			return nil, Token{}, err
		}
		return nil, tok, ErrNotReady
	}
	return nil, Token{}, statusErr(resp)
}

// ScanSeq is the session Scan.
func (c *Client) ScanSeq(start []byte, limit int, gate Token) ([]wire.KV, Token, error) {
	if limit < 0 {
		limit = 0
	}
	resp, err := c.call(wire.OpScanV2, wire.AppendScanV2Req(nil, start, uint32(limit), gate.Seq, gate.Epoch))
	if err != nil {
		return nil, Token{}, err
	}
	switch resp.Status {
	case wire.StatusOK:
		seq, epoch, kvs, err := wire.DecodeScanV2Resp(resp.Payload)
		if err != nil {
			return nil, Token{}, fmt.Errorf("client: bad SCAN2 response: %w", err)
		}
		return kvs, Token{Seq: seq, Epoch: epoch}, nil
	case wire.StatusNotReady:
		tok, err := decodeTok(resp.Payload)
		if err != nil {
			return nil, Token{}, err
		}
		return nil, tok, ErrNotReady
	}
	return nil, Token{}, statusErr(resp)
}

func decodeTok(p []byte) (Token, error) {
	seq, epoch, err := wire.DecodeAppliedSeq(p)
	if err != nil {
		return Token{}, fmt.Errorf("client: bad applied-seq payload: %w", err)
	}
	return Token{Seq: seq, Epoch: epoch}, nil
}
