package client

import (
	"math/rand"
	"time"
)

// Backoff produces capped exponential delays with jitter for redial loops.
// Each Next doubles the base delay up to Max and returns a uniformly random
// duration in [base/2, base], so a fleet of clients reconnecting to the
// same reborn server spreads out instead of stampeding. The zero value is
// unusable; fill Initial and Max (Reset applies defaults of 50ms and 2s).
// Not safe for concurrent use; each dial loop owns its own Backoff.
type Backoff struct {
	// Initial is the first delay. Default 50ms.
	Initial time.Duration
	// Max caps the exponential growth. Default 2s.
	Max time.Duration

	base time.Duration
}

// Next returns the delay to sleep before the upcoming attempt.
func (b *Backoff) Next() time.Duration {
	if b.base == 0 {
		b.Reset()
		b.base = b.Initial
	} else {
		b.base *= 2
		if b.base > b.Max {
			b.base = b.Max
		}
	}
	half := b.base / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Reset restores the initial delay after a successful connection, and
// fills zero fields with defaults.
func (b *Backoff) Reset() {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max < b.Initial {
		b.Max = 2 * time.Second
		if b.Max < b.Initial {
			b.Max = b.Initial
		}
	}
	b.base = 0
}
