package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb/internal/cluster"
	"hyperdb/internal/wire"
)

// ClusterOptions configures DialCluster.
type ClusterOptions struct {
	// Seeds are node addresses to fetch the initial shard map from; the
	// first reachable one wins. At least one is required. Seeds need not
	// cover the cluster — the map names every group.
	Seeds []string
	// Conns is the pool size per node. Default 1.
	Conns int
	// MaxRetries caps WRONG_SHARD bounces per operation before giving up.
	// Each bounce carries the server's map, so convergence normally takes
	// one retry; the cap only bites when the map churns faster than the
	// client can chase it. Default 8.
	MaxRetries int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
}

// Cluster routes every keyed operation directly to the node owning the
// key's slot — nodes never proxy. It caches the shard map, learns newer
// versions from WRONG_SHARD bounces (the refusal payload is the server's
// map), and keeps a lazily dialed client per group address. Safe for
// concurrent use.
type Cluster struct {
	opts ClusterOptions

	mu   sync.Mutex
	m    *cluster.Map
	pool map[string]*Client

	retries   atomic.Uint64 // WRONG_SHARD bounces retried
	refetches atomic.Uint64 // explicit map refetches after no-progress bounces
}

// DialCluster fetches the shard map from the first reachable seed and
// returns a routing client over it.
func DialCluster(opts ClusterOptions) (*Cluster, error) {
	if len(opts.Seeds) == 0 {
		return nil, errors.New("client: ClusterOptions.Seeds is required")
	}
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 8
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	cc := &Cluster{opts: opts, pool: make(map[string]*Client)}
	var lastErr error
	for _, addr := range opts.Seeds {
		c, err := cc.clientFor(addr)
		if err != nil {
			lastErr = err
			continue
		}
		m, err := c.ShardMap()
		if err != nil {
			lastErr = err
			continue
		}
		cc.adopt(m)
		return cc, nil
	}
	return nil, fmt.Errorf("client: no seed served a shard map: %w", lastErr)
}

// Close tears down every pooled per-node client.
func (cc *Cluster) Close() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for addr, c := range cc.pool {
		c.Close()
		delete(cc.pool, addr)
	}
	return nil
}

// Map returns the currently cached shard map.
func (cc *Cluster) Map() *cluster.Map {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.m
}

// Retries returns how many WRONG_SHARD bounces the client has retried.
func (cc *Cluster) Retries() uint64 { return cc.retries.Load() }

// Refetches returns how many explicit SHARDMAP refetches no-progress
// bounces forced (bounces that taught the client nothing newer).
func (cc *Cluster) Refetches() uint64 { return cc.refetches.Load() }

// adopt installs m if it is newer than the cached map, reporting whether
// the cache advanced.
func (cc *Cluster) adopt(m *cluster.Map) bool {
	if m == nil {
		return false
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.m != nil && m.Version <= cc.m.Version {
		return false
	}
	cc.m = m
	return true
}

// clientFor returns the pooled client for addr, dialing on first use.
func (cc *Cluster) clientFor(addr string) (*Client, error) {
	cc.mu.Lock()
	if c, ok := cc.pool[addr]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	cc.mu.Unlock()
	c, err := Dial(Options{Addr: addr, Conns: cc.opts.Conns, DialTimeout: cc.opts.DialTimeout})
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if prev, ok := cc.pool[addr]; ok {
		c.Close()
		return prev, nil
	}
	cc.pool[addr] = c
	return c, nil
}

// refresh fetches the map from any group other than skip and adopts it —
// the escape hatch when bounces stop teaching us anything newer (two nodes
// disagreeing with maps no newer than ours).
func (cc *Cluster) refresh(skip string) {
	cc.refetches.Add(1)
	m := cc.Map()
	if m == nil {
		return
	}
	for _, addr := range m.Groups {
		if addr == skip {
			continue
		}
		c, err := cc.clientFor(addr)
		if err != nil {
			continue
		}
		if nm, err := c.ShardMap(); err == nil && cc.adopt(nm) {
			return
		}
	}
}

// do routes one keyed operation: look up the owner under the cached map,
// run fn against it, and on a WRONG_SHARD bounce adopt the carried map and
// retry, up to MaxRetries. Two consecutive bounces that fail to advance
// the map trigger a refetch from another group.
func (cc *Cluster) do(key []byte, fn func(addr string, c *Client) error) error {
	stuck := 0
	for attempt := 0; attempt < cc.opts.MaxRetries; attempt++ {
		m := cc.Map()
		addr := m.Owner(key)
		c, err := cc.clientFor(addr)
		if err != nil {
			return err
		}
		err = fn(addr, c)
		var ws *WrongShardError
		if !errors.As(err, &ws) {
			return err
		}
		cc.retries.Add(1)
		if cc.adopt(ws.Map) {
			stuck = 0
			continue
		}
		if stuck++; stuck >= 2 {
			cc.refresh(addr)
			stuck = 0
		}
	}
	return fmt.Errorf("client: key still unrouted after %d wrong-shard bounces", cc.opts.MaxRetries)
}

// Put writes key=value on the key's owner.
func (cc *Cluster) Put(key, value []byte) error {
	return cc.do(key, func(_ string, c *Client) error { return c.Put(key, value) })
}

// Get reads key from its owner, or ErrNotFound.
func (cc *Cluster) Get(key []byte) ([]byte, error) {
	var out []byte
	err := cc.do(key, func(_ string, c *Client) error {
		v, err := c.Get(key)
		out = v
		return err
	})
	return out, err
}

// Delete removes key on its owner.
func (cc *Cluster) Delete(key []byte) error {
	return cc.do(key, func(_ string, c *Client) error { return c.Delete(key) })
}

// Incr adds delta to the counter at key on its owner.
func (cc *Cluster) Incr(key []byte, delta int64) (int64, error) {
	var out int64
	err := cc.do(key, func(_ string, c *Client) error {
		v, err := c.Incr(key, delta)
		out = v
		return err
	})
	return out, err
}

// MultiGet splits keys by owning group, issues one MGET per group, and
// reassembles values positionally. Groups that bounce are re-split under
// the adopted map and retried; already-fetched values are kept.
func (cc *Cluster) MultiGet(keys [][]byte) ([][]byte, error) {
	vals := make([][]byte, len(keys))
	done := make([]bool, len(keys))
	remaining := len(keys)
	for attempt := 0; attempt < cc.opts.MaxRetries; attempt++ {
		if remaining == 0 {
			return vals, nil
		}
		m := cc.Map()
		groups := cc.splitKeys(m, keys, done)
		bounced := false
		for addr, idx := range groups {
			c, err := cc.clientFor(addr)
			if err != nil {
				return nil, err
			}
			sub := make([][]byte, len(idx))
			for j, i := range idx {
				sub[j] = keys[i]
			}
			vs, err := c.MultiGet(sub)
			var ws *WrongShardError
			if errors.As(err, &ws) {
				cc.retries.Add(1)
				cc.adopt(ws.Map)
				bounced = true
				continue
			}
			if err != nil {
				return nil, err
			}
			for j, i := range idx {
				vals[i] = vs[j]
				done[i] = true
				remaining--
			}
		}
		if !bounced {
			return vals, nil
		}
	}
	return nil, fmt.Errorf("client: multiget still unrouted after %d wrong-shard bounces", cc.opts.MaxRetries)
}

// WriteBatch splits ops by owning group and applies one sub-batch per
// group. Atomicity holds per group, not across the whole batch — a
// cross-shard batch is N independent group commits (see DESIGN.md).
func (cc *Cluster) WriteBatch(ops []wire.BatchOp) error {
	done := make([]bool, len(ops))
	remaining := len(ops)
	for attempt := 0; attempt < cc.opts.MaxRetries; attempt++ {
		if remaining == 0 {
			return nil
		}
		m := cc.Map()
		groups := cc.splitOps(m, ops, done)
		bounced := false
		for addr, idx := range groups {
			c, err := cc.clientFor(addr)
			if err != nil {
				return err
			}
			sub := make([]wire.BatchOp, len(idx))
			for j, i := range idx {
				sub[j] = ops[i]
			}
			err = c.WriteBatch(sub)
			var ws *WrongShardError
			if errors.As(err, &ws) {
				cc.retries.Add(1)
				cc.adopt(ws.Map)
				bounced = true
				continue
			}
			if err != nil {
				return err
			}
			for _, i := range idx {
				done[i] = true
				remaining--
			}
		}
		if !bounced {
			return nil
		}
	}
	return fmt.Errorf("client: batch still unrouted after %d wrong-shard bounces", cc.opts.MaxRetries)
}

func (cc *Cluster) splitKeys(m *cluster.Map, keys [][]byte, done []bool) map[string][]int {
	groups := make(map[string][]int)
	for i, k := range keys {
		if !done[i] {
			addr := m.Owner(k)
			groups[addr] = append(groups[addr], i)
		}
	}
	return groups
}

func (cc *Cluster) splitOps(m *cluster.Map, ops []wire.BatchOp, done []bool) map[string][]int {
	groups := make(map[string][]int)
	for i := range ops {
		if !done[i] {
			addr := m.Owner(ops[i].Key)
			groups[addr] = append(groups[addr], i)
		}
	}
	return groups
}

// ClusterSession is session consistency over a sharded cluster: writes and
// reads route per key, and the session token is kept per group — each
// shard's primary mints its own (sequence, epoch) line, so one scalar
// token cannot order positions across shards. A batch straddling shards
// merges each group's applied position into that group's token only.
//
// singleToken mode collapses the map to one token merged across groups —
// the legacy behaviour, kept as a fallback for single-group deployments
// where it is exact (and cheaper to carry around).
type ClusterSession struct {
	cc          *Cluster
	singleToken bool

	mu   sync.Mutex
	toks map[string]Token // per group address
	tok  Token            // singleToken mode
}

// NewClusterSession builds a session over a routing client. perShard
// selects the per-group token map (correct across shards); false falls
// back to one merged token, exact only while every key lives in one group.
func NewClusterSession(cc *Cluster, perShard bool) *ClusterSession {
	return &ClusterSession{cc: cc, singleToken: !perShard, toks: make(map[string]Token)}
}

// Tokens returns a copy of the per-group token map (singleToken mode: one
// entry keyed "").
func (s *ClusterSession) Tokens() map[string]Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Token, len(s.toks)+1)
	if s.singleToken {
		out[""] = s.tok
		return out
	}
	for a, t := range s.toks {
		out[a] = t
	}
	return out
}

func (s *ClusterSession) gate(addr string) Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.singleToken {
		return s.tok
	}
	return s.toks[addr]
}

func (s *ClusterSession) observe(addr string, t Token) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.singleToken {
		s.tok = mergeToken(s.tok, t)
		return
	}
	s.toks[addr] = mergeToken(s.toks[addr], t)
}

// Put writes through the key's owner and folds the committed position into
// that group's token.
func (s *ClusterSession) Put(key, value []byte) error {
	return s.cc.do(key, func(addr string, c *Client) error {
		tok, err := c.PutSeq(key, value)
		if err == nil {
			s.observe(addr, tok)
		}
		return err
	})
}

// Delete removes key through its owner, updating that group's token.
func (s *ClusterSession) Delete(key []byte) error {
	return s.cc.do(key, func(addr string, c *Client) error {
		tok, err := c.DeleteSeq(key)
		if err == nil {
			s.observe(addr, tok)
		}
		return err
	})
}

// Incr adds delta to the counter at key through its owner.
func (s *ClusterSession) Incr(key []byte, delta int64) (int64, error) {
	var out int64
	err := s.cc.do(key, func(addr string, c *Client) error {
		v, tok, err := c.IncrSeq(key, delta)
		if err == nil {
			s.observe(addr, tok)
			out = v
		}
		return err
	})
	return out, err
}

// Get reads key from its owner, gated on the group's token.
func (s *ClusterSession) Get(key []byte) ([]byte, error) {
	var out []byte
	err := s.cc.do(key, func(addr string, c *Client) error {
		v, tok, err := c.GetSeq(key, s.gate(addr))
		if err == nil || errors.Is(err, ErrNotFound) {
			s.observe(addr, tok)
			out = v
		}
		return err
	})
	return out, err
}

// MultiGet splits keys by owning group, gates each sub-request on that
// group's token, and merges each group's applied position back into its
// own entry — the per-shard token merge for batches straddling shards.
func (s *ClusterSession) MultiGet(keys [][]byte) ([][]byte, error) {
	vals := make([][]byte, len(keys))
	done := make([]bool, len(keys))
	remaining := len(keys)
	for attempt := 0; attempt < s.cc.opts.MaxRetries; attempt++ {
		if remaining == 0 {
			return vals, nil
		}
		m := s.cc.Map()
		groups := s.cc.splitKeys(m, keys, done)
		bounced := false
		for addr, idx := range groups {
			c, err := s.cc.clientFor(addr)
			if err != nil {
				return nil, err
			}
			sub := make([][]byte, len(idx))
			for j, i := range idx {
				sub[j] = keys[i]
			}
			vs, tok, err := c.MultiGetSeq(sub, s.gate(addr))
			var ws *WrongShardError
			if errors.As(err, &ws) {
				s.cc.retries.Add(1)
				s.cc.adopt(ws.Map)
				bounced = true
				continue
			}
			if err != nil {
				return nil, err
			}
			s.observe(addr, tok)
			for j, i := range idx {
				vals[i] = vs[j]
				done[i] = true
				remaining--
			}
		}
		if !bounced {
			return vals, nil
		}
	}
	return nil, fmt.Errorf("client: multiget still unrouted after %d wrong-shard bounces", s.cc.opts.MaxRetries)
}

// WriteBatch splits ops by owning group and folds each group's committed
// position into its own token. Atomicity holds per group only.
func (s *ClusterSession) WriteBatch(ops []wire.BatchOp) error {
	done := make([]bool, len(ops))
	remaining := len(ops)
	for attempt := 0; attempt < s.cc.opts.MaxRetries; attempt++ {
		if remaining == 0 {
			return nil
		}
		m := s.cc.Map()
		groups := s.cc.splitOps(m, ops, done)
		bounced := false
		for addr, idx := range groups {
			c, err := s.cc.clientFor(addr)
			if err != nil {
				return err
			}
			sub := make([]wire.BatchOp, len(idx))
			for j, i := range idx {
				sub[j] = ops[i]
			}
			tok, err := c.WriteBatchSeq(sub)
			var ws *WrongShardError
			if errors.As(err, &ws) {
				s.cc.retries.Add(1)
				s.cc.adopt(ws.Map)
				bounced = true
				continue
			}
			if err != nil {
				return err
			}
			s.observe(addr, tok)
			for _, i := range idx {
				done[i] = true
				remaining--
			}
		}
		if !bounced {
			return nil
		}
	}
	return fmt.Errorf("client: batch still unrouted after %d wrong-shard bounces", s.cc.opts.MaxRetries)
}
