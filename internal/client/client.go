// Package client is the Go client for hyperd's wire protocol. A Client
// multiplexes blocking calls from any number of goroutines over a small
// pool of TCP connections; concurrent calls on one connection pipeline
// naturally (each is tagged with a request id and matched to its response),
// which is exactly the traffic shape the server's coalescing queue turns
// into WriteBatch/MultiGet group commits.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb/internal/cluster"
	"hyperdb/internal/wire"
)

// ErrNotFound is returned by Get for missing or deleted keys.
var ErrNotFound = errors.New("client: not found")

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// ErrRateLimited is returned when the server's per-connection admission
// control refused the request; the caller may back off and retry.
var ErrRateLimited = errors.New("client: rate limited")

// Options configures Dial.
type Options struct {
	// Addr is the hyperd TCP address. Required.
	Addr string
	// Conns is the pool size. Default 2.
	Conns int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// MaxFrame bounds response frames. Default wire.MaxFrame.
	MaxFrame uint32
	// RedialAttempts caps connection attempts per call; failed attempts
	// are retried after a capped exponential backoff with jitter (see
	// Backoff). Default 3. Set to 1 to fail on the first refusal.
	RedialAttempts int
	// RedialBackoff is the first retry delay; RedialBackoffMax caps the
	// exponential growth. Defaults 50ms and 2s.
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// DialFunc overrides the transport dialer (tests, proxies). Default is
	// a DialTimeout-bounded net.DialTimeout.
	DialFunc func(addr string, timeout time.Duration) (net.Conn, error)
}

func (o *Options) fill() error {
	if o.Addr == "" {
		return errors.New("client: Options.Addr is required")
	}
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFrame == 0 || o.MaxFrame > wire.MaxFrame {
		o.MaxFrame = wire.MaxFrame
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 3
	}
	if o.DialFunc == nil {
		o.DialFunc = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return nil
}

// Client is a pooled, pipelining hyperd client. Safe for concurrent use.
type Client struct {
	opts   Options
	next   atomic.Uint64
	closed atomic.Bool

	mu    sync.Mutex
	conns []*conn // nil slots dial lazily; errored slots redial
}

// Dial validates opts and connects the first pool slot eagerly so an
// unreachable server fails fast. Remaining slots dial on first use.
func Dial(opts Options) (*Client, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	c := &Client{opts: opts, conns: make([]*conn, opts.Conns)}
	if _, err := c.conn(0); err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears down every pooled connection. In-flight calls fail.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cn := range c.conns {
		if cn != nil {
			cn.close(ErrClosed)
			c.conns[i] = nil
		}
	}
	return nil
}

// conn returns pool slot i, dialing or redialing as needed. A refused
// dial retries up to RedialAttempts times with capped exponential backoff
// plus jitter; the mutex is released across dials and sleeps so other pool
// slots keep serving while one slot waits out a dead server.
func (c *Client) conn(i int) (*conn, error) {
	bo := Backoff{Initial: c.opts.RedialBackoff, Max: c.opts.RedialBackoffMax}
	var lastErr error
	for attempt := 0; attempt < c.opts.RedialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Next())
		}
		c.mu.Lock()
		if c.closed.Load() {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if cn := c.conns[i]; cn != nil && !cn.broken() {
			c.mu.Unlock()
			return cn, nil
		}
		c.mu.Unlock()

		nc, err := c.opts.DialFunc(c.opts.Addr, c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		c.mu.Lock()
		if c.closed.Load() {
			c.mu.Unlock()
			nc.Close()
			return nil, ErrClosed
		}
		if cn := c.conns[i]; cn != nil && !cn.broken() {
			// A concurrent caller won the redial race; keep its conn.
			c.mu.Unlock()
			nc.Close()
			return cn, nil
		}
		cn := newConn(nc, c.opts.MaxFrame)
		c.conns[i] = cn
		c.mu.Unlock()
		return cn, nil
	}
	return nil, fmt.Errorf("client: dial %s: %w", c.opts.Addr, lastErr)
}

// call runs one request→response exchange on a round-robin pool slot.
func (c *Client) call(op wire.Op, payload []byte) (wire.Frame, error) {
	if c.closed.Load() {
		return wire.Frame{}, ErrClosed
	}
	slot := int(c.next.Add(1)-1) % c.opts.Conns
	cn, err := c.conn(slot)
	if err != nil {
		return wire.Frame{}, err
	}
	resp, err := cn.roundTrip(op, payload)
	if err != nil {
		return wire.Frame{}, err
	}
	return resp, nil
}

// callOK is call plus the common status handling for ops whose success
// payload is all the caller needs.
func (c *Client) callOK(op wire.Op, payload []byte) ([]byte, error) {
	resp, err := c.call(op, payload)
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, statusErr(resp)
	}
	return resp.Payload, nil
}

// WrongShardError is returned when a keyed op landed on a node that does
// not own the key's slot. Map is the serving node's current shard map —
// the refusal doubles as a map refresh, so the routing layer adopts it and
// retries without a separate SHARDMAP round trip.
type WrongShardError struct {
	Map *cluster.Map
}

func (e *WrongShardError) Error() string {
	if e.Map == nil {
		return "client: wrong shard"
	}
	return fmt.Sprintf("client: wrong shard (map v%d)", e.Map.Version)
}

func statusErr(f wire.Frame) error {
	switch f.Status {
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusRateLimited:
		return ErrRateLimited
	case wire.StatusWrongShard:
		m, err := cluster.Decode(f.Payload)
		if err != nil {
			return fmt.Errorf("client: wrong shard with undecodable map: %w", err)
		}
		return &WrongShardError{Map: m}
	}
	return fmt.Errorf("client: %s: %s (%s)", f.Op, f.Status, f.Payload)
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.callOK(wire.OpPing, nil)
	return err
}

// Put writes key=value; the write is durable on the server when Put returns.
func (c *Client) Put(key, value []byte) error {
	_, err := c.callOK(wire.OpPut, wire.AppendPutReq(nil, key, value))
	return err
}

// Get returns the value for key, or ErrNotFound.
func (c *Client) Get(key []byte) ([]byte, error) {
	return c.callOK(wire.OpGet, wire.AppendKeyReq(nil, key))
}

// Delete removes key. Deleting an absent key is not an error.
func (c *Client) Delete(key []byte) error {
	_, err := c.callOK(wire.OpDel, wire.AppendKeyReq(nil, key))
	return err
}

// Incr atomically adds delta to the counter at key and returns the
// post-merge value. The server folds pipelined deltas to the same key into
// one engine write; missing keys count from 0, non-counter values fail,
// and results saturate at the int64 range.
func (c *Client) Incr(key []byte, delta int64) (int64, error) {
	p, err := c.callOK(wire.OpIncr, wire.AppendIncrReq(nil, key, delta))
	if err != nil {
		return 0, err
	}
	v, err := wire.DecodeIncrResp(p)
	if err != nil {
		return 0, fmt.Errorf("client: bad INCR response: %w", err)
	}
	return v, nil
}

// WriteBatch applies ops as one request; the server folds it — along with
// any concurrently pipelined writes — into a single engine WriteBatch.
func (c *Client) WriteBatch(ops []wire.BatchOp) error {
	_, err := c.callOK(wire.OpBatch, wire.AppendBatchReq(nil, ops))
	return err
}

// MultiGet returns values positionally aligned with keys; absent keys
// yield nil entries.
func (c *Client) MultiGet(keys [][]byte) ([][]byte, error) {
	p, err := c.callOK(wire.OpMGet, wire.AppendMGetReq(nil, keys))
	if err != nil {
		return nil, err
	}
	vals, err := wire.DecodeMGetResp(p)
	if err != nil {
		return nil, fmt.Errorf("client: bad MGET response: %w", err)
	}
	if len(vals) != len(keys) {
		return nil, fmt.Errorf("client: MGET returned %d values for %d keys", len(vals), len(keys))
	}
	return vals, nil
}

// Scan returns up to limit pairs with key >= start in key order. The
// server caps limit at its MaxScanLimit.
func (c *Client) Scan(start []byte, limit int) ([]wire.KV, error) {
	if limit < 0 {
		limit = 0
	}
	p, err := c.callOK(wire.OpScan, wire.AppendScanReq(nil, start, uint32(limit)))
	if err != nil {
		return nil, err
	}
	kvs, err := wire.DecodeScanResp(p)
	if err != nil {
		return nil, fmt.Errorf("client: bad SCAN response: %w", err)
	}
	return kvs, nil
}

// Stats returns the server's stats text: "key value" lines for the server
// section, a blank line, then the engine's human-readable summary.
func (c *Client) Stats() (string, error) {
	p, err := c.callOK(wire.OpStats, nil)
	return string(p), err
}

// ShardMap fetches the node's current shard map. Fails on a node running
// without cluster mode.
func (c *Client) ShardMap() (*cluster.Map, error) {
	p, err := c.callOK(wire.OpShardMap, nil)
	if err != nil {
		return nil, err
	}
	m, err := cluster.Decode(p)
	if err != nil {
		return nil, fmt.Errorf("client: bad SHARDMAP response: %w", err)
	}
	return m, nil
}

// Handoff asks the node to pull ownership of slots from their current
// owner: the node bootstraps each slot's data from the source (snapshot
// plus tail), then the source flips the map and the new version returns.
// Blocks until the migration completes.
func (c *Client) Handoff(slots []uint32) (*cluster.Map, error) {
	p, err := c.callOK(wire.OpHandoff, wire.AppendHandoffReq(nil, slots))
	if err != nil {
		return nil, err
	}
	m, err := cluster.Decode(p)
	if err != nil {
		return nil, fmt.Errorf("client: bad HANDOFF response: %w", err)
	}
	return m, nil
}

// conn is one pooled pipelined connection.
type conn struct {
	nc net.Conn
	bw *bufio.Writer

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan result
	err     error // sticky; set once the reader dies
	nextID  uint64
}

type result struct {
	frame wire.Frame
	err   error
}

func newConn(nc net.Conn, maxFrame uint32) *conn {
	cn := &conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]chan result),
	}
	go cn.readLoop(maxFrame)
	return cn
}

func (cn *conn) broken() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.err != nil
}

// close fails every pending call with err and closes the socket.
func (cn *conn) close(err error) {
	cn.mu.Lock()
	if cn.err == nil {
		cn.err = err
	}
	pend := cn.pending
	cn.pending = make(map[uint64]chan result)
	cn.mu.Unlock()
	cn.nc.Close()
	for _, ch := range pend {
		ch <- result{err: err}
	}
}

// readLoop dispatches response frames to their waiting callers by id.
func (cn *conn) readLoop(maxFrame uint32) {
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	for {
		f, err := wire.ReadFrame(br, maxFrame)
		if err != nil {
			cn.close(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		cn.mu.Lock()
		ch, ok := cn.pending[f.ID]
		delete(cn.pending, f.ID)
		cn.mu.Unlock()
		if ok {
			// Detach the payload from the reader's buffer before handing
			// it to the caller's goroutine.
			f.Payload = append([]byte(nil), f.Payload...)
			ch <- result{frame: f}
		}
	}
}

// roundTrip registers a pending id, writes the request, and blocks for the
// response. Concurrent callers interleave here — that is the pipelining.
func (cn *conn) roundTrip(op wire.Op, payload []byte) (wire.Frame, error) {
	ch := make(chan result, 1)
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return wire.Frame{}, err
	}
	cn.nextID++
	id := cn.nextID
	cn.pending[id] = ch
	cn.mu.Unlock()

	buf := wire.AppendFrame(make([]byte, 0, wire.EncodedLen(len(payload))),
		wire.Frame{Op: op, ID: id, Payload: payload})
	cn.wmu.Lock()
	_, werr := cn.bw.Write(buf)
	if werr == nil {
		werr = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if werr != nil {
		cn.mu.Lock()
		delete(cn.pending, id)
		cn.mu.Unlock()
		cn.close(fmt.Errorf("client: write: %w", werr))
		return wire.Frame{}, werr
	}

	r := <-ch
	return r.frame, r.err
}
