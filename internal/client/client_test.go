package client_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/server"
	"hyperdb/internal/wire"
)

func startServer(t *testing.T) (addr string, srv *server.Server) {
	t.Helper()
	db, err := hyperdb.Open(hyperdb.Options{
		Unthrottled:  true,
		NVMeCapacity: 32 << 20,
		SATACapacity: 1 << 30,
		Partitions:   2,
		CacheBytes:   2 << 20,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv, err = server.New(server.Config{DB: db, OwnDB: true})
	if err != nil {
		db.Close()
		t.Fatalf("server.New: %v", err)
	}
	a, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return a.String(), srv
}

func TestDialFailsFast(t *testing.T) {
	if _, err := client.Dial(client.Options{Addr: "127.0.0.1:1", DialTimeout: 1}); err == nil {
		t.Fatal("dial to a dead port succeeded")
	}
	if _, err := client.Dial(client.Options{}); err == nil {
		t.Fatal("dial with no addr succeeded")
	}
}

func TestConcurrentPipelining(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(client.Options{Addr: addr, Conns: 3})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("g%02d-k%03d", g, i))
				v := []byte(fmt.Sprintf("g%02d-v%03d", g, i))
				if err := c.Put(k, v); err != nil {
					errCh <- err
					return
				}
				got, err := c.Get(k)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, v) {
					errCh <- fmt.Errorf("get %s = %q, want %q", k, got, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Mixed batch + mget through the same pool.
	if err := c.WriteBatch([]wire.BatchOp{
		{Key: []byte("wb-a"), Value: []byte("1")},
		{Key: []byte("wb-b"), Value: []byte("2")},
	}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	vals, err := c.MultiGet([][]byte{[]byte("wb-a"), []byte("wb-b"), []byte("wb-c")})
	if err != nil {
		t.Fatalf("mget: %v", err)
	}
	if string(vals[0]) != "1" || string(vals[1]) != "2" || vals[2] != nil {
		t.Fatalf("mget: %q", vals)
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	addr, _ := startServer(t)
	c, err := client.Dial(client.Options{Addr: addr})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	c.Close()
	if err := c.Ping(); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ping after close: %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestClientRedialsAfterServerShutdownDial(t *testing.T) {
	addr, srv := startServer(t)
	c, err := client.Dial(client.Options{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The pooled conn is dead and the listener gone: calls now error
	// (first the broken-conn error, then redial failures), never hang.
	var sawErr bool
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("pings kept succeeding after server shutdown")
	}
}
