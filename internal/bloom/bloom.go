// Package bloom implements the standard Bloom filters HyperDB uses in two
// roles: per-block membership filters inside (semi-)SSTable metadata blocks,
// and the access-window filters inside the cascading hotness discriminator
// (§3.3). The discriminator needs to know when a filter window is "full",
// so Filter tracks the number of inserts.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Filter is a standard Bloom filter with double hashing. Not safe for
// concurrent use; callers shard or lock.
type Filter struct {
	bits     []uint64
	nbits    uint64
	hashes   uint32
	inserted uint64
	capacity uint64
}

// New creates a filter sized for n expected items at bitsPerKey bits each.
// The paper uses 10 bits/key, keeping the false-positive rate under 1%.
func New(n int, bitsPerKey int) *Filter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	nbits := uint64(n * bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	// k = ln2 * bits/key is the optimal hash count.
	k := uint32(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{
		bits:     make([]uint64, (nbits+63)/64),
		nbits:    nbits,
		hashes:   k,
		capacity: uint64(n),
	}
}

// Hash64 is the FNV-1a key hash every probe derives from. It is exported
// so hot paths can hash a key once and share the result between the stripe
// choice, the filter probes (AddHash/ContainsHash) and the frequency-sketch
// probes, instead of rescanning the key per structure.
func Hash64(key []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Add inserts key. Returns true if any bit flipped 0→1, i.e. the key was
// (probably) not present before — this is how the discriminator counts the
// distinct insertions filling a window.
func (f *Filter) Add(key []byte) bool { return f.AddHash(Hash64(key)) }

// AddHash is Add for a key already hashed with Hash64.
func (f *Filter) AddHash(h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)
	changed := false
	for i := uint32(0); i < f.hashes; i++ {
		pos := uint64(h1+i*h2) % f.nbits
		word, bit := pos/64, uint64(1)<<(pos%64)
		if f.bits[word]&bit == 0 {
			f.bits[word] |= bit
			changed = true
		}
	}
	if changed {
		f.inserted++
	}
	return changed
}

// Contains reports whether key is (probably) in the filter.
func (f *Filter) Contains(key []byte) bool { return f.ContainsHash(Hash64(key)) }

// ContainsHash is Contains for a key already hashed with Hash64.
func (f *Filter) ContainsHash(h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)
	for i := uint32(0); i < f.hashes; i++ {
		pos := uint64(h1+i*h2) % f.nbits
		if f.bits[pos/64]&(uint64(1)<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Inserted returns the number of Add calls that flipped at least one bit —
// an (under-)estimate of distinct keys inserted.
func (f *Filter) Inserted() uint64 { return f.inserted }

// Capacity returns the design capacity n.
func (f *Filter) Capacity() uint64 { return f.capacity }

// Full reports whether the filter has absorbed its design capacity; the
// hotness tracker seals a window filter when this trips.
func (f *Filter) Full() bool { return f.inserted >= f.capacity }

// SizeBytes returns the bit-array footprint.
func (f *Filter) SizeBytes() int64 { return int64(len(f.bits) * 8) }

// FillRatio returns the fraction of set bits; useful to assert the FP rate
// stayed in budget.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Reset clears all bits and the insert counter, reusing the allocation.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.inserted = 0
}

// Marshal serialises the filter: nbits, hashes, inserted, capacity, words.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 0, 32+len(f.bits)*8)
	var tmp [8]byte
	for _, v := range []uint64{f.nbits, uint64(f.hashes), f.inserted, f.capacity} {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	for _, w := range f.bits {
		binary.LittleEndian.PutUint64(tmp[:], w)
		out = append(out, tmp[:]...)
	}
	return out
}

// Unmarshal reconstructs a filter serialised by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 32 || (len(data)-32)%8 != 0 {
		return nil, fmt.Errorf("bloom: malformed filter of %d bytes", len(data))
	}
	f := &Filter{
		nbits:    binary.LittleEndian.Uint64(data[0:]),
		hashes:   uint32(binary.LittleEndian.Uint64(data[8:])),
		inserted: binary.LittleEndian.Uint64(data[16:]),
		capacity: binary.LittleEndian.Uint64(data[24:]),
	}
	words := (len(data) - 32) / 8
	if uint64(words*64) < f.nbits {
		return nil, fmt.Errorf("bloom: filter claims %d bits but carries %d", f.nbits, words*64)
	}
	f.bits = make([]uint64, words)
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[32+i*8:])
	}
	return f, nil
}
