package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 10)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	// The paper's configuration: 10 bits/key keeps FP under 1%.
	f := New(10000, 10)
	for i := 0; i < 10000; i++ {
		f.Add([]byte(fmt.Sprintf("in-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("out-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.02 {
		t.Fatalf("false positive rate %.4f exceeds 2%% (paper target <1%%)", rate)
	}
}

func TestInsertedCountsDistinct(t *testing.T) {
	f := New(100, 10)
	f.Add([]byte("a"))
	f.Add([]byte("a")) // duplicate: no bits flip
	f.Add([]byte("b"))
	if f.Inserted() != 2 {
		t.Fatalf("inserted = %d, want 2", f.Inserted())
	}
}

func TestFull(t *testing.T) {
	f := New(10, 10)
	for i := 0; !f.Full(); i++ {
		f.Add([]byte(fmt.Sprintf("k%d", i)))
		if i > 100 {
			t.Fatal("filter never filled")
		}
	}
	if f.Inserted() < 10 {
		t.Fatalf("full at %d inserts, capacity 10", f.Inserted())
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	f := New(500, 10)
	for i := 0; i < 300; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Inserted() != f.Inserted() || g.Capacity() != f.Capacity() {
		t.Fatal("metadata lost in roundtrip")
	}
	for i := 0; i < 300; i++ {
		if !g.Contains([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("roundtrip lost key-%d", i)
		}
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	for _, data := range [][]byte{nil, {1, 2}, make([]byte, 33)} {
		if _, err := Unmarshal(data); err == nil {
			t.Fatalf("expected error for %d bytes", len(data))
		}
	}
}

func TestReset(t *testing.T) {
	f := New(100, 10)
	f.Add([]byte("x"))
	f.Reset()
	if f.Inserted() != 0 {
		t.Fatal("reset did not clear inserted")
	}
	if f.FillRatio() != 0 {
		t.Fatal("reset did not clear bits")
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(1000, 10)
	prev := f.FillRatio()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		for j := 0; j < 200; j++ {
			b := make([]byte, 8)
			rng.Read(b)
			f.Add(b)
		}
		cur := f.FillRatio()
		if cur <= prev {
			t.Fatalf("fill ratio did not grow: %f -> %f", prev, cur)
		}
		prev = cur
	}
	if prev > 0.6 {
		t.Fatalf("fill ratio %f too high for capacity inserts", prev)
	}
}

func TestQuickAddedAlwaysContained(t *testing.T) {
	f := New(4096, 10)
	prop := func(key []byte) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTinyAndDegenerateSizes(t *testing.T) {
	f := New(0, 0) // clamped to minimums
	f.Add([]byte("k"))
	if !f.Contains([]byte("k")) {
		t.Fatal("degenerate filter lost its key")
	}
}

// TestHashVariantsMatchKeyVariants: AddHash/ContainsHash with Hash64 must
// behave identically to Add/Contains — the hotness tracker hashes each key
// once and routes the same 64-bit value to every probe.
func TestHashVariantsMatchKeyVariants(t *testing.T) {
	byKey, byHash := New(1024, 10), New(1024, 10)
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if byKey.Add(key) != byHash.AddHash(Hash64(key)) {
			t.Fatalf("Add/AddHash disagree on %q", key)
		}
	}
	for i := 0; i < 4000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if byKey.Contains(key) != byHash.ContainsHash(Hash64(key)) {
			t.Fatalf("Contains/ContainsHash disagree on %q", key)
		}
	}
	if byKey.Inserted() != byHash.Inserted() {
		t.Fatalf("insert counters diverged: %d vs %d", byKey.Inserted(), byHash.Inserted())
	}
}
