package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hyperdb/internal/device"
)

func newDev() *device.Device {
	return device.New(device.UnthrottledProfile("t", 0))
}

func TestAppendReplay(t *testing.T) {
	dev := newDev()
	w, err := Open(dev, "wal")
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	if err := w.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	dev := newDev()
	w, _ := Open(dev, "wal")
	w.Append([]byte("good-1"))
	w.Append([]byte("good-2"))
	// Simulate a torn tail: append a header claiming more bytes than exist.
	f, _ := dev.Open("wal")
	f.Append([]byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x00, 0x00}) // crc + len 255
	f.Sync(device.Fg)

	w2, _ := Open(dev, "wal")
	var n int
	if err := w2.Replay(func(p []byte) error { n++; return nil }); err != nil {
		t.Fatalf("torn tail should not error: %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d, want 2", n)
	}
}

func TestReplayCorruptMiddle(t *testing.T) {
	dev := newDev()
	w, _ := Open(dev, "wal")
	w.Append([]byte("first"))
	w.Append([]byte("second"))
	// Corrupt a byte inside the first record's payload.
	f, _ := dev.Open("wal")
	f.WriteAt([]byte{0xFF}, 9, device.Fg)

	w2, _ := Open(dev, "wal")
	err := w2.Replay(func(p []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestReset(t *testing.T) {
	dev := newDev()
	w, _ := Open(dev, "wal")
	w.Append([]byte("x"))
	if w.Size() == 0 {
		t.Fatal("size should grow")
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatal("reset did not empty the log")
	}
	n := 0
	w.Replay(func([]byte) error { n++; return nil })
	if n != 0 {
		t.Fatalf("replay after reset returned %d records", n)
	}
	// Appends still work after reset.
	if err := w.Append([]byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitSharesSyncs(t *testing.T) {
	// Group commit only batches when syncs take time; give the device a
	// write latency so concurrent appends pile up behind one sync.
	dev := device.New(device.Profile{
		Name: "t", PageSize: 4096, Channels: 1,
		WriteLatency: 200 * time.Microsecond,
	})
	w, _ := Open(dev, "wal")
	var wg sync.WaitGroup
	const writers, each = 8, 50
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.Append([]byte(fmt.Sprintf("w%d-%d", id, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	n := 0
	if err := w.Replay(func(p []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*each {
		t.Fatalf("replayed %d, want %d", n, writers*each)
	}
	// Group commit: sync (write op) count must be well under record count.
	ops := dev.Counters().WriteOps.Load()
	if ops >= writers*each {
		t.Fatalf("%d write ops for %d records — group commit not batching", ops, writers*each)
	}
}

func TestReopenContinues(t *testing.T) {
	dev := newDev()
	w, _ := Open(dev, "wal")
	w.Append([]byte("a"))
	w2, err := Open(dev, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	n := 0
	w2.Replay(func([]byte) error { n++; return nil })
	if n != 2 {
		t.Fatalf("replayed %d after reopen, want 2", n)
	}
}

func TestEmptyPayload(t *testing.T) {
	dev := newDev()
	w, _ := Open(dev, "wal")
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := w.Replay(func(p []byte) error {
		if len(p) != 0 {
			t.Fatalf("payload = %q", p)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
}

// TestReplayAfterInjectedCrash arms the device fault plan mid-log and power
// cuts at the first Append error. The failing record may be wholly or partly
// lost (a torn sync persists a page prefix that can end mid-record), but
// every record acknowledged before the crash must replay, in order, and the
// torn tail must stop replay silently rather than erroring.
func TestReplayAfterInjectedCrash(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		dev := newDev()
		w, err := Open(dev, "wal")
		if err != nil {
			t.Fatal(err)
		}
		// Payloads span pages so torn syncs can cut records in half.
		payload := func(i int) []byte {
			return append([]byte(fmt.Sprintf("rec-%02d-", i)), bytes.Repeat([]byte{byte(i)}, 1400)...)
		}
		acked := 0
		for i := 0; i < 3; i++ {
			if err := w.Append(payload(i)); err != nil {
				t.Fatal(err)
			}
			acked++
		}
		dev.InjectFaults(device.FaultPlan{
			Seed:           seed,
			FailWriteAfter: 1 + seed%3,
			TornWrites:     seed%2 == 0,
		})
		attempted := acked
		for i := acked; i < acked+8; i++ {
			attempted++
			if err := w.Append(payload(i)); err != nil {
				if !errors.Is(err, device.ErrInjected) {
					t.Fatalf("seed %d: append %d: %v", seed, i, err)
				}
				break
			}
			acked++
		}
		if acked == attempted {
			t.Fatalf("seed %d: fault plan never fired", seed)
		}
		dev.PowerCut()
		dev.ClearFaults()

		w2, err := Open(dev, "wal")
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		var got [][]byte
		if err := w2.Replay(func(p []byte) error {
			got = append(got, bytes.Clone(p))
			return nil
		}); err != nil {
			t.Fatalf("seed %d: replay after crash: %v", seed, err)
		}
		if len(got) < acked || len(got) >= attempted {
			t.Fatalf("seed %d: replayed %d records, want [%d,%d)", seed, len(got), acked, attempted)
		}
		for i, p := range got {
			if !bytes.Equal(p, payload(i)) {
				t.Fatalf("seed %d: record %d mismatch", seed, i)
			}
		}
	}
}

func TestAppendNoSyncThenSync(t *testing.T) {
	// Unsynced records vanish at a power cut; once Sync returns they survive.
	dev := newDev()
	w, err := Open(dev, "wal")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.AppendNoSync([]byte(fmt.Sprintf("lost-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	dev.PowerCut()
	w, err = Open(dev, "wal")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := w.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("%d unsynced records survived a power cut", n)
	}

	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("kept-%d", i))
		want = append(want, p)
		if err := w.AppendNoSync(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Idle Sync with nothing new appended must not error.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	dev.PowerCut()
	w, err = Open(dev, "wal")
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	if err := w.Replay(func(p []byte) error {
		got = append(got, bytes.Clone(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Mixing with durable Append keeps the unsynced prefix ordered: Append's
	// group commit covers the earlier AppendNoSync tail too.
	if err := w.AppendNoSync([]byte("tail-1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("tail-2")); err != nil {
		t.Fatal(err)
	}
	dev.PowerCut()
	w, err = Open(dev, "wal")
	if err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := w.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(want)+2 {
		t.Fatalf("replayed %d records, want %d", n, len(want)+2)
	}
}
