// Package wal implements the write-ahead log used by every engine for
// durability. Records are length-prefixed and CRC-protected. Commit uses
// group commit: concurrent writers append under a short lock and one of them
// syncs the whole dirty tail, so a burst of N writes costs one device sync —
// the optimisation the paper credits for RocksDB's strong write latency.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"hyperdb/internal/device"
)

// ErrCorrupt reports a record that failed its checksum; recovery stops at
// the previous good record, mimicking a torn tail write.
var ErrCorrupt = errors.New("wal: corrupt record")

const headerSize = 8 // crc32 + uint32 length

// WAL is a write-ahead log on a device file.
type WAL struct {
	mu     sync.Mutex
	file   *device.File
	synced int64 // bytes durably written
	tail   int64 // bytes appended (logical end)

	syncing   bool
	syncDone  *sync.Cond
	appendBuf []byte
}

// Open creates (or reopens) the log file named name on dev.
func Open(dev *device.Device, name string) (*WAL, error) {
	f, err := dev.Open(name)
	if err != nil {
		f, err = dev.Create(name)
		if err != nil {
			return nil, err
		}
	}
	w := &WAL{file: f, synced: f.Size(), tail: f.Size()}
	w.syncDone = sync.NewCond(&w.mu)
	return w, nil
}

// Append durably writes one record and returns once it (and everything
// appended before it) is synced. Safe for concurrent use; concurrent calls
// share syncs.
func (w *WAL) Append(payload []byte) error {
	w.mu.Lock()
	w.appendBuf = w.appendBuf[:0]
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	w.appendBuf = append(w.appendBuf, hdr[:]...)
	w.appendBuf = append(w.appendBuf, payload...)
	if _, err := w.file.Append(w.appendBuf); err != nil {
		w.mu.Unlock()
		return err
	}
	w.tail += int64(headerSize + len(payload))
	myOffset := w.tail
	err := w.syncToLocked(myOffset)
	w.mu.Unlock()
	return err
}

// syncToLocked runs the group-commit protocol until at least myOffset bytes
// are durable: wait for an in-flight sync to finish, then either ride on it
// (our data got included) or lead the next sync ourselves. Called — and
// returns — with w.mu held.
func (w *WAL) syncToLocked(myOffset int64) error {
	for w.synced < myOffset {
		if w.syncing {
			w.syncDone.Wait()
			continue
		}
		w.syncing = true
		target := w.tail
		w.mu.Unlock()
		err := w.file.Sync(device.Fg)
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.syncDone.Broadcast()
			return err
		}
		if target > w.synced {
			w.synced = target
		}
		w.syncDone.Broadcast()
	}
	return nil
}

// AppendNoSync writes one record without waiting for durability. The record
// is on the device's write path but survives a crash only after a later
// Append or Sync covers it. The replication log uses this to persist shipped
// entries off the foreground latency path, syncing in batches.
func (w *WAL) AppendNoSync(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendBuf = w.appendBuf[:0]
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	w.appendBuf = append(w.appendBuf, hdr[:]...)
	w.appendBuf = append(w.appendBuf, payload...)
	if _, err := w.file.Append(w.appendBuf); err != nil {
		return err
	}
	w.tail += int64(headerSize + len(payload))
	return nil
}

// Sync makes every record appended so far durable, sharing in-flight group
// commits exactly like Append.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncToLocked(w.tail)
}

// Name returns the log file's name on its device.
func (w *WAL) Name() string { return w.file.Name() }

// Size returns the logical log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tail
}

// Reset truncates the log to empty, used after its contents are flushed to
// tables. Callers must ensure no concurrent Appends.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.file.Truncate(0); err != nil {
		return err
	}
	w.synced, w.tail = 0, 0
	return nil
}

// Replay invokes fn for every intact record in order. A corrupt or truncated
// tail record ends replay without error (standard torn-write handling);
// corruption before the tail returns ErrCorrupt.
func (w *WAL) Replay(fn func(payload []byte) error) error {
	size := w.file.Size()
	var off int64
	hdr := make([]byte, headerSize)
	for off+headerSize <= size {
		if _, err := w.file.ReadAt(hdr, off, device.FgSeq); err != nil {
			return err
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		n := int64(binary.LittleEndian.Uint32(hdr[4:]))
		if off+headerSize+n > size {
			return nil // truncated tail
		}
		payload := make([]byte, n)
		if _, err := w.file.ReadAt(payload, off+headerSize, device.FgSeq); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if off+headerSize+n == size {
				return nil // torn tail
			}
			return fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += headerSize + n
	}
	return nil
}
