package zone

import (
	"bytes"
	"fmt"
	"sort"

	"hyperdb/internal/device"
)

// PickDemotionVictim returns the key-range zone with the best §3.5
// benefit/cost score, or nil when the group has no migratable zone. The hot
// zone is never demoted wholesale.
func (m *Manager) PickDemotionVictim() *Zone {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var best *Zone
	var bestScore float64
	for _, z := range m.zones {
		if z.objects == 0 {
			continue
		}
		if s := z.Score(); best == nil || s > bestScore {
			best, bestScore = z, s
		}
	}
	return best
}

// locRef pairs an index key with its location, for migration snapshots.
type locRef struct {
	key []byte
	loc Location
}

// PrepareMigration detaches zone z from the group and reads its objects out
// of the slot files at page granularity. New writes to the zone's key range
// create a fresh zone; concurrent updates to migrated keys simply supersede
// them (CommitMigration compares sequence numbers).
//
// The returned batch's entries are sorted by key — the zone's limited key
// range is what makes this cheap (§3.2). PageReads counts the distinct pages
// fetched, the experiment metric behind Figure 9b.
func (m *Manager) PrepareMigration(z *Zone) (*Batch, error) {
	m.mu.Lock()
	// Detach: remove from the ordered zone list so the range can be
	// re-zoned, and from zoneByID so concurrent updates to migrated keys
	// allocate fresh slots instead of writing in place into pages that are
	// about to be freed. A zone already detached by a racing migration
	// (foreground stall vs background worker) yields a nil batch.
	found := false
	for i, zz := range m.zones {
		if zz == z {
			m.zones = append(m.zones[:i], m.zones[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		m.mu.Unlock()
		return nil, nil
	}
	delete(m.zoneByID, z.id)
	// Snapshot the zone's index entries. The zone's range bounds the scan.
	var refs []locRef
	lo := encodeKey64(z.lo)
	var hi []byte
	if z.hi != ^uint64(0) {
		hi = encodeKey64(z.hi)
	}
	m.index.Ascend(lo, hi, func(k []byte, loc Location) bool {
		if loc.ZoneID == z.id {
			refs = append(refs, locRef{key: k, loc: loc})
		}
		return true
	})
	m.mu.Unlock()

	// Read pages outside the lock; the zone is detached so its slots are
	// stable (slot reuse only happens through the zone, which no new write
	// can reach).
	batch := &Batch{zone: z}
	type pageKey struct {
		class int8
		page  uint32
	}
	pages := make(map[pageKey][]byte)
	for _, r := range refs {
		pk := pageKey{r.loc.Class, r.loc.Page}
		page, ok := pages[pk]
		if !ok {
			var err error
			page, err = m.slotFiles[r.loc.Class].readPage(r.loc.Page, device.Bg)
			if err != nil {
				return nil, err
			}
			pages[pk] = page
			batch.PageReads++
		}
		_, tomb, k, v, err := m.slotFiles[r.loc.Class].decodeSlotInPage(page, r.loc.Slot)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(k, r.key) {
			return nil, fmt.Errorf("zone: migration found %q at slot of %q", k, r.key)
		}
		batch.Entries = append(batch.Entries, MigEntry{
			Key:       bytes.Clone(k),
			Value:     bytes.Clone(v),
			Seq:       r.loc.Seq,
			Tombstone: tomb,
		})
	}
	// Index iteration order is already sorted; assert the invariant cheaply.
	if !sort.SliceIsSorted(batch.Entries, func(a, b int) bool {
		return bytes.Compare(batch.Entries[a].Key, batch.Entries[b].Key) < 0
	}) {
		return nil, fmt.Errorf("zone: migration batch out of order")
	}
	m.migrationPageReads.Add(uint64(batch.PageReads))
	return batch, nil
}

// CommitMigration finalises a batch after the capacity tier has durably
// absorbed it: index entries that still point at the migrated versions are
// removed (newer concurrent writes are kept) and the zone's pages return to
// the slot files' free lists.
func (m *Manager) CommitMigration(b *Batch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range b.Entries {
		if cur, ok := m.index.Get(e.Key); ok && cur.ZoneID == b.zone.id && cur.Seq == e.Seq {
			m.index.Delete(e.Key)
			m.vcacheDelete(e.Key)
		}
	}
	for c, pageSet := range b.zone.pages {
		for p := range pageSet {
			m.invalidateCache(c, p)
			m.slotFiles[c].freePage(p)
		}
	}
	m.slotFilesAdjust(-b.zone.bytes, -b.zone.objects)
	m.migrations.Inc()
	m.migratedObjects.Add(uint64(len(b.Entries)))
}

// slotFilesAdjust spreads aggregate byte/object deltas across slot files for
// the Eq. 1 estimate after a whole-zone drop. Caller holds mu.
func (m *Manager) slotFilesAdjust(bytesDelta, objectsDelta int64) {
	// Aggregate-only adjustment: Eq. 1 uses ΣF_k/ΣN_k, so attributing the
	// delta to the first file keeps the ratio exact without per-class
	// bookkeeping during wholesale zone drops.
	if len(m.slotFiles) > 0 {
		m.slotFiles[0].bytes += bytesDelta
		m.slotFiles[0].objects += objectsDelta
	}
}

// AbortMigration reattaches a prepared batch's zone after a failed merge so
// its objects stay readable and migratable.
func (m *Manager) AbortMigration(b *Batch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	z := b.zone
	m.zoneByID[z.id] = z
	i := sort.Search(len(m.zones), func(i int) bool { return m.zones[i].lo > z.lo })
	m.zones = append(m.zones, nil)
	copy(m.zones[i+1:], m.zones[i:])
	m.zones[i] = z
}

// encodeKey64 renders a keyspace position back into an 8-byte key bound.
func encodeKey64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}

// EvictHotZone rebuilds the hot zone (§3.5): objects still classified hot by
// isHot stay; cold objects with the promotion label are dropped outright
// (the capacity tier still has them); cold authoritative objects relocate to
// their key-range zones. Old hot-zone pages are then freed wholesale.
func (m *Manager) EvictHotZone(isHot func(key []byte) bool) error {
	m.evictMu.Lock()
	defer m.evictMu.Unlock()
	m.mu.Lock()
	old := m.hot
	m.hot = newZone(0, 0, ^uint64(0), true, len(m.cfg.Classes))
	// Collect the old hot zone's entries from the index.
	var refs []locRef
	m.index.Ascend(nil, nil, func(k []byte, loc Location) bool {
		if loc.ZoneID == old.id && old == m.zoneByID[loc.ZoneID] {
			refs = append(refs, locRef{key: bytes.Clone(k), loc: loc})
		}
		return true
	})
	// Swap IDs so new hot writes are distinguishable: give the rebuilt hot
	// zone a fresh id and register it.
	m.hot.id = m.nextZone
	m.nextZone++
	m.zoneByID[m.hot.id] = m.hot
	delete(m.zoneByID, old.id)
	m.mu.Unlock()

	for _, r := range refs {
		page, err := m.slotFiles[r.loc.Class].readPage(r.loc.Page, device.Bg)
		if err != nil {
			return err
		}
		_, tomb, k, v, err := m.slotFiles[r.loc.Class].decodeSlotInPage(page, r.loc.Slot)
		if err != nil || !bytes.Equal(k, r.key) {
			continue // superseded concurrently
		}
		m.mu.Lock()
		cur, ok := m.index.Get(r.key)
		if !ok || cur.Seq != r.loc.Seq || cur.ZoneID != old.id {
			m.mu.Unlock()
			continue // superseded concurrently
		}
		switch {
		case isHot != nil && isHot(r.key):
			// Still hot: keep in the rebuilt hot zone.
			loc, err := m.writeObject(m.hot, int(r.loc.Class), k, v, r.loc.Seq, tomb, r.loc.Promoted, device.Bg)
			if err != nil {
				m.mu.Unlock()
				return err
			}
			m.index.Set(r.key, loc)
		case r.loc.Promoted:
			// Cold promoted copy: drop without relocation.
			m.index.Delete(r.key)
			m.vcacheDelete(r.key)
			m.hotEvictDropped.Inc()
		default:
			// Cold authoritative object: relocate into its key-range zone.
			k64 := Key64(r.key)
			z := m.zoneFor(k64)
			if z == nil {
				z = m.createZone(k64)
			}
			loc, err := m.writeObject(z, int(r.loc.Class), k, v, r.loc.Seq, tomb, false, device.Bg)
			if err != nil {
				m.mu.Unlock()
				return err
			}
			m.index.Set(r.key, loc)
			m.hotEvictRelocated.Inc()
		}
		m.mu.Unlock()
	}

	// Free the old hot zone's pages.
	m.mu.Lock()
	for c, pageSet := range old.pages {
		for p := range pageSet {
			m.invalidateCache(c, p)
			m.slotFiles[c].freePage(p)
		}
	}
	m.slotFilesAdjust(-old.bytes, -old.objects)
	m.mu.Unlock()
	return nil
}
