package zone

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"hyperdb/internal/device"
)

func newMgr(t testing.TB, capacity int64, batch int64) (*Manager, *device.Device) {
	t.Helper()
	dev := device.New(device.UnthrottledProfile("nvme", capacity))
	m, err := NewManager(Config{Dev: dev, Partition: 0, BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return m, dev
}

func k8(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

func TestPutGetDelete(t *testing.T) {
	m, _ := newMgr(t, 0, 64<<10)
	for i := uint64(0); i < 500; i++ {
		if err := m.Put(k8(i<<40), []byte(fmt.Sprintf("v%d", i)), i+1, false, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		v, seq, tomb, found, err := m.Get(k8(i<<40), device.Fg)
		if err != nil || !found || tomb || seq != i+1 || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: %q seq=%d tomb=%v found=%v err=%v", i, v, seq, tomb, found, err)
		}
	}
	if err := m.Delete(k8(7<<40), 1000); err != nil {
		t.Fatal(err)
	}
	_, _, tomb, found, _ := m.Get(k8(7<<40), device.Fg)
	if !found || !tomb {
		t.Fatalf("deleted key: tomb=%v found=%v", tomb, found)
	}
	if _, _, _, found, _ := m.Get(k8(999<<40), device.Fg); found {
		t.Fatal("phantom key")
	}
}

func TestInPlaceUpdateSameClass(t *testing.T) {
	m, dev := newMgr(t, 0, 64<<10)
	key := k8(5 << 40)
	m.Put(key, make([]byte, 100), 1, false, false)
	usedBefore := dev.Used()
	m.Put(key, make([]byte, 90), 2, false, false) // same 128B class
	if dev.Used() != usedBefore {
		t.Fatal("in-place update should not allocate")
	}
	if m.Stats().InPlaceUpdates != 1 {
		t.Fatalf("inPlace = %d", m.Stats().InPlaceUpdates)
	}
	v, seq, _, found, _ := m.Get(key, device.Fg)
	if !found || seq != 2 || len(v) != 90 {
		t.Fatalf("after update: len=%d seq=%d", len(v), seq)
	}
}

func TestResizeRelocatesWithTombstone(t *testing.T) {
	m, _ := newMgr(t, 0, 64<<10)
	key := k8(5 << 40)
	m.Put(key, make([]byte, 40), 1, false, false)  // 64B class
	m.Put(key, make([]byte, 400), 2, false, false) // 512B class
	if m.Stats().Relocations != 1 {
		t.Fatalf("relocations = %d", m.Stats().Relocations)
	}
	v, _, _, found, _ := m.Get(key, device.Fg)
	if !found || len(v) != 400 {
		t.Fatalf("after resize: len=%d found=%v", len(v), found)
	}
	if m.ObjectCount() != 1 {
		t.Fatalf("objects = %d", m.ObjectCount())
	}
}

func TestTooLargeRejected(t *testing.T) {
	m, _ := newMgr(t, 0, 64<<10)
	if err := m.Put(k8(1), make([]byte, 5000), 1, false, false); err != ErrTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestZonesPartitionKeySpace(t *testing.T) {
	m, _ := newMgr(t, 0, 16<<10)
	// Fill with spread keys so multiple zones appear after the estimate
	// kicks in.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		m.Put(k8(rng.Uint64()), make([]byte, 64), uint64(i+1), false, false)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := 1; i < len(m.zones); i++ {
		if m.zones[i-1].hi > m.zones[i].lo {
			t.Fatalf("zones %d,%d overlap: [%x,%x) vs [%x,%x)", i-1, i,
				m.zones[i-1].lo, m.zones[i-1].hi, m.zones[i].lo, m.zones[i].hi)
		}
	}
}

func TestHotObjectsGoToHotZone(t *testing.T) {
	m, _ := newMgr(t, 0, 64<<10)
	m.Put(k8(1<<40), []byte("hot"), 1, true, false)
	m.Put(k8(2<<40), []byte("cold"), 2, false, false)
	if m.HotZoneBytes() == 0 {
		t.Fatal("hot put did not land in hot zone")
	}
	v, _, _, found, _ := m.Get(k8(1<<40), device.Fg)
	if !found || string(v) != "hot" {
		t.Fatalf("hot get: %q %v", v, found)
	}
}

func TestMigrationLifecycle(t *testing.T) {
	m, dev := newMgr(t, 0, 8<<10)
	var wantKeys [][]byte
	for i := uint64(0); i < 400; i++ {
		k := k8(i << 32)
		wantKeys = append(wantKeys, k)
		m.Put(k, []byte(fmt.Sprintf("v%d", i)), i+1, false, false)
	}
	z := m.PickDemotionVictim()
	if z == nil {
		t.Fatal("no victim")
	}
	usedBefore := dev.Used()
	batch, err := m.PrepareMigration(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Entries) == 0 || batch.PageReads == 0 {
		t.Fatalf("batch: %d entries, %d reads", len(batch.Entries), batch.PageReads)
	}
	// Entries sorted.
	for i := 1; i < len(batch.Entries); i++ {
		if bytes.Compare(batch.Entries[i-1].Key, batch.Entries[i].Key) >= 0 {
			t.Fatal("batch out of order")
		}
	}
	// Before commit, reads still work (pages not freed yet).
	v, _, _, found, _ := m.Get(batch.Entries[0].Key, device.Fg)
	if !found || !bytes.Equal(v, batch.Entries[0].Value) {
		t.Fatal("read during migration failed")
	}
	m.CommitMigration(batch)
	if dev.Used() >= usedBefore {
		t.Fatal("commit did not free pages")
	}
	// Migrated keys gone from the tier.
	if _, _, _, found, _ := m.Get(batch.Entries[0].Key, device.Fg); found {
		t.Fatal("migrated key still present")
	}
	st := m.Stats()
	if st.Migrations != 1 || st.MigratedObjects != uint64(len(batch.Entries)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMigrationKeepsConcurrentUpdates(t *testing.T) {
	m, _ := newMgr(t, 0, 8<<10)
	for i := uint64(0); i < 200; i++ {
		m.Put(k8(i<<32), []byte("old"), i+1, false, false)
	}
	z := m.PickDemotionVictim()
	batch, err := m.PrepareMigration(z)
	if err != nil {
		t.Fatal(err)
	}
	// Update one migrated key mid-flight.
	victim := batch.Entries[0].Key
	if err := m.Put(victim, []byte("newer"), 10_000, false, false); err != nil {
		t.Fatal(err)
	}
	m.CommitMigration(batch)
	v, seq, _, found, _ := m.Get(victim, device.Fg)
	if !found || string(v) != "newer" || seq != 10_000 {
		t.Fatalf("concurrent update lost: %q seq=%d found=%v", v, seq, found)
	}
}

func TestAbortMigrationRestores(t *testing.T) {
	m, _ := newMgr(t, 0, 8<<10)
	for i := uint64(0); i < 200; i++ {
		m.Put(k8(i<<32), []byte("v"), i+1, false, false)
	}
	z := m.PickDemotionVictim()
	batch, _ := m.PrepareMigration(z)
	m.AbortMigration(batch)
	// All keys still readable and a second migration can pick the zone.
	for _, e := range batch.Entries {
		if _, _, _, found, _ := m.Get(e.Key, device.Fg); !found {
			t.Fatalf("key %x lost after abort", e.Key)
		}
	}
	if m.PickDemotionVictim() == nil {
		t.Fatal("aborted zone not demotable again")
	}
}

func TestPromote(t *testing.T) {
	m, _ := newMgr(t, 0, 64<<10)
	if err := m.Promote(k8(3<<40), []byte("promoted"), 7); err != nil {
		t.Fatal(err)
	}
	v, seq, _, found, _ := m.Get(k8(3<<40), device.Fg)
	if !found || seq != 7 || string(v) != "promoted" {
		t.Fatalf("promoted get: %q seq=%d", v, seq)
	}
	// Promote must not clobber an existing (newer) version.
	m.Put(k8(4<<40), []byte("fresh"), 100, false, false)
	m.Promote(k8(4<<40), []byte("stale"), 50)
	v, _, _, _, _ = m.Get(k8(4<<40), device.Fg)
	if string(v) != "fresh" {
		t.Fatalf("promote clobbered newer value: %q", v)
	}
}

func TestEvictHotZone(t *testing.T) {
	m, _ := newMgr(t, 0, 64<<10)
	// Three kinds of hot-zone residents:
	m.Put(k8(1<<40), []byte("still-hot"), 1, true, false)
	m.Promote(k8(2<<40), []byte("cold-promoted"), 2)
	m.Put(k8(3<<40), []byte("cold-authoritative"), 3, true, false)

	stillHot := func(key []byte) bool { return bytes.Equal(key, k8(1<<40)) }
	if err := m.EvictHotZone(stillHot); err != nil {
		t.Fatal(err)
	}
	// still-hot stays readable.
	if _, _, _, found, _ := m.Get(k8(1<<40), device.Fg); !found {
		t.Fatal("still-hot object lost")
	}
	// cold promoted copy dropped (capacity tier owns it).
	if _, _, _, found, _ := m.Get(k8(2<<40), device.Fg); found {
		t.Fatal("cold promoted copy should be dropped")
	}
	// cold authoritative object relocated, still readable.
	v, _, _, found, _ := m.Get(k8(3<<40), device.Fg)
	if !found || string(v) != "cold-authoritative" {
		t.Fatalf("cold authoritative object lost: %q %v", v, found)
	}
	st := m.Stats()
	if st.HotEvictDropped != 1 || st.HotEvictRelocated != 1 {
		t.Fatalf("evict stats: %+v", st)
	}
}

func TestDemotionScorePrefersColdDenseZones(t *testing.T) {
	m, _ := newMgr(t, 0, 4<<10)
	// Create objects across two zones; then read one zone a lot.
	for i := uint64(0); i < 100; i++ {
		m.Put(k8(i<<30), make([]byte, 100), i+1, false, false)
	}
	for i := uint64(0); i < 100; i++ {
		m.Put(k8(1<<60|i<<30), make([]byte, 100), 200+i, false, false)
	}
	m.mu.RLock()
	nZones := len(m.zones)
	m.mu.RUnlock()
	if nZones < 2 {
		t.Skip("bootstrap produced one zone; scoring comparison needs two")
	}
	// Heavily read keys in the second half of the space.
	for r := 0; r < 50; r++ {
		m.Get(k8(1<<60|uint64(r%100)<<30), device.Fg)
	}
	victim := m.PickDemotionVictim()
	if victim == nil {
		t.Fatal("no victim")
	}
	if victim.contains(1 << 60) {
		t.Fatal("picked the hot (recently read) zone for demotion")
	}
}

func TestSplitZone(t *testing.T) {
	m, _ := newMgr(t, 0, 4<<10) // tiny batch: bootstrap zone oversize fast
	for i := uint64(0); i < 2000; i++ {
		m.Put(k8(i<<44), make([]byte, 64), i+1, false, false)
	}
	z, _ := m.PickOversizedZone()
	if z == nil {
		t.Skip("no oversized zone emerged")
	}
	zonesBefore := m.ZoneCount()
	moved, err := m.SplitZone(z)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("split moved nothing")
	}
	if m.ZoneCount() <= zonesBefore {
		t.Fatalf("zones %d -> %d; split should create more zones", zonesBefore, m.ZoneCount())
	}
	// All data still readable.
	for i := uint64(0); i < 2000; i += 97 {
		if _, _, _, found, _ := m.Get(k8(i<<44), device.Fg); !found {
			t.Fatalf("key %d lost in split", i)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	m, _ := newMgr(t, 0, 64<<10)
	for i := uint64(0); i < 300; i++ {
		m.Put(k8(i<<40), []byte("v"), i+1, false, false)
	}
	var prev []byte
	n := 0
	m.Scan(nil, nil, func(k []byte, loc Location) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != 300 {
		t.Fatalf("scanned %d", n)
	}
}

func TestKey64(t *testing.T) {
	if Key64([]byte{0, 0, 0, 0, 0, 0, 0, 1}) != 1 {
		t.Fatal("BE decode wrong")
	}
	if Key64([]byte{1}) != 1<<56 {
		t.Fatal("short key padding wrong")
	}
	if Key64(nil) != 0 {
		t.Fatal("nil key should map to 0")
	}
}

func TestRecoverRebuildsIndex(t *testing.T) {
	dev := device.New(device.UnthrottledProfile("nvme", 0))
	m, err := NewManager(Config{Dev: dev, Partition: 0, BatchSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Writes, updates (in place and resized), deletes, a migration.
	for i := uint64(0); i < 1000; i++ {
		m.Put(k8(i<<40), make([]byte, 100), i+1, false, false)
	}
	for i := uint64(0); i < 1000; i += 5 {
		m.Put(k8(i<<40), make([]byte, 90), 2000+i, false, false) // in place
	}
	for i := uint64(1); i < 1000; i += 50 {
		m.Put(k8(i<<40), make([]byte, 400), 4000+i, false, false) // resized
	}
	for i := uint64(2); i < 1000; i += 100 {
		m.Delete(k8(i<<40), 6000+i)
	}
	if z := m.PickDemotionVictim(); z != nil {
		b, err := m.PrepareMigration(z)
		if err != nil {
			t.Fatal(err)
		}
		m.CommitMigration(b)
	}
	// Refill after the migration so the recovered tier is non-trivial.
	for i := uint64(0); i < 300; i++ {
		m.Put(k8(i<<40|7), make([]byte, 80), 10_000+i, false, false)
	}

	// Snapshot expected state.
	type want struct {
		seq  uint64
		tomb bool
	}
	expect := map[string]want{}
	m.Scan(nil, nil, func(k []byte, loc Location) bool {
		expect[string(k)] = want{seq: loc.Seq, tomb: loc.Tombstone}
		return true
	})

	re, maxSeq, err := Recover(Config{Dev: dev, Partition: 0, BatchSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if re.ObjectCount() != len(expect) {
		t.Fatalf("recovered %d objects, want %d", re.ObjectCount(), len(expect))
	}
	for k, w := range expect {
		v, seq, tomb, found, err := re.Get([]byte(k), device.Fg)
		if err != nil || !found {
			t.Fatalf("recovered get %x: found=%v err=%v", k, found, err)
		}
		if seq != w.seq || tomb != w.tomb {
			t.Fatalf("recovered %x: seq=%d tomb=%v, want seq=%d tomb=%v", k, seq, tomb, w.seq, w.tomb)
		}
		if !tomb && len(v) == 0 {
			t.Fatalf("recovered %x: empty value", k)
		}
	}
	if maxSeq < 10_000 {
		t.Fatalf("maxSeq = %d", maxSeq)
	}
	// The recovered manager is fully operational.
	if err := re.Put(k8(5000<<32), []byte("new"), maxSeq+1, false, false); err != nil {
		t.Fatal(err)
	}
	if z := re.PickDemotionVictim(); z == nil {
		t.Fatal("recovered manager cannot pick demotion victims")
	}
}

func TestRecoverSlotReuseAccounting(t *testing.T) {
	// After recovery, freed slots must be reusable without double counting.
	dev := device.New(device.UnthrottledProfile("nvme", 0))
	m, _ := NewManager(Config{Dev: dev, Partition: 0, BatchSize: 16 << 10})
	for i := uint64(0); i < 200; i++ {
		m.Put(k8(i<<40), make([]byte, 100), i+1, false, false)
	}
	for i := uint64(0); i < 200; i += 2 {
		m.Put(k8(i<<40), make([]byte, 400), 500+i, false, false) // resize frees 128B slots
	}
	re, maxSeq, err := Recover(Config{Dev: dev, Partition: 0, BatchSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	usedBefore := dev.Used()
	// New small writes into the existing zone ranges should reuse the freed
	// 128B slots, not allocate fresh pages.
	for i := uint64(0); i < 50; i++ {
		if err := re.Put(k8(i<<40|3), make([]byte, 100), maxSeq+i+1, false, false); err != nil {
			t.Fatal(err)
		}
	}
	if grown := dev.Used() - usedBefore; grown > 4096*2 {
		t.Fatalf("recovered manager allocated %d bytes despite free slots", grown)
	}
}
