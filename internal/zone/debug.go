package zone

import (
	"bytes"
	"fmt"

	"hyperdb/internal/device"
)

// DebugSlotsForKey scans a partition's slot files for every CRC-valid slot
// holding key, returning human-readable descriptions. Test diagnostics only.
func DebugSlotsForKey(dev *device.Device, partition int, key []byte) []string {
	var out []string
	for _, cls := range defaultClasses {
		f, err := dev.Open(fmt.Sprintf("p%d-slab%d", partition, cls))
		if err != nil {
			continue
		}
		ps := int64(4096)
		spp := int(ps) / cls
		if spp < 1 {
			spp = 1
		}
		for _, p := range f.AllocatedPageIDs() {
			page := make([]byte, ps)
			if _, err := f.ReadAt(page, p*ps, device.Bg); err != nil {
				continue
			}
			for s := 0; s < spp; s++ {
				off := s * cls
				ts, tomb, k, v, err := decodeSlot(page[off : off+cls])
				if err != nil || !bytes.Equal(k, key) {
					continue
				}
				out = append(out, fmt.Sprintf("class=%d page=%d slot=%d seq=%d tomb=%v vlen=%d", cls, p, s, ts, tomb, len(v)))
			}
		}
	}
	return out
}
