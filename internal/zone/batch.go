package zone

import (
	"bytes"

	"hyperdb/internal/device"
)

// BatchOp is one write in an ApplyBatch call: a put, or a tombstone when
// Delete is set. Seq and Hot are resolved by the caller (core.DB allocates
// one sequence block per batch and classifies hotness via the tracker).
type BatchOp struct {
	Key    []byte
	Value  []byte
	Seq    uint64
	Hot    bool
	Delete bool
}

// ApplyBatch applies ops in order under a single lock acquisition — the
// point of DB.WriteBatch: one mutex round-trip per partition group instead
// of one per key. It returns how many ops were applied; on error the
// remaining ops are untouched, so a stalled caller can free space and resume
// from ops[applied:] with the original sequences.
func (m *Manager) ApplyBatch(ops []BatchOp) (applied int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range ops {
		op := &ops[i]
		if op.Delete {
			err = m.deleteLocked(op.Key, op.Seq)
		} else {
			err = m.putLocked(op.Key, op.Value, op.Seq, op.Hot, false)
		}
		if err != nil {
			return i, err
		}
	}
	return len(ops), nil
}

// GetResult is one key's outcome in a GetBatch call. Found=false means the
// tier has no opinion; Tombstone=true is an authoritative deletion.
type GetResult struct {
	Value     []byte
	Seq       uint64
	Tombstone bool
	Found     bool
}

// GetBatch looks up every key with one index-lock acquisition, then serves
// the values with a page memo shared across the batch: two keys on the same
// slot page cost one page read. Results are positionally aligned with keys.
func (m *Manager) GetBatch(keyList [][]byte, op device.Op) ([]GetResult, error) {
	type pending struct {
		idx int
		loc Location
		z   *Zone
	}
	res := make([]GetResult, len(keyList))
	var reads []pending
	m.mu.RLock()
	for i, key := range keyList {
		loc, ok := m.index.Get(key)
		if !ok {
			continue
		}
		if loc.Tombstone {
			res[i] = GetResult{Seq: loc.Seq, Tombstone: true, Found: true}
			continue
		}
		// Same value-cache fast path as Get: a sequence-matched entry is
		// the newest version and needs no page at all.
		if e, ok := m.vcache[string(key)]; ok && e.seq == loc.Seq {
			res[i] = GetResult{Value: bytes.Clone(e.val), Seq: loc.Seq, Found: true}
			continue
		}
		reads = append(reads, pending{idx: i, loc: loc, z: m.zoneByID[loc.ZoneID]})
	}
	m.mu.RUnlock()

	pages := make(map[scanPageKey][]byte, len(reads))
	for _, pd := range reads {
		key := keyList[pd.idx]
		sf := m.slotFiles[pd.loc.Class]
		pk := scanPageKey{pd.loc.Class, pd.loc.Page}
		page, havePage := pages[pk]
		fromDevice := false
		if !havePage {
			ck := m.cacheKey(int(pd.loc.Class), pd.loc.Page)
			if m.cfg.PageCache != nil {
				if cached, hit := m.cfg.PageCache.Get(ck); hit {
					// A cached page is trusted per slot only when the stored
					// sequence matches the index entry (same staleness rule
					// as Get); verified below.
					page, havePage = cached, true
				}
			}
			if !havePage {
				var err error
				page, err = sf.readPage(pd.loc.Page, op)
				if err != nil {
					return nil, err
				}
				fromDevice = true
				if m.cfg.PageCache != nil {
					m.cfg.PageCache.Put(ck, page)
				}
				if pd.z != nil && !op.Background {
					pd.z.readIOs.Add(1)
				}
			}
			pages[pk] = page
		}
		slotSeq, tomb, k, v, derr := sf.decodeSlotInPage(page, pd.loc.Slot)
		if derr == nil && bytes.Equal(k, key) && slotSeq == pd.loc.Seq {
			if tomb {
				res[pd.idx] = GetResult{Seq: pd.loc.Seq, Tombstone: true, Found: true}
			} else {
				res[pd.idx] = GetResult{Value: bytes.Clone(v), Seq: pd.loc.Seq, Found: true}
			}
			continue
		}
		if fromDevice {
			// Slot recycled by a racing migration: the value lives in the
			// capacity tier now; report a miss so the caller falls through.
			continue
		}
		// Stale memoised/cached page — refetch once from the device.
		page, err := sf.readPage(pd.loc.Page, op)
		if err != nil {
			return nil, err
		}
		pages[pk] = page
		if m.cfg.PageCache != nil {
			m.cfg.PageCache.Put(m.cacheKey(int(pd.loc.Class), pd.loc.Page), page)
		}
		if pd.z != nil && !op.Background {
			pd.z.readIOs.Add(1)
		}
		_, tomb, k, v, derr = sf.decodeSlotInPage(page, pd.loc.Slot)
		if derr != nil || !bytes.Equal(k, key) {
			continue
		}
		if tomb {
			res[pd.idx] = GetResult{Seq: pd.loc.Seq, Tombstone: true, Found: true}
		} else {
			res[pd.idx] = GetResult{Value: bytes.Clone(v), Seq: pd.loc.Seq, Found: true}
		}
	}
	return res, nil
}
