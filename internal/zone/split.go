package zone

import (
	"bytes"
	"math"

	"hyperdb/internal/device"
)

// OversizeFactor: a zone holding more than OversizeFactor × BatchSize of
// payload is due for a rebuild. Oversized zones appear when the width
// estimate was stale at creation (most commonly the bootstrap zone created
// before any statistics existed).
const OversizeFactor = 2

// PickOversizedZone returns a key-range zone whose payload exceeds
// OversizeFactor × BatchSize (plus that payload size), or nil.
func (m *Manager) PickOversizedZone() (*Zone, int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, z := range m.zones {
		if z.bytes > OversizeFactor*m.cfg.BatchSize {
			return z, z.bytes
		}
	}
	return nil, 0
}

// SplitZone rebuilds an oversized zone (§3.2: "periodically rebuilds the
// zone size based on the workload and updates the representation range"):
// the zone is detached, its objects re-placed into freshly created zones
// sized by the current Eq. 1–2 estimate, and its pages freed. All I/O is
// background traffic. Returns the number of objects moved.
func (m *Manager) SplitZone(z *Zone) (int, error) {
	m.mu.Lock()
	if z.hot {
		m.mu.Unlock()
		return 0, nil
	}
	// Detach, like a migration: new writes re-zone on the fly.
	found := false
	for i, zz := range m.zones {
		if zz == z {
			m.zones = append(m.zones[:i], m.zones[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		m.mu.Unlock()
		return 0, nil
	}
	delete(m.zoneByID, z.id)
	var refs []locRef
	lo := encodeKey64(z.lo)
	var hi []byte
	if z.hi != math.MaxUint64 {
		hi = encodeKey64(z.hi)
	}
	m.index.Ascend(lo, hi, func(k []byte, loc Location) bool {
		if loc.ZoneID == z.id {
			refs = append(refs, locRef{key: bytes.Clone(k), loc: loc})
		}
		return true
	})
	m.mu.Unlock()

	moved := 0
	type pageID struct {
		c    int8
		page uint32
	}
	pages := make(map[pageID][]byte)
	for _, r := range refs {
		pid := pageID{r.loc.Class, r.loc.Page}
		page, ok := pages[pid]
		if !ok {
			var err error
			page, err = m.slotFiles[r.loc.Class].readPage(r.loc.Page, device.Bg)
			if err != nil {
				return moved, err
			}
			pages[pid] = page
		}
		_, tomb, k, v, err := m.slotFiles[r.loc.Class].decodeSlotInPage(page, r.loc.Slot)
		if err != nil || !bytes.Equal(k, r.key) {
			continue
		}
		m.mu.Lock()
		cur, ok := m.index.Get(r.key)
		if !ok || cur.Seq != r.loc.Seq || cur.ZoneID != z.id {
			m.mu.Unlock()
			continue // superseded concurrently
		}
		k64 := Key64(r.key)
		dst := m.zoneFor(k64)
		if dst == nil {
			dst = m.createZone(k64)
		}
		nloc, err := m.writeObject(dst, int(r.loc.Class), k, v, r.loc.Seq, tomb, r.loc.Promoted, device.Bg)
		if err != nil {
			m.mu.Unlock()
			return moved, err
		}
		m.index.Set(r.key, nloc)
		moved++
		m.mu.Unlock()
	}

	m.mu.Lock()
	for c, pageSet := range z.pages {
		for p := range pageSet {
			m.invalidateCache(c, p)
			m.slotFiles[c].freePage(p)
		}
	}
	m.slotFilesAdjust(-z.bytes, -z.objects)
	m.mu.Unlock()
	return moved, nil
}
