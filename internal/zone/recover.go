package zone

import (
	"bytes"
	"fmt"

	"hyperdb/internal/btree"
	"hyperdb/internal/device"
)

// Recover rebuilds a zone Manager from slot files persisted on the device —
// the KVell-style recovery the paper's durability model implies: writes are
// durable in place, so the in-memory index and zone metadata reconstruct by
// scanning every allocated slot page, keeping the newest checksummed version
// of each key.
//
// Zone structure is rebuilt approximately: each recovered page is assigned
// to the key-range zone owning its first live key (created on demand with
// fresh Eq. 1–2 estimates). Because the original placement grouped adjacent
// keys per page, the rebuilt zones closely track the pre-crash layout; any
// drift only affects future placement and migration batching, never
// lookups. Returns the manager and the largest sequence number seen.
func Recover(cfg Config) (*Manager, uint64, error) {
	cfg.fill()
	m := &Manager{
		cfg:      cfg,
		zoneByID: make(map[uint32]*Zone),
		nextZone: 1,
		vcache:   make(map[string]*valueEnt),
	}
	m.index = btree.New[Location]()
	for _, cls := range cfg.Classes {
		name := fmt.Sprintf("p%d-slab%d", cfg.Partition, cls)
		f, err := cfg.Dev.Open(name)
		if err != nil {
			// Missing slab file: the partition never wrote this class.
			nf, cerr := newSlotFile(cfg.Dev, name, cls)
			if cerr != nil {
				return nil, 0, cerr
			}
			m.slotFiles = append(m.slotFiles, nf)
			continue
		}
		ps := cfg.Dev.PageSize()
		spp := ps / cls
		if spp < 1 {
			spp = 1
		}
		m.slotFiles = append(m.slotFiles, &slotFile{
			f: f, slotSize: cls, pageSize: ps, slotsPerPage: spp,
			scratch: make([]byte, cls),
		})
	}
	m.hot = newZone(0, 0, ^uint64(0), true, len(cfg.Classes))
	m.zoneByID[0] = m.hot

	// Pass 1: scan every allocated page of every slot file and index the
	// newest valid version per key. Charged as background sequential reads —
	// recovery is one streaming pass over the performance tier.
	var maxSeq uint64
	for c, sf := range m.slotFiles {
		pages := sf.f.AllocatedPageIDs()
		ps := int64(sf.pageSize)
		if n := sf.f.Size() / ps; n > 0 {
			sf.nextPage = uint32(n)
		}
		// Rebuild the free-page list from holes.
		alloc := make(map[uint32]bool, len(pages))
		for _, p := range pages {
			alloc[uint32(p)] = true
		}
		for p := uint32(0); p < sf.nextPage; p++ {
			if !alloc[p] {
				sf.freePages = append(sf.freePages, p)
			}
		}
		for _, p := range pages {
			page := make([]byte, sf.pageSize)
			if _, err := sf.f.ReadAt(page, p*ps, device.BgSeq); err != nil {
				return nil, 0, err
			}
			for s := 0; s < sf.slotsPerPage; s++ {
				off := s * sf.slotSize
				ts, tomb, k, v, err := decodeSlot(page[off : off+sf.slotSize])
				if err != nil || len(k) == 0 {
					continue // freed, torn, or never-written slot
				}
				if ts > maxSeq {
					maxSeq = ts
				}
				size := int32(slotHeaderSize + len(k) + len(v))
				loc := Location{
					Class: int8(c), Page: uint32(p), Slot: uint16(s),
					Seq: ts, Size: size, Tombstone: tomb,
				}
				// Newest sequence wins; on a tie (a crash between the two
				// writes of a relocation) the value beats the tombstone,
				// because relocations write the value before tombstoning.
				cur, ok := m.index.Get(k)
				if !ok || cur.Seq < ts || (cur.Seq == ts && cur.Tombstone && !tomb) {
					m.index.Set(bytes.Clone(k), loc)
				}
			}
		}
	}

	// Pass 2: assign pages to zones and rebuild accounting. Each page joins
	// the zone of its first live key; all live slots on the page count
	// toward that zone. Superseded slots become reusable free slots.
	type pageKey struct {
		c    int
		page uint32
	}
	pageZone := make(map[pageKey]*Zone)
	var refs []locRef
	m.index.Ascend(nil, nil, func(k []byte, loc Location) bool {
		refs = append(refs, locRef{key: k, loc: loc})
		return true
	})
	for _, r := range refs {
		loc := r.loc
		pk := pageKey{int(loc.Class), loc.Page}
		z, ok := pageZone[pk]
		if !ok {
			k64 := Key64(r.key)
			if z = m.zoneFor(k64); z == nil {
				z = m.createZone(k64)
			}
			pageZone[pk] = z
		}
		if z.pages[pk.c] == nil {
			z.pages[pk.c] = make(map[uint32]struct{})
		}
		z.pages[pk.c][loc.Page] = struct{}{}
		loc.ZoneID = z.id
		m.index.Set(r.key, loc)
		z.objects++
		z.bytes += int64(loc.Size)
		sf := m.slotFiles[loc.Class]
		sf.objects++
		sf.bytes += int64(loc.Size)
	}

	// Pass 3: free slots for every (page, slot) not referenced by the index.
	live := make(map[pageKey]map[uint16]bool)
	m.index.Ascend(nil, nil, func(k []byte, loc Location) bool {
		pk := pageKey{int(loc.Class), loc.Page}
		if live[pk] == nil {
			live[pk] = make(map[uint16]bool)
		}
		live[pk][loc.Slot] = true
		return true
	})
	for pk, z := range pageZone {
		sf := m.slotFiles[pk.c]
		for s := 0; s < sf.slotsPerPage; s++ {
			if !live[pk][uint16(s)] {
				z.releaseSlot(pk.c, slotRef{page: pk.page, slot: uint16(s)})
			}
		}
	}
	return m, maxSeq, nil
}
