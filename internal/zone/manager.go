package zone

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"hyperdb/internal/btree"
	"hyperdb/internal/cache"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/stats"
)

// ErrTooLarge reports an object bigger than the largest slot class (one
// page). The paper's workloads top out at 1 KiB values.
var ErrTooLarge = errors.New("zone: object exceeds page size")

// Location is an index entry: where a key lives in the zone group.
type Location struct {
	Class     int8
	Page      uint32
	Slot      uint16
	ZoneID    uint32
	Seq       uint64
	Size      int32 // header+key+value bytes
	Tombstone bool
	// Promoted labels objects copied up from the capacity tier (§3.5); a
	// no-longer-hot promoted object is dropped on eviction, not relocated.
	Promoted bool
}

// Config sizes a zone Manager (one per partition).
type Config struct {
	// Dev is the performance-tier device.
	Dev *device.Device
	// Partition names this manager's files.
	Partition int
	// BatchSize is B, the migration batch size = zone capacity in bytes.
	BatchSize int64
	// HotCapacity caps the hot zone's payload bytes before eviction.
	HotCapacity int64
	// Classes are the slot sizes (defaults to 64B…4KiB powers of two).
	Classes []int
	// PageCache, if set, caches slot pages for reads.
	PageCache cache.BlockCache
	// ValueCacheBytes budgets the per-partition value cache, which keeps
	// the newest written value per key so point reads skip the page cache
	// and device entirely. 0 picks a default; negative disables it.
	ValueCacheBytes int64
}

func (c *Config) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 4 << 20
	}
	if c.ValueCacheBytes == 0 {
		c.ValueCacheBytes = 8 << 20
	}
	if c.HotCapacity <= 0 {
		c.HotCapacity = c.BatchSize * 4
	}
	if len(c.Classes) == 0 {
		c.Classes = defaultClasses
	}
}

// Stats aggregates a manager's experiment counters.
type Stats struct {
	Objects            int64
	PayloadBytes       int64
	Zones              int
	Migrations         uint64
	MigratedObjects    uint64
	MigrationPageReads uint64
	InPlaceUpdates     uint64
	Relocations        uint64
	HotEvictDropped    uint64
	HotEvictRelocated  uint64
}

// Manager is one partition's zone group: slot files, the zone mapper, the
// in-memory B-tree index and the hot zone. It is internally locked; the
// shared-nothing partitioning above it keeps contention local.
type Manager struct {
	cfg Config

	// evictMu serialises hot-zone evictions (background worker vs stalled
	// foreground writers).
	evictMu sync.Mutex

	mu        sync.RWMutex
	slotFiles []*slotFile
	index     *btree.Map[Location]
	zones     []*Zone // key-range zones sorted by lo
	zoneByID  map[uint32]*Zone
	hot       *Zone
	nextZone  uint32

	// vcache maps user key → newest written value, so point reads of
	// recently written (or promoted) objects skip the page cache and the
	// device. Entries are validated against the index entry's sequence on
	// every read, which makes stale entries (relocations, migrations,
	// racing writers) unservable rather than wrong. Writers mutate entries
	// in place under mu, reusing value buffers, so readers must finish
	// cloning before releasing mu.RLock.
	vcache      map[string]*valueEnt
	vcacheBytes int64

	migrations         stats.Counter
	migratedObjects    stats.Counter
	migrationPageReads stats.Counter
	inPlaceUpdates     stats.Counter
	relocations        stats.Counter
	hotEvictDropped    stats.Counter
	hotEvictRelocated  stats.Counter
}

// NewManager creates the slot files and an empty zone group.
func NewManager(cfg Config) (*Manager, error) {
	cfg.fill()
	m := &Manager{
		cfg:      cfg,
		index:    btree.New[Location](),
		zoneByID: make(map[uint32]*Zone),
		nextZone: 1,
		vcache:   make(map[string]*valueEnt),
	}
	for _, cls := range cfg.Classes {
		sf, err := newSlotFile(cfg.Dev, fmt.Sprintf("p%d-slab%d", cfg.Partition, cls), cls)
		if err != nil {
			return nil, err
		}
		m.slotFiles = append(m.slotFiles, sf)
	}
	m.hot = newZone(0, 0, math.MaxUint64, true, len(cfg.Classes))
	m.zoneByID[0] = m.hot
	return m, nil
}

// zoneFor finds the live key-range zone containing k64, or nil.
func (m *Manager) zoneFor(k64 uint64) *Zone {
	i := sort.Search(len(m.zones), func(i int) bool { return m.zones[i].lo > k64 })
	if i == 0 {
		return nil
	}
	z := m.zones[i-1]
	if z.contains(k64) {
		return z
	}
	return nil
}

// avgObjectSize is Eq. 1: ΣF_k / ΣN_k over the slot files.
func (m *Manager) avgObjectSize() float64 {
	var files, objs int64
	for _, sf := range m.slotFiles {
		files += sf.bytes
		objs += sf.objects
	}
	if objs == 0 {
		return 256 // bootstrap guess
	}
	return float64(files) / float64(objs)
}

// zoneWidth estimates the key-range width of a new zone: Eq. 2 gives
// R = B/O objects per zone; the observed keyspace density (index size over
// key span) converts that object count into a 64-bit prefix width.
func (m *Manager) zoneWidth() uint64 {
	r := float64(m.cfg.BatchSize) / m.avgObjectSize() // objects per zone
	if r < 1 {
		r = 1
	}
	n := m.index.Len()
	if n < 2 {
		return 1 << 56 // bootstrap: carve the space coarsely
	}
	span := float64(Key64(m.index.Max()) - Key64(m.index.Min()))
	if span < 1 {
		span = 1
	}
	width := r * span / float64(n)
	if width < 1 {
		return 1
	}
	if width >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	return uint64(width)
}

// createZone makes the zone whose grid-aligned range contains k64, clipped
// against existing neighbours. Caller holds mu.
func (m *Manager) createZone(k64 uint64) *Zone {
	width := m.zoneWidth()
	var lo, hi uint64
	if width == math.MaxUint64 {
		lo, hi = 0, math.MaxUint64
	} else {
		lo = k64 - k64%width
		if math.MaxUint64-lo < width {
			hi = math.MaxUint64
		} else {
			hi = lo + width
		}
	}
	// Clip to neighbours so zones stay disjoint as the width estimate drifts.
	i := sort.Search(len(m.zones), func(i int) bool { return m.zones[i].lo > k64 })
	if i > 0 {
		if prev := m.zones[i-1]; prev.hi > lo {
			lo = prev.hi
		}
	}
	if i < len(m.zones) {
		if next := m.zones[i]; next.lo < hi {
			hi = next.lo
		}
	}
	if lo > k64 || (hi != math.MaxUint64 && k64 >= hi) {
		// Clipping collapsed the grid cell (width shrank since the
		// neighbours were created); fall back to a tight range around k64.
		lo, hi = k64, k64+1
		if i > 0 && m.zones[i-1].hi > lo {
			lo = m.zones[i-1].hi
		}
		if i < len(m.zones) && m.zones[i].lo < hi {
			hi = m.zones[i].lo
		}
	}
	z := newZone(m.nextZone, lo, hi, false, len(m.cfg.Classes))
	m.nextZone++
	m.zoneByID[z.id] = z
	m.zones = append(m.zones, nil)
	copy(m.zones[i+1:], m.zones[i:])
	m.zones[i] = z
	return z
}

// writeObject stores an object into zone z, allocating a slot. Caller holds
// mu. Returns the new location.
func (m *Manager) writeObject(z *Zone, c int, k, v []byte, seq uint64, tombstone, promoted bool, op device.Op) (Location, error) {
	sf := m.slotFiles[c]
	ref, ok := z.takeSlot(c, sf.slotsPerPage)
	if !ok {
		page, err := sf.allocPage()
		if err != nil {
			return Location{}, err
		}
		ref = z.addPage(c, page, sf.slotsPerPage)
	}
	if err := sf.writeSlot(ref.page, ref.slot, seq, tombstone, k, v, op); err != nil {
		return Location{}, err
	}
	m.invalidateCache(c, ref.page)
	size := int32(slotHeaderSize + len(k) + len(v))
	z.objects++
	z.bytes += int64(size)
	sf.objects++
	sf.bytes += int64(size)
	return Location{
		Class: int8(c), Page: ref.page, Slot: ref.slot, ZoneID: z.id,
		Seq: seq, Size: size, Tombstone: tombstone, Promoted: promoted,
	}, nil
}

// dropLocation releases loc's slot and adjusts accounting. Caller holds mu.
func (m *Manager) dropLocation(loc Location) {
	z, ok := m.zoneByID[loc.ZoneID]
	if !ok {
		return // zone already detached by a migration
	}
	z.releaseSlot(int(loc.Class), slotRef{page: loc.Page, slot: loc.Slot})
	z.objects--
	z.bytes -= int64(loc.Size)
	sf := m.slotFiles[loc.Class]
	sf.objects--
	sf.bytes -= int64(loc.Size)
}

// cacheKey builds the page-cache key without fmt (it sits on every Get). The
// leading 'Z' plus binary layout keeps zone keys disjoint from the printable
// keys other cache users build.
func (m *Manager) cacheKey(c int, page uint32) string {
	var b [10]byte
	b[0] = 'Z'
	binary.LittleEndian.PutUint32(b[1:], uint32(m.cfg.Partition))
	b[5] = byte(c)
	binary.LittleEndian.PutUint32(b[6:], page)
	return string(b[:])
}

func (m *Manager) invalidateCache(c int, page uint32) {
	if m.cfg.PageCache != nil {
		m.cfg.PageCache.Delete(m.cacheKey(c, page))
	}
}

// valueEnt is one value-cache entry. Writers overwrite seq and val in place
// (holding mu), so the common same-size update costs one map probe, one
// small copy, and no allocation.
type valueEnt struct {
	seq uint64
	val []byte
}

// vcacheEntOverhead approximates per-entry bookkeeping (map cell, header).
const vcacheEntOverhead = 64

// vcacheStore publishes key's newest value. Caller holds mu. When over
// budget it evicts map-iteration-order (pseudo-random) victims first; an
// entry larger than the whole budget is simply not cached.
func (m *Manager) vcacheStore(key []byte, seq uint64, value []byte) {
	if m.cfg.ValueCacheBytes <= 0 {
		return
	}
	if e, ok := m.vcache[string(key)]; ok {
		if len(e.val) == len(value) {
			e.seq = seq
			copy(e.val, value)
			return
		}
		m.vcacheBytes += int64(len(value)) - int64(len(e.val))
		e.seq, e.val = seq, bytes.Clone(value)
		return
	}
	need := int64(len(key)+len(value)) + vcacheEntOverhead
	for m.vcacheBytes+need > m.cfg.ValueCacheBytes && len(m.vcache) > 0 {
		for k, e := range m.vcache {
			delete(m.vcache, k)
			m.vcacheBytes -= int64(len(k)+len(e.val)) + vcacheEntOverhead
			break
		}
	}
	if m.vcacheBytes+need > m.cfg.ValueCacheBytes {
		return
	}
	m.vcache[string(key)] = &valueEnt{seq: seq, val: bytes.Clone(value)}
	m.vcacheBytes += need
}

// vcacheDelete drops key's entry. Caller holds mu. Sequence validation
// already makes stale entries unservable; this just reclaims the budget.
func (m *Manager) vcacheDelete(key []byte) {
	if e, ok := m.vcache[string(key)]; ok {
		delete(m.vcache, string(key))
		m.vcacheBytes -= int64(len(key)+len(e.val)) + vcacheEntOverhead
	}
}

// Put writes key=value at sequence seq. hot routes the object to the hot
// zone (tracker-classified or promoted). promoted marks a copy of
// capacity-tier data. Charges one random page write, plus a tombstone write
// when the object relocates between slots (§3.2).
func (m *Manager) Put(key, value []byte, seq uint64, hot, promoted bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.putLocked(key, value, seq, hot, promoted)
}

// putLocked is Put's body; the caller holds mu. ApplyBatch uses it to apply
// a whole partition group under one lock acquisition.
func (m *Manager) putLocked(key, value []byte, seq uint64, hot, promoted bool) error {
	need := slotHeaderSize + len(key) + len(value)
	c := classFor(m.cfg.Classes, need)
	if c < 0 {
		return ErrTooLarge
	}

	if ref := m.index.Ref(key); ref != nil {
		old := *ref
		oldZone, zoneLive := m.zoneByID[old.ZoneID]
		if zoneLive && int(old.Class) == c && !old.Tombstone {
			// In-place update: same slot, one page write. The index entry
			// mutates through ref — no second descent, no key re-clone.
			sf := m.slotFiles[c]
			if err := sf.writeSlot(old.Page, old.Slot, seq, false, key, value, device.Fg); err != nil {
				return err
			}
			m.invalidateCache(c, old.Page)
			size := int32(need)
			oldZone.bytes += int64(size) - int64(old.Size)
			sf.bytes += int64(size) - int64(old.Size)
			ref.Seq, ref.Size, ref.Promoted = seq, size, false
			m.vcacheStore(key, seq, value)
			m.inPlaceUpdates.Inc()
			return nil
		}
		// Resized (different class) or zone gone: write the new slot first,
		// then leave a tombstone at the old location (§3.2). Writing the
		// value before the tombstone keeps recovery safe: a crash between
		// the two leaves two versions and the newer one wins the scan.
		// writeObject and Set below may restructure the tree, so only the
		// copy in old is used from here on.
		z := m.hot
		if !hot {
			k64 := Key64(key)
			if z = m.zoneFor(k64); z == nil {
				z = m.createZone(k64)
			}
		}
		loc, err := m.writeObject(z, c, key, value, seq, false, promoted, device.Fg)
		if err != nil {
			return err
		}
		m.index.Set(bytes.Clone(key), loc)
		m.vcacheStore(key, seq, value)
		if zoneLive {
			sf := m.slotFiles[old.Class]
			if err := sf.writeSlot(old.Page, old.Slot, seq, true, key, nil, device.Fg); err != nil {
				return err
			}
			m.invalidateCache(int(old.Class), old.Page)
			m.dropLocation(old)
			m.relocations.Inc()
		}
		return nil
	}

	z := m.hot
	if !hot {
		k64 := Key64(key)
		if z = m.zoneFor(k64); z == nil {
			z = m.createZone(k64)
		}
	}
	loc, err := m.writeObject(z, c, key, value, seq, false, promoted, device.Fg)
	if err != nil {
		return err
	}
	m.index.Set(bytes.Clone(key), loc)
	m.vcacheStore(key, seq, value)
	return nil
}

// Delete writes a tombstone for key. The tombstone occupies a small slot and
// migrates to the capacity tier like any object, deleting the key there.
func (m *Manager) Delete(key []byte, seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deleteLocked(key, seq)
}

// deleteLocked is Delete's body; the caller holds mu.
func (m *Manager) deleteLocked(key []byte, seq uint64) error {
	c := classFor(m.cfg.Classes, slotHeaderSize+len(key))
	if c < 0 {
		return ErrTooLarge
	}

	m.vcacheDelete(key)
	if ref := m.index.Ref(key); ref != nil {
		old := *ref
		if z, live := m.zoneByID[old.ZoneID]; live {
			// Overwrite the existing slot with the tombstone: cheaper than
			// allocating, and mandatory for recovery — a released slot
			// holding a stale-but-checksummed value would outlive its
			// tombstone if the tombstone's zone migrated to the capacity
			// tier first.
			sf := m.slotFiles[old.Class]
			if err := sf.writeSlot(old.Page, old.Slot, seq, true, key, nil, device.Fg); err != nil {
				return err
			}
			m.invalidateCache(int(old.Class), old.Page)
			size := int32(slotHeaderSize + len(key))
			z.bytes += int64(size) - int64(old.Size)
			sf.bytes += int64(size) - int64(old.Size)
			ref.Seq, ref.Size, ref.Tombstone, ref.Promoted = seq, size, true, false
			return nil
		}
	}
	k64 := Key64(key)
	z := m.zoneFor(k64)
	if z == nil {
		z = m.createZone(k64)
	}
	loc, err := m.writeObject(z, c, key, nil, seq, true, false, device.Fg)
	if err != nil {
		return err
	}
	m.index.Set(bytes.Clone(key), loc)
	return nil
}

// Get looks key up in the tier. found=false means the tier has no opinion
// (fall through to the capacity tier); a tombstone returns found=true,
// tombstone=true — authoritative deletion.
func (m *Manager) Get(key []byte, op device.Op) (value []byte, seq uint64, tombstone, found bool, err error) {
	m.mu.RLock()
	loc, ok := m.index.Get(key)
	if !ok {
		m.mu.RUnlock()
		return nil, 0, false, false, nil
	}
	if loc.Tombstone {
		m.mu.RUnlock()
		return nil, loc.Seq, true, true, nil
	}
	// Value cache: one zero-allocation map probe while the read lock is
	// already held. A hit whose sequence matches the index entry is the
	// newest version by construction. Writers reuse value buffers in
	// place, so the clone must complete before the lock is released.
	if e, ok := m.vcache[string(key)]; ok && e.seq == loc.Seq {
		v := bytes.Clone(e.val)
		m.mu.RUnlock()
		return v, loc.Seq, false, true, nil
	}
	z := m.zoneByID[loc.ZoneID]
	sf := m.slotFiles[loc.Class]
	ck := m.cacheKey(int(loc.Class), loc.Page)
	m.mu.RUnlock()

	// Page cache first; misses charge one page read and bump the zone's
	// read-I/O counter used by the demotion score. A cached page is only
	// trusted when the slot's stored sequence matches the index entry —
	// an in-place update that raced the caching of this page otherwise
	// serves a stale value.
	if m.cfg.PageCache != nil {
		if page, hit := m.cfg.PageCache.Get(ck); hit {
			slotSeq, tomb, k, v, derr := sf.decodeSlotInPage(page, loc.Slot)
			if derr == nil && bytes.Equal(k, key) && slotSeq == loc.Seq && !tomb {
				return bytes.Clone(v), loc.Seq, false, true, nil
			}
			// Stale cache entry (slot rewritten); fall through to device.
		}
	}
	page, err := sf.readPage(loc.Page, op)
	if err != nil {
		return nil, 0, false, false, err
	}
	if m.cfg.PageCache != nil {
		m.cfg.PageCache.Put(ck, page)
	}
	if z != nil && !op.Background {
		z.readIOs.Add(1)
	}
	_, tomb, k, v, err := sf.decodeSlotInPage(page, loc.Slot)
	if err != nil || !bytes.Equal(k, key) {
		// The slot was recycled (or TRIMmed to zeros) by a migration that
		// committed between our index lookup and the page read; the value
		// now lives in the capacity tier, so report a miss and let the
		// caller fall through.
		return nil, 0, false, false, nil
	}
	if tomb {
		return nil, loc.Seq, true, true, nil
	}
	return bytes.Clone(v), loc.Seq, false, true, nil
}

// Promote inserts a capacity-tier object into the hot zone with the
// promotion label, unless the tier already has any version of the key
// (which would be at least as new). Charged as background I/O (§3.5:
// promotions flush asynchronously from the object cache).
func (m *Manager) Promote(key, value []byte, seq uint64) error {
	need := slotHeaderSize + len(key) + len(value)
	c := classFor(m.cfg.Classes, need)
	if c < 0 {
		return ErrTooLarge
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.index.Get(key); ok {
		return nil
	}
	loc, err := m.writeObject(m.hot, c, key, value, seq, false, true, device.Bg)
	if err != nil {
		return err
	}
	m.index.Set(bytes.Clone(key), loc)
	m.vcacheStore(key, seq, value)
	return nil
}

// Has reports whether the tier has an entry (value or tombstone) for key.
func (m *Manager) Has(key []byte) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.index.Get(key)
	return ok
}

// Scan visits index entries with lo <= key < hi in order. fn must not call
// back into the manager.
func (m *Manager) Scan(lo, hi []byte, fn func(key []byte, loc Location) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.index.Ascend(lo, hi, fn)
}

// ReadAt fetches the object at loc (used by scans after collecting
// locations). Charges a page read through the cache.
func (m *Manager) ReadAt(key []byte, loc Location, op device.Op) ([]byte, error) {
	m.mu.RLock()
	sf := m.slotFiles[loc.Class]
	ck := m.cacheKey(int(loc.Class), loc.Page)
	m.mu.RUnlock()
	if m.cfg.PageCache != nil {
		if page, hit := m.cfg.PageCache.Get(ck); hit {
			slotSeq, tomb, k, v, err := sf.decodeSlotInPage(page, loc.Slot)
			if err == nil && bytes.Equal(k, key) && slotSeq == loc.Seq && !tomb {
				return bytes.Clone(v), nil
			}
		}
	}
	page, err := sf.readPage(loc.Page, op)
	if err != nil {
		return nil, err
	}
	if m.cfg.PageCache != nil {
		m.cfg.PageCache.Put(ck, page)
	}
	_, tomb, k, v, err := sf.decodeSlotInPage(page, loc.Slot)
	if err != nil {
		return nil, err
	}
	if tomb || !bytes.Equal(k, key) {
		return nil, fmt.Errorf("zone: object %q moved", key)
	}
	return bytes.Clone(v), nil
}

// ObjectCount returns the number of index entries.
func (m *Manager) ObjectCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.index.Len()
}

// PayloadBytes returns the payload stored across all zones.
func (m *Manager) PayloadBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	n += m.hot.bytes
	for _, z := range m.zones {
		n += z.bytes
	}
	return n
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var payload int64
	payload += m.hot.bytes
	for _, z := range m.zones {
		payload += z.bytes
	}
	return Stats{
		Objects:            int64(m.index.Len()),
		PayloadBytes:       payload,
		Zones:              len(m.zones),
		Migrations:         m.migrations.Load(),
		MigratedObjects:    m.migratedObjects.Load(),
		MigrationPageReads: m.migrationPageReads.Load(),
		InPlaceUpdates:     m.inPlaceUpdates.Load(),
		Relocations:        m.relocations.Load(),
		HotEvictDropped:    m.hotEvictDropped.Load(),
		HotEvictRelocated:  m.hotEvictRelocated.Load(),
	}
}

// HotZoneBytes returns the hot zone's payload size.
func (m *Manager) HotZoneBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hot.bytes
}

// HotZoneOver reports whether the hot zone exceeds its capacity.
func (m *Manager) HotZoneOver() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hot.bytes > m.cfg.HotCapacity
}

// ZoneCount returns the number of key-range zones (excluding the hot zone).
func (m *Manager) ZoneCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.zones)
}

// Batch is a migration batch: sorted entries plus provenance for commit.
type Batch struct {
	Entries   []MigEntry
	PageReads int
	zone      *Zone
}

// MigEntry is one object leaving the performance tier.
type MigEntry struct {
	Key       []byte
	Value     []byte
	Seq       uint64
	Tombstone bool
}

// Range returns the migrated key range.
func (b *Batch) Range() keys.Range {
	if len(b.Entries) == 0 {
		return keys.Range{}
	}
	return keys.Range{
		Lo: b.Entries[0].Key,
		Hi: keys.Successor(b.Entries[len(b.Entries)-1].Key),
	}
}

// ScanReader amortises page reads across one range scan: distinct pages are
// fetched once and shared by every object on them. This implements the scan
// optimisation the paper leaves as future work (§4.2) — without it, scans
// are sequential point queries that may fetch the same page repeatedly.
type ScanReader struct {
	m     *Manager
	pages map[scanPageKey][]byte
}

type scanPageKey struct {
	class int8
	page  uint32
}

// NewScanReader returns a reader with an empty page memo.
func (m *Manager) NewScanReader() *ScanReader {
	return &ScanReader{m: m, pages: make(map[scanPageKey][]byte)}
}

// Read fetches the object at loc, reusing previously fetched pages.
func (r *ScanReader) Read(key []byte, loc Location, op device.Op) ([]byte, error) {
	pk := scanPageKey{loc.Class, loc.Page}
	page, ok := r.pages[pk]
	if !ok {
		r.m.mu.RLock()
		sf := r.m.slotFiles[loc.Class]
		r.m.mu.RUnlock()
		var err error
		op.Sequential = true
		page, err = sf.readPage(loc.Page, op)
		if err != nil {
			return nil, err
		}
		r.pages[pk] = page
	}
	r.m.mu.RLock()
	sf := r.m.slotFiles[loc.Class]
	r.m.mu.RUnlock()
	_, tomb, k, v, err := sf.decodeSlotInPage(page, loc.Slot)
	if err != nil || tomb || !bytes.Equal(k, key) {
		return nil, fmt.Errorf("zone: object %q moved", key)
	}
	return bytes.Clone(v), nil
}
