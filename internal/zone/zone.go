package zone

import (
	"encoding/binary"
	"math"
	"sync/atomic"
)

// Key64 maps a user key to its position in the 64-bit prefix keyspace used
// for zone ranges (big-endian first 8 bytes, zero-padded). Zone ranges are
// intervals of this space; keys sharing an 8-byte prefix land in the same
// zone, which only affects range-width estimation, not correctness.
func Key64(k []byte) uint64 {
	var b [8]byte
	copy(b[:], k)
	return binary.BigEndian.Uint64(b[:])
}

// slotRef addresses one slot in a size class's file.
type slotRef struct {
	page uint32
	slot uint16
}

// openPage is a partially filled page being appended to.
type openPage struct {
	page  uint32
	next  uint16 // next unused slot
	inUse bool
}

// Zone is a collection of objects with adjacent keys, mapped onto slot-file
// pages by the zone mapper. The hot zone has the full keyspace as its range.
type Zone struct {
	id  uint32
	lo  uint64 // inclusive
	hi  uint64 // exclusive; math.MaxUint64 means "through the top"
	hot bool

	// Zone mapper state: pages owned per class, the open page per class,
	// and freed slots available for reuse.
	pages     []map[uint32]struct{} // per class
	open      []openPage            // per class
	freeSlots [][]slotRef           // per class

	objects int64
	bytes   int64 // payload bytes stored (the demotion benefit)
	// readIOs is atomic: Get bumps it after a cache miss without re-taking
	// the manager lock, keeping the read path lock-free past the index lookup.
	readIOs atomic.Int64 // foreground page reads since the last migration
}

func newZone(id uint32, lo, hi uint64, hot bool, nClasses int) *Zone {
	return &Zone{
		id: id, lo: lo, hi: hi, hot: hot,
		pages:     make([]map[uint32]struct{}, nClasses),
		open:      make([]openPage, nClasses),
		freeSlots: make([][]slotRef, nClasses),
	}
}

// contains reports whether key position k64 falls in the zone's range.
func (z *Zone) contains(k64 uint64) bool {
	if z.hot {
		return true
	}
	if k64 < z.lo {
		return false
	}
	if z.hi == math.MaxUint64 {
		return true
	}
	return k64 < z.hi
}

// PageCount returns the number of slot-file pages the zone owns — the
// demotion cost term (read I/Os to migrate the zone).
func (z *Zone) PageCount() int {
	n := 0
	for _, m := range z.pages {
		n += len(m)
	}
	return n
}

// Bytes returns the payload bytes stored (the demotion benefit term).
func (z *Zone) Bytes() int64 { return z.bytes }

// Objects returns the number of live objects (including tombstones).
func (z *Zone) Objects() int64 { return z.objects }

// ReadIOs returns foreground page reads since the last migration reset.
func (z *Zone) ReadIOs() int64 { return z.readIOs.Load() }

// ID returns the zone's identifier.
func (z *Zone) ID() uint32 { return z.id }

// Hot reports whether this is the partition's hot zone.
func (z *Zone) Hot() bool { return z.hot }

// Score is the §3.5 demotion metric: freed capacity over the read I/Os the
// migration costs, discounted by recent foreground reads so actively read
// zones stay resident. Higher is a better demotion victim.
func (z *Zone) Score() float64 {
	cost := float64(z.PageCount()) + float64(z.readIOs.Load())
	if cost == 0 {
		return 0
	}
	return float64(z.bytes) / cost
}

// takeSlot returns a free slot for class c, reusing freed slots, then the
// open page, then nil (caller must allocate a fresh page via addPage).
func (z *Zone) takeSlot(c int, slotsPerPage int) (slotRef, bool) {
	if n := len(z.freeSlots[c]); n > 0 {
		s := z.freeSlots[c][n-1]
		z.freeSlots[c] = z.freeSlots[c][:n-1]
		return s, true
	}
	op := &z.open[c]
	if op.inUse && int(op.next) < slotsPerPage {
		s := slotRef{page: op.page, slot: op.next}
		op.next++
		if int(op.next) >= slotsPerPage {
			op.inUse = false
		}
		return s, true
	}
	return slotRef{}, false
}

// addPage registers a freshly allocated page as the class's open page and
// returns its first slot.
func (z *Zone) addPage(c int, page uint32, slotsPerPage int) slotRef {
	if z.pages[c] == nil {
		z.pages[c] = make(map[uint32]struct{})
	}
	z.pages[c][page] = struct{}{}
	z.open[c] = openPage{page: page, next: 1, inUse: slotsPerPage > 1}
	return slotRef{page: page, slot: 0}
}

// releaseSlot marks a slot reusable after its object moved or died.
func (z *Zone) releaseSlot(c int, ref slotRef) {
	z.freeSlots[c] = append(z.freeSlots[c], ref)
}
