// Package zone implements the performance-tier data layout of §3.2: each
// partition's NVMe share is a zone group; a zone stores objects of one
// contiguous key range (ordered and non-overlapping between zones) in
// size-classed slot files; the zone mapper tracks which slot-file pages each
// zone owns; a per-partition hot zone holds tracker-identified hot objects
// with no key-range restriction. Objects smaller than a page update in
// place; resized objects relocate with a tombstone at the old slot. Access
// is at page (block) granularity, matching the device model, so the
// page-read amplification the paper analyses appears naturally.
package zone

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hyperdb/internal/device"
)

// slot header: timestamp(8) | flags(1) | keyLen(2) | valLen(4) | crc32(4)
// The checksum covers the rest of the header plus key and value; recovery
// scans use it to distinguish live slots from freed or torn ones.
const slotHeaderSize = 19

const (
	flagTombstone = 1 << 0
)

// Classes are the slot sizes; an object occupies the smallest class that
// fits header+key+value. The largest class is one page.
var defaultClasses = []int{64, 128, 256, 512, 1024, 2048, 4096}

// classFor returns the class index fitting need bytes, or -1 if oversized.
func classFor(classes []int, need int) int {
	for i, c := range classes {
		if need <= c {
			return i
		}
	}
	return -1
}

// encodeSlot writes the object into dst (len >= slotHeaderSize+len(k)+len(v)).
func encodeSlot(dst []byte, ts uint64, tombstone bool, k, v []byte) {
	binary.LittleEndian.PutUint64(dst[0:], ts)
	var flags byte
	if tombstone {
		flags |= flagTombstone
	}
	dst[8] = flags
	binary.LittleEndian.PutUint16(dst[9:], uint16(len(k)))
	binary.LittleEndian.PutUint32(dst[11:], uint32(len(v)))
	copy(dst[slotHeaderSize:], k)
	copy(dst[slotHeaderSize+len(k):], v)
	binary.LittleEndian.PutUint32(dst[15:], slotCRC(dst, len(k), len(v)))
}

// slotCRC computes the slot checksum: header fields (crc zeroed) + payload.
func slotCRC(buf []byte, kl, vl int) uint32 {
	h := crc32.NewIEEE()
	h.Write(buf[:15])
	h.Write(buf[slotHeaderSize : slotHeaderSize+kl+vl])
	return h.Sum32()
}

// decodeSlot parses a slot, returning ts, tombstone flag, key and value
// views into buf. A checksum mismatch (freed/garbage/torn slot) errors.
func decodeSlot(buf []byte) (ts uint64, tombstone bool, k, v []byte, err error) {
	if len(buf) < slotHeaderSize {
		return 0, false, nil, nil, fmt.Errorf("zone: slot too short")
	}
	ts = binary.LittleEndian.Uint64(buf[0:])
	tombstone = buf[8]&flagTombstone != 0
	kl := int(binary.LittleEndian.Uint16(buf[9:]))
	vl := int(binary.LittleEndian.Uint32(buf[11:]))
	if slotHeaderSize+kl+vl > len(buf) {
		return 0, false, nil, nil, fmt.Errorf("zone: slot overflow kl=%d vl=%d cap=%d", kl, vl, len(buf))
	}
	if got := binary.LittleEndian.Uint32(buf[15:]); got != slotCRC(buf, kl, vl) {
		return 0, false, nil, nil, fmt.Errorf("zone: slot checksum mismatch")
	}
	k = buf[slotHeaderSize : slotHeaderSize+kl]
	v = buf[slotHeaderSize+kl : slotHeaderSize+kl+vl]
	return ts, tombstone, k, v, nil
}

// slotFile is one size class's backing file: an array of pages, each divided
// into fixed slots. Pages are allocated at the tail and recycled through a
// free list when zones migrate away.
type slotFile struct {
	f            *device.File
	slotSize     int
	pageSize     int
	slotsPerPage int
	nextPage     uint32
	freePages    []uint32
	// scratch is the reusable writeSlot encode buffer. All writers hold the
	// manager's write lock, and File.WriteAt copies before returning.
	scratch []byte
	// Aggregate fill statistics for Eq. 1 (average object size O_k).
	objects int64
	bytes   int64
}

func newSlotFile(dev *device.Device, name string, slotSize int) (*slotFile, error) {
	f, err := dev.Create(name)
	if err != nil {
		return nil, err
	}
	ps := dev.PageSize()
	spp := ps / slotSize
	if spp < 1 {
		spp = 1
	}
	return &slotFile{
		f: f, slotSize: slotSize, pageSize: ps, slotsPerPage: spp,
		scratch: make([]byte, slotSize),
	}, nil
}

// allocPage returns a page index, reusing freed (hole-punched) pages first.
func (sf *slotFile) allocPage() (uint32, error) {
	if n := len(sf.freePages); n > 0 {
		p := sf.freePages[n-1]
		if err := sf.f.Reallocate(int64(p)); err != nil {
			return 0, err
		}
		sf.freePages = sf.freePages[:n-1]
		return p, nil
	}
	p := sf.nextPage
	// Extend the file by one page; allocation is a ledger operation, not
	// device traffic.
	if err := sf.f.EnsureAllocated(int64(p+1) * int64(sf.pageSize)); err != nil {
		return 0, err
	}
	sf.nextPage++
	return p, nil
}

// freePage returns page p to the free list and the device ledger (TRIM).
// Contents remain readable until reuse.
func (sf *slotFile) freePage(p uint32) {
	sf.freePages = append(sf.freePages, p)
	sf.f.PunchHole(int64(p))
}

// slotOffset returns the byte offset of slot s in page p.
func (sf *slotFile) slotOffset(p uint32, s uint16) int64 {
	return int64(p)*int64(sf.pageSize) + int64(s)*int64(sf.slotSize)
}

// writeSlot stores an encoded object into (page, slot), charging one random
// page write.
func (sf *slotFile) writeSlot(p uint32, s uint16, ts uint64, tombstone bool, k, v []byte, op device.Op) error {
	buf := sf.scratch
	encodeSlot(buf, ts, tombstone, k, v)
	// Zero only the tail past the payload: the encode overwrote the head,
	// and stale bytes from a previous (longer) occupant must not persist.
	for i := slotHeaderSize + len(k) + len(v); i < len(buf); i++ {
		buf[i] = 0
	}
	return sf.f.WriteAt(buf, sf.slotOffset(p, s), op)
}

// readSlot fetches the object at (page, slot), charging one page read unless
// the caller provides pageData already fetched for this page.
func (sf *slotFile) readSlot(p uint32, s uint16, op device.Op) (ts uint64, tombstone bool, k, v []byte, err error) {
	buf := make([]byte, sf.slotSize)
	if _, err = sf.f.ReadAt(buf, sf.slotOffset(p, s), op); err != nil {
		return 0, false, nil, nil, err
	}
	return decodeSlot(buf)
}

// readPage fetches an entire page, charging one page read.
func (sf *slotFile) readPage(p uint32, op device.Op) ([]byte, error) {
	buf := make([]byte, sf.pageSize)
	if _, err := sf.f.ReadAt(buf, int64(p)*int64(sf.pageSize), op); err != nil {
		return nil, err
	}
	return buf, nil
}

// decodeSlotInPage parses slot s out of a previously read page buffer.
func (sf *slotFile) decodeSlotInPage(page []byte, s uint16) (ts uint64, tombstone bool, k, v []byte, err error) {
	off := int(s) * sf.slotSize
	if off+sf.slotSize > len(page) {
		return 0, false, nil, nil, fmt.Errorf("zone: slot %d beyond page", s)
	}
	return decodeSlot(page[off : off+sf.slotSize])
}
