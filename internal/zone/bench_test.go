package zone

import (
	"testing"

	"hyperdb/internal/device"
)

func BenchmarkPut(b *testing.B) {
	dev := device.New(device.UnthrottledProfile("nvme", 0))
	m, err := NewManager(Config{Dev: dev, Partition: 0, BatchSize: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Put(k8(uint64(i)<<24), val, uint64(i+1), false, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetResident(b *testing.B) {
	dev := device.New(device.UnthrottledProfile("nvme", 0))
	m, _ := NewManager(Config{Dev: dev, Partition: 0, BatchSize: 4 << 20})
	val := make([]byte, 128)
	const n = 100_000
	for i := 0; i < n; i++ {
		m.Put(k8(uint64(i)<<24), val, uint64(i+1), false, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, found, err := m.Get(k8(uint64(i%n)<<24), device.Fg); err != nil || !found {
			b.Fatal(err)
		}
	}
}

func BenchmarkMigrationBatch(b *testing.B) {
	dev := device.New(device.UnthrottledProfile("nvme", 0))
	m, _ := NewManager(Config{Dev: dev, Partition: 0, BatchSize: 1 << 20})
	val := make([]byte, 128)
	seq := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 8_192; j++ {
			seq++
			m.Put(k8(seq<<20), val, seq, false, false)
		}
		b.StartTimer()
		z := m.PickDemotionVictim()
		if z == nil {
			b.Fatal("no victim")
		}
		batch, err := m.PrepareMigration(z)
		if err != nil {
			b.Fatal(err)
		}
		m.CommitMigration(batch)
	}
}
