package wire

import (
	"encoding/binary"
	"fmt"
)

// MaxKeyLen bounds a single key on the wire. The engine has no hard key
// limit, but the protocol refuses absurd keys before they allocate.
const MaxKeyLen = 64 << 10

// appendBytes appends a varint length prefix followed by b.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// getUvarint consumes one varint from p, returning the value and the rest.
func getUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, ErrBadPayload
	}
	return v, p[n:], nil
}

// getVarint consumes one signed (zig-zag) varint from p.
func getVarint(p []byte) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, nil, ErrBadPayload
	}
	return v, p[n:], nil
}

// getBytes consumes one length-prefixed byte string. The result aliases p.
// maxLen of 0 means "bounded only by the remaining payload".
func getBytes(p []byte, maxLen int) ([]byte, []byte, error) {
	n, rest, err := getUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) || (maxLen > 0 && n > uint64(maxLen)) {
		return nil, nil, ErrBadPayload
	}
	return rest[:n], rest[n:], nil
}

// --- PUT: klen | key | value (value runs to the end of the payload) ---

// AppendPutReq encodes a PUT request payload.
func AppendPutReq(dst, key, value []byte) []byte {
	dst = appendBytes(dst, key)
	return append(dst, value...)
}

// DecodePutReq decodes a PUT payload into key and value slices aliasing p.
func DecodePutReq(p []byte) (key, value []byte, err error) {
	key, value, err = getBytes(p, MaxKeyLen)
	if err != nil {
		return nil, nil, err
	}
	if len(key) == 0 {
		return nil, nil, fmt.Errorf("%w: empty key", ErrBadPayload)
	}
	return key, value, nil
}

// --- GET / DEL: klen | key (nothing may follow) ---

// AppendKeyReq encodes a single-key payload (GET, DEL).
func AppendKeyReq(dst, key []byte) []byte { return appendBytes(dst, key) }

// DecodeKeyReq decodes a single-key payload; trailing bytes are an error.
func DecodeKeyReq(p []byte) ([]byte, error) {
	key, rest, err := getBytes(p, MaxKeyLen)
	if err != nil {
		return nil, err
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("%w: empty key", ErrBadPayload)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return key, nil
}

// --- BATCH: count | per op: kind(0=put,1=del,2=merge) | klen | key |
//     [vlen | value]  (put) | [varint delta]  (merge) ---

// BatchOp is one write in a BATCH request. Value is ignored for deletes and
// merges; Delta is meaningful only when Merge is set. Merge and Delete are
// mutually exclusive (Delete wins on encode, matching the engine's LWW).
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
	Merge  bool
	Delta  int64
}

// AppendBatchReq encodes a BATCH request payload.
func AppendBatchReq(dst []byte, ops []BatchOp) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		switch {
		case op.Delete:
			dst = append(dst, 1)
			dst = appendBytes(dst, op.Key)
		case op.Merge:
			dst = append(dst, 2)
			dst = appendBytes(dst, op.Key)
			dst = binary.AppendVarint(dst, op.Delta)
		default:
			dst = append(dst, 0)
			dst = appendBytes(dst, op.Key)
			dst = appendBytes(dst, op.Value)
		}
	}
	return dst
}

// DecodeBatchReq decodes a BATCH payload. Key/Value slices alias p. The
// initial allocation is capped by the payload size, not the declared count.
func DecodeBatchReq(p []byte) ([]BatchOp, error) {
	count, rest, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	// Each op occupies at least 3 bytes (kind + klen + 1 key byte), so a
	// declared count beyond len(rest)/3+1 can never be satisfied.
	capHint := count
	if max := uint64(len(rest))/3 + 1; capHint > max {
		capHint = max
	}
	ops := make([]BatchOp, 0, capHint)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, ErrBadPayload
		}
		kind := rest[0]
		rest = rest[1:]
		if kind > 2 {
			return nil, fmt.Errorf("%w: batch op kind %d", ErrBadPayload, kind)
		}
		var op BatchOp
		op.Delete = kind == 1
		op.Merge = kind == 2
		op.Key, rest, err = getBytes(rest, MaxKeyLen)
		if err != nil {
			return nil, err
		}
		if len(op.Key) == 0 {
			return nil, fmt.Errorf("%w: empty key", ErrBadPayload)
		}
		switch kind {
		case 0:
			op.Value, rest, err = getBytes(rest, 0)
			if err != nil {
				return nil, err
			}
		case 2:
			op.Delta, rest, err = getVarint(rest)
			if err != nil {
				return nil, err
			}
		}
		ops = append(ops, op)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return ops, nil
}

// --- MGET request: count | per key: klen | key ---

// AppendMGetReq encodes an MGET request payload.
func AppendMGetReq(dst []byte, keys [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendBytes(dst, k)
	}
	return dst
}

// DecodeMGetReq decodes an MGET payload; key slices alias p.
func DecodeMGetReq(p []byte) ([][]byte, error) {
	count, rest, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	capHint := count
	if max := uint64(len(rest))/2 + 1; capHint > max {
		capHint = max
	}
	keys := make([][]byte, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var k []byte
		k, rest, err = getBytes(rest, MaxKeyLen)
		if err != nil {
			return nil, err
		}
		if len(k) == 0 {
			return nil, fmt.Errorf("%w: empty key", ErrBadPayload)
		}
		keys = append(keys, k)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return keys, nil
}

// --- MGET response: count | per value: present(1) | [vlen | value] ---

// AppendMGetResp encodes an MGET response; nil entries mean "absent".
func AppendMGetResp(dst []byte, vals [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		if v == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = appendBytes(dst, v)
	}
	return dst
}

// DecodeMGetResp decodes an MGET response; absent entries are nil. Value
// slices alias p.
func DecodeMGetResp(p []byte) ([][]byte, error) {
	count, rest, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	capHint := count
	if max := uint64(len(rest)) + 1; capHint > max {
		capHint = max
	}
	vals := make([][]byte, 0, capHint)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, ErrBadPayload
		}
		present := rest[0]
		rest = rest[1:]
		switch present {
		case 0:
			vals = append(vals, nil)
		case 1:
			var v []byte
			v, rest, err = getBytes(rest, 0)
			if err != nil {
				return nil, err
			}
			if v == nil {
				v = []byte{}
			}
			vals = append(vals, v)
		default:
			return nil, fmt.Errorf("%w: present byte %d", ErrBadPayload, present)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return vals, nil
}

// --- SCAN request: klen | start | limit ---

// AppendScanReq encodes a SCAN request payload. An empty start scans from
// the beginning of the keyspace.
func AppendScanReq(dst, start []byte, limit uint32) []byte {
	dst = appendBytes(dst, start)
	return binary.AppendUvarint(dst, uint64(limit))
}

// DecodeScanReq decodes a SCAN payload; start aliases p and may be empty.
func DecodeScanReq(p []byte) (start []byte, limit uint32, err error) {
	start, rest, err := getBytes(p, MaxKeyLen)
	if err != nil {
		return nil, 0, err
	}
	n, rest, err := getUvarint(rest)
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(^uint32(0)) {
		return nil, 0, fmt.Errorf("%w: scan limit overflows uint32", ErrBadPayload)
	}
	if len(rest) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return start, uint32(n), nil
}

// --- SCAN response: count | per pair: klen | key | vlen | value ---

// KV is one SCAN result pair.
type KV struct {
	Key   []byte
	Value []byte
}

// AppendScanResp encodes a SCAN response.
func AppendScanResp(dst []byte, kvs []KV) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(kvs)))
	for _, kv := range kvs {
		dst = appendBytes(dst, kv.Key)
		dst = appendBytes(dst, kv.Value)
	}
	return dst
}

// DecodeScanResp decodes a SCAN response; slices alias p.
func DecodeScanResp(p []byte) ([]KV, error) {
	count, rest, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	capHint := count
	if max := uint64(len(rest))/3 + 1; capHint > max {
		capHint = max
	}
	kvs := make([]KV, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var kv KV
		kv.Key, rest, err = getBytes(rest, MaxKeyLen)
		if err != nil {
			return nil, err
		}
		kv.Value, rest, err = getBytes(rest, 0)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, kv)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return kvs, nil
}
