package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestIncrRoundTrips(t *testing.T) {
	for _, delta := range []int64{0, 1, -1, 12345, -987654321, math.MaxInt64, math.MinInt64} {
		k, d, err := DecodeIncrReq(AppendIncrReq(nil, []byte("ctr"), delta))
		if err != nil || !bytes.Equal(k, []byte("ctr")) || d != delta {
			t.Fatalf("incr req delta=%d: %v %q %d", delta, err, k, d)
		}
		v, err := DecodeIncrResp(AppendIncrResp(nil, delta))
		if err != nil || v != delta {
			t.Fatalf("incr resp %d: %v %d", delta, err, v)
		}
		seq, ep, v2, err := DecodeIncrV2Resp(AppendIncrV2Resp(nil, 42, 7, delta))
		if err != nil || seq != 42 || ep != 7 || v2 != delta {
			t.Fatalf("incr v2 resp %d: %v %d %d %d", delta, err, seq, ep, v2)
		}
	}
}

func TestIncrMalformed(t *testing.T) {
	if _, _, err := DecodeIncrReq(AppendIncrReq(nil, nil, 1)); !errors.Is(err, ErrBadPayload) {
		t.Error("empty key decoded")
	}
	// Missing delta after the key.
	if _, _, err := DecodeIncrReq(AppendKeyReq(nil, []byte("k"))); !errors.Is(err, ErrBadPayload) {
		t.Error("missing delta decoded")
	}
	// Truncated delta varint (continuation bit set at the end).
	if _, _, err := DecodeIncrReq(append(AppendKeyReq(nil, []byte("k")), 0x80)); !errors.Is(err, ErrBadPayload) {
		t.Error("truncated delta decoded")
	}
	// Trailing bytes after the delta.
	if _, _, err := DecodeIncrReq(append(AppendIncrReq(nil, []byte("k"), 7), 0)); !errors.Is(err, ErrBadPayload) {
		t.Error("trailing bytes decoded")
	}
	// An 11-byte varint overflows int64.
	over := append(AppendKeyReq(nil, []byte("k")),
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := DecodeIncrReq(over); !errors.Is(err, ErrBadPayload) {
		t.Error("overflowing delta decoded")
	}
	if _, err := DecodeIncrResp(nil); !errors.Is(err, ErrBadPayload) {
		t.Error("empty incr resp decoded")
	}
	if _, _, _, err := DecodeIncrV2Resp([]byte{1, 2}); !errors.Is(err, ErrBadPayload) {
		t.Error("v2 resp missing value decoded")
	}
}

func TestBatchMergeRoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("c"), Merge: true, Delta: -77},
		{Key: []byte("b"), Delete: true},
		{Key: []byte("d"), Merge: true, Delta: math.MaxInt64},
	}
	got, err := DecodeBatchReq(AppendBatchReq(nil, ops))
	if err != nil {
		t.Fatalf("batch with merges: %v", err)
	}
	if len(got) != len(ops) {
		t.Fatalf("count %d, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !bytes.Equal(got[i].Key, ops[i].Key) || got[i].Delete != ops[i].Delete ||
			got[i].Merge != ops[i].Merge || got[i].Delta != ops[i].Delta {
			t.Fatalf("batch[%d] = %+v, want %+v", i, got[i], ops[i])
		}
	}

	// Merge ops propagate through repl frames unchanged.
	base, rops, err := DecodeReplFrame(AppendReplFrame(nil, 9, ops))
	if err != nil || base != 9 || len(rops) != len(ops) {
		t.Fatalf("repl frame with merges: %v base=%d n=%d", err, base, len(rops))
	}
	if !rops[1].Merge || rops[1].Delta != -77 {
		t.Fatalf("repl merge op lost: %+v", rops[1])
	}

	// Unknown kinds are still rejected.
	bad := []byte{1, 3, 1, 'k'}
	if _, err := DecodeBatchReq(bad); !errors.Is(err, ErrBadPayload) {
		t.Error("kind 3 decoded")
	}
	// A merge op with a truncated delta is rejected.
	trunc := []byte{1, 2, 1, 'k', 0xff}
	if _, err := DecodeBatchReq(trunc); !errors.Is(err, ErrBadPayload) {
		t.Error("truncated merge delta decoded")
	}
}
