package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestSessionReadReqRoundTrip(t *testing.T) {
	key, minSeq, epoch := []byte("some-key"), uint64(123456), uint64(0xdead)
	p := AppendGetV2Req(nil, key, minSeq, epoch)
	gk, gs, ge, err := DecodeGetV2Req(p)
	if err != nil || !bytes.Equal(gk, key) || gs != minSeq || ge != epoch {
		t.Fatalf("GET2 round trip: %q %d %d %v", gk, gs, ge, err)
	}

	keyList := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	p = AppendMGetV2Req(nil, keyList, minSeq, epoch)
	mk, ms, me, err := DecodeMGetV2Req(p)
	if err != nil || ms != minSeq || me != epoch || len(mk) != 3 || !bytes.Equal(mk[2], []byte("ccc")) {
		t.Fatalf("MGET2 round trip: %v %d %d %v", mk, ms, me, err)
	}

	p = AppendScanV2Req(nil, []byte("start"), 77, minSeq, epoch)
	st, lim, ss, se, err := DecodeScanV2Req(p)
	if err != nil || !bytes.Equal(st, []byte("start")) || lim != 77 || ss != minSeq || se != epoch {
		t.Fatalf("SCAN2 round trip: %q %d %d %d %v", st, lim, ss, se, err)
	}

	// Epoch 0 — "no lineage claim" — round-trips like any other value.
	gk, gs, ge, err = DecodeGetV2Req(AppendGetV2Req(nil, key, 5, 0))
	if err != nil || gs != 5 || ge != 0 {
		t.Fatalf("GET2 epoch-0 round trip: %q %d %d %v", gk, gs, ge, err)
	}
}

func TestSessionRespRoundTrip(t *testing.T) {
	p := AppendAppliedSeq(nil, 42, 9)
	if got, ep, err := DecodeAppliedSeq(p); err != nil || got != 42 || ep != 9 {
		t.Fatalf("applied seq round trip: %d %d %v", got, ep, err)
	}
	if _, _, err := DecodeAppliedSeq(append(p, 0)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
	if _, _, err := DecodeAppliedSeq(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty applied seq accepted: %v", err)
	}
	// A seq with no epoch is a truncated payload now.
	if _, _, err := DecodeAppliedSeq([]byte{42}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("epochless applied seq accepted: %v", err)
	}

	p = AppendGetV2Resp(nil, 9, 3, []byte("value"))
	seq, ep, v, err := DecodeGetV2Resp(p)
	if err != nil || seq != 9 || ep != 3 || !bytes.Equal(v, []byte("value")) {
		t.Fatalf("GET2 resp: %d %d %q %v", seq, ep, v, err)
	}
	// Empty value is legal (a present key may hold no bytes).
	seq, ep, v, err = DecodeGetV2Resp(AppendGetV2Resp(nil, 3, 1, nil))
	if err != nil || seq != 3 || ep != 1 || len(v) != 0 {
		t.Fatalf("GET2 empty resp: %d %d %q %v", seq, ep, v, err)
	}

	p = AppendMGetV2Resp(nil, 8, 2, [][]byte{[]byte("x"), nil, {}})
	seq, ep, vals, err := DecodeMGetV2Resp(p)
	if err != nil || seq != 8 || ep != 2 || len(vals) != 3 || vals[1] != nil || vals[2] == nil {
		t.Fatalf("MGET2 resp: %d %d %v %v", seq, ep, vals, err)
	}

	p = AppendScanV2Resp(nil, 15, 4, []KV{{Key: []byte("k"), Value: []byte("v")}})
	seq, ep, kvs, err := DecodeScanV2Resp(p)
	if err != nil || seq != 15 || ep != 4 || len(kvs) != 1 || !bytes.Equal(kvs[0].Key, []byte("k")) {
		t.Fatalf("SCAN2 resp: %d %d %v %v", seq, ep, kvs, err)
	}
}

// TestSessionCodecsStrict exercises the malformed-input contract: truncated
// or trailing bytes in any token field must error, never panic.
func TestSessionCodecsStrict(t *testing.T) {
	// Truncated minSeq varint (0x80 declares a continuation that never comes).
	cont := []byte{0x80}
	if _, _, _, err := DecodeGetV2Req(cont); err == nil {
		t.Fatal("truncated GET2 minSeq accepted")
	}
	if _, _, _, err := DecodeMGetV2Req(cont); err == nil {
		t.Fatal("truncated MGET2 minSeq accepted")
	}
	if _, _, _, _, err := DecodeScanV2Req(cont); err == nil {
		t.Fatal("truncated SCAN2 minSeq accepted")
	}
	if _, _, _, err := DecodeMGetV2Resp(cont); err == nil {
		t.Fatal("truncated MGET2 resp accepted")
	}
	if _, _, _, err := DecodeScanV2Resp(cont); err == nil {
		t.Fatal("truncated SCAN2 resp accepted")
	}
	// minSeq present but the epoch varint is truncated.
	if _, _, _, err := DecodeGetV2Req([]byte{5, 0x80}); err == nil {
		t.Fatal("truncated GET2 epoch accepted")
	}

	// Token pair present but the inner payload is missing or malformed.
	if _, _, _, err := DecodeGetV2Req(AppendAppliedSeq(nil, 7, 1)); err == nil {
		t.Fatal("GET2 with no key accepted")
	}
	if _, _, _, err := DecodeGetV2Req(append(AppendGetV2Req(nil, []byte("k"), 7, 1), 'x')); err == nil {
		t.Fatal("GET2 with trailing bytes accepted")
	}
	if _, _, _, _, err := DecodeScanV2Req(append(AppendScanV2Req(nil, []byte("s"), 1, 7, 1), 'x')); err == nil {
		t.Fatal("SCAN2 with trailing bytes accepted")
	}
	if _, _, _, err := DecodeMGetV2Req(append(AppendMGetV2Req(nil, [][]byte{[]byte("k")}, 7, 1), 'x')); err == nil {
		t.Fatal("MGET2 with trailing bytes accepted")
	}
}

func TestSessionOpsValidAndNamed(t *testing.T) {
	for _, op := range []Op{OpGetV2, OpMGetV2, OpScanV2, OpPutV2, OpDelV2, OpBatchV2} {
		if !op.Valid() {
			t.Fatalf("op %d invalid", op)
		}
		if s := op.String(); len(s) == 0 || s[0] == 'O' {
			t.Fatalf("op %d unnamed: %q", op, s)
		}
	}
	if StatusNotReady.String() != "not ready" {
		t.Fatalf("StatusNotReady = %q", StatusNotReady.String())
	}
}
