package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestSessionReadReqRoundTrip(t *testing.T) {
	key, minSeq := []byte("some-key"), uint64(123456)
	p := AppendGetV2Req(nil, key, minSeq)
	gk, gs, err := DecodeGetV2Req(p)
	if err != nil || !bytes.Equal(gk, key) || gs != minSeq {
		t.Fatalf("GET2 round trip: %q %d %v", gk, gs, err)
	}

	keyList := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	p = AppendMGetV2Req(nil, keyList, minSeq)
	mk, ms, err := DecodeMGetV2Req(p)
	if err != nil || ms != minSeq || len(mk) != 3 || !bytes.Equal(mk[2], []byte("ccc")) {
		t.Fatalf("MGET2 round trip: %v %d %v", mk, ms, err)
	}

	p = AppendScanV2Req(nil, []byte("start"), 77, minSeq)
	st, lim, ss, err := DecodeScanV2Req(p)
	if err != nil || !bytes.Equal(st, []byte("start")) || lim != 77 || ss != minSeq {
		t.Fatalf("SCAN2 round trip: %q %d %d %v", st, lim, ss, err)
	}
}

func TestSessionRespRoundTrip(t *testing.T) {
	p := AppendAppliedSeq(nil, 42)
	if got, err := DecodeAppliedSeq(p); err != nil || got != 42 {
		t.Fatalf("applied seq round trip: %d %v", got, err)
	}
	if _, err := DecodeAppliedSeq(append(p, 0)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
	if _, err := DecodeAppliedSeq(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty applied seq accepted: %v", err)
	}

	p = AppendGetV2Resp(nil, 9, []byte("value"))
	seq, v, err := DecodeGetV2Resp(p)
	if err != nil || seq != 9 || !bytes.Equal(v, []byte("value")) {
		t.Fatalf("GET2 resp: %d %q %v", seq, v, err)
	}
	// Empty value is legal (a present key may hold no bytes).
	seq, v, err = DecodeGetV2Resp(AppendGetV2Resp(nil, 3, nil))
	if err != nil || seq != 3 || len(v) != 0 {
		t.Fatalf("GET2 empty resp: %d %q %v", seq, v, err)
	}

	p = AppendMGetV2Resp(nil, 8, [][]byte{[]byte("x"), nil, {}})
	seq, vals, err := DecodeMGetV2Resp(p)
	if err != nil || seq != 8 || len(vals) != 3 || vals[1] != nil || vals[2] == nil {
		t.Fatalf("MGET2 resp: %d %v %v", seq, vals, err)
	}

	p = AppendScanV2Resp(nil, 15, []KV{{Key: []byte("k"), Value: []byte("v")}})
	seq, kvs, err := DecodeScanV2Resp(p)
	if err != nil || seq != 15 || len(kvs) != 1 || !bytes.Equal(kvs[0].Key, []byte("k")) {
		t.Fatalf("SCAN2 resp: %d %v %v", seq, kvs, err)
	}
}

// TestSessionCodecsStrict exercises the malformed-input contract: truncated
// or trailing bytes in any token field must error, never panic.
func TestSessionCodecsStrict(t *testing.T) {
	// Truncated minSeq varint (0x80 declares a continuation that never comes).
	cont := []byte{0x80}
	if _, _, err := DecodeGetV2Req(cont); err == nil {
		t.Fatal("truncated GET2 minSeq accepted")
	}
	if _, _, err := DecodeMGetV2Req(cont); err == nil {
		t.Fatal("truncated MGET2 minSeq accepted")
	}
	if _, _, _, err := DecodeScanV2Req(cont); err == nil {
		t.Fatal("truncated SCAN2 minSeq accepted")
	}
	if _, _, err := DecodeMGetV2Resp(cont); err == nil {
		t.Fatal("truncated MGET2 resp accepted")
	}
	if _, _, err := DecodeScanV2Resp(cont); err == nil {
		t.Fatal("truncated SCAN2 resp accepted")
	}

	// minSeq present but the inner payload is missing or malformed.
	if _, _, err := DecodeGetV2Req(AppendAppliedSeq(nil, 7)); err == nil {
		t.Fatal("GET2 with no key accepted")
	}
	if _, _, err := DecodeGetV2Req(append(AppendGetV2Req(nil, []byte("k"), 7), 'x')); err == nil {
		t.Fatal("GET2 with trailing bytes accepted")
	}
	if _, _, _, err := DecodeScanV2Req(append(AppendScanV2Req(nil, []byte("s"), 1, 7), 'x')); err == nil {
		t.Fatal("SCAN2 with trailing bytes accepted")
	}
	if _, _, err := DecodeMGetV2Req(append(AppendMGetV2Req(nil, [][]byte{[]byte("k")}, 7), 'x')); err == nil {
		t.Fatal("MGET2 with trailing bytes accepted")
	}
}

func TestSessionOpsValidAndNamed(t *testing.T) {
	for _, op := range []Op{OpGetV2, OpMGetV2, OpScanV2, OpPutV2, OpDelV2, OpBatchV2} {
		if !op.Valid() {
			t.Fatalf("op %d invalid", op)
		}
		if s := op.String(); len(s) == 0 || s[0] == 'O' {
			t.Fatalf("op %d unnamed: %q", op, s)
		}
	}
	if StatusNotReady.String() != "not ready" {
		t.Fatalf("StatusNotReady = %q", StatusNotReady.String())
	}
}
