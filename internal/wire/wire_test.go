package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpPing, ID: 1},
		{Op: OpPut, ID: 42, Payload: AppendPutReq(nil, []byte("k"), []byte("v"))},
		{Op: OpGet, Status: StatusNotFound, ID: 1 << 60},
		{Op: OpStats, ID: 7, Payload: bytes.Repeat([]byte("x"), 4096)},
	}
	for _, f := range frames {
		buf := AppendFrame(nil, f)
		if len(buf) != EncodedLen(len(f.Payload)) {
			t.Fatalf("EncodedLen(%d) = %d, encoded %d bytes", len(f.Payload), EncodedLen(len(f.Payload)), len(buf))
		}
		got, n, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		if got.Op != f.Op || got.Status != f.Status || got.ID != f.ID || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
		}
		// And through the stream reader.
		rf, err := ReadFrame(bytes.NewReader(buf), 0)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if rf.ID != f.ID || !bytes.Equal(rf.Payload, f.Payload) {
			t.Fatalf("ReadFrame mismatch")
		}
	}
}

func TestDecodeFrameMultiple(t *testing.T) {
	buf := AppendFrame(nil, Frame{Op: OpPing, ID: 1})
	buf = AppendFrame(buf, Frame{Op: OpPing, ID: 2})
	f1, n1, err := DecodeFrame(buf, 0)
	if err != nil || f1.ID != 1 {
		t.Fatalf("first: %v %+v", err, f1)
	}
	f2, n2, err := DecodeFrame(buf[n1:], 0)
	if err != nil || f2.ID != 2 {
		t.Fatalf("second: %v %+v", err, f2)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d, want %d", n1+n2, len(buf))
	}
}

func TestDecodeFrameMalformed(t *testing.T) {
	good := AppendFrame(nil, Frame{Op: OpPut, ID: 9, Payload: []byte("payload")})

	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short prefix", good[:3], ErrTruncated},
		{"truncated body", good[:len(good)-2], ErrTruncated},
		{"tiny declared length", binary.BigEndian.AppendUint32(nil, 5), ErrFrameTooSmall},
		{"huge declared length", binary.BigEndian.AppendUint32(nil, MaxFrame+1), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.buf, 0); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Flipped payload bit fails the CRC.
	bad := append([]byte(nil), good...)
	bad[len(bad)-6] ^= 0x40
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadCRC) {
		t.Errorf("corrupt payload: got %v, want ErrBadCRC", err)
	}
	if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrBadCRC) {
		t.Errorf("ReadFrame corrupt payload: got %v, want ErrBadCRC", err)
	}

	// A caller-supplied cap below the frame size rejects before allocating.
	if _, _, err := DecodeFrame(good, 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("small cap: got %v, want ErrFrameTooLarge", err)
	}

	// Stream EOF semantics: clean boundary vs mid-frame.
	if _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader(good[:7]), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-frame EOF: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	k, v := []byte("key"), []byte("value bytes")
	if gk, gv, err := DecodePutReq(AppendPutReq(nil, k, v)); err != nil || !bytes.Equal(gk, k) || !bytes.Equal(gv, v) {
		t.Fatalf("put: %v %q %q", err, gk, gv)
	}
	if gk, err := DecodeKeyReq(AppendKeyReq(nil, k)); err != nil || !bytes.Equal(gk, k) {
		t.Fatalf("key: %v %q", err, gk)
	}

	ops := []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Delete: true},
		{Key: []byte("c"), Value: nil},
	}
	got, err := DecodeBatchReq(AppendBatchReq(nil, ops))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(got) != len(ops) {
		t.Fatalf("batch count %d, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !bytes.Equal(got[i].Key, ops[i].Key) || got[i].Delete != ops[i].Delete || !bytes.Equal(got[i].Value, ops[i].Value) {
			t.Fatalf("batch[%d] = %+v, want %+v", i, got[i], ops[i])
		}
	}

	keys := [][]byte{[]byte("k1"), []byte("k2")}
	gk, err := DecodeMGetReq(AppendMGetReq(nil, keys))
	if err != nil || len(gk) != 2 || !bytes.Equal(gk[0], keys[0]) || !bytes.Equal(gk[1], keys[1]) {
		t.Fatalf("mget req: %v %q", err, gk)
	}

	vals := [][]byte{[]byte("v1"), nil, {}}
	gv, err := DecodeMGetResp(AppendMGetResp(nil, vals))
	if err != nil || len(gv) != 3 {
		t.Fatalf("mget resp: %v %d", err, len(gv))
	}
	if !bytes.Equal(gv[0], vals[0]) || gv[1] != nil || gv[2] == nil || len(gv[2]) != 0 {
		t.Fatalf("mget resp values: %q", gv)
	}

	start, limit, err := DecodeScanReq(AppendScanReq(nil, []byte("s"), 77))
	if err != nil || !bytes.Equal(start, []byte("s")) || limit != 77 {
		t.Fatalf("scan req: %v %q %d", err, start, limit)
	}
	if start, limit, err = DecodeScanReq(AppendScanReq(nil, nil, 0)); err != nil || len(start) != 0 || limit != 0 {
		t.Fatalf("scan req empty start: %v %q %d", err, start, limit)
	}

	kvs := []KV{{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("b"), Value: nil}}
	gkv, err := DecodeScanResp(AppendScanResp(nil, kvs))
	if err != nil || len(gkv) != 2 || !bytes.Equal(gkv[0].Key, kvs[0].Key) || !bytes.Equal(gkv[1].Key, kvs[1].Key) {
		t.Fatalf("scan resp: %v %+v", err, gkv)
	}
}

func TestPayloadMalformed(t *testing.T) {
	// Empty keys are rejected everywhere a key is required.
	if _, _, err := DecodePutReq(AppendPutReq(nil, nil, []byte("v"))); err == nil {
		t.Error("put with empty key decoded")
	}
	if _, err := DecodeKeyReq(AppendKeyReq(nil, nil)); err == nil {
		t.Error("get with empty key decoded")
	}
	// Trailing bytes are rejected.
	if _, err := DecodeKeyReq(append(AppendKeyReq(nil, []byte("k")), 0xff)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A declared count far beyond the payload errors instead of allocating.
	huge := binary.AppendUvarint(nil, 1<<40)
	if _, err := DecodeBatchReq(huge); err == nil {
		t.Error("huge batch count decoded")
	}
	if _, err := DecodeMGetReq(huge); err == nil {
		t.Error("huge mget count decoded")
	}
	// Key length beyond MaxKeyLen is rejected without reading the key.
	big := binary.AppendUvarint(nil, MaxKeyLen+1)
	if _, err := DecodeKeyReq(big); err == nil {
		t.Error("oversized key length decoded")
	}
}
