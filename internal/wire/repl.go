package wire

import (
	"encoding/binary"
	"fmt"
)

// Replication payloads. The stream is: follower sends REPL_HELLO as the
// first frame of its connection; the primary answers with a hello response
// choosing tail or snapshot mode; REPL_SNAPSHOT and REPL_FRAME frames are
// then pushed primary→follower, while the follower reports progress with
// REPL_ACK frames flowing the other way on the same connection.

// ReplProtoVersion is the replication stream version carried in HELLO.
// Version 2 added the write-lineage epoch to both hello directions.
const ReplProtoVersion = 2

// Snapshot modes carried in the hello response.
const (
	ReplModeTail     = 0 // log retains everything past lastApplied: tail it
	ReplModeSnapshot = 1 // fell off the window: full snapshot, then tail
)

// --- REPL_HELLO request: version | epoch | lastApplied ---

// AppendReplHelloReq encodes a follower's subscription request. epoch is
// the write-lineage identifier of the log the follower last replicated
// from (0 when it has never attached), and lastApplied is the highest
// sequence it has durably applied (0 for a fresh follower). A primary only
// grants tail mode when the epoch matches its own log's epoch or the
// follower holds no state at all.
func AppendReplHelloReq(dst []byte, epoch, lastApplied uint64) []byte {
	dst = append(dst, ReplProtoVersion)
	dst = binary.AppendUvarint(dst, epoch)
	return binary.AppendUvarint(dst, lastApplied)
}

// DecodeReplHelloReq decodes a REPL_HELLO request payload.
func DecodeReplHelloReq(p []byte) (epoch, lastApplied uint64, err error) {
	if len(p) == 0 {
		return 0, 0, fmt.Errorf("%w: empty hello", ErrBadPayload)
	}
	if p[0] != ReplProtoVersion {
		return 0, 0, fmt.Errorf("%w: repl proto version %d", ErrBadPayload, p[0])
	}
	epoch, rest, err := getUvarint(p[1:])
	if err != nil {
		return 0, 0, err
	}
	lastApplied, rest, err = getUvarint(rest)
	if err != nil {
		return 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return epoch, lastApplied, nil
}

// --- REPL_HELLO response: mode | epoch | startSeq ---

// AppendReplHelloResp encodes the primary's answer. epoch is the primary
// log's write-lineage identifier; the follower records it and presents it
// on subsequent hellos. In tail mode startSeq is the follower's
// lastApplied echoed back (frames with base > startSeq follow); in
// snapshot mode it is the pinned snapshot sequence the streamed entries
// are tagged with, and tailing resumes past it.
func AppendReplHelloResp(dst []byte, mode uint8, epoch, startSeq uint64) []byte {
	dst = append(dst, mode)
	dst = binary.AppendUvarint(dst, epoch)
	return binary.AppendUvarint(dst, startSeq)
}

// DecodeReplHelloResp decodes a hello response payload.
func DecodeReplHelloResp(p []byte) (mode uint8, epoch, startSeq uint64, err error) {
	if len(p) == 0 {
		return 0, 0, 0, fmt.Errorf("%w: empty hello response", ErrBadPayload)
	}
	mode = p[0]
	if mode != ReplModeTail && mode != ReplModeSnapshot {
		return 0, 0, 0, fmt.Errorf("%w: repl mode %d", ErrBadPayload, mode)
	}
	epoch, rest, err := getUvarint(p[1:])
	if err != nil {
		return 0, 0, 0, err
	}
	startSeq, rest, err = getUvarint(rest)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return mode, epoch, startSeq, nil
}

// --- REPL_FRAME push: base | count | per op: kind | klen | key | [vlen | value] ---
//
// One frame carries one committed batch; op i holds sequence base+i, so the
// frame is self-describing for apply-at-seq on the follower.

// AppendReplFrame encodes one shipped log entry.
func AppendReplFrame(dst []byte, base uint64, ops []BatchOp) []byte {
	dst = binary.AppendUvarint(dst, base)
	return AppendBatchReq(dst, ops)
}

// DecodeReplFrame decodes a REPL_FRAME payload; op slices alias p.
func DecodeReplFrame(p []byte) (base uint64, ops []BatchOp, err error) {
	base, rest, err := getUvarint(p)
	if err != nil {
		return 0, nil, err
	}
	if base == 0 {
		return 0, nil, fmt.Errorf("%w: repl frame base 0", ErrBadPayload)
	}
	ops, err = DecodeBatchReq(rest)
	if err != nil {
		return 0, nil, err
	}
	if len(ops) == 0 {
		return 0, nil, fmt.Errorf("%w: empty repl frame", ErrBadPayload)
	}
	return base, ops, nil
}

// --- REPL_ACK: appliedSeq ---

// AppendReplAck encodes a follower progress report.
func AppendReplAck(dst []byte, appliedSeq uint64) []byte {
	return binary.AppendUvarint(dst, appliedSeq)
}

// DecodeReplAck decodes a REPL_ACK payload.
func DecodeReplAck(p []byte) (appliedSeq uint64, err error) {
	appliedSeq, rest, err := getUvarint(p)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return appliedSeq, nil
}

// --- REPL_SNAPSHOT push: done | seq | count | per pair: klen | key | vlen | value ---

// AppendReplSnapshot encodes one snapshot chunk. seq is the pinned snapshot
// sequence every streamed pair is applied at; done marks the final chunk
// (which may carry zero pairs).
func AppendReplSnapshot(dst []byte, seq uint64, kvs []KV, done bool) []byte {
	if done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, seq)
	return AppendScanResp(dst, kvs)
}

// DecodeReplSnapshot decodes a snapshot chunk; pair slices alias p.
func DecodeReplSnapshot(p []byte) (seq uint64, kvs []KV, done bool, err error) {
	if len(p) == 0 {
		return 0, nil, false, fmt.Errorf("%w: empty snapshot chunk", ErrBadPayload)
	}
	switch p[0] {
	case 0:
	case 1:
		done = true
	default:
		return 0, nil, false, fmt.Errorf("%w: snapshot done byte %d", ErrBadPayload, p[0])
	}
	seq, rest, err := getUvarint(p[1:])
	if err != nil {
		return 0, nil, false, err
	}
	kvs, err = DecodeScanResp(rest)
	if err != nil {
		return 0, nil, false, err
	}
	if !done && len(kvs) == 0 {
		return 0, nil, false, fmt.Errorf("%w: empty non-final snapshot chunk", ErrBadPayload)
	}
	return seq, kvs, done, nil
}
